// Command rsserve is the query-serving front end: an HTTP/JSON server
// answering point queries with certified bounds, heavy-hitter top-k, and
// sliding-window queries, with an epoch-aware result cache and durable
// sketch checkpoints.
//
// Standalone mode serves one registry-built sketch ingesting over HTTP:
//
//	rsserve -listen 127.0.0.1:8080 -algo Ours -mem 1048576
//	rsserve -epoch 10s -window 8            # sliding-window (epoch ring) mode
//	rsserve -checkpoint state.ckpt -checkpoint-every 30s
//
// Collector mode embeds a netsum collector (agents connect with rsagent)
// and serves its global view:
//
//	rsserve -collector 127.0.0.1:7777 -listen 127.0.0.1:8080
//
// When -checkpoint names an existing file, the server warm-restarts from
// it: restored certified intervals still contain the pre-restart exact
// counts, and new traffic stacks on top. Endpoints: /v2/query (typed
// batches — up to -max-batch keys with per-key certified bounds in one
// request), /v2/ingest (typed write batches, answered with Ack JSON),
// /v1/point, /v1/window, /v1/topk, /v1/status, /v1/insert (standalone),
// /v1/checkpoint, and /metrics (Prometheus text exposition; disable with
// -metrics=false). -pprof-addr additionally serves net/http/pprof on a
// separate listener.
//
// The result cache is sharded and policy-pluggable: -cache-policy picks
// lru (default), s3fifo, or tinylfu; -cache-shards spreads lock contention;
// -cache-swr serves expired live answers while one background flight
// refreshes them (stale-while-revalidate).
//
// Writes flow through the async ingest plane: -ingest-workers pipeline
// workers accumulate private delta sketches and fold them into the served
// sketch one short lock per flush; -ingest-policy picks what a full
// -ingest-queue does (block producers, or drop and report it in the Ack).
//
// Cluster mode scales horizontally: N replicas each run with the same
// -peers list and their own URL as -self, exchanging sealed deltas so any
// node answers any key from a merged view; a stateless router fronts them:
//
//	rsserve -listen :8081 -peers http://h1:8081,http://h2:8081,http://h3:8081 \
//	        -self http://h1:8081 -replicate-every 5s
//	rsserve -listen :8080 -cluster-router -peers http://h1:8081,http://h2:8081,http://h3:8081
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/cluster"
	"repro/internal/ingest"
	"repro/internal/netsum"
	"repro/internal/query"
	"repro/internal/queryd"
	"repro/internal/rcache"
	"repro/internal/sketch"
	_ "repro/internal/sketch/all" // every registered variant servable by name
	"repro/internal/telemetry/telhttp"
	"repro/internal/wal"
)

// serveFlags is every tunable the CLI accepts, gathered so the flag
// combinations can be validated up front with named errors instead of
// surfacing as late panics or silently-dead options.
type serveFlags struct {
	window     int
	epoch      time.Duration
	shards     int
	collector  string
	maxBatch   int
	cacheSize  int
	cacheTTL   time.Duration
	cachePol   string
	cacheShard int
	cacheSWR   time.Duration
	ckpt       string
	ckptEvery  time.Duration
	ingWorkers int
	ingQueue   int
	ingPolicy  string
	walDir     string
	walFsync   string
	walSegSize int64
	peers      string
	self       string
	router     bool
	replEvery  time.Duration
	vnodes     int
}

// Named validation errors: scripts wrapping rsserve can match on the text
// stem, and tests pin each rejected combination to its reason.
var (
	errWindowWithoutEpoch    = errors.New("rsserve: -window needs -epoch (sealed-epoch retention is meaningless without epochs)")
	errNegativeWindow        = errors.New("rsserve: -window must be ≥ 0")
	errNegativeEpoch         = errors.New("rsserve: -epoch must be ≥ 0")
	errBadMaxBatch           = fmt.Errorf("rsserve: -max-batch must be in [1, %d] (the query-plane batch ceiling)", query.MaxBatchKeys)
	errBadCacheSize          = errors.New("rsserve: -cache-size must be ≥ 1")
	errNegativeCacheTTL      = errors.New("rsserve: -cache-ttl must be ≥ 0")
	errNegativeCacheShards   = errors.New("rsserve: -cache-shards must be ≥ 0 (0 = default; rounded up to a power of two)")
	errNegativeCacheSWR      = errors.New("rsserve: -cache-swr must be ≥ 0 (0 = serve-stale disabled)")
	errBadCachePolicy        = errors.New("rsserve: -cache-policy must be lru, s3fifo, or tinylfu")
	errCheckpointEveryNoPath = errors.New("rsserve: -checkpoint-every needs -checkpoint (an interval with nowhere to write)")
	errShardsWithCollector   = errors.New("rsserve: -shards is standalone-only (collector agents shard by construction, one sketch per agent)")
	errNegativeShards        = errors.New("rsserve: -shards must be ≥ 0")
	errNegativeIngestWorkers = errors.New("rsserve: -ingest-workers must be ≥ 0 (0 = synchronous standalone ingest)")
	errBadIngestQueue        = errors.New("rsserve: -ingest-queue must be ≥ 0 (0 = default)")
	errWALWithEpoch          = errors.New("rsserve: -wal-dir is cumulative-mode only (replaying a log into an epoch ring would resurrect expired traffic)")
	errWALWithDrop           = errors.New("rsserve: -wal-dir requires -ingest-policy block (drop could refuse a durable batch live, then resurrect it on replay)")
	errBadWALSegmentSize     = errors.New("rsserve: -wal-segment-size must be ≥ 4096 bytes")
	errRouterNeedsPeers      = errors.New("rsserve: -cluster-router needs -peers (a router with no replicas routes nowhere)")
	errSelfNeedsPeers        = errors.New("rsserve: -self needs -peers (the membership the self URL is a member of)")
	errRouterWithSelf        = errors.New("rsserve: -cluster-router and -self are mutually exclusive (a router is not a ring member)")
	errPeersNeedRole         = errors.New("rsserve: -peers needs a role: -cluster-router or -self")
	errClusterWithCollector  = errors.New("rsserve: cluster flags are standalone-only (a collector already aggregates agents; front plain replicas with the router instead)")
	errClusterWithEpoch      = errors.New("rsserve: cluster mode is cumulative-only (epoch windows age out instead of replicating)")
	errRouterIsStateless     = errors.New("rsserve: -cluster-router holds no local sketch: -wal-dir, -checkpoint, and -shards have nothing to apply to")
	errNegativeReplicate     = errors.New("rsserve: -replicate-every must be ≥ 0 (0 = pull only on POST /v2/replicate)")
	errReplicateNeedsReplica = errors.New("rsserve: -replicate-every needs replica mode (-self)")
	errNegativeVNodes        = errors.New("rsserve: -vnodes must be ≥ 0 (0 = default)")
)

// validate rejects impossible flag combinations before any socket is
// opened.
func (f serveFlags) validate() error {
	switch {
	case f.epoch < 0:
		return errNegativeEpoch
	case f.window < 0:
		return errNegativeWindow
	case f.window > 0 && f.epoch == 0:
		return errWindowWithoutEpoch
	case f.maxBatch < 1 || f.maxBatch > query.MaxBatchKeys:
		return errBadMaxBatch
	case f.cacheSize < 1:
		return errBadCacheSize
	case f.cacheTTL < 0:
		return errNegativeCacheTTL
	case f.cacheShard < 0:
		return errNegativeCacheShards
	case f.cacheSWR < 0:
		return errNegativeCacheSWR
	case f.ckptEvery > 0 && f.ckpt == "":
		return errCheckpointEveryNoPath
	case f.shards < 0:
		return errNegativeShards
	case f.shards > 0 && f.collector != "":
		return errShardsWithCollector
	case f.ingWorkers < 0:
		return errNegativeIngestWorkers
	case f.ingQueue < 0:
		return errBadIngestQueue
	case f.walDir != "" && f.epoch > 0:
		return errWALWithEpoch
	case f.walDir != "" && f.walSegSize < 4096:
		return errBadWALSegmentSize
	case f.router && f.peers == "":
		return errRouterNeedsPeers
	case f.self != "" && f.peers == "":
		return errSelfNeedsPeers
	case f.router && f.self != "":
		return errRouterWithSelf
	case f.peers != "" && !f.router && f.self == "":
		return errPeersNeedRole
	case f.peers != "" && f.collector != "":
		return errClusterWithCollector
	case f.peers != "" && f.epoch > 0:
		return errClusterWithEpoch
	case f.router && (f.walDir != "" || f.ckpt != "" || f.shards > 0):
		return errRouterIsStateless
	case f.replEvery < 0:
		return errNegativeReplicate
	case f.replEvery > 0 && f.self == "":
		return errReplicateNeedsReplica
	case f.vnodes < 0:
		return errNegativeVNodes
	}
	if f.self != "" {
		if _, err := f.selfIndex(); err != nil {
			return err
		}
	}
	if _, err := rcache.ParsePolicy(f.cachePol); err != nil {
		return fmt.Errorf("%w (got %q)", errBadCachePolicy, f.cachePol)
	}
	policy, err := ingest.ParsePolicy(f.ingPolicy)
	if err != nil {
		return fmt.Errorf("rsserve: %w", err)
	}
	if f.walDir != "" {
		if policy == ingest.Drop {
			return errWALWithDrop
		}
		if _, err := wal.ParseFsync(f.walFsync); err != nil {
			return fmt.Errorf("rsserve: -wal-fsync: %w", err)
		}
	}
	return nil
}

// selfIndex locates -self in the parsed -peers list (both normalized the
// same way, so trailing slashes and spacing don't desync a node from its
// own membership).
func (f serveFlags) selfIndex() (int, error) {
	self := cluster.ParsePeers(f.self)
	if len(self) != 1 {
		return -1, fmt.Errorf("rsserve: -self must name exactly one URL, got %q", f.self)
	}
	for i, p := range cluster.ParsePeers(f.peers) {
		if p == self[0] {
			return i, nil
		}
	}
	return -1, fmt.Errorf("rsserve: %w: -self %s not in -peers", cluster.ErrNotReplica, self[0])
}

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8080", "HTTP address to serve queries on")
		algo       = flag.String("algo", "Ours", "registered sketch variant")
		lambda     = flag.Uint64("lambda", 25, "error tolerance Λ (error-targeting variants)")
		mem        = flag.Int("mem", 1<<20, "sketch memory budget (bytes)")
		seed       = flag.Uint64("seed", 1, "sketch hash seed")
		shards     = flag.Int("shards", 0, "shard the sketch n ways for concurrent ingest (standalone)")
		ep         = flag.Duration("epoch", 0, "epoch length for sliding-window mode (0 = cumulative)")
		window     = flag.Int("window", 0, "sealed epochs retained in -epoch mode (0 = default)")
		collector  = flag.String("collector", "", "embed a netsum collector on this TCP address and serve its global view")
		noMerge    = flag.Bool("no-merge", false, "collector mode: disable the merged global view")
		cacheSize  = flag.Int("cache-size", 4096, "result cache capacity (entries)")
		cacheTTL   = flag.Duration("cache-ttl", 250*time.Millisecond, "freshness of cached live-window answers")
		cachePol   = flag.String("cache-policy", "lru", "result cache eviction policy: lru, s3fifo, or tinylfu")
		cacheShard = flag.Int("cache-shards", 0, "result cache shard count, rounded up to a power of two (0 = default)")
		cacheSWR   = flag.Duration("cache-swr", 0, "stale-while-revalidate window after -cache-ttl: serve the expired answer while one background flight refreshes it (0 = off)")
		maxBatch   = flag.Int("max-batch", query.MaxBatchKeys, "largest /v2/query key batch this server accepts")
		ckpt       = flag.String("checkpoint", "", "checkpoint file path (warm-restarts from it when present)")
		ckptEvery  = flag.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 = only on demand and shutdown)")
		ingWorkers = flag.Int("ingest-workers", ingest.DefaultWorkers, "async ingest pipeline workers (standalone: 0 = synchronous ingest)")
		ingQueue   = flag.Int("ingest-queue", ingest.DefaultQueue, "per-worker ingest queue depth (batches)")
		ingPolicy  = flag.String("ingest-policy", "block", "backpressure when ingest queues fill: block or drop")
		walDir     = flag.String("wal-dir", "", "write-ahead-log directory: acked writes survive a crash and replay on restart (cumulative mode)")
		walFsync   = flag.String("wal-fsync", "batch", "WAL durability: batch (fsync every append), a group-commit interval like 5ms, or off")
		walSegSize = flag.Int64("wal-segment-size", wal.DefaultSegmentBytes, "WAL segment rotation threshold (bytes)")
		metrics    = flag.Bool("metrics", true, "serve GET /metrics (Prometheus text exposition) alongside the query API")
		pprofAddr  = flag.String("pprof-addr", "", "also serve net/http/pprof on this address (off unless set)")
		peers      = flag.String("peers", "", "comma-separated replica base URLs, identical order on every cluster node")
		self       = flag.String("self", "", "this replica's own URL from -peers (replica mode)")
		clusterRtr = flag.Bool("cluster-router", false, "serve as a stateless scatter-gather router over -peers")
		replEvery  = flag.Duration("replicate-every", 0, "replica mode: peer delta pull interval (0 = only on POST /v2/replicate)")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per replica on the consistent-hash ring (0 = default)")
	)
	flag.Parse()

	if err := (serveFlags{
		window:     *window,
		epoch:      *ep,
		shards:     *shards,
		collector:  *collector,
		maxBatch:   *maxBatch,
		cacheSize:  *cacheSize,
		cacheTTL:   *cacheTTL,
		cachePol:   *cachePol,
		cacheShard: *cacheShard,
		cacheSWR:   *cacheSWR,
		ckpt:       *ckpt,
		ckptEvery:  *ckptEvery,
		ingWorkers: *ingWorkers,
		ingQueue:   *ingQueue,
		ingPolicy:  *ingPolicy,
		walDir:     *walDir,
		walFsync:   *walFsync,
		walSegSize: *walSegSize,
		peers:      *peers,
		self:       *self,
		router:     *clusterRtr,
		replEvery:  *replEvery,
		vnodes:     *vnodes,
	}).validate(); err != nil {
		log.Fatal(err)
	}
	policy, _ := ingest.ParsePolicy(*ingPolicy) // validated above
	tuning := ingest.Tuning{Workers: *ingWorkers, Queue: *ingQueue, Policy: policy}

	spec := sketch.Spec{Lambda: *lambda, MemoryBytes: *mem, Seed: *seed, Shards: *shards}
	cfg := queryd.Config{
		CacheCapacity:   *cacheSize,
		CacheTTL:        *cacheTTL,
		CachePolicy:     *cachePol,
		CacheShards:     *cacheShard,
		CacheSWR:        *cacheSWR,
		MaxBatch:        *maxBatch,
		CheckpointPath:  *ckpt,
		CheckpointEvery: *ckptEvery,
		Algo:            *algo,
		Spec:            spec,
		Logf:            log.Printf,
		DisableMetrics:  !*metrics,
	}

	// The WAL opens before any backend: Open repairs a torn tail and loads
	// the manifest, and the backend replays the un-checkpointed suffix
	// before serving anything.
	var wlog *wal.Log
	if *walDir != "" {
		fp, _ := wal.ParseFsync(*walFsync) // validated above
		var err error
		wlog, err = wal.Open(wal.Options{Dir: *walDir, SegmentBytes: *walSegSize, Fsync: fp, Logf: log.Printf})
		if err != nil {
			log.Fatalf("rsserve: %v", err)
		}
		defer wlog.Close()
	}
	ckptLSN, err := checkpointLSN(*ckpt)
	if err != nil {
		log.Fatalf("rsserve: %v", err)
	}

	peerList := cluster.ParsePeers(*peers)

	var (
		backend queryd.Backend
		mode    string
		col     *netsum.Collector
	)
	if *clusterRtr {
		// The router owns no sketch: it partitions batches on the ring,
		// fans them out to the owning replicas, and stitches the answers.
		rt, err := cluster.NewRouter(cluster.RouterConfig{
			Membership: cluster.Membership{Peers: peerList, VNodes: *vnodes},
			Algo:       *algo,
			Logf:       log.Printf,
		})
		if err != nil {
			log.Fatalf("rsserve: %v", err)
		}
		backend = rt
		mode = fmt.Sprintf("cluster router over %d replicas", len(peerList))
	} else if *collector != "" {
		// The collector forces the emergency layer on so composed bounds
		// stay unconditional; the checkpoint header must describe the
		// sketch actually built.
		spec.Emergency = true
		cfg.Spec = spec
		// NewCollector replays the WAL tail past the checkpoint's cut
		// before accepting connections, so replayed and live batches never
		// interleave.
		col, err = netsum.NewCollector(*collector, netsum.CollectorConfig{
			Algo:              *algo,
			Spec:              spec,
			Epoch:             *ep,
			WindowEpochs:      *window,
			DisableMergedView: *noMerge,
			Ingest:            tuning,
			WAL:               wlog,
			WALStartLSN:       ckptLSN,
			Logf:              log.Printf,
		})
		if err != nil {
			log.Fatalf("rsserve: %v", err)
		}
		defer col.Close()
		if err := maybeRestore(*ckpt, *algo, spec, col.RestoreBaseline); err != nil {
			log.Fatalf("rsserve: %v", err)
		}
		backend = queryd.CollectorBackend{C: col, Algo: *algo}
		mode = fmt.Sprintf("collector on %s", col.Addr())
	} else {
		bcfg := queryd.SketchBackendConfig{Algo: *algo, Spec: spec, Epoch: *ep, Windows: *window}
		if *ingWorkers > 0 {
			bcfg.Ingest = &tuning
		}
		b, err := queryd.NewSketchBackendFrom(bcfg)
		if err != nil {
			log.Fatalf("rsserve: %v", err)
		}
		defer b.Close()
		if err := maybeRestore(*ckpt, *algo, spec, b.Restore); err != nil {
			log.Fatalf("rsserve: %v", err)
		}
		if wlog != nil {
			// Replays everything past the checkpoint cut through the same
			// ingest path, then starts intercepting writes.
			if err := b.AttachWAL(wlog, ckptLSN); err != nil {
				log.Fatalf("rsserve: %v", err)
			}
		}
		backend = b
		mode = "standalone"
		if *ep > 0 {
			mode = fmt.Sprintf("standalone, sliding window (epoch=%v, window=%d)", *ep, *window)
		}
		if *ingWorkers > 0 {
			mode += fmt.Sprintf(", ingest %d workers/%s", *ingWorkers, policy)
		}
		if *self != "" {
			// Replica mode wraps the local backend: ingest stays local, but
			// queries answer from a merged view of every peer's sealed delta.
			selfIdx, err := (serveFlags{peers: *peers, self: *self}).selfIndex()
			if err != nil {
				log.Fatalf("%v", err) // unreachable: validated above
			}
			rep, err := cluster.NewReplica(b, *algo, spec,
				cluster.Membership{Peers: peerList, Self: selfIdx, VNodes: *vnodes}, log.Printf)
			if err != nil {
				log.Fatalf("rsserve: %v", err)
			}
			rp := cluster.NewReplicator(rep, *replEvery, nil)
			rp.Start()
			defer rp.Close()
			backend = rep
			mode = fmt.Sprintf("cluster replica %d of %d (replicate-every=%v)", selfIdx, len(peerList), *replEvery)
		}
	}
	if wlog != nil {
		mode += fmt.Sprintf(", wal %s (fsync=%s)", *walDir, wlog.Stats().Policy)
	}

	s, err := queryd.New(backend, cfg)
	if err != nil {
		log.Fatalf("rsserve: %v", err)
	}
	if *pprofAddr != "" {
		// pprof lives on its own listener and mux: profiles stay off the
		// query port (and its request histograms), and the default mux is
		// never touched.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, telhttp.PprofHandler()); err != nil {
				log.Fatalf("rsserve: pprof: %v", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	srv := &http.Server{Addr: *listen, Handler: s.Handler()}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("rsserve: %v", err)
		}
	}()
	fmt.Printf("rsserve listening on http://%s (%s, %s, %dB, cache %d entries/%v TTL, policy %s)\n",
		*listen, *algo, mode, *mem, *cacheSize, *cacheTTL, *cachePol)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("\nshutting down")
	srv.Close()
	if err := s.Close(); err != nil {
		log.Printf("rsserve: final checkpoint: %v", err)
	}
}

// maybeRestore warm-restarts from path when a checkpoint exists there,
// refusing headers that do not describe the configured sketch (a restored
// snapshot only answers correctly for the Spec it was written from).
func maybeRestore(path, algo string, spec sketch.Spec, restore func(io.Reader) error) error {
	if path == "" {
		return nil
	}
	gotAlgo, gotSpec, _, payload, err := queryd.OpenCheckpoint(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer payload.Close()
	if gotAlgo != algo || gotSpec != spec {
		return fmt.Errorf("checkpoint %s holds %s %+v, server configured for %s %+v",
			path, gotAlgo, gotSpec, algo, spec)
	}
	if err := restore(payload); err != nil {
		return err
	}
	log.Printf("rsserve: warm-restarted from %s (%s)", path, gotAlgo)
	return nil
}

// checkpointLSN peeks the WAL cut recorded in path's checkpoint header — the
// position replay resumes after — without reading the snapshot. 0 when no
// checkpoint exists yet (or it predates WAL support).
func checkpointLSN(path string) (uint64, error) {
	if path == "" {
		return 0, nil
	}
	_, _, lsn, payload, err := queryd.OpenCheckpoint(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	payload.Close()
	return lsn, nil
}
