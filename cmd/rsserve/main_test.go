package main

import (
	"errors"
	"testing"
	"time"

	"repro/internal/query"
)

// TestValidateFlags pins every rejected combination to its named error, so
// misconfigurations fail fast with a reason instead of a late panic.
func TestValidateFlags(t *testing.T) {
	ok := serveFlags{maxBatch: query.MaxBatchKeys, cacheSize: 4096}
	if err := ok.validate(); err != nil {
		t.Fatalf("default-equivalent flags rejected: %v", err)
	}
	epochal := ok
	epochal.epoch = 10 * time.Second
	epochal.window = 8
	if err := epochal.validate(); err != nil {
		t.Fatalf("epoch+window rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*serveFlags)
		want   error
	}{
		{"window without epoch", func(f *serveFlags) { f.window = 8 }, errWindowWithoutEpoch},
		{"negative window", func(f *serveFlags) { f.window = -1; f.epoch = time.Second }, errNegativeWindow},
		{"negative epoch", func(f *serveFlags) { f.epoch = -time.Second }, errNegativeEpoch},
		{"zero max-batch", func(f *serveFlags) { f.maxBatch = 0 }, errBadMaxBatch},
		{"oversized max-batch", func(f *serveFlags) { f.maxBatch = query.MaxBatchKeys + 1 }, errBadMaxBatch},
		{"zero cache", func(f *serveFlags) { f.cacheSize = 0 }, errBadCacheSize},
		{"negative ttl", func(f *serveFlags) { f.cacheTTL = -time.Second }, errNegativeCacheTTL},
		{"interval without path", func(f *serveFlags) { f.ckptEvery = time.Minute }, errCheckpointEveryNoPath},
		{"negative shards", func(f *serveFlags) { f.shards = -2 }, errNegativeShards},
		{"shards with collector", func(f *serveFlags) { f.shards = 4; f.collector = "127.0.0.1:7777" }, errShardsWithCollector},
		{"negative ingest workers", func(f *serveFlags) { f.ingWorkers = -1 }, errNegativeIngestWorkers},
		{"negative ingest queue", func(f *serveFlags) { f.ingQueue = -1 }, errBadIngestQueue},
	}
	for _, c := range cases {
		f := ok
		c.mutate(&f)
		if err := f.validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}
