package main

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/query"
)

// TestValidateFlags pins every rejected combination to its named error, so
// misconfigurations fail fast with a reason instead of a late panic.
func TestValidateFlags(t *testing.T) {
	ok := serveFlags{maxBatch: query.MaxBatchKeys, cacheSize: 4096}
	if err := ok.validate(); err != nil {
		t.Fatalf("default-equivalent flags rejected: %v", err)
	}
	tuned := ok
	tuned.cachePol = "s3fifo"
	tuned.cacheShard = 16
	tuned.cacheSWR = time.Second
	if err := tuned.validate(); err != nil {
		t.Fatalf("tuned cache flags rejected: %v", err)
	}
	epochal := ok
	epochal.epoch = 10 * time.Second
	epochal.window = 8
	if err := epochal.validate(); err != nil {
		t.Fatalf("epoch+window rejected: %v", err)
	}
	replica := ok
	replica.peers = "http://a:1, http://b:2/" // normalization must not desync -self
	replica.self = "http://b:2"
	replica.replEvery = 5 * time.Second
	if err := replica.validate(); err != nil {
		t.Fatalf("replica flags rejected: %v", err)
	}
	if idx, err := replica.selfIndex(); idx != 1 || err != nil {
		t.Fatalf("selfIndex = %d, %v; want 1", idx, err)
	}
	router := ok
	router.peers = "http://a:1,http://b:2,http://c:3"
	router.router = true
	if err := router.validate(); err != nil {
		t.Fatalf("router flags rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*serveFlags)
		want   error
	}{
		{"window without epoch", func(f *serveFlags) { f.window = 8 }, errWindowWithoutEpoch},
		{"negative window", func(f *serveFlags) { f.window = -1; f.epoch = time.Second }, errNegativeWindow},
		{"negative epoch", func(f *serveFlags) { f.epoch = -time.Second }, errNegativeEpoch},
		{"zero max-batch", func(f *serveFlags) { f.maxBatch = 0 }, errBadMaxBatch},
		{"oversized max-batch", func(f *serveFlags) { f.maxBatch = query.MaxBatchKeys + 1 }, errBadMaxBatch},
		{"zero cache", func(f *serveFlags) { f.cacheSize = 0 }, errBadCacheSize},
		{"negative ttl", func(f *serveFlags) { f.cacheTTL = -time.Second }, errNegativeCacheTTL},
		{"negative cache shards", func(f *serveFlags) { f.cacheShard = -1 }, errNegativeCacheShards},
		{"negative cache swr", func(f *serveFlags) { f.cacheSWR = -time.Second }, errNegativeCacheSWR},
		{"unknown cache policy", func(f *serveFlags) { f.cachePol = "arc" }, errBadCachePolicy},
		{"interval without path", func(f *serveFlags) { f.ckptEvery = time.Minute }, errCheckpointEveryNoPath},
		{"negative shards", func(f *serveFlags) { f.shards = -2 }, errNegativeShards},
		{"shards with collector", func(f *serveFlags) { f.shards = 4; f.collector = "127.0.0.1:7777" }, errShardsWithCollector},
		{"negative ingest workers", func(f *serveFlags) { f.ingWorkers = -1 }, errNegativeIngestWorkers},
		{"negative ingest queue", func(f *serveFlags) { f.ingQueue = -1 }, errBadIngestQueue},
		{"router without peers", func(f *serveFlags) { f.router = true }, errRouterNeedsPeers},
		{"self without peers", func(f *serveFlags) { f.self = "http://a:1" }, errSelfNeedsPeers},
		{"router with self", func(f *serveFlags) {
			f.router = true
			f.peers = "http://a:1,http://b:2"
			f.self = "http://a:1"
		}, errRouterWithSelf},
		{"peers without role", func(f *serveFlags) { f.peers = "http://a:1,http://b:2" }, errPeersNeedRole},
		{"cluster with collector", func(f *serveFlags) {
			f.router = true
			f.peers = "http://a:1"
			f.collector = "127.0.0.1:7777"
		}, errClusterWithCollector},
		{"cluster with epoch", func(f *serveFlags) {
			f.peers = "http://a:1,http://b:2"
			f.self = "http://a:1"
			f.epoch = time.Second
		}, errClusterWithEpoch},
		{"router with wal", func(f *serveFlags) {
			f.router = true
			f.peers = "http://a:1"
			f.walDir = "/tmp/wal"
			f.walSegSize = 4096
		}, errRouterIsStateless},
		{"router with checkpoint", func(f *serveFlags) {
			f.router = true
			f.peers = "http://a:1"
			f.ckpt = "state.ckpt"
		}, errRouterIsStateless},
		{"negative replicate-every", func(f *serveFlags) {
			f.peers = "http://a:1,http://b:2"
			f.self = "http://a:1"
			f.replEvery = -time.Second
		}, errNegativeReplicate},
		{"replicate-every on router", func(f *serveFlags) {
			f.router = true
			f.peers = "http://a:1"
			f.replEvery = time.Second
		}, errReplicateNeedsReplica},
		{"negative vnodes", func(f *serveFlags) {
			f.peers = "http://a:1,http://b:2"
			f.self = "http://a:1"
			f.vnodes = -1
		}, errNegativeVNodes},
		{"self outside peers", func(f *serveFlags) {
			f.peers = "http://a:1,http://b:2"
			f.self = "http://c:3"
		}, cluster.ErrNotReplica},
	}
	for _, c := range cases {
		f := ok
		c.mutate(&f)
		if err := f.validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}
