// Command rsdemo streams a workload through ReliableSketch and every
// competitor side by side and prints an accuracy/speed scoreboard — a quick
// way to see the paper's headline claim (zero outliers at near-best
// throughput) on any dataset and memory budget.
//
// Usage:
//
//	rsdemo                       # IP trace, 1MB-equivalent memory, Λ=25
//	rsdemo -dataset hadoop -mem 262144 -lambda 10
//	rsdemo -algos Ours,CM_fast,SS
//	rsdemo -epochs 6 -window 3   # sliding-window scoreboard (Mergeable set)
//
// With -epochs, the stream is replayed as that many equal epochs through an
// epoch ring per algorithm, and the scoreboard evaluates sliding-window
// estimates over the last -window sealed epochs against the window's true
// sums — the merged-view accuracy story, on every Mergeable variant.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/epoch"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stream"
)

func main() {
	var (
		dataset = flag.String("dataset", "ip", "ip | web | dc | hadoop | zipf0.3 | zipf3.0")
		items   = flag.Int("items", 1_000_000, "stream length")
		mem     = flag.Int("mem", 104_858, "memory budget in bytes per sketch")
		lambda  = flag.Uint64("lambda", 25, "error tolerance Λ")
		seed    = flag.Uint64("seed", 1, "seed")
		algos   = flag.String("algos", "", "comma-separated registry names (default: every registered variant)")
		epochs  = flag.Int("epochs", 0, "replay the stream as this many epochs through a ring (0 = cumulative scoreboard)")
		window  = flag.Int("window", 0, "sliding-window size in epochs for -epochs mode (0 = all sealed)")
	)
	flag.Parse()

	s, ok := stream.ByName(*dataset, *items, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "rsdemo: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	names := sketch.Names()
	if *algos != "" {
		var err error
		if names, err = sketch.ParseNames(*algos); err != nil {
			fmt.Fprintf(os.Stderr, "rsdemo: %v\n", err)
			os.Exit(2)
		}
	}
	fmt.Printf("dataset=%s items=%d distinct=%d memory=%dB Λ=%d\n\n",
		s.Name, s.Len(), s.Distinct(), *mem, *lambda)

	if *epochs > 0 {
		windowScoreboard(s, names, *mem, *lambda, *seed, *epochs, *window)
		return
	}

	t := &harness.Table{
		ID:    "demo",
		Title: "accuracy & speed scoreboard",
		Header: []string{"Algorithm", "#Outliers", "AAE", "ARE",
			"Insert(Mpps)", "Query(Mpps)", "QueryBatch(Mpps)", "Memory(B)"},
	}
	spec := sketch.Spec{MemoryBytes: *mem, Lambda: *lambda, Seed: *seed}
	for _, name := range names {
		sk := sketch.MustBuild(name, spec)
		insDur := metrics.Feed(sk, s)
		rep := metrics.Evaluate(sk, s, *lambda)
		qryDur, qn := metrics.QueryAll(sk, s)
		bqryDur, bqn := metrics.QueryAllBatch(sk, s)
		t.AddRow(name, rep.Outliers, rep.AAE, rep.ARE,
			metrics.Mpps(s.Len(), insDur), metrics.Mpps(qn, qryDur),
			metrics.Mpps(bqn, bqryDur), sk.MemoryBytes())
	}
	t.Notes = append(t.Notes,
		"Insert(Mpps) uses the system's batch ingestion path (native batching where the algorithm implements it)",
		"QueryBatch(Mpps) reads through the unified query plane's batch path in 256-key batches")
	fmt.Println(t)
}

// windowScoreboard replays the stream as `epochs` simulated epochs through
// an epoch ring per algorithm and scores the sliding window of the last
// `window` sealed epochs against that window's true sums.
func windowScoreboard(s *stream.Stream, names []string, mem int, lambda, seed uint64, epochs, window int) {
	// Slice the stream into epoch chunks once; ceil division can yield
	// fewer chunks than requested on short streams, and ring feeding and
	// truth MUST agree on the same boundaries.
	per := (s.Len() + epochs - 1) / epochs
	var slices [][]stream.Item
	for lo := 0; lo < s.Len(); lo += per {
		hi := lo + per
		if hi > s.Len() {
			hi = s.Len()
		}
		slices = append(slices, s.Items[lo:hi])
	}
	epochs = len(slices)
	if epochs == 0 {
		fmt.Println("rsdemo: stream too short for -epochs mode")
		return
	}
	if window <= 0 || window > epochs {
		window = epochs
	}
	// True sums over the items of the last `window` epoch slices.
	truth := map[uint64]uint64{}
	for _, slice := range slices[epochs-window:] {
		for _, it := range slice {
			truth[it.Key] += it.Value
		}
	}

	t := &harness.Table{
		ID:     "demo-window",
		Title:  fmt.Sprintf("sliding-window scoreboard (last %d of %d epochs)", window, epochs),
		Header: []string{"Algorithm", "#Outliers", "AAE", "ARE", "Memory(B)"},
	}
	for _, name := range names {
		entry, _ := sketch.Lookup(name)
		if !entry.Caps.Has(sketch.CapMergeable) {
			t.Notes = append(t.Notes, name+" skipped: no Mergeable support, window views would sum per-epoch error")
			continue
		}
		simNow := time.Unix(0, 0)
		r := epoch.NewRing(entry.Factory(sketch.Spec{Lambda: lambda, Seed: seed}),
			mem, time.Second, epochs, func() time.Time { return simNow })
		for _, slice := range slices {
			r.InsertBatch(slice)
			simNow = simNow.Add(time.Second)
		}
		r.Insert(0, 0) // seal the final epoch

		var outliers, keys int
		var sumAbs, sumRel float64
		for key, f := range truth {
			est := r.QueryWindow(key, window)
			diff := est - f
			if f > est {
				diff = f - est
			}
			if diff > lambda {
				outliers++
			}
			sumAbs += float64(diff)
			sumRel += float64(diff) / float64(f)
			keys++
		}
		t.AddRow(name, outliers, sumAbs/float64(keys), sumRel/float64(keys), r.MemoryBytes())
	}
	t.Notes = append(t.Notes,
		"window estimates come from the ring's cached merged view (one merge per rotation, not per query)")
	fmt.Println(t)
}
