// Command rsdemo streams a workload through ReliableSketch and every
// competitor side by side and prints an accuracy/speed scoreboard — a quick
// way to see the paper's headline claim (zero outliers at near-best
// throughput) on any dataset and memory budget.
//
// Usage:
//
//	rsdemo                       # IP trace, 1MB-equivalent memory, Λ=25
//	rsdemo -dataset hadoop -mem 262144 -lambda 10
//	rsdemo -algos Ours,CM_fast,SS
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stream"
)

func main() {
	var (
		dataset = flag.String("dataset", "ip", "ip | web | dc | hadoop | zipf0.3 | zipf3.0")
		items   = flag.Int("items", 1_000_000, "stream length")
		mem     = flag.Int("mem", 104_858, "memory budget in bytes per sketch")
		lambda  = flag.Uint64("lambda", 25, "error tolerance Λ")
		seed    = flag.Uint64("seed", 1, "seed")
		algos   = flag.String("algos", "", "comma-separated registry names (default: every registered variant)")
	)
	flag.Parse()

	s, ok := stream.ByName(*dataset, *items, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "rsdemo: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	names := sketch.Names()
	if *algos != "" {
		var err error
		if names, err = sketch.ParseNames(*algos); err != nil {
			fmt.Fprintf(os.Stderr, "rsdemo: %v\n", err)
			os.Exit(2)
		}
	}
	fmt.Printf("dataset=%s items=%d distinct=%d memory=%dB Λ=%d\n\n",
		s.Name, s.Len(), s.Distinct(), *mem, *lambda)

	t := &harness.Table{
		ID:    "demo",
		Title: "accuracy & speed scoreboard",
		Header: []string{"Algorithm", "#Outliers", "AAE", "ARE",
			"Insert(Mpps)", "Query(Mpps)", "Memory(B)"},
	}
	spec := sketch.Spec{MemoryBytes: *mem, Lambda: *lambda, Seed: *seed}
	for _, name := range names {
		sk := sketch.MustBuild(name, spec)
		insDur := metrics.Feed(sk, s)
		rep := metrics.Evaluate(sk, s, *lambda)
		qryDur, qn := metrics.QueryAll(sk, s)
		t.AddRow(name, rep.Outliers, rep.AAE, rep.ARE,
			metrics.Mpps(s.Len(), insDur), metrics.Mpps(qn, qryDur), sk.MemoryBytes())
	}
	t.Notes = append(t.Notes,
		"Insert(Mpps) uses the system's batch ingestion path (native batching where the algorithm implements it)")
	fmt.Println(t)
}
