// Command rsbench regenerates the paper's tables and figures as text rows.
//
// Usage:
//
//	rsbench -list                     # show every reproducible artifact
//	rsbench -list-algos               # show every registered algorithm
//	rsbench -exp fig4b                # run one experiment at default scale
//	rsbench -exp all -items 10000000  # full paper scale
//	rsbench -exp fig7a -trials 100    # the paper's worst-of-100 methodology
//	rsbench -exp fig4b -algos Ours,SS # restrict comparisons to named variants
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/sketch"
)

// jsonRun is one experiment's machine-readable result.
type jsonRun struct {
	Experiment string           `json:"experiment"`
	Tables     []*harness.Table `json:"tables"`
	Seconds    float64          `json:"seconds"`
}

// jsonOutput is the -json file schema: the options the run used plus every
// experiment's tables, so perf trajectories (BENCH_*.json) can be diffed
// across commits without scraping aligned text.
type jsonOutput struct {
	Options harness.Options `json:"options"`
	Runs    []jsonRun       `json:"runs"`
}

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (e.g. fig4a, table3) or 'all'")
		list      = flag.Bool("list", false, "list all experiments and exit")
		listAlgos = flag.Bool("list-algos", false, "list registered algorithm variants and exit")
		items     = flag.Int("items", harness.DefaultOptions.Items, "stream length")
		seed      = flag.Uint64("seed", harness.DefaultOptions.Seed, "generator and hash seed")
		trials    = flag.Int("trials", harness.DefaultOptions.Trials, "repetitions for worst-case experiments")
		scale     = flag.String("scale", "", "preset: 'paper' (10M items, 100 trials) or 'quick' (100k items)")
		algos     = flag.String("algos", "", "comma-separated registry names restricting comparison experiments")
		jsonPath  = flag.String("json", "", "also write machine-readable results to this file")
	)
	flag.Parse()

	o := harness.Options{Items: *items, Seed: *seed, Trials: *trials}
	switch *scale {
	case "paper":
		o = harness.PaperOptions
	case "quick":
		o = harness.Options{Items: 100_000, Seed: *seed, Trials: 3}
	case "":
	default:
		fmt.Fprintf(os.Stderr, "rsbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *algos != "" {
		names, err := sketch.ParseNames(*algos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsbench: %v\n", err)
			os.Exit(2)
		}
		o.Algos = names
	}

	if *list {
		for _, e := range harness.List() {
			fmt.Printf("%-8s  %s\n", e.ID, e.Description)
		}
		return
	}
	if *listAlgos {
		for _, e := range sketch.All() {
			fmt.Printf("%-10s  %s\n", e.Name, e.Caps)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "rsbench: -exp or -list required")
		flag.Usage()
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ids[:0]
		for _, e := range harness.List() {
			ids = append(ids, e.ID)
		}
	}
	out := jsonOutput{Options: o}
	for _, id := range ids {
		start := time.Now()
		tables, err := harness.Run(id, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsbench: %v\n", err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t)
		}
		elapsed := time.Since(start)
		fmt.Printf("(%s completed in %v)\n\n", id, elapsed.Round(time.Millisecond))
		out.Runs = append(out.Runs, jsonRun{Experiment: id, Tables: tables, Seconds: elapsed.Seconds()})
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "rsbench: encoding -json output: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(results written to %s)\n", *jsonPath)
	}
}
