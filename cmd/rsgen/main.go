// Command rsgen generates the synthetic workloads used throughout the
// evaluation and writes them as binary key-value streams, printing
// distribution statistics. The on-disk format is a sequence of
// little-endian (uint64 key, uint64 value) pairs, consumable by any tool.
//
// Usage:
//
//	rsgen -dataset ip -items 1000000 -out iptrace.bin
//	rsgen -dataset zipf3.0 -items 32000000 -stats-only
//	rsgen -dist zipf -skew 1.2 -distinct 5000 -items 100000
//	rsgen -dist zipf -skew 1.1 -items 50000 -ingest http://127.0.0.1:8080 -batch 2000
//	rsgen -dist zipf -skew 1.1 -items 50000 -query http://127.0.0.1:8080 -qbatch 64 -qconc 8
//
// -dist zipf builds a parametric Zipf stream (any -skew and -distinct, not
// just the named zipf0.3/zipf3.0 presets). -ingest streams the workload
// into a running rsserve (or cluster router) over POST /v2/ingest instead
// of writing a file, reporting the summed Ack so dropped writes are
// visible. -query drives the workload's keys through POST /v2/query as
// point batches instead — the read-side sibling, for exercising the result
// cache under a realistic (zipf-skewed) key popularity — reporting QPS,
// p50/p99 batch latency, and the fraction of keys served from the cache.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/stream"
)

func main() {
	var (
		dataset   = flag.String("dataset", "ip", "ip | web | dc | hadoop | zipf0.3 | zipf3.0")
		dist      = flag.String("dist", "", "parametric distribution: zipf (overrides -dataset; tune with -skew and -distinct)")
		skew      = flag.Float64("skew", 1.1, "Zipf skew for -dist zipf")
		distinct  = flag.Int("distinct", 10_000, "distinct keys for -dist zipf")
		items     = flag.Int("items", 1_000_000, "stream length")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output file (binary stream)")
		statsOnly = flag.Bool("stats-only", false, "print statistics without writing")
		weighted  = flag.Bool("bytes", false, "emit byte-weighted values (packet sizes)")
		ingestURL = flag.String("ingest", "", "stream into this server's POST /v2/ingest instead of a file")
		batch     = flag.Int("batch", 4096, "items per /v2/ingest request")
		queryURL  = flag.String("query", "", "drive this server's POST /v2/query with the stream's keys instead of writing a file")
		qbatch    = flag.Int("qbatch", 64, "keys per /v2/query batch in -query mode")
		qconc     = flag.Int("qconc", 4, "concurrent query clients in -query mode")
	)
	flag.Parse()

	var s *stream.Stream
	switch *dist {
	case "":
		var ok bool
		s, ok = stream.ByName(*dataset, *items, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "rsgen: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
	case "zipf":
		if *skew < 0 || *distinct < 1 || *items < *distinct {
			fmt.Fprintf(os.Stderr, "rsgen: -dist zipf needs -skew ≥ 0 and -items ≥ -distinct ≥ 1\n")
			os.Exit(2)
		}
		s = stream.Zipf(*items, *distinct, *skew, *seed)
	default:
		fmt.Fprintf(os.Stderr, "rsgen: unknown -dist %q (want zipf)\n", *dist)
		os.Exit(2)
	}
	if *weighted {
		s = stream.ByteWeighted(s, *seed)
	}

	printStats(s)
	if *queryURL != "" {
		if *qbatch < 1 || *qconc < 1 {
			fmt.Fprintln(os.Stderr, "rsgen: -qbatch and -qconc must be ≥ 1")
			os.Exit(2)
		}
		if err := queryStream(*queryURL, s, *qbatch, *qconc); err != nil {
			fmt.Fprintf(os.Stderr, "rsgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *ingestURL != "" {
		if *batch < 1 {
			fmt.Fprintln(os.Stderr, "rsgen: -batch must be ≥ 1")
			os.Exit(2)
		}
		if err := ingestStream(*ingestURL, s, *batch); err != nil {
			fmt.Fprintf(os.Stderr, "rsgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *statsOnly || *out == "" {
		return
	}
	if err := stream.WriteFile(*out, s); err != nil {
		fmt.Fprintf(os.Stderr, "rsgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d items (%d bytes) to %s\n", s.Len(), s.Len()*16, *out)
}

// ingestStream POSTs the stream to base/v2/ingest in JSON batches and sums
// the Acks. A non-200 or short ack aborts: an ingest tool that keeps
// pushing after the server refused a batch would misreport what the server
// actually holds.
func ingestStream(base string, s *stream.Stream, batchSize int) error {
	type wireItem struct {
		Key   uint64 `json:"key"`
		Value uint64 `json:"value"`
	}
	var accepted, dropped int
	for off := 0; off < len(s.Items); off += batchSize {
		end := off + batchSize
		if end > len(s.Items) {
			end = len(s.Items)
		}
		items := make([]wireItem, end-off)
		for i, it := range s.Items[off:end] {
			items[i] = wireItem{Key: it.Key, Value: it.Value}
		}
		body, err := json.Marshal(map[string]any{"items": items})
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/v2/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("batch at %d: %w", off, err)
		}
		var ack struct {
			Accepted int `json:"accepted"`
			Dropped  int `json:"dropped"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("batch at %d: server answered %s", off, resp.Status)
		}
		if decErr != nil {
			return fmt.Errorf("batch at %d: decoding ack: %w", off, decErr)
		}
		accepted += ack.Accepted
		dropped += ack.Dropped
	}
	fmt.Printf("ingested %d items into %s (%d accepted, %d dropped)\n",
		len(s.Items), base, accepted, dropped)
	return nil
}

// queryStream partitions the stream's keys into point-query batches and
// drives them through base/v2/query from conc concurrent clients — the
// read-side load generator. The stream's key order IS the popularity
// distribution (a zipf stream repeats hot keys), so the server's result
// cache sees a realistic skewed reference pattern. Prints throughput,
// batch latency percentiles, and the cache's share of the keys served.
func queryStream(base string, s *stream.Stream, batchSize, conc int) error {
	type batchJob struct{ keys []uint64 }
	jobs := make([]batchJob, 0, len(s.Items)/batchSize+1)
	for off := 0; off < len(s.Items); off += batchSize {
		end := off + batchSize
		if end > len(s.Items) {
			end = len(s.Items)
		}
		keys := make([]uint64, end-off)
		for i, it := range s.Items[off:end] {
			keys[i] = it.Key
		}
		jobs = append(jobs, batchJob{keys: keys})
	}

	var (
		mu         sync.Mutex
		latencies  []time.Duration
		totalKeys  int
		cachedKeys int
		firstErr   error
	)
	next := make(chan batchJob)
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range next {
				body, err := json.Marshal(map[string]any{"kind": "point", "keys": job.keys})
				if err == nil {
					start := time.Now()
					var resp *http.Response
					resp, err = http.Post(base+"/v2/query", "application/json", bytes.NewReader(body))
					if err == nil {
						var ans struct {
							CachedKeys int `json:"cached_keys"`
						}
						decErr := json.NewDecoder(resp.Body).Decode(&ans)
						resp.Body.Close()
						switch {
						case resp.StatusCode != http.StatusOK:
							err = fmt.Errorf("server answered %s", resp.Status)
						case decErr != nil:
							err = fmt.Errorf("decoding answer: %w", decErr)
						default:
							mu.Lock()
							latencies = append(latencies, time.Since(start))
							totalKeys += len(job.keys)
							cachedKeys += ans.CachedKeys
							mu.Unlock()
						}
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	start := time.Now()
	for _, job := range jobs {
		next <- job
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Printf("queried %d keys in %d batches against %s (%d clients)\n",
		totalKeys, len(latencies), base, conc)
	fmt.Printf("elapsed:    %v (%.0f keys/s, %.0f batches/s)\n",
		elapsed.Round(time.Millisecond),
		float64(totalKeys)/elapsed.Seconds(), float64(len(latencies))/elapsed.Seconds())
	fmt.Printf("latency:    p50 %v  p99 %v\n", pct(0.50).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	fmt.Printf("cache:      %d/%d keys served cached (%.2f%%)\n",
		cachedKeys, totalKeys, 100*float64(cachedKeys)/float64(totalKeys))
	return nil
}

func printStats(s *stream.Stream) {
	truth := s.Truth()
	freqs := make([]uint64, 0, len(truth))
	for _, f := range truth {
		freqs = append(freqs, f)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	fmt.Printf("dataset:   %s\n", s.Name)
	fmt.Printf("items:     %d\n", s.Len())
	fmt.Printf("total:     %d\n", s.Total())
	fmt.Printf("distinct:  %d\n", s.Distinct())
	fmt.Printf("max key:   %d\n", freqs[0])
	fmt.Printf("median:    %d\n", freqs[len(freqs)/2])
	top10 := uint64(0)
	for i := 0; i < 10 && i < len(freqs); i++ {
		top10 += freqs[i]
	}
	fmt.Printf("top-10 share: %.2f%%\n", 100*float64(top10)/float64(s.Total()))
}
