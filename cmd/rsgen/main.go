// Command rsgen generates the synthetic workloads used throughout the
// evaluation and writes them as binary key-value streams, printing
// distribution statistics. The on-disk format is a sequence of
// little-endian (uint64 key, uint64 value) pairs, consumable by any tool.
//
// Usage:
//
//	rsgen -dataset ip -items 1000000 -out iptrace.bin
//	rsgen -dataset zipf3.0 -items 32000000 -stats-only
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/stream"
)

func main() {
	var (
		dataset   = flag.String("dataset", "ip", "ip | web | dc | hadoop | zipf0.3 | zipf3.0")
		items     = flag.Int("items", 1_000_000, "stream length")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output file (binary stream)")
		statsOnly = flag.Bool("stats-only", false, "print statistics without writing")
		weighted  = flag.Bool("bytes", false, "emit byte-weighted values (packet sizes)")
	)
	flag.Parse()

	s, ok := stream.ByName(*dataset, *items, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "rsgen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if *weighted {
		s = stream.ByteWeighted(s, *seed)
	}

	printStats(s)
	if *statsOnly || *out == "" {
		return
	}
	if err := stream.WriteFile(*out, s); err != nil {
		fmt.Fprintf(os.Stderr, "rsgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d items (%d bytes) to %s\n", s.Len(), s.Len()*16, *out)
}

func printStats(s *stream.Stream) {
	truth := s.Truth()
	freqs := make([]uint64, 0, len(truth))
	for _, f := range truth {
		freqs = append(freqs, f)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	fmt.Printf("dataset:   %s\n", s.Name)
	fmt.Printf("items:     %d\n", s.Len())
	fmt.Printf("total:     %d\n", s.Total())
	fmt.Printf("distinct:  %d\n", s.Distinct())
	fmt.Printf("max key:   %d\n", freqs[0])
	fmt.Printf("median:    %d\n", freqs[len(freqs)/2])
	top10 := uint64(0)
	for i := 0; i < 10 && i < len(freqs); i++ {
		top10 += freqs[i]
	}
	fmt.Printf("top-10 share: %.2f%%\n", 100*float64(top10)/float64(s.Total()))
}
