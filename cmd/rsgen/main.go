// Command rsgen generates the synthetic workloads used throughout the
// evaluation and writes them as binary key-value streams, printing
// distribution statistics. The on-disk format is a sequence of
// little-endian (uint64 key, uint64 value) pairs, consumable by any tool.
//
// Usage:
//
//	rsgen -dataset ip -items 1000000 -out iptrace.bin
//	rsgen -dataset zipf3.0 -items 32000000 -stats-only
//	rsgen -dist zipf -skew 1.2 -distinct 5000 -items 100000
//	rsgen -dist zipf -skew 1.1 -items 50000 -ingest http://127.0.0.1:8080 -batch 2000
//
// -dist zipf builds a parametric Zipf stream (any -skew and -distinct, not
// just the named zipf0.3/zipf3.0 presets). -ingest streams the workload
// into a running rsserve (or cluster router) over POST /v2/ingest instead
// of writing a file, reporting the summed Ack so dropped writes are
// visible.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"

	"repro/internal/stream"
)

func main() {
	var (
		dataset   = flag.String("dataset", "ip", "ip | web | dc | hadoop | zipf0.3 | zipf3.0")
		dist      = flag.String("dist", "", "parametric distribution: zipf (overrides -dataset; tune with -skew and -distinct)")
		skew      = flag.Float64("skew", 1.1, "Zipf skew for -dist zipf")
		distinct  = flag.Int("distinct", 10_000, "distinct keys for -dist zipf")
		items     = flag.Int("items", 1_000_000, "stream length")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output file (binary stream)")
		statsOnly = flag.Bool("stats-only", false, "print statistics without writing")
		weighted  = flag.Bool("bytes", false, "emit byte-weighted values (packet sizes)")
		ingestURL = flag.String("ingest", "", "stream into this server's POST /v2/ingest instead of a file")
		batch     = flag.Int("batch", 4096, "items per /v2/ingest request")
	)
	flag.Parse()

	var s *stream.Stream
	switch *dist {
	case "":
		var ok bool
		s, ok = stream.ByName(*dataset, *items, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "rsgen: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
	case "zipf":
		if *skew < 0 || *distinct < 1 || *items < *distinct {
			fmt.Fprintf(os.Stderr, "rsgen: -dist zipf needs -skew ≥ 0 and -items ≥ -distinct ≥ 1\n")
			os.Exit(2)
		}
		s = stream.Zipf(*items, *distinct, *skew, *seed)
	default:
		fmt.Fprintf(os.Stderr, "rsgen: unknown -dist %q (want zipf)\n", *dist)
		os.Exit(2)
	}
	if *weighted {
		s = stream.ByteWeighted(s, *seed)
	}

	printStats(s)
	if *ingestURL != "" {
		if *batch < 1 {
			fmt.Fprintln(os.Stderr, "rsgen: -batch must be ≥ 1")
			os.Exit(2)
		}
		if err := ingestStream(*ingestURL, s, *batch); err != nil {
			fmt.Fprintf(os.Stderr, "rsgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *statsOnly || *out == "" {
		return
	}
	if err := stream.WriteFile(*out, s); err != nil {
		fmt.Fprintf(os.Stderr, "rsgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d items (%d bytes) to %s\n", s.Len(), s.Len()*16, *out)
}

// ingestStream POSTs the stream to base/v2/ingest in JSON batches and sums
// the Acks. A non-200 or short ack aborts: an ingest tool that keeps
// pushing after the server refused a batch would misreport what the server
// actually holds.
func ingestStream(base string, s *stream.Stream, batchSize int) error {
	type wireItem struct {
		Key   uint64 `json:"key"`
		Value uint64 `json:"value"`
	}
	var accepted, dropped int
	for off := 0; off < len(s.Items); off += batchSize {
		end := off + batchSize
		if end > len(s.Items) {
			end = len(s.Items)
		}
		items := make([]wireItem, end-off)
		for i, it := range s.Items[off:end] {
			items[i] = wireItem{Key: it.Key, Value: it.Value}
		}
		body, err := json.Marshal(map[string]any{"items": items})
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/v2/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("batch at %d: %w", off, err)
		}
		var ack struct {
			Accepted int `json:"accepted"`
			Dropped  int `json:"dropped"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&ack)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("batch at %d: server answered %s", off, resp.Status)
		}
		if decErr != nil {
			return fmt.Errorf("batch at %d: decoding ack: %w", off, decErr)
		}
		accepted += ack.Accepted
		dropped += ack.Dropped
	}
	fmt.Printf("ingested %d items into %s (%d accepted, %d dropped)\n",
		len(s.Items), base, accepted, dropped)
	return nil
}

func printStats(s *stream.Stream) {
	truth := s.Truth()
	freqs := make([]uint64, 0, len(truth))
	for _, f := range truth {
		freqs = append(freqs, f)
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
	fmt.Printf("dataset:   %s\n", s.Name)
	fmt.Printf("items:     %d\n", s.Len())
	fmt.Printf("total:     %d\n", s.Total())
	fmt.Printf("distinct:  %d\n", s.Distinct())
	fmt.Printf("max key:   %d\n", freqs[0])
	fmt.Printf("median:    %d\n", freqs[len(freqs)/2])
	top10 := uint64(0)
	for i := 0; i < 10 && i < len(freqs); i++ {
		top10 += freqs[i]
	}
	fmt.Printf("top-10 share: %.2f%%\n", 100*float64(top10)/float64(s.Total()))
}
