// Command rsagent replays a binary trace file (cmd/rsgen's format) to a
// collector (cmd/rscollector) as a measurement agent, then optionally
// queries keys with certified global bounds.
//
// Usage:
//
//	rsgen -dataset ip -items 1000000 -out ip.bin
//	rsagent -collector 127.0.0.1:7777 -id 1 -trace ip.bin
//	rsagent -collector 127.0.0.1:7777 -id 2 -query 12345
//	rsagent -collector 127.0.0.1:7777 -query 12345,777,42 -window 4
//	rsagent -collector "" -trace ip.bin -algo Ours -mem 262144 -query 12345
//	rsagent -collector "" -trace ip.bin -algo Ours -epoch 10s -window 3 -query 12345
//
// -query takes one key or a comma-separated batch; a batch travels as a
// single typed request (one wire round trip, answered under one collector
// snapshot per agent) through the unified query plane, and the local
// shadow answers through the sketch's native batch path.
//
// With -algo, the agent also maintains a local shadow sketch built from the
// registry (fed through the batch-ingestion path), so queries report the
// local view next to the collector's global certified interval. With
// -collector "" the agent runs offline on the shadow sketch alone.
//
// With -epoch, the shadow sketch becomes an epoch ring: the trace is
// replayed as -window+1 simulated epochs of that length, and -query answers
// over the sliding window of the last -window sealed epochs. Against an
// epoch-mode collector, -window n issues a network window query too.
//
// With -ingest-workers N > 0, the shadow ingests through the async ingest
// plane: a cumulative shadow becomes an ingest.AsyncIngester, an epoch-ring
// shadow is fed through a ring pipeline with epoch-tagged batches (each
// simulated epoch's deltas fold into their own window).
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/ingest"
	"repro/internal/netsum"
	"repro/internal/query"
	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

// parseKeys splits the -query flag's comma-separated key list.
func parseKeys(csv string) ([]uint64, error) {
	var keys []uint64
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-query key %q: %w", part, err)
		}
		keys = append(keys, k)
	}
	if len(keys) > query.MaxBatchKeys {
		return nil, fmt.Errorf("-query batch of %d keys exceeds the plane-wide limit %d",
			len(keys), query.MaxBatchKeys)
	}
	return keys, nil
}

func main() {
	var (
		collector  = flag.String("collector", "127.0.0.1:7777", "collector address (empty = offline, shadow sketch only)")
		id         = flag.Uint64("id", 1, "agent identity")
		trace      = flag.String("trace", "", "binary trace file to replay")
		queryCSV   = flag.String("query", "", "key, or comma-separated key batch, to query after replay")
		batch      = flag.Int("batch", 512, "updates per network frame")
		algo       = flag.String("algo", "", "registry variant for a local shadow sketch (empty = none)")
		lambda     = flag.Uint64("lambda", 25, "shadow sketch error tolerance Λ")
		mem        = flag.Int("mem", 1<<20, "shadow sketch memory (bytes)")
		seed       = flag.Uint64("seed", 1, "shadow sketch hash seed")
		ep         = flag.Duration("epoch", 0, "simulated epoch length for the shadow sketch (0 = cumulative)")
		window     = flag.Int("window", 0, "sliding-window size in epochs for -query (0 = cumulative)")
		ingWorkers = flag.Int("ingest-workers", 0, "async ingest pipeline workers for the shadow sketch (0 = synchronous)")
		ingQueue   = flag.Int("ingest-queue", 0, "per-worker ingest queue depth in batches (0 = default)")
		ingPolicy  = flag.String("ingest-policy", "block", "backpressure when ingest queues fill: block or drop")
	)
	flag.Parse()

	policy, err := ingest.ParsePolicy(*ingPolicy)
	if err != nil {
		log.Fatalf("rsagent: %v", err)
	}
	if *batch < 1 {
		log.Fatalf("rsagent: -batch must be ≥ 1, got %d", *batch)
	}
	tuning := ingest.Tuning{Workers: *ingWorkers, Queue: *ingQueue, Policy: policy}

	queryKeys, err := parseKeys(*queryCSV)
	if err != nil {
		log.Fatalf("rsagent: %v", err)
	}

	spec := sketch.Spec{Lambda: *lambda, MemoryBytes: *mem, Seed: *seed}
	var shadow sketch.Sketch
	var async *ingest.AsyncIngester
	var ring *epoch.Ring
	var ringPipe *ingest.Pipeline
	advanceEpoch := func() {}
	if *algo != "" {
		entry, ok := sketch.Lookup(*algo)
		if !ok {
			log.Fatalf("rsagent: unknown algorithm %q", *algo)
		}
		if *ep > 0 {
			capacity := *window
			if capacity <= 0 {
				capacity = epoch.DefaultCapacity
			}
			// Replay has no timestamps; simulate capacity+1 equal epochs so
			// the requested window is fully populated with sealed traffic.
			// The clock is atomic: with -ingest-workers the ring janitor
			// goroutine reads it concurrently with the replay's advances.
			var simNanos atomic.Int64
			ring = epoch.NewRing(entry.Factory(spec), *mem, *ep, capacity,
				func() time.Time { return time.Unix(0, simNanos.Load()) })
			advanceEpoch = func() { simNanos.Add(int64(*ep)) }
			if *ingWorkers > 0 {
				var err error
				ringPipe, err = ingest.ForRing(ring, func() sketch.Sketch { return entry.Build(spec) }, tuning)
				if err != nil {
					log.Fatalf("rsagent: %v", err)
				}
			}
		} else if *ingWorkers > 0 {
			var err error
			async, err = ingest.NewAsyncIngester(*algo, spec, tuning)
			if err != nil {
				log.Fatalf("rsagent: %v", err)
			}
			shadow = async
		} else {
			shadow = entry.Build(spec)
		}
	}
	if *collector == "" && shadow == nil && ring == nil {
		log.Fatal("rsagent: offline mode (-collector \"\") needs a shadow sketch (-algo)")
	}

	var a *netsum.Agent
	if *collector != "" {
		var err error
		a, err = netsum.Dial(*collector, *id)
		if err != nil {
			log.Fatalf("rsagent: %v", err)
		}
		defer a.Close()
		a.BatchSize = *batch
	}

	if *trace != "" {
		s, err := stream.ReadFile(*trace)
		if err != nil {
			log.Fatalf("rsagent: %v", err)
		}
		if a != nil {
			start := time.Now()
			for _, it := range s.Items {
				if err := a.Record(it.Key, it.Value); err != nil {
					log.Fatalf("rsagent: record: %v", err)
				}
			}
			if err := a.Flush(); err != nil {
				log.Fatalf("rsagent: flush: %v", err)
			}
			elapsed := time.Since(start)
			fmt.Printf("replayed %d items in %v (%.2f Mpps)\n",
				s.Len(), elapsed.Round(time.Millisecond),
				float64(s.Len())/elapsed.Seconds()/1e6)
		}
		if shadow != nil {
			localStart := time.Now()
			if async != nil {
				// Feed the pipeline in wire-sized batches so the workers
				// actually parallelize, then drain for read-your-writes.
				for lo := 0; lo < s.Len(); lo += *batch {
					hi := min(lo+*batch, s.Len())
					async.Submit(ingest.Batch{Items: s.Items[lo:hi]})
				}
				if err := async.Drain(); err != nil {
					log.Fatalf("rsagent: shadow pipeline: %v", err)
				}
				ist := async.Stats()
				fmt.Printf("shadow %s ingested via %d-worker pipeline in %v (%dB, %d folds, %d dropped)\n",
					shadow.Name(), *ingWorkers, time.Since(localStart).Round(time.Millisecond),
					shadow.MemoryBytes(), ist.Folds, ist.Dropped)
			} else {
				sketch.InsertBatch(shadow, s.Items)
				fmt.Printf("shadow %s ingested locally in %v (%dB)\n",
					shadow.Name(), time.Since(localStart).Round(time.Millisecond), shadow.MemoryBytes())
			}
		}
		if ring != nil {
			localStart := time.Now()
			epochs := ring.Capacity() + 1
			per := (s.Len() + epochs - 1) / epochs
			fed := 0
			for lo := 0; lo < s.Len(); lo += per {
				hi := lo + per
				if hi > s.Len() {
					hi = s.Len()
				}
				if ringPipe != nil {
					// Epoch-tagged batches: the workers fold before crossing
					// a tag boundary, so no delta straddles a simulated
					// epoch. After the clock advances, the read path below
					// drains the pipeline (folding this epoch's tail into
					// the still-active window) and then seals it — the
					// replay-time equivalent of a reader observing the
					// boundary.
					ringPipe.Submit(ingest.Batch{Items: s.Items[lo:hi], Epoch: uint64(fed + 1)})
					advanceEpoch()
					ring.Rotations()
				} else {
					ring.InsertBatch(s.Items[lo:hi])
					advanceEpoch()
				}
				fed++
			}
			if ringPipe == nil {
				ring.Insert(0, 0) // seal the final simulated epoch
			}
			fmt.Printf("shadow %s ingested %d simulated epochs in %v (%dB, %d sealed)\n",
				ring.Name(), fed, time.Since(localStart).Round(time.Millisecond),
				ring.MemoryBytes(), ring.Sealed())
		}
	}

	if len(queryKeys) > 0 {
		req := query.Request{Kind: query.Point, Keys: queryKeys}
		if *window > 0 {
			req = query.Request{Kind: query.Window, Keys: queryKeys, Window: *window}
		}
		if a != nil {
			start := time.Now()
			ans, err := a.Execute(req)
			if err != nil {
				log.Fatalf("rsagent: query: %v", err)
			}
			elapsed := time.Since(start)
			scope := "global"
			if *window > 0 {
				scope = fmt.Sprintf("%d-epoch window (covered %d)", *window, ans.Coverage)
			}
			fmt.Printf("%d keys in one round trip (%v, %s, source %s):\n",
				len(ans.PerKey), elapsed.Round(time.Microsecond), scope, ans.Source)
			for _, e := range ans.PerKey {
				fmt.Printf("  key %d: estimate=%d, certified interval [%d, %d]\n",
					e.Key, e.Est, e.Lower, e.Upper)
			}
		}
		if shadow != nil {
			queryShadow := shadow
			if async != nil {
				// Drained above (and no writers remain), so reading the
				// wrapped sketch directly recovers its certified interface.
				queryShadow = async.Target()
			}
			est := make([]uint64, len(queryKeys))
			var mpe []uint64
			if _, ok := queryShadow.(sketch.ErrorBounded); ok {
				mpe = make([]uint64, len(queryKeys))
			}
			sketch.QueryBatch(queryShadow, queryKeys, est, mpe)
			for i, k := range queryKeys {
				if mpe != nil {
					fmt.Printf("  key %d: local shadow estimate=%d, interval [%d, %d]\n",
						k, est[i], sketch.CertifiedLowerBound(est[i], mpe[i]), est[i])
				} else {
					fmt.Printf("  key %d: local shadow estimate=%d\n", k, est[i])
				}
			}
		}
		if ring != nil {
			n := *window
			if n <= 0 {
				n = ring.Capacity()
			}
			ans, err := ring.Execute(query.Request{Kind: query.Window, Keys: queryKeys, Window: n})
			if err != nil {
				log.Fatalf("rsagent: shadow ring query: %v", err)
			}
			for _, e := range ans.PerKey {
				fmt.Printf("  key %d: local %d-epoch window estimate=%d, interval [%d, %d]\n",
					e.Key, ans.Coverage, e.Est, e.Lower, e.Upper)
			}
		}
	}

	if a != nil {
		agents, updates, queries, err := a.Stats()
		if err != nil {
			log.Fatalf("rsagent: stats: %v", err)
		}
		fmt.Printf("collector: %d agents, %d updates, %d queries\n", agents, updates, queries)
	}
}
