// Command rsagent replays a binary trace file (cmd/rsgen's format) to a
// collector (cmd/rscollector) as a measurement agent, then optionally
// queries keys with certified global bounds.
//
// Usage:
//
//	rsgen -dataset ip -items 1000000 -out ip.bin
//	rsagent -collector 127.0.0.1:7777 -id 1 -trace ip.bin
//	rsagent -collector 127.0.0.1:7777 -id 2 -query 12345
//	rsagent -collector 127.0.0.1:7777 -query 12345 -window 4
//	rsagent -collector "" -trace ip.bin -algo Ours -mem 262144 -query 12345
//	rsagent -collector "" -trace ip.bin -algo Ours -epoch 10s -window 3 -query 12345
//
// With -algo, the agent also maintains a local shadow sketch built from the
// registry (fed through the batch-ingestion path), so queries report the
// local view next to the collector's global certified interval. With
// -collector "" the agent runs offline on the shadow sketch alone.
//
// With -epoch, the shadow sketch becomes an epoch ring: the trace is
// replayed as -window+1 simulated epochs of that length, and -query answers
// over the sliding window of the last -window sealed epochs. Against an
// epoch-mode collector, -window n issues a network window query too.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/epoch"
	"repro/internal/netsum"
	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

func main() {
	var (
		collector = flag.String("collector", "127.0.0.1:7777", "collector address (empty = offline, shadow sketch only)")
		id        = flag.Uint64("id", 1, "agent identity")
		trace     = flag.String("trace", "", "binary trace file to replay")
		queryKey  = flag.Uint64("query", 0, "key to query after replay (0 = none)")
		batch     = flag.Int("batch", 512, "updates per network frame")
		algo      = flag.String("algo", "", "registry variant for a local shadow sketch (empty = none)")
		lambda    = flag.Uint64("lambda", 25, "shadow sketch error tolerance Λ")
		mem       = flag.Int("mem", 1<<20, "shadow sketch memory (bytes)")
		seed      = flag.Uint64("seed", 1, "shadow sketch hash seed")
		ep        = flag.Duration("epoch", 0, "simulated epoch length for the shadow sketch (0 = cumulative)")
		window    = flag.Int("window", 0, "sliding-window size in epochs for -query (0 = cumulative)")
	)
	flag.Parse()

	spec := sketch.Spec{Lambda: *lambda, MemoryBytes: *mem, Seed: *seed}
	var shadow sketch.Sketch
	var ring *epoch.Ring
	advanceEpoch := func() {}
	if *algo != "" {
		entry, ok := sketch.Lookup(*algo)
		if !ok {
			log.Fatalf("rsagent: unknown algorithm %q", *algo)
		}
		if *ep > 0 {
			capacity := *window
			if capacity <= 0 {
				capacity = epoch.DefaultCapacity
			}
			// Replay has no timestamps; simulate capacity+1 equal epochs so
			// the requested window is fully populated with sealed traffic.
			simNow := time.Unix(0, 0)
			ring = epoch.NewRing(entry.Factory(spec), *mem, *ep, capacity,
				func() time.Time { return simNow })
			advanceEpoch = func() { simNow = simNow.Add(*ep) }
		} else {
			shadow = entry.Build(spec)
		}
	}
	if *collector == "" && shadow == nil && ring == nil {
		log.Fatal("rsagent: offline mode (-collector \"\") needs a shadow sketch (-algo)")
	}

	var a *netsum.Agent
	if *collector != "" {
		var err error
		a, err = netsum.Dial(*collector, *id)
		if err != nil {
			log.Fatalf("rsagent: %v", err)
		}
		defer a.Close()
		a.BatchSize = *batch
	}

	if *trace != "" {
		s, err := stream.ReadFile(*trace)
		if err != nil {
			log.Fatalf("rsagent: %v", err)
		}
		if a != nil {
			start := time.Now()
			for _, it := range s.Items {
				if err := a.Record(it.Key, it.Value); err != nil {
					log.Fatalf("rsagent: record: %v", err)
				}
			}
			if err := a.Flush(); err != nil {
				log.Fatalf("rsagent: flush: %v", err)
			}
			elapsed := time.Since(start)
			fmt.Printf("replayed %d items in %v (%.2f Mpps)\n",
				s.Len(), elapsed.Round(time.Millisecond),
				float64(s.Len())/elapsed.Seconds()/1e6)
		}
		if shadow != nil {
			localStart := time.Now()
			sketch.InsertBatch(shadow, s.Items)
			fmt.Printf("shadow %s ingested locally in %v (%dB)\n",
				shadow.Name(), time.Since(localStart).Round(time.Millisecond), shadow.MemoryBytes())
		}
		if ring != nil {
			localStart := time.Now()
			epochs := ring.Capacity() + 1
			per := (s.Len() + epochs - 1) / epochs
			fed := 0
			for lo := 0; lo < s.Len(); lo += per {
				hi := lo + per
				if hi > s.Len() {
					hi = s.Len()
				}
				ring.InsertBatch(s.Items[lo:hi])
				advanceEpoch()
				fed++
			}
			ring.Insert(0, 0) // seal the final simulated epoch
			fmt.Printf("shadow %s ingested %d simulated epochs in %v (%dB, %d sealed)\n",
				ring.Name(), fed, time.Since(localStart).Round(time.Millisecond),
				ring.MemoryBytes(), ring.Sealed())
		}
	}

	if *queryKey != 0 {
		if a != nil {
			if *window > 0 {
				est, mpe, covered, err := a.QueryWindow(*queryKey, *window)
				if err != nil {
					log.Fatalf("rsagent: window query: %v", err)
				}
				fmt.Printf("key %d: %d-epoch window estimate=%d, certified global interval [%d, %d] (covered %d epochs)\n",
					*queryKey, *window, est, sketch.CertifiedLowerBound(est, mpe), est, covered)
			} else {
				est, mpe, err := a.Query(*queryKey)
				if err != nil {
					log.Fatalf("rsagent: query: %v", err)
				}
				fmt.Printf("key %d: estimate=%d, certified global interval [%d, %d]\n",
					*queryKey, est, sketch.CertifiedLowerBound(est, mpe), est)
			}
		}
		if shadow != nil {
			if eb, ok := shadow.(sketch.ErrorBounded); ok {
				le, lm := eb.QueryWithError(*queryKey)
				fmt.Printf("key %d: local shadow estimate=%d, interval [%d, %d]\n",
					*queryKey, le, sketch.CertifiedLowerBound(le, lm), le)
			} else {
				fmt.Printf("key %d: local shadow estimate=%d\n", *queryKey, shadow.Query(*queryKey))
			}
		}
		if ring != nil {
			n := *window
			if n <= 0 {
				n = ring.Capacity()
			}
			if le, lm, ok := ring.QueryWindowWithError(*queryKey, n); ok {
				fmt.Printf("key %d: local %d-epoch window estimate=%d, interval [%d, %d]\n",
					*queryKey, n, le, sketch.CertifiedLowerBound(le, lm), le)
			} else {
				fmt.Printf("key %d: local %d-epoch window estimate=%d\n",
					*queryKey, n, ring.QueryWindow(*queryKey, n))
			}
		}
	}

	if a != nil {
		agents, updates, queries, err := a.Stats()
		if err != nil {
			log.Fatalf("rsagent: stats: %v", err)
		}
		fmt.Printf("collector: %d agents, %d updates, %d queries\n", agents, updates, queries)
	}
}
