// Command rsagent replays a binary trace file (cmd/rsgen's format) to a
// collector (cmd/rscollector) as a measurement agent, then optionally
// queries keys with certified global bounds.
//
// Usage:
//
//	rsgen -dataset ip -items 1000000 -out ip.bin
//	rsagent -collector 127.0.0.1:7777 -id 1 -trace ip.bin
//	rsagent -collector 127.0.0.1:7777 -id 2 -query 12345
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/netsum"
	"repro/internal/stream"
)

func main() {
	var (
		collector = flag.String("collector", "127.0.0.1:7777", "collector address")
		id        = flag.Uint64("id", 1, "agent identity")
		trace     = flag.String("trace", "", "binary trace file to replay")
		queryKey  = flag.Uint64("query", 0, "key to query after replay (0 = none)")
		batch     = flag.Int("batch", 512, "updates per network frame")
	)
	flag.Parse()

	a, err := netsum.Dial(*collector, *id)
	if err != nil {
		log.Fatalf("rsagent: %v", err)
	}
	defer a.Close()
	a.BatchSize = *batch

	if *trace != "" {
		s, err := stream.ReadFile(*trace)
		if err != nil {
			log.Fatalf("rsagent: %v", err)
		}
		start := time.Now()
		for _, it := range s.Items {
			if err := a.Record(it.Key, it.Value); err != nil {
				log.Fatalf("rsagent: record: %v", err)
			}
		}
		if err := a.Flush(); err != nil {
			log.Fatalf("rsagent: flush: %v", err)
		}
		elapsed := time.Since(start)
		fmt.Printf("replayed %d items in %v (%.2f Mpps)\n",
			s.Len(), elapsed.Round(time.Millisecond),
			float64(s.Len())/elapsed.Seconds()/1e6)
	}

	if *queryKey != 0 {
		est, mpe, err := a.Query(*queryKey)
		if err != nil {
			log.Fatalf("rsagent: query: %v", err)
		}
		fmt.Printf("key %d: estimate=%d, certified global interval [%d, %d]\n",
			*queryKey, est, est-mpe, est)
	}

	agents, updates, queries, err := a.Stats()
	if err != nil {
		log.Fatalf("rsagent: stats: %v", err)
	}
	fmt.Printf("collector: %d agents, %d updates, %d queries\n", agents, updates, queries)
}
