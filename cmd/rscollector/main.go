// Command rscollector runs a network-wide measurement collector: agents
// (cmd/rsagent) stream key-value updates over TCP; the collector maintains
// one ReliableSketch per agent and answers global queries with certified
// error bounds.
//
// Usage:
//
//	rscollector -listen 127.0.0.1:7777 -lambda 25 -mem 1048576
//	rscollector -algo SS               # any error-bounded registry variant
//	rscollector -epoch 10s -window 8   # sliding-window (epoch ring) mode
//
// With a Mergeable variant (the default "Ours") the collector additionally
// maintains an incrementally merged global sketch and answers queries from
// the intersection of the merged view and the estimate-sum composition.
// With -epoch, each agent's state becomes an epoch ring retaining -window
// sealed epochs; agents may then issue sliding-window queries
// (rsagent -window).
//
// The collector prints periodic ingest statistics to stdout; stop it with
// SIGINT. Agents may query through their own connections (rsagent -query),
// and -http additionally serves the rsserve HTTP/JSON query API (cached
// point/window/top-k queries) off the same collector. -metrics-addr serves
// GET /metrics (Prometheus text exposition over the collector, its ingest
// pipeline, and the WAL when attached); -pprof-addr serves net/http/pprof.
// Both are off unless set and live on their own listeners, away from the
// agent protocol port.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/ingest"
	"repro/internal/netsum"
	"repro/internal/queryd"
	"repro/internal/sketch"
	"repro/internal/telemetry"
	"repro/internal/telemetry/telhttp"
	"repro/internal/wal"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7777", "address to listen on")
		algo        = flag.String("algo", "Ours", "registered error-bounded sketch variant per agent")
		lambda      = flag.Uint64("lambda", 25, "per-agent error tolerance Λ")
		mem         = flag.Int("mem", 1<<20, "per-agent sketch memory (bytes)")
		seed        = flag.Uint64("seed", 1, "sketch hash seed")
		every       = flag.Duration("stats", 5*time.Second, "statistics print interval")
		ep          = flag.Duration("epoch", 0, "epoch length for sliding-window mode (0 = cumulative)")
		window      = flag.Int("window", 0, "sealed epochs retained per agent in -epoch mode (0 = default)")
		noMerge     = flag.Bool("no-merge", false, "disable the merged global view (estimate-sum only)")
		httpAdr     = flag.String("http", "", "also serve HTTP/JSON queries on this address (rsserve endpoints)")
		ingWorkers  = flag.Int("ingest-workers", 0, "ingest pipeline workers (0 = default)")
		ingQueue    = flag.Int("ingest-queue", 0, "per-worker ingest queue depth in batches (0 = default)")
		ingPolicy   = flag.String("ingest-policy", "block", "backpressure when ingest queues fill: block or drop")
		walDir      = flag.String("wal-dir", "", "write-ahead-log directory: acked agent batches survive a crash and replay on restart (cumulative mode)")
		walFsync    = flag.String("wal-fsync", "batch", "WAL durability: batch (fsync every append), a group-commit interval like 5ms, or off")
		walSegSize  = flag.Int64("wal-segment-size", wal.DefaultSegmentBytes, "WAL segment rotation threshold (bytes)")
		metricsAddr = flag.String("metrics-addr", "", "serve GET /metrics (Prometheus text exposition) on this address (off unless set)")
		pprofAddr   = flag.String("pprof-addr", "", "also serve net/http/pprof on this address (off unless set)")
	)
	flag.Parse()

	policy, err := ingest.ParsePolicy(*ingPolicy)
	if err != nil {
		log.Fatalf("rscollector: %v", err)
	}
	var wlog *wal.Log
	if *walDir != "" {
		if *ep > 0 {
			log.Fatal("rscollector: -wal-dir is cumulative-mode only (replaying a log into an epoch ring would resurrect expired traffic)")
		}
		if policy == ingest.Drop {
			log.Fatal("rscollector: -wal-dir requires -ingest-policy block (drop could refuse a durable batch live, then resurrect it on replay)")
		}
		fp, err := wal.ParseFsync(*walFsync)
		if err != nil {
			log.Fatalf("rscollector: -wal-fsync: %v", err)
		}
		wlog, err = wal.Open(wal.Options{Dir: *walDir, SegmentBytes: *walSegSize, Fsync: fp, Logf: log.Printf})
		if err != nil {
			log.Fatalf("rscollector: %v", err)
		}
		defer wlog.Close()
	}
	// No -checkpoint flag here, so replay starts at the log's own watermark
	// (WALStartLSN 0); truncation needs the HTTP checkpoint surface
	// (rsserve -collector) or an external SnapshotGlobal driver.
	c, err := netsum.NewCollector(*listen, netsum.CollectorConfig{
		Algo:              *algo,
		Spec:              sketch.Spec{Lambda: *lambda, MemoryBytes: *mem, Seed: *seed},
		Epoch:             *ep,
		WindowEpochs:      *window,
		DisableMergedView: *noMerge,
		Ingest:            ingest.Tuning{Workers: *ingWorkers, Queue: *ingQueue, Policy: policy},
		WAL:               wlog,
		Logf:              log.Printf,
	})
	if err != nil {
		log.Fatalf("rscollector: %v", err)
	}
	mode := "estimate-sum aggregation"
	if c.MergeBased() {
		mode = "merge-based aggregation"
	}
	if *ep > 0 {
		mode = fmt.Sprintf("sliding-window mode (epoch=%v, window=%d)", *ep, *window)
	}
	fmt.Printf("rscollector listening on %s (%s, Λ=%d, %dB per agent, %s)\n",
		c.Addr(), *algo, *lambda, *mem, mode)

	if *metricsAddr != "" {
		// A dedicated scrape listener: the raw TCP collector has no HTTP
		// surface of its own, so Prometheus gets one regardless of -http.
		reg := telemetry.NewRegistry()
		c.RegisterMetrics(reg)
		mux := http.NewServeMux()
		mux.Handle("/metrics", telhttp.Handler(reg))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Fatalf("rscollector: metrics: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metricsAddr)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, telhttp.PprofHandler()); err != nil {
				log.Fatalf("rscollector: pprof: %v", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	if *httpAdr != "" {
		qs, err := queryd.New(queryd.CollectorBackend{C: c, Algo: *algo}, queryd.Config{Logf: log.Printf})
		if err != nil {
			log.Fatalf("rscollector: %v", err)
		}
		defer qs.Close()
		go func() {
			if err := (&http.Server{Addr: *httpAdr, Handler: qs.Handler()}).ListenAndServe(); err != nil &&
				!errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("rscollector: http: %v", err)
			}
		}()
		fmt.Printf("query API on http://%s (/v2/query batches, /v1/point /v1/window /v1/topk /v1/status)\n", *httpAdr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(*every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			agents, updates, queries := c.Stats()
			ist := c.IngestStats()
			fmt.Printf("agents=%d updates=%d queries=%d folds=%d dropped=%d\n",
				agents, updates, queries, ist.Folds, ist.Dropped)
		case <-stop:
			fmt.Println("\nshutting down")
			if err := c.Close(); err != nil {
				log.Printf("rscollector: close: %v", err)
			}
			return
		}
	}
}
