// Distributed network-wide measurement: several vantage points stream
// their local traffic to a central collector over TCP; the collector
// answers global per-flow queries with certified error bounds that compose
// across agents (Σ estimates, Σ MPEs).
//
// This is the "network-wide measurement" deployment the sketch literature
// targets (and the paper's switch + control-plane split, stretched across
// machines).
//
//	go run ./examples/distributed
//	go run ./examples/distributed -algo SS   # any error-bounded variant
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/internal/netsum"
	"repro/internal/sketch"
	"repro/internal/stream"
)

func main() {
	const (
		agents       = 4
		itemsPerSite = 250_000
		lambda       = 25
	)
	algo := flag.String("algo", "Ours", "error-bounded registry variant for the per-agent sketches")
	flag.Parse()
	collector, err := netsum.NewCollector("127.0.0.1:0", netsum.CollectorConfig{
		Algo: *algo,
		Spec: sketch.Spec{Lambda: lambda, MemoryBytes: 256 << 10, Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer collector.Close()
	mode := "estimate-sum aggregation"
	if collector.MergeBased() {
		mode = "merge-based aggregation (per-batch folds into one global sketch, intersected with estimate-summing)"
	}
	fmt.Printf("collector listening on %s, %s\n", collector.Addr(), mode)

	// Each site observes its own slice of the network's traffic; flows
	// cross sites (same key space), as backbone flows cross vantage points.
	truth := map[uint64]uint64{}
	var truthMu sync.Mutex
	var wg sync.WaitGroup
	for site := 0; site < agents; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			agent, err := netsum.Dial(collector.Addr(), uint64(site+1))
			if err != nil {
				log.Printf("site %d: %v", site, err)
				return
			}
			defer agent.Close()
			local := stream.IPTrace(itemsPerSite, uint64(site+1))
			for _, it := range local.Items {
				if err := agent.Record(it.Key, it.Value); err != nil {
					log.Printf("site %d: %v", site, err)
					return
				}
			}
			// Synchronize: a stats round-trip guarantees the collector has
			// ingested everything this site sent.
			if _, _, _, err := agent.Stats(); err != nil {
				log.Printf("site %d sync: %v", site, err)
				return
			}
			truthMu.Lock()
			for k, f := range local.Truth() {
				truth[k] += f
			}
			truthMu.Unlock()
			fmt.Printf("site %d streamed %d packets\n", site, local.Len())
		}(site)
	}
	wg.Wait()

	nAgents, updates, _ := collector.Stats()
	fmt.Printf("\ncollector: %d agents, %d updates ingested\n", nAgents, updates)

	// Rank global flows and verify the composed certificates.
	type flow struct {
		key       uint64
		est, real uint64
	}
	flows := make([]flow, 0, len(truth))
	violations := 0
	for key, f := range truth {
		est, mpe := collector.QueryWithError(key)
		if f > est || sketch.CertifiedLowerBound(est, mpe) > f {
			violations++
		}
		flows = append(flows, flow{key, est, f})
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].est > flows[j].est })

	// Only Lambda-targeting variants promise error ≤ Λ per agent; other
	// error-bounded variants (SS) certify their own per-query MPE instead.
	if e, ok := sketch.Lookup(*algo); ok && e.Caps.Has(sketch.CapLambdaTargeting) {
		fmt.Printf("\ntop global flows (certified error ≤ %d per agent, %d agents):\n", lambda, agents)
	} else {
		fmt.Printf("\ntop global flows (%s per-query certificates composed across %d agents):\n", *algo, agents)
	}
	fmt.Printf("%-4s %-20s %12s %12s %8s\n", "#", "flow", "estimate", "true", "err")
	for i := 0; i < 8 && i < len(flows); i++ {
		f := flows[i]
		fmt.Printf("%-4d %-20d %12d %12d %8d\n", i+1, f.key, f.est, f.real, f.est-f.real)
	}
	fmt.Printf("\ncertified-interval violations across %d global flows: %d\n", len(flows), violations)
}
