// Flow monitor: per-flow byte accounting on a simulated packet stream, with
// concurrent ingestion via key-space sharding — the network-telemetry
// deployment the paper targets (switch/FPGA counts bytes per flow; the
// control plane reads certified estimates).
//
//	go run ./examples/flowmonitor
package main

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/sketch"
	"repro/internal/stream"
)

func main() {
	const (
		items       = 1_000_000
		lambdaBytes = 40_000 // certify per-flow byte counts within 40KB
		memory      = 1 << 20
		shards      = 4
		seed        = 3
	)
	// Byte-weighted packet trace: values are packet sizes.
	packets := stream.ByteWeighted(stream.IPTrace(items, seed), seed)

	// Shard the key space across goroutines, as a multi-pipe deployment
	// would; each shard owns an independent ReliableSketch.
	monitor := sketch.NewSharded(sketch.Factory{
		Name: "Ours",
		New: func(mem int) sketch.Sketch {
			return core.MustNew(core.Config{
				Lambda: lambdaBytes, MemoryBytes: mem, Seed: seed,
				FilterBits: 8, // byte-sized values need a wider mice filter
			})
		},
	}, memory, shards, seed)

	var wg sync.WaitGroup
	chunk := len(packets.Items) / shards
	for g := 0; g < shards; g++ {
		lo := g * chunk
		hi := lo + chunk
		if g == shards-1 {
			hi = len(packets.Items)
		}
		wg.Add(1)
		go func(part []stream.Item) {
			defer wg.Done()
			for _, it := range part {
				monitor.Insert(it.Key, it.Value)
			}
		}(packets.Items[lo:hi])
	}
	wg.Wait()

	// Control plane: rank flows by estimated bytes and report the top 10
	// with their true values for comparison.
	truth := packets.Truth()
	type flow struct {
		key       uint64
		est, real uint64
	}
	flows := make([]flow, 0, len(truth))
	for key, f := range truth {
		flows = append(flows, flow{key: key, est: monitor.Query(key), real: f})
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].est > flows[j].est })

	fmt.Printf("monitored %d packets (%d bytes) over %d flows in %d shards\n\n",
		packets.Len(), packets.Total(), len(truth), shards)
	fmt.Printf("%-4s %-20s %14s %14s %10s\n", "#", "flow", "est bytes", "true bytes", "err")
	for i := 0; i < 10 && i < len(flows); i++ {
		f := flows[i]
		fmt.Printf("%-4d %-20d %14d %14d %10d\n", i+1, f.key, f.est, f.real, f.est-f.real)
	}

	// Verify the certificate held for every flow.
	worst := uint64(0)
	for _, f := range flows {
		d := f.est - f.real
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("\nworst per-flow byte error: %d (certified ≤ %d)\n", worst, lambdaBytes)
}
