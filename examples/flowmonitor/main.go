// Flow monitor: per-flow byte accounting on a simulated packet stream, with
// concurrent ingestion via key-space sharding — the network-telemetry
// deployment the paper targets (switch/FPGA counts bytes per flow; the
// control plane reads certified estimates).
//
//	go run ./examples/flowmonitor
//	go run ./examples/flowmonitor -algo 'Ours(Raw)'
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

func main() {
	const (
		items       = 1_000_000
		lambdaBytes = 40_000 // certify per-flow byte counts within 40KB
		memory      = 1 << 20
		shards      = 4
		seed        = 3
	)
	algo := flag.String("algo", "Ours", "registry variant to monitor with")
	flag.Parse()

	// Byte-weighted packet trace: values are packet sizes.
	packets := stream.ByteWeighted(stream.IPTrace(items, seed), seed)

	// One Spec describes the whole deployment: the key space is sharded
	// across goroutines, as a multi-pipe deployment would, with each shard
	// owning an independent sketch instance.
	monitor, err := sketch.Build(*algo, sketch.Spec{
		Lambda:      lambdaBytes,
		MemoryBytes: memory,
		Seed:        seed,
		FilterBits:  8, // byte-sized values need a wider mice filter
		Shards:      shards,
	})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	chunk := len(packets.Items) / shards
	for g := 0; g < shards; g++ {
		lo := g * chunk
		hi := lo + chunk
		if g == shards-1 {
			hi = len(packets.Items)
		}
		wg.Add(1)
		go func(part []stream.Item) {
			defer wg.Done()
			// The sharded batch path partitions each chunk by owning shard
			// and takes one lock per shard instead of one per packet.
			sketch.InsertBatch(monitor, part)
		}(packets.Items[lo:hi])
	}
	wg.Wait()

	// Control plane: rank flows by estimated bytes and report the top 10
	// with their true values for comparison.
	truth := packets.Truth()
	type flow struct {
		key       uint64
		est, real uint64
	}
	flows := make([]flow, 0, len(truth))
	for key, f := range truth {
		flows = append(flows, flow{key: key, est: monitor.Query(key), real: f})
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].est > flows[j].est })

	fmt.Printf("monitored %d packets (%d bytes) over %d flows in %d shards\n\n",
		packets.Len(), packets.Total(), len(truth), shards)
	fmt.Printf("%-4s %-20s %14s %14s %10s\n", "#", "flow", "est bytes", "true bytes", "err")
	for i := 0; i < 10 && i < len(flows); i++ {
		f := flows[i]
		fmt.Printf("%-4d %-20d %14d %14d %10d\n", i+1, f.key, f.est, f.real, absDiff(f.est, f.real))
	}

	// Verify the certificate held for every flow.
	worst := uint64(0)
	for _, f := range flows {
		if d := absDiff(f.est, f.real); d > worst {
			worst = d
		}
	}
	// Any error-bounded variant certifies per-flow intervals; the stronger
	// "every error ≤ Λ" claim belongs only to the Lambda-consuming variants.
	if eb, certified := monitor.(sketch.ErrorBounded); certified {
		violations := 0
		for key, real := range truth {
			est, mpe := eb.QueryWithError(key)
			if real > est || sketch.CertifiedLowerBound(est, mpe) > real {
				violations++
			}
		}
		fmt.Printf("\nworst per-flow byte error: %d; certified intervals: %d violations across %d flows\n",
			worst, violations, len(truth))
		if e, ok := sketch.Lookup(*algo); ok && e.Caps.Has(sketch.CapLambdaTargeting) {
			fmt.Printf("(Λ=%d: every per-flow error certified ≤ Λ)\n", lambdaBytes)
		}
	} else {
		fmt.Printf("\nworst per-flow byte error: %d (%s provides no error certificate)\n", worst, *algo)
	}
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
