// Quickstart: build a ReliableSketch, feed it a key-value stream, and query
// value sums with certified error bounds.
//
// This example uses the low-level core.Config API directly; to build any
// algorithm by name from a common memory/Λ/seed description, use the
// registry instead: sketch.MustBuild("Ours", sketch.Spec{...}) (see
// examples/flowmonitor and examples/reliability).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	// A sketch for streams totalling ~1M value, with every key's error
	// guaranteed below Λ=25 (with overwhelming probability). Memory is
	// derived from Λ and the expected stream size automatically.
	sk := core.MustNew(core.Config{
		Lambda:        25,
		ExpectedTotal: 1_000_000,
		Seed:          42,
	})
	fmt.Println("geometry:", sk)

	// Insert <key, value> pairs: values may be counts, bytes, anything
	// additive.
	sk.Insert(1001, 500) // e.g. flow 1001 sent 500 packets
	sk.Insert(1002, 120)
	sk.Insert(1001, 250)
	for k := uint64(2000); k < 2100; k++ {
		sk.Insert(k, 1) // background mice traffic
	}

	// Point queries return an estimate; QueryWithError adds the certified
	// Maximum Possible Error: truth ∈ [est − mpe, est].
	est, mpe := sk.QueryWithError(1001)
	fmt.Printf("flow 1001: estimate=%d, true value ∈ [%d, %d]\n", est, est-mpe, est)

	est, mpe = sk.QueryWithError(1002)
	fmt.Printf("flow 1002: estimate=%d, true value ∈ [%d, %d]\n", est, est-mpe, est)

	// Unseen keys are certified near-zero.
	est, mpe = sk.QueryWithError(9999)
	fmt.Printf("flow 9999 (never seen): estimate=%d, MPE=%d\n", est, mpe)

	// The sketch reports whether any insertion overflowed all layers (which
	// would void the certificate — negligible at recommended sizes, and
	// recoverable via Config.Emergency).
	fails, _ := sk.InsertionFailures()
	fmt.Printf("insertion failures: %d\n", fails)
}
