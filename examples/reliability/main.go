// Reliability demo: the overall-confidence collapse the paper opens with.
// A per-key confidence of 1−δ looks great until you query every key: with
// 100k keys, even δ=1% yields ~1000 outliers per run. This demo measures,
// across repeated runs with fresh hash seeds, how often EACH sketch gets
// every single key right — the paper's Pr[∀e: |f̂−f| ≤ Λ] ≥ 1−Δ objective.
//
//	go run ./examples/reliability
//	go run ./examples/reliability -algos CM_fast,CU_fast,Elastic,Ours
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

func main() {
	const (
		items  = 500_000
		lambda = 25
		memory = 96 << 10 // deliberately tight so baselines show their tail
		runs   = 20
	)
	algos := flag.String("algos", "CM_fast,CU_fast,Ours",
		"comma-separated registry variants to compare")
	flag.Parse()
	s := stream.IPTrace(items, 1)

	type contender struct {
		name string
		make func(seed uint64) sketch.Sketch
	}
	names, err := sketch.ParseNames(*algos)
	if err != nil {
		log.Fatal(err)
	}
	var contenders []contender
	for _, name := range names {
		contenders = append(contenders, contender{name, func(seed uint64) sketch.Sketch {
			return sketch.MustBuild(name, sketch.Spec{
				Lambda: lambda, MemoryBytes: memory, Seed: seed,
			})
		}})
	}

	fmt.Printf("stream: %s, %d items, %d keys; Λ=%d, memory=%dKB, %d runs\n\n",
		s.Name, s.Len(), s.Distinct(), lambda, memory>>10, runs)
	fmt.Printf("%-16s %18s %18s %22s\n",
		"sketch", "mean #outliers", "worst #outliers", "P[all keys within Λ]")

	for _, c := range contenders {
		totalOutliers, worst, perfect := 0, 0, 0
		for run := 0; run < runs; run++ {
			sk := c.make(uint64(run) * 1_000_003)
			metrics.Feed(sk, s)
			out := metrics.Evaluate(sk, s, lambda).Outliers
			totalOutliers += out
			if out > worst {
				worst = out
			}
			if out == 0 {
				perfect++
			}
		}
		fmt.Printf("%-16s %18.1f %18d %21d%%\n",
			c.name, float64(totalOutliers)/float64(runs), worst, perfect*100/runs)
	}
	fmt.Println("\nCounter-based sketches answer individual queries well but almost")
	fmt.Println("never get ALL keys right; ReliableSketch's overall confidence 1−Δ")
	fmt.Println("is the paper's contribution.")
}
