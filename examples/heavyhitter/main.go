// Heavy-hitter detection with controlled false positives — the paper's §1
// motivating scenario. A classical sketch labels a key "frequent" when its
// estimate crosses a threshold T; with per-key confidence only, thousands
// of mice keys cross T by error and flood the operator with false alarms.
// ReliableSketch's certified interval makes the decision sound:
//
//	est − mpe > T  ⇒ certainly frequent
//	est ≤ T        ⇒ certainly not frequent (estimates never undershoot)
//
//	go run ./examples/heavyhitter
package main

import (
	"fmt"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/stream"
)

func main() {
	const (
		items     = 2_000_000
		threshold = 300 // a key is "frequent" when f(e) > threshold
		lambda    = 50  // certified error tolerance
		memory    = 160 << 10
		seed      = 7
	)
	s := stream.IPTrace(items, seed)
	truth := s.Truth()

	rs := core.NewFromMemory(memory, lambda, seed)
	cmSketch := cm.NewFast(memory, seed)
	for _, it := range s.Items {
		rs.Insert(it.Key, it.Value)
		cmSketch.Insert(it.Key, it.Value)
	}

	// Classify every key with both sketches.
	type tally struct{ tp, fp, fn int }
	var rsT, cmT tally
	for key, f := range truth {
		actual := f > threshold

		// CM: estimate crosses the threshold → alarm.
		cmAlarm := cmSketch.Query(key) > threshold
		switch {
		case cmAlarm && actual:
			cmT.tp++
		case cmAlarm && !actual:
			cmT.fp++
		case !cmAlarm && actual:
			cmT.fn++
		}

		// ReliableSketch: alarm only when the certified lower bound crosses.
		est, mpe := rs.QueryWithError(key)
		rsAlarm := est-mpe > threshold
		switch {
		case rsAlarm && actual:
			rsT.tp++
		case rsAlarm && !actual:
			rsT.fp++
		case !rsAlarm && actual:
			rsT.fn++
		}
	}

	fmt.Printf("stream: %s, %d items, %d distinct keys, %d truly frequent (>%d)\n\n",
		s.Name, s.Len(), len(truth), rsT.tp+rsT.fn, threshold)
	fmt.Printf("%-16s %8s %8s %8s\n", "detector", "hits", "false+", "misses")
	fmt.Printf("%-16s %8d %8d %8d\n", "CM (estimate>T)", cmT.tp, cmT.fp, cmT.fn)
	fmt.Printf("%-16s %8d %8d %8d\n", "ReliableSketch", rsT.tp, rsT.fp, rsT.fn)
	fmt.Println("\nReliableSketch's certified lower bound eliminates false alarms;")
	fmt.Printf("misses are bounded too: any missed key has f ≤ T+Λ = %d.\n", threshold+lambda)
}
