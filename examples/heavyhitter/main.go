// Heavy-hitter detection with controlled false positives — the paper's §1
// motivating scenario. A classical sketch labels a key "frequent" when its
// estimate crosses a threshold T; with per-key confidence only, thousands
// of mice keys cross T by error and flood the operator with false alarms.
// ReliableSketch's certified interval makes the decision sound:
//
//	est − mpe > T  ⇒ certainly frequent
//	est ≤ T        ⇒ certainly not frequent (estimates never undershoot)
//
//	go run ./examples/heavyhitter
//	go run ./examples/heavyhitter -baseline CU_fast
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

func main() {
	const (
		items     = 2_000_000
		threshold = 300 // a key is "frequent" when f(e) > threshold
		lambda    = 50  // certified error tolerance
		memory    = 160 << 10
		seed      = 7
	)
	// The est>T framing assumes an overestimating baseline; unbiased L2
	// sketches (Count, UnivMon) can undershoot, so for them the
	// "est ≤ T ⇒ certainly not frequent" premise does not hold and the
	// comparison would be meaningless — only the CM/CU family is accepted.
	overestimating := map[string]bool{
		"CM_fast": true, "CM_acc": true, "CU_fast": true, "CU_acc": true,
	}
	baseline := flag.String("baseline", "CM_fast",
		"overestimating registry variant playing the estimate-crosses-threshold detector (CM_fast, CM_acc, CU_fast, CU_acc)")
	flag.Parse()
	if !overestimating[*baseline] {
		log.Fatalf("baseline %q is not in the overestimating CM/CU family this comparison assumes (choose CM_fast, CM_acc, CU_fast, or CU_acc)", *baseline)
	}
	s := stream.IPTrace(items, seed)
	truth := s.Truth()

	spec := sketch.Spec{Lambda: lambda, MemoryBytes: memory, Seed: seed}
	rsBuilt := sketch.MustBuild("Ours", spec)
	rs, ok := rsBuilt.(sketch.ErrorBounded)
	if !ok {
		log.Fatal("Ours lost its error bound — registry misconfigured")
	}
	base, err := sketch.Build(*baseline, spec)
	if err != nil {
		log.Fatal(err)
	}
	// Both detectors see the same stream, fed through the batch path.
	sketch.InsertBatch(rs, s.Items)
	sketch.InsertBatch(base, s.Items)

	// Classify every key with both sketches.
	type tally struct{ tp, fp, fn int }
	var rsT, cmT tally
	for key, f := range truth {
		actual := f > threshold

		// Baseline: estimate crosses the threshold → alarm.
		cmAlarm := base.Query(key) > threshold
		switch {
		case cmAlarm && actual:
			cmT.tp++
		case cmAlarm && !actual:
			cmT.fp++
		case !cmAlarm && actual:
			cmT.fn++
		}

		// ReliableSketch: alarm only when the certified lower bound crosses.
		est, mpe := rs.QueryWithError(key)
		rsAlarm := sketch.CertifiedLowerBound(est, mpe) > threshold
		switch {
		case rsAlarm && actual:
			rsT.tp++
		case rsAlarm && !actual:
			rsT.fp++
		case !rsAlarm && actual:
			rsT.fn++
		}
	}

	fmt.Printf("stream: %s, %d items, %d distinct keys, %d truly frequent (>%d)\n\n",
		s.Name, s.Len(), len(truth), rsT.tp+rsT.fn, threshold)
	fmt.Printf("%-20s %8s %8s %8s\n", "detector", "hits", "false+", "misses")
	fmt.Printf("%-20s %8d %8d %8d\n", *baseline+" (est>T)", cmT.tp, cmT.fp, cmT.fn)
	fmt.Printf("%-20s %8d %8d %8d\n", "ReliableSketch", rsT.tp, rsT.fp, rsT.fn)
	fmt.Println("\nReliableSketch's certified lower bound eliminates false alarms;")
	fmt.Printf("misses are bounded too: any missed key has f ≤ T+Λ = %d.\n", threshold+lambda)
}
