// Package repro's root benchmark suite regenerates every table and figure
// of the paper, one benchmark per artifact:
//
//	go test -bench=. -benchmem                    # all artifacts, bench scale
//	go test -bench=BenchmarkFig4Outliers -v       # one figure, print rows
//	go run ./cmd/rsbench -exp fig4b -scale paper  # full paper scale
//
// Benchmarks run at a reduced stream scale (see benchOptions) so the whole
// suite completes on a laptop; the rendered rows are printed under -v.
package repro

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/harness"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// benchOptions keeps the full suite's wall time reasonable while preserving
// every shape the paper reports (memory axes scale with the stream).
var benchOptions = harness.Options{Items: 200_000, Seed: 1, Trials: 3}

// runExperiment executes a registered artifact once per benchmark
// iteration and logs the resulting rows (visible with -v).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := harness.Run(id, benchOptions)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

func BenchmarkTable1Complexity(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable3FPGA(b *testing.B)       { runExperiment(b, "table3") }
func BenchmarkTable4Switch(b *testing.B)     { runExperiment(b, "table4") }

func BenchmarkFig4Outliers(b *testing.B) {
	b.Run("lambda5", func(b *testing.B) { runExperiment(b, "fig4a") })
	b.Run("lambda25", func(b *testing.B) { runExperiment(b, "fig4b") })
}

func BenchmarkFig5ZeroOutlierMemory(b *testing.B) { runExperiment(b, "fig5") }

func BenchmarkFig6Datasets(b *testing.B) {
	b.Run("web", func(b *testing.B) { runExperiment(b, "fig6a") })
	b.Run("datacenter", func(b *testing.B) { runExperiment(b, "fig6b") })
	b.Run("zipf0.3", func(b *testing.B) { runExperiment(b, "fig6c") })
	b.Run("zipf3.0", func(b *testing.B) { runExperiment(b, "fig6d") })
}

func BenchmarkFig7FrequentKeys(b *testing.B) {
	b.Run("T100", func(b *testing.B) { runExperiment(b, "fig7a") })
	b.Run("T1000", func(b *testing.B) { runExperiment(b, "fig7b") })
}

func BenchmarkFig8AAE(b *testing.B) {
	b.Run("iptrace", func(b *testing.B) { runExperiment(b, "fig8a") })
	b.Run("zipf3.0", func(b *testing.B) { runExperiment(b, "fig8b") })
}

func BenchmarkFig9ARE(b *testing.B) {
	b.Run("iptrace", func(b *testing.B) { runExperiment(b, "fig9a") })
	b.Run("zipf3.0", func(b *testing.B) { runExperiment(b, "fig9b") })
}

func BenchmarkFig10Throughput(b *testing.B)     { runExperiment(b, "fig10") }
func BenchmarkFig11RwZeroOutlier(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12RwAAE(b *testing.B)          { runExperiment(b, "fig12") }
func BenchmarkFig13RlZeroOutlier(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig14RlAAE(b *testing.B)          { runExperiment(b, "fig14") }
func BenchmarkFig15Lambda(b *testing.B)         { runExperiment(b, "fig15") }
func BenchmarkFig16HashCalls(b *testing.B)      { runExperiment(b, "fig16") }
func BenchmarkFig17SensedInterval(b *testing.B) { runExperiment(b, "fig17") }
func BenchmarkFig18SensedError(b *testing.B)    { runExperiment(b, "fig18") }
func BenchmarkFig19ErrorControl(b *testing.B)   { runExperiment(b, "fig19") }

func BenchmarkFig20Testbed(b *testing.B) {
	b.Run("iptrace", func(b *testing.B) { runExperiment(b, "fig20a") })
	b.Run("hadoop", func(b *testing.B) { runExperiment(b, "fig20b") })
}

// Micro-benchmarks backing Figure 10's per-operation numbers for the core
// sketch (competitor micro-benches live in their packages).

func benchStream() *stream.Stream {
	return stream.IPTrace(200_000, 1)
}

func BenchmarkOursInsert(b *testing.B) {
	s := benchStream()
	sk := core.NewFromMemory(1<<20, 25, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s.Items[i%len(s.Items)]
		sk.Insert(it.Key, it.Value)
	}
}

func BenchmarkOursRawInsert(b *testing.B) {
	s := benchStream()
	sk := core.NewRaw(1<<20, 25, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s.Items[i%len(s.Items)]
		sk.Insert(it.Key, it.Value)
	}
}

func BenchmarkOursQuery(b *testing.B) {
	s := benchStream()
	sk := core.NewFromMemory(1<<20, 25, 1)
	metrics.Feed(sk, s)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= sk.Query(s.Items[i%len(s.Items)].Key)
	}
	_ = sink
}

// batchContenders are the variants with native BatchInserter
// implementations, benchmarked both item-at-a-time (BenchmarkInsert) and
// through the batch path (BenchmarkInsertBatch) so the amortization shows
// up in the perf trajectory. SS rides along as a fallback-path reference.
var batchContenders = []struct {
	name string
	spec sketch.Spec
}{
	{"Ours", sketch.Spec{MemoryBytes: 1 << 20, Lambda: 25, Seed: 1}},
	{"CM_fast", sketch.Spec{MemoryBytes: 1 << 20, Seed: 1}},
	{"CU_fast", sketch.Spec{MemoryBytes: 1 << 20, Seed: 1}},
	{"Ours_sharded4", sketch.Spec{MemoryBytes: 1 << 20, Lambda: 25, Seed: 1, Shards: 4}},
	{"Ours_sharded8", pipelineBenchSpec},
	{"SS_fallback", sketch.Spec{MemoryBytes: 1 << 20, Seed: 1}},
}

func contenderSketch(name string, spec sketch.Spec) sketch.Sketch {
	algo := name
	switch name {
	case "Ours_sharded4", "Ours_sharded8":
		algo = "Ours"
	case "SS_fallback":
		algo = "SS"
	}
	return sketch.MustBuild(algo, spec)
}

func BenchmarkInsert(b *testing.B) {
	s := benchStream()
	for _, c := range batchContenders {
		b.Run(c.name, func(b *testing.B) {
			sk := contenderSketch(c.name, c.spec)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it := s.Items[i%len(s.Items)]
				sk.Insert(it.Key, it.Value)
			}
		})
	}
}

func BenchmarkInsertBatch(b *testing.B) {
	s := benchStream()
	const chunk = 4096 // a realistic ingestion quantum (NIC ring / epoch flush)
	for _, c := range batchContenders {
		b.Run(c.name, func(b *testing.B) {
			sk := contenderSketch(c.name, c.spec)
			b.ReportAllocs()
			b.ResetTimer()
			for inserted := 0; inserted < b.N; {
				lo := inserted % len(s.Items)
				hi := lo + chunk
				if hi > len(s.Items) {
					hi = len(s.Items)
				}
				if rem := b.N - inserted; hi-lo > rem {
					hi = lo + rem
				}
				sketch.InsertBatch(sk, s.Items[lo:hi])
				inserted += hi - lo
			}
		})
	}
}

// pipelineBenchSpec is the sharded core sketch both sides of the ingest
// acceptance comparison run on: BenchmarkInsertBatch/Ours_sharded8 is the
// single-writer baseline, BenchmarkPipelineIngest the async plane over the
// same Spec.
var pipelineBenchSpec = sketch.Spec{MemoryBytes: 1 << 20, Lambda: 25, Seed: 1, Shards: 8}

// BenchmarkPipelineIngest measures the ingest plane end to end — submit,
// per-worker delta accumulation, fold — at 1, 4, and 8 workers on the
// sharded core sketch. Per-op time is per item, so items/sec compares
// directly against BenchmarkInsertBatch/Ours_sharded8 (the single-writer
// baseline): the acceptance bar is ≥ 3× at 8 workers. CI records both in
// the BENCH_ingest.json artifact.
func BenchmarkPipelineIngest(b *testing.B) {
	s := benchStream()
	const chunk = 4096 // the same ingestion quantum BenchmarkInsertBatch uses
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("Ours_sharded8/workers=%d", workers), func(b *testing.B) {
			// A big flush quantum amortizes the merge walk (a fold visits
			// the whole delta regardless of item count), keeping the
			// per-item overhead low enough that throughput scales with
			// workers instead of drowning in folds.
			a, err := ingest.NewAsyncIngester("Ours", pipelineBenchSpec, ingest.Tuning{
				Workers:    workers,
				Queue:      128,
				FlushItems: 1 << 17,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			b.ReportAllocs()
			b.ResetTimer()
			var source uint64
			for inserted := 0; inserted < b.N; {
				lo := inserted % len(s.Items)
				hi := lo + chunk
				if hi > len(s.Items) {
					hi = len(s.Items)
				}
				if rem := b.N - inserted; hi-lo > rem {
					hi = lo + rem
				}
				source++
				a.Submit(ingest.Batch{Items: s.Items[lo:hi], Source: source})
				inserted += hi - lo
			}
			if err := a.Drain(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// queryBatchSizes sweeps the batch-query amortization: 1 key isolates the
// batch path's fixed overhead against a plain Query call, 16 is a small
// dashboard refresh, 256 the acceptance-criteria serving batch.
var queryBatchSizes = []int{1, 16, 256}

// queryBatchContenders cover the flat native paths and the sharded wrapper,
// whose per-shard lock amortization is where batching pays most.
var queryBatchContenders = []struct {
	name string
	spec sketch.Spec
}{
	{"Ours", sketch.Spec{MemoryBytes: 1 << 20, Lambda: 25, Seed: 1}},
	{"CM_fast", sketch.Spec{MemoryBytes: 1 << 20, Seed: 1}},
	{"Ours_sharded16", sketch.Spec{MemoryBytes: 1 << 20, Lambda: 25, Seed: 1, Shards: 16}},
	{"CM_sharded16", sketch.Spec{MemoryBytes: 1 << 20, Seed: 1, Shards: 16}},
}

func queryContenderSketch(name string, spec sketch.Spec) sketch.Sketch {
	algo := name
	switch name {
	case "Ours_sharded16":
		algo = "Ours"
	case "CM_sharded16":
		algo = "CM_fast"
	}
	return sketch.MustBuild(algo, spec)
}

// benchQueryKeys draws n keys from the stream (heavy keys repeat, as in a
// real serving mix) and sorts them, the shape the sharded batch path feeds
// each shard.
func benchQueryKeys(s *stream.Stream, n, off int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = s.Items[(off+i*37)%len(s.Items)].Key
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// BenchmarkQueryLoop is the per-key baseline: the same key batches answered
// by calling Query in a loop. Compare against BenchmarkQueryBatch at equal
// /keys=N to read the amortization (per-op time is per key in both).
func BenchmarkQueryLoop(b *testing.B) {
	s := benchStream()
	for _, c := range queryBatchContenders {
		for _, size := range queryBatchSizes {
			b.Run(fmt.Sprintf("%s/keys=%d", c.name, size), func(b *testing.B) {
				sk := queryContenderSketch(c.name, c.spec)
				metrics.Feed(sk, s)
				keys := benchQueryKeys(s, size, 0)
				b.ReportAllocs()
				b.ResetTimer()
				var sink uint64
				for i := 0; i < b.N; i += size {
					for _, k := range keys {
						sink ^= sk.Query(k)
					}
				}
				_ = sink
			})
		}
	}
}

// BenchmarkQueryBatch reads the same batches through the unified batch
// path: one QueryBatch call per batch — one lock round-trip per shard, runs
// of equal keys collapsed, instrumentation hoisted.
func BenchmarkQueryBatch(b *testing.B) {
	s := benchStream()
	for _, c := range queryBatchContenders {
		for _, size := range queryBatchSizes {
			b.Run(fmt.Sprintf("%s/keys=%d", c.name, size), func(b *testing.B) {
				sk := queryContenderSketch(c.name, c.spec)
				metrics.Feed(sk, s)
				keys := benchQueryKeys(s, size, 0)
				est := make([]uint64, size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i += size {
					sketch.QueryBatch(sk, keys, est, nil)
				}
			})
		}
	}
}

// BenchmarkMerge measures the distributed-aggregation primitive: folding a
// fully populated 1MB sketch into another. This is the per-batch cost
// ceiling of the netsum collector's merged view and the per-rotation cost
// of the epoch ring's cached window views.
func BenchmarkMerge(b *testing.B) {
	s := benchStream()
	for _, name := range []string{"Ours", "CM_fast", "CU_fast", "Count"} {
		b.Run(name, func(b *testing.B) {
			spec := sketch.Spec{MemoryBytes: 1 << 20, Lambda: 25, Seed: 1}
			src := sketch.MustBuild(name, spec)
			sketch.InsertBatch(src, s.Items[:len(s.Items)/2])
			dst := sketch.MustBuild(name, spec).(sketch.Mergeable)
			sketch.InsertBatch(dst, s.Items[len(s.Items)/2:])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dst.Merge(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Epoch-ring benchmarks: ingest through the ring (the mutex + rotation
// check over the raw sketch) and the rotation itself (sealing + publishing
// a fresh sealed set).
func BenchmarkRingInsert(b *testing.B) {
	s := benchStream()
	r := epoch.NewRing(sketch.Factory{Name: "Ours", New: func(mem int) sketch.Sketch {
		return core.NewFromMemory(mem, 25, 1)
	}}, 1<<20, time.Hour, 4, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s.Items[i%len(s.Items)]
		r.Insert(it.Key, it.Value)
	}
}

func BenchmarkRingInsertBatch(b *testing.B) {
	s := benchStream()
	const chunk = 4096
	r := epoch.NewRing(sketch.Factory{Name: "Ours", New: func(mem int) sketch.Sketch {
		return core.NewFromMemory(mem, 25, 1)
	}}, 1<<20, time.Hour, 4, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for inserted := 0; inserted < b.N; {
		lo := inserted % len(s.Items)
		hi := lo + chunk
		if hi > len(s.Items) {
			hi = len(s.Items)
		}
		if rem := b.N - inserted; hi-lo > rem {
			hi = lo + rem
		}
		r.InsertBatch(s.Items[lo:hi])
		inserted += hi - lo
	}
}

func BenchmarkRingRotate(b *testing.B) {
	// Every insert lands one epoch boundary ahead of the last, so each
	// iteration pays exactly one seal + publish.
	now := time.Unix(0, 0)
	r := epoch.NewRing(sketch.Factory{Name: "CM_fast", New: func(mem int) sketch.Sketch {
		return sketch.MustBuild("CM_fast", sketch.Spec{MemoryBytes: mem, Seed: 1})
	}}, 256<<10, time.Second, 4, func() time.Time { return now })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Second)
		r.Insert(uint64(i), 1)
	}
}

// BenchmarkRingSealedQuery measures the lock-free sealed-window read path
// under a populated ring.
func BenchmarkRingSealedQuery(b *testing.B) {
	s := benchStream()
	now := time.Unix(0, 0)
	r := epoch.NewRing(sketch.Factory{Name: "Ours", New: func(mem int) sketch.Sketch {
		return core.NewFromMemory(mem, 25, 1)
	}}, 1<<20, time.Second, 4, func() time.Time { return now })
	r.InsertBatch(s.Items)
	now = now.Add(time.Second)
	r.Insert(1, 1) // seal
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Query(s.Items[i%len(s.Items)].Key)
	}
	_ = sink
}

func BenchmarkOursQueryWithError(b *testing.B) {
	s := benchStream()
	sk := core.NewFromMemory(1<<20, 25, 1)
	metrics.Feed(sk, s)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		e, m := sk.QueryWithError(s.Items[i%len(s.Items)].Key)
		sink ^= e + m
	}
	_ = sink
}
