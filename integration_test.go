package repro

// End-to-end integration tests composing the full system the way a real
// deployment would: synthesized packets are parsed into flow keys, measured
// in rotating epochs at several vantage points, shipped to a collector over
// TCP, and queried with certified global bounds. Each layer is tested in
// its own package; these tests check the seams.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/netsum"
	"repro/internal/packet"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// TestPacketsToCollector drives raw frames through parsing, per-site
// agents, and the TCP collector, then validates the composed certificates
// against exact per-flow byte counts.
func TestPacketsToCollector(t *testing.T) {
	collector, err := netsum.NewCollector("127.0.0.1:0", netsum.CollectorConfig{
		Spec: sketch.Spec{
			Lambda:      40_000, // bytes
			MemoryBytes: 256 << 10,
			Seed:        1,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer collector.Close()

	const sites = 2
	truth := map[uint64]uint64{}
	for site := 0; site < sites; site++ {
		gen := packet.NewGenerator(150, uint64(site+1))
		frames, err := gen.Frames(15_000, 1.1)
		if err != nil {
			t.Fatal(err)
		}
		agent, err := netsum.Dial(collector.Addr(), uint64(site+1))
		if err != nil {
			t.Fatal(err)
		}
		for _, frame := range frames {
			p, err := packet.Parse(frame)
			if err != nil {
				t.Fatalf("site %d: %v", site, err)
			}
			key := p.Tuple.Key()
			if err := agent.Record(key, uint64(p.WireBytes)); err != nil {
				t.Fatal(err)
			}
			truth[key] += uint64(p.WireBytes)
		}
		// Round-trip to guarantee ingestion before closing.
		if _, _, _, err := agent.Stats(); err != nil {
			t.Fatal(err)
		}
		agent.Close()
	}

	violations := 0
	for key, f := range truth {
		est, mpe := collector.QueryWithError(key)
		if f > est || est-mpe > f {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("%d/%d flows outside composed certified intervals", violations, len(truth))
	}
}

// TestEpochSnapshotShipping models the periodic control-plane pull: a
// rotating monitor seals an epoch, the sealed sketch is serialized, shipped
// (here: a byte buffer), restored remotely, and queried — answers must be
// identical on both sides.
func TestEpochSnapshotShipping(t *testing.T) {
	clock := time.Unix(0, 0)
	rot := epoch.NewRing(sketch.Factory{
		Name: "Ours",
		New:  func(mem int) sketch.Sketch { return core.NewFromMemory(mem, 25, 5) },
	}, 128<<10, time.Second, 4, func() time.Time { return clock })

	s := stream.IPTrace(60_000, 5)
	for _, it := range s.Items {
		rot.Insert(it.Key, it.Value)
	}
	clock = clock.Add(time.Second)
	rot.Insert(0xdead, 1) // trigger rotation; the data epoch is sealed

	// The sealed window answers certified queries...
	est, mpe, ok := rot.QuerySealedWithError(s.Items[0].Key)
	if !ok {
		t.Fatal("no sealed window after rotation")
	}

	// ...and ships as a snapshot. (The ring exposes sealed sketches only
	// through queries; rebuild an identical one to snapshot, as the real
	// pipeline owns its sketch directly.)
	local := core.NewFromMemory(128<<10, 25, 5)
	for _, it := range s.Items {
		local.Insert(it.Key, it.Value)
	}
	var wire bytes.Buffer
	if _, err := local.WriteTo(&wire); err != nil {
		t.Fatal(err)
	}
	remote, err := core.ReadSketch(&wire)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []uint64{s.Items[0].Key, s.Items[100].Key, 0xabcdef} {
		le, lm := local.QueryWithError(probe)
		re, rm := remote.QueryWithError(probe)
		if le != re || lm != rm {
			t.Fatalf("key %d: local (%d,%d) vs restored (%d,%d)", probe, le, lm, re, rm)
		}
	}
	// The rotator's sealed answer must agree with the equivalent sketch.
	wantEst, wantMpe := local.QueryWithError(s.Items[0].Key)
	if est != wantEst || mpe != wantMpe {
		t.Errorf("sealed (%d,%d) vs direct (%d,%d)", est, mpe, wantEst, wantMpe)
	}
}

// TestTraceFileReplayMatchesDirectFeed verifies the rsgen→rsagent path:
// feeding a stream directly and replaying it from its binary file must
// produce identical sketches.
func TestTraceFileReplayMatchesDirectFeed(t *testing.T) {
	s := stream.WebStream(40_000, 9)
	path := t.TempDir() + "/trace.bin"
	if err := stream.WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	replayed, err := stream.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	direct := core.NewFromMemory(64<<10, 25, 9)
	fromFile := core.NewFromMemory(64<<10, 25, 9)
	for _, it := range s.Items {
		direct.Insert(it.Key, it.Value)
	}
	for _, it := range replayed.Items {
		fromFile.Insert(it.Key, it.Value)
	}
	for key := range s.Truth() {
		if direct.Query(key) != fromFile.Query(key) {
			t.Fatal("file replay diverged from direct feed")
		}
	}
}
