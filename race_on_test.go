//go:build race

package repro

// raceEnabled reports whether this test binary was built with the race
// detector, which deliberately randomizes sync.Pool (Put drops items) and
// adds instrumentation allocations — allocation counts are meaningless
// under it.
const raceEnabled = true
