package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// double-exponential schedules (Key Technique II), the mice filter, and
// the emergency layer. Run with -v to see the measured outlier/failure
// numbers alongside the timing.

// BenchmarkAblationSchedules quantifies §3.2's warning that arithmetic
// width/threshold sequences "thoroughly undermine" ReliableSketch: same
// memory, same stream, four schedule kinds, outliers compared.
func BenchmarkAblationSchedules(b *testing.B) {
	s := stream.IPTrace(300_000, 11)
	const mem = 32 << 10 // tight: schedule quality decides whether control is kept
	const lam = 25
	kinds := []core.ScheduleKind{
		core.ScheduleGeometric,
		core.ScheduleArithmeticWidths,
		core.ScheduleArithmeticLambdas,
		core.ScheduleArithmeticBoth,
	}
	for _, kind := range kinds {
		b.Run(kind.String(), func(b *testing.B) {
			var outliers int
			var fails uint64
			for i := 0; i < b.N; i++ {
				sk := core.MustNew(core.Config{
					Lambda: lam, MemoryBytes: mem, Seed: 11, Schedule: kind,
				})
				metrics.Feed(sk, s)
				fails, _ = sk.InsertionFailures()
				outliers = metrics.Evaluate(sk, s, lam).Outliers
			}
			// Insertion failures are the controlled quantity: each one voids
			// the certificate. Geometric reaches 0 here; arithmetic cannot.
			b.ReportMetric(float64(fails), "failures")
			b.ReportMetric(float64(outliers), "outliers")
		})
	}
}

// BenchmarkAblationMiceFilter measures the filter's trade (paper §3.3 and
// Figure 10's Ours vs Ours(Raw)): insertion speed against zero-outlier
// robustness on a mice-heavy stream at tight memory.
func BenchmarkAblationMiceFilter(b *testing.B) {
	s := stream.DataCenter(300_000, 12) // many mice keys
	const mem = 96 << 10
	const lam = 25
	for _, withFilter := range []bool{true, false} {
		name := "filter"
		mk := func() *core.Sketch { return core.NewFromMemory(mem, lam, 12) }
		if !withFilter {
			name = "raw"
			mk = func() *core.Sketch { return core.NewRaw(mem, lam, 12) }
		}
		b.Run(name, func(b *testing.B) {
			var outliers int
			for i := 0; i < b.N; i++ {
				sk := mk()
				metrics.Feed(sk, s)
				outliers = metrics.Evaluate(sk, s, lam).Outliers
			}
			b.ReportMetric(float64(outliers), "outliers")
			b.ReportMetric(float64(s.Len()*b.N)/b.Elapsed().Seconds()/1e6, "Mpps")
		})
	}
}

// BenchmarkAblationEmergency measures the emergency layer's overhead: the
// paper excludes it from accuracy runs; this shows the cost of turning the
// unconditional guarantee on.
func BenchmarkAblationEmergency(b *testing.B) {
	s := stream.IPTrace(300_000, 13)
	const mem = 256 << 10
	const lam = 25
	for _, emergency := range []bool{false, true} {
		name := "off"
		if emergency {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sk := core.MustNew(core.Config{
					Lambda: lam, MemoryBytes: mem, Seed: 13,
					Emergency: emergency,
				})
				metrics.Feed(sk, s)
			}
			b.ReportMetric(float64(s.Len()*b.N)/b.Elapsed().Seconds()/1e6, "Mpps")
		})
	}
}

// BenchmarkAblationDepth sweeps the layer count d: the paper recommends
// d ≥ 7; shallower stacks risk insertion failures, deeper ones cost
// nothing at sane loads (deep layers are never reached).
func BenchmarkAblationDepth(b *testing.B) {
	s := stream.IPTrace(300_000, 14)
	const mem = 96 << 10
	const lam = 25
	for _, d := range []int{2, 4, 7, 12, 20} {
		b.Run(fmt.Sprintf("d=%02d", d), func(b *testing.B) {
			var fails uint64
			var outliers int
			for i := 0; i < b.N; i++ {
				sk := core.MustNew(core.Config{
					Lambda: lam, MemoryBytes: mem, Seed: 14, D: d,
				})
				metrics.Feed(sk, s)
				fails, _ = sk.InsertionFailures()
				outliers = metrics.Evaluate(sk, s, lam).Outliers
			}
			b.ReportMetric(float64(fails), "failures")
			b.ReportMetric(float64(outliers), "outliers")
		})
	}
}
