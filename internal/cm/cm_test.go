package cm

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
	"repro/internal/stream"
)

var _ sketch.Sketch = (*Sketch)(nil)

func TestExactWithoutCollisions(t *testing.T) {
	s := New(3, 1<<16, 1, "CM")
	s.Insert(1, 5)
	s.Insert(2, 7)
	s.Insert(1, 3)
	if got := s.Query(1); got != 8 {
		t.Errorf("Query(1)=%d want 8", got)
	}
	if got := s.Query(2); got != 7 {
		t.Errorf("Query(2)=%d want 7", got)
	}
	if got := s.Query(3); got != 0 {
		t.Errorf("Query(unseen)=%d want 0", got)
	}
}

// TestNeverUnderestimates is CM's defining invariant.
func TestNeverUnderestimates(t *testing.T) {
	err := quick.Check(func(seed uint64, ops []uint16) bool {
		s := New(3, 64, seed, "CM")
		truth := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o % 200)
			v := uint64(o%5) + 1
			s.Insert(k, v)
			truth[k] += v
		}
		for k, f := range truth {
			if s.Query(k) < f {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorBoundEpsN(t *testing.T) {
	// Classic CM bound: error ≤ e·N/w with probability 1−e^−d per key; with
	// a generous 4·N/w bound virtually no key should violate it.
	s := stream.Zipf(100_000, 10_000, 1.0, 2)
	sk := NewFast(256<<10, 2)
	var total uint64
	for _, it := range s.Items {
		sk.Insert(it.Key, it.Value)
		total += it.Value
	}
	bound := 4 * total / uint64(sk.Width())
	violations := 0
	for k, f := range s.Truth() {
		if est := sk.Query(k); est-f > bound {
			violations++
		}
	}
	if violations > s.Distinct()/100 {
		t.Errorf("%d/%d keys violate 4N/w error bound", violations, s.Distinct())
	}
}

func TestVariantsGeometry(t *testing.T) {
	fast := NewFast(1<<20, 1)
	if fast.Depth() != 3 || fast.Name() != "CM_fast" {
		t.Errorf("fast variant: d=%d name=%q", fast.Depth(), fast.Name())
	}
	acc := NewAccurate(1<<20, 1)
	if acc.Depth() != 16 || acc.Name() != "CM_acc" {
		t.Errorf("accurate variant: d=%d name=%q", acc.Depth(), acc.Name())
	}
	for _, s := range []*Sketch{fast, acc} {
		if s.MemoryBytes() > 1<<20 {
			t.Errorf("%s: memory %d over budget", s.Name(), s.MemoryBytes())
		}
		if s.MemoryBytes() < (1<<20)*9/10 {
			t.Errorf("%s: memory %d uses <90%% of budget", s.Name(), s.MemoryBytes())
		}
	}
}

func TestMoreRowsMoreAccurate(t *testing.T) {
	// At equal memory, CM_acc trades width for confidence; on a skewed
	// stream its worst-case error should not be dramatically worse, and the
	// estimates must remain overestimates. Simply verify both run and the
	// accurate variant has no underestimates (smoke + invariant).
	s := stream.Zipf(50_000, 5_000, 1.5, 3)
	acc := NewAccurate(64<<10, 3)
	for _, it := range s.Items {
		acc.Insert(it.Key, it.Value)
	}
	for k, f := range s.Truth() {
		if acc.Query(k) < f {
			t.Fatalf("underestimate for key %d", k)
		}
	}
}

func TestReset(t *testing.T) {
	s := NewFast(1<<12, 1)
	s.Insert(5, 5)
	s.Reset()
	if s.Query(5) != 0 {
		t.Error("Reset did not clear counters")
	}
	if s.HashCalls() != 3 { // the Query above touches all 3 rows
		t.Errorf("hash calls after reset = %d, want 3", s.HashCalls())
	}
}

func TestHashCallsCount(t *testing.T) {
	s := NewFast(1<<12, 1)
	s.Insert(1, 1) // 3 rows
	s.Query(1)     // 3 rows
	if got := s.HashCalls(); got != 6 {
		t.Errorf("HashCalls=%d want 6", got)
	}
}

func BenchmarkInsertFast(b *testing.B) {
	sk := NewFast(1<<20, 1)
	r := rand.New(rand.NewPCG(1, 2))
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Insert(keys[i&(1<<16-1)], 1)
	}
}

func BenchmarkQueryFast(b *testing.B) {
	sk := NewFast(1<<20, 1)
	for i := 0; i < 1<<16; i++ {
		sk.Insert(uint64(i), 1)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= sk.Query(uint64(i & (1<<16 - 1)))
	}
	_ = sink
}
