package cm

import "testing"

func TestSketch4CountsAndSaturates(t *testing.T) {
	s := New4(1024, 7)
	if got := s.Estimate(42); got != 0 {
		t.Fatalf("fresh estimate = %d, want 0", got)
	}
	for i := 0; i < 5; i++ {
		s.Inc(42)
	}
	if got := s.Estimate(42); got < 5 {
		t.Fatalf("estimate after 5 incs = %d, want ≥ 5 (count-min never underestimates)", got)
	}
	for i := 0; i < 100; i++ {
		s.Inc(42)
	}
	if got := s.Estimate(42); got != 15 {
		t.Fatalf("saturated estimate = %d, want 15", got)
	}
}

func TestSketch4Halve(t *testing.T) {
	s := New4(1024, 7)
	for i := 0; i < 8; i++ {
		s.Inc(1)
	}
	s.Inc(2)
	before1, before2 := s.Estimate(1), s.Estimate(2)
	s.Halve()
	if got := s.Estimate(1); got != before1/2 {
		t.Errorf("halved estimate(1) = %d, want %d", got, before1/2)
	}
	if got := s.Estimate(2); got != before2/2 {
		t.Errorf("halved estimate(2) = %d, want %d (odd counts round down)", got, before2/2)
	}
}

// TestSketch4HalveNeverLeaksAcrossCounters pins the packed-word masking:
// halving must not shift a neighboring counter's low bit into this one.
func TestSketch4HalveNeverLeaksAcrossCounters(t *testing.T) {
	s := New4(64, 3)
	keys := []uint64{10, 11, 12, 13, 14, 15, 16, 17}
	for _, k := range keys {
		for i := uint64(0); i < k; i++ {
			s.Inc(k)
		}
	}
	want := make(map[uint64]uint32, len(keys))
	for _, k := range keys {
		want[k] = s.Estimate(k) / 2
	}
	s.Halve()
	for _, k := range keys {
		if got := s.Estimate(k); got < want[k] {
			t.Errorf("estimate(%d) after halve = %d, want ≥ %d", k, got, want[k])
		}
	}
}

func TestSketch4Reset(t *testing.T) {
	s := New4(128, 1)
	s.Inc(9)
	s.Reset()
	if got := s.Estimate(9); got != 0 {
		t.Fatalf("estimate after reset = %d, want 0", got)
	}
}

func TestSketch4Geometry(t *testing.T) {
	s := New4(100, 1)
	if s.Width() != 128 {
		t.Errorf("width = %d, want 128 (rounded up to a power of two)", s.Width())
	}
	if got := s.MemoryBytes(); got != sketch4Depth*128/2 {
		t.Errorf("memory = %dB, want %d (4 bits per counter)", got, sketch4Depth*128/2)
	}
}

func BenchmarkSketch4Inc(b *testing.B) {
	s := New4(4096, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Inc(uint64(i) & 1023)
	}
}
