package cm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot serialization, implementing sketch.Snapshotter. The wire format
// is magic "CMS1" | d | width | hash-call counters | counters as uvarints
// (most counters are small at sane loads, so varints beat fixed words). The
// hash family is not serialized: it derives from the Spec seed, which the
// restoring side supplies by building a same-Spec sketch.

var cmMagic = [4]byte{'C', 'M', 'S', '1'}

// Snapshot writes the sketch's full state to w.
func (s *Sketch) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(cmMagic[:])
	var buf [binary.MaxVarintLen64]byte
	write := func(vs ...uint64) {
		for _, v := range vs {
			n := binary.PutUvarint(buf[:], v)
			bw.Write(buf[:n])
		}
	}
	write(uint64(len(s.rows)), uint64(s.width), s.insertHashCalls, s.queryHashCalls.Load())
	for i := range s.rows {
		for _, c := range s.rows[i] {
			write(uint64(c))
		}
	}
	return bw.Flush()
}

// Restore replaces the counters with a snapshot written by a same-Spec
// sibling's Snapshot. The serialized geometry must match the receiver's;
// hash seeds cannot be validated (they are not serialized), so restoring
// into a differently seeded sketch silently mis-answers — the same-Spec
// contract of sketch.Snapshotter.
func (s *Sketch) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("cm: reading snapshot magic: %w", err)
	}
	if magic != cmMagic {
		return fmt.Errorf("cm: bad snapshot magic %q", magic[:])
	}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	d, err := read()
	if err != nil {
		return fmt.Errorf("cm: snapshot depth: %w", err)
	}
	w, err := read()
	if err != nil {
		return fmt.Errorf("cm: snapshot width: %w", err)
	}
	if int(d) != len(s.rows) || int(w) != s.width {
		return fmt.Errorf("cm: snapshot geometry %dx%d, sketch built %dx%d",
			d, w, len(s.rows), s.width)
	}
	ins, err := read()
	if err != nil {
		return fmt.Errorf("cm: snapshot insert hash calls: %w", err)
	}
	qry, err := read()
	if err != nil {
		return fmt.Errorf("cm: snapshot query hash calls: %w", err)
	}
	// Decode into fresh rows and swap only on full success, so a truncated
	// or corrupt snapshot leaves the receiver untouched.
	rows := make([][]uint32, len(s.rows))
	for i := range rows {
		rows[i] = make([]uint32, s.width)
		for j := range rows[i] {
			c, err := read()
			if err != nil {
				return fmt.Errorf("cm: counter %d/%d: %w", i, j, err)
			}
			if c > 0xffffffff {
				return fmt.Errorf("cm: counter %d/%d overflows 32 bits", i, j)
			}
			rows[i][j] = uint32(c)
		}
	}
	s.rows = rows
	s.insertHashCalls = ins
	s.queryHashCalls.Store(qry)
	return nil
}
