package cm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sketch"
)

// Snapshot serialization, implementing sketch.Snapshotter. The wire format
// is magic "CMS1" | d | width | hash-call counters | counters as uvarints
// (most counters are small at sane loads, so varints beat fixed words). The
// hash family is not serialized: it derives from the Spec seed, which the
// restoring side supplies by building a same-Spec sketch.

var cmMagic = [4]byte{'C', 'M', 'S', '1'}

// Snapshot writes the sketch's full state to w.
func (s *Sketch) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(cmMagic[:])
	var buf [binary.MaxVarintLen64]byte
	write := func(vs ...uint64) {
		for _, v := range vs {
			n := binary.PutUvarint(buf[:], v)
			bw.Write(buf[:n])
		}
	}
	write(uint64(s.depth), uint64(s.width), s.insertHashCalls, s.queryHashCalls.Load())
	// data is row-major, so iterating it flat emits the exact byte stream
	// the per-row layout produced.
	for _, c := range s.data {
		write(uint64(c))
	}
	return bw.Flush()
}

// Restore replaces the counters with a snapshot written by a same-Spec
// sibling's Snapshot. The serialized geometry must match the receiver's;
// hash seeds cannot be validated (they are not serialized), so restoring
// into a differently seeded sketch silently mis-answers — the same-Spec
// contract of sketch.Snapshotter.
func (s *Sketch) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("cm: reading snapshot magic: %w", err)
	}
	if magic != cmMagic {
		return fmt.Errorf("%w: bad cm snapshot magic %q", sketch.ErrSnapshotMismatch, magic[:])
	}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	d, err := read()
	if err != nil {
		return fmt.Errorf("cm: snapshot depth: %w", err)
	}
	w, err := read()
	if err != nil {
		return fmt.Errorf("cm: snapshot width: %w", err)
	}
	if int(d) != s.depth || int(w) != s.width {
		return fmt.Errorf("%w: cm snapshot geometry %dx%d, sketch built %dx%d", sketch.ErrSnapshotMismatch,
			d, w, s.depth, s.width)
	}
	ins, err := read()
	if err != nil {
		return fmt.Errorf("cm: snapshot insert hash calls: %w", err)
	}
	qry, err := read()
	if err != nil {
		return fmt.Errorf("cm: snapshot query hash calls: %w", err)
	}
	// Decode into a fresh counter slice and swap only on full success, so a
	// truncated or corrupt snapshot leaves the receiver untouched.
	data := make([]uint32, s.depth*s.width)
	for i := range data {
		c, err := read()
		if err != nil {
			return fmt.Errorf("cm: counter %d/%d: %w", i/s.width, i%s.width, err)
		}
		if c > 0xffffffff {
			return fmt.Errorf("cm: counter %d/%d overflows 32 bits", i/s.width, i%s.width)
		}
		data[i] = uint32(c)
	}
	s.data = data
	s.insertHashCalls = ins
	s.queryHashCalls.Store(qry)
	return nil
}
