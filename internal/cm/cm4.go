package cm

import "repro/internal/hash"

// sketch4Depth is the row count of Sketch4. Four rows is the standard
// TinyLFU configuration (Einziger et al.): with 4-bit counters the sketch
// only has to rank candidates, not estimate frequencies, so extra depth
// buys nothing a halving cycle does not already provide.
const sketch4Depth = 4

// Sketch4 is a compact count-min sketch with 4-bit saturating counters —
// the frequency half of the W-TinyLFU admission policy, where a full
// 32-bit Sketch would spend 8× the memory on counts that are reset by
// periodic halving anyway. Sixteen counters pack into each uint64 word and
// rows share one contiguous row-major slice, the same flattened layout as
// Sketch; per-row bucket indexes derive from one shared key-side mix
// (hash.PreKey / hash.BucketPre), the multi-row amortization every sketch
// in this repository uses.
//
// Sketch4 is NOT safe for concurrent use: the cache shard that owns it
// already serializes accesses under its lock.
type Sketch4 struct {
	words       []uint64
	width       int // counters per row, a multiple of 16
	wordsPerRow int
	seeds       [sketch4Depth]uint64
}

// New4 builds a 4-bit count-min sketch with at least counters counters per
// row (rounded up to a power of two, floor 64), seeded deterministically
// from seed.
func New4(counters int, seed uint64) *Sketch4 {
	w := 64
	for w < counters {
		w <<= 1
	}
	s := &Sketch4{
		words:       make([]uint64, sketch4Depth*w/16),
		width:       w,
		wordsPerRow: w / 16,
	}
	f := hash.NewFamily(seed, sketch4Depth)
	for i := range s.seeds {
		s.seeds[i] = f.Seed(i)
	}
	return s
}

// Inc bumps every mapped counter by one, saturating at 15. Saturation
// keeps a single hot key from wrapping into a cold-looking count; the
// periodic Halve restores headroom.
func (s *Sketch4) Inc(key uint64) {
	pk := hash.PreKey(key)
	base := 0
	for _, seed := range s.seeds {
		j := uint64(hash.BucketPre(pk, seed, s.width))
		word := base + int(j>>4)
		shift := (j & 15) * 4
		if (s.words[word]>>shift)&0xf < 15 {
			s.words[word] += 1 << shift
		}
		base += s.wordsPerRow
	}
}

// Estimate returns the minimum mapped counter — an overestimate of key's
// recorded accesses since the last halving, in [0, 15].
func (s *Sketch4) Estimate(key uint64) uint32 {
	pk := hash.PreKey(key)
	min := uint32(15)
	base := 0
	for _, seed := range s.seeds {
		j := uint64(hash.BucketPre(pk, seed, s.width))
		c := uint32(s.words[base+int(j>>4)]>>((j&15)*4)) & 0xf
		if c < min {
			min = c
		}
		base += s.wordsPerRow
	}
	return min
}

// Halve divides every counter by two, the TinyLFU aging step: run once per
// sample period, it turns lifetime counts into an exponentially decayed
// recency-weighted frequency, so yesterday's heavy hitter cannot squat the
// admission filter forever.
func (s *Sketch4) Halve() {
	for i, w := range s.words {
		s.words[i] = (w >> 1) & 0x7777777777777777
	}
}

// Width returns the counters per row.
func (s *Sketch4) Width() int { return s.width }

// MemoryBytes reports the packed counter storage.
func (s *Sketch4) MemoryBytes() int { return len(s.words) * 8 }

// Reset zeroes all counters.
func (s *Sketch4) Reset() { clear(s.words) }
