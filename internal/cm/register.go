package cm

import "repro/internal/sketch"

// The evaluation's two Count-Min variants self-register so the harness and
// CLIs can build them by name (§6.1: d=3 for throughput, d=16 for accuracy).
func init() {
	sketch.Register("CM_fast", sketch.CapResettable|sketch.CapMergeable|sketch.CapSnapshottable|sketch.CapBatchQuery, func(sp sketch.Spec) sketch.Sketch {
		return NewFast(sp.MemoryBytes, sp.Seed)
	})
	sketch.Register("CM_acc", sketch.CapResettable|sketch.CapMergeable|sketch.CapSnapshottable|sketch.CapBatchQuery, func(sp sketch.Spec) sketch.Sketch {
		return NewAccurate(sp.MemoryBytes, sp.Seed)
	})
}
