// Package cm implements the Count-Min sketch (Cormode & Muthukrishnan,
// J. Algorithms 2005), the canonical counter-based L1 baseline of the
// paper's evaluation (§2.2). CM never underestimates, but its per-key
// confidence 1−δ collapses to (1−δ)^N over N collective queries — the
// failure mode ReliableSketch is designed to eliminate.
//
// The evaluation uses two variants: CM_fast with d=3 rows (the throughput
// configuration) and CM_acc with d=16 rows (the accuracy configuration).
package cm

import "repro/internal/hash"

// CounterBytes is the accounted size of one counter (32 bits, as in the
// paper's C++ implementation).
const CounterBytes = 4

// Sketch is a Count-Min sketch with d rows of w 32-bit counters.
type Sketch struct {
	rows   [][]uint32
	width  int
	hashes *hash.Family
	name   string
	// hashCalls supports the Figure 16 hash-call accounting.
	hashCalls uint64
}

// New builds a CM sketch with d rows of width counters each.
func New(d, width int, seed uint64, name string) *Sketch {
	if d < 1 || width < 1 {
		panic("cm: invalid geometry")
	}
	s := &Sketch{
		rows:   make([][]uint32, d),
		width:  width,
		hashes: hash.NewFamily(seed, d),
		name:   name,
	}
	for i := range s.rows {
		s.rows[i] = make([]uint32, width)
	}
	return s
}

// NewFast builds the 3-row throughput variant sized to memBytes.
func NewFast(memBytes int, seed uint64) *Sketch {
	return New(3, widthFor(memBytes, 3), seed, "CM_fast")
}

// NewAccurate builds the 16-row accuracy variant sized to memBytes.
func NewAccurate(memBytes int, seed uint64) *Sketch {
	return New(16, widthFor(memBytes, 16), seed, "CM_acc")
}

func widthFor(memBytes, d int) int {
	w := memBytes / (d * CounterBytes)
	if w < 1 {
		w = 1
	}
	return w
}

// Insert adds value to every mapped counter.
func (s *Sketch) Insert(key, value uint64) {
	for i := range s.rows {
		j := s.hashes.Bucket(i, key, s.width)
		s.hashCalls++
		s.rows[i][j] += uint32(value)
	}
}

// Query returns the minimum mapped counter, a certified overestimate.
func (s *Sketch) Query(key uint64) uint64 {
	var min uint64
	for i := range s.rows {
		j := s.hashes.Bucket(i, key, s.width)
		s.hashCalls++
		c := uint64(s.rows[i][j])
		if i == 0 || c < min {
			min = c
		}
	}
	return min
}

// Depth returns the number of rows d.
func (s *Sketch) Depth() int { return len(s.rows) }

// Width returns the per-row counter count.
func (s *Sketch) Width() int { return s.width }

// HashCalls returns the cumulative hash evaluations (Figure 16).
func (s *Sketch) HashCalls() uint64 { return s.hashCalls }

// MemoryBytes reports d × w × 4 bytes.
func (s *Sketch) MemoryBytes() int { return len(s.rows) * s.width * CounterBytes }

// Name identifies the variant.
func (s *Sketch) Name() string { return s.name }

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	for i := range s.rows {
		clear(s.rows[i])
	}
	s.hashCalls = 0
}
