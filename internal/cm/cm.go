// Package cm implements the Count-Min sketch (Cormode & Muthukrishnan,
// J. Algorithms 2005), the canonical counter-based L1 baseline of the
// paper's evaluation (§2.2). CM never underestimates, but its per-key
// confidence 1−δ collapses to (1−δ)^N over N collective queries — the
// failure mode ReliableSketch is designed to eliminate.
//
// The evaluation uses two variants: CM_fast with d=3 rows (the throughput
// configuration) and CM_acc with d=16 rows (the accuracy configuration).
package cm

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/hash"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// CounterBytes is the accounted size of one counter (32 bits, as in the
// paper's C++ implementation).
const CounterBytes = 4

// maxStackRows bounds the per-query row-index scratch kept on the stack so
// concurrent readers share no state and allocate nothing; both evaluated
// depths (d=3 and d=16) fit, deeper sketches fall back to one allocation.
const maxStackRows = 16

// Sketch is a Count-Min sketch with d rows of w 32-bit counters.
//
// The counters live in one contiguous row-major slice (row i is
// data[i*width:(i+1)*width]), so a d-row touch is d offsets into a single
// allocation instead of d slice-header dereferences — the cache-conscious
// layout of Estan & Varghese's software implementations.
//
// Insert is single-writer (it reuses a per-sketch index scratch); Query is
// safe for concurrent readers (sealed epoch windows are queried lock-free),
// so the query-side hash-call counter is atomic, the query scratch stays on
// the stack, and the insert-side counter stays plain. The zero value is not
// usable; build with New.
type Sketch struct {
	data   []uint32
	width  int
	depth  int
	hashes *hash.Family
	name   string
	// insertHashCalls + queryHashCalls support the Figure 16 hash-call
	// accounting, split by operation kind so concurrent queries never race
	// the single-writer insert path.
	insertHashCalls uint64
	queryHashCalls  atomic.Uint64
	// idx is the per-insert row-index scratch filled by the multi-row
	// bucket path; single-writer, like Insert itself.
	idx []int
	// agg is the reusable per-batch aggregation cache of InsertBatch;
	// aggShift maps a mixed key to a slot index.
	agg      []aggSlot
	aggShift uint
}

// aggSlot is one entry of InsertBatch's direct-mapped aggregation cache.
// sum == 0 means empty (aggregating a zero value drops it, which matches
// Insert(key, 0) adding nothing).
type aggSlot struct {
	key uint64
	sum uint64
}

// maxAggSlots caps the aggregation cache: big enough to hold the heavy
// tail of a zipfian batch, small enough (32KB) to stay cache-resident. The
// actual size shrinks with the sketch's accounted budget so the unaccounted
// scratch never dwarfs the sketch in same-memory comparisons.
const maxAggSlots = 2048

// ensureAgg sizes the cache to a power of two no larger than a quarter of
// the accounted memory (floor 64 slots = 1KB). One allocation for the
// sketch's lifetime, so InsertBatch stays 0 allocs/op in steady state.
func (s *Sketch) ensureAgg() {
	if s.agg != nil {
		return
	}
	slots := maxAggSlots
	for slots > 64 && slots*16 > s.MemoryBytes()/4 {
		slots >>= 1
	}
	s.agg = make([]aggSlot, slots)
	s.aggShift = uint(64 - bits.Len(uint(slots-1)))
}

// New builds a CM sketch with d rows of width counters each.
func New(d, width int, seed uint64, name string) *Sketch {
	if d < 1 || width < 1 {
		panic("cm: invalid geometry")
	}
	return &Sketch{
		data:   make([]uint32, d*width),
		width:  width,
		depth:  d,
		hashes: hash.NewFamily(seed, d),
		name:   name,
		idx:    make([]int, d),
	}
}

// NewFast builds the 3-row throughput variant sized to memBytes.
func NewFast(memBytes int, seed uint64) *Sketch {
	return New(3, widthFor(memBytes, 3), seed, "CM_fast")
}

// NewAccurate builds the 16-row accuracy variant sized to memBytes.
func NewAccurate(memBytes int, seed uint64) *Sketch {
	return New(16, widthFor(memBytes, 16), seed, "CM_acc")
}

func widthFor(memBytes, d int) int {
	w := memBytes / (d * CounterBytes)
	if w < 1 {
		w = 1
	}
	return w
}

// Insert adds value to every mapped counter. All d row indexes are
// computed in one pass over the hash family (the key-side mix is shared),
// then applied as d offsets into the contiguous counter slice.
func (s *Sketch) Insert(key, value uint64) {
	s.hashes.Buckets(s.idx, key, s.width)
	s.insertHashCalls += uint64(s.depth)
	base := 0
	for _, j := range s.idx {
		s.data[base+j] += uint32(value)
		base += s.width
	}
}

// InsertBatch is the native bulk-ingestion path. CM insertion is pure
// commutative addition, so same-key items may be combined before touching
// the rows: a direct-mapped cache aggregates the batch's repeated (heavy)
// keys and each aggregate is inserted once — on the skewed streams the
// paper evaluates this cuts hashing and counter traffic by the batch's
// repetition factor while producing bit-identical counters to
// item-at-a-time insertion. A cache conflict just flushes the evicted
// aggregate early, so correctness never depends on the cache size.
func (s *Sketch) InsertBatch(items []stream.Item) {
	s.ensureAgg()
	for _, it := range items {
		sl := &s.agg[(it.Key*0x9E3779B97F4A7C15)>>s.aggShift]
		if sl.sum != 0 && sl.key != it.Key {
			s.Insert(sl.key, sl.sum)
			sl.sum = 0
		}
		sl.key = it.Key
		sl.sum += it.Value
	}
	for i := range s.agg {
		if s.agg[i].sum != 0 {
			s.Insert(s.agg[i].key, s.agg[i].sum)
			s.agg[i].sum = 0
		}
	}
}

// Query returns the minimum mapped counter, a certified overestimate.
// Safe for concurrent readers: the row-index scratch is a per-call stack
// array, so queries share no state and allocate nothing (at d ≤ 16).
func (s *Sketch) Query(key uint64) uint64 {
	var buf [maxStackRows]int
	idx := buf[:]
	if s.depth > maxStackRows {
		idx = make([]int, s.depth)
	}
	idx = idx[:s.depth]
	s.hashes.Buckets(idx, key, s.width)
	var min uint64
	base := 0
	for i, j := range idx {
		c := uint64(s.data[base+j])
		if i == 0 || c < min {
			min = c
		}
		base += s.width
	}
	s.queryHashCalls.Add(uint64(s.depth))
	return min
}

// QueryBatch is the native batch read path (sketch.BatchQuerier): runs of
// equal keys reuse the previous row-minimum without re-hashing, each
// distinct key's row indexes come from one multi-row hash pass, and the
// atomic hash-call counter is updated once per batch instead of once per
// key. CM cannot certify per-key errors, so a non-nil mpe is zero-filled.
// Answers are identical to per-key Query; safe for concurrent readers (the
// index scratch is per-call).
func (s *Sketch) QueryBatch(keys []uint64, est, mpe []uint64) {
	var buf [maxStackRows]int
	idx := buf[:]
	if s.depth > maxStackRows {
		idx = make([]int, s.depth)
	}
	idx = idx[:s.depth]
	var hashCalls uint64
	var prevKey, prevEst uint64
	havePrev := false
	for i, k := range keys {
		if mpe != nil {
			mpe[i] = 0
		}
		if havePrev && k == prevKey {
			est[i] = prevEst
			continue
		}
		s.hashes.Buckets(idx, k, s.width)
		var min uint64
		base := 0
		for r, j := range idx {
			c := uint64(s.data[base+j])
			if r == 0 || c < min {
				min = c
			}
			base += s.width
		}
		hashCalls += uint64(s.depth)
		est[i] = min
		prevKey, prevEst, havePrev = k, min, true
	}
	s.queryHashCalls.Add(hashCalls)
}

// Merge adds another same-geometry CM sketch counter-by-counter. CM is a
// linear sketch, so the merged counters are bit-identical to one sketch fed
// the concatenated stream — queries after Merge are exact equivalents.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return sketch.MergeIncompatible(s, other, "not a Count-Min sketch")
	}
	if s.depth != o.depth || s.width != o.width {
		return sketch.MergeIncompatible(s, other, "geometry differs")
	}
	if !s.hashes.Equal(o.hashes) {
		return sketch.MergeIncompatible(s, other, "hash seeds differ")
	}
	for i, c := range o.data {
		s.data[i] += c
	}
	s.insertHashCalls += o.insertHashCalls
	s.queryHashCalls.Add(o.queryHashCalls.Load())
	return nil
}

// Depth returns the number of rows d.
func (s *Sketch) Depth() int { return s.depth }

// Width returns the per-row counter count.
func (s *Sketch) Width() int { return s.width }

// HashCalls returns the cumulative hash evaluations (Figure 16).
func (s *Sketch) HashCalls() uint64 { return s.insertHashCalls + s.queryHashCalls.Load() }

// MemoryBytes reports d × w × 4 bytes.
func (s *Sketch) MemoryBytes() int { return s.depth * s.width * CounterBytes }

// Name identifies the variant.
func (s *Sketch) Name() string { return s.name }

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	clear(s.data)
	s.insertHashCalls = 0
	s.queryHashCalls.Store(0)
}
