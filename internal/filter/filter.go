// Package filter implements the mice filter of ReliableSketch's accuracy
// optimization (paper §3.3): a CU-sketch of narrow saturating counters that
// replaces the (largest) first layer. Mice keys — keys whose total value fits
// below the saturation cap — are absorbed here at a fraction of the cost of
// full 72-bit Error-Sensible buckets; only the overflow of heavier keys
// proceeds to the bucket layers.
//
// The filter preserves ReliableSketch's certified-interval semantics:
//
//   - The minimum mapped counter is an upper bound on the value the filter
//     absorbed for a key (CU property, preserved under saturation).
//   - If the minimum mapped counter is below the cap, the key never
//     overflowed, so the query can stop at the filter.
//
// The paper uses 2-bit counters occupying 20% of total memory by default.
package filter

import (
	"sync/atomic"

	"repro/internal/hash"
)

// Filter is a conservative-update filter of saturating counters.
//
// The counters live in one contiguous row-major slice (row r is
// data[r*width:(r+1)*width]), matching the flattened counter-sketch
// layouts: a filter touch is Rows() offsets into a single allocation.
//
// Insert is single-writer; Query is safe for any number of concurrent
// readers (it touches no shared scratch and counts its hash calls
// atomically), so a sealed epoch window can be queried lock-free.
type Filter struct {
	data  []uint32 // counter values, row-major; ≤ cap until a Merge
	depth int      // number of rows
	width int
	cap   uint64
	bits  int
	// hashes derives per-row bucket indexes; the key-side mix is shared
	// with the owning sketch's layer walk through the *Pre entry points.
	hashes *hash.Family
	// pos caches the flat counter positions between the read and write
	// phases of an insertion, so each touched operation hashes exactly
	// Rows() times — the "2 calls per operation" accounting of Figure 16.
	// Only Insert (single-writer) touches it; Query must not.
	pos []int
	// insertHashCalls and queryHashCalls count bucket-index computations
	// per operation kind, for the Figure 16 hash-call accounting. The query
	// counter is atomic so concurrent readers never race.
	insertHashCalls uint64
	queryHashCalls  atomic.Uint64
}

// New builds a filter with `rows` arrays of `width` counters of `bits` bits
// each (cap = 2^bits − 1). The paper's defaults are rows=2, bits=2.
func New(rows, width, bits int, seed uint64) *Filter {
	if rows < 1 || width < 1 || bits < 1 || bits > 32 {
		panic("filter: invalid geometry")
	}
	return &Filter{
		data:   make([]uint32, rows*width),
		depth:  rows,
		width:  width,
		cap:    1<<bits - 1,
		bits:   bits,
		hashes: hash.NewFamily(seed, rows),
		pos:    make([]int, rows),
	}
}

// NewBytes builds a filter of `rows` arrays filling memBytes under the
// bit-packed accounting model.
func NewBytes(memBytes, rows, bits int, seed uint64) *Filter {
	width := memBytes * 8 / (rows * bits)
	if width < 1 {
		width = 1
	}
	return New(rows, width, bits, seed)
}

// Cap returns the saturation value of each counter.
func (f *Filter) Cap() uint64 { return f.cap }

// Insert adds <e, v> to the filter and returns the overflow: the portion of
// v that could not be absorbed before the key's minimum counter saturated.
// Overflow 0 means fully absorbed. The write phase reuses the positions the
// read phase computed, so an insertion costs exactly Rows() hash calls.
func (f *Filter) Insert(e, v uint64) (overflow uint64) {
	return f.InsertPre(hash.PreKey(e), v)
}

// InsertPre is Insert with the key's seed-independent hash half already
// computed (pk == hash.PreKey(e)). The core sketch pays PreKey once per
// item and shares it between this filter and its bucket-layer walk.
func (f *Filter) InsertPre(pk, v uint64) (overflow uint64) {
	m := f.min(pk)
	f.insertHashCalls += uint64(f.depth)
	if m >= f.cap {
		// Already saturated (merged counters may sit above cap): nothing is
		// absorbable, the whole value cascades to the bucket layers.
		return v
	}
	absorbed := v
	if m+v > f.cap {
		absorbed = f.cap - m
		overflow = v - absorbed
	}
	if absorbed > 0 {
		target := uint32(m + absorbed)
		for _, p := range f.pos {
			if f.data[p] < target {
				f.data[p] = target
			}
		}
	}
	return overflow
}

// Query returns the filter's estimate for key e (its minimum mapped
// counter) and whether the key may have overflowed into deeper layers
// (true exactly when the minimum counter reached saturation; merged
// counters can exceed cap, which still means "may have overflowed in some
// merged part"). Safe for concurrent readers.
func (f *Filter) Query(e uint64) (est uint64, saturated bool) {
	return f.QueryPre(hash.PreKey(e))
}

// QueryPre is Query with the key prehashed (pk == hash.PreKey(e)); same
// concurrency guarantees. Callers that also walk bucket layers share one
// PreKey across both.
func (f *Filter) QueryPre(pk uint64) (est uint64, saturated bool) {
	m := f.minRead(pk)
	f.queryHashCalls.Add(uint64(f.depth))
	return m, m >= f.cap
}

// min computes the flat counter positions of the prehashed key (cached in
// f.pos for the caller's write phase) and returns the minimum mapped
// counter. Callers account the Rows() hash calls to their operation kind.
// Insert-path only: it writes the shared pos scratch.
func (f *Filter) min(pk uint64) uint64 {
	m := uint64(0)
	base := 0
	for r := 0; r < f.depth; r++ {
		p := base + f.hashes.BucketPre(r, pk, f.width)
		f.pos[r] = p
		c := uint64(f.data[p])
		if r == 0 || c < m {
			m = c
		}
		base += f.width
	}
	return m
}

// minRead is min without the pos caching, so concurrent queries share no
// state.
func (f *Filter) minRead(pk uint64) uint64 {
	m := uint64(0)
	base := 0
	for r := 0; r < f.depth; r++ {
		c := uint64(f.data[base+f.hashes.BucketPre(r, pk, f.width)])
		if r == 0 || c < m {
			m = c
		}
		base += f.width
	}
	return m
}

// Merge folds a same-geometry filter into the receiver by element-wise
// saturating addition (at the counter word's limit, NOT at cap): for every
// row, a_i + b_i ≥ absorbed_A(e) + absorbed_B(e), so the minimum mapped
// counter remains an upper bound on the union stream's absorbed value, and
// a minimum below cap still proves neither part overflowed. Counters may
// exceed cap afterwards — Query treats ≥ cap as saturated and Insert stops
// absorbing there.
func (f *Filter) Merge(o *Filter) bool {
	if o == nil || f.depth != o.depth || f.width != o.width || f.bits != o.bits {
		return false
	}
	for i, c := range o.data {
		sum := uint64(f.data[i]) + uint64(c)
		if sum > 0xffffffff {
			sum = 0xffffffff
		}
		f.data[i] = uint32(sum)
	}
	f.insertHashCalls += o.insertHashCalls
	f.queryHashCalls.Add(o.queryHashCalls.Load())
	return true
}

// MemoryBytes reports the bit-packed footprint: rows × width × bits / 8.
func (f *Filter) MemoryBytes() int {
	return (f.depth*f.width*f.bits + 7) / 8
}

// Rows returns the number of counter arrays (hash calls per operation).
func (f *Filter) Rows() int { return f.depth }

// HashCalls returns the cumulative number of hash evaluations across both
// operation kinds, used by the Figure 16 experiment.
func (f *Filter) HashCalls() uint64 { return f.insertHashCalls + f.queryHashCalls.Load() }

// HashCallsByOp splits the cumulative hash evaluations by operation kind,
// so callers embedding the filter can attribute them exactly instead of
// prorating.
func (f *Filter) HashCallsByOp() (insert, query uint64) {
	return f.insertHashCalls, f.queryHashCalls.Load()
}

// Reset zeroes all counters.
func (f *Filter) Reset() {
	clear(f.data)
	f.insertHashCalls = 0
	f.queryHashCalls.Store(0)
}
