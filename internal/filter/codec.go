package filter

import (
	"encoding/binary"
	"fmt"
	"io"
)

// EncodeTo serializes the filter geometry and counters. Counters are
// bit-packed at their configured width (a 2-bit filter serializes at 4
// counters per byte), so a snapshot costs exactly the filter's accounted
// memory. The hash family is not serialized: it derives deterministically
// from the owning sketch's seed, which the owner persists.
func (f *Filter) EncodeTo(w io.Writer) error {
	var buf [binary.MaxVarintLen64]byte
	write := func(vs ...uint64) error {
		for _, v := range vs {
			n := binary.PutUvarint(buf[:], v)
			if _, err := w.Write(buf[:n]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write(uint64(len(f.rows)), uint64(f.width), uint64(f.bits),
		f.insertHashCalls, f.queryHashCalls.Load()); err != nil {
		return err
	}
	packed := make([]byte, (f.width*f.bits+7)/8)
	for r := range f.rows {
		clear(packed)
		for i, c := range f.rows[r] {
			if uint64(c) > f.cap {
				// Merged filters can hold counters above the hardware
				// saturation cap; the bit-packed snapshot format cannot
				// represent them, and truncating would un-saturate keys.
				return fmt.Errorf("filter: counter %d/%d exceeds the %d-bit snapshot width (merged filter state is not snapshottable)",
					r, i, f.bits)
			}
			packBits(packed, i*f.bits, f.bits, uint64(c))
		}
		if _, err := w.Write(packed); err != nil {
			return err
		}
	}
	return nil
}

// DecodeFrom replaces the filter's geometry and counters with a serialized
// snapshot, keeping its hash family (seed-derived, so identical for the
// same owning sketch seed).
func (f *Filter) DecodeFrom(r interface {
	io.Reader
	io.ByteReader
}) error {
	read := func() (uint64, error) { return binary.ReadUvarint(r) }
	rows, err := read()
	if err != nil {
		return fmt.Errorf("filter: rows: %w", err)
	}
	width, err := read()
	if err != nil {
		return fmt.Errorf("filter: width: %w", err)
	}
	bits, err := read()
	if err != nil {
		return fmt.Errorf("filter: bits: %w", err)
	}
	insCalls, err := read()
	if err != nil {
		return fmt.Errorf("filter: insertHashCalls: %w", err)
	}
	qryCalls, err := read()
	if err != nil {
		return fmt.Errorf("filter: queryHashCalls: %w", err)
	}
	if rows == 0 || rows > 16 || width == 0 || width > 1<<31 || bits == 0 || bits > 32 {
		return fmt.Errorf("filter: implausible snapshot geometry %d×%d×%d", rows, width, bits)
	}
	if int(rows) != len(f.rows) {
		return fmt.Errorf("filter: snapshot has %d rows, sketch built with %d", rows, len(f.rows))
	}
	f.width = int(width)
	f.bits = int(bits)
	f.cap = 1<<bits - 1
	f.insertHashCalls = insCalls
	f.queryHashCalls.Store(qryCalls)
	packed := make([]byte, (int(width)*int(bits)+7)/8)
	for ri := range f.rows {
		if _, err := io.ReadFull(r, packed); err != nil {
			return fmt.Errorf("filter: row %d counters: %w", ri, err)
		}
		f.rows[ri] = make([]uint32, width)
		for i := range f.rows[ri] {
			f.rows[ri][i] = uint32(unpackBits(packed, i*f.bits, f.bits))
		}
	}
	return nil
}

// packBits writes the low `bits` bits of v at bit offset off.
func packBits(dst []byte, off, bits int, v uint64) {
	for b := 0; b < bits; b++ {
		if v&(1<<b) != 0 {
			dst[(off+b)/8] |= 1 << uint((off+b)%8)
		}
	}
}

// unpackBits reads `bits` bits at bit offset off.
func unpackBits(src []byte, off, bits int) uint64 {
	var v uint64
	for b := 0; b < bits; b++ {
		if src[(off+b)/8]&(1<<uint((off+b)%8)) != 0 {
			v |= 1 << b
		}
	}
	return v
}
