package filter

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot counter encodings. Packed is the normal case: counters are
// bit-packed at their configured width, so a snapshot costs exactly the
// filter's accounted memory. Merged filters may hold counters above the
// hardware saturation cap (filter.Merge saturates at the counter word, not
// at cap), which the packed format cannot represent; those rows serialize
// as varints instead, trading size for the ability to checkpoint merged
// global views.
const (
	formatPacked = 0
	formatVarint = 1
)

// EncodeTo serializes the filter geometry and counters. The hash family is
// not serialized: it derives deterministically from the owning sketch's
// seed, which the owner persists.
func (f *Filter) EncodeTo(w io.Writer) error {
	var buf [binary.MaxVarintLen64]byte
	write := func(vs ...uint64) error {
		for _, v := range vs {
			n := binary.PutUvarint(buf[:], v)
			if _, err := w.Write(buf[:n]); err != nil {
				return err
			}
		}
		return nil
	}
	format := uint64(formatPacked)
	for _, c := range f.data {
		if uint64(c) > f.cap {
			format = formatVarint
			break
		}
	}
	if err := write(uint64(f.depth), uint64(f.width), uint64(f.bits), format,
		f.insertHashCalls, f.queryHashCalls.Load()); err != nil {
		return err
	}
	if format == formatVarint {
		// Row-major flat iteration: byte-identical to the historical
		// per-row walk.
		for _, c := range f.data {
			if err := write(uint64(c)); err != nil {
				return err
			}
		}
		return nil
	}
	packed := make([]byte, (f.width*f.bits+7)/8)
	for r := 0; r < f.depth; r++ {
		clear(packed)
		row := f.data[r*f.width : (r+1)*f.width]
		for i, c := range row {
			packBits(packed, i*f.bits, f.bits, uint64(c))
		}
		if _, err := w.Write(packed); err != nil {
			return err
		}
	}
	return nil
}

// DecodeFrom replaces the filter's geometry and counters with a serialized
// snapshot, keeping its hash family (seed-derived, so identical for the
// same owning sketch seed).
func (f *Filter) DecodeFrom(r interface {
	io.Reader
	io.ByteReader
}) error {
	read := func() (uint64, error) { return binary.ReadUvarint(r) }
	rows, err := read()
	if err != nil {
		return fmt.Errorf("filter: rows: %w", err)
	}
	width, err := read()
	if err != nil {
		return fmt.Errorf("filter: width: %w", err)
	}
	bits, err := read()
	if err != nil {
		return fmt.Errorf("filter: bits: %w", err)
	}
	format, err := read()
	if err != nil {
		return fmt.Errorf("filter: counter format: %w", err)
	}
	insCalls, err := read()
	if err != nil {
		return fmt.Errorf("filter: insertHashCalls: %w", err)
	}
	qryCalls, err := read()
	if err != nil {
		return fmt.Errorf("filter: queryHashCalls: %w", err)
	}
	if rows == 0 || rows > 16 || width == 0 || width > 1<<31 || bits == 0 || bits > 32 {
		return fmt.Errorf("filter: implausible snapshot geometry %d×%d×%d", rows, width, bits)
	}
	if format != formatPacked && format != formatVarint {
		return fmt.Errorf("filter: unknown counter format %d", format)
	}
	if int(rows) != f.depth {
		return fmt.Errorf("filter: snapshot has %d rows, sketch built with %d", rows, f.depth)
	}
	// Decode into a fresh flat slice and swap only on full success, so a
	// truncated or corrupt snapshot leaves the receiver untouched. Width and
	// bits may differ from the receiver's (only the row count must match),
	// so the slice is sized from the snapshot geometry.
	data := make([]uint32, int(rows)*int(width))
	if format == formatVarint {
		for i := range data {
			c, err := read()
			if err != nil {
				return fmt.Errorf("filter: row %d counter %d: %w", i/int(width), i%int(width), err)
			}
			if c > 0xffffffff {
				return fmt.Errorf("filter: counter %d/%d overflows 32 bits", i/int(width), i%int(width))
			}
			data[i] = uint32(c)
		}
	} else {
		packed := make([]byte, (int(width)*int(bits)+7)/8)
		for ri := 0; ri < int(rows); ri++ {
			if _, err := io.ReadFull(r, packed); err != nil {
				return fmt.Errorf("filter: row %d counters: %w", ri, err)
			}
			row := data[ri*int(width) : (ri+1)*int(width)]
			for i := range row {
				row[i] = uint32(unpackBits(packed, i*int(bits), int(bits)))
			}
		}
	}
	f.data = data
	f.width = int(width)
	f.bits = int(bits)
	f.cap = 1<<bits - 1
	f.insertHashCalls = insCalls
	f.queryHashCalls.Store(qryCalls)
	return nil
}

// packBits writes the low `bits` bits of v at bit offset off.
func packBits(dst []byte, off, bits int, v uint64) {
	for b := 0; b < bits; b++ {
		if v&(1<<b) != 0 {
			dst[(off+b)/8] |= 1 << uint((off+b)%8)
		}
	}
}

// unpackBits reads `bits` bits at bit offset off.
func unpackBits(src []byte, off, bits int) uint64 {
	var v uint64
	for b := 0; b < bits; b++ {
		if src[(off+b)/8]&(1<<uint((off+b)%8)) != 0 {
			v |= 1 << b
		}
	}
	return v
}
