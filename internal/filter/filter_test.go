package filter

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAbsorbBelowCap(t *testing.T) {
	f := New(2, 1024, 8, 1) // cap 255
	if over := f.Insert(1, 100); over != 0 {
		t.Fatalf("overflow %d below cap", over)
	}
	est, saturated := f.Query(1)
	if est != 100 || saturated {
		t.Fatalf("Query = (%d,%v), want (100,false)", est, saturated)
	}
}

func TestOverflowAtCap(t *testing.T) {
	f := New(2, 1024, 8, 1) // cap 255
	if over := f.Insert(1, 300); over != 45 {
		t.Fatalf("overflow = %d, want 300−255 = 45", over)
	}
	est, saturated := f.Query(1)
	if est != 255 || !saturated {
		t.Fatalf("Query = (%d,%v), want (255,true)", est, saturated)
	}
	// Further inserts pass through entirely.
	if over := f.Insert(1, 10); over != 10 {
		t.Fatalf("post-saturation overflow = %d, want 10", over)
	}
}

func TestTwoBitCounters(t *testing.T) {
	f := New(2, 64, 2, 2) // cap 3, the paper's default geometry
	if f.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", f.Cap())
	}
	var absorbed uint64
	for i := 0; i < 5; i++ {
		absorbed += 1 - f.Insert(7, 1)
	}
	if absorbed != 3 {
		t.Errorf("absorbed %d, want cap 3", absorbed)
	}
}

// TestUpperBoundInvariant: the min mapped counter is always ≥ the amount the
// filter absorbed for the key, and saturation is reported iff any overflow
// could have occurred.
func TestUpperBoundInvariant(t *testing.T) {
	err := quick.Check(func(seed uint64, ops []uint8) bool {
		f := New(2, 16, 4, seed) // cap 15, tiny width to force collisions
		absorbed := map[uint64]uint64{}
		overflowed := map[uint64]bool{}
		for _, o := range ops {
			k := uint64(o % 40)
			v := uint64(o%6) + 1
			over := f.Insert(k, v)
			absorbed[k] += v - over
			if over > 0 {
				overflowed[k] = true
			}
		}
		for k, a := range absorbed {
			est, saturated := f.Query(k)
			if est < a {
				return false // underestimate: CU property broken
			}
			if overflowed[k] && !saturated {
				return false // overflow must leave the key saturated
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMergeUpperBoundInvariant splits an op sequence across two filters,
// merges them, and checks the union-stream upper bound: every key's merged
// estimate covers the total absorbed value, a key unsaturated after merge
// never overflowed in either part, and Insert after merge keeps absorbing
// correctly (no underflow on counters above cap).
func TestMergeUpperBoundInvariant(t *testing.T) {
	err := quick.Check(func(seed uint64, ops []uint8) bool {
		a := New(2, 16, 4, seed)
		b := New(2, 16, 4, seed)
		absorbed := map[uint64]uint64{}
		overflowed := map[uint64]bool{}
		for i, o := range ops {
			k := uint64(o % 40)
			v := uint64(o%6) + 1
			dst := a
			if i%2 == 1 {
				dst = b
			}
			over := dst.Insert(k, v)
			absorbed[k] += v - over
			if over > 0 {
				overflowed[k] = true
			}
		}
		if !a.Merge(b) {
			return false
		}
		for k, abs := range absorbed {
			est, saturated := a.Query(k)
			if est < abs {
				return false // merged estimate under the union's absorbed value
			}
			if overflowed[k] && !saturated {
				return false // an overflowed key must stay saturated after merge
			}
		}
		// Post-merge insertion must not panic or underflow even where merged
		// counters exceed the cap.
		for k := uint64(0); k < 40; k++ {
			a.Insert(k, 3)
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeRejectsGeometryMismatch(t *testing.T) {
	f := New(2, 16, 4, 1)
	if f.Merge(New(2, 8, 4, 1)) {
		t.Error("merged a different width")
	}
	if f.Merge(New(3, 16, 4, 1)) {
		t.Error("merged a different row count")
	}
	if f.Merge(New(2, 16, 2, 1)) {
		t.Error("merged a different counter width")
	}
	if f.Merge(nil) {
		t.Error("merged nil")
	}
}

func TestConservativeVsPlainUpdate(t *testing.T) {
	// The CU property: with two rows, colliding traffic in one row must not
	// inflate a key whose other-row counter is clean.
	f := New(2, 2, 8, 3)
	// Key A alone.
	f.Insert(0xA, 5)
	est, _ := f.Query(0xA)
	if est != 5 {
		t.Fatalf("est=%d want 5", est)
	}
}

func TestMemoryAccounting(t *testing.T) {
	f := NewBytes(1024, 2, 2, 1)
	if f.MemoryBytes() > 1024 {
		t.Errorf("memory %d over budget", f.MemoryBytes())
	}
	// 1024 bytes at 2 rows × 2 bits = 2048 counters per row.
	if f.width != 2048 {
		t.Errorf("width=%d want 2048", f.width)
	}
	if f.Rows() != 2 {
		t.Errorf("Rows=%d", f.Rows())
	}
}

func TestHashCallsAndReset(t *testing.T) {
	f := New(2, 64, 8, 1)
	f.Insert(1, 1) // 2 calls: the write phase reuses the read phase's indexes
	f.Query(1)     // 2 calls
	if f.HashCalls() != 4 {
		t.Errorf("HashCalls=%d want 4 (2 per touched operation)", f.HashCalls())
	}
	ins, qry := f.HashCallsByOp()
	if ins != 2 || qry != 2 {
		t.Errorf("HashCallsByOp=(%d,%d) want (2,2)", ins, qry)
	}
	f.Reset()
	if f.HashCalls() != 0 {
		t.Error("Reset did not clear hash calls")
	}
	if est, _ := f.Query(1); est != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 10, 2, 1) },
		func() { New(2, 0, 2, 1) },
		func() { New(2, 10, 0, 1) },
		func() { New(2, 10, 33, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSaturationMonotone(t *testing.T) {
	// Once saturated, a key stays saturated.
	r := rand.New(rand.NewPCG(9, 9))
	f := New(2, 8, 3, 4)
	saturatedAt := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		k := uint64(r.IntN(30))
		f.Insert(k, uint64(r.IntN(3))+1)
		_, sat := f.Query(k)
		if saturatedAt[k] && !sat {
			t.Fatal("saturation regressed")
		}
		if sat {
			saturatedAt[k] = true
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	f := NewBytes(1<<18, 2, 2, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(uint64(i&0xffff), 1)
	}
}
