package filter

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	f := New(2, 333, 2, 9)
	for k := uint64(0); k < 500; k++ {
		f.Insert(k, k%5)
	}
	var buf bytes.Buffer
	if err := f.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	g := New(2, 1, 2, 9) // geometry replaced on decode; same seed
	if err := g.DecodeFrom(bufio.NewReader(&buf)); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 500; k++ {
		e1, s1 := f.Query(k)
		e2, s2 := g.Query(k)
		if e1 != e2 || s1 != s2 {
			t.Fatalf("key %d: (%d,%v) became (%d,%v)", k, e1, s1, e2, s2)
		}
	}
	if f.HashCalls() == 0 || g.HashCalls() < f.HashCalls() {
		t.Error("hash call counter not preserved")
	}
}

func TestCodecPackedSize(t *testing.T) {
	f := New(2, 4096, 2, 1)
	var buf bytes.Buffer
	if err := f.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	// 2 rows × 4096 × 2 bits = 2048 bytes + small header.
	if buf.Len() > 2048+32 {
		t.Errorf("packed snapshot %d bytes, want ≈2048", buf.Len())
	}
}

func TestCodecRejectsRowMismatch(t *testing.T) {
	f := New(3, 64, 2, 1)
	var buf bytes.Buffer
	if err := f.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	g := New(2, 64, 2, 1)
	if err := g.DecodeFrom(bufio.NewReader(&buf)); err == nil {
		t.Error("decode accepted row-count mismatch")
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	f := New(2, 64, 4, 1)
	f.Insert(1, 3)
	var buf bytes.Buffer
	if err := f.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	g := New(2, 64, 4, 1)
	half := bufio.NewReader(strings.NewReader(string(buf.Bytes()[:buf.Len()/2])))
	if err := g.DecodeFrom(half); err == nil {
		t.Error("decode accepted truncated snapshot")
	}
}

func TestPackUnpackBits(t *testing.T) {
	buf := make([]byte, 8)
	vals := []uint64{3, 0, 2, 1, 3, 3, 0, 1}
	for i, v := range vals {
		packBits(buf, i*2, 2, v)
	}
	for i, v := range vals {
		if got := unpackBits(buf, i*2, 2); got != v {
			t.Fatalf("slot %d: got %d want %d", i, got, v)
		}
	}
	// Wider fields across byte boundaries.
	buf2 := make([]byte, 16)
	for i := 0; i < 9; i++ {
		packBits(buf2, i*13, 13, uint64(i*531)%8192)
	}
	for i := 0; i < 9; i++ {
		if got := unpackBits(buf2, i*13, 13); got != uint64(i*531)%8192 {
			t.Fatalf("13-bit slot %d: got %d", i, got)
		}
	}
}
