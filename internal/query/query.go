// Package query defines the one typed query contract every serving surface
// of this repository answers: a Request names what is being asked (point
// estimates, sliding-window sums, heavy-hitter top-k) for a whole batch of
// keys at once, and an Answer carries per-key certified intervals under a
// single generation snapshot.
//
// The same Request/Answer pair flows end to end — sketch batch queries
// (sketch.BatchQuerier), epoch.Ring.Execute, netsum.Collector.Execute, the
// netsum wire protocol's exec frames, and queryd's /v2/query HTTP endpoint
// — so batching amortizations (one lock per shard per batch, one merged-view
// fold, one cache probe per key) compose instead of being reinvented per
// layer, mirroring what InsertBatch did for ingestion.
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/sketch"
)

// Kind selects what a Request asks for.
type Kind uint8

const (
	// Point asks for each key's value sum over the backend's whole visible
	// history (all time, or the retained sliding window in epoch mode).
	Point Kind = iota + 1
	// Window asks for each key's value sum over the last Request.Window
	// sealed epochs.
	Window
	// TopK asks for the K heaviest tracked keys, heaviest first.
	TopK
)

// kindNames maps kinds to their wire/JSON spellings.
var kindNames = map[Kind]string{Point: "point", Window: "window", TopK: "topk"}

// String renders the kind's JSON spelling ("point", "window", "topk").
func (k Kind) String() string {
	if name, ok := kindNames[k]; ok {
		return name
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its string spelling.
func (k Kind) MarshalJSON() ([]byte, error) {
	name, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("query: cannot encode %s", k)
	}
	return json.Marshal(name)
}

// UnmarshalJSON accepts the string spellings (and the numeric values, for
// terse clients).
func (k *Kind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		var n uint8
		if err := json.Unmarshal(data, &n); err != nil {
			return fmt.Errorf("query: kind must be a string or number: %s", data)
		}
		*k = Kind(n)
		return nil
	}
	for kind, kn := range kindNames {
		if kn == name {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("query: unknown kind %q (want point, window, or topk)", name)
}

// Limits every surface enforces, so a giant batch is refused identically at
// the HTTP edge, on the wire, and in-process.
const (
	// MaxBatchKeys bounds Request.Keys. Large enough for bulk dashboard
	// refreshes, small enough that one batch fits a single wire frame and
	// never pins a shard lock for unbounded work.
	MaxBatchKeys = 4096
	// MaxTopK bounds Request.K: each returned key costs a point query for
	// its certified bounds.
	MaxTopK = 1024
	// MaxWindow bounds Request.Window (requests beyond the retained history
	// are clamped by the ring; this only rejects nonsense).
	MaxWindow = 1 << 20
)

// Validation errors, named so callers (CLI flag checks, HTTP handlers, the
// wire protocol) can classify refusals without string matching.
var (
	ErrBadKind     = errors.New("query: kind must be point, window, or topk")
	ErrNoKeys      = errors.New("query: point and window requests need at least one key")
	ErrTooManyKeys = fmt.Errorf("query: too many keys in one batch (max %d)", MaxBatchKeys)
	ErrBadWindow   = fmt.Errorf("query: window must be in [1, %d] epochs", MaxWindow)
	ErrBadK        = fmt.Errorf("query: k must be in [1, %d]", MaxTopK)
	ErrAgentScope  = errors.New("query: agent scoping applies to window requests only")
)

// ErrUnavailable marks a transient refusal: the backend cannot answer right
// now (merged cluster view unavailable, replica still warming) but another
// replica might. HTTP surfaces map it to 503 so routers know to retry
// elsewhere, as opposed to hard 500 failures that no retry will fix.
var ErrUnavailable = errors.New("query: backend temporarily unavailable")

// Request is one typed query: what is asked (Kind), for which keys, over
// which sealed-epoch span, optionally scoped to one measurement agent.
// The zero value is invalid; every Execute implementation validates first.
type Request struct {
	Kind Kind `json:"kind"`
	// Keys are the queried keys (Point and Window). Answer.PerKey is
	// aligned with this slice: PerKey[i] answers Keys[i], duplicates
	// included.
	Keys []uint64 `json:"keys,omitempty"`
	// Window is the sliding-window span in sealed epochs (Window kind).
	Window int `json:"window,omitempty"`
	// K is how many heavy hitters to return (TopK kind).
	K int `json:"k,omitempty"`
	// Agent scopes a window request to one measurement agent's ring on
	// backends that track agents; 0 means global.
	Agent uint64 `json:"agent,omitempty"`
}

// Validate checks the request against the shared limits, returning one of
// the named errors (possibly wrapped with detail) on refusal.
func (r Request) Validate() error {
	switch r.Kind {
	case Point, Window:
		if len(r.Keys) == 0 {
			return ErrNoKeys
		}
		if len(r.Keys) > MaxBatchKeys {
			return fmt.Errorf("%w: got %d", ErrTooManyKeys, len(r.Keys))
		}
		if r.Kind == Window && (r.Window < 1 || r.Window > MaxWindow) {
			return fmt.Errorf("%w: got %d", ErrBadWindow, r.Window)
		}
		if r.Kind == Point && r.Agent != 0 {
			return ErrAgentScope
		}
	case TopK:
		if r.K < 1 || r.K > MaxTopK {
			return fmt.Errorf("%w: got %d", ErrBadK, r.K)
		}
		// Window optionally bounds the top-k span on epochal backends;
		// 0 means the full retained history.
		if r.Window < 0 || r.Window > MaxWindow {
			return fmt.Errorf("%w: got %d", ErrBadWindow, r.Window)
		}
		if r.Agent != 0 {
			return ErrAgentScope
		}
	default:
		return fmt.Errorf("%w: got %d", ErrBadKind, r.Kind)
	}
	return nil
}

// Estimate is one key's answer: the certified interval [Lower, Upper] with
// Est the reported estimate (Est == Upper for the never-underestimating
// sketches this repository serves; uncertified answers carry Lower == Upper
// == Est with Answer.Certified false).
type Estimate struct {
	Key   uint64 `json:"key"`
	Est   uint64 `json:"est"`
	Lower uint64 `json:"lower"`
	Upper uint64 `json:"upper"`
}

// Answer is the whole batch's result, computed under one state snapshot: no
// key in PerKey saw a different sealed set or agent state than another.
type Answer struct {
	// PerKey is aligned with Request.Keys for Point and Window requests;
	// for TopK it lists the heavy hitters, heaviest first.
	PerKey []Estimate `json:"per_key"`
	// Coverage is the sealed-epoch span the answer actually covers: for
	// window requests, the number of sealed windows answered (which may be
	// less than requested when history is shorter); 0 for cumulative
	// all-time answers.
	Coverage int `json:"coverage"`
	// Generation is the sealed-set generation the answer derives from; it
	// advances exactly when a window seals and stays 0 for cumulative
	// backends. Sealed-only answers are immutable per generation — the
	// contract result caches key on.
	Generation uint64 `json:"generation"`
	// Source names the surface that computed the answer ("sketch", "ring",
	// "collector", ...), for observability across the serving stack.
	Source string `json:"source"`
	// Certified reports whether every interval in PerKey is a certified
	// bound (truth ∈ [Lower, Upper]).
	Certified bool `json:"certified"`
	// KeyCoverage is the fraction of requested keys answered
	// authoritatively, in [0, 1]. Single-node surfaces leave it 0 (unset:
	// every answer is authoritative by construction); cluster surfaces set
	// it to 1 when every key was answered by its owning replica and to a
	// smaller fraction when replicas were down or answers came from lagged
	// non-owner fallbacks. KeyCoverage < 1 always implies Certified ==
	// false: a degraded answer is reported honestly, never silently
	// narrowed.
	KeyCoverage float64 `json:"key_coverage,omitempty"`
}

// Executor is the one contract every query surface implements: the sketch
// backends, the epoch ring, and the netsum collector (locally and over the
// wire) all answer a Request with an Answer.
type Executor interface {
	Execute(Request) (Answer, error)
}

// EstimatesFrom shapes raw batch-query output (aligned est/mpe slices, as
// produced by sketch.QueryBatch) into per-key Estimates. mpe may be nil for
// uncertified answers, in which case Lower == Upper == Est.
func EstimatesFrom(keys []uint64, est, mpe []uint64) []Estimate {
	out := make([]Estimate, len(keys))
	for i, k := range keys {
		out[i] = Estimate{Key: k, Est: est[i], Lower: est[i], Upper: est[i]}
		if mpe != nil {
			out[i].Lower = sketch.CertifiedLowerBound(est[i], mpe[i])
		}
	}
	return out
}

// TopKOf sorts tracked keys heaviest-first, tie-breaking on key for
// deterministic listings, and keeps the top k.
func TopKOf(kvs []sketch.KV, k int) []sketch.KV {
	out := make([]sketch.KV, len(kvs))
	copy(out, kvs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Est != out[j].Est {
			return out[i].Est > out[j].Est
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
