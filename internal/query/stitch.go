package query

import "repro/internal/sketch"

// Stitcher reassembles one Answer from the per-replica sub-answers of a
// scatter-gather query. The scatter side partitions Request.Keys by owning
// replica and remembers, for each sub-batch, the original key positions; Add
// writes each sub-answer's estimates back into those positions and folds the
// batch-level fields honestly:
//
//   - Coverage and Generation take the minimum across sub-answers — the
//     stitched answer only claims the history span and sealed set every
//     contributor actually covers.
//   - Certified is the AND across sub-answers, and turns false outright if
//     any key went unanswered or was answered by a non-owner fallback.
//   - KeyCoverage is the fraction of keys answered by their owning replica,
//     so a down replica shows up as KeyCoverage < 1 rather than as missing
//     rows or a silently narrower interval.
//
// A Stitcher is not safe for concurrent use; callers serialize Add (the
// cluster router holds one mutex across its fan-in).
type Stitcher struct {
	req       Request
	perKey    []Estimate
	answered  []bool
	owned     int  // keys answered by their owning replica
	fallback  int  // keys answered by a non-owner fallback
	subs      int  // sub-answers folded in
	certified bool // AND over sub-answers
	coverage  int
	gen       uint64
}

// NewStitcher prepares a stitcher for req (Point or Window kinds; TopK
// answers are merged with MergeTopK instead, since their rows are not
// positional).
func NewStitcher(req Request) *Stitcher {
	return &Stitcher{
		req:       req,
		perKey:    make([]Estimate, len(req.Keys)),
		answered:  make([]bool, len(req.Keys)),
		certified: true,
	}
}

// Add folds one sub-answer in. idx maps the sub-answer's rows to positions
// in the original Request.Keys: ans.PerKey[j] answers Keys[idx[j]]. owned
// reports whether the answering replica owns these keys on the ring; a
// fallback answer (owned == false) may lag replication, so it contributes
// estimates but never certification. Sub-answers with mismatched row counts
// are ignored — their keys stay unanswered and honesty accounting reflects
// that.
func (s *Stitcher) Add(idx []int, ans Answer, owned bool) {
	if len(ans.PerKey) != len(idx) {
		return
	}
	for j, i := range idx {
		if i < 0 || i >= len(s.perKey) || s.answered[i] {
			continue
		}
		s.perKey[i] = ans.PerKey[j]
		s.answered[i] = true
		if owned {
			s.owned++
		} else {
			s.fallback++
		}
	}
	if s.subs == 0 {
		s.coverage = ans.Coverage
		s.gen = ans.Generation
	} else {
		if ans.Coverage < s.coverage {
			s.coverage = ans.Coverage
		}
		if ans.Generation < s.gen {
			s.gen = ans.Generation
		}
	}
	s.subs++
	if !ans.Certified || !owned {
		s.certified = false
	}
}

// Finish assembles the stitched Answer. Unanswered keys carry an
// uncertified zero-width interval at 0 — present so PerKey stays aligned
// with Request.Keys, and honest because the whole answer is uncertified
// whenever any key is missing.
func (s *Stitcher) Finish() Answer {
	total := len(s.req.Keys)
	ans := Answer{
		PerKey:     s.perKey,
		Coverage:   s.coverage,
		Generation: s.gen,
		Certified:  s.certified && s.owned == total,
	}
	for i, ok := range s.answered {
		if !ok {
			ans.PerKey[i] = Estimate{Key: s.req.Keys[i]}
		}
	}
	if total > 0 {
		ans.KeyCoverage = float64(s.owned) / float64(total)
	}
	return ans
}

// MergeTopK merges per-replica TopK answers into one: rows are deduplicated
// by key keeping the largest estimate (each replica reports its merged view,
// so the max is the best available bound), re-ranked with TopKOf, and the
// batch fields folded with the same honesty rules as Stitcher. want is the
// number of replicas asked; fewer answers than asked means a replica was
// down, which uncertifies the merged listing and shows up in KeyCoverage.
func MergeTopK(answers []Answer, k, want int) Answer {
	best := make(map[uint64]Estimate)
	out := Answer{Certified: len(answers) > 0}
	for n, a := range answers {
		if n == 0 {
			out.Coverage = a.Coverage
			out.Generation = a.Generation
		} else {
			if a.Coverage < out.Coverage {
				out.Coverage = a.Coverage
			}
			if a.Generation < out.Generation {
				out.Generation = a.Generation
			}
		}
		if !a.Certified {
			out.Certified = false
		}
		for _, e := range a.PerKey {
			if have, ok := best[e.Key]; !ok || e.Est > have.Est {
				best[e.Key] = e
			}
		}
	}
	kvs := make([]sketch.KV, 0, len(best))
	for _, e := range best {
		kvs = append(kvs, sketch.KV{Key: e.Key, Est: e.Est})
	}
	for _, kv := range TopKOf(kvs, k) {
		out.PerKey = append(out.PerKey, best[kv.Key])
	}
	if want > 0 {
		out.KeyCoverage = float64(len(answers)) / float64(want)
	}
	if len(answers) < want {
		out.Certified = false
	}
	return out
}
