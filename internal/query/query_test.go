package query_test

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/sketch"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  query.Request
		want error
	}{
		{"point ok", query.Request{Kind: query.Point, Keys: []uint64{1}}, nil},
		{"window ok", query.Request{Kind: query.Window, Keys: []uint64{1, 2}, Window: 8}, nil},
		{"topk ok", query.Request{Kind: query.TopK, K: 10}, nil},
		{"topk windowed ok", query.Request{Kind: query.TopK, K: 10, Window: 4}, nil},
		{"agent window ok", query.Request{Kind: query.Window, Keys: []uint64{1}, Window: 1, Agent: 7}, nil},
		{"zero kind", query.Request{Keys: []uint64{1}}, query.ErrBadKind},
		{"junk kind", query.Request{Kind: query.Kind(99), Keys: []uint64{1}}, query.ErrBadKind},
		{"point no keys", query.Request{Kind: query.Point}, query.ErrNoKeys},
		{"window no keys", query.Request{Kind: query.Window, Window: 3}, query.ErrNoKeys},
		{"too many keys", query.Request{Kind: query.Point, Keys: make([]uint64, query.MaxBatchKeys+1)}, query.ErrTooManyKeys},
		{"max keys ok", query.Request{Kind: query.Point, Keys: make([]uint64, query.MaxBatchKeys)}, nil},
		{"window zero span", query.Request{Kind: query.Window, Keys: []uint64{1}}, query.ErrBadWindow},
		{"window huge span", query.Request{Kind: query.Window, Keys: []uint64{1}, Window: query.MaxWindow + 1}, query.ErrBadWindow},
		{"topk zero k", query.Request{Kind: query.TopK}, query.ErrBadK},
		{"topk huge k", query.Request{Kind: query.TopK, K: query.MaxTopK + 1}, query.ErrBadK},
		{"topk bad window", query.Request{Kind: query.TopK, K: 5, Window: -1}, query.ErrBadWindow},
		{"point agent scoped", query.Request{Kind: query.Point, Keys: []uint64{1}, Agent: 3}, query.ErrAgentScope},
		{"topk agent scoped", query.Request{Kind: query.TopK, K: 5, Agent: 3}, query.ErrAgentScope},
	}
	for _, c := range cases {
		err := c.req.Validate()
		if c.want == nil && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if c.want != nil && !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for _, k := range []query.Kind{query.Point, query.Window, query.TopK} {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		var back query.Kind
		if err := json.Unmarshal(data, &back); err != nil || back != k {
			t.Errorf("%v round-trips to %v (err %v) via %s", k, back, err, data)
		}
	}
	var k query.Kind
	if err := json.Unmarshal([]byte(`"window"`), &k); err != nil || k != query.Window {
		t.Errorf(`"window" decodes to %v (err %v)`, k, err)
	}
	if err := json.Unmarshal([]byte(`1`), &k); err != nil || k != query.Point {
		t.Errorf("numeric 1 decodes to %v (err %v)", k, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &k); err == nil {
		t.Error("bogus kind accepted")
	}
	if _, err := json.Marshal(query.Kind(42)); err == nil {
		t.Error("unknown kind marshaled")
	}
}

func TestRequestJSONShape(t *testing.T) {
	// The documented /v2/query request shape must decode into the typed
	// request verbatim.
	raw := `{"kind":"window","keys":[3,1,3],"window":4,"agent":9}`
	var req query.Request
	if err := json.Unmarshal([]byte(raw), &req); err != nil {
		t.Fatal(err)
	}
	if req.Kind != query.Window || len(req.Keys) != 3 || req.Keys[2] != 3 ||
		req.Window != 4 || req.Agent != 9 {
		t.Errorf("decoded %+v from %s", req, raw)
	}
}

func TestEstimatesFrom(t *testing.T) {
	keys := []uint64{10, 11}
	est := []uint64{100, 5}
	mpe := []uint64{30, 9} // second interval clamps at 0
	got := query.EstimatesFrom(keys, est, mpe)
	want := []query.Estimate{
		{Key: 10, Est: 100, Lower: 70, Upper: 100},
		{Key: 11, Est: 5, Lower: 0, Upper: 5},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("EstimatesFrom[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	uncertified := query.EstimatesFrom(keys, est, nil)
	if uncertified[0].Lower != 100 || uncertified[0].Upper != 100 {
		t.Errorf("uncertified estimate = %+v, want degenerate interval", uncertified[0])
	}
}

func TestTopKOf(t *testing.T) {
	kvs := []sketch.KV{{Key: 3, Est: 5}, {Key: 1, Est: 9}, {Key: 2, Est: 5}, {Key: 4, Est: 1}}
	got := query.TopKOf(kvs, 3)
	if len(got) != 3 || got[0].Key != 1 || got[1].Key != 2 || got[2].Key != 3 {
		t.Errorf("TopKOf = %+v, want keys 1,2,3 (heaviest first, key tie-break)", got)
	}
	if kvs[0].Key != 3 {
		t.Error("TopKOf mutated its input")
	}
	if all := query.TopKOf(kvs, 0); len(all) != len(kvs) {
		t.Errorf("k=0 returned %d entries, want all %d", len(all), len(kvs))
	}
}

// TestRequestsAreValueSafe: requests and answers are plain values — two
// goroutines validating and marshaling the same request must never race
// (run under -race in CI explicitly for this package).
func TestRequestsAreValueSafe(t *testing.T) {
	req := query.Request{Kind: query.Window, Keys: []uint64{1, 2, 3}, Window: 4}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := req.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
			if _, err := json.Marshal(req); err != nil {
				t.Errorf("Marshal: %v", err)
			}
		}()
	}
	wg.Wait()
}
