package query

import "testing"

func stReq(keys ...uint64) Request {
	return Request{Kind: Point, Keys: keys}
}

func TestStitcherFullCoverage(t *testing.T) {
	req := stReq(10, 20, 30, 40)
	st := NewStitcher(req)
	st.Add([]int{1, 3}, Answer{
		PerKey:     []Estimate{{Key: 20, Est: 2, Lower: 1, Upper: 2}, {Key: 40, Est: 4, Lower: 4, Upper: 4}},
		Coverage:   5,
		Generation: 9,
		Certified:  true,
	}, true)
	st.Add([]int{0, 2}, Answer{
		PerKey:     []Estimate{{Key: 10, Est: 1, Lower: 1, Upper: 1}, {Key: 30, Est: 3, Lower: 3, Upper: 3}},
		Coverage:   7,
		Generation: 12,
		Certified:  true,
	}, true)
	ans := st.Finish()
	if !ans.Certified {
		t.Fatalf("fully owned certified sub-answers must stitch certified: %+v", ans)
	}
	if ans.KeyCoverage != 1 {
		t.Fatalf("KeyCoverage = %v, want 1", ans.KeyCoverage)
	}
	if ans.Coverage != 5 || ans.Generation != 9 {
		t.Fatalf("want min coverage 5 and min generation 9, got %d/%d", ans.Coverage, ans.Generation)
	}
	want := []uint64{1, 2, 3, 4}
	for i, e := range ans.PerKey {
		if e.Key != req.Keys[i] || e.Est != want[i] {
			t.Fatalf("PerKey[%d] = %+v, want key %d est %d", i, e, req.Keys[i], want[i])
		}
	}
}

func TestStitcherUnansweredKeysUncertify(t *testing.T) {
	req := stReq(10, 20, 30)
	st := NewStitcher(req)
	st.Add([]int{0, 2}, Answer{
		PerKey:    []Estimate{{Key: 10, Est: 1}, {Key: 30, Est: 3}},
		Certified: true,
	}, true)
	ans := st.Finish()
	if ans.Certified {
		t.Fatal("answer with unanswered keys must not certify")
	}
	if got, want := ans.KeyCoverage, 2.0/3.0; got != want {
		t.Fatalf("KeyCoverage = %v, want %v", got, want)
	}
	if ans.PerKey[1].Key != 20 || ans.PerKey[1].Est != 0 {
		t.Fatalf("unanswered key must keep an aligned zero row, got %+v", ans.PerKey[1])
	}
}

func TestStitcherFallbackUncertifies(t *testing.T) {
	req := stReq(10, 20)
	st := NewStitcher(req)
	st.Add([]int{0}, Answer{PerKey: []Estimate{{Key: 10, Est: 1}}, Certified: true}, true)
	st.Add([]int{1}, Answer{PerKey: []Estimate{{Key: 20, Est: 7}}, Certified: true}, false)
	ans := st.Finish()
	if ans.Certified {
		t.Fatal("fallback-answered keys must not certify")
	}
	if got, want := ans.KeyCoverage, 0.5; got != want {
		t.Fatalf("KeyCoverage = %v, want %v (fallbacks are not authoritative)", got, want)
	}
	if ans.PerKey[1].Est != 7 {
		t.Fatalf("fallback estimate must still be reported, got %+v", ans.PerKey[1])
	}
}

func TestStitcherRejectsMisalignedSubAnswer(t *testing.T) {
	req := stReq(10, 20)
	st := NewStitcher(req)
	st.Add([]int{0, 1}, Answer{PerKey: []Estimate{{Key: 10, Est: 1}}, Certified: true}, true)
	ans := st.Finish()
	if ans.Certified || ans.KeyCoverage != 0 {
		t.Fatalf("misaligned sub-answer must count as unanswered: %+v", ans)
	}
}

func TestMergeTopK(t *testing.T) {
	a := Answer{
		PerKey:     []Estimate{{Key: 1, Est: 100, Upper: 100}, {Key: 2, Est: 50, Upper: 50}},
		Coverage:   3,
		Generation: 8,
		Certified:  true,
	}
	b := Answer{
		PerKey:     []Estimate{{Key: 2, Est: 60, Upper: 60}, {Key: 3, Est: 10, Upper: 10}},
		Coverage:   2,
		Generation: 6,
		Certified:  true,
	}
	ans := MergeTopK([]Answer{a, b}, 2, 2)
	if !ans.Certified || ans.KeyCoverage != 1 {
		t.Fatalf("all replicas certified and answered, got %+v", ans)
	}
	if ans.Coverage != 2 || ans.Generation != 6 {
		t.Fatalf("want min coverage/generation 2/6, got %d/%d", ans.Coverage, ans.Generation)
	}
	if len(ans.PerKey) != 2 || ans.PerKey[0].Key != 1 || ans.PerKey[1].Key != 2 || ans.PerKey[1].Est != 60 {
		t.Fatalf("want keys [1 2] with key 2 at max est 60, got %+v", ans.PerKey)
	}
}

func TestMergeTopKMissingReplica(t *testing.T) {
	a := Answer{PerKey: []Estimate{{Key: 1, Est: 5}}, Certified: true}
	ans := MergeTopK([]Answer{a}, 4, 3)
	if ans.Certified {
		t.Fatal("a missing replica must uncertify the merged top-k")
	}
	if got, want := ans.KeyCoverage, 1.0/3.0; got != want {
		t.Fatalf("KeyCoverage = %v, want %v", got, want)
	}
}

func TestMergeTopKEmpty(t *testing.T) {
	ans := MergeTopK(nil, 4, 3)
	if ans.Certified || len(ans.PerKey) != 0 || ans.KeyCoverage != 0 {
		t.Fatalf("no sub-answers must yield an empty uncertified answer: %+v", ans)
	}
}
