// Package univmon implements UnivMon (Liu et al., SIGCOMM 2016), the
// universal-sketching member of the paper's counter-based L2 taxonomy
// (Table 1). UnivMon stacks log(n) Count-sketch levels; level i sees only
// keys whose i leading sampling bits are zero, halving the substream each
// level. Heavy hitters found per level let one recursively estimate any
// G-sum; for the stream-summary point queries evaluated here, the level-0
// Count sketch answers directly and deeper levels refine low-frequency
// keys that survived sampling.
//
// Included for taxonomy completeness: like CM/Count, its per-key confidence
// collapses when all keys are queried collectively, which is the failure
// mode ReliableSketch addresses.
package univmon

import (
	"repro/internal/countsketch"
	"repro/internal/hash"
)

// defaultLevels balances refinement against per-level memory.
const defaultLevels = 8

// Sketch is a UnivMon universal sketch.
type Sketch struct {
	levels []*countsketch.Sketch
	seed   uint64
	name   string
}

// New builds a UnivMon with the given number of levels, each a d×width
// Count sketch.
func New(levels, d, width int, seed uint64) *Sketch {
	if levels < 1 || d < 1 || width < 1 {
		panic("univmon: invalid geometry")
	}
	s := &Sketch{
		levels: make([]*countsketch.Sketch, levels),
		seed:   seed,
		name:   "UnivMon",
	}
	for i := range s.levels {
		s.levels[i] = countsketch.New(d, width, hash.U64(seed, uint64(i)+0x12))
	}
	return s
}

// NewBytes sizes a UnivMon to memBytes with the default level count and 3
// rows per level.
func NewBytes(memBytes int, seed uint64) *Sketch {
	perLevel := memBytes / defaultLevels
	width := perLevel / (3 * countsketch.CounterBytes)
	if width < 1 {
		width = 1
	}
	return New(defaultLevels, 3, width, seed)
}

// level returns how many levels key participates in: level i requires the
// first i sampling bits to be one (level 0 sees everything).
func (s *Sketch) level(key uint64) int {
	h := hash.U64(key, s.seed^0x07e1)
	max := len(s.levels) - 1
	l := 0
	for l < max && h&1 == 1 {
		l++
		h >>= 1
	}
	return l
}

// Insert adds value to key in level 0 through its sampled depth.
func (s *Sketch) Insert(key, value uint64) {
	depth := s.level(key)
	for i := 0; i <= depth; i++ {
		s.levels[i].Insert(key, value)
	}
}

// Query answers a point query from the deepest level the key participates
// in: the substream there is a 2^−depth sample, so the key's own mass
// dominates the level's L2 noise most.
func (s *Sketch) Query(key uint64) uint64 {
	return s.levels[s.level(key)].Query(key)
}

// MemoryBytes sums the level sketches.
func (s *Sketch) MemoryBytes() int {
	total := 0
	for _, l := range s.levels {
		total += l.MemoryBytes()
	}
	return total
}

// Name identifies the algorithm.
func (s *Sketch) Name() string { return s.name }

// Reset clears all levels.
func (s *Sketch) Reset() {
	for _, l := range s.levels {
		l.Reset()
	}
}
