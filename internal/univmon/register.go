package univmon

import "repro/internal/sketch"

func init() {
	sketch.Register("UnivMon",
		sketch.CapResettable,
		func(sp sketch.Spec) sketch.Sketch {
			return NewBytes(sp.MemoryBytes, sp.Seed)
		})
}
