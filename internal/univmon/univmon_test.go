package univmon

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

var _ sketch.Sketch = (*Sketch)(nil)

func TestSingleKeyExact(t *testing.T) {
	s := New(4, 3, 1<<12, 1)
	for i := 0; i < 100; i++ {
		s.Insert(7, 3)
	}
	if got := s.Query(7); got != 300 {
		t.Errorf("Query(7)=%d want 300", got)
	}
}

func TestLevelAssignmentStable(t *testing.T) {
	s := New(8, 3, 64, 2)
	for k := uint64(0); k < 100; k++ {
		if s.level(k) != s.level(k) {
			t.Fatal("level not deterministic")
		}
		if l := s.level(k); l < 0 || l >= 8 {
			t.Fatalf("level %d out of range", l)
		}
	}
}

func TestLevelsHalve(t *testing.T) {
	s := New(8, 3, 64, 3)
	counts := make([]int, 8)
	const n = 100_000
	for k := uint64(0); k < n; k++ {
		counts[s.level(k)]++
	}
	// Level occupancy follows the geometric sampling law: level i holds
	// ≈ n/2^(i+1) keys (with the last level absorbing the tail).
	for i := 0; i < 5; i++ {
		want := n >> uint(i+1)
		if counts[i] < want*8/10 || counts[i] > want*12/10 {
			t.Errorf("level %d holds %d keys, want ≈%d", i, counts[i], want)
		}
	}
}

func TestHeavyKeysAccurate(t *testing.T) {
	st := stream.Zipf(200_000, 20_000, 1.3, 4)
	sk := NewBytes(512<<10, 4)
	for _, it := range st.Items {
		sk.Insert(it.Key, it.Value)
	}
	bad := 0
	heavies := 0
	for k, f := range st.Truth() {
		if f < 2000 {
			continue
		}
		heavies++
		est := sk.Query(k)
		d := int64(est) - int64(f)
		if d < 0 {
			d = -d
		}
		if float64(d) > 0.2*float64(f) {
			bad++
		}
	}
	if heavies == 0 {
		t.Fatal("no heavy keys")
	}
	if bad > heavies/10 {
		t.Errorf("%d/%d heavy keys off by >20%%", bad, heavies)
	}
}

func TestCollectiveQueriesHaveOutliers(t *testing.T) {
	// The taxonomy claim: as an L2 counter-based sketch, UnivMon cannot
	// keep ALL keys within Λ at tight memory — the motivation for
	// ReliableSketch.
	st := stream.IPTrace(200_000, 5)
	sk := NewBytes(64<<10, 5)
	for _, it := range st.Items {
		sk.Insert(it.Key, it.Value)
	}
	outliers := 0
	for k, f := range st.Truth() {
		est := sk.Query(k)
		d := int64(est) - int64(f)
		if d < 0 {
			d = -d
		}
		if d > 25 {
			outliers++
		}
	}
	if outliers == 0 {
		t.Error("expected collective-query outliers at tight memory (Table 1 taxonomy)")
	}
}

func TestMemoryAndReset(t *testing.T) {
	sk := NewBytes(1<<16, 1)
	if sk.MemoryBytes() > 1<<16 {
		t.Errorf("memory %d over budget", sk.MemoryBytes())
	}
	sk.Insert(1, 9)
	sk.Reset()
	if sk.Query(1) != 0 {
		t.Error("Reset did not clear")
	}
	if sk.Name() != "UnivMon" {
		t.Errorf("Name=%q", sk.Name())
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 3, 64, 1)
}

func BenchmarkInsert(b *testing.B) {
	sk := NewBytes(1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Insert(uint64(i&0xffff), 1)
	}
}
