package hash

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference vectors for MurmurHash3 x86_32 from the smhasher reference
// implementation.
func TestMurmur32Vectors(t *testing.T) {
	cases := []struct {
		data string
		seed uint32
		want uint32
	}{
		{"", 0, 0},
		{"", 1, 0x514e28b7},
		{"", 0xffffffff, 0x81f16f39},
		{"a", 0, 0x3c2569b2},
		{"hello", 0, 0x248bfa47},
		{"hello, world", 0, 0x149bbb7f},
		{"The quick brown fox jumps over the lazy dog", 0x9747b28c, 0x2fa826cd},
	}
	for _, c := range cases {
		got := Murmur32([]byte(c.data), c.seed)
		if got != c.want {
			t.Errorf("Murmur32(%q, %#x) = %#x, want %#x", c.data, c.seed, got, c.want)
		}
	}
}

func TestMurmur32TailLengths(t *testing.T) {
	// Exercise every tail length 0..7 and verify determinism plus seed
	// sensitivity.
	data := []byte("abcdefgh")
	for n := 0; n <= len(data); n++ {
		a := Murmur32(data[:n], 42)
		b := Murmur32(data[:n], 42)
		if a != b {
			t.Fatalf("non-deterministic hash for length %d", n)
		}
		c := Murmur32(data[:n], 43)
		if n > 0 && a == c {
			t.Errorf("length %d: seeds 42 and 43 collide (%#x)", n, a)
		}
	}
}

func TestU64Determinism(t *testing.T) {
	if U64(12345, 6789) != U64(12345, 6789) {
		t.Fatal("U64 is not deterministic")
	}
	if U64(12345, 6789) == U64(12345, 6790) {
		t.Fatal("U64 ignores seed")
	}
	if U64(12345, 6789) == U64(12346, 6789) {
		t.Fatal("U64 ignores key")
	}
}

func TestBucketRange(t *testing.T) {
	err := quick.Check(func(key, seed uint64, w uint16) bool {
		width := int(w%1000) + 1
		b := Bucket(key, seed, width)
		return b >= 0 && b < width
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBucketUniformity(t *testing.T) {
	const width = 64
	const n = 64 * 10000
	counts := make([]int, width)
	for k := uint64(0); k < n; k++ {
		counts[Bucket(k, 7, width)]++
	}
	mean := float64(n) / width
	// Chi-squared test with a generous bound: for 63 dof, 120 is ~p<1e-5.
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - mean
		chi2 += d * d / mean
	}
	if chi2 > 150 {
		t.Errorf("bucket distribution too skewed: chi2=%.1f", chi2)
	}
}

func TestSignBalance(t *testing.T) {
	const n = 100000
	var sum int64
	for k := uint64(0); k < n; k++ {
		s := Sign(k, 99)
		if s != 1 && s != -1 {
			t.Fatalf("Sign returned %d", s)
		}
		sum += s
	}
	if math.Abs(float64(sum)) > 4*math.Sqrt(n) {
		t.Errorf("sign bias too large: sum=%d over %d keys", sum, n)
	}
}

func TestFamilyIndependence(t *testing.T) {
	f := NewFamily(1, 8)
	if f.Len() != 8 {
		t.Fatalf("Len = %d, want 8", f.Len())
	}
	// Distinct seeds.
	seen := map[uint64]bool{}
	for i := 0; i < f.Len(); i++ {
		s := f.Seed(i)
		if seen[s] {
			t.Fatalf("duplicate seed %#x at index %d", s, i)
		}
		seen[s] = true
	}
	// Pairwise collision rate between two family members should be near
	// 1/width for random keys.
	const width = 1024
	const n = 100000
	coll := 0
	for k := uint64(0); k < n; k++ {
		if f.Bucket(0, k, width) == f.Bucket(1, k, width) {
			coll++
		}
	}
	expected := float64(n) / width
	if float64(coll) > 2*expected || float64(coll) < expected/2 {
		t.Errorf("cross-family collisions = %d, expected ≈ %.0f", coll, expected)
	}
}

func TestFamilyReproducible(t *testing.T) {
	a := NewFamily(99, 4)
	b := NewFamily(99, 4)
	for i := 0; i < 4; i++ {
		if a.Seed(i) != b.Seed(i) {
			t.Fatalf("family not reproducible at index %d", i)
		}
	}
}

func TestU32Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := U32(0xdeadbeef, 1)
	totalFlips := 0
	for bit := 0; bit < 64; bit++ {
		h := U32(0xdeadbeef^(1<<bit), 1)
		d := base ^ h
		for d != 0 {
			totalFlips += int(d & 1)
			d >>= 1
		}
	}
	avg := float64(totalFlips) / 64
	if avg < 10 || avg > 22 {
		t.Errorf("avalanche average flips per bit = %.2f, want ≈16", avg)
	}
}

// TestBucketsMatchPerRow pins the multi-row fast path to the per-row
// reference: Buckets, BucketPre, and Signs must be bit-exact with Bucket
// and Sign for every row, seed, and width — the equivalence the flattened
// sketch layouts rely on for snapshot compatibility.
func TestBucketsMatchPerRow(t *testing.T) {
	err := quick.Check(func(base, key uint64, dRaw uint8, wRaw uint16) bool {
		d := int(dRaw%16) + 1
		width := int(wRaw%4096) + 1
		f := NewFamily(base, d)
		idx := make([]int, d)
		f.Buckets(idx, key, width)
		signs := make([]int64, d)
		f.Signs(signs, key)
		pk := PreKey(key)
		for i := 0; i < d; i++ {
			if idx[i] != f.Bucket(i, key, width) {
				return false
			}
			if f.BucketPre(i, pk, width) != f.Bucket(i, key, width) {
				return false
			}
			if BucketPre(pk, f.Seed(i), width) != Bucket(key, f.Seed(i), width) {
				return false
			}
			if signs[i] != f.Sign(i, key) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestBucketsAllocFree asserts the multi-row paths allocate nothing — the
// contract the 0-allocs/op sketch hot paths are built on.
func TestBucketsAllocFree(t *testing.T) {
	f := NewFamily(3, 8)
	idx := make([]int, 8)
	signs := make([]int64, 8)
	allocs := testing.AllocsPerRun(100, func() {
		f.Buckets(idx, 12345, 1024)
		f.Signs(signs, 12345)
	})
	if allocs != 0 {
		t.Errorf("Buckets+Signs allocate %.1f objects per run, want 0", allocs)
	}
}

func BenchmarkFamilyBucketPerRow(b *testing.B) {
	b.ReportAllocs()
	f := NewFamily(3, 8)
	var sink int
	for i := 0; i < b.N; i++ {
		for r := 0; r < 8; r++ {
			sink ^= f.Bucket(r, uint64(i), 4096)
		}
	}
	_ = sink
}

func BenchmarkFamilyBuckets(b *testing.B) {
	b.ReportAllocs()
	f := NewFamily(3, 8)
	var idx [8]int
	var sink int
	for i := 0; i < b.N; i++ {
		f.Buckets(idx[:], uint64(i), 4096)
		sink ^= idx[7]
	}
	_ = sink
}

func BenchmarkU64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= U64(uint64(i), 12345)
	}
	_ = sink
}

func BenchmarkMurmur32_16B(b *testing.B) {
	data := []byte("0123456789abcdef")
	b.SetBytes(int64(len(data)))
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink ^= Murmur32(data, uint32(i))
	}
	_ = sink
}
