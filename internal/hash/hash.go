// Package hash provides the seeded hash functions used by every sketch in
// this repository. The paper's reference implementation uses 32-bit
// MurmurHash3; we provide a faithful MurmurHash3 x86_32 over byte slices plus
// fast fixed-width variants for uint64 keys, which is what the sketches use
// on their hot paths.
//
// All functions are deterministic for a given seed, so experiments are
// reproducible, and different seeds yield independent-enough functions for
// the per-layer hashing that ReliableSketch and its competitors require.
package hash

import "encoding/binary"

const (
	c1 uint32 = 0xcc9e2d51
	c2 uint32 = 0x1b873593
)

// Murmur32 computes MurmurHash3 x86_32 of data with the given seed.
// It matches the reference implementation in smhasher.
func Murmur32(data []byte, seed uint32) uint32 {
	h := seed
	n := len(data)
	// Body: 4-byte blocks.
	for len(data) >= 4 {
		k := binary.LittleEndian.Uint32(data)
		data = data[4:]
		k *= c1
		k = (k << 15) | (k >> 17)
		k *= c2
		h ^= k
		h = (h << 13) | (h >> 19)
		h = h*5 + 0xe6546b64
	}
	// Tail.
	var k uint32
	switch len(data) {
	case 3:
		k ^= uint32(data[2]) << 16
		fallthrough
	case 2:
		k ^= uint32(data[1]) << 8
		fallthrough
	case 1:
		k ^= uint32(data[0])
		k *= c1
		k = (k << 15) | (k >> 17)
		k *= c2
		h ^= k
	}
	// Finalization.
	h ^= uint32(n)
	return fmix32(h)
}

func fmix32(h uint32) uint32 {
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// fmix64 is the MurmurHash3 x64 finalizer, a high-quality 64-bit mixer.
func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// U64 hashes a uint64 key with a uint64 seed. This is the hot-path hash used
// by all sketches: it feeds the key and seed through the Murmur3 64-bit
// finalizer twice, which passes avalanche tests and is far cheaper than
// hashing the key's byte encoding.
func U64(key, seed uint64) uint64 {
	return fmix64(PreKey(key) ^ (seed * 0xbf58476d1ce4e5b9))
}

// PreKey is the seed-independent half of U64: every per-row hash of the
// same key shares this mix, so a d-row sketch touch can pay it once and
// derive each row with BucketPre. U64(key, seed) ==
// fmix64(PreKey(key) ^ seed*0xbf58476d1ce4e5b9) for all seeds, bit-exact.
func PreKey(key uint64) uint64 {
	return fmix64(key + 0x9e3779b97f4a7c15)
}

// BucketPre is Bucket with the key half prehashed: BucketPre(PreKey(key),
// seed, width) == Bucket(key, seed, width). The amortization primitive of
// the multi-row paths below and of the layer walks whose widths differ per
// row (the core sketch), where a dst-slice API does not fit.
func BucketPre(pk, seed uint64, width int) int {
	h := fmix64(pk ^ (seed * 0xbf58476d1ce4e5b9))
	return int((h >> 32) * uint64(width) >> 32)
}

// U32 hashes a uint64 key to 32 bits with a 32-bit seed, mirroring the
// paper's use of 32-bit Murmur hashing.
func U32(key uint64, seed uint32) uint32 {
	h := U64(key, uint64(seed))
	return uint32(h ^ (h >> 32))
}

// Bucket maps key to a bucket index in [0, width) using the 64-bit hash for
// seed. width must be > 0.
func Bucket(key, seed uint64, width int) int {
	// Multiply-shift range reduction avoids the modulo bias and is faster
	// than %, matching what high-speed sketch implementations do.
	h := U64(key, seed)
	return int((h >> 32) * uint64(width) >> 32)
}

// Sign returns +1 or -1 derived from an independent bit of the hash, used by
// Count sketch's sign functions.
func Sign(key, seed uint64) int64 {
	if U64(key, seed^0xa5a5a5a5a5a5a5a5)&1 == 0 {
		return 1
	}
	return -1
}

// Family is a set of d independent seeded hash functions, one per sketch
// row/layer. It exists so sketches can be built from a single base seed and
// remain reproducible.
type Family struct {
	seeds []uint64
}

// NewFamily derives d independent seeds from base.
func NewFamily(base uint64, d int) *Family {
	seeds := make([]uint64, d)
	s := base
	for i := range seeds {
		s = fmix64(s + 0x9e3779b97f4a7c15)
		seeds[i] = s
	}
	return &Family{seeds: seeds}
}

// Len returns the number of functions in the family.
func (f *Family) Len() int { return len(f.seeds) }

// Equal reports whether two families hash identically (same derived seeds),
// the compatibility requirement for positional sketch merging.
func (f *Family) Equal(o *Family) bool {
	if o == nil || len(f.seeds) != len(o.seeds) {
		return false
	}
	for i, s := range f.seeds {
		if s != o.seeds[i] {
			return false
		}
	}
	return true
}

// Seed returns the i-th derived seed.
func (f *Family) Seed(i int) uint64 { return f.seeds[i] }

// Bucket maps key to [0, width) using the i-th function.
func (f *Family) Bucket(i int, key uint64, width int) int {
	return Bucket(key, f.seeds[i], width)
}

// BucketPre maps a prehashed key (PreKey) to [0, width) using the i-th
// function. Equal to Bucket(i, key, width) for pk == PreKey(key).
func (f *Family) BucketPre(i int, pk uint64, width int) int {
	return BucketPre(pk, f.seeds[i], width)
}

// Buckets computes key's bucket index in every row of the family in one
// pass: dst[i] == Bucket(i, key, width) for all i, bit-exact. The key-side
// mix is computed once and shared across rows, so a d-row touch costs d+1
// finalizer rounds instead of 2d, and the per-row method-call overhead of
// d separate Bucket calls disappears. dst must be at least Len() long.
func (f *Family) Buckets(dst []int, key uint64, width int) {
	f.BucketsPre(dst, PreKey(key), width)
}

// BucketsPre is Buckets with the key half prehashed, for callers that
// share one PreKey across several families (the core sketch shares it
// between the mice filter and the bucket layers): dst[i] ==
// Bucket(i, key, width) for pk == PreKey(key), bit-exact.
func (f *Family) BucketsPre(dst []int, pk uint64, width int) {
	seeds := f.seeds
	_ = dst[len(seeds)-1]
	w := uint64(width)
	for i, seed := range seeds {
		h := fmix64(pk ^ (seed * 0xbf58476d1ce4e5b9))
		dst[i] = int((h >> 32) * w >> 32)
	}
}

// Sign returns the i-th sign function applied to key.
func (f *Family) Sign(i int, key uint64) int64 {
	return Sign(key, f.seeds[i])
}

// Signs computes every row's ±1 sign of key in one pass, sharing the
// key-side mix like Buckets: dst[i] == Sign(i, key) for all i, bit-exact.
// dst must be at least Len() long.
func (f *Family) Signs(dst []int64, key uint64) {
	seeds := f.seeds
	_ = dst[len(seeds)-1]
	pk := PreKey(key)
	for i, seed := range seeds {
		if fmix64(pk^((seed^0xa5a5a5a5a5a5a5a5)*0xbf58476d1ce4e5b9))&1 == 0 {
			dst[i] = 1
		} else {
			dst[i] = -1
		}
	}
}
