package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/queryd"
	"repro/internal/sketch"
	"repro/internal/telemetry"
)

// Replication capability errors, named for rsserve's startup refusals.
var (
	ErrNotMergeable    = errors.New("cluster: delta replication needs a Mergeable+Snapshottable variant")
	ErrEpochalReplica  = errors.New("cluster: delta replication is cumulative-mode only (epoch windows age out instead of replicating)")
	ErrViewUnavailable = fmt.Errorf("%w: merged cluster view unavailable", query.ErrUnavailable)
)

// Replica wraps a standalone queryd.SketchBackend with the cluster's
// merged-view serving contract:
//
//   - Ingest and /v2/delta stay LOCAL — the backend's own sketch holds only
//     writes this node accepted, so peers pulling its delta never see their
//     own contribution reflected back (which Merge would double-count).
//   - Queries answer from a merged view: the local snapshot restored into a
//     fresh same-Spec sketch, then every stored peer delta folded in with
//     sketch.Merge. The view rebuilds lazily when the local write version
//     or any peer delta changed, so a read-heavy replica pays one rebuild
//     per replication pull, not per query.
//   - Answers for keys this replica owns on the ring are certified (its
//     local state is authoritative for them, and peer deltas only add);
//     answers covering non-owned keys are honest but uncertified — the
//     merged view may lag the owner by up to one replication interval.
type Replica struct {
	local *queryd.SketchBackend
	algo  string
	spec  sketch.Spec
	entry sketch.Entry
	logf  func(format string, args ...any)

	ring  *Ring
	self  int
	peers []string // peer URLs excluding self

	// pmu guards the latest restored delta per peer. Each pull REPLACES the
	// peer's sketch (deltas are cumulative snapshots of the peer's local
	// state), so folding the newest copy never double-counts.
	pmu       sync.Mutex
	peerSk    map[string]sketch.Sketch
	peerVer   map[string]uint64
	peerEpoch uint64 // bumps on every stored delta; staleness signal

	// vmu guards the cached merged view. The published sketch is never
	// mutated after build — rebuilds swap in a fresh one — so queries read
	// it lock-free once fetched.
	vmu       sync.Mutex
	view      sketch.Sketch
	viewLocal uint64 // local DeltaVersion the view was built from
	viewPeers uint64 // peerEpoch the view was built from

	rep *Replicator

	pulls    telemetry.Counter
	pullErrs telemetry.Counter
	rebuilds telemetry.Counter
}

// NewReplica wraps local for cluster serving under membership m (validated
// with a required self index). The backend must be cumulative and its
// variant Mergeable+Snapshottable — the same preconditions as
// checkpointing, plus Merge for the fold.
func NewReplica(local *queryd.SketchBackend, algo string, spec sketch.Spec, m Membership, logf func(string, ...any)) (*Replica, error) {
	if err := m.Validate(true); err != nil {
		return nil, err
	}
	if len(m.Peers) < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrReplicaCount, len(m.Peers))
	}
	entry, ok := sketch.Lookup(algo)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown algorithm %q", algo)
	}
	if !entry.Caps.Has(sketch.CapMergeable | sketch.CapSnapshottable) {
		return nil, fmt.Errorf("%w: %q", ErrNotMergeable, algo)
	}
	if local.Epochal() {
		return nil, ErrEpochalReplica
	}
	if err := local.CanCheckpoint(); err != nil {
		return nil, fmt.Errorf("cluster: backend cannot serve deltas: %w", err)
	}
	ring, err := NewRing(m)
	if err != nil {
		return nil, err
	}
	r := &Replica{
		local:   local,
		algo:    algo,
		spec:    spec,
		entry:   entry,
		logf:    logf,
		ring:    ring,
		self:    m.Self,
		peerSk:  make(map[string]sketch.Sketch),
		peerVer: make(map[string]uint64),
	}
	for i, p := range m.Peers {
		if i != m.Self {
			r.peers = append(r.peers, p)
		}
	}
	return r, nil
}

// Peers lists the other replicas' base URLs.
func (r *Replica) Peers() []string { return r.peers }

// Algo names the replica's sketch variant.
func (r *Replica) Algo() string { return r.algo }

// Spec is the Spec every cluster member must share.
func (r *Replica) Spec() sketch.Spec { return r.spec }

// SetPeerDelta stores a freshly restored peer delta, replacing any earlier
// one, and invalidates the merged view.
func (r *Replica) SetPeerDelta(peer string, sk sketch.Sketch, ver uint64) {
	r.pmu.Lock()
	r.peerSk[peer] = sk
	r.peerVer[peer] = ver
	r.peerEpoch++
	r.pmu.Unlock()
}

// PeerVersion is the version of the last delta stored for peer (0 before
// the first pull) — the replicator's ?after= cursor.
func (r *Replica) PeerVersion(peer string) uint64 {
	r.pmu.Lock()
	defer r.pmu.Unlock()
	return r.peerVer[peer]
}

// mergedView returns the current merged sketch, rebuilding it if the local
// state or any peer delta moved since the last build. The returned sketch
// is immutable (rebuilds swap, never mutate), so callers query it without
// holding any replica lock.
func (r *Replica) mergedView() (sketch.Sketch, error) {
	// Capture the local version BEFORE the snapshot cut: the snapshot then
	// contains at least that version's writes, and anything accepted during
	// serialization bumps the counter past it, forcing the next rebuild.
	localVer := r.local.DeltaVersion()
	r.pmu.Lock()
	peerEpoch := r.peerEpoch
	r.pmu.Unlock()

	r.vmu.Lock()
	defer r.vmu.Unlock()
	if r.view != nil && r.viewLocal == localVer && r.viewPeers == peerEpoch {
		return r.view, nil
	}
	var buf bytes.Buffer
	if _, err := r.local.SnapshotDelta(&buf); err != nil {
		return nil, fmt.Errorf("%w (snapshotting local state: %v)", ErrViewUnavailable, err)
	}
	merged := r.entry.Build(r.spec)
	if err := merged.(sketch.Snapshotter).Restore(&buf); err != nil {
		return nil, fmt.Errorf("%w (restoring local state: %v)", ErrViewUnavailable, err)
	}
	r.pmu.Lock()
	peers := make([]sketch.Sketch, 0, len(r.peerSk))
	for _, sk := range r.peerSk {
		peers = append(peers, sk)
	}
	r.pmu.Unlock()
	for _, sk := range peers {
		if err := sketch.Merge(merged, sk); err != nil {
			return nil, fmt.Errorf("%w (folding peer delta: %v)", ErrViewUnavailable, err)
		}
	}
	r.rebuilds.Inc()
	r.view = merged
	r.viewLocal = localVer
	r.viewPeers = peerEpoch
	return merged, nil
}

// Execute answers from the merged view. Certification requires the variant
// to be error-bounded AND every answered key to be self-owned: certified
// bounds on non-owned keys could miss the owner's unreplicated tail.
func (r *Replica) Execute(req query.Request) (query.Answer, error) {
	if err := req.Validate(); err != nil {
		return query.Answer{}, err
	}
	if req.Agent != 0 {
		return query.Answer{}, errors.New("cluster: replicas have no agents to scope to")
	}
	sk, err := r.mergedView()
	if err != nil {
		return query.Answer{}, err
	}
	ans := query.Answer{Source: "replica"}
	_, bounded := sk.(sketch.ErrorBounded)
	if req.Kind == query.TopK {
		return r.executeTopK(req, sk, ans, bounded)
	}
	est := make([]uint64, len(req.Keys))
	var mpe []uint64
	if bounded {
		mpe = make([]uint64, len(req.Keys))
	}
	sketch.QueryBatch(sk, req.Keys, est, mpe)
	ans.PerKey = query.EstimatesFrom(req.Keys, est, mpe)
	ans.Certified = bounded && r.ownsAll(req.Keys)
	ans.KeyCoverage = 1
	return ans, nil
}

// executeTopK enumerates the merged view's tracked heavy hitters. The
// listing certifies only when every reported key is self-owned — foreign
// keys' recent traffic may still sit unreplicated on their owners.
func (r *Replica) executeTopK(req query.Request, sk sketch.Sketch, ans query.Answer, bounded bool) (query.Answer, error) {
	hh, ok := sk.(sketch.HeavyHitterReporter)
	if !ok {
		return query.Answer{}, fmt.Errorf("cluster: %q does not report tracked keys", r.algo)
	}
	kvs := query.TopKOf(hh.Tracked(), req.K)
	keys := make([]uint64, len(kvs))
	for i, kv := range kvs {
		keys[i] = kv.Key
	}
	est := make([]uint64, len(keys))
	var mpe []uint64
	if bounded {
		mpe = make([]uint64, len(keys))
	}
	sketch.QueryBatch(sk, keys, est, mpe)
	ans.PerKey = query.EstimatesFrom(keys, est, mpe)
	ans.Certified = bounded && r.ownsAll(keys)
	ans.KeyCoverage = 1
	return ans, nil
}

func (r *Replica) ownsAll(keys []uint64) bool {
	for _, k := range keys {
		if r.ring.Owner(k) != r.self {
			return false
		}
	}
	return true
}

// SetReplicator wires the pull loop in so POST /v2/replicate can trigger
// it deterministically.
func (r *Replica) SetReplicator(rep *Replicator) { r.rep = rep }

// ReplicateNow pulls every peer once (queryd.Replicating).
func (r *Replica) ReplicateNow() (int, error) {
	if r.rep == nil {
		return 0, errors.New("cluster: no replicator attached")
	}
	return r.rep.RunOnce()
}

// The rest of the Backend (and durability) surface delegates to the local
// backend: ingest, deltas, and checkpoints are local-state concerns.

func (r *Replica) Ingest(b ingest.Batch) ingest.Ack          { return r.local.Ingest(b) }
func (r *Replica) Generation() uint64                        { return r.local.Generation() }
func (r *Replica) Epochal() bool                             { return false }
func (r *Replica) DeltaVersion() uint64                      { return r.local.DeltaVersion() }
func (r *Replica) SnapshotDelta(w io.Writer) (uint64, error) { return r.local.SnapshotDelta(w) }
func (r *Replica) Checkpoint(w io.Writer) error              { return r.local.Checkpoint(w) }
func (r *Replica) CanCheckpoint() error                      { return r.local.CanCheckpoint() }
func (r *Replica) CutLSN() uint64                            { return r.local.CutLSN() }
func (r *Replica) CheckpointCommitted() error                { return r.local.CheckpointCommitted() }
func (r *Replica) Close() error                              { return r.local.Close() }

// Status is the local backend's, relabeled with the cluster role and peer
// count (Agents doubles as "cluster members", matching its "how many
// sources feed this" meaning on collectors).
func (r *Replica) Status() queryd.Status {
	st := r.local.Status()
	st.Mode = "replica"
	st.Agents = r.ring.Replicas()
	return st
}

// RegisterMetrics exposes the local backend's instruments plus the
// cluster_* replication family.
func (r *Replica) RegisterMetrics(reg *telemetry.Registry) {
	r.local.RegisterMetrics(reg)
	reg.RegisterCounter("cluster_replication_pulls_total",
		"Peer delta pulls that stored a new delta.", nil, &r.pulls)
	reg.RegisterCounter("cluster_replication_errors_total",
		"Peer delta pulls that failed.", nil, &r.pullErrs)
	reg.RegisterCounter("cluster_view_rebuilds_total",
		"Merged-view rebuilds (local writes or peer deltas moved).", nil, &r.rebuilds)
	reg.GaugeFunc("cluster_ring_replicas", "Replicas on the consistent-hash ring.",
		nil, func() float64 { return float64(r.ring.Replicas()) })
	reg.CollectFunc("cluster_peer_delta_version",
		"Version of the last delta pulled from each peer.", telemetry.TypeGauge,
		func(emit telemetry.Emit) {
			r.pmu.Lock()
			defer r.pmu.Unlock()
			for _, p := range r.peers {
				emit(telemetry.Labels{"peer": p}, float64(r.peerVer[p]))
			}
		})
}
