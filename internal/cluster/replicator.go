package cluster

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/queryd"
	"repro/internal/sketch"
)

// Replicator pulls sealed deltas from every peer: GET /v2/delta?after=V
// with the peer's last stored version, 304 means nothing new, anything else
// is decoded through queryd.ReadDeltaHeader, validated against this
// replica's algorithm and Spec (refusing mismatches with
// sketch.ErrSnapshotMismatch), restored into a fresh same-Spec sketch, and
// swapped into the replica's peer-delta map. Runs on a ticker (Start) or on
// demand (RunOnce, behind POST /v2/replicate).
type Replicator struct {
	r      *Replica
	client *http.Client
	every  time.Duration

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewReplicator builds a replicator for r and wires itself in as r's
// ReplicateNow implementation. every > 0 enables the periodic loop once
// Start is called; 0 means pull only on demand. client nil means a default
// with a 30s timeout (deltas can be tens of MB).
func NewReplicator(r *Replica, every time.Duration, client *http.Client) *Replicator {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	rp := &Replicator{r: r, client: client, every: every, stop: make(chan struct{})}
	r.SetReplicator(rp)
	return rp
}

// Start launches the periodic pull loop (no-op when the interval is 0).
func (rp *Replicator) Start() {
	if rp.every <= 0 {
		return
	}
	rp.wg.Add(1)
	go func() {
		defer rp.wg.Done()
		t := time.NewTicker(rp.every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if _, err := rp.RunOnce(); err != nil {
					if rp.r.logf != nil {
						rp.r.logf("cluster: replication pull: %v", err)
					}
				}
			case <-rp.stop:
				return
			}
		}
	}()
}

// Close stops the periodic loop.
func (rp *Replicator) Close() {
	rp.closeOnce.Do(func() { close(rp.stop) })
	rp.wg.Wait()
}

// RunOnce pulls every peer once, sequentially (replication is background
// work; spreading it out beats bursting N concurrent snapshot requests).
// It returns how many peers yielded a new delta; per-peer failures are
// counted, joined into the returned error, and do not stop the sweep.
func (rp *Replicator) RunOnce() (int, error) {
	pulled := 0
	var errs []error
	for _, peer := range rp.r.Peers() {
		updated, err := rp.pull(peer)
		if err != nil {
			rp.r.pullErrs.Inc()
			errs = append(errs, fmt.Errorf("%s: %w", peer, err))
			continue
		}
		if updated {
			rp.r.pulls.Inc()
			pulled++
		}
	}
	return pulled, errors.Join(errs...)
}

// pull fetches one peer's delta; updated reports whether a new delta was
// stored (false on 304).
func (rp *Replicator) pull(peer string) (updated bool, err error) {
	url := peer + "/v2/delta?after=" + strconv.FormatUint(rp.r.PeerVersion(peer), 10)
	resp, err := rp.client.Get(url)
	if err != nil {
		return false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return false, nil
	case http.StatusOK:
	default:
		return false, fmt.Errorf("delta pull: peer answered %s", resp.Status)
	}
	algo, spec, ver, payload, err := queryd.ReadDeltaHeader(resp.Body)
	if err != nil {
		return false, err
	}
	if algo != rp.r.Algo() {
		return false, fmt.Errorf("%w: peer runs %q, this replica %q", sketch.ErrSnapshotMismatch, algo, rp.r.Algo())
	}
	if spec != rp.r.Spec() {
		return false, fmt.Errorf("%w: peer spec %+v, this replica %+v", sketch.ErrSnapshotMismatch, spec, rp.r.Spec())
	}
	sk := rp.r.entry.Build(spec)
	if err := sk.(sketch.Snapshotter).Restore(payload); err != nil {
		return false, fmt.Errorf("restoring peer delta: %w", err)
	}
	rp.r.SetPeerDelta(peer, sk, ver)
	return true, nil
}
