package cluster

import (
	"errors"
	"testing"
)

func members(urls ...string) Membership {
	return Membership{Peers: urls, Self: -1}
}

func TestParsePeers(t *testing.T) {
	got := ParsePeers(" http://a:1/, http://b:2 ,,http://c:3")
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if len(got) != len(want) {
		t.Fatalf("ParsePeers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParsePeers[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMembershipValidation(t *testing.T) {
	if err := (&Membership{}).Validate(false); !errors.Is(err, ErrNoPeers) {
		t.Fatalf("empty membership: %v, want ErrNoPeers", err)
	}
	m := members("http://a:1", "http://a:1")
	if err := m.Validate(false); !errors.Is(err, ErrDupPeer) {
		t.Fatalf("duplicate peer: %v, want ErrDupPeer", err)
	}
	m = members("http://a:1", "http://b:2")
	if err := m.Validate(true); !errors.Is(err, ErrSelfRange) {
		t.Fatalf("self=-1 with requireSelf: %v, want ErrSelfRange", err)
	}
	m = members("http://a:1")
	m.VNodes = -3
	if err := m.Validate(false); !errors.Is(err, ErrBadVNodes) {
		t.Fatalf("negative vnodes: %v, want ErrBadVNodes", err)
	}
	m = members("http://a:1")
	if err := m.Validate(false); err != nil {
		t.Fatalf("valid membership refused: %v", err)
	}
	if m.VNodes != DefaultVNodes || m.Seed != DefaultRingSeed {
		t.Fatalf("defaults not applied: vnodes=%d seed=%#x", m.VNodes, m.Seed)
	}
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	m := members("http://a:1", "http://b:2", "http://c:3")
	r1, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(m)
	owned := make([]int, r1.Replicas())
	for key := uint64(0); key < 30_000; key++ {
		o := r1.Owner(key)
		if o2 := r2.Owner(key); o != o2 {
			t.Fatalf("key %d: ring not deterministic (%d vs %d)", key, o, o2)
		}
		owned[o]++
	}
	for i, n := range owned {
		// 64 vnodes balance a 3-node ring well within ±two-thirds of fair
		// share; a broken hash or search collapses whole replicas to ~0.
		if n < 10_000/3 || n > 20_000 {
			t.Fatalf("replica %d owns %d of 30000 keys: ring unbalanced %v", i, n, owned)
		}
	}
}

func TestRingMinimalMovementOnGrowth(t *testing.T) {
	three, _ := NewRing(members("http://a:1", "http://b:2", "http://c:3"))
	four, _ := NewRing(members("http://a:1", "http://b:2", "http://c:3", "http://d:4"))
	moved := 0
	const keys = 20_000
	for key := uint64(0); key < keys; key++ {
		if three.Owner(key) != four.Owner(key) {
			moved++
		}
	}
	// Consistent hashing moves ~1/4 of keys when growing 3→4; modulo
	// hashing would move ~3/4. Allow slack around the ideal.
	if moved > keys/2 {
		t.Fatalf("adding one replica moved %d of %d keys — not consistent hashing", moved, keys)
	}
	if moved == 0 {
		t.Fatal("adding a replica moved no keys — new node owns nothing")
	}
}

func TestPartitionGroupsAllKeysByOwner(t *testing.T) {
	r, _ := NewRing(members("http://a:1", "http://b:2", "http://c:3"))
	keys := make([]uint64, 999)
	for i := range keys {
		keys[i] = uint64(i * 7)
	}
	idx, counts := r.Partition(keys)
	if len(idx) != len(keys) || counts[len(counts)-1] != len(keys) {
		t.Fatalf("partition dropped keys: len(idx)=%d counts=%v", len(idx), counts)
	}
	seen := make([]bool, len(keys))
	for p := 0; p < r.Replicas(); p++ {
		for _, i := range idx[counts[p]:counts[p+1]] {
			if seen[i] {
				t.Fatalf("key position %d assigned twice", i)
			}
			seen[i] = true
			if got := r.Owner(keys[i]); got != p {
				t.Fatalf("key %d grouped under replica %d but owned by %d", keys[i], p, got)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("key position %d missing from partition", i)
		}
	}
}
