package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/queryd"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// RouterConfig names a router's cluster and transport.
type RouterConfig struct {
	// Membership's peer list is the ring; Self is ignored (a router is not
	// a member).
	Membership Membership
	// Algo labels Status; routers serve no sketch of their own.
	Algo string
	// Client overrides the fan-out HTTP client (tests); nil means a default
	// with Timeout (or 10s).
	Client  *http.Client
	Timeout time.Duration
	// NoFallback disables rerouting a down owner's sub-batch to the next
	// replicas on the ring. With fallback on, a transient owner failure
	// still answers every key — uncertified, from merged views that may lag
	// — instead of leaving rows at zero.
	NoFallback bool
	Logf       func(format string, args ...any)
}

// Router is the cluster's scatter-gather front: a queryd.Backend (and so a
// query.Executor) that owns no sketch. Execute partitions the batch by ring
// owner, fans sub-batches out over POST /v2/query concurrently, and
// stitches the sub-answers into one Answer whose Coverage, Certified, and
// KeyCoverage fields account for every failure honestly. Ingest partitions
// items the same way and routes them to their owners' /v2/ingest,
// preserving block/drop ack semantics end to end (a refused or unreachable
// owner's items are reported Dropped, never silently retried elsewhere —
// writing a key to a non-owner would strand it outside the owner's
// authoritative state).
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	peers  []string
	client *http.Client
	logf   func(format string, args ...any)

	queries  telemetry.Counter
	updates  telemetry.Counter
	fanout   *telemetry.Histogram
	reqs     []telemetry.Counter // per replica, index-aligned with peers
	errs     []telemetry.Counter
	fallback []telemetry.Counter
}

// NewRouter builds a router over the membership's peers.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg.Membership.Self = -1
	ring, err := NewRing(cfg.Membership)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 10 * time.Second
		}
		client = &http.Client{Timeout: timeout}
	}
	n := len(cfg.Membership.Peers)
	return &Router{
		cfg:      cfg,
		ring:     ring,
		peers:    cfg.Membership.Peers,
		client:   client,
		logf:     cfg.Logf,
		fanout:   telemetry.NewHistogram(telemetry.LatencyBuckets()),
		reqs:     make([]telemetry.Counter, n),
		errs:     make([]telemetry.Counter, n),
		fallback: make([]telemetry.Counter, n),
	}, nil
}

// subVerdict classifies one replica's response the way the error envelope's
// status codes distinguish them: ok, transient (retry another replica), or
// hard (no retry will help).
type subVerdict uint8

const (
	subOK subVerdict = iota
	subTransient
	subHard
)

// Execute scatter-gathers one typed batch. It never returns a transport
// error: replica failures degrade the Answer's KeyCoverage and certification
// instead, so callers always get the best available estimates plus an
// honest account of what backs them.
func (rt *Router) Execute(req query.Request) (query.Answer, error) {
	if err := req.Validate(); err != nil {
		return query.Answer{}, err
	}
	rt.queries.Inc()
	start := time.Now()
	defer func() { rt.fanout.ObserveDuration(time.Since(start)) }()
	if req.Kind == query.TopK {
		return rt.executeTopK(req), nil
	}

	idx, counts := rt.ring.Partition(req.Keys)
	st := query.NewStitcher(req)
	var mu sync.Mutex // serializes stitching across fan-in goroutines
	var wg sync.WaitGroup
	for p := range rt.peers {
		part := idx[counts[p]:counts[p+1]]
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(owner int, part []int) {
			defer wg.Done()
			sub := req
			sub.Keys = make([]uint64, len(part))
			for j, i := range part {
				sub.Keys[j] = req.Keys[i]
			}
			ans, verdict := rt.query(owner, sub)
			if verdict == subOK {
				mu.Lock()
				st.Add(part, ans, true)
				mu.Unlock()
				return
			}
			if verdict == subHard || rt.cfg.NoFallback {
				return
			}
			// The owner is transiently down: walk the ring for any replica
			// that can answer from its merged view. Such answers lag
			// replication, so they are folded in as non-authoritative —
			// estimates present, certification and KeyCoverage withheld.
			for off := 1; off < len(rt.peers); off++ {
				q := (owner + off) % len(rt.peers)
				if ans, v := rt.query(q, sub); v == subOK {
					rt.fallback[owner].Inc()
					mu.Lock()
					st.Add(part, ans, false)
					mu.Unlock()
					return
				}
			}
		}(p, part)
	}
	wg.Wait()
	ans := st.Finish()
	ans.Source = "cluster"
	return ans, nil
}

// executeTopK asks every replica (heavy hitters have no single owner) and
// merges the listings.
func (rt *Router) executeTopK(req query.Request) query.Answer {
	answers := make([]query.Answer, len(rt.peers))
	ok := make([]bool, len(rt.peers))
	var wg sync.WaitGroup
	for p := range rt.peers {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ans, verdict := rt.query(p, req)
			if verdict == subOK {
				answers[p], ok[p] = ans, true
			}
		}(p)
	}
	wg.Wait()
	var live []query.Answer
	for p, got := range ok {
		if got {
			live = append(live, answers[p])
		}
	}
	ans := query.MergeTopK(live, req.K, len(rt.peers))
	ans.Source = "cluster"
	return ans
}

// query round-trips one sub-batch to replica p.
func (rt *Router) query(p int, sub query.Request) (query.Answer, subVerdict) {
	rt.reqs[p].Inc()
	body, err := json.Marshal(sub)
	if err != nil {
		rt.errs[p].Inc()
		return query.Answer{}, subHard
	}
	resp, err := rt.client.Post(rt.peers[p]+"/v2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		// Connection refused, timeout, reset: the replica may be down while
		// its peers hold its replicated state — transient.
		rt.errs[p].Inc()
		return query.Answer{}, subTransient
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		rt.errs[p].Inc()
		verdict := subHard
		if resp.StatusCode == http.StatusServiceUnavailable {
			verdict = subTransient
		}
		if rt.logf != nil {
			var eb queryd.ErrorBody
			_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb)
			rt.logf("cluster: replica %s answered %s (%s: %s)",
				rt.peers[p], resp.Status, eb.Error.Code, eb.Error.Message)
		}
		return query.Answer{}, verdict
	}
	var er queryd.ExecResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		rt.errs[p].Inc()
		return query.Answer{}, subHard
	}
	if sub.Kind != query.TopK && len(er.PerKey) != len(sub.Keys) {
		rt.errs[p].Inc()
		return query.Answer{}, subHard
	}
	return er.Answer, subOK
}

// Ingest partitions the batch by owner and routes each part to its owner's
// /v2/ingest. The summed Ack preserves the pipeline's policy semantics: a
// replica's own drop policy shows up in Dropped, and an unreachable or
// refusing owner drops its whole part — the router never acks items it
// could not hand to their owner.
func (rt *Router) Ingest(b ingest.Batch) ingest.Ack {
	parts := make([][]stream.Item, len(rt.peers))
	for _, it := range b.Items {
		p := rt.ring.Owner(it.Key)
		parts[p] = append(parts[p], it)
	}
	acks := make([]ingest.Ack, len(rt.peers))
	var wg sync.WaitGroup
	for p, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int, part []stream.Item) {
			defer wg.Done()
			acks[p] = rt.ingestOne(p, ingest.Batch{Items: part, Source: b.Source, Epoch: b.Epoch})
		}(p, part)
	}
	wg.Wait()
	var total ingest.Ack
	for _, a := range acks {
		total.Accepted += a.Accepted
		total.Dropped += a.Dropped
	}
	rt.updates.Add(uint64(total.Accepted))
	return total
}

// ingestOne posts one owner's part, mapping transport failures to a
// full-part drop.
func (rt *Router) ingestOne(p int, b ingest.Batch) ingest.Ack {
	rt.reqs[p].Inc()
	refused := ingest.Ack{Dropped: len(b.Items)}
	type wireItem struct {
		Key   uint64 `json:"key"`
		Value uint64 `json:"value"`
	}
	items := make([]wireItem, len(b.Items))
	for i, it := range b.Items {
		items[i] = wireItem{Key: it.Key, Value: it.Value}
	}
	body, err := json.Marshal(map[string]any{"items": items, "source": b.Source, "epoch": b.Epoch})
	if err != nil {
		rt.errs[p].Inc()
		return refused
	}
	resp, err := rt.client.Post(rt.peers[p]+"/v2/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		rt.errs[p].Inc()
		return refused
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		rt.errs[p].Inc()
		return refused
	}
	var ack ingest.Ack
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		rt.errs[p].Inc()
		return refused
	}
	return ack
}

// Generation: routers front cumulative replicas; there is no sealed set.
func (rt *Router) Generation() uint64 { return 0 }

// Epochal: never — router answers are live merged views.
func (rt *Router) Epochal() bool { return false }

// Status reports the router's identity; Agents is the replica count.
func (rt *Router) Status() queryd.Status {
	return queryd.Status{
		Mode:    "router",
		Algo:    rt.cfg.Algo,
		Agents:  rt.ring.Replicas(),
		Updates: rt.updates.Value(),
		Queries: rt.queries.Value(),
	}
}

// RegisterMetrics exposes the cluster_* family on the router's registry:
// per-replica request/error/fallback counters (one CollectFunc each — the
// label set is the peer list), the fan-out latency histogram, and the ring
// gauges.
func (rt *Router) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCounter("cluster_router_queries_total",
		"Batches scatter-gathered through the router.", nil, &rt.queries)
	reg.RegisterCounter("cluster_router_ingested_total",
		"Items acked through routed ingest.", nil, &rt.updates)
	reg.RegisterHistogram("cluster_fanout_duration_seconds",
		"Whole scatter-gather latency per routed batch.", nil, rt.fanout)
	reg.GaugeFunc("cluster_ring_replicas", "Replicas on the consistent-hash ring.",
		nil, func() float64 { return float64(rt.ring.Replicas()) })
	reg.GaugeFunc("cluster_ring_vnodes", "Virtual nodes per replica.",
		nil, func() float64 { return float64(rt.ring.VNodes()) })
	perReplica := func(counters []telemetry.Counter) func(telemetry.Emit) {
		return func(emit telemetry.Emit) {
			for p, peer := range rt.peers {
				emit(telemetry.Labels{"replica": peer}, float64(counters[p].Value()))
			}
		}
	}
	reg.CollectFunc("cluster_replica_requests_total",
		"Sub-requests fanned out, by replica.", telemetry.TypeCounter, perReplica(rt.reqs))
	reg.CollectFunc("cluster_replica_errors_total",
		"Failed sub-requests, by replica.", telemetry.TypeCounter, perReplica(rt.errs))
	reg.CollectFunc("cluster_replica_fallbacks_total",
		"Sub-batches rerouted to a non-owner because the owner was down, by owner.",
		telemetry.TypeCounter, perReplica(rt.fallback))
}
