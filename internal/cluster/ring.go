// Package cluster is the horizontal scale-out plane: keys consistent-hash
// (with virtual nodes) across N queryd replicas. A Router implements the
// query.Executor contract by partitioning each batch by owning replica,
// fanning sub-batches out over /v2/query, and stitching the sub-answers
// back into one honestly-accounted Answer; a Replica wraps a standalone
// queryd backend with pull-based sealed-delta replication (/v2/delta +
// sketch.Merge) so any node can answer any key from a merged view. The
// design lifts sketch.Sharded's partition-by-owner batch routing onto the
// network, with the same counting-sort partition idiom.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/hash"
)

// DefaultVNodes is the virtual-node count per replica: enough points that
// a 3-node ring balances within a few percent, cheap enough that building
// the ring is trivial.
const DefaultVNodes = 64

// DefaultRingSeed salts ring-point and key hashes. It is deliberately
// distinct from any sketch Spec seed — ring placement and sketch hashing
// must not correlate.
const DefaultRingSeed = 0x636c7573746572 // "cluster"

// Membership names a cluster: the replica base URLs (identical order on
// every node — the ring is derived from it deterministically), which entry
// is this node (-1 for a router, which is not a ring member), and the ring
// geometry.
type Membership struct {
	Peers  []string
	Self   int
	VNodes int
	Seed   uint64
}

// Validation errors, named per the repo's refuse-by-name convention.
var (
	ErrNoPeers      = errors.New("cluster: membership needs at least one peer URL")
	ErrDupPeer      = errors.New("cluster: duplicate peer URL in membership")
	ErrSelfRange    = errors.New("cluster: self index outside the peer list")
	ErrBadVNodes    = errors.New("cluster: vnodes must be at least 1")
	ErrNotReplica   = errors.New("cluster: node is not a member of the peer list")
	ErrReplicaCount = errors.New("cluster: delta replication needs at least 2 replicas")
)

// ParsePeers splits a comma-separated peer list, trimming whitespace and
// trailing slashes so "http://a:1/, http://b:2" and "http://a:1,http://b:2"
// name the same membership.
func ParsePeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Validate checks the membership, defaulting VNodes and Seed in place.
func (m *Membership) Validate(requireSelf bool) error {
	if len(m.Peers) == 0 {
		return ErrNoPeers
	}
	seen := make(map[string]bool, len(m.Peers))
	for _, p := range m.Peers {
		if seen[p] {
			return fmt.Errorf("%w: %s", ErrDupPeer, p)
		}
		seen[p] = true
	}
	if m.VNodes == 0 {
		m.VNodes = DefaultVNodes
	}
	if m.VNodes < 1 {
		return fmt.Errorf("%w: got %d", ErrBadVNodes, m.VNodes)
	}
	if m.Seed == 0 {
		m.Seed = DefaultRingSeed
	}
	if requireSelf {
		if m.Self < 0 || m.Self >= len(m.Peers) {
			return fmt.Errorf("%w: self %d of %d peers", ErrSelfRange, m.Self, len(m.Peers))
		}
	}
	return nil
}

// Ring is a consistent-hash ring with virtual nodes: each replica
// contributes VNodes points, keys map to the first point at or clockwise
// from their hash, and adding or removing one replica moves only ~1/N of
// the keyspace. Immutable after NewRing; safe for concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash
	n      int         // replicas
	vnodes int
	seed   uint64
}

type ringPoint struct {
	hash    uint64
	replica int32
}

// NewRing derives the ring from a validated membership. Every node derives
// the identical ring from the identical peer list — membership order is the
// replica identity the ring hashes, so peer URLs must be listed in the same
// order everywhere.
func NewRing(m Membership) (*Ring, error) {
	if err := m.Validate(false); err != nil {
		return nil, err
	}
	r := &Ring{
		points: make([]ringPoint, 0, len(m.Peers)*m.VNodes),
		n:      len(m.Peers),
		vnodes: m.VNodes,
		seed:   m.Seed,
	}
	for i, peer := range m.Peers {
		// Points hash the peer URL, not the index, so reordering-safe
		// configs fail loudly (different rings) instead of silently routing
		// to the wrong node; the vnode counter is folded in through the
		// 64-bit finalizer.
		base := uint64(hash.Murmur32([]byte(peer), uint32(m.Seed))) |
			uint64(hash.Murmur32([]byte(peer), uint32(m.Seed>>32)^0x9747b28c))<<32
		for v := 0; v < m.VNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash.U64(base+uint64(v), m.Seed),
				replica: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// Replicas is the replica count.
func (r *Ring) Replicas() int { return r.n }

// VNodes is the per-replica virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner maps a key to its owning replica index: binary search for the
// first ring point at or after the key's hash, wrapping to the first point
// past the top of the ring.
func (r *Ring) Owner(key uint64) int {
	h := hash.U64(key, r.seed)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].replica)
}

// Partition splits keys by owning replica with the counting-sort idiom
// sketch.Sharded's batch path uses: one owner pass, prefix sums, one
// scatter. It returns the original-position indices grouped contiguously —
// part i is idx[counts[i]:counts[i+1]] — so callers can slice sub-batches
// without per-partition allocations.
func (r *Ring) Partition(keys []uint64) (idx []int, counts []int) {
	owner := make([]int32, len(keys))
	counts = make([]int, r.n+1)
	for i, k := range keys {
		o := int32(r.Owner(k))
		owner[i] = o
		counts[o+1]++
	}
	for p := 0; p < r.n; p++ {
		counts[p+1] += counts[p]
	}
	idx = make([]int, len(keys))
	next := make([]int, r.n)
	copy(next, counts[:r.n])
	for i := range keys {
		o := owner[i]
		idx[next[o]] = i
		next[o]++
	}
	return idx, counts
}
