package cluster

// End-to-end cluster tests over real HTTP: N queryd servers on httptest
// listeners, each fronting a Replica, with a Router scatter-gathering
// through them. The partition-equivalence test is the tentpole acceptance
// criterion: a 3-replica cluster's 256-key batch must be bit-compatible
// with a single node fed the same stream, because CM merges are linear and
// every replica answers from a fully merged view.

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/queryd"
	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

type testCluster struct {
	urls     []string
	replicas []*Replica
	servers  []*httptest.Server
	reps     []*Replicator
}

// startCluster boots n replicas of algo/spec on httptest servers. Listeners
// are allocated before any server starts so the membership (which every
// node must agree on) is known up front.
func startCluster(t *testing.T, n int, algo string, spec sketch.Spec) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		srv := httptest.NewUnstartedServer(nil)
		tc.servers = append(tc.servers, srv)
		tc.urls = append(tc.urls, "http://"+srv.Listener.Addr().String())
	}
	for i := 0; i < n; i++ {
		b, err := queryd.NewSketchBackend(algo, spec, 0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := NewReplica(b, algo, spec, Membership{Peers: tc.urls, Self: i}, t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		s, err := queryd.New(rep, queryd.Config{Algo: algo, Spec: spec, CacheTTL: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		tc.reps = append(tc.reps, NewReplicator(rep, 0, nil))
		tc.replicas = append(tc.replicas, rep)
		tc.servers[i].Config.Handler = s.Handler()
		tc.servers[i].Start()
		t.Cleanup(func() { tc.servers[i].Close(); s.Close() })
	}
	return tc
}

// replicate runs one pull sweep on every live replica, asserting each
// pulled wantPeers new deltas.
func (tc *testCluster) replicate(t *testing.T, wantPeers int) {
	t.Helper()
	for i, rp := range tc.reps {
		pulled, err := rp.RunOnce()
		if err != nil {
			t.Fatalf("replica %d: replication sweep: %v", i, err)
		}
		if pulled != wantPeers {
			t.Fatalf("replica %d pulled %d peers, want %d", i, pulled, wantPeers)
		}
	}
}

func (tc *testCluster) router(t *testing.T, algo string) *Router {
	t.Helper()
	rt, err := NewRouter(RouterConfig{Membership: Membership{Peers: tc.urls}, Algo: algo, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRouterPartitionEquivalence(t *testing.T) {
	const algo = "CM_acc"
	spec := sketch.Spec{MemoryBytes: 64 << 10, Lambda: 25, Seed: 9}
	tc := startCluster(t, 3, algo, spec)
	rt := tc.router(t, algo)

	s := stream.Zipf(20_000, 500, 1.2, 3)
	ack := rt.Ingest(ingest.Batch{Items: s.Items})
	if ack.Accepted != len(s.Items) || ack.Dropped != 0 {
		t.Fatalf("routed ingest acked %+v for %d items", ack, len(s.Items))
	}
	tc.replicate(t, 2)

	single, err := queryd.NewSketchBackend(algo, spec, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	single.Ingest(ingest.Batch{Items: s.Items})

	keys := make([]uint64, 256)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	req := query.Request{Kind: query.Point, Keys: keys}
	clustered, err := rt.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := single.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if clustered.KeyCoverage != 1 {
		t.Fatalf("healthy cluster KeyCoverage = %v, want 1", clustered.KeyCoverage)
	}
	if len(clustered.PerKey) != len(direct.PerKey) {
		t.Fatalf("row counts differ: %d vs %d", len(clustered.PerKey), len(direct.PerKey))
	}
	for i := range keys {
		c, d := clustered.PerKey[i], direct.PerKey[i]
		if c != d {
			t.Fatalf("key %d: cluster answered %+v, single node %+v — not bit-compatible", keys[i], c, d)
		}
	}
}

func TestRouterDegradedCoverageOnReplicaDeath(t *testing.T) {
	const algo = "Ours"
	spec := sketch.Spec{MemoryBytes: 1 << 20, Lambda: 25, Seed: 5, Emergency: true}
	tc := startCluster(t, 3, algo, spec)
	rt := tc.router(t, algo)

	truth := make(map[uint64]uint64)
	var items []stream.Item
	for k := uint64(1); k <= 64; k++ {
		n := 10 * k
		truth[k] = n
		for v := uint64(0); v < n; v++ {
			items = append(items, stream.Item{Key: k, Value: 1})
		}
	}
	if ack := rt.Ingest(ingest.Batch{Items: items}); ack.Dropped != 0 {
		t.Fatalf("healthy cluster dropped %d acked items", ack.Dropped)
	}
	tc.replicate(t, 2)

	keys := make([]uint64, 0, len(truth))
	for k := uint64(1); k <= 64; k++ {
		keys = append(keys, k)
	}
	req := query.Request{Kind: query.Point, Keys: keys}

	healthy, err := rt.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if !healthy.Certified || healthy.KeyCoverage != 1 {
		t.Fatalf("healthy cluster: certified=%v coverage=%v, want certified full coverage",
			healthy.Certified, healthy.KeyCoverage)
	}
	for i, k := range keys {
		e := healthy.PerKey[i]
		if e.Lower > truth[k] || truth[k] > e.Upper {
			t.Fatalf("key %d: certified [%d, %d] misses acked truth %d", k, e.Lower, e.Upper, truth[k])
		}
	}

	// Kill replica 0 the hard way: connections refused from here on.
	tc.servers[0].CloseClientConnections()
	tc.servers[0].Close()

	degraded, err := rt.Execute(req)
	if err != nil {
		t.Fatalf("router must answer degraded, not error: %v", err)
	}
	if degraded.Certified {
		t.Fatal("router certified an answer with a replica down")
	}
	if degraded.KeyCoverage >= 1 || degraded.KeyCoverage <= 0 {
		t.Fatalf("KeyCoverage = %v with one of 3 replicas down, want in (0, 1)", degraded.KeyCoverage)
	}
	// Fallback answers come from the survivors' merged views, which saw the
	// dead replica's delta before it died — estimates stay ≥ truth (the
	// never-underestimating family), just uncertified.
	for i, k := range keys {
		if degraded.PerKey[i].Est < truth[k] {
			t.Fatalf("key %d: degraded estimate %d under acked truth %d — fallback lost writes",
				k, degraded.PerKey[i].Est, truth[k])
		}
	}

	// Routed ingest to the dead owner reports drops instead of lying.
	ack := rt.Ingest(ingest.Batch{Items: items})
	if ack.Dropped == 0 || ack.Accepted+ack.Dropped != len(items) {
		t.Fatalf("ingest with a dead owner acked %+v for %d items, want visible drops", ack, len(items))
	}
}

func TestRouterNoFallbackLeavesKeysUnanswered(t *testing.T) {
	const algo = "CM_acc"
	spec := sketch.Spec{MemoryBytes: 32 << 10, Lambda: 25, Seed: 2}
	tc := startCluster(t, 3, algo, spec)
	rt, err := NewRouter(RouterConfig{Membership: Membership{Peers: tc.urls}, Algo: algo, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	tc.servers[1].CloseClientConnections()
	tc.servers[1].Close()

	keys := make([]uint64, 128)
	for i := range keys {
		keys[i] = uint64(i)
	}
	ans, err := rt.Execute(query.Request{Kind: query.Point, Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Certified || ans.KeyCoverage >= 1 {
		t.Fatalf("no-fallback with a dead replica: certified=%v coverage=%v", ans.Certified, ans.KeyCoverage)
	}
	if len(ans.PerKey) != len(keys) {
		t.Fatalf("PerKey must stay aligned: %d rows for %d keys", len(ans.PerKey), len(keys))
	}
}

func TestRouterTopKMergesReplicaListings(t *testing.T) {
	const algo = "Ours"
	spec := sketch.Spec{MemoryBytes: 1 << 20, Lambda: 25, Seed: 8, Emergency: true}
	tc := startCluster(t, 3, algo, spec)
	rt := tc.router(t, algo)

	var items []stream.Item
	for k := uint64(1); k <= 40; k++ {
		for v := uint64(0); v < 50*k; v++ {
			items = append(items, stream.Item{Key: k, Value: 1})
		}
	}
	if ack := rt.Ingest(ingest.Batch{Items: items}); ack.Dropped != 0 {
		t.Fatalf("ingest dropped %d", ack.Dropped)
	}
	tc.replicate(t, 2)

	ans, err := rt.Execute(query.Request{Kind: query.TopK, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.PerKey) != 5 {
		t.Fatalf("top-5 returned %d rows", len(ans.PerKey))
	}
	if ans.PerKey[0].Key != 40 {
		t.Fatalf("heaviest key is %d, want 40", ans.PerKey[0].Key)
	}
	if ans.KeyCoverage != 1 {
		t.Fatalf("all replicas answered, KeyCoverage = %v", ans.KeyCoverage)
	}
}

func TestReplicatorRefusesMismatchedPeer(t *testing.T) {
	specA := sketch.Spec{MemoryBytes: 32 << 10, Lambda: 25, Seed: 2}
	specB := sketch.Spec{MemoryBytes: 64 << 10, Lambda: 25, Seed: 2}

	srvA := httptest.NewUnstartedServer(nil)
	srvB := httptest.NewUnstartedServer(nil)
	urls := []string{"http://" + srvA.Listener.Addr().String(), "http://" + srvB.Listener.Addr().String()}

	// Peer B serves a different Spec under the same algorithm.
	bB, err := queryd.NewSketchBackend("CM_acc", specB, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bB.Ingest(ingest.Batch{Items: []stream.Item{{Key: 1, Value: 1}}})
	sB, err := queryd.New(bB, queryd.Config{Algo: "CM_acc", Spec: specB})
	if err != nil {
		t.Fatal(err)
	}
	srvB.Config.Handler = sB.Handler()
	srvB.Start()
	defer func() { srvB.Close(); sB.Close() }()
	srvA.Close()

	bA, err := queryd.NewSketchBackend("CM_acc", specA, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	repA, err := NewReplica(bA, "CM_acc", specA, Membership{Peers: urls, Self: 0}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewReplicator(repA, 0, nil)
	pulled, err := rp.RunOnce()
	if pulled != 0 {
		t.Fatalf("mismatched peer yielded a delta (pulled %d)", pulled)
	}
	if !errors.Is(err, sketch.ErrSnapshotMismatch) {
		t.Fatalf("pull from mismatched peer: %v, want sketch.ErrSnapshotMismatch", err)
	}
}

func TestReplicaRefusals(t *testing.T) {
	m := Membership{Peers: []string{"http://a:1", "http://b:2"}, Self: 0}

	// Epoch-mode backends cannot replicate.
	eb, err := queryd.NewSketchBackend("CM_acc", sketch.Spec{MemoryBytes: 1 << 16, Lambda: 25, Seed: 1}, time.Hour, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplica(eb, "CM_acc", sketch.Spec{MemoryBytes: 1 << 16, Lambda: 25, Seed: 1}, m, nil); !errors.Is(err, ErrEpochalReplica) {
		t.Fatalf("epoch backend: %v, want ErrEpochalReplica", err)
	}

	// Single-member clusters have nothing to replicate with.
	cb, err := queryd.NewSketchBackend("CM_acc", sketch.Spec{MemoryBytes: 1 << 16, Lambda: 25, Seed: 1}, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	solo := Membership{Peers: []string{"http://a:1"}, Self: 0}
	if _, err := NewReplica(cb, "CM_acc", sketch.Spec{MemoryBytes: 1 << 16, Lambda: 25, Seed: 1}, solo, nil); !errors.Is(err, ErrReplicaCount) {
		t.Fatalf("solo cluster: %v, want ErrReplicaCount", err)
	}
}
