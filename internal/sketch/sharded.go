package sketch

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
	"sync"

	"repro/internal/hash"
	"repro/internal/stream"
)

// Sharded partitions the key space across n independent sub-sketches so
// multiple goroutines can insert concurrently without locking the hot path.
// Each key is owned by exactly one shard (chosen by hash), so per-key
// estimates are exact with respect to the underlying sketch semantics; only
// the memory is split n ways.
//
// This mirrors how multi-pipe hardware (and the paper's multi-core CPU
// throughput runs) deploys sketches: one instance per pipeline, keys
// partitioned by RSS-style hashing.
type Sharded struct {
	shards []Sketch
	mus    []sync.Mutex
	seed   uint64
	name   string
}

// NewSharded builds n shards using factory, each with memBytes/n of memory.
func NewSharded(f Factory, memBytes, n int, seed uint64) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{
		shards: make([]Sketch, n),
		mus:    make([]sync.Mutex, n),
		seed:   seed,
		name:   f.Name + "_sharded",
	}
	for i := range s.shards {
		s.shards[i] = f.New(memBytes / n)
	}
	return s
}

func (s *Sharded) shard(key uint64) int {
	return hash.Bucket(key, s.seed, len(s.shards))
}

// Insert routes key to its owning shard. Safe for concurrent use.
func (s *Sharded) Insert(key, value uint64) {
	i := s.shard(key)
	s.mus[i].Lock()
	s.shards[i].Insert(key, value)
	s.mus[i].Unlock()
}

// shardBatchChunk bounds the per-call partitioning scratch of InsertBatch:
// items are processed in chunks of this many, so the transient copy stays
// ~256KB regardless of batch size (metrics.Feed passes whole streams).
const shardBatchChunk = 1 << 14

// shardedScratch is the reusable partitioning scratch of InsertBatch and
// QueryBatch, pooled so the batch hot paths report 0 allocs/op in steady
// state. Every field holds only pointer-free values (stream.Item,
// shardedRef, ints), so retaining capacity in the pool pins no caller
// memory.
type shardedScratch struct {
	parts  [][]stream.Item // InsertBatch: per-shard item partitions
	owner  []int32         // QueryBatch: owning shard per key
	counts []int           // QueryBatch: per-shard counts + prefix offsets
	next   []int           // QueryBatch: scatter cursors
	refs   []shardedRef    // QueryBatch: keys with caller positions
	buf    []uint64        // QueryBatch: per-shard key/est/mpe segments
}

var shardedScratchPool = sync.Pool{New: func() any { return new(shardedScratch) }}

// grow returns sl resized to length n, reallocating only when capacity is
// short — the pool amortizes that to zero across batches.
func grow[T any](sl []T, n int) []T {
	if cap(sl) < n {
		return make([]T, n)
	}
	return sl[:n]
}

// InsertBatch is the native bulk-ingestion path: items are partitioned by
// owning shard (in bounded chunks), then each shard is locked once per
// chunk and fed its whole partition (through the shard's own batch path
// when it has one). One lock round-trip per shard per chunk replaces one
// per item, and per-shard relative item order is preserved, so results are
// identical to item-at-a-time insertion. Safe for concurrent use: the
// partition buffers come from a pool, never shared between in-flight
// calls.
func (s *Sharded) InsertBatch(items []stream.Item) {
	n := len(s.shards)
	if n == 1 {
		s.mus[0].Lock()
		InsertBatch(s.shards[0], items)
		s.mus[0].Unlock()
		return
	}
	sc := shardedScratchPool.Get().(*shardedScratch)
	defer shardedScratchPool.Put(sc)
	sc.parts = grow(sc.parts, n)
	parts := sc.parts
	for len(items) > 0 {
		chunk := items
		if len(chunk) > shardBatchChunk {
			chunk = items[:shardBatchChunk]
		}
		items = items[len(chunk):]
		for i := range parts {
			parts[i] = parts[i][:0]
		}
		for _, it := range chunk {
			i := s.shard(it.Key)
			parts[i] = append(parts[i], it)
		}
		for i, part := range parts {
			if len(part) == 0 {
				continue
			}
			s.mus[i].Lock()
			InsertBatch(s.shards[i], part)
			s.mus[i].Unlock()
		}
	}
}

// Query reads from the owning shard. Safe for concurrent use.
func (s *Sharded) Query(key uint64) uint64 {
	i := s.shard(key)
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.shards[i].Query(key)
}

// shardedRef carries one batch key with its position in the caller's key
// slice, so per-shard answers scatter back to the caller's order.
type shardedRef struct {
	key uint64
	pos int
}

// shardedBatchFactor gates QueryBatch's partitioning: below this many keys
// per shard on average, the counting-sort scaffolding costs more than the
// per-key locks it saves, so small batches take the direct per-key path.
const shardedBatchFactor = 4

// QueryBatch is the native batch read path: keys are partitioned by owning
// shard (a counting sort — one hash pass for the counts, one to scatter),
// each shard's partition is sorted by key so runs of equal keys collapse
// inside the shard's own batch path, and each shard is locked exactly once
// for its whole partition — one lock round-trip per shard per batch
// instead of one per key, mirroring InsertBatch. Results scatter back into
// est/mpe at the caller's key positions, so answers are identical to
// per-key Query/QueryWithError calls. Safe for concurrent use: partition
// buffers are per-call.
func (s *Sharded) QueryBatch(keys []uint64, est, mpe []uint64) {
	n := len(s.shards)
	if n == 1 {
		s.mus[0].Lock()
		QueryBatch(s.shards[0], keys, est, mpe)
		s.mus[0].Unlock()
		return
	}
	if len(keys) < shardedBatchFactor*n {
		for i, k := range keys {
			p := s.shard(k)
			s.mus[p].Lock()
			if mpe != nil {
				if eb, ok := s.shards[p].(ErrorBounded); ok {
					est[i], mpe[i] = eb.QueryWithError(k)
				} else {
					est[i], mpe[i] = s.shards[p].Query(k), 0
				}
			} else {
				est[i] = s.shards[p].Query(k)
			}
			s.mus[p].Unlock()
		}
		return
	}
	// Counting-sort partition: shard owners for all keys (hashed once),
	// per-shard counts, prefix offsets, then scatter into one refs array
	// whose p-th segment is shard p's partition. All scratch is pooled, so
	// steady-state batches allocate nothing.
	sc := shardedScratchPool.Get().(*shardedScratch)
	defer shardedScratchPool.Put(sc)
	sc.owner = grow(sc.owner, len(keys))
	sc.counts = grow(sc.counts, n+1)
	owner, counts := sc.owner, sc.counts
	clear(counts)
	for i, k := range keys {
		p := s.shard(k)
		owner[i] = int32(p)
		counts[p+1]++
	}
	for p := 0; p < n; p++ {
		counts[p+1] += counts[p]
	}
	sc.refs = grow(sc.refs, len(keys))
	sc.next = grow(sc.next, n)
	refs, next := sc.refs, sc.next
	copy(next, counts[:n])
	for i, k := range keys {
		p := owner[i]
		refs[next[p]] = shardedRef{key: k, pos: i}
		next[p]++
	}
	sc.buf = grow(sc.buf, 3*len(keys))
	scratch := sc.buf
	for p := 0; p < n; p++ {
		part := refs[counts[p]:counts[p+1]]
		if len(part) == 0 {
			continue
		}
		// The partition inherits the caller's key order (the counting sort
		// is stable), so a batch that arrives sorted — the common serving
		// shape, and what the wire/HTTP layers are free to send — skips the
		// sort entirely; only genuinely unordered batches pay for it.
		sorted := true
		for j := 1; j < len(part); j++ {
			if part[j].key < part[j-1].key {
				sorted = false
				break
			}
		}
		if !sorted {
			slices.SortFunc(part, func(a, b shardedRef) int {
				switch {
				case a.key < b.key:
					return -1
				case a.key > b.key:
					return 1
				default:
					return a.pos - b.pos
				}
			})
		}
		keyBuf := scratch[:len(part)]
		estBuf := scratch[len(keys) : len(keys)+len(part)]
		var mpeBuf []uint64
		if mpe != nil {
			mpeBuf = scratch[2*len(keys) : 2*len(keys)+len(part)]
		}
		for j, ref := range part {
			keyBuf[j] = ref.key
		}
		s.mus[p].Lock()
		QueryBatch(s.shards[p], keyBuf, estBuf, mpeBuf)
		s.mus[p].Unlock()
		for j, ref := range part {
			est[ref.pos] = estBuf[j]
			if mpe != nil {
				mpe[ref.pos] = mpeBuf[j]
			}
		}
	}
}

// Wrap upgrades the sharded fan-out with the interfaces its sub-sketches
// actually implement, so sharding never erases a capability that can be
// delegated soundly — and never fakes one that can't. Shards are built by
// one factory, so probing shard 0 decides for all.
func (s *Sharded) Wrap() Sketch {
	_, eb := s.shards[0].(ErrorBounded)
	_, hh := s.shards[0].(HeavyHitterReporter)
	_, mg := s.shards[0].(Mergeable)
	_, sn := s.shards[0].(Snapshotter)
	// Snapshottable wrappers exist for the capability combinations the
	// registry actually produces: every Snapshotter variant is also
	// Mergeable (Ours/SS certify and track; CM/CU/Count do neither).
	switch {
	case eb && hh && mg && sn:
		return SnapshottableMergeableErrorBoundedSharded{MergeableErrorBoundedSharded{ErrorBoundedSharded{TrackedSharded{s}}}}
	case eb && hh && mg:
		return MergeableErrorBoundedSharded{ErrorBoundedSharded{TrackedSharded{s}}}
	case eb && hh:
		return ErrorBoundedSharded{TrackedSharded{s}}
	case eb && mg:
		return MergeableCertifiedSharded{CertifiedSharded{s}}
	case eb:
		return CertifiedSharded{s}
	case hh && mg:
		return MergeableTrackedSharded{TrackedSharded{s}}
	case hh:
		return TrackedSharded{s}
	case mg && sn:
		return SnapshottableMergeableSharded{MergeableSharded{s}}
	case mg:
		return MergeableSharded{s}
	default:
		return s
	}
}

// base exposes the underlying fan-out to mergeFrom through any wrapper
// depth; every wrapper type inherits it by embedding.
func (s *Sharded) base() *Sharded { return s }

// shardedMergeMu serializes Sharded-into-Sharded merges process-wide, so
// two concurrent opposite-direction merges cannot deadlock on each other's
// shard mutexes. Merges are rare control-plane events; ingest never takes
// this lock.
var shardedMergeMu sync.Mutex

// mergeFrom folds another sharded fan-out shard-by-shard. Both sides must
// route keys identically (same shard count and seed), so shard i of the
// source summarizes exactly the key partition shard i of the receiver
// owns, and the per-shard Merge semantics carry over unchanged.
func (s *Sharded) mergeFrom(other Sketch) error {
	w, ok := other.(interface{ base() *Sharded })
	if !ok {
		return MergeIncompatible(s, other, "not a sharded sketch")
	}
	o := w.base()
	if o == s {
		return MergeIncompatible(s, other, "cannot merge a sketch into itself")
	}
	if len(s.shards) != len(o.shards) {
		return MergeIncompatible(s, other, "shard counts differ")
	}
	if s.seed != o.seed {
		return MergeIncompatible(s, other, "shard-routing seeds differ")
	}
	shardedMergeMu.Lock()
	defer shardedMergeMu.Unlock()
	for i := range s.shards {
		m, ok := s.shards[i].(Mergeable)
		if !ok {
			return MergeIncompatible(s, other, "shards do not support Merge")
		}
		s.mus[i].Lock()
		o.mus[i].Lock()
		err := m.Merge(o.shards[i])
		o.mus[i].Unlock()
		s.mus[i].Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Reset clears every shard implementing Resettable in place. It lives on
// Sharded itself (every algorithm in the repository is Resettable); shards
// without Reset are left untouched.
func (s *Sharded) Reset() {
	for i, sh := range s.shards {
		r, ok := sh.(Resettable)
		if !ok {
			continue
		}
		s.mus[i].Lock()
		r.Reset()
		s.mus[i].Unlock()
	}
}

// TrackedSharded augments a Sharded whose sub-sketches report heavy
// hitters. It is a distinct type (rather than a method on Sharded) so a
// sharded sketch type-asserts as HeavyHitterReporter exactly when its
// shards do.
type TrackedSharded struct{ *Sharded }

// Tracked concatenates the tracked keys of every shard (key ownership is
// disjoint, so no merging is needed).
func (s TrackedSharded) Tracked() []KV {
	var out []KV
	for i, sh := range s.shards {
		s.mus[i].Lock()
		out = append(out, sh.(HeavyHitterReporter).Tracked()...)
		s.mus[i].Unlock()
	}
	return out
}

// shardedQueryWithError delegates a certified query to the owning shard:
// each key is owned by exactly one shard, so the owning shard's certified
// interval IS the sharded sketch's — no composition needed.
func shardedQueryWithError(s *Sharded, key uint64) (est, mpe uint64) {
	i := s.shard(key)
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.shards[i].(ErrorBounded).QueryWithError(key)
}

// CertifiedSharded augments a Sharded whose sub-sketches certify their
// errors but do not report heavy hitters.
type CertifiedSharded struct{ *Sharded }

// QueryWithError reads the certified interval from the owning shard.
func (s CertifiedSharded) QueryWithError(key uint64) (est, mpe uint64) {
	return shardedQueryWithError(s.Sharded, key)
}

// ErrorBoundedSharded augments a TrackedSharded whose sub-sketches both
// certify their errors and report heavy hitters (true of every
// ErrorBounded algorithm in the repository).
type ErrorBoundedSharded struct{ TrackedSharded }

// QueryWithError reads the certified interval from the owning shard.
func (s ErrorBoundedSharded) QueryWithError(key uint64) (est, mpe uint64) {
	return shardedQueryWithError(s.Sharded, key)
}

// The Mergeable* wrapper family mirrors the capability wrappers above for
// shards that support Merge, so a sharded sketch type-asserts as Mergeable
// exactly when its sub-sketches do. Each is a distinct type (not a method
// on Sharded) for the same reason TrackedSharded is.

// MergeableSharded augments a Sharded whose sub-sketches support Merge but
// neither certify errors nor report heavy hitters (sharded CM/CU/Count).
type MergeableSharded struct{ *Sharded }

// Merge folds another sharded fan-out in shard-by-shard.
func (s MergeableSharded) Merge(other Sketch) error { return s.mergeFrom(other) }

// MergeableTrackedSharded adds Merge to a heavy-hitter-reporting fan-out.
type MergeableTrackedSharded struct{ TrackedSharded }

// Merge folds another sharded fan-out in shard-by-shard.
func (s MergeableTrackedSharded) Merge(other Sketch) error { return s.mergeFrom(other) }

// MergeableCertifiedSharded adds Merge to an error-certifying fan-out.
type MergeableCertifiedSharded struct{ CertifiedSharded }

// Merge folds another sharded fan-out in shard-by-shard.
func (s MergeableCertifiedSharded) Merge(other Sketch) error { return s.mergeFrom(other) }

// MergeableErrorBoundedSharded adds Merge to a fan-out that both certifies
// errors and reports heavy hitters (sharded Ours/SS).
type MergeableErrorBoundedSharded struct{ ErrorBoundedSharded }

// Merge folds another sharded fan-out in shard-by-shard.
func (s MergeableErrorBoundedSharded) Merge(other Sketch) error { return s.mergeFrom(other) }

// SnapshottableMergeableSharded adds Snapshot/Restore to a mergeable
// fan-out (sharded CM/CU/Count).
type SnapshottableMergeableSharded struct{ MergeableSharded }

// Snapshot writes every shard's state, framed per shard.
func (s SnapshottableMergeableSharded) Snapshot(w io.Writer) error { return s.snapshotShards(w) }

// Restore replaces every shard's state from a same-Spec sibling's snapshot.
func (s SnapshottableMergeableSharded) Restore(r io.Reader) error { return s.restoreShards(r) }

// SnapshottableMergeableErrorBoundedSharded adds Snapshot/Restore to a
// fan-out that also certifies errors and reports heavy hitters (sharded
// Ours/SS).
type SnapshottableMergeableErrorBoundedSharded struct{ MergeableErrorBoundedSharded }

// Snapshot writes every shard's state, framed per shard.
func (s SnapshottableMergeableErrorBoundedSharded) Snapshot(w io.Writer) error {
	return s.snapshotShards(w)
}

// Restore replaces every shard's state from a same-Spec sibling's snapshot.
func (s SnapshottableMergeableErrorBoundedSharded) Restore(r io.Reader) error {
	return s.restoreShards(r)
}

// shardedMagic versions the sharded snapshot container format.
var shardedMagic = [4]byte{'S', 'H', 'S', '1'}

// snapshotShards serializes the fan-out: magic | shard count | routing seed
// | per-shard length-prefixed snapshots. Each shard snapshot is framed by
// its byte length because shard codecs may buffer reads past their logical
// end — framing is what makes the concatenation safely decodable.
func (s *Sharded) snapshotShards(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(shardedMagic[:])
	var scratch [binary.MaxVarintLen64]byte
	write := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		bw.Write(scratch[:n])
	}
	write(uint64(len(s.shards)))
	write(s.seed)
	var buf bytes.Buffer
	for i, sh := range s.shards {
		sn, ok := sh.(Snapshotter)
		if !ok {
			return fmt.Errorf("sketch: shard %d of %s does not support Snapshot", i, s.name)
		}
		buf.Reset()
		s.mus[i].Lock()
		err := sn.Snapshot(&buf)
		s.mus[i].Unlock()
		if err != nil {
			return fmt.Errorf("sketch: snapshotting shard %d of %s: %w", i, s.name, err)
		}
		write(uint64(buf.Len()))
		bw.Write(buf.Bytes())
	}
	return bw.Flush()
}

// restoreShards replaces every shard's state from a snapshotShards stream.
// Shard count and routing seed must match the receiver's: a snapshot routed
// differently would assign keys to the wrong shards.
func (s *Sharded) restoreShards(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("sketch: reading sharded snapshot magic: %w", err)
	}
	if magic != shardedMagic {
		return fmt.Errorf("%w: bad sharded snapshot magic %q", ErrSnapshotMismatch, magic[:])
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("sketch: sharded snapshot shard count: %w", err)
	}
	if int(n) != len(s.shards) {
		return fmt.Errorf("%w: snapshot has %d shards, sketch built with %d", ErrSnapshotMismatch, n, len(s.shards))
	}
	seed, err := binary.ReadUvarint(br)
	if err != nil {
		return fmt.Errorf("sketch: sharded snapshot seed: %w", err)
	}
	if seed != s.seed {
		return fmt.Errorf("%w: snapshot routing seed %d, sketch built with %d", ErrSnapshotMismatch, seed, s.seed)
	}
	for i, sh := range s.shards {
		sn, ok := sh.(Snapshotter)
		if !ok {
			return fmt.Errorf("sketch: shard %d of %s does not support Restore", i, s.name)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("sketch: shard %d snapshot length: %w", i, err)
		}
		if size > 1<<31 {
			return fmt.Errorf("sketch: implausible shard %d snapshot length %d", i, size)
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("sketch: shard %d snapshot payload: %w", i, err)
		}
		s.mus[i].Lock()
		err = sn.Restore(bytes.NewReader(payload))
		s.mus[i].Unlock()
		if err != nil {
			return fmt.Errorf("sketch: restoring shard %d of %s: %w", i, s.name, err)
		}
	}
	return nil
}

// MemoryBytes sums the shards' accounted memory.
func (s *Sharded) MemoryBytes() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.MemoryBytes()
	}
	return total
}

// Name identifies the sharded variant.
func (s *Sharded) Name() string { return s.name }
