package sketch

import (
	"sync"

	"repro/internal/hash"
)

// Sharded partitions the key space across n independent sub-sketches so
// multiple goroutines can insert concurrently without locking the hot path.
// Each key is owned by exactly one shard (chosen by hash), so per-key
// estimates are exact with respect to the underlying sketch semantics; only
// the memory is split n ways.
//
// This mirrors how multi-pipe hardware (and the paper's multi-core CPU
// throughput runs) deploys sketches: one instance per pipeline, keys
// partitioned by RSS-style hashing.
type Sharded struct {
	shards []Sketch
	mus    []sync.Mutex
	seed   uint64
	name   string
}

// NewSharded builds n shards using factory, each with memBytes/n of memory.
func NewSharded(f Factory, memBytes, n int, seed uint64) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{
		shards: make([]Sketch, n),
		mus:    make([]sync.Mutex, n),
		seed:   seed,
		name:   f.Name + "_sharded",
	}
	for i := range s.shards {
		s.shards[i] = f.New(memBytes / n)
	}
	return s
}

func (s *Sharded) shard(key uint64) int {
	return hash.Bucket(key, s.seed, len(s.shards))
}

// Insert routes key to its owning shard. Safe for concurrent use.
func (s *Sharded) Insert(key, value uint64) {
	i := s.shard(key)
	s.mus[i].Lock()
	s.shards[i].Insert(key, value)
	s.mus[i].Unlock()
}

// Query reads from the owning shard. Safe for concurrent use.
func (s *Sharded) Query(key uint64) uint64 {
	i := s.shard(key)
	s.mus[i].Lock()
	defer s.mus[i].Unlock()
	return s.shards[i].Query(key)
}

// MemoryBytes sums the shards' accounted memory.
func (s *Sharded) MemoryBytes() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.MemoryBytes()
	}
	return total
}

// Name identifies the sharded variant.
func (s *Sharded) Name() string { return s.name }
