package sketch_test

// Merge conformance: every registry variant advertising CapMergeable must
// produce a merged sketch whose answers are query-equivalent to one sketch
// fed the concatenated stream — exactly for linear sketches (CM, Count),
// and bound-equivalent for the conservative ones (CU never underestimates;
// error-bounded variants keep truth inside every certified interval). The
// property runs across flat and sharded builds of the full Mergeable set,
// so a newly registered Merge implementation is held to it automatically.

import (
	"testing"

	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

// exactMerge names the linear variants whose Merge must be bit-equivalent
// to feeding the concatenated stream into a single sketch.
var exactMerge = map[string]bool{
	"CM_fast": true, "CM_acc": true, "Count": true,
}

// splitStream partitions s round-robin into k disjoint parts, the way
// distributed vantage points slice shared traffic.
func splitStream(s *stream.Stream, k int) [][]stream.Item {
	parts := make([][]stream.Item, k)
	for i, it := range s.Items {
		parts[i%k] = append(parts[i%k], it)
	}
	return parts
}

// mergedAndDirect builds one sketch per part plus a direct sketch fed
// everything, merges the parts into the first, and returns (merged, direct).
func mergedAndDirect(t *testing.T, e sketch.Entry, spec sketch.Spec, s *stream.Stream, k int) (sketch.Sketch, sketch.Sketch) {
	t.Helper()
	direct := e.Build(spec)
	sketch.InsertBatch(direct, s.Items)

	parts := splitStream(s, k)
	merged := e.Build(spec)
	sketch.InsertBatch(merged, parts[0])
	mg, ok := merged.(sketch.Mergeable)
	if !ok {
		t.Fatalf("%s declares CapMergeable but built %T without Merge", e.Name, merged)
	}
	for _, part := range parts[1:] {
		other := e.Build(spec)
		sketch.InsertBatch(other, part)
		if err := mg.Merge(other); err != nil {
			t.Fatalf("%s: Merge: %v", e.Name, err)
		}
	}
	return merged, direct
}

func TestMergeEquivalence(t *testing.T) {
	s := stream.Zipf(40_000, 3_000, 1.0, 11)
	truth := s.Truth()
	specs := map[string]sketch.Spec{
		"flat":    {MemoryBytes: 256 << 10, Lambda: 25, Seed: 9},
		"sharded": {MemoryBytes: 256 << 10, Lambda: 25, Seed: 9, Shards: 4},
	}
	entries := sketch.ByCapability(sketch.CapMergeable)
	if len(entries) < 7 {
		t.Fatalf("expected at least 7 Mergeable variants (Ours, Ours(Raw), CM×2, CU×2, Count, SS), got %v", len(entries))
	}
	for _, e := range entries {
		for label, spec := range specs {
			t.Run(e.Name+"/"+label, func(t *testing.T) {
				merged, direct := mergedAndDirect(t, e, spec, s, 4)

				exactViol, underViol, certViol := 0, 0, 0
				for key, f := range truth {
					est := merged.Query(key)
					if exactMerge[e.Name] && est != direct.Query(key) {
						exactViol++
					}
					// CM/CU families never underestimate; merging must not
					// break that.
					switch e.Name {
					case "CM_fast", "CM_acc", "CU_fast", "CU_acc":
						if est < f {
							underViol++
						}
					}
					if eb, ok := merged.(sketch.ErrorBounded); ok {
						ce, cm := eb.QueryWithError(key)
						if f > ce || sketch.CertifiedLowerBound(ce, cm) > f {
							certViol++
						}
					}
				}
				if exactViol > 0 {
					t.Errorf("%d keys differ between merged and concatenated-stream sketch (linear merge must be exact)", exactViol)
				}
				if underViol > 0 {
					t.Errorf("%d keys underestimated after merge", underViol)
				}
				if certViol > 0 {
					t.Errorf("%d keys outside merged certified intervals", certViol)
				}
			})
		}
	}
}

func TestMergeRejectsIncompatible(t *testing.T) {
	spec := sketch.Spec{MemoryBytes: 128 << 10, Lambda: 25, Seed: 3}
	for _, e := range sketch.ByCapability(sketch.CapMergeable) {
		mg := e.Build(spec).(sketch.Mergeable)
		// Different algorithm family.
		if err := mg.Merge(sketch.MustBuild("Elastic", spec)); err == nil {
			t.Errorf("%s merged an Elastic sketch without error", e.Name)
		}
		// Same family, different seed (different hash functions).
		// Space-Saving hashes nothing, so a reseeded sibling IS compatible.
		if e.Name != "SS" {
			reseeded := spec
			reseeded.Seed = 4
			if err := mg.Merge(e.Build(reseeded)); err == nil {
				t.Errorf("%s merged a differently seeded sibling without error", e.Name)
			}
		}
		// Same family, different memory budget (different geometry — for SS,
		// different capacity, whose untracked-key bound needs equal caps).
		resized := spec
		resized.MemoryBytes = 64 << 10
		if err := mg.Merge(e.Build(resized)); err == nil {
			t.Errorf("%s merged a differently sized sibling without error", e.Name)
		}
	}
}

func TestShardedMergeRejectsMismatchedRouting(t *testing.T) {
	spec := sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 3, Shards: 4}
	a := sketch.MustBuild("CM_fast", spec).(sketch.Mergeable)
	// Mismatched shard count routes keys differently — refuse.
	two := spec
	two.Shards = 2
	if err := a.Merge(sketch.MustBuild("CM_fast", two)); err == nil {
		t.Error("sharded merge accepted a different shard count")
	}
	// Self-merge would double-count while holding the same locks — refuse.
	if err := a.Merge(a); err == nil {
		t.Error("sharded merge accepted itself as source")
	}
	// A flat sibling is not a sharded fan-out — refuse.
	flat := spec
	flat.Shards = 0
	if err := a.Merge(sketch.MustBuild("CM_fast", flat)); err == nil {
		t.Error("sharded merge accepted a flat sketch")
	}
}

// TestMergeHelperFallsBackWithError pins the package-level Merge entry
// point's behavior for non-mergeable sketches.
func TestMergeHelperFallsBackWithError(t *testing.T) {
	spec := sketch.Spec{MemoryBytes: 64 << 10, Seed: 1}
	el := sketch.MustBuild("Elastic", spec)
	if err := sketch.Merge(el, sketch.MustBuild("Elastic", spec)); err == nil {
		t.Error("sketch.Merge succeeded on a non-Mergeable sketch")
	}
	cm := sketch.MustBuild("CM_fast", spec)
	other := sketch.MustBuild("CM_fast", spec)
	other.Insert(7, 3)
	if err := sketch.Merge(cm, other); err != nil {
		t.Errorf("sketch.Merge on a Mergeable sketch: %v", err)
	}
	if got := cm.Query(7); got != 3 {
		t.Errorf("after helper merge Query(7)=%d want 3", got)
	}
}
