package sketch

import "fmt"

// Mergeable is implemented by sketches that can absorb another sketch built
// from the SAME Spec (same algorithm, memory budget, seed, and variant
// options), so that after dst.Merge(src) every dst query answers for the
// union of both ingested streams.
//
// Merge is the distributed-aggregation primitive: epoch rings combine sealed
// windows into sliding-window views, and the netsum collector folds
// per-batch deltas into one global sketch instead of summing per-agent
// point estimates at query time.
//
// Semantics by family:
//
//   - Linear sketches (CM, Count) merge exactly: the merged counters equal
//     the counters of one sketch fed the concatenated stream, so every query
//     is identical.
//   - CU merges conservatively: element-wise counter sums preserve the
//     never-underestimate guarantee (min_i(a_i+b_i) ≥ min_i a_i + min_i b_i
//     ≥ f_A(e) + f_B(e)) but may loosen the overestimate versus a single
//     sketch, since conservative update is order-sensitive.
//   - ReliableSketch merges certified: bucket votes combine so that every
//     certified interval [est−mpe, est] still contains the union stream's
//     truth, at the cost of disabling the early query-stop heuristics that
//     are only sound for insertion-built state (see core.Sketch.Merge).
//
// Merge requires a compatible argument — same concrete type and geometry —
// and reports an error (leaving the receiver unchanged) otherwise. Merge is
// a write to the receiver and a read of the argument: neither may be
// concurrently written during the call (Sharded's merge locks shard pairs
// itself).
type Mergeable interface {
	Sketch
	// Merge folds other into the receiver. other is not modified.
	Merge(other Sketch) error
}

// Merge folds src into dst when dst supports merging, reporting a uniform
// error otherwise — the entry point for callers holding plain Sketch values
// (epoch ring, collector, harness).
func Merge(dst, src Sketch) error {
	m, ok := dst.(Mergeable)
	if !ok {
		return fmt.Errorf("sketch: %s does not support Merge", dst.Name())
	}
	return m.Merge(src)
}

// MergeIncompatible builds the conventional error for a Merge whose
// argument is not a same-Spec sibling of the receiver; implementations use
// it so mismatch diagnostics read uniformly across algorithm packages.
func MergeIncompatible(dst Sketch, src Sketch, detail string) error {
	return fmt.Errorf("sketch: cannot merge %s into %s: %s", src.Name(), dst.Name(), detail)
}
