package sketch

// Spec is the algorithm-independent construction request understood by every
// registered variant: how much memory the sketch may use, the error
// tolerance it should target, and the hash seed, plus a small set of
// variant options that individual builders are free to honor or ignore.
//
// A zero Spec is usable: defaults are the paper's evaluation configuration
// (1MB budget, Λ=25). Seed has no default — zero is a valid seed and is
// passed through unchanged, so trial sweeps that include seed 0 hash with
// seed 0, exactly as the direct constructors would.
type Spec struct {
	// MemoryBytes is the accounted memory budget. Builders must return a
	// sketch whose MemoryBytes() does not exceed it.
	MemoryBytes int
	// Lambda is the error tolerance Λ. Only error-targeting algorithms
	// (ReliableSketch) consume it; counter-based baselines size purely from
	// MemoryBytes, matching the paper's same-memory comparison model.
	Lambda uint64
	// Seed drives all hashing. Experiments vary it across trials.
	Seed uint64

	// Variant options. Builders ignore options that do not apply to them.

	// FilterBits overrides the mice-filter counter width (ReliableSketch
	// only; 0 = the paper default of 2 bits; use 8+ for byte-weighted
	// streams).
	FilterBits int
	// Rw and Rl override the geometric decay ratios of layer widths and
	// lock thresholds (ReliableSketch only; 0 = the paper optima). The
	// Figure 11-14 parameter studies sweep them.
	Rw, Rl float64
	// Emergency enables the Space-Saving overflow layer (ReliableSketch
	// only), making the certified bound unconditional.
	Emergency bool
	// Shards > 1 wraps the sketch in a Sharded fan-out of that many
	// hash-partitioned sub-sketches sharing the memory budget, for
	// concurrent ingestion. Tracked and Reset delegate to the shards, and
	// error-bounded variants keep QueryWithError (each key's certificate
	// comes from its owning shard).
	Shards int
}

// withDefaults resolves zero fields to the paper's defaults.
func (sp Spec) withDefaults() Spec {
	if sp.MemoryBytes == 0 {
		sp.MemoryBytes = 1 << 20
	}
	if sp.Lambda == 0 {
		sp.Lambda = 25
	}
	return sp
}
