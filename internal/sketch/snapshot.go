package sketch

import (
	"errors"
	"io"
)

// ErrSnapshotMismatch marks a refused Restore (or delta fold) whose snapshot
// was produced under a different Spec than the receiver was built with —
// wrong shard count, routing seed, geometry, or algorithm. Named so callers
// moving snapshots between processes (checkpoint restore, cluster delta
// replication) can distinguish "operator misconfiguration, reject the peer"
// from corrupt or truncated payloads.
var ErrSnapshotMismatch = errors.New("sketch: snapshot spec mismatch")

// Snapshotter is implemented by sketches whose full state can be serialized
// and later restored, making measurement state durable: a collector can
// checkpoint its merged global view to disk and warm-restart from it, and an
// epoch deployment can archive sealed windows.
//
// Snapshot and Restore are paired through the Spec contract: Restore's
// receiver must be a sketch built from the same Spec (same algorithm, memory
// budget, seed, and variant options) as the one that produced the snapshot.
// Implementations validate what they can (geometry, shard routing) and
// document what they cannot (hash seeds are not serialized — they derive
// from the Spec the receiver was built with).
//
// Snapshot is a read of the receiver and must not run concurrently with
// writes; Restore is a write and must not run concurrently with anything.
// Restore implementations may buffer reads past the logical end of the
// snapshot, so containers concatenating snapshots in one stream must frame
// each one (as Sharded's codec does) rather than relying on self-delimiting.
type Snapshotter interface {
	Sketch
	// Snapshot writes the sketch's full state to w.
	Snapshot(w io.Writer) error
	// Restore replaces the receiver's state with a snapshot written by a
	// same-Spec sibling's Snapshot.
	Restore(r io.Reader) error
}
