// Package sketch defines the interfaces shared by every stream-summary
// algorithm in this repository, plus the memory-accounting conventions that
// make "same memory budget" comparisons between algorithms meaningful.
//
// The stream-summary problem (paper §2.1): given a stream of <key, value>
// pairs, answer point queries for the value sum f(e) of any key e. A sketch
// answers an estimate f̂(e); a key is an *outlier* for tolerance Λ when
// |f̂(e) − f(e)| > Λ.
package sketch

// Sketch is the minimal stream-summary interface implemented by every
// algorithm (ReliableSketch, CM, CU, Elastic, SpaceSaving, ...).
//
// Implementations are single-writer: Insert must not be called concurrently.
// This mirrors the hardware pipelines the paper targets; use Sharded for a
// goroutine-safe fan-out.
type Sketch interface {
	// Insert adds value to the sum of key. value is typically 1 (frequency
	// estimation) but may be any positive amount (e.g. packet bytes).
	Insert(key uint64, value uint64)
	// Query returns the estimated value sum of key.
	Query(key uint64) uint64
	// MemoryBytes reports the memory footprint under the paper's accounting
	// model (counter widths as deployed on hardware, not Go object sizes).
	MemoryBytes() int
	// Name identifies the algorithm and variant for experiment tables.
	Name() string
}

// ErrorBounded is implemented by sketches that can report a certified
// per-query error bound. ReliableSketch is the only ErrorBounded sketch in
// the paper's comparison: its Error-Sensible buckets track the Maximum
// Possible Error (MPE) so that f(e) ∈ [est−mpe, est] always holds (absent
// insertion failure, and unconditionally with the emergency layer enabled).
type ErrorBounded interface {
	Sketch
	// QueryWithError returns the estimate and its Maximum Possible Error.
	QueryWithError(key uint64) (est, mpe uint64)
}

// CertifiedLowerBound is the floor of an ErrorBounded interval: est − mpe
// clamped at 0, since the certified MPE can exceed a small estimate (e.g. a
// saturated mice filter plus occupied buckets) and true value sums are
// never negative.
func CertifiedLowerBound(est, mpe uint64) uint64 {
	if mpe > est {
		return 0
	}
	return est - mpe
}

// Resettable is implemented by sketches that can be cleared in place,
// allowing epoch-based deployments to reuse allocations.
type Resettable interface {
	Reset()
}

// HeavyHitterReporter is implemented by algorithms that can enumerate the
// keys they currently track (SpaceSaving, Frequent, Elastic's heavy part,
// HashPipe, PRECISION, Coco). Used by the heavy-hitter experiments.
type HeavyHitterReporter interface {
	// Tracked returns the tracked keys and their estimates. Order is
	// unspecified.
	Tracked() []KV
}

// KV is a key with its estimated value sum.
type KV struct {
	Key uint64
	Est uint64
}

// Factory builds a sketch for a given memory budget in bytes. Experiment
// harnesses sweep memory by invoking factories, so every algorithm must be
// constructible from a byte budget alone.
type Factory struct {
	// Name of the algorithm/variant, e.g. "Ours", "CM_fast".
	Name string
	// New builds a sketch using at most memBytes of accounted memory.
	New func(memBytes int) Sketch
}
