package sketch_test

// Snapshot conformance: every CapSnapshottable variant, flat and sharded,
// must round-trip its full state through Snapshot/Restore into a same-Spec
// sibling — identical point estimates, identical certified intervals, and
// identical tracked sets where those capabilities exist.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

func snapshotRoundTrip(t *testing.T, e sketch.Entry, spec sketch.Spec, s *stream.Stream) {
	t.Helper()
	src := e.Build(spec)
	sketch.InsertBatch(src, s.Items)
	sn, ok := src.(sketch.Snapshotter)
	if !ok {
		t.Fatalf("%s built %T without Snapshot despite CapSnapshottable", e.Name, src)
	}
	var buf bytes.Buffer
	if err := sn.Snapshot(&buf); err != nil {
		t.Fatalf("%s: Snapshot: %v", e.Name, err)
	}
	dst := e.Build(spec).(sketch.Snapshotter)
	if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("%s: Restore: %v", e.Name, err)
	}
	srcEB, isEB := src.(sketch.ErrorBounded)
	dstEB := sketch.ErrorBounded(nil)
	if isEB {
		dstEB = dst.(sketch.ErrorBounded)
	}
	for key := range s.Truth() {
		if a, b := src.Query(key), dst.Query(key); a != b {
			t.Fatalf("%s: key %d estimate %d became %d after restore", e.Name, key, a, b)
		}
		if isEB {
			e1, m1 := srcEB.QueryWithError(key)
			e2, m2 := dstEB.QueryWithError(key)
			if e1 != e2 || m1 != m2 {
				t.Fatalf("%s: key %d interval (%d,%d) became (%d,%d)", e.Name, key, e1, m1, e2, m2)
			}
		}
	}
	if hh, ok := src.(sketch.HeavyHitterReporter); ok {
		if a, b := len(hh.Tracked()), len(dst.(sketch.HeavyHitterReporter).Tracked()); a != b {
			t.Fatalf("%s: tracked %d keys, restored tracks %d", e.Name, a, b)
		}
	}
}

func TestSnapshotRoundTripAllVariants(t *testing.T) {
	s := stream.Zipf(30_000, 3_000, 1.0, 11)
	for _, e := range sketch.ByCapability(sketch.CapSnapshottable) {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			snapshotRoundTrip(t, e, sketch.Spec{MemoryBytes: 128 << 10, Lambda: 25, Seed: 11}, s)
		})
		t.Run(e.Name+"_sharded", func(t *testing.T) {
			snapshotRoundTrip(t, e, sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 11, Shards: 4}, s)
		})
	}
}

func TestSnapshotMergedStateRoundTrips(t *testing.T) {
	// The durability path that matters for collector checkpoints: a sketch
	// BUILT BY MERGING (whose mice-filter counters may exceed the packed
	// cap) must snapshot and restore with identical certified intervals.
	s := stream.Zipf(60_000, 2_000, 0.8, 5)
	spec := sketch.Spec{MemoryBytes: 8 << 10, Lambda: 25, Seed: 5}
	merged := sketch.MustBuild("Ours", spec)
	for part := 0; part < 4; part++ {
		other := sketch.MustBuild("Ours", spec)
		var items []stream.Item
		for i := part; i < len(s.Items); i += 4 {
			items = append(items, s.Items[i])
		}
		sketch.InsertBatch(other, items)
		if err := sketch.Merge(merged, other); err != nil {
			t.Fatalf("merge part %d: %v", part, err)
		}
	}
	var buf bytes.Buffer
	if err := merged.(sketch.Snapshotter).Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot of merged state: %v", err)
	}
	restored := sketch.MustBuild("Ours", spec).(sketch.Snapshotter)
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Restore of merged state: %v", err)
	}
	mEB := merged.(sketch.ErrorBounded)
	rEB := restored.(sketch.ErrorBounded)
	violations := 0
	for key, f := range s.Truth() {
		e1, m1 := mEB.QueryWithError(key)
		e2, m2 := rEB.QueryWithError(key)
		if e1 != e2 || m1 != m2 {
			t.Fatalf("key %d: merged interval (%d,%d) restored as (%d,%d)", key, e1, m1, e2, m2)
		}
		if f > e2 || sketch.CertifiedLowerBound(e2, m2) > f {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("%d keys outside restored certified intervals", violations)
	}
}

func TestSnapshotRestoreRejectsWrongSpec(t *testing.T) {
	s := stream.Zipf(5_000, 500, 1.0, 3)
	for _, tc := range []struct {
		name string
		a, b sketch.Spec
	}{
		{"CM_fast", sketch.Spec{MemoryBytes: 64 << 10, Seed: 3}, sketch.Spec{MemoryBytes: 128 << 10, Seed: 3}},
		{"SS", sketch.Spec{MemoryBytes: 64 << 10, Seed: 3}, sketch.Spec{MemoryBytes: 32 << 10, Seed: 3}},
	} {
		src := sketch.MustBuild(tc.name, tc.a).(sketch.Snapshotter)
		sketch.InsertBatch(src, s.Items)
		var buf bytes.Buffer
		if err := src.Snapshot(&buf); err != nil {
			t.Fatalf("%s: Snapshot: %v", tc.name, err)
		}
		dst := sketch.MustBuild(tc.name, tc.b).(sketch.Snapshotter)
		if err := dst.Restore(bytes.NewReader(buf.Bytes())); err == nil {
			t.Errorf("%s: Restore accepted a differently sized snapshot", tc.name)
		}
	}
	// Sharded: a routing-seed mismatch must be rejected — restored keys
	// would land on the wrong shards.
	spec := sketch.Spec{MemoryBytes: 128 << 10, Seed: 3, Shards: 4}
	src := sketch.MustBuild("CM_fast", spec).(sketch.Snapshotter)
	sketch.InsertBatch(src, s.Items)
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed = 4
	dst := sketch.MustBuild("CM_fast", other).(sketch.Snapshotter)
	err := dst.Restore(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("sharded Restore with mismatched routing seed: err=%v", err)
	}
}

func TestSnapshotRestoredSketchKeepsAccepting(t *testing.T) {
	// Warm restart is only useful if the restored sketch remains writable:
	// post-restore insertions must accumulate on top of restored state.
	for _, name := range []string{"Ours", "CM_fast", "SS"} {
		spec := sketch.Spec{MemoryBytes: 64 << 10, Lambda: 25, Seed: 9}
		src := sketch.MustBuild(name, spec).(sketch.Snapshotter)
		src.Insert(42, 100)
		var buf bytes.Buffer
		if err := src.Snapshot(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dst := sketch.MustBuild(name, spec).(sketch.Snapshotter)
		if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dst.Insert(42, 50)
		if est := dst.Query(42); est < 150 {
			t.Errorf("%s: restored sketch lost state: est=%d want ≥150", name, est)
		}
	}
}
