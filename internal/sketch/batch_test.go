package sketch_test

// Batch-ingestion equivalence: for every registered variant, feeding a
// stream through InsertBatch (in uneven chunks, to exercise batch
// boundaries) must yield the same estimate for every key as item-at-a-time
// insertion. This pins the BatchInserter contract for the native
// implementations (core, cm, cu, Sharded) and the generic fallback alike.

import (
	"sync"
	"testing"

	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

func feedChunked(sk sketch.Sketch, items []stream.Item) {
	// Deliberately awkward chunk sizes, including 1 and a big tail.
	for _, size := range []int{1, 7, 1000, len(items)} {
		if len(items) == 0 {
			break
		}
		n := size
		if n > len(items) {
			n = len(items)
		}
		sketch.InsertBatch(sk, items[:n])
		items = items[n:]
	}
	sketch.InsertBatch(sk, items)
}

func TestInsertBatchMatchesSequentialInsert(t *testing.T) {
	s := stream.IPTrace(30_000, 3)
	spec := sketch.Spec{MemoryBytes: 128 << 10, Lambda: 25, Seed: 3}
	for _, e := range sketch.All() {
		seq := e.Build(spec)
		bat := e.Build(spec)
		for _, it := range s.Items {
			seq.Insert(it.Key, it.Value)
		}
		feedChunked(bat, s.Items)
		for key := range s.Truth() {
			if a, b := seq.Query(key), bat.Query(key); a != b {
				t.Errorf("%s: key %d: sequential %d vs batch %d", e.Name, key, a, b)
				break
			}
		}
	}
}

func TestShardedInsertBatchMatchesSequential(t *testing.T) {
	s := stream.IPTrace(30_000, 3)
	spec := sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 3, Shards: 4}
	seq := sketch.MustBuild("Ours", spec)
	bat := sketch.MustBuild("Ours", spec)
	for _, it := range s.Items {
		seq.Insert(it.Key, it.Value)
	}
	feedChunked(bat, s.Items)
	for key := range s.Truth() {
		if a, b := seq.Query(key), bat.Query(key); a != b {
			t.Fatalf("sharded: key %d: sequential %d vs batch %d", key, a, b)
		}
	}
}

func TestShardedInsertBatchConcurrent(t *testing.T) {
	// Concurrent batch ingestion must neither race (run with -race) nor
	// lose items: the sum of all estimates ≥ the stream total is too weak a
	// check for key-partitioned shards, so compare against a sequentially
	// fed twin.
	s := stream.IPTrace(40_000, 11)
	spec := sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 11, Shards: 4}
	conc := sketch.MustBuild("Ours", spec)
	seq := sketch.MustBuild("Ours", spec)
	sketch.InsertBatch(seq, s.Items)

	const workers = 4
	var wg sync.WaitGroup
	chunk := len(s.Items) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if w == workers-1 {
			hi = len(s.Items)
		}
		wg.Add(1)
		go func(part []stream.Item) {
			defer wg.Done()
			sketch.InsertBatch(conc, part)
		}(s.Items[lo:hi])
	}
	wg.Wait()

	// Per-key estimates may differ (insertion order within a shard
	// changed), but nothing may be lost: with Ours and ample memory both
	// twins certify every key within Λ of the truth.
	lambda := uint64(25)
	for key, f := range s.Truth() {
		for name, sk := range map[string]sketch.Sketch{"sequential": seq, "concurrent": conc} {
			est := sk.Query(key)
			d := est - f
			if est < f {
				d = f - est
			}
			if d > lambda {
				t.Fatalf("%s twin: key %d off by %d (> Λ=%d)", name, key, d, lambda)
			}
		}
	}
}

func TestGenericFallbackUsedForNonBatchSketch(t *testing.T) {
	// A sketch without a native batch path must still ingest correctly
	// through the helper.
	sk := sketch.MustBuild("Elastic", sketch.Spec{MemoryBytes: 64 << 10, Seed: 1})
	if _, ok := sk.(sketch.BatchInserter); ok {
		t.Skip("Elastic grew a native batch path; pick another fallback probe")
	}
	items := []stream.Item{{Key: 9, Value: 5}, {Key: 9, Value: 5}, {Key: 4, Value: 1}}
	sketch.InsertBatch(sk, items)
	if est := sk.Query(9); est < 10 {
		t.Errorf("fallback lost value: Query(9)=%d want ≥10", est)
	}
}
