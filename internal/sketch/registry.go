package sketch

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
)

// Capability describes what a registered variant can do beyond the minimal
// Sketch interface, so callers can discover algorithms by what they need
// ("every sketch that certifies its error") instead of naming them.
type Capability uint32

const (
	// CapErrorBounded marks sketches implementing ErrorBounded
	// (QueryWithError with a certified Maximum Possible Error).
	CapErrorBounded Capability = 1 << iota
	// CapHeavyHitter marks sketches implementing HeavyHitterReporter
	// (Tracked enumeration of the keys they hold).
	CapHeavyHitter
	// CapResettable marks sketches implementing Resettable (in-place Reset
	// for epoch reuse).
	CapResettable
	// CapLambdaTargeting marks variants whose builders consume Spec.Lambda
	// as the error tolerance Λ — for these, "every error ≤ Λ" claims are
	// meaningful. ErrorBounded variants without it (SS) certify their own
	// per-query MPE instead.
	CapLambdaTargeting
	// CapMergeable marks sketches implementing Mergeable (folding a
	// same-Spec sibling into the receiver) — the primitive behind
	// sliding-window epoch rings and merge-based collector aggregation.
	CapMergeable
	// CapSnapshottable marks sketches implementing Snapshotter
	// (Snapshot/Restore of full state), the durability primitive behind
	// collector checkpoints and warm restarts.
	CapSnapshottable
	// CapBatchQuery marks sketches implementing BatchQuerier (a native
	// batch read path with amortized hashing and instrumentation) — the
	// read-side sibling of InsertBatch that the unified query plane
	// (internal/query) is built on. Sharded wrappers batch regardless (the
	// per-shard lock amortization is theirs), so the capability describes
	// the flat build.
	CapBatchQuery
)

// Has reports whether c includes every capability in want.
func (c Capability) Has(want Capability) bool { return c&want == want }

// String renders the capability set for error messages and tool listings.
func (c Capability) String() string {
	var parts []string
	for _, e := range []struct {
		bit  Capability
		name string
	}{
		{CapErrorBounded, "ErrorBounded"},
		{CapHeavyHitter, "HeavyHitter"},
		{CapResettable, "Resettable"},
		{CapLambdaTargeting, "LambdaTargeting"},
		{CapMergeable, "Mergeable"},
		{CapSnapshottable, "Snapshottable"},
		{CapBatchQuery, "BatchQuery"},
	} {
		if c.Has(e.bit) {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "|")
}

// Builder constructs a sketch variant from a Spec. Builders must honor
// Spec.MemoryBytes as a ceiling and may ignore options that do not apply.
type Builder func(Spec) Sketch

// Entry is one registered algorithm variant.
type Entry struct {
	// Name is the registry key and the Name() the built sketch reports
	// ("Ours", "CM_fast", ...).
	Name string
	// Caps declares the interfaces the built sketch implements.
	Caps Capability
	// Build constructs the variant.
	Build Builder
}

// Factory adapts the entry to the memory-sweep Factory shape used by the
// experiment harness: spec supplies everything but the memory budget, which
// the harness varies per probe point.
func (e Entry) Factory(spec Spec) Factory {
	return Factory{Name: e.Name, New: func(memBytes int) Sketch {
		sp := spec
		sp.MemoryBytes = memBytes
		return e.Build(sp)
	}}
}

var (
	regMu   sync.RWMutex
	entries = map[string]Entry{}
)

// Register adds an algorithm variant to the process-global registry.
// Algorithm packages call it from init(), so importing a package (or
// repro/internal/sketch/all for the full set) makes its variants buildable
// by name. Registering a duplicate name panics: names double as experiment
// table labels and must be unique.
func Register(name string, caps Capability, build Builder) {
	if name == "" || build == nil {
		panic("sketch: Register needs a name and a builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := entries[name]; dup {
		panic(fmt.Sprintf("sketch: duplicate registration of %q", name))
	}
	entries[name] = Entry{Name: name, Caps: caps, Build: wrapSharding(name, build)}
}

// wrapSharding applies the Spec.Shards option uniformly so individual
// builders never have to: a sharded request partitions the memory budget
// across Spec.Shards hash-partitioned sub-sketches.
func wrapSharding(name string, build Builder) Builder {
	return func(sp Spec) Sketch {
		sp = sp.withDefaults()
		if sp.Shards <= 1 {
			return build(sp)
		}
		inner := sp
		inner.Shards = 0
		f := Factory{Name: name, New: func(memBytes int) Sketch {
			one := inner
			one.MemoryBytes = memBytes
			return build(one)
		}}
		// Wrap preserves exactly the capabilities the shards can delegate.
		return NewSharded(f, sp.MemoryBytes, sp.Shards, sp.Seed).Wrap()
	}
}

// Lookup returns the entry registered under name.
func Lookup(name string) (Entry, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := entries[name]
	return e, ok
}

// Build constructs the named variant from spec. Unknown names report the
// registered alternatives, since they typically come from CLI flags.
func Build(name string, spec Spec) (Sketch, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sketch: unknown algorithm %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return e.Build(spec), nil
}

// MustBuild is Build for known-good names (experiment tables, tests).
func MustBuild(name string, spec Spec) Sketch {
	sk, err := Build(name, spec)
	if err != nil {
		panic(err)
	}
	return sk
}

// ParseNames splits a comma-separated list of variant names (the CLIs'
// -algo/-algos flag format, whitespace-tolerant) and validates each against
// the registry. The result is sorted and deduplicated, so CLI listings and
// experiment column orders are deterministic regardless of how the flag was
// spelled. The error names the offender and the registered set.
func ParseNames(csv string) ([]string, error) {
	var names []string
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := Lookup(name); !ok {
			return nil, fmt.Errorf("unknown algorithm %q (registered: %s)",
				name, strings.Join(Names(), ", "))
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return slices.Compact(names), nil
}

// Names returns every registered variant name in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(entries))
	for name := range entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns every registered entry sorted by name.
func All() []Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByCapability returns the entries declaring every requested capability,
// sorted by name — the discovery query behind capability-driven experiment
// sets ("all heavy-hitter reporters", "all certified-error sketches").
func ByCapability(caps ...Capability) []Entry {
	var want Capability
	for _, c := range caps {
		want |= c
	}
	var out []Entry
	for _, e := range All() {
		if e.Caps.Has(want) {
			out = append(out, e)
		}
	}
	return out
}
