package sketch_test

// Fuzzed merge equivalence, in the spirit of internal/netsum's codec
// fuzzers: arbitrary byte strings become streams and split points, and the
// Merge invariants must hold for every one — exact equality for the linear
// CM merge, certified-interval soundness for ReliableSketch.

import (
	"encoding/binary"
	"testing"

	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

// fuzzStream decodes data into a key/value stream: 3 bytes per item (2-byte
// key, 1-byte value+1) keeps collisions frequent enough to exercise bucket
// replacement and filter saturation at tiny sketch sizes.
func fuzzStream(data []byte) []stream.Item {
	items := make([]stream.Item, 0, len(data)/3)
	for len(data) >= 3 {
		items = append(items, stream.Item{
			Key:   uint64(binary.LittleEndian.Uint16(data)),
			Value: uint64(data[2]%16) + 1,
		})
		data = data[3:]
	}
	return items
}

func FuzzMergeEquivalence(f *testing.F) {
	f.Add([]byte{1, 0, 5, 2, 0, 7, 1, 0, 1}, uint8(1))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0, 0, 0, 0xff, 0xff, 1}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, parts uint8) {
		items := fuzzStream(data)
		k := int(parts%4) + 2
		spec := sketch.Spec{MemoryBytes: 8 << 10, Lambda: 25, Seed: 5}

		truth := map[uint64]uint64{}
		for _, it := range items {
			truth[it.Key] += it.Value
		}
		split := make([][]stream.Item, k)
		for i, it := range items {
			split[i%k] = append(split[i%k], it)
		}

		build := func(name string) (sketch.Mergeable, sketch.Sketch) {
			direct := sketch.MustBuild(name, spec)
			sketch.InsertBatch(direct, items)
			merged := sketch.MustBuild(name, spec).(sketch.Mergeable)
			for _, part := range split {
				other := sketch.MustBuild(name, spec)
				sketch.InsertBatch(other, part)
				if err := merged.Merge(other); err != nil {
					t.Fatalf("%s: Merge: %v", name, err)
				}
			}
			return merged, direct
		}

		cmMerged, cmDirect := build("CM_fast")
		oursMerged, _ := build("Ours")
		eb := oursMerged.(sketch.ErrorBounded)
		for key, want := range truth {
			if got, direct := cmMerged.Query(key), cmDirect.Query(key); got != direct {
				t.Fatalf("CM merged %d != direct %d for key %d", got, direct, key)
			}
			est, mpe := eb.QueryWithError(key)
			if want > est || sketch.CertifiedLowerBound(est, mpe) > want {
				t.Fatalf("Ours merged interval [%d,%d] misses truth %d for key %d",
					sketch.CertifiedLowerBound(est, mpe), est, want, key)
			}
		}
	})
}
