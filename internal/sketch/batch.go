package sketch

import "repro/internal/stream"

// BatchInserter is implemented by sketches with a native bulk-ingestion
// path. After InsertBatch(items), every Query (and QueryWithError) answer
// must equal what calling Insert(item.Key, item.Value) for each item in
// order would produce — batch is a throughput optimization (amortized
// hashing, per-shard partitioning, bulk accounting), never a semantic
// change. Instrumentation tallies (hash-call counters) may legitimately
// come out lower: that reduction is the optimization.
//
// Like Insert, InsertBatch is single-writer unless the implementation
// documents otherwise (Sharded's is safe for concurrent use).
type BatchInserter interface {
	InsertBatch(items []stream.Item)
}

// InsertBatch feeds items into sk through its native batch path when it has
// one, falling back to item-at-a-time insertion otherwise. This is the one
// ingestion entry point the harness and metrics use, so every algorithm
// benefits from batching the moment it implements BatchInserter.
func InsertBatch(sk Sketch, items []stream.Item) {
	if b, ok := sk.(BatchInserter); ok {
		b.InsertBatch(items)
		return
	}
	// Bind the method value once: the receiver and code pointer are
	// resolved here, so the per-item loop makes plain indirect calls
	// instead of re-reading the itab every iteration.
	insert := sk.Insert
	for _, it := range items {
		insert(it.Key, it.Value)
	}
}
