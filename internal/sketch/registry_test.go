package sketch_test

// Registry conformance: every registered variant must honor the Spec
// contract (memory ceiling, usable estimates, stable naming) and declare
// its capabilities truthfully. The tests run against the full variant set
// via repro/internal/sketch/all, so a newly registered algorithm is held to
// the contract automatically.

import (
	"testing"

	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

// specSweep is the budget grid of the conformance sweep: small enough to
// stress integer sizing floors, large enough to cover the paper's range.
var specSweep = []int{8 << 10, 64 << 10, 256 << 10, 1 << 20}

func TestRegistryHasEveryPaperVariant(t *testing.T) {
	want := []string{
		"Ours", "Ours(Raw)",
		"CM_acc", "CM_fast", "CU_acc", "CU_fast",
		"Elastic", "SS", "Coco", "PRECISION", "HashPipe",
		"Frequent", "UnivMon", "Count",
	}
	names := map[string]bool{}
	for _, n := range sketch.Names() {
		names[n] = true
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("variant %q not registered", n)
		}
	}
	if len(names) != len(want) {
		t.Errorf("registry holds %d variants, expected %d: %v", len(names), len(want), sketch.Names())
	}
}

func TestRegistryConformance(t *testing.T) {
	s := stream.Zipf(20_000, 2_000, 1.0, 7)
	top := uint64(0)
	topF := uint64(0)
	for key, f := range s.Truth() {
		if f > topF {
			top, topF = key, f
		}
	}
	seen := map[string]bool{}
	for _, e := range sketch.All() {
		for _, budget := range specSweep {
			sk := e.Build(sketch.Spec{MemoryBytes: budget, Lambda: 25, Seed: 7})
			if sk == nil {
				t.Fatalf("%s: builder returned nil at %dB", e.Name, budget)
			}
			if got := sk.MemoryBytes(); got > budget {
				t.Errorf("%s: MemoryBytes %d exceeds Spec budget %d", e.Name, got, budget)
			}
			if got := sk.Name(); got != e.Name {
				t.Errorf("%s: built sketch reports Name %q", e.Name, got)
			}
			// Insert/Query sanity: after ingesting a skewed stream, the most
			// frequent key must have a nonzero estimate.
			sketch.InsertBatch(sk, s.Items)
			if est := sk.Query(top); est == 0 {
				t.Errorf("%s at %dB: top key (true %d) estimates to 0", e.Name, budget, topF)
			}
		}
		if seen[e.Name] {
			t.Errorf("duplicate registry name %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestCapabilitiesMatchInterfaces(t *testing.T) {
	spec := sketch.Spec{MemoryBytes: 64 << 10, Lambda: 25, Seed: 1}
	for _, e := range sketch.All() {
		sk := e.Build(spec)
		if _, ok := sk.(sketch.ErrorBounded); ok != e.Caps.Has(sketch.CapErrorBounded) {
			t.Errorf("%s: ErrorBounded capability %v but interface %v", e.Name, e.Caps.Has(sketch.CapErrorBounded), ok)
		}
		if _, ok := sk.(sketch.HeavyHitterReporter); ok != e.Caps.Has(sketch.CapHeavyHitter) {
			t.Errorf("%s: HeavyHitter capability %v but interface %v", e.Name, e.Caps.Has(sketch.CapHeavyHitter), ok)
		}
		if _, ok := sk.(sketch.Resettable); ok != e.Caps.Has(sketch.CapResettable) {
			t.Errorf("%s: Resettable capability %v but interface %v", e.Name, e.Caps.Has(sketch.CapResettable), ok)
		}
		if _, ok := sk.(sketch.Mergeable); ok != e.Caps.Has(sketch.CapMergeable) {
			t.Errorf("%s: Mergeable capability %v but interface %v", e.Name, e.Caps.Has(sketch.CapMergeable), ok)
		}
		if _, ok := sk.(sketch.Snapshotter); ok != e.Caps.Has(sketch.CapSnapshottable) {
			t.Errorf("%s: Snapshottable capability %v but interface %v", e.Name, e.Caps.Has(sketch.CapSnapshottable), ok)
		}
		if _, ok := sk.(sketch.BatchQuerier); ok != e.Caps.Has(sketch.CapBatchQuery) {
			t.Errorf("%s: BatchQuery capability %v but interface %v", e.Name, e.Caps.Has(sketch.CapBatchQuery), ok)
		}
		// Sharding must preserve exactly the declared capability set: a
		// sharded build implements each interface iff the flat build declares
		// it (Merge, certificates, and tracking all delegate shard-wise).
		sharded := e.Build(sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 1, Shards: 4})
		for _, probe := range []struct {
			cap  sketch.Capability
			name string
			ok   bool
		}{
			{sketch.CapErrorBounded, "ErrorBounded", func() bool { _, ok := sharded.(sketch.ErrorBounded); return ok }()},
			{sketch.CapHeavyHitter, "HeavyHitter", func() bool { _, ok := sharded.(sketch.HeavyHitterReporter); return ok }()},
			{sketch.CapMergeable, "Mergeable", func() bool { _, ok := sharded.(sketch.Mergeable); return ok }()},
			{sketch.CapSnapshottable, "Snapshottable", func() bool { _, ok := sharded.(sketch.Snapshotter); return ok }()},
		} {
			if probe.ok != e.Caps.Has(probe.cap) {
				t.Errorf("%s sharded: %s capability %v but interface %v",
					e.Name, probe.name, e.Caps.Has(probe.cap), probe.ok)
			}
		}
		// Every sharded build batches regardless of the flat capability: the
		// per-shard lock amortization is the wrapper's own, and shards
		// without a native path get the per-key fallback inside one lock.
		if _, ok := sharded.(sketch.BatchQuerier); !ok {
			t.Errorf("%s sharded: does not implement BatchQuerier", e.Name)
		}
	}
}

func TestByCapabilityErrorBoundedIsExact(t *testing.T) {
	// ByCapability(ErrorBounded) must return exactly the variants whose
	// built sketches implement QueryWithError.
	spec := sketch.Spec{MemoryBytes: 64 << 10, Lambda: 25, Seed: 1}
	fromQuery := map[string]bool{}
	for _, e := range sketch.ByCapability(sketch.CapErrorBounded) {
		fromQuery[e.Name] = true
	}
	for _, e := range sketch.All() {
		_, implements := e.Build(spec).(sketch.ErrorBounded)
		if implements != fromQuery[e.Name] {
			t.Errorf("%s: implements QueryWithError=%v, in ByCapability(ErrorBounded)=%v",
				e.Name, implements, fromQuery[e.Name])
		}
	}
	if len(fromQuery) == 0 {
		t.Fatal("no ErrorBounded variants registered; expected at least Ours and SS")
	}
}

func TestByCapabilityConjunction(t *testing.T) {
	// Multiple capabilities AND together.
	both := sketch.ByCapability(sketch.CapErrorBounded, sketch.CapHeavyHitter)
	for _, e := range both {
		if !e.Caps.Has(sketch.CapErrorBounded | sketch.CapHeavyHitter) {
			t.Errorf("%s returned without both capabilities", e.Name)
		}
	}
	if len(both) == 0 {
		t.Error("expected Ours/SS to satisfy ErrorBounded+HeavyHitter")
	}
}

func TestParseNamesSortedAndDeduplicated(t *testing.T) {
	got, err := sketch.ParseNames(" SS , Ours, CM_fast,SS,Ours ,, CM_fast")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"CM_fast", "Ours", "SS"}
	if len(got) != len(want) {
		t.Fatalf("ParseNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ParseNames = %v, want %v", got, want)
		}
	}
	if _, err := sketch.ParseNames("Ours,NoSuchSketch"); err == nil {
		t.Error("ParseNames accepted an unregistered name")
	}
	if names, err := sketch.ParseNames(" ,, "); err != nil || len(names) != 0 {
		t.Errorf("ParseNames of blanks = (%v, %v), want empty", names, err)
	}
}

func TestBuildUnknownName(t *testing.T) {
	if _, err := sketch.Build("NoSuchSketch", sketch.Spec{}); err == nil {
		t.Fatal("Build accepted an unregistered name")
	}
}

func TestSpecShardsWrapsSharded(t *testing.T) {
	const budget = 256 << 10
	sk := sketch.MustBuild("Ours", sketch.Spec{MemoryBytes: budget, Lambda: 25, Seed: 1, Shards: 4})
	if _, ok := sk.(sketch.SnapshottableMergeableErrorBoundedSharded); !ok {
		t.Fatalf("Shards=4 over an ErrorBounded+Mergeable+Snapshottable variant built %T, want sketch.SnapshottableMergeableErrorBoundedSharded", sk)
	}
	if got := sk.MemoryBytes(); got > budget {
		t.Errorf("sharded MemoryBytes %d exceeds budget %d", got, budget)
	}
	if got := sk.Name(); got != "Ours_sharded" {
		t.Errorf("sharded Name = %q", got)
	}
}

func TestShardingPreservesCapabilitiesWhereSound(t *testing.T) {
	spec := sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 1, Shards: 4}
	s := stream.IPTrace(20_000, 1)

	// An ErrorBounded variant keeps certified queries: the owning shard's
	// interval is the sharded sketch's interval.
	ours := sketch.MustBuild("Ours", spec)
	eb, ok := ours.(sketch.ErrorBounded)
	if !ok {
		t.Fatal("sharded Ours lost ErrorBounded")
	}
	sketch.InsertBatch(eb, s.Items)
	violations := 0
	for key, f := range s.Truth() {
		est, mpe := eb.QueryWithError(key)
		if f > est || est-mpe > f {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("%d keys outside sharded certified intervals", violations)
	}
	// Heavy-hitter tracking and reset delegate to the shards.
	hh, ok := ours.(sketch.HeavyHitterReporter)
	if !ok {
		t.Fatal("sharded Ours lost Tracked")
	}
	if len(hh.Tracked()) == 0 {
		t.Error("sharded Tracked returned nothing over 20k items")
	}
	ours.(sketch.Resettable).Reset()
	if est := ours.Query(s.Items[0].Key); est != 0 {
		t.Errorf("Query after sharded Reset = %d", est)
	}

	// A non-error-bounded variant must NOT pretend: no QueryWithError, and
	// a non-tracking variant must not claim heavy-hitter reporting either.
	cm := sketch.MustBuild("CM_fast", spec)
	if _, ok := cm.(sketch.ErrorBounded); ok {
		t.Error("sharded CM_fast falsely claims ErrorBounded")
	}
	if _, ok := cm.(sketch.HeavyHitterReporter); ok {
		t.Error("sharded CM_fast falsely claims HeavyHitterReporter")
	}
	// A tracking-but-not-certifying variant keeps exactly Tracked.
	elastic := sketch.MustBuild("Elastic", spec)
	if _, ok := elastic.(sketch.ErrorBounded); ok {
		t.Error("sharded Elastic falsely claims ErrorBounded")
	}
	if _, ok := elastic.(sketch.Mergeable); ok {
		t.Error("sharded Elastic falsely claims Mergeable")
	}
	ehh, ok := elastic.(sketch.HeavyHitterReporter)
	if !ok {
		t.Fatal("sharded Elastic lost Tracked")
	}
	sketch.InsertBatch(elastic, s.Items)
	if len(ehh.Tracked()) == 0 {
		t.Error("sharded Elastic tracked nothing")
	}
}

func TestSpecDefaults(t *testing.T) {
	// A zero Spec must build a usable paper-default sketch.
	sk := sketch.MustBuild("Ours", sketch.Spec{})
	if sk.MemoryBytes() == 0 || sk.MemoryBytes() > 1<<20 {
		t.Errorf("zero-Spec memory %d outside (0, 1MB]", sk.MemoryBytes())
	}
	sk.Insert(1, 1)
	if sk.Query(1) == 0 {
		t.Error("zero-Spec sketch lost an insertion")
	}
}
