package sketch_test

// Snapshot wire-format compatibility as exercised by cluster delta
// replication: a peer's snapshot is restored into a fresh same-Spec sketch
// and then folded into a local view with Merge. The restored copy must be
// indistinguishable from the original under that fold — flat and sharded
// alike — and every cross-Spec refusal (flat container offered to a sharded
// receiver, wrong shard count, wrong routing seed) must surface the named
// sketch.ErrSnapshotMismatch so replicators can reject a misconfigured peer
// instead of string-matching.

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

// mergeableSnapshotters enumerates the variants delta replication can run
// on: Mergeable (to fold peer deltas) and Snapshottable (to ship them).
func mergeableSnapshotters() []sketch.Entry {
	return sketch.ByCapability(sketch.CapMergeable, sketch.CapSnapshottable)
}

// reencode ships src through its snapshot wire format into a fresh
// same-Spec sketch, as the replicator does with a peer delta.
func reencode(t *testing.T, e sketch.Entry, spec sketch.Spec, src sketch.Sketch) sketch.Sketch {
	t.Helper()
	var buf bytes.Buffer
	if err := src.(sketch.Snapshotter).Snapshot(&buf); err != nil {
		t.Fatalf("%s: Snapshot: %v", e.Name, err)
	}
	dst := e.Build(spec)
	if err := dst.(sketch.Snapshotter).Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("%s: Restore: %v", e.Name, err)
	}
	return dst
}

func deltaFoldRoundTrip(t *testing.T, e sketch.Entry, spec sketch.Spec) {
	t.Helper()
	peerStream := stream.Zipf(20_000, 1_500, 1.0, 21)
	localStream := stream.Zipf(20_000, 1_500, 0.8, 22)

	peer := e.Build(spec)
	sketch.InsertBatch(peer, peerStream.Items)

	// Fold the peer's state twice: once directly, once through the snapshot
	// wire format. The two merged views must agree bit-for-bit on every key
	// either stream touched — restore fidelity composed with Merge, which is
	// exactly what a replica's merged view depends on.
	direct := e.Build(spec)
	sketch.InsertBatch(direct, localStream.Items)
	if err := sketch.Merge(direct, peer); err != nil {
		t.Fatalf("%s: direct merge: %v", e.Name, err)
	}
	viaWire := e.Build(spec)
	sketch.InsertBatch(viaWire, localStream.Items)
	restored := reencode(t, e, spec, peer)
	if err := sketch.Merge(viaWire, restored); err != nil {
		t.Fatalf("%s: merging restored delta: %v", e.Name, err)
	}

	probe := func(truth map[uint64]uint64) {
		for key := range truth {
			if a, b := direct.Query(key), viaWire.Query(key); a != b {
				t.Fatalf("%s: key %d: direct merge estimates %d, wire-format merge %d", e.Name, key, a, b)
			}
		}
	}
	probe(peerStream.Truth())
	probe(localStream.Truth())
}

func TestDeltaFoldSnapshotRoundTripAllMergeables(t *testing.T) {
	for _, e := range mergeableSnapshotters() {
		e := e
		t.Run(e.Name+"_flat", func(t *testing.T) {
			deltaFoldRoundTrip(t, e, sketch.Spec{MemoryBytes: 128 << 10, Lambda: 25, Seed: 9})
		})
		t.Run(e.Name+"_sharded", func(t *testing.T) {
			deltaFoldRoundTrip(t, e, sketch.Spec{MemoryBytes: 256 << 10, Lambda: 25, Seed: 9, Shards: 4})
		})
	}
}

// snapshotOf serializes a freshly fed sketch built from spec.
func snapshotOf(t *testing.T, e sketch.Entry, spec sketch.Spec) []byte {
	t.Helper()
	s := stream.Zipf(5_000, 500, 1.0, 7)
	sk := e.Build(spec)
	sketch.InsertBatch(sk, s.Items)
	var buf bytes.Buffer
	if err := sk.(sketch.Snapshotter).Snapshot(&buf); err != nil {
		t.Fatalf("%s: Snapshot: %v", e.Name, err)
	}
	return buf.Bytes()
}

func TestSnapshotMismatchedSpecsRefusedWithNamedError(t *testing.T) {
	flat := sketch.Spec{MemoryBytes: 128 << 10, Lambda: 25, Seed: 9}
	sharded := flat
	sharded.Shards = 4

	for _, e := range mergeableSnapshotters() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			flatSnap := snapshotOf(t, e, flat)
			shardedSnap := snapshotOf(t, e, sharded)

			refuse := func(what string, spec sketch.Spec, snap []byte) {
				t.Helper()
				err := e.Build(spec).(sketch.Snapshotter).Restore(bytes.NewReader(snap))
				if err == nil {
					t.Fatalf("%s: %s: restore accepted a mismatched snapshot", e.Name, what)
				}
				if !errors.Is(err, sketch.ErrSnapshotMismatch) {
					t.Fatalf("%s: %s: error %v is not sketch.ErrSnapshotMismatch", e.Name, what, err)
				}
			}

			refuse("flat snapshot into sharded sketch", sharded, flatSnap)
			refuse("sharded snapshot into flat sketch", flat, shardedSnap)

			wrongCount := sharded
			wrongCount.Shards = 8
			refuse("4-shard snapshot into 8-shard sketch", wrongCount, shardedSnap)

			wrongSeed := sharded
			wrongSeed.Seed = 10
			refuse("routing-seed mismatch", wrongSeed, shardedSnap)
		})
	}
}
