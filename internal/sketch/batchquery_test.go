package sketch_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

// batchQueryKeys builds a query mix that exercises the batch path's
// amortizations: present keys, absent keys, and sorted runs of duplicates
// (what the sharded wrapper feeds each shard).
func batchQueryKeys(s *stream.Stream, n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			keys = append(keys, s.Items[rng.Intn(s.Len())].Key)
		case 1:
			keys = append(keys, uint64(1<<40)+uint64(rng.Intn(1000))) // absent
		default:
			keys = append(keys, keys[len(keys)-1]) // duplicate run
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TestQueryBatchMatchesSingle pins the BatchQuerier contract across every
// registered variant, flat and sharded: batch answers (and certified MPEs,
// where the variant is ErrorBounded) must equal per-key Query /
// QueryWithError exactly.
func TestQueryBatchMatchesSingle(t *testing.T) {
	s := stream.Zipf(20_000, 2_000, 1.2, 1)
	keys := batchQueryKeys(s, 300, 7)
	for _, e := range sketch.All() {
		for _, shards := range []int{0, 4} {
			e, shards := e, shards
			name := e.Name
			if shards > 1 {
				name += "_sharded"
			}
			t.Run(name, func(t *testing.T) {
				sk := e.Build(sketch.Spec{MemoryBytes: 128 << 10, Lambda: 25, Seed: 1, Shards: shards})
				sketch.InsertBatch(sk, s.Items)

				est := make([]uint64, len(keys))
				var mpe []uint64
				eb, bounded := sk.(sketch.ErrorBounded)
				if bounded {
					mpe = make([]uint64, len(keys))
				}
				sketch.QueryBatch(sk, keys, est, mpe)
				for i, k := range keys {
					if bounded {
						wantEst, wantMPE := eb.QueryWithError(k)
						if est[i] != wantEst || mpe[i] != wantMPE {
							t.Fatalf("key %d: batch (%d,%d) != single (%d,%d)",
								k, est[i], mpe[i], wantEst, wantMPE)
						}
					} else if want := sk.Query(k); est[i] != want {
						t.Fatalf("key %d: batch %d != single %d", k, est[i], want)
					}
				}
			})
		}
	}
}

// TestQueryBatchZeroFillsMPE pins the uncertified half of the contract: a
// non-ErrorBounded sketch handed a dirty mpe slice must zero it, so stale
// values can never masquerade as certified errors.
func TestQueryBatchZeroFillsMPE(t *testing.T) {
	s := stream.Zipf(5_000, 500, 1.2, 1)
	for _, name := range []string{"CM_fast", "CU_fast", "Count"} {
		sk := sketch.MustBuild(name, sketch.Spec{MemoryBytes: 64 << 10, Seed: 1})
		sketch.InsertBatch(sk, s.Items)
		keys := batchQueryKeys(s, 50, 3)
		est := make([]uint64, len(keys))
		mpe := make([]uint64, len(keys))
		for i := range mpe {
			mpe[i] = 0xdead
		}
		sketch.QueryBatch(sk, keys, est, mpe)
		for i := range mpe {
			if mpe[i] != 0 {
				t.Fatalf("%s: mpe[%d] = %d, want zero-fill", name, i, mpe[i])
			}
		}
	}
}

// TestQueryBatchFallback covers the helper's per-key fallback for sketches
// without a native path (built directly, bypassing the registry wrapper).
func TestQueryBatchFallback(t *testing.T) {
	s := stream.Zipf(5_000, 500, 1.2, 1)
	sk := sketch.MustBuild("SS", sketch.Spec{MemoryBytes: 64 << 10, Seed: 1})
	if _, ok := sk.(sketch.BatchQuerier); ok {
		t.Skip("SS grew a native batch path; fallback covered elsewhere")
	}
	sketch.InsertBatch(sk, s.Items)
	keys := batchQueryKeys(s, 60, 5)
	est := make([]uint64, len(keys))
	mpe := make([]uint64, len(keys))
	sketch.QueryBatch(sk, keys, est, mpe)
	eb := sk.(sketch.ErrorBounded)
	for i, k := range keys {
		wantEst, wantMPE := eb.QueryWithError(k)
		if est[i] != wantEst || mpe[i] != wantMPE {
			t.Fatalf("key %d: fallback batch (%d,%d) != single (%d,%d)",
				k, est[i], mpe[i], wantEst, wantMPE)
		}
	}
}
