package sketch

// BatchQuerier is implemented by sketches with a native batch read path.
// QueryBatch(keys, est, mpe) must produce exactly what per-key Query (and
// QueryWithError, when mpe is requested) would: batching is a throughput
// optimization — amortized hashing for runs of equal keys, one lock
// round-trip per shard per batch, hoisted instrumentation — never a
// semantic change. Instrumentation tallies (query-op and hash-call
// counters) may legitimately come out lower: that reduction is the
// optimization, mirroring BatchInserter.
//
// The contract for mpe: callers pass a non-nil mpe slice only when they
// want certified Maximum Possible Errors; implementations that cannot
// certify (anything not ErrorBounded) must zero-fill it. est and mpe must
// be at least len(keys) long.
//
// Like Query, QueryBatch is safe for concurrent readers wherever Query is
// (sealed epoch windows, Sharded's internal locking).
type BatchQuerier interface {
	QueryBatch(keys []uint64, est, mpe []uint64)
}

// QueryBatch answers point queries for all keys through sk's native batch
// path when it has one, falling back to per-key queries otherwise. This is
// the one batch read entry point the ring, the collector, and the HTTP
// backends use, so every algorithm benefits from batching the moment it
// implements BatchQuerier. mpe may be nil when the caller does not need
// certified errors; when non-nil and sk is not ErrorBounded it is
// zero-filled.
func QueryBatch(sk Sketch, keys []uint64, est, mpe []uint64) {
	if bq, ok := sk.(BatchQuerier); ok {
		bq.QueryBatch(keys, est, mpe)
		return
	}
	// Bind the method values once so the per-key loops make plain indirect
	// calls instead of re-reading the itab every iteration (mirrors the
	// InsertBatch fallback).
	if mpe != nil {
		if eb, ok := sk.(ErrorBounded); ok {
			queryWithError := eb.QueryWithError
			for i, k := range keys {
				est[i], mpe[i] = queryWithError(k)
			}
			return
		}
		for i := range keys {
			mpe[i] = 0
		}
	}
	query := sk.Query
	for i, k := range keys {
		est[i] = query(k)
	}
}
