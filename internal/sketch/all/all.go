// Package all registers every stream-summary algorithm variant with the
// sketch registry, via the algorithm packages' init functions. Import it
// for side effects wherever the full variant set must be buildable by name
// (the experiment harness, the CLI tools, registry-wide tests):
//
//	import _ "repro/internal/sketch/all"
package all

import (
	_ "repro/internal/cm"
	_ "repro/internal/coco"
	_ "repro/internal/core"
	_ "repro/internal/countsketch"
	_ "repro/internal/cu"
	_ "repro/internal/elastic"
	_ "repro/internal/frequent"
	_ "repro/internal/hashpipe"
	_ "repro/internal/precision"
	_ "repro/internal/spacesaving"
	_ "repro/internal/univmon"
)
