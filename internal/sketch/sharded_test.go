package sketch

import (
	"sync"
	"testing"
)

// countingSketch is a map-backed test double.
type countingSketch struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

func (c *countingSketch) Insert(k, v uint64) {
	c.m[k] += v
}
func (c *countingSketch) Query(k uint64) uint64 { return c.m[k] }
func (c *countingSketch) MemoryBytes() int      { return 1024 }
func (c *countingSketch) Name() string          { return "counting" }

func testFactory() Factory {
	return Factory{
		Name: "counting",
		New:  func(mem int) Sketch { return &countingSketch{m: map[uint64]uint64{}} },
	}
}

func TestShardedRoutesConsistently(t *testing.T) {
	s := NewSharded(testFactory(), 4096, 4, 1)
	for k := uint64(0); k < 100; k++ {
		s.Insert(k, k+1)
	}
	for k := uint64(0); k < 100; k++ {
		if got := s.Query(k); got != k+1 {
			t.Fatalf("Query(%d)=%d want %d", k, got, k+1)
		}
	}
}

func TestShardedConcurrentInserts(t *testing.T) {
	s := NewSharded(testFactory(), 4096, 8, 2)
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Insert(uint64(i%50), 1)
			}
		}()
	}
	wg.Wait()
	var total uint64
	for k := uint64(0); k < 50; k++ {
		total += s.Query(k)
	}
	if total != goroutines*perG {
		t.Errorf("total=%d want %d", total, goroutines*perG)
	}
}

func TestShardedAccounting(t *testing.T) {
	s := NewSharded(testFactory(), 4096, 4, 1)
	if s.MemoryBytes() != 4*1024 {
		t.Errorf("MemoryBytes=%d", s.MemoryBytes())
	}
	if s.Name() != "counting_sharded" {
		t.Errorf("Name=%q", s.Name())
	}
	// n < 1 clamps to a single shard.
	s1 := NewSharded(testFactory(), 4096, 0, 1)
	s1.Insert(1, 1)
	if s1.Query(1) != 1 {
		t.Error("single-shard fallback broken")
	}
}
