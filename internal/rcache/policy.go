package rcache

import "fmt"

// Policy names accepted by Config.Policy and the -cache-policy flag.
const (
	// PolicyLRU is the compatibility default: one recency queue per
	// shard, evicting the least recently used entry — exactly the cache
	// queryd shipped with before admission control existed.
	PolicyLRU = "lru"
	// PolicyS3FIFO is the S3-FIFO design (Yang et al., SOSP '23): a small
	// probationary FIFO absorbs one-hit wonders, survivors promote into a
	// main FIFO with lazy reinsertion, and a ghost queue of recently
	// evicted keys routes returning keys straight into main.
	PolicyS3FIFO = "s3fifo"
	// PolicyTinyLFU is W-TinyLFU (Einziger et al.): a tiny admission
	// window in front of a segmented-LRU main, with a 4-bit count-min
	// frequency sketch plus doorkeeper Bloom filter deciding whether a
	// candidate's access frequency earns the eviction of main's victim.
	PolicyTinyLFU = "tinylfu"
)

// ParsePolicy validates a policy name, returning the canonical constant.
func ParsePolicy(s string) (string, error) {
	switch s {
	case "", PolicyLRU:
		return PolicyLRU, nil
	case PolicyS3FIFO:
		return PolicyS3FIFO, nil
	case PolicyTinyLFU:
		return PolicyTinyLFU, nil
	}
	return "", fmt.Errorf("rcache: unknown cache policy %q (want %s, %s, or %s)",
		s, PolicyLRU, PolicyS3FIFO, PolicyTinyLFU)
}

// policy is one shard's eviction/admission strategy. Every call happens
// under the owning shard's mutex, so implementations need no locking of
// their own. Victims leave through the evict callback wired at
// construction, which removes them from the shard's entry map (the policy
// has already unlinked them from its queues).
type policy interface {
	// add offers a newly stored entry. The policy places it and evicts as
	// needed to hold its capacity; under an admission-controlled policy
	// the offered entry itself may be the immediate victim.
	add(e *entry)
	// touch records a hit on a stored entry.
	touch(e *entry)
	// remove unlinks an entry dropped externally (TTL expiry, generation
	// invalidation, replacement) without counting an eviction.
	remove(e *entry)
	// reset drops all policy state; the shard has discarded every entry
	// wholesale (a generation advance).
	reset()
}

// newPolicy builds the named policy for one shard of cap entries. c
// supplies the shared policy counters (ghost hits, admission rejects) and
// the eviction counter behind onEvict.
func newPolicy(name string, cap int, c *Cache, onEvict func(*entry)) policy {
	switch name {
	case PolicyS3FIFO:
		return newS3FIFO(cap, onEvict, &c.ghostHits)
	case PolicyTinyLFU:
		return newTinyLFU(cap, onEvict, &c.admissionRejects)
	default:
		return &lruPolicy{cap: cap, onEvict: onEvict}
	}
}

// Queue tags for entry.where: which policy queue currently links an entry.
const (
	qNone int8 = iota
	qLRU
	qSmall     // S3-FIFO probationary FIFO
	qMain      // S3-FIFO main FIFO
	qWindow    // TinyLFU admission window
	qProbation // TinyLFU SLRU probation segment
	qProtected // TinyLFU SLRU protected segment
)

// fifo is an intrusive doubly-linked queue over cache entries: push at the
// head, evict from the tail. Entries carry their own links, so membership
// costs no allocation and removal is O(1) — the shard's hot path stays
// pointer swaps under its lock.
type fifo struct {
	head, tail *entry
	n          int
}

func (q *fifo) pushHead(e *entry) {
	e.prev = nil
	e.next = q.head
	if q.head != nil {
		q.head.prev = e
	} else {
		q.tail = e
	}
	q.head = e
	q.n++
}

func (q *fifo) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		q.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		q.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.where = qNone
	q.n--
}

func (q *fifo) popTail() *entry {
	e := q.tail
	if e != nil {
		q.remove(e)
	}
	return e
}

// lruPolicy is the compat default: one recency queue, strict
// least-recently-used eviction, no admission control.
type lruPolicy struct {
	cap     int
	q       fifo
	onEvict func(*entry)
}

func (p *lruPolicy) add(e *entry) {
	e.where = qLRU
	p.q.pushHead(e)
	for p.q.n > p.cap {
		p.onEvict(p.q.popTail())
	}
}

func (p *lruPolicy) touch(e *entry) {
	p.q.remove(e)
	e.where = qLRU
	p.q.pushHead(e)
}

func (p *lruPolicy) remove(e *entry) { p.q.remove(e) }

func (p *lruPolicy) reset() { p.q = fifo{} }
