package rcache

import (
	"repro/internal/cm"
	"repro/internal/hash"
	"repro/internal/telemetry"
)

// tinylfuPolicy implements W-TinyLFU (Einziger, Friedman & Manes, "TinyLFU:
// A Highly Efficient Cache Admission Policy") per shard:
//
//   - A small admission window (~1% of capacity, LRU) gives every new key a
//     brief residency so bursts are served while their frequency builds.
//   - The main region is a segmented LRU: probation (~20% of main) holds
//     admitted keys, protected (~80%) holds keys hit again after admission.
//   - Admission is frequency-based: a candidate evicted from the window
//     only enters main by beating main's eviction victim on estimated
//     access frequency. Frequencies live in a 4-bit count-min sketch
//     (cm.Sketch4) fronted by a doorkeeper Bloom filter that absorbs the
//     long tail of once-seen keys; both decay by halving every sampleCap
//     accesses, so the filter ranks recent popularity, not lifetime counts.
//
// The result: a one-hit wonder can never displace a proven-hot entry —
// the admission duel it would have to win is against exactly that entry.
type tinylfuPolicy struct {
	cap          int
	windowCap    int
	mainCap      int
	protectedCap int

	window    fifo
	probation fifo
	protected fifo

	sketch    *cm.Sketch4
	door      doorkeeper
	samples   int
	sampleCap int

	onEvict func(*entry)
	rejects *telemetry.Counter
}

func newTinyLFU(cap int, onEvict func(*entry), rejects *telemetry.Counter) *tinylfuPolicy {
	windowCap := cap / 100
	if windowCap < 1 {
		windowCap = 1
	}
	mainCap := cap - windowCap
	protectedCap := mainCap * 4 / 5
	return &tinylfuPolicy{
		cap:          cap,
		windowCap:    windowCap,
		mainCap:      mainCap,
		protectedCap: protectedCap,
		sketch:       cm.New4(cap, 0x7f4a7c15),
		door:         newDoorkeeper(cap),
		sampleCap:    10 * cap,
		onEvict:      onEvict,
		rejects:      rejects,
	}
}

// record counts one access to h. The doorkeeper absorbs first-time keys —
// the zipf tail that would otherwise pollute the sketch's 4-bit counters —
// and only repeat offenders reach the count-min rows. When the sample
// window fills, both halves decay: the sketch halves its counters and the
// doorkeeper clears, turning lifetime counts into recency-weighted ones.
func (p *tinylfuPolicy) record(h uint64) {
	if p.door.insert(h) {
		p.sketch.Inc(h)
	}
	p.samples++
	if p.samples >= p.sampleCap {
		p.sketch.Halve()
		p.door.clear()
		p.samples /= 2
	}
}

// freq estimates h's recorded access frequency: the sketch count plus the
// doorkeeper bit it absorbed.
func (p *tinylfuPolicy) freq(h uint64) uint32 {
	f := p.sketch.Estimate(h)
	if p.door.test(h) {
		f++
	}
	return f
}

func (p *tinylfuPolicy) add(e *entry) {
	p.record(e.hash)
	e.where = qWindow
	p.window.pushHead(e)
	for p.window.n > p.windowCap {
		c := p.window.popTail()
		if p.probation.n+p.protected.n < p.mainCap {
			c.where = qProbation
			p.probation.pushHead(c)
			continue
		}
		victim := p.probation.tail
		if victim == nil {
			victim = p.protected.tail
		}
		if victim == nil || p.freq(c.hash) > p.freq(victim.hash) {
			if victim != nil {
				p.remove(victim)
				p.onEvict(victim)
			}
			c.where = qProbation
			p.probation.pushHead(c)
			continue
		}
		// The candidate's frequency does not justify evicting a proven
		// entry: admission denied.
		p.rejects.Inc()
		p.onEvict(c)
	}
}

func (p *tinylfuPolicy) touch(e *entry) {
	p.record(e.hash)
	switch e.where {
	case qWindow:
		p.window.remove(e)
		e.where = qWindow
		p.window.pushHead(e)
	case qProbation:
		// Hit after admission: promote into protected, demoting its
		// coldest occupant back to probation when full.
		p.probation.remove(e)
		e.where = qProtected
		p.protected.pushHead(e)
		for p.protected.n > p.protectedCap {
			d := p.protected.popTail()
			d.where = qProbation
			p.probation.pushHead(d)
		}
	case qProtected:
		p.protected.remove(e)
		e.where = qProtected
		p.protected.pushHead(e)
	}
}

func (p *tinylfuPolicy) remove(e *entry) {
	switch e.where {
	case qProbation:
		p.probation.remove(e)
	case qProtected:
		p.protected.remove(e)
	default:
		p.window.remove(e)
	}
}

func (p *tinylfuPolicy) reset() {
	p.window = fifo{}
	p.probation = fifo{}
	p.protected = fifo{}
	p.sketch.Reset()
	p.door.clear()
	p.samples = 0
}

// doorkeeper is the Bloom filter in front of the frequency sketch: two
// probes derived from one extra hash round over the (already mixed) key
// hash. Sized at ~8 bits per cache entry its false-positive rate stays low
// enough that the sketch only sees genuinely repeated keys.
type doorkeeper struct {
	bits []uint64
	mask uint32
}

func newDoorkeeper(entries int) doorkeeper {
	bits := 512
	for bits < 8*entries {
		bits <<= 1
	}
	return doorkeeper{bits: make([]uint64, bits/64), mask: uint32(bits - 1)}
}

func (d *doorkeeper) probes(h uint64) (uint32, uint32) {
	g := hash.U64(h, 0xd00c)
	return uint32(g) & d.mask, uint32(g>>32) & d.mask
}

// insert sets h's bits, reporting whether they were ALL already set (h was
// plausibly seen before).
func (d *doorkeeper) insert(h uint64) bool {
	p1, p2 := d.probes(h)
	w1, b1 := p1>>6, uint64(1)<<(p1&63)
	w2, b2 := p2>>6, uint64(1)<<(p2&63)
	seen := d.bits[w1]&b1 != 0 && d.bits[w2]&b2 != 0
	d.bits[w1] |= b1
	d.bits[w2] |= b2
	return seen
}

func (d *doorkeeper) test(h uint64) bool {
	p1, p2 := d.probes(h)
	return d.bits[p1>>6]&(1<<(p1&63)) != 0 && d.bits[p2>>6]&(1<<(p2&63)) != 0
}

func (d *doorkeeper) clear() { clear(d.bits) }
