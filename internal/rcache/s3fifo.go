package rcache

import "repro/internal/telemetry"

// s3fifoPolicy implements S3-FIFO ("FIFO queues are all you need for cache
// eviction", Yang et al., SOSP '23): three queues per shard.
//
//   - small (~10% of capacity) is probation: every new key lands here, and
//     a key never accessed again is evicted from its tail without ever
//     touching main — the one-hit wonders that dominate zipfian tails stop
//     displacing the hot head.
//   - main (~90%) holds survivors. Eviction scans from the tail with lazy
//     promotion: an entry accessed since it was last considered gets its
//     access bits decremented and reinserted at the head instead of dying,
//     a CLOCK-like second chance without any per-access list move.
//   - ghost remembers the hashes of keys recently evicted from small. A
//     returning ghost key skips probation and enters main directly — the
//     signal that it was demoted too eagerly.
//
// Hits only saturate a 2-bit counter (no list movement), so the hit path
// is cheaper than LRU's move-to-front; all queue surgery happens at
// insert/evict time.
type s3fifoPolicy struct {
	cap      int
	smallCap int
	small    fifo
	main     fifo
	ghost    ghostQueue
	onEvict  func(*entry)
	ghostHit *telemetry.Counter
}

// s3MaxFreq saturates the per-entry access counter: the original design's
// 2-bit cap, enough to distinguish warm from hot without letting an old
// burst defer eviction forever.
const s3MaxFreq = 3

func newS3FIFO(cap int, onEvict func(*entry), ghostHit *telemetry.Counter) *s3fifoPolicy {
	smallCap := cap / 10
	if smallCap < 1 {
		smallCap = 1
	}
	return &s3fifoPolicy{
		cap:      cap,
		smallCap: smallCap,
		ghost:    newGhostQueue(cap),
		onEvict:  onEvict,
		ghostHit: ghostHit,
	}
}

func (p *s3fifoPolicy) add(e *entry) {
	if p.ghost.remove(e.hash) {
		// The key was evicted recently and came back: probation already
		// judged it wrong once, so it enters main directly.
		p.ghostHit.Inc()
		e.where = qMain
		p.main.pushHead(e)
	} else {
		e.where = qSmall
		p.small.pushHead(e)
	}
	for p.small.n+p.main.n > p.cap {
		p.evictOne()
	}
}

// evictOne makes one unit of progress toward capacity: it either evicts an
// entry or moves one small survivor into main / reinserts one main entry
// with a decremented counter, both of which strictly reduce the remaining
// work, so the caller's loop terminates.
func (p *s3fifoPolicy) evictOne() {
	if p.small.n >= p.smallCap || p.main.n == 0 {
		s := p.small.popTail()
		if s.freq > 0 {
			// Accessed since insertion: survived probation, promote.
			s.freq = 0
			s.where = qMain
			p.main.pushHead(s)
			return
		}
		p.ghost.add(s.hash)
		p.onEvict(s)
		return
	}
	m := p.main.popTail()
	if m.freq > 0 {
		m.freq--
		m.where = qMain
		p.main.pushHead(m)
		return
	}
	p.onEvict(m)
}

func (p *s3fifoPolicy) touch(e *entry) {
	if e.freq < s3MaxFreq {
		e.freq++
	}
}

func (p *s3fifoPolicy) remove(e *entry) {
	if e.where == qMain {
		p.main.remove(e)
	} else {
		p.small.remove(e)
	}
}

func (p *s3fifoPolicy) reset() {
	p.small = fifo{}
	p.main = fifo{}
	p.ghost.reset()
}

// ghostQueue is S3-FIFO's memory of recently evicted keys: a fixed ring of
// key hashes plus a multiset for O(1) membership. It stores no entry
// bodies — a ghost costs 8 bytes of ring plus a map cell, so remembering
// as many ghosts as the cache holds entries is cheap.
type ghostQueue struct {
	ring []uint64
	head int
	n    int
	set  map[uint64]uint8
}

func newGhostQueue(cap int) ghostQueue {
	return ghostQueue{ring: make([]uint64, cap), set: make(map[uint64]uint8, cap)}
}

func (g *ghostQueue) add(h uint64) {
	if len(g.ring) == 0 {
		return
	}
	if g.n == len(g.ring) {
		g.forget(g.ring[g.head])
	} else {
		g.n++
	}
	g.ring[g.head] = h
	g.head = (g.head + 1) % len(g.ring)
	g.set[h]++
}

// remove reports whether h is a ghost, consuming one membership. The ring
// slot stays behind and is reconciled by forget when it ages out — an
// approximation (a popped stale slot can debit a newer instance of the
// same hash) that never affects correctness, only the one-bit routing
// hint.
func (g *ghostQueue) remove(h uint64) bool {
	if g.set[h] == 0 {
		return false
	}
	g.forget(h)
	return true
}

func (g *ghostQueue) forget(h uint64) {
	if c := g.set[h]; c <= 1 {
		delete(g.set, h)
	} else {
		g.set[h] = c - 1
	}
}

func (g *ghostQueue) reset() {
	g.head, g.n = 0, 0
	clear(g.set)
}
