package rcache

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stream"
)

type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		ok       bool
	}{
		{"", PolicyLRU, true},
		{"lru", PolicyLRU, true},
		{"s3fifo", PolicyS3FIFO, true},
		{"tinylfu", PolicyTinyLFU, true},
		{"arc", "", false},
		{"LRU", "", false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePolicy(%q) = (%q, %v), want (%q, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	clk := &manualClock{now: time.Unix(0, 0)}
	c := New(Config{Capacity: 16, TTL: time.Second, Clock: clk.Now})
	computes := 0
	get := func() (any, bool) {
		v, cached, err := c.Do("k", 0, false, func() (any, error) {
			computes++
			return computes, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, cached
	}
	if v, cached := get(); cached || v.(int) != 1 {
		t.Fatalf("first get = (%v, cached=%v)", v, cached)
	}
	if v, cached := get(); !cached || v.(int) != 1 {
		t.Fatalf("second get = (%v, cached=%v), want cached 1", v, cached)
	}
	clk.Advance(2 * time.Second)
	// SWR is off, so an expired entry is a plain miss.
	if v, cached := get(); cached || v.(int) != 2 {
		t.Fatalf("post-TTL get = (%v, cached=%v), want recomputed 2", v, cached)
	}
}

func TestCacheImmutableIgnoresTTL(t *testing.T) {
	clk := &manualClock{now: time.Unix(0, 0)}
	c := New(Config{Capacity: 16, Shards: 1, TTL: time.Millisecond, Clock: clk.Now})
	computes := 0
	get := func(gen uint64) (any, bool) {
		v, cached, err := c.Do("k", gen, true, func() (any, error) {
			computes++
			return computes, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, cached
	}
	get(3)
	clk.Advance(time.Hour)
	if v, cached := get(3); !cached || v.(int) != 1 {
		t.Fatalf("immutable entry expired: (%v, cached=%v)", v, cached)
	}
	// A new generation invalidates wholesale.
	if v, cached := get(4); cached || v.(int) != 2 {
		t.Fatalf("stale-generation entry served: (%v, cached=%v)", v, cached)
	}
	if inv := c.Stats().Invalidations; inv != 1 {
		t.Errorf("invalidations = %d, want 1", inv)
	}
}

func TestCacheGenerationDropsOlderEntries(t *testing.T) {
	c := New(Config{Capacity: 16, Shards: 1, TTL: time.Minute})
	for i := 0; i < 8; i++ {
		key := string(rune('a' + i))
		if _, _, err := c.Do(key, 1, true, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Stats().Entries; n != 8 {
		t.Fatalf("entries = %d, want 8", n)
	}
	// First access at generation 2 drops all generation-1 entries — an O(1)
	// map swap, not a per-entry sweep, but the counters still tally each
	// discarded entry.
	if _, _, err := c.Do("z", 2, true, func() (any, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Invalidations != 8 {
		t.Errorf("after generation bump: entries=%d invalidations=%d, want 1/8", st.Entries, st.Invalidations)
	}
}

func TestCacheShardedGenerationInvalidatesLazily(t *testing.T) {
	// With multiple shards, a generation advance lands on each shard the
	// first time that shard is accessed with the new label — stale entries
	// in untouched shards are unreachable (lookups carry the generation)
	// and are reclaimed on their shard's next access.
	c := New(Config{Capacity: 64, Shards: 4, TTL: time.Minute})
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = "key-" + strconv.Itoa(i)
		if _, _, err := c.Do(keys[i], 1, true, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Touch every key at generation 2: every shard observes the advance.
	for i, key := range keys {
		v, cached, err := c.Do(key, 2, true, func() (any, error) { return i + 100, nil })
		if err != nil {
			t.Fatal(err)
		}
		if cached || v.(int) != i+100 {
			t.Fatalf("key %q at gen 2 = (%v, cached=%v), want recompute", key, v, cached)
		}
	}
	st := c.Stats()
	if st.Entries != 16 || st.Invalidations != 16 || st.Generation != 2 {
		t.Errorf("entries=%d invalidations=%d gen=%d, want 16/16/2", st.Entries, st.Invalidations, st.Generation)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(Config{Capacity: 3, Shards: 1, TTL: time.Minute})
	get := func(key string) {
		if _, _, err := c.Do(key, 0, false, func() (any, error) { return key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("c")
	get("a") // refresh a; b becomes LRU
	get("d") // evicts b
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 3/1", st.Entries, st.Evictions)
	}
	if _, cached, _ := c.Do("b", 0, false, func() (any, error) { return "b", nil }); cached {
		t.Error("evicted entry b still served")
	}
	if _, cached, _ := c.Do("a", 0, false, func() (any, error) { return "a", nil }); !cached {
		t.Error("recently used entry a evicted")
	}
}

func TestCacheSingleflightCollapses(t *testing.T) {
	c := New(Config{Capacity: 16, TTL: time.Minute})
	var computes atomic.Uint64
	release := make(chan struct{})
	var wg sync.WaitGroup
	const clients = 32
	results := make([]any, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("hot", 0, false, func() (any, error) {
				computes.Add(1)
				<-release
				return "answer", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let the herd pile up behind the first flight, then release it.
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times for %d concurrent identical queries", got, clients)
	}
	for i, v := range results {
		if v != "answer" {
			t.Fatalf("client %d got %v", i, v)
		}
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := New(Config{Capacity: 16, TTL: time.Minute})
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, cached, err := c.Do("k", 0, false, func() (any, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) || cached {
			t.Fatalf("attempt %d: err=%v cached=%v", i, err, cached)
		}
	}
	if calls != 3 {
		t.Errorf("error was cached: %d computes for 3 calls", calls)
	}
}

func TestCacheStaleGenerationCannotEvictFresh(t *testing.T) {
	// A request still holding a pre-seal generation must neither serve nor
	// evict the current generation's entry: each generation's entries and
	// flights are isolated, and stores against a superseded generation are
	// refused outright.
	c := New(Config{Capacity: 16, TTL: time.Minute})
	fresh := 0
	get := func(gen uint64) (any, bool) {
		v, cached, err := c.Do("k", gen, true, func() (any, error) {
			fresh++
			return gen, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, cached
	}
	get(2) // current generation computes and caches
	if v, cached := get(1); cached || v.(uint64) != 1 {
		t.Fatalf("stale-generation request served (%v, cached=%v)", v, cached)
	}
	// The fresh generation-2 entry must have survived the stale access.
	if v, cached := get(2); !cached || v.(uint64) != 2 {
		t.Fatalf("generation-2 entry evicted by stale request: (%v, cached=%v)", v, cached)
	}
	if fresh != 2 {
		t.Errorf("%d computes, want 2 (one per generation)", fresh)
	}
}

func TestCacheCoalescedErrorNotCountedAsHit(t *testing.T) {
	// A waiter that joins an in-flight computation which then fails was NOT
	// served by the cache. The old cache counted the join as a hit up
	// front; the rebuilt one counts hits only after the flight succeeds and
	// tallies the failure separately.
	c := New(Config{Capacity: 16, TTL: time.Minute})
	boom := errors.New("boom")
	enter := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := c.Do("k", 0, false, func() (any, error) {
			close(enter)
			<-release
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Errorf("flight owner err = %v", err)
		}
	}()
	<-enter
	joined := make(chan struct{})
	go func() {
		defer close(joined)
		_, cached, err := c.Do("k", 0, false, func() (any, error) {
			t.Error("waiter ran compute despite in-flight computation")
			return nil, nil
		})
		if !errors.Is(err, boom) || cached {
			t.Errorf("waiter = (cached=%v, err=%v), want joined error", cached, err)
		}
	}()
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	<-joined
	st := c.Stats()
	if st.Hits != 0 {
		t.Errorf("hits = %d, want 0 (errored flight must not count as a hit)", st.Hits)
	}
	if st.Coalesced != 1 || st.CoalescedErrors != 1 {
		t.Errorf("coalesced=%d coalescedErrors=%d, want 1/1", st.Coalesced, st.CoalescedErrors)
	}
	if st.HitRate != 0 {
		t.Errorf("hit rate = %v, want 0", st.HitRate)
	}
}

func TestCacheSWRServesStaleWhileRevalidating(t *testing.T) {
	clk := &manualClock{now: time.Unix(0, 0)}
	c := New(Config{Capacity: 16, TTL: time.Second, SWR: 10 * time.Second, Clock: clk.Now})
	var computes atomic.Int64
	refreshed := make(chan struct{})
	compute := func() (any, error) {
		n := computes.Add(1)
		if n == 2 {
			defer close(refreshed)
		}
		return int(n), nil
	}
	if v, cached, _ := c.Do("k", 0, false, compute); cached || v.(int) != 1 {
		t.Fatalf("first get = (%v, cached=%v)", v, cached)
	}
	clk.Advance(2 * time.Second) // expired, inside the SWR window

	// Every stale hit inside the window serves the old value immediately;
	// exactly one background flight refreshes.
	for i := 0; i < 4; i++ {
		v, cached, err := c.Do("k", 0, false, compute)
		if err != nil {
			t.Fatal(err)
		}
		if !cached || v.(int) != 1 {
			t.Fatalf("stale get %d = (%v, cached=%v), want stale 1 served", i, v, cached)
		}
	}
	<-refreshed
	if got := computes.Load(); got != 2 {
		t.Fatalf("computes = %d, want 2 (one initial, one revalidation)", got)
	}
	// The refreshed value replaces the stale entry; poll because the
	// background flight settles after publishing to waiters.
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, cached, _ := c.Do("k", 0, false, compute)
		if cached && v.(int) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refreshed value never served: (%v, cached=%v)", v, cached)
		}
		time.Sleep(time.Millisecond)
	}
	st := c.Stats()
	if st.StaleServed != 4 {
		t.Errorf("staleServed = %d, want 4", st.StaleServed)
	}
}

func TestCacheSWRExpiryDuringRevalidationJoinsFlight(t *testing.T) {
	// The race from the issue: an entry expires past its whole SWR window
	// WHILE a revalidation flight is still running. The late caller must
	// join that flight (it is registered in the inflight map), not start a
	// second compute.
	clk := &manualClock{now: time.Unix(0, 0)}
	c := New(Config{Capacity: 16, TTL: time.Second, SWR: 5 * time.Second, Clock: clk.Now})
	var computes atomic.Int64
	enter := make(chan struct{})
	release := make(chan struct{})
	first := func() (any, error) { computes.Add(1); return "old", nil }
	slow := func() (any, error) {
		computes.Add(1)
		close(enter)
		<-release
		return "new", nil
	}
	if _, _, err := c.Do("k", 0, false, first); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second) // stale, inside SWR
	if v, cached, _ := c.Do("k", 0, false, slow); !cached || v.(string) != "old" {
		t.Fatalf("stale get = (%v, cached=%v), want old served", v, cached)
	}
	<-enter                // revalidation flight is now in progress
	clk.Advance(time.Hour) // the entry is now beyond its SWR window entirely

	got := make(chan any, 1)
	go func() {
		v, _, err := c.Do("k", 0, false, func() (any, error) {
			t.Error("late caller recomputed instead of joining the revalidation flight")
			return nil, nil
		})
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if v := <-got; v.(string) != "new" {
		t.Fatalf("late caller got %v, want the revalidated value", v)
	}
	if n := computes.Load(); n != 2 {
		t.Errorf("computes = %d, want 2", n)
	}
}

func TestCacheSWRRevalidationErrorReleasesClaim(t *testing.T) {
	clk := &manualClock{now: time.Unix(0, 0)}
	c := New(Config{Capacity: 16, TTL: time.Second, SWR: time.Minute, Clock: clk.Now})
	if _, _, err := c.Do("k", 0, false, func() (any, error) { return "v", nil }); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	boom := errors.New("boom")
	fail := make(chan struct{})
	if v, cached, _ := c.Do("k", 0, false, func() (any, error) {
		defer close(fail)
		return nil, boom
	}); !cached || v.(string) != "v" {
		t.Fatalf("stale get = (%v, cached=%v)", v, cached)
	}
	<-fail
	// The failed revalidation must release the claim so a later stale hit
	// can try again. Poll: settle runs after the flight publishes. The
	// retry compute runs on a background revalidation goroutine, so the
	// flag is atomic.
	var retried atomic.Bool
	deadline := time.Now().Add(2 * time.Second)
	for !retried.Load() && time.Now().Before(deadline) {
		if v, cached, _ := c.Do("k", 0, false, func() (any, error) {
			retried.Store(true)
			return "v2", nil
		}); !cached || v.(string) != "v" {
			t.Fatalf("stale get after failed revalidation = (%v, cached=%v)", v, cached)
		}
		time.Sleep(time.Millisecond)
	}
	if !retried.Load() {
		t.Fatal("revalidation claim never released after a failed flight")
	}
}

var errAbsent = errors.New("absent")

func TestCacheNegativeCaching(t *testing.T) {
	clk := &manualClock{now: time.Unix(0, 0)}
	c := New(Config{
		Capacity:       16,
		TTL:            time.Minute,
		NegTTL:         time.Second,
		CacheableError: func(err error) bool { return errors.Is(err, errAbsent) },
		Clock:          clk.Now,
	})
	computes := 0
	get := func() (bool, error) {
		_, cached, err := c.Do("missing", 0, false, func() (any, error) {
			computes++
			return nil, errAbsent
		})
		return cached, err
	}
	if cached, err := get(); cached || !errors.Is(err, errAbsent) {
		t.Fatalf("first get = (cached=%v, err=%v)", cached, err)
	}
	// Repeat probes are served the cached error without reaching compute.
	for i := 0; i < 3; i++ {
		if cached, err := get(); !cached || !errors.Is(err, errAbsent) {
			t.Fatalf("probe %d = (cached=%v, err=%v), want cached error", i, cached, err)
		}
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1 (negative entry must absorb probes)", computes)
	}
	clk.Advance(2 * time.Second)
	if cached, _ := get(); cached {
		t.Fatal("negative entry served past NegTTL")
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2 after NegTTL expiry", computes)
	}
	st := c.Stats()
	if st.NegativeHits != 3 {
		t.Errorf("negative hits = %d, want 3", st.NegativeHits)
	}
	// Non-cacheable errors still bypass the cache entirely.
	other := errors.New("transient")
	calls := 0
	for i := 0; i < 2; i++ {
		_, cached, err := c.Do("flaky", 0, false, func() (any, error) {
			calls++
			return nil, other
		})
		if cached || !errors.Is(err, other) {
			t.Fatalf("transient probe = (cached=%v, err=%v)", cached, err)
		}
	}
	if calls != 2 {
		t.Errorf("transient error was cached: %d computes", calls)
	}
}

func TestCacheLookupManyStoreMany(t *testing.T) {
	clk := &manualClock{now: time.Unix(0, 0)}
	c := New(Config{Capacity: 64, TTL: time.Second, SWR: time.Minute, Clock: clk.Now})
	keys := []string{"a", "b", "c", "d"}
	vals, stale := c.LookupMany(keys, 1)
	if len(stale) != 0 {
		t.Fatalf("fresh cache returned stale claims %v", stale)
	}
	for i, v := range vals {
		if v != nil {
			t.Fatalf("fresh cache hit at %d: %v", i, v)
		}
	}
	c.StoreMany(keys, 1, false, []any{1, 2, 3, 4})
	vals, stale = c.LookupMany(keys, 1)
	if len(stale) != 0 {
		t.Fatalf("fresh entries claimed stale: %v", stale)
	}
	for i, v := range vals {
		if v != i+1 {
			t.Fatalf("vals[%d] = %v, want %d", i, v, i+1)
		}
	}
	// Expire into the SWR window: values still served, every index claimed
	// stale exactly once across calls.
	clk.Advance(2 * time.Second)
	vals, stale = c.LookupMany(keys, 1)
	if len(stale) != len(keys) {
		t.Fatalf("stale claims = %v, want all %d indices", stale, len(keys))
	}
	for i, v := range vals {
		if v != i+1 {
			t.Fatalf("stale vals[%d] = %v, want %d", i, v, i+1)
		}
	}
	if _, stale = c.LookupMany(keys, 1); len(stale) != 0 {
		t.Fatalf("second probe re-claimed stale indices %v", stale)
	}
	// StoreMany discharges the claims with fresh values.
	c.StoreMany(keys, 1, false, []any{10, 20, 30, 40})
	vals, stale = c.LookupMany(keys, 1)
	if len(stale) != 0 {
		t.Fatalf("refreshed entries claimed stale: %v", stale)
	}
	for i, v := range vals {
		if v != (i+1)*10 {
			t.Fatalf("refreshed vals[%d] = %v, want %d", i, v, (i+1)*10)
		}
	}
	// A store against a superseded generation is refused.
	c.LookupMany(keys, 2) // advances every shard that holds one of keys
	c.StoreMany(keys, 1, false, []any{0, 0, 0, 0})
	vals, _ = c.LookupMany(keys, 2)
	for i, v := range vals {
		if v != nil {
			t.Fatalf("superseded store visible at %d: %v", i, v)
		}
	}
}

func TestCacheS3FIFOGhostReadmission(t *testing.T) {
	c := New(Config{Capacity: 10, Shards: 1, Policy: PolicyS3FIFO, TTL: time.Minute})
	get := func(key string) {
		if _, _, err := c.Do(key, 0, false, func() (any, error) { return key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Fill small (cap/10 = 1) and overflow it so "g0" is evicted to ghost.
	get("g0")
	for i := 0; i < 9; i++ {
		get("fill-" + strconv.Itoa(i))
	}
	get("overflow") // pushes g0 (freq 0) out of small into ghost
	if c.Stats().Evictions == 0 {
		t.Fatal("no eviction after overflowing small queue")
	}
	// The returning key must be routed into main via the ghost queue.
	get("g0")
	if gh := c.Stats().GhostHits; gh != 1 {
		t.Errorf("ghost hits = %d, want 1", gh)
	}
}

func TestCacheTinyLFURejectsColdCandidates(t *testing.T) {
	c := New(Config{Capacity: 32, Shards: 1, Policy: PolicyTinyLFU, TTL: time.Minute})
	get := func(key string) {
		if _, _, err := c.Do(key, 0, false, func() (any, error) { return key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Build up frequency on a working set, then stream one-hit wonders
	// through: the admission filter should deny most of them.
	for round := 0; round < 5; round++ {
		for i := 0; i < 24; i++ {
			get("hot-" + strconv.Itoa(i))
		}
	}
	for i := 0; i < 200; i++ {
		get("cold-" + strconv.Itoa(i))
	}
	st := c.Stats()
	if st.AdmissionRejects == 0 {
		t.Fatal("TinyLFU never rejected a cold candidate")
	}
	// The hot set must have survived the scan.
	hits := 0
	for i := 0; i < 24; i++ {
		if _, cached, _ := c.Do("hot-"+strconv.Itoa(i), 0, false, func() (any, error) { return nil, nil }); cached {
			hits++
		}
	}
	if hits < 16 {
		t.Errorf("only %d/24 hot keys survived the cold scan", hits)
	}
}

// TestPolicyHitRatesUnderZipf is the acceptance criterion from the issue:
// on a zipf skew-1.1 trace at equal capacity, both admission-controlled
// policies must beat plain LRU's hit rate.
func TestPolicyHitRatesUnderZipf(t *testing.T) {
	trace := zipfTrace(200_000, 10_000, 1.1, 1)
	rate := func(policy string) float64 {
		c := New(Config{Capacity: 1024, Shards: 8, Policy: policy, TTL: time.Hour})
		for _, key := range trace {
			if _, _, err := c.Do(key, 0, false, func() (any, error) { return 1, nil }); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats().HitRate
	}
	lru := rate(PolicyLRU)
	s3 := rate(PolicyS3FIFO)
	tlfu := rate(PolicyTinyLFU)
	t.Logf("hit rates under zipf(skew=1.1, distinct=10k, cap=1k): lru=%.4f s3fifo=%.4f tinylfu=%.4f", lru, s3, tlfu)
	if s3 <= lru {
		t.Errorf("s3fifo hit rate %.4f does not beat lru %.4f", s3, lru)
	}
	if tlfu <= lru {
		t.Errorf("tinylfu hit rate %.4f does not beat lru %.4f", tlfu, lru)
	}
}

// zipfTrace materializes a shuffled zipf key trace as strings, the form
// cache keys take on the wire.
func zipfTrace(n, distinct int, skew float64, seed uint64) []string {
	s := stream.Zipf(n, distinct, skew, seed)
	keys := make([]string, len(s.Items))
	for i, it := range s.Items {
		keys[i] = "x/0/7/60/" + strconv.FormatUint(it.Key, 10)
	}
	return keys
}
