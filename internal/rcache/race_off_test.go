//go:build !race

package rcache

const raceEnabled = false
