package rcache

import (
	"testing"
	"time"
)

// TestCacheHitAllocFree pins the allocation contract of the serving hot
// path: a fresh-entry hit in Do builds the generation-labeled key in a
// stack buffer and probes the shard map through the alloc-free
// map[string(bytes)] form, so steady-state hits perform zero heap
// allocations. Only cold paths (a miss registering a flight, a stale entry
// claiming its refresh) materialize a retained key string.
//
// Judged on the best of a few attempts, like TestHotPathsAllocFree at the
// repo root: AllocsPerRun counts process-wide mallocs and interference
// only ever adds, while a real per-hit allocation shows up in every
// attempt.
func TestCacheHitAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	compute := func() (any, error) { return 1, nil }
	for _, policy := range []string{PolicyLRU, PolicyS3FIFO, PolicyTinyLFU} {
		c := New(Config{Capacity: 1024, Policy: policy, TTL: time.Hour})
		if _, cached, err := c.Do("x/0/7/60/12345", 0, false, compute); err != nil || cached {
			t.Fatalf("%s: warmup Do = cached %v, err %v", policy, cached, err)
		}
		best := 1e18
		for attempt := 0; attempt < 5 && best > 0; attempt++ {
			got := testing.AllocsPerRun(1000, func() {
				if _, cached, err := c.Do("x/0/7/60/12345", 0, false, compute); err != nil || !cached {
					t.Fatalf("%s: hit Do = cached %v, err %v", policy, cached, err)
				}
			})
			if got < best {
				best = got
			}
		}
		if best != 0 {
			t.Errorf("%s: fresh-entry hit allocates %.0f allocs/op, want 0", policy, best)
		}
	}
}
