// Package rcache is the serving plane's result cache: a sharded,
// policy-pluggable, epoch-aware cache with singleflight collapsing,
// stale-while-revalidate for TTL'd answers, and negative caching for
// deterministic errors.
//
// Entries are keyed by (query, sealed-set generation) and live in one of N
// power-of-two shards, each with its own mutex, entry map, inflight map,
// and eviction/admission policy instance — the hash of the base query key
// picks the shard, so all generations of a key contend on the same lock
// and concurrent load on distinct keys mostly does not contend at all.
//
// Two freshness regimes coexist, exactly as in the original queryd cache:
//
//   - Immutable entries (epochal backends): an answer derived only from
//     sealed windows cannot change while the generation holds, so it
//     caches with no TTL. When a new window seals the generation advances
//     and the shard discards its entire entry map in O(1) — no list walk
//     under the lock (the old cache swept every entry on each seal).
//   - TTL entries (live, cumulative backends): the answer drifts with
//     every ingested batch, so it expires after a short TTL. With
//     stale-while-revalidate enabled, an expired entry still inside the
//     SWR window is served immediately while ONE background flight
//     recomputes it — staleness costs freshness, never soundness, because
//     the certified interval remains correct for the state it was
//     computed from.
//
// Negative caching stores errors the configured predicate deems
// deterministic (an unknown agent stays unknown until new data arrives)
// for a short TTL, so repeated probes for absent keys stop reaching the
// backend.
package rcache

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Default sizing applied by New when Config leaves fields zero.
const (
	// DefaultCapacity is the total entry budget across all shards.
	DefaultCapacity = 4096
	// DefaultShards balances lock spreading against per-shard policy
	// overhead; at the default capacity each shard holds 512 entries.
	DefaultShards = 8
	// DefaultTTL bounds staleness for live (non-epochal) answers.
	DefaultTTL = 250 * time.Millisecond
)

// Config sizes and parameterizes a Cache. The zero value is usable: an
// LRU cache of DefaultCapacity entries across DefaultShards shards with
// DefaultTTL freshness, no SWR, and no negative caching.
type Config struct {
	// Capacity is the total entry budget, split evenly across shards.
	// Values below 1 mean DefaultCapacity.
	Capacity int
	// Shards is the shard count, rounded up to a power of two. Zero means
	// DefaultShards; 1 disables sharding (useful in tests that assert
	// exact eviction order).
	Shards int
	// Policy names the eviction/admission policy: PolicyLRU (default),
	// PolicyS3FIFO, or PolicyTinyLFU.
	Policy string
	// TTL bounds staleness of mutable entries. Values ≤ 0 mean
	// DefaultTTL.
	TTL time.Duration
	// SWR is the stale-while-revalidate window appended after TTL expiry:
	// an entry expired less than SWR ago is served immediately while a
	// single background flight refreshes it. Zero disables SWR.
	SWR time.Duration
	// NegTTL bounds how long a cacheable error is served from the cache.
	// Zero disables negative caching even when CacheableError is set.
	NegTTL time.Duration
	// CacheableError reports whether an error is deterministic enough to
	// cache (e.g. unknown-agent lookups). nil disables negative caching.
	CacheableError func(error) bool
	// Clock overrides wall time (tests).
	Clock func() time.Time
}

// Cache is the sharded result cache. All exported methods are safe for
// concurrent use.
type Cache struct {
	shards []*shard
	mask   uint64

	policy   string
	capacity int
	ttl      time.Duration
	swr      time.Duration
	negTTL   time.Duration
	clock    func() time.Time
	cachable func(error) bool

	// Counters are telemetry instruments (single atomic words) so the
	// cache's JSON stats and its Prometheus series read the same source of
	// truth. Increments happen under a shard mutex; the atomic
	// representation buys lock-free scrapes and cross-shard aggregation.
	hits             telemetry.Counter
	misses           telemetry.Counter
	coalesced        telemetry.Counter
	coalescedErrors  telemetry.Counter
	evictions        telemetry.Counter
	invalidations    telemetry.Counter
	ghostHits        telemetry.Counter
	admissionRejects telemetry.Counter
	staleServed      telemetry.Counter
	negHits          telemetry.Counter
}

// shard is one lock domain: a map of generation-labeled entries, the
// inflight computations for its keys, and a private policy instance.
type shard struct {
	mu       sync.Mutex
	gen      uint64 // highest generation observed by this shard
	entries  map[string]*entry
	inflight map[string]*flight
	pol      policy
}

// entry is one stored answer, intrusively linked into its shard's policy
// queues. A zero expires means immutable: valid while its generation
// holds. err non-nil marks a negative entry (a cached deterministic
// error).
type entry struct {
	key  string // generation-labeled: base + "@" + gen
	hash uint64 // hash of the BASE key, shared by the policy sketches
	val  any
	err  error

	expires  time.Time // zero: immutable
	swrUntil time.Time // end of the stale-while-revalidate window
	// revalidating marks that a background refresh flight has been
	// claimed for this stale entry, so concurrent stale hits do not pile
	// on redundant recomputes.
	revalidating bool

	// Intrusive policy state: linkage, queue tag, and the S3-FIFO access
	// counter. Owned by the shard's policy under the shard mutex.
	prev, next *entry
	where      int8
	freq       uint8
}

// flight is one in-progress computation; waiters block on done and share
// the result.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New builds a cache from cfg. Unknown policy names fall back to LRU —
// callers that need strictness validate with ParsePolicy first.
func New(cfg Config) *Cache {
	if cfg.Capacity < 1 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.Shards < 1 {
		cfg.Shards = DefaultShards
	}
	nshards := 1
	for nshards < cfg.Shards {
		nshards <<= 1
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	pol, err := ParsePolicy(cfg.Policy)
	if err != nil {
		pol = PolicyLRU
	}
	c := &Cache{
		shards:   make([]*shard, nshards),
		mask:     uint64(nshards - 1),
		policy:   pol,
		capacity: cfg.Capacity,
		ttl:      cfg.TTL,
		swr:      cfg.SWR,
		negTTL:   cfg.NegTTL,
		clock:    cfg.Clock,
		cachable: cfg.CacheableError,
	}
	perShard := cfg.Capacity / nshards
	if perShard < 1 {
		perShard = 1
	}
	for i := range c.shards {
		sh := &shard{
			entries:  make(map[string]*entry),
			inflight: make(map[string]*flight),
		}
		sh.pol = newPolicy(pol, perShard, c, func(e *entry) {
			c.evictions.Inc()
			delete(sh.entries, e.key)
		})
		c.shards[i] = sh
	}
	return c
}

// hashKey is inline FNV-1a 64 over the base key: good dispersion for the
// short structured query keys this cache sees, zero allocations, and no
// seed state to thread around.
func hashKey(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// shardFor picks the shard by the BASE key, not the generation-labeled
// one, so all generations of a key live behind the same lock and a
// generation advance settles per shard exactly once.
func (c *Cache) shardFor(h uint64) *shard { return c.shards[h&c.mask] }

// observe folds a newly seen generation into the shard: everything stored
// under older generations is unreachable (lookups always carry the
// current generation label), so the shard discards its entry map and
// policy state wholesale — O(1) in the entry count modulo GC, where the
// old cache walked its whole LRU list under the global lock on every
// seal. Callers hold sh.mu.
func (c *Cache) observe(sh *shard, gen uint64) {
	if gen <= sh.gen {
		return
	}
	sh.gen = gen
	if n := len(sh.entries); n > 0 {
		c.invalidations.Add(uint64(n))
		sh.entries = make(map[string]*entry)
		sh.pol.reset()
	}
}

// genLabel renders the generation suffix appended to cache keys.
func genLabel(gen uint64) string { return "@" + strconv.FormatUint(gen, 10) }

// appendGenKey renders the generation-labeled cache key into dst. Hot
// paths build the key in a stack buffer and probe maps via the
// alloc-free map[string(bytes)] form, materializing a retained string
// only when an entry or flight is actually registered.
func appendGenKey(dst []byte, key string, gen uint64) []byte {
	dst = append(dst, key...)
	dst = append(dst, '@')
	return strconv.AppendUint(dst, gen, 10)
}

// Do returns the cached answer for key at generation gen, computing it at
// most once across concurrent callers on a miss. immutable marks answers
// derived only from sealed state (no TTL). cached reports whether the
// caller was served without running compute — a fresh entry, a stale
// entry inside the SWR window, or a collapsed concurrent flight that
// succeeded.
//
// Entries and in-flight computations are stored under (key, gen), not key
// alone: a request still holding a pre-seal generation can neither evict
// the current generation's entry nor join (or be joined by) a flight from
// a different generation — it recomputes under its own label, and the
// store of its soon-unreachable answer is refused outright.
func (c *Cache) Do(key string, gen uint64, immutable bool, compute func() (any, error)) (val any, cached bool, err error) {
	var kbuf [64]byte
	kb := appendGenKey(kbuf[:0], key, gen)
	h := hashKey(key)
	sh := c.shardFor(h)

	sh.mu.Lock()
	c.observe(sh, gen)
	if e, ok := sh.entries[string(kb)]; ok {
		now := c.clock()
		switch {
		case e.err != nil:
			// Negative entry: serve the cached error while it is fresh.
			if e.expires.After(now) {
				c.hits.Inc()
				c.negHits.Inc()
				sh.pol.touch(e)
				err := e.err
				sh.mu.Unlock()
				return nil, true, err
			}
			sh.drop(e)
		case e.expires.IsZero() || e.expires.After(now):
			c.hits.Inc()
			sh.pol.touch(e)
			val := e.val
			sh.mu.Unlock()
			return val, true, nil
		case e.swrUntil.After(now):
			// Expired but inside the SWR window: serve stale now, refresh
			// in the background at most once. The background flight lives
			// in the inflight map, so a caller arriving after the entry
			// ages out entirely joins it instead of recomputing.
			c.hits.Inc()
			c.staleServed.Inc()
			sh.pol.touch(e)
			// e.key IS the generation-labeled key, already retained — no
			// new string even when claiming the refresh flight.
			if !e.revalidating && sh.inflight[e.key] == nil {
				e.revalidating = true
				f := &flight{done: make(chan struct{})}
				sh.inflight[e.key] = f
				go c.runFlight(sh, e.key, h, gen, immutable, f, compute)
			}
			val := e.val
			sh.mu.Unlock()
			return val, true, nil
		default:
			sh.drop(e)
		}
	}
	if f, ok := sh.inflight[string(kb)]; ok {
		c.coalesced.Inc()
		sh.mu.Unlock()
		<-f.done
		if f.err != nil {
			// A waiter that receives an error was NOT served by the
			// cache; counting it as a hit would let failed computes
			// inflate the hit rate (the old cache's accounting bug).
			c.coalescedErrors.Inc()
			return f.val, false, f.err
		}
		c.hits.Inc()
		return f.val, true, f.err
	}
	genKey := string(kb) // miss path: the flight and entry retain the key
	f := &flight{done: make(chan struct{})}
	sh.inflight[genKey] = f
	c.misses.Inc()
	sh.mu.Unlock()

	f.val, f.err = compute()
	close(f.done)
	c.settle(sh, genKey, h, gen, immutable, f)
	return f.val, false, f.err
}

// runFlight is the background half of stale-while-revalidate: compute,
// publish to waiters, settle into the shard.
func (c *Cache) runFlight(sh *shard, genKey string, h, gen uint64, immutable bool, f *flight, compute func() (any, error)) {
	f.val, f.err = compute()
	close(f.done)
	c.settle(sh, genKey, h, gen, immutable, f)
}

// settle removes a resolved flight and stores its outcome: successful
// values always, cacheable errors when negative caching is on, everything
// else clears the claim so a later stale hit may retry. Stores are
// refused when the shard has moved past gen — a stale-generation answer
// is unreachable from the moment it lands, and letting it in would only
// squat capacity.
func (c *Cache) settle(sh *shard, genKey string, h, gen uint64, immutable bool, f *flight) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.inflight, genKey)
	if gen != sh.gen {
		return
	}
	switch {
	case f.err == nil:
		c.store(sh, genKey, h, f.val, nil, immutable)
	case c.cachable != nil && c.negTTL > 0 && c.cachable(f.err):
		c.store(sh, genKey, h, nil, f.err, false)
	default:
		// Transient failure: if this was a revalidation flight the stale
		// entry is still present — release the claim so the next stale
		// hit can try again.
		if e, ok := sh.entries[genKey]; ok {
			e.revalidating = false
		}
	}
}

// store replaces any existing entry under genKey and offers the new one
// to the policy. The entry enters the map BEFORE the policy sees it: an
// admission-controlled policy may evict the candidate itself, and the
// eviction callback unconditionally deletes by key. Callers hold sh.mu.
func (c *Cache) store(sh *shard, genKey string, h uint64, val any, err error, immutable bool) {
	if old, ok := sh.entries[genKey]; ok {
		sh.pol.remove(old)
		delete(sh.entries, genKey)
	}
	e := &entry{key: genKey, hash: h, val: val, err: err}
	now := c.clock()
	switch {
	case err != nil:
		e.expires = now.Add(c.negTTL)
	case !immutable:
		e.expires = now.Add(c.ttl)
		if c.swr > 0 {
			e.swrUntil = e.expires.Add(c.swr)
		}
	}
	sh.entries[genKey] = e
	sh.pol.add(e)
}

// drop removes one entry without counting an eviction (expiry,
// supersession). Callers hold sh.mu.
func (sh *shard) drop(e *entry) {
	sh.pol.remove(e)
	delete(sh.entries, e.key)
}

// LookupMany probes every key at generation gen without computing
// anything — the probe half of the batch path, which collapses all of a
// request's misses into one backend call instead of singleflighting them
// individually. Returns one value per key (nil marking a miss) plus the
// indices of entries that were served stale under SWR with the
// revalidation claim handed to THIS caller: the caller must refresh those
// keys (typically alongside its misses) and StoreMany the results, or the
// entries stay stale until their SWR window lapses.
//
// Keys are grouped by shard so each shard's mutex is taken at most once
// per call — batch probing never undoes the lock amortization the batch
// exists for. Negative entries never match here; the batch path computes
// per-key answers, not per-key errors.
func (c *Cache) LookupMany(keys []string, gen uint64) (vals []any, stale []int) {
	vals = make([]any, len(keys))
	hashes := make([]uint64, len(keys))
	for i, key := range keys {
		hashes[i] = hashKey(key)
	}
	kb := make([]byte, 0, 64) // one probe buffer for the whole batch
	now := c.clock()
	for si, sh := range c.shards {
		sh.mu.Lock()
		c.observe(sh, gen)
		for i, key := range keys {
			if hashes[i]&c.mask != uint64(si) {
				continue
			}
			kb = appendGenKey(kb[:0], key, gen)
			e, ok := sh.entries[string(kb)]
			if ok && e.err == nil {
				switch {
				case e.expires.IsZero() || e.expires.After(now):
					c.hits.Inc()
					sh.pol.touch(e)
					vals[i] = e.val
					continue
				case e.swrUntil.After(now):
					c.hits.Inc()
					c.staleServed.Inc()
					sh.pol.touch(e)
					vals[i] = e.val
					if !e.revalidating {
						e.revalidating = true
						stale = append(stale, i)
					}
					continue
				default:
					sh.drop(e)
				}
			} else if ok {
				// Negative entry on the batch path: treat as a miss and
				// let the recompute replace it (or expiry clear it).
				if !e.expires.After(now) {
					sh.drop(e)
				}
			}
			c.misses.Inc()
		}
		sh.mu.Unlock()
	}
	return vals, stale
}

// StoreMany caches computed answers under (keys[i], gen) — the fill half
// of the batch path, one mutex hold per shard. immutable follows the same
// regimes as Do; existing entries are replaced, which also discharges any
// revalidation claims LookupMany handed out for them. Stores against a
// generation the shard has moved past are refused.
func (c *Cache) StoreMany(keys []string, gen uint64, immutable bool, vals []any) {
	suffix := genLabel(gen)
	hashes := make([]uint64, len(keys))
	for i, key := range keys {
		hashes[i] = hashKey(key)
	}
	for si, sh := range c.shards {
		sh.mu.Lock()
		c.observe(sh, gen)
		if gen == sh.gen {
			for i, key := range keys {
				if hashes[i]&c.mask != uint64(si) {
					continue
				}
				c.store(sh, key+suffix, hashes[i], vals[i], nil, immutable)
			}
		}
		sh.mu.Unlock()
	}
}

// Stats is a point-in-time counter snapshot for /v1/status and the serve
// experiment. HitRate folds collapsed concurrent flights into hits: every
// request that was served a valid answer without running the backend
// query itself was served by the cache layer. The first eight fields keep
// the exact JSON shape of the original queryd cache; the policy-specific
// fields are omitted when zero so LRU deployments see an unchanged
// surface.
type Stats struct {
	Entries       int     `json:"entries"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Coalesced     uint64  `json:"coalesced"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	Generation    uint64  `json:"generation"`
	HitRate       float64 `json:"hit_rate"`

	Policy           string `json:"policy,omitempty"`
	Shards           int    `json:"shards,omitempty"`
	CoalescedErrors  uint64 `json:"coalesced_errors,omitempty"`
	GhostHits        uint64 `json:"ghost_hits,omitempty"`
	AdmissionRejects uint64 `json:"admission_rejects,omitempty"`
	StaleServed      uint64 `json:"stale_served,omitempty"`
	NegativeHits     uint64 `json:"negative_hits,omitempty"`
}

// Stats returns current cache counters, aggregated across shards.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:             c.hits.Value(),
		Misses:           c.misses.Value(),
		Coalesced:        c.coalesced.Value(),
		Evictions:        c.evictions.Value(),
		Invalidations:    c.invalidations.Value(),
		Policy:           c.policy,
		Shards:           len(c.shards),
		CoalescedErrors:  c.coalescedErrors.Value(),
		GhostHits:        c.ghostHits.Value(),
		AdmissionRejects: c.admissionRejects.Value(),
		StaleServed:      c.staleServed.Value(),
		NegativeHits:     c.negHits.Value(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		if sh.gen > st.Generation {
			st.Generation = sh.gen
		}
		sh.mu.Unlock()
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}

// Policy returns the canonical name of the active eviction policy.
func (c *Cache) Policy() string { return c.policy }

// RegisterMetrics exposes the cache's instruments on reg under
// prefix_* (e.g. prefix "queryd_cache" yields queryd_cache_hits_total).
// Counters are the same words Stats reads; entries and the observed
// generation are sampled at scrape time under brief per-shard mutex
// holds, with a per-shard entries breakdown for spotting hash skew.
func (c *Cache) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	reg.RegisterCounter(prefix+"_hits_total", "Requests served from the cache (including coalesced flights).", nil, &c.hits)
	reg.RegisterCounter(prefix+"_misses_total", "Requests that ran the backend query.", nil, &c.misses)
	reg.RegisterCounter(prefix+"_coalesced_total", "Requests collapsed onto an in-flight identical computation.", nil, &c.coalesced)
	reg.RegisterCounter(prefix+"_coalesced_errors_total", "Coalesced waiters whose shared flight resolved to an error.", nil, &c.coalescedErrors)
	reg.RegisterCounter(prefix+"_evictions_total", "Entries evicted by the cache policy.", nil, &c.evictions)
	reg.RegisterCounter(prefix+"_invalidations_total", "Entries dropped by generation advances.", nil, &c.invalidations)
	reg.RegisterCounter(prefix+"_ghost_hits_total", "Keys readmitted via the S3-FIFO ghost queue.", nil, &c.ghostHits)
	reg.RegisterCounter(prefix+"_admission_rejects_total", "Candidates denied admission by the TinyLFU frequency filter.", nil, &c.admissionRejects)
	reg.RegisterCounter(prefix+"_stale_served_total", "Expired entries served inside the stale-while-revalidate window.", nil, &c.staleServed)
	reg.RegisterCounter(prefix+"_negative_hits_total", "Requests served a cached deterministic error.", nil, &c.negHits)
	reg.GaugeFunc(prefix+"_entries", "Entries currently cached.", nil, func() float64 {
		n := 0
		for _, sh := range c.shards {
			sh.mu.Lock()
			n += len(sh.entries)
			sh.mu.Unlock()
		}
		return float64(n)
	})
	reg.GaugeFunc(prefix+"_generation", "Highest sealed-set generation the cache has observed.", nil, func() float64 {
		var g uint64
		for _, sh := range c.shards {
			sh.mu.Lock()
			if sh.gen > g {
				g = sh.gen
			}
			sh.mu.Unlock()
		}
		return float64(g)
	})
	reg.CollectFunc(prefix+"_shard_entries", "Entries per cache shard.", telemetry.TypeGauge, func(emit telemetry.Emit) {
		for i, sh := range c.shards {
			sh.mu.Lock()
			n := len(sh.entries)
			sh.mu.Unlock()
			emit(telemetry.Labels{"shard": strconv.Itoa(i)}, float64(n))
		}
	})
}
