package rcache

import (
	"testing"
	"time"
)

// benchZipf runs one policy over a shared zipf trace, reporting hit rate
// alongside the usual time/allocs — the numbers BENCH_cache.json commits
// and scripts/perf_gate.sh compares.
func benchZipf(b *testing.B, policy string) {
	trace := zipfTrace(200_000, 10_000, 1.1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var st Stats
	for i := 0; i < b.N; i++ {
		c := New(Config{Capacity: 1024, Shards: 8, Policy: policy, TTL: time.Hour})
		for _, key := range trace {
			c.Do(key, 0, false, func() (any, error) { return 1, nil })
		}
		st = c.Stats()
	}
	b.ReportMetric(st.HitRate, "hitrate")
	b.ReportMetric(float64(len(trace)), "ops/run")
}

func BenchmarkCacheLRU(b *testing.B)     { benchZipf(b, PolicyLRU) }
func BenchmarkCacheS3FIFO(b *testing.B)  { benchZipf(b, PolicyS3FIFO) }
func BenchmarkCacheTinyLFU(b *testing.B) { benchZipf(b, PolicyTinyLFU) }

// BenchmarkCacheHit pins the sharded hot path: a fresh-entry hit is one
// shard lock, one map probe, and one policy touch.
func BenchmarkCacheHit(b *testing.B) {
	c := New(Config{Capacity: 1024, TTL: time.Hour})
	c.Do("k", 0, false, func() (any, error) { return 1, nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Do("k", 0, false, func() (any, error) { return 1, nil })
	}
}

// BenchmarkCacheHitParallel measures contention relief from sharding:
// every goroutine hammers its own hot key, so distinct keys mostly land on
// distinct shard locks.
func BenchmarkCacheHitParallel(b *testing.B) {
	c := New(Config{Capacity: 1024, TTL: time.Hour})
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = zipfTrace(64, 64, 0.1, uint64(i)+1)[i%64]
		c.Do(keys[i], 0, false, func() (any, error) { return 1, nil })
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Do(keys[i&63], 0, false, func() (any, error) { return 1, nil })
			i++
		}
	})
}

// BenchmarkCacheMissEvict is the worst-case full-churn path: every access
// misses, stores, and evicts.
func BenchmarkCacheMissEvict(b *testing.B) {
	c := New(Config{Capacity: 64, Shards: 1, TTL: time.Hour})
	keys := zipfTrace(128, 128, 0.01, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Do(keys[i%len(keys)], uint64(i), true, func() (any, error) { return i, nil })
	}
}
