// Package elastic implements the Elastic sketch (Yang et al., SIGCOMM
// 2018), the competitor most similar in appearance to ReliableSketch: its
// heavy part holds (key, positive vote, negative vote) cells with an
// election. The decisive difference (paper §7) is that Elastic resets the
// negative vote on replacement — it hunts frequent keys and cannot sense
// per-key error, which is exactly the capability ReliableSketch adds.
//
// Geometry follows the paper's evaluation: light:heavy memory ratio 3, an
// eviction threshold of 8, and a light part of 8-bit counters.
package elastic

import (
	"repro/internal/sketch"

	"repro/internal/hash"
)

// evictionThreshold is Elastic's λ: evict when negative ≥ 8 × positive.
const evictionThreshold = 8

// heavyBucketBytes accounts a heavy cell: 32-bit key, 32-bit positive vote,
// 32-bit negative vote, flag packed into the key word's spare bits.
const heavyBucketBytes = 12

type heavyBucket struct {
	key      uint64
	positive uint64
	negative uint64
	occupied bool
	// flagged marks that earlier traffic of this key was evicted into the
	// light part, so queries must add the light estimate.
	flagged bool
}

// Sketch is an Elastic sketch with a one-array heavy part and an 8-bit
// light part.
type Sketch struct {
	heavy     []heavyBucket
	light     []uint8
	heavySeed uint64
	lightSeed uint64
	name      string
}

// New builds an Elastic sketch with the given heavy bucket and light
// counter counts.
func New(heavyBuckets, lightCounters int, seed uint64) *Sketch {
	if heavyBuckets < 1 || lightCounters < 1 {
		panic("elastic: invalid geometry")
	}
	return &Sketch{
		heavy:     make([]heavyBucket, heavyBuckets),
		light:     make([]uint8, lightCounters),
		heavySeed: hash.U64(seed, 0xe1a571c),
		lightSeed: hash.U64(seed, 0x116417),
		name:      "Elastic",
	}
}

// NewBytes builds an Elastic sketch with the paper's recommended 3:1
// light:heavy memory split inside memBytes.
func NewBytes(memBytes int, seed uint64) *Sketch {
	heavyBytes := memBytes / 4
	lightBytes := memBytes - heavyBytes
	h := heavyBytes / heavyBucketBytes
	if h < 1 {
		h = 1
	}
	l := lightBytes
	if l < 1 {
		l = 1
	}
	return New(h, l, seed)
}

func (s *Sketch) lightAdd(key, value uint64) {
	i := hash.Bucket(key, s.lightSeed, len(s.light))
	c := uint64(s.light[i]) + value
	if c > 255 {
		c = 255 // 8-bit saturating counters, as deployed
	}
	s.light[i] = uint8(c)
}

func (s *Sketch) lightQuery(key uint64) uint64 {
	return uint64(s.light[hash.Bucket(key, s.lightSeed, len(s.light))])
}

// Insert adds value to key using Elastic's vote-and-evict heavy part.
func (s *Sketch) Insert(key, value uint64) {
	b := &s.heavy[hash.Bucket(key, s.heavySeed, len(s.heavy))]
	switch {
	case !b.occupied:
		*b = heavyBucket{key: key, positive: value, occupied: true}
	case b.key == key:
		b.positive += value
	default:
		b.negative += value
		if b.negative >= evictionThreshold*b.positive {
			// Evict: the incumbent's count moves to the light part and the
			// newcomer takes the bucket. Elastic resets the vote state here,
			// which is why it cannot bound per-key error.
			old := *b
			for v := old.positive; v > 0; {
				step := v
				if step > 255 {
					step = 255
				}
				s.lightAdd(old.key, step)
				v -= step
			}
			*b = heavyBucket{key: key, positive: value, occupied: true, flagged: true}
		} else {
			// The colliding item itself goes to the light part.
			s.lightAdd(key, value)
		}
	}
}

// Query returns the heavy-part vote plus, when the bucket was ever evicted
// into the light part, the light estimate; non-resident keys read the light
// part alone.
func (s *Sketch) Query(key uint64) uint64 {
	b := &s.heavy[hash.Bucket(key, s.heavySeed, len(s.heavy))]
	if b.occupied && b.key == key {
		if b.flagged {
			return b.positive + s.lightQuery(key)
		}
		return b.positive
	}
	return s.lightQuery(key)
}

// Tracked returns the heavy-part residents.
func (s *Sketch) Tracked() []sketch.KV {
	out := make([]sketch.KV, 0, len(s.heavy))
	for i := range s.heavy {
		if s.heavy[i].occupied {
			out = append(out, sketch.KV{Key: s.heavy[i].key, Est: s.heavy[i].positive})
		}
	}
	return out
}

// MemoryBytes reports heavy buckets × 12 + light counters × 1.
func (s *Sketch) MemoryBytes() int {
	return len(s.heavy)*heavyBucketBytes + len(s.light)
}

// Name identifies the algorithm.
func (s *Sketch) Name() string { return s.name }

// Reset clears both parts.
func (s *Sketch) Reset() {
	clear(s.heavy)
	clear(s.light)
}
