package elastic

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

var (
	_ sketch.Sketch              = (*Sketch)(nil)
	_ sketch.HeavyHitterReporter = (*Sketch)(nil)
)

func TestSingleKeyExact(t *testing.T) {
	s := New(1024, 4096, 1)
	for i := 0; i < 500; i++ {
		s.Insert(7, 1)
	}
	if got := s.Query(7); got != 500 {
		t.Errorf("Query(7)=%d want 500", got)
	}
}

func TestEvictionMovesToLight(t *testing.T) {
	// One bucket (heavy width 1) forces the election dynamics.
	s := New(1, 4096, 1)
	s.Insert(1, 10) // key 1 resident
	// Flood with key 2 until eviction (negative ≥ 8×positive).
	for i := 0; i < 100; i++ {
		s.Insert(2, 1)
	}
	// Key 2 must now be resident; key 1's traffic must be readable from the
	// light part (possibly with collision error, but ≥ its own count here).
	if got := s.Query(2); got == 0 {
		t.Error("key 2 not resident after flood")
	}
	if got := s.Query(1); got < 10 {
		t.Errorf("evicted key reads %d from light part, want ≥ 10", got)
	}
}

func TestHeavyKeysAccurate(t *testing.T) {
	// On a skewed stream with ample memory, the heaviest keys should be
	// estimated with small relative error.
	s := stream.Zipf(200_000, 20_000, 1.2, 3)
	sk := NewBytes(512<<10, 3)
	for _, it := range s.Items {
		sk.Insert(it.Key, it.Value)
	}
	for k, f := range s.Truth() {
		if f < 2000 {
			continue
		}
		est := sk.Query(k)
		rel := float64(est) - float64(f)
		if rel < 0 {
			rel = -rel
		}
		if rel/float64(f) > 0.2 {
			t.Errorf("heavy key %d: est %d vs true %d", k, est, f)
		}
	}
}

func TestMemorySplit(t *testing.T) {
	sk := NewBytes(1<<20, 1)
	if sk.MemoryBytes() > 1<<20 {
		t.Errorf("memory %d over budget", sk.MemoryBytes())
	}
	// Light part should hold ~3/4 of the budget (ratio 3 recommended).
	light := len(sk.light)
	if light < (1<<20)*7/10 {
		t.Errorf("light part %dB; want ≈75%% of 1MB", light)
	}
}

func TestTracked(t *testing.T) {
	sk := New(16, 256, 1)
	sk.Insert(5, 100)
	found := false
	for _, kv := range sk.Tracked() {
		if kv.Key == 5 && kv.Est == 100 {
			found = true
		}
	}
	if !found {
		t.Error("inserted key not tracked")
	}
}

func TestReset(t *testing.T) {
	sk := New(16, 256, 1)
	sk.Insert(5, 100)
	sk.Reset()
	if sk.Query(5) != 0 {
		t.Error("Reset did not clear")
	}
	if sk.Name() != "Elastic" {
		t.Errorf("Name=%q", sk.Name())
	}
}

func BenchmarkInsert(b *testing.B) {
	sk := NewBytes(1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Insert(uint64(i&0xffff), 1)
	}
}
