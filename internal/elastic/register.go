package elastic

import "repro/internal/sketch"

func init() {
	sketch.Register("Elastic",
		sketch.CapHeavyHitter|sketch.CapResettable,
		func(sp sketch.Spec) sketch.Sketch {
			return NewBytes(sp.MemoryBytes, sp.Seed)
		})
}
