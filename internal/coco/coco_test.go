package coco

import (
	"math"
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

var (
	_ sketch.Sketch              = (*Sketch)(nil)
	_ sketch.HeavyHitterReporter = (*Sketch)(nil)
)

func TestSingleKeyExact(t *testing.T) {
	s := New(2, 1024, 1)
	for i := 0; i < 100; i++ {
		s.Insert(9, 2)
	}
	if got := s.Query(9); got != 200 {
		t.Errorf("Query(9)=%d want 200", got)
	}
}

func TestResidentGrowsOnCollision(t *testing.T) {
	// With width 1, everything collides into the same two cells; counts
	// must keep growing and total count across cells equals total inserted.
	s := New(2, 1, 3)
	var total uint64
	for k := uint64(0); k < 50; k++ {
		s.Insert(k, 3)
		total += 3
	}
	var cells uint64
	for i := range s.rows {
		cells += s.rows[i][0].count
	}
	if cells != total {
		t.Errorf("cell counts sum to %d, want %d (no value may vanish)", cells, total)
	}
}

// TestUnbiasedResidentEstimates: over many trials, the expected estimate of
// a key equals its true sum (CocoSketch's defining property). We test the
// aggregate: E[Σ_keys est·1{resident}] ≈ Σ f over a small saturated sketch.
func TestUnbiasednessAggregate(t *testing.T) {
	const trials = 300
	const keys = 8
	var sumEst float64
	for trial := 0; trial < trials; trial++ {
		s := New(2, 2, uint64(trial)+1)
		for k := uint64(0); k < keys; k++ {
			s.Insert(k, 1)
		}
		// Each key's estimate (0 when evicted).
		for k := uint64(0); k < keys; k++ {
			sumEst += float64(s.Query(k))
		}
	}
	meanTotal := sumEst / trials
	// Unbiasedness: E[Σ est] = Σ f = 8. Monte-Carlo tolerance ±1.
	if math.Abs(meanTotal-keys) > 1 {
		t.Errorf("mean Σ estimates = %.2f, want ≈ %d", meanTotal, keys)
	}
}

func TestHeavyKeysSurvive(t *testing.T) {
	s := stream.Zipf(100_000, 10_000, 1.5, 4)
	sk := NewBytes(256<<10, 4)
	for _, it := range s.Items {
		sk.Insert(it.Key, it.Value)
	}
	misses := 0
	heavies := 0
	for k, f := range s.Truth() {
		if f < 1000 {
			continue
		}
		heavies++
		if sk.Query(k) == 0 {
			misses++
		}
	}
	if heavies == 0 {
		t.Fatal("test stream has no heavy keys")
	}
	if misses > heavies/10 {
		t.Errorf("%d/%d heavy keys evicted", misses, heavies)
	}
}

func TestMemoryAndReset(t *testing.T) {
	sk := NewBytes(1<<16, 1)
	if sk.MemoryBytes() > 1<<16 {
		t.Errorf("memory %d over budget", sk.MemoryBytes())
	}
	sk.Insert(1, 5)
	sk.Reset()
	if sk.Query(1) != 0 {
		t.Error("Reset did not clear")
	}
	if sk.Name() != "Coco" {
		t.Errorf("Name=%q", sk.Name())
	}
	if len(sk.Tracked()) != 0 {
		t.Error("Tracked non-empty after Reset")
	}
}

func BenchmarkInsert(b *testing.B) {
	sk := NewBytes(1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Insert(uint64(i&0xffff), 1)
	}
}
