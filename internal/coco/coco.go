// Package coco implements CocoSketch (Zhang et al., SIGCOMM 2021) in the
// configuration the paper evaluates: d = 2 arrays of (key, count) cells with
// unbiased probabilistic replacement. On a collision the cell's count always
// grows, and the newcomer captures the cell with probability value/count —
// keeping every cell an unbiased estimator of its resident key's sum.
package coco

import (
	"repro/internal/sketch"

	"math/rand/v2"

	"repro/internal/hash"
)

// cellBytes accounts one cell: 32-bit key + 32-bit count.
const cellBytes = 8

type cell struct {
	key   uint64
	count uint64
}

// Sketch is a CocoSketch with d arrays.
type Sketch struct {
	rows   [][]cell
	width  int
	hashes *hash.Family
	rnd    *rand.Rand
	name   string
}

// New builds a CocoSketch with d arrays of width cells.
func New(d, width int, seed uint64) *Sketch {
	if d < 1 || width < 1 {
		panic("coco: invalid geometry")
	}
	s := &Sketch{
		rows:   make([][]cell, d),
		width:  width,
		hashes: hash.NewFamily(seed, d),
		rnd:    rand.New(rand.NewPCG(seed, seed^0xc0c0)),
		name:   "Coco",
	}
	for i := range s.rows {
		s.rows[i] = make([]cell, width)
	}
	return s
}

// NewBytes builds the paper's d=2 configuration sized to memBytes.
func NewBytes(memBytes int, seed uint64) *Sketch {
	w := memBytes / (2 * cellBytes)
	if w < 1 {
		w = 1
	}
	return New(2, w, seed)
}

// Insert adds value to key. If key occupies one of its mapped cells that
// cell grows; otherwise the smallest mapped cell grows and the key captures
// it with probability value/count.
func (s *Sketch) Insert(key, value uint64) {
	var minRow, minIdx int
	var minCount uint64
	for i := range s.rows {
		j := s.hashes.Bucket(i, key, s.width)
		c := &s.rows[i][j]
		if c.count > 0 && c.key == key {
			c.count += value
			return
		}
		if i == 0 || c.count < minCount {
			minRow, minIdx, minCount = i, j, c.count
		}
	}
	c := &s.rows[minRow][minIdx]
	c.count += value
	// Unbiased capture: P[replace] = value / new count.
	if s.rnd.Float64() < float64(value)/float64(c.count) {
		c.key = key
	}
}

// Query returns the count of the cell key occupies, or 0 when untracked
// (CocoSketch tracks only cell residents; per-key queries for evicted keys
// return nothing, which is what drives its outlier counts in Figure 4).
func (s *Sketch) Query(key uint64) uint64 {
	for i := range s.rows {
		j := s.hashes.Bucket(i, key, s.width)
		c := &s.rows[i][j]
		if c.count > 0 && c.key == key {
			return c.count
		}
	}
	return 0
}

// Tracked returns all resident keys and counts.
func (s *Sketch) Tracked() []sketch.KV {
	var out []sketch.KV
	for i := range s.rows {
		for j := range s.rows[i] {
			if c := s.rows[i][j]; c.count > 0 {
				out = append(out, sketch.KV{Key: c.key, Est: c.count})
			}
		}
	}
	return out
}

// MemoryBytes reports d × w × 8 bytes.
func (s *Sketch) MemoryBytes() int { return len(s.rows) * s.width * cellBytes }

// Name identifies the algorithm.
func (s *Sketch) Name() string { return s.name }

// Reset clears all cells.
func (s *Sketch) Reset() {
	for i := range s.rows {
		clear(s.rows[i])
	}
}
