// Package netsum implements network-wide stream summary: measurement
// agents (one per switch/vantage point, as in network-wide telemetry
// systems built on sketches) maintain local ReliableSketches and stream
// key-value updates to a collector over TCP; the collector answers global
// queries with certified error bounds.
//
// Correctness note: per-agent certified intervals compose — the global sum
// of a key equals the sum of per-agent sums, so summing estimates and MPEs
// across agents preserves the guarantee: truth ∈ [Σest − Σmpe, Σest]. When
// the configured variant is sketch.Mergeable, the collector additionally
// folds every batch into one global merged sketch and answers with the
// INTERSECTION of the merged view's interval and the estimate-sum interval
// — certified because both contain the truth, and never looser than either.
//
// The wire protocol is a minimal length-prefixed binary framing
// (little-endian), in the spirit of the paper's switch/control-plane
// split: the data plane streams compact updates, queries are rare.
package netsum

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/stream"
)

// Message types.
const (
	// msgHello announces an agent: payload is agentID uvarint.
	msgHello = byte(iota + 1)
	// msgBatch carries updates: uvarint count, then count × (key, value)
	// uvarint pairs.
	msgBatch
	// msgQuery asks for a key's global sum: payload is the key.
	msgQuery
	// msgQueryResp answers: key, estimate, MPE.
	msgQueryResp
	// msgStats asks for collector statistics.
	msgStats
	// msgStatsResp answers: agents, updates, queries.
	msgStatsResp
	// msgWindowQuery asks for a key's global sum over the last n sealed
	// epochs (epoch-mode collectors): payload is key, then n.
	msgWindowQuery
	// msgWindowResp answers: key, epochs actually covered, estimate, MPE.
	msgWindowResp
)

// maxFrame bounds a frame's payload to keep malicious or corrupt peers
// from forcing giant allocations.
const maxFrame = 1 << 20

// Update is one key-value increment. It aliases stream.Item so decoded
// batches feed the collector's sketches through the native batch-ingestion
// path without copying.
type Update = stream.Item

// writeFrame emits a type byte, a uvarint payload length, and the payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("netsum: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame. It returns io.EOF cleanly on connection end.
func readFrame(r interface {
	io.Reader
	io.ByteReader
}) (typ byte, payload []byte, err error) {
	typ, err = r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, fmt.Errorf("netsum: frame length: %w", err)
	}
	if size > maxFrame {
		return 0, nil, fmt.Errorf("netsum: frame of %d bytes exceeds limit", size)
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("netsum: frame payload: %w", err)
	}
	return typ, payload, nil
}

// appendUvarints appends values in uvarint encoding.
func appendUvarints(dst []byte, vs ...uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	for _, v := range vs {
		n := binary.PutUvarint(buf[:], v)
		dst = append(dst, buf[:n]...)
	}
	return dst
}

// uvarintReader walks a payload of packed uvarints.
type uvarintReader struct {
	buf []byte
	off int
}

func (u *uvarintReader) next() (uint64, error) {
	v, n := binary.Uvarint(u.buf[u.off:])
	if n <= 0 {
		return 0, fmt.Errorf("netsum: truncated uvarint at offset %d", u.off)
	}
	u.off += n
	return v, nil
}

// encodeBatch packs updates into a msgBatch payload.
func encodeBatch(ups []Update) []byte {
	payload := appendUvarints(nil, uint64(len(ups)))
	for _, u := range ups {
		payload = appendUvarints(payload, u.Key, u.Value)
	}
	return payload
}

// decodeBatch unpacks a msgBatch payload.
func decodeBatch(payload []byte) ([]Update, error) {
	u := &uvarintReader{buf: payload}
	count, err := u.next()
	if err != nil {
		return nil, err
	}
	if count > maxFrame/2 {
		return nil, fmt.Errorf("netsum: implausible batch count %d", count)
	}
	ups := make([]Update, count)
	for i := range ups {
		if ups[i].Key, err = u.next(); err != nil {
			return nil, err
		}
		if ups[i].Value, err = u.next(); err != nil {
			return nil, err
		}
	}
	return ups, nil
}
