// Package netsum implements network-wide stream summary: measurement
// agents (one per switch/vantage point, as in network-wide telemetry
// systems built on sketches) maintain local ReliableSketches and stream
// key-value updates to a collector over TCP; the collector answers global
// queries with certified error bounds.
//
// Correctness note: per-agent certified intervals compose — the global sum
// of a key equals the sum of per-agent sums, so summing estimates and MPEs
// across agents preserves the guarantee: truth ∈ [Σest − Σmpe, Σest]. When
// the configured variant is sketch.Mergeable, the collector additionally
// folds every batch into one global merged sketch and answers with the
// INTERSECTION of the merged view's interval and the estimate-sum interval
// — certified because both contain the truth, and never looser than either.
//
// The wire protocol is a minimal length-prefixed binary framing
// (little-endian), in the spirit of the paper's switch/control-plane
// split: the data plane streams compact updates, queries are rare.
package netsum

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/query"
	"repro/internal/stream"
)

// ProtocolVersion is the wire protocol generation this package speaks.
// Version 2 added the batched exec frames (msgExecQuery/msgExecResp/
// msgExecErr) carrying whole query.Request/query.Answer batches in one
// round trip, and extended msgHello with the agent's version.
//
// Compatibility rule: collectors accept agents of any older version — v1
// agents never send exec frames and ignore the hello extension, so every
// frame they produce still decodes — but a v2 agent's batch queries need a
// v2 collector (an old collector drops the connection on the unknown
// frame type).
const ProtocolVersion = 2

// Message types.
const (
	// msgHello announces an agent: payload is agentID uvarint, optionally
	// followed by the agent's protocol version (absent = version 1; the
	// collector ignores trailing bytes it does not understand, and so did
	// v1 collectors, which is what makes the extension compatible).
	msgHello = byte(iota + 1)
	// msgBatch carries updates: uvarint count, then count × (key, value)
	// uvarint pairs.
	msgBatch
	// msgQuery asks for a key's global sum: payload is the key.
	msgQuery
	// msgQueryResp answers: key, estimate, MPE.
	msgQueryResp
	// msgStats asks for collector statistics.
	msgStats
	// msgStatsResp answers: agents, updates, queries.
	msgStatsResp
	// msgWindowQuery asks for a key's global sum over the last n sealed
	// epochs (epoch-mode collectors): payload is key, then n.
	msgWindowQuery
	// msgWindowResp answers: key, epochs actually covered, estimate, MPE.
	msgWindowResp
	// msgExecQuery (v2) carries one typed query.Request: kind, agent,
	// window, k, key count, then the packed keys — N point or window
	// queries in one round trip.
	msgExecQuery
	// msgExecResp (v2) carries the matching query.Answer: flags (bit 0 =
	// certified), coverage, generation, source string, estimate count,
	// then count × (key, est, lower).
	msgExecResp
	// msgExecErr (v2) reports a refused exec request: a human-readable
	// message (the request was decoded but could not be answered — e.g.
	// top-k without a merged view, or a validation failure).
	msgExecErr
)

// maxFrame bounds a frame's payload to keep malicious or corrupt peers
// from forcing giant allocations.
const maxFrame = 1 << 20

// Update is one key-value increment. It aliases stream.Item so decoded
// batches feed the collector's sketches through the native batch-ingestion
// path without copying.
type Update = stream.Item

// writeFrame emits a type byte, a uvarint payload length, and the payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("netsum: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [1 + binary.MaxVarintLen64]byte
	hdr[0] = typ
	n := binary.PutUvarint(hdr[1:], uint64(len(payload)))
	if _, err := w.Write(hdr[:1+n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame. It returns io.EOF cleanly on connection end.
func readFrame(r interface {
	io.Reader
	io.ByteReader
}) (typ byte, payload []byte, err error) {
	typ, err = r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, fmt.Errorf("netsum: frame length: %w", err)
	}
	if size > maxFrame {
		return 0, nil, fmt.Errorf("netsum: frame of %d bytes exceeds limit", size)
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("netsum: frame payload: %w", err)
	}
	return typ, payload, nil
}

// appendUvarints appends values in uvarint encoding.
func appendUvarints(dst []byte, vs ...uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	for _, v := range vs {
		n := binary.PutUvarint(buf[:], v)
		dst = append(dst, buf[:n]...)
	}
	return dst
}

// uvarintReader walks a payload of packed uvarints.
type uvarintReader struct {
	buf []byte
	off int
}

func (u *uvarintReader) next() (uint64, error) {
	v, n := binary.Uvarint(u.buf[u.off:])
	if n <= 0 {
		return 0, fmt.Errorf("netsum: truncated uvarint at offset %d", u.off)
	}
	u.off += n
	return v, nil
}

// encodeRequest packs a typed query request into a msgExecQuery payload.
func encodeRequest(req query.Request) []byte {
	payload := appendUvarints(nil, uint64(req.Kind), req.Agent,
		uint64(req.Window), uint64(req.K), uint64(len(req.Keys)))
	return appendUvarints(payload, req.Keys...)
}

// decodeRequest unpacks a msgExecQuery payload. Validation is the
// executor's job — the wire layer only guards against malformed framing.
func decodeRequest(payload []byte) (query.Request, error) {
	u := &uvarintReader{buf: payload}
	var req query.Request
	kind, err := u.next()
	if err != nil {
		return req, err
	}
	req.Kind = query.Kind(kind)
	if req.Agent, err = u.next(); err != nil {
		return req, err
	}
	window, err := u.next()
	if err != nil {
		return req, err
	}
	req.Window = int(window)
	k, err := u.next()
	if err != nil {
		return req, err
	}
	req.K = int(k)
	count, err := u.next()
	if err != nil {
		return req, err
	}
	if count > query.MaxBatchKeys {
		return req, fmt.Errorf("netsum: exec request with %d keys exceeds batch limit %d",
			count, query.MaxBatchKeys)
	}
	if count > 0 {
		req.Keys = make([]uint64, count)
		for i := range req.Keys {
			if req.Keys[i], err = u.next(); err != nil {
				return req, err
			}
		}
	}
	return req, nil
}

// encodeAnswer packs a typed answer into a msgExecResp payload. Upper
// always equals Est on this repository's surfaces (never-underestimating
// sketches), so only (key, est, lower) travel per estimate.
func encodeAnswer(ans query.Answer) []byte {
	var flags uint64
	if ans.Certified {
		flags |= 1
	}
	payload := appendUvarints(nil, flags, uint64(ans.Coverage), ans.Generation,
		uint64(len(ans.Source)))
	payload = append(payload, ans.Source...)
	payload = appendUvarints(payload, uint64(len(ans.PerKey)))
	for _, e := range ans.PerKey {
		payload = appendUvarints(payload, e.Key, e.Est, e.Lower)
	}
	return payload
}

// decodeAnswer unpacks a msgExecResp payload.
func decodeAnswer(payload []byte) (query.Answer, error) {
	u := &uvarintReader{buf: payload}
	var ans query.Answer
	flags, err := u.next()
	if err != nil {
		return ans, err
	}
	ans.Certified = flags&1 != 0
	coverage, err := u.next()
	if err != nil {
		return ans, err
	}
	ans.Coverage = int(coverage)
	if ans.Generation, err = u.next(); err != nil {
		return ans, err
	}
	srcLen, err := u.next()
	if err != nil {
		return ans, err
	}
	if srcLen > 256 || int(srcLen) > len(u.buf)-u.off {
		return ans, fmt.Errorf("netsum: implausible answer source length %d", srcLen)
	}
	ans.Source = string(u.buf[u.off : u.off+int(srcLen)])
	u.off += int(srcLen)
	count, err := u.next()
	if err != nil {
		return ans, err
	}
	if count > query.MaxBatchKeys {
		return ans, fmt.Errorf("netsum: exec answer with %d estimates exceeds batch limit %d",
			count, query.MaxBatchKeys)
	}
	ans.PerKey = make([]query.Estimate, count)
	for i := range ans.PerKey {
		e := &ans.PerKey[i]
		if e.Key, err = u.next(); err != nil {
			return ans, err
		}
		if e.Est, err = u.next(); err != nil {
			return ans, err
		}
		if e.Lower, err = u.next(); err != nil {
			return ans, err
		}
		e.Upper = e.Est
	}
	return ans, nil
}

// encodeBatch packs updates into a msgBatch payload.
func encodeBatch(ups []Update) []byte { return appendBatch(nil, ups) }

// appendBatch packs updates onto dst — the allocation-free form agents use
// to reuse one send buffer across pushes.
func appendBatch(dst []byte, ups []Update) []byte {
	dst = appendUvarints(dst, uint64(len(ups)))
	for _, u := range ups {
		dst = appendUvarints(dst, u.Key, u.Value)
	}
	return dst
}

// decodeBatch unpacks a msgBatch payload.
func decodeBatch(payload []byte) ([]Update, error) {
	u := &uvarintReader{buf: payload}
	count, err := u.next()
	if err != nil {
		return nil, err
	}
	if count > maxFrame/2 {
		return nil, fmt.Errorf("netsum: implausible batch count %d", count)
	}
	ups := make([]Update, count)
	for i := range ups {
		if ups[i].Key, err = u.next(); err != nil {
			return nil, err
		}
		if ups[i].Value, err = u.next(); err != nil {
			return nil, err
		}
	}
	return ups, nil
}
