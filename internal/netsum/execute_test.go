package netsum

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// TestExecuteBatchMatchesSingleKey pins the batch wire surface to the
// single-key one: a 256-key Execute over the network must answer exactly
// what per-key QueryWithError does against the same collector state.
func TestExecuteBatchMatchesSingleKey(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{Lambda: 25, MemoryBytes: 256 << 10, Seed: 1},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	s := stream.IPTrace(40_000, 5)
	feedAgents(t, c, s, 3)

	keys := make([]uint64, 0, 256)
	for _, it := range s.Items {
		keys = append(keys, it.Key)
		if len(keys) == 255 {
			break
		}
	}
	keys = append(keys, 1<<40) // one absent key

	a, err := Dial(c.Addr(), 99)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ans, err := a.Execute(query.Request{Kind: query.Point, Keys: keys})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !ans.Certified {
		t.Error("collector answer not certified")
	}
	if len(ans.PerKey) != len(keys) {
		t.Fatalf("PerKey length %d, want %d", len(ans.PerKey), len(keys))
	}
	truth := s.Truth()
	for i, k := range keys {
		est, mpe := c.QueryWithError(k)
		pk := ans.PerKey[i]
		if pk.Key != k || pk.Est != est || pk.Upper != est ||
			pk.Lower != sketch.CertifiedLowerBound(est, mpe) {
			t.Fatalf("key %d: wire batch %+v != direct (%d,%d)", k, pk, est, mpe)
		}
		if f := truth[k]; f > pk.Upper || pk.Lower > f {
			t.Fatalf("key %d: truth %d outside [%d,%d]", k, f, pk.Lower, pk.Upper)
		}
	}
}

// TestExecuteRefusalKeepsConnection: a refused request answers msgExecErr
// and the connection keeps serving — refusals are answers, not faults.
func TestExecuteRefusalKeepsConnection(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{Lambda: 25, MemoryBytes: 64 << 10, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	a, err := Dial(c.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Record(7, 10); err != nil {
		t.Fatal(err)
	}
	// Agent-scoped window query against a cumulative collector: refused
	// server-side (the request validates locally).
	_, err = a.Execute(query.Request{Kind: query.Window, Keys: []uint64{7}, Window: 2, Agent: 1})
	if err == nil || !strings.Contains(err.Error(), "epoch mode") {
		t.Fatalf("agent-scoped query on cumulative collector err = %v, want epoch-mode refusal", err)
	}
	// Same connection still answers.
	ans, err := a.Execute(query.Request{Kind: query.Point, Keys: []uint64{7}})
	if err != nil {
		t.Fatalf("Execute after refusal: %v", err)
	}
	if ans.PerKey[0].Est < 10 {
		t.Errorf("estimate %d < exact 10", ans.PerKey[0].Est)
	}
	// Client-side validation never touches the wire.
	if _, err := a.Execute(query.Request{Kind: query.Point}); !errors.Is(err, query.ErrNoKeys) {
		t.Errorf("empty batch err = %v, want ErrNoKeys", err)
	}
}

// TestExecuteTopKOverWire: the top-k kind travels the wire with certified
// bounds, heaviest first.
func TestExecuteTopKOverWire(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{Lambda: 25, MemoryBytes: 256 << 10, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	a, err := Dial(c.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 500; i++ {
		a.Record(1, 3)
		a.Record(2, 2)
		a.Record(3, 1)
	}
	ans, err := a.Execute(query.Request{Kind: query.TopK, K: 2})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(ans.PerKey) != 2 || ans.PerKey[0].Key != 1 || ans.PerKey[1].Key != 2 {
		t.Fatalf("top-2 = %+v, want keys 1,2", ans.PerKey)
	}
	if ans.PerKey[0].Lower > 1500 || ans.PerKey[0].Upper < 1500 {
		t.Errorf("key 1 interval [%d,%d] misses exact 1500",
			ans.PerKey[0].Lower, ans.PerKey[0].Upper)
	}
}

// TestV1AgentBackCompat simulates an old (protocol v1) agent speaking raw
// frames — hello without a version, then the single-key v1 query — against
// a current collector. The version bump must not strand deployed agents.
func TestV1AgentBackCompat(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{Lambda: 25, MemoryBytes: 64 << 10, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	conn, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	// v1 hello: agent ID only, no version field.
	if err := writeFrame(bw, msgHello, appendUvarints(nil, 42)); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(bw, msgBatch, encodeBatch([]Update{{Key: 5, Value: 123}})); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(bw, msgQuery, appendUvarints(nil, 5)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgQueryResp {
		t.Fatalf("v1 query answered with frame type %d", typ)
	}
	u := &uvarintReader{buf: payload}
	gotKey, _ := u.next()
	est, _ := u.next()
	mpe, _ := u.next()
	if gotKey != 5 || est < 123 || sketch.CertifiedLowerBound(est, mpe) > 123 {
		t.Errorf("v1 answer key=%d [%d,%d] misses exact 123",
			gotKey, sketch.CertifiedLowerBound(est, mpe), est)
	}
}

// TestRequestAnswerRoundTrip pins the wire codec itself.
func TestRequestAnswerRoundTrip(t *testing.T) {
	req := query.Request{Kind: query.Window, Keys: []uint64{1, 9, 9, 1 << 50}, Window: 7, Agent: 3}
	got, err := decodeRequest(encodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != req.Kind || got.Window != req.Window || got.Agent != req.Agent ||
		len(got.Keys) != len(req.Keys) || got.Keys[3] != req.Keys[3] {
		t.Errorf("request round trip: got %+v, want %+v", got, req)
	}
	ans := query.Answer{
		PerKey:     []query.Estimate{{Key: 9, Est: 100, Lower: 80, Upper: 100}},
		Coverage:   4,
		Generation: 12,
		Source:     "collector+merged",
		Certified:  true,
	}
	back, err := decodeAnswer(encodeAnswer(ans))
	if err != nil {
		t.Fatal(err)
	}
	if back.Coverage != 4 || back.Generation != 12 || back.Source != ans.Source ||
		!back.Certified || back.PerKey[0] != ans.PerKey[0] {
		t.Errorf("answer round trip: got %+v, want %+v", back, ans)
	}
}
