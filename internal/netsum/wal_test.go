package netsum

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/sketch"
	"repro/internal/wal"
)

func openTestWAL(t *testing.T, dir string) *wal.Log {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncPolicy{Mode: wal.SyncEachBatch}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func newWALCollector(t *testing.T, l *wal.Log, startLSN uint64) *Collector {
	t.Helper()
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec:        sketch.Spec{Lambda: 25, MemoryBytes: 256 << 10, Seed: 1},
		WAL:         l,
		WALStartLSN: startLSN,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCollectorRefusesWALWithDropPolicy(t *testing.T) {
	// Drop could refuse a batch the log already made durable — live state
	// would say dropped while replay resurrects it — so the combination is
	// rejected at construction, like WAL + epoch mode.
	l := openTestWAL(t, t.TempDir())
	_, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec:   sketch.Spec{Lambda: 25, MemoryBytes: 256 << 10, Seed: 1},
		WAL:    l,
		Ingest: ingest.Tuning{Policy: ingest.Drop},
		Logf:   t.Logf,
	})
	if err == nil {
		t.Fatal("NewCollector accepted WAL + drop policy")
	}
}

// record streams n updates of key from one agent and forces them through a
// query round-trip, so they are both WAL-appended and applied when it
// returns.
func record(t *testing.T, c *Collector, agentID, key uint64, n int) {
	t.Helper()
	a, err := Dial(c.Addr(), agentID)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < n; i++ {
		if err := a.Record(key, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := a.Query(key); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorWALReplayRestoresCounts(t *testing.T) {
	// Wire batches survive a collector restart: the log stored each decoded
	// batch with its agent attribution, and replay routes them through the
	// same pipeline live traffic takes.
	dir := t.TempDir()
	l1 := openTestWAL(t, dir)
	c1 := newWALCollector(t, l1, 0)
	record(t, c1, 0, 42, 700) // agent 0 exercises the Source=id+1 mapping
	record(t, c1, 1, 42, 300)
	c1.Close()
	l1.Close()

	l2 := openTestWAL(t, dir)
	c2 := newWALCollector(t, l2, 0)
	if got := l2.Stats().Replayed; got == 0 {
		t.Fatal("restarted collector replayed nothing")
	}
	// Attribution survived: the per-agent window shim answers from agent
	// state rebuilt purely by replay.
	est, mpe := c2.QueryWithError(42)
	if est < 1000 || est-mpe > 1000 {
		t.Errorf("recovered truth 1000 outside certified [%d, %d]", est-mpe, est)
	}
	agents, updates, _ := c2.Stats()
	if agents != 2 || updates != 1000 {
		t.Errorf("recovered %d agents / %d updates, want 2 / 1000", agents, updates)
	}
}

func TestCollectorSnapshotCutTruncatesWAL(t *testing.T) {
	// SnapshotGlobal defines the cut; committing it advances the watermark
	// so only post-cut records replay on the next start, on top of the
	// restored baseline.
	dir := t.TempDir()
	l1 := openTestWAL(t, dir)
	c1 := newWALCollector(t, l1, 0)
	record(t, c1, 7, 42, 600)
	var ckpt bytes.Buffer
	if err := c1.SnapshotGlobal(&ckpt); err != nil {
		t.Fatal(err)
	}
	cut := c1.WALCutLSN()
	if cut == 0 {
		t.Fatal("snapshot did not record a WAL cut")
	}
	if err := c1.WALCheckpointCommitted(); err != nil {
		t.Fatal(err)
	}
	if got := l1.Watermark(); got != cut {
		t.Fatalf("watermark = %d after commit, want the cut %d", got, cut)
	}
	if ws := c1.WALStats(); ws == nil || ws.Watermark != cut {
		t.Fatalf("WALStats = %+v, want watermark %d", ws, cut)
	}
	record(t, c1, 7, 42, 400) // tail traffic past the cut
	c1.Close()
	l1.Close()

	l2 := openTestWAL(t, dir)
	c2 := newWALCollector(t, l2, cut)
	if err := c2.RestoreBaseline(&ckpt); err != nil {
		t.Fatal(err)
	}
	replayed := l2.Stats().Replayed
	if replayed == 0 || replayed > 400/512+1 {
		// 400 updates fit one agent flush; the point is that the 600
		// checkpointed ones did NOT replay again.
		t.Fatalf("replayed %d records, want only the post-cut tail", replayed)
	}
	est, mpe := c2.QueryWithError(42)
	if est < 1000 || est-mpe > 1000 {
		t.Errorf("recovered truth 1000 outside certified [%d, %d] (double-replay or lost tail)", est-mpe, est)
	}
}

func TestCollectorWALRefusesEpochMode(t *testing.T) {
	l := openTestWAL(t, t.TempDir())
	_, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec:  sketch.Spec{Lambda: 25, MemoryBytes: 256 << 10, Seed: 1},
		Epoch: 50 * time.Millisecond,
		WAL:   l,
	})
	if err == nil {
		t.Fatal("epoch-mode collector accepted a WAL")
	}
}
