package netsum

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"

	"repro/internal/sketch"
	_ "repro/internal/sketch/all" // make every registered variant dialable by name
)

// CollectorConfig selects and sizes the per-agent sketches the collector
// maintains.
type CollectorConfig struct {
	// Algo names the registered sketch variant built per agent. It must
	// carry sketch.CapErrorBounded — the collector composes certified
	// intervals, which needs QueryWithError. Default "Ours".
	Algo string
	// Spec sizes each agent's sketch. For Lambda-consuming variants
	// (ReliableSketch) Spec.Lambda is the per-agent error tolerance, so a
	// key measured at k agents carries a certified global error of at most
	// k·Lambda; variants that ignore Lambda (SS) still compose soundly, but
	// their global bound is the sum of their own per-query MPEs, not
	// k·Lambda. Spec.Emergency is forced on so the composed bounds stay
	// unconditional even under insertion failure.
	Spec sketch.Spec
	// Logf receives connection-level diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// Collector terminates agent connections, maintains one error-bounded
// sketch per agent, and answers global queries with certified bounds.
type Collector struct {
	cfg   CollectorConfig
	build sketch.Builder
	ln    net.Listener

	mu      sync.Mutex
	agents  map[uint64]sketch.ErrorBounded
	updates uint64
	queries uint64

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewCollector starts a collector listening on addr (e.g. "127.0.0.1:0").
func NewCollector(addr string, cfg CollectorConfig) (*Collector, error) {
	if cfg.Algo == "" {
		cfg.Algo = "Ours"
	}
	cfg.Spec.Emergency = true
	entry, ok := sketch.Lookup(cfg.Algo)
	if !ok {
		return nil, fmt.Errorf("netsum: unknown algorithm %q", cfg.Algo)
	}
	if !entry.Caps.Has(sketch.CapErrorBounded) {
		return nil, fmt.Errorf("netsum: algorithm %q cannot certify errors (need one of: %s)",
			cfg.Algo, errorBoundedNames())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsum: listen: %w", err)
	}
	c := &Collector{
		cfg:    cfg,
		build:  entry.Build,
		ln:     ln,
		agents: make(map[uint64]sketch.ErrorBounded),
		closed: make(chan struct{}),
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// errorBoundedNames lists the registry variants usable as collector
// sketches, for error messages.
func errorBoundedNames() string {
	var names []string
	for _, e := range sketch.ByCapability(sketch.CapErrorBounded) {
		names = append(names, e.Name)
	}
	return strings.Join(names, ", ")
}

// Addr returns the listener's address, for clients to dial.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// Close stops accepting and waits for connection handlers to drain.
func (c *Collector) Close() error {
	close(c.closed)
	err := c.ln.Close()
	c.wg.Wait()
	return err
}

func (c *Collector) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
				c.logf("netsum: accept: %v", err)
				return
			}
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := c.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				c.logf("netsum: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// sketchFor returns (creating on first contact) the agent's sketch. The
// registry conformance tests pin capabilities to implemented interfaces
// (including under Spec.Shards), so a failed assertion means a
// misregistered variant — reported as a connection error, not a panic.
func (c *Collector) sketchFor(agentID uint64) (sketch.ErrorBounded, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sk, ok := c.agents[agentID]
	if !ok {
		built := c.build(c.cfg.Spec)
		eb, isEB := built.(sketch.ErrorBounded)
		if !isEB {
			return nil, fmt.Errorf("netsum: %q registered ErrorBounded but built %T without QueryWithError",
				c.cfg.Algo, built)
		}
		sk = eb
		c.agents[agentID] = sk
	}
	return sk, nil
}

// handle runs one agent connection to completion.
func (c *Collector) handle(conn net.Conn) error {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 16<<10)

	var agent sketch.ErrorBounded
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return err
		}
		switch typ {
		case msgHello:
			u := &uvarintReader{buf: payload}
			id, err := u.next()
			if err != nil {
				return err
			}
			if agent, err = c.sketchFor(id); err != nil {
				return err
			}

		case msgBatch:
			if agent == nil {
				return errors.New("netsum: batch before hello")
			}
			ups, err := decodeBatch(payload)
			if err != nil {
				return err
			}
			c.mu.Lock()
			sketch.InsertBatch(agent, ups)
			c.updates += uint64(len(ups))
			c.mu.Unlock()

		case msgQuery:
			u := &uvarintReader{buf: payload}
			key, err := u.next()
			if err != nil {
				return err
			}
			est, mpe := c.QueryWithError(key)
			resp := appendUvarints(nil, key, est, mpe)
			if err := writeFrame(bw, msgQueryResp, resp); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}

		case msgStats:
			agents, updates, queries := c.Stats()
			resp := appendUvarints(nil, uint64(agents), updates, queries)
			if err := writeFrame(bw, msgStatsResp, resp); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}

		default:
			return fmt.Errorf("netsum: unknown message type %d", typ)
		}
	}
}

// QueryWithError answers a global query: the sum of all agents' certified
// estimates, with their MPEs summed. The composed interval is certified:
// global truth ∈ [est − mpe, est].
func (c *Collector) QueryWithError(key uint64) (est, mpe uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queries++
	for _, sk := range c.agents {
		e, m := sk.QueryWithError(key)
		est += e
		mpe += m
	}
	return est, mpe
}

// Stats reports the number of connected-or-seen agents and the totals of
// updates ingested and queries served.
func (c *Collector) Stats() (agents int, updates, queries uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.agents), c.updates, c.queries
}
