package netsum

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/ingest"
	"repro/internal/sketch"
	_ "repro/internal/sketch/all" // make every registered variant dialable by name
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// CollectorConfig selects and sizes the per-agent sketches the collector
// maintains.
type CollectorConfig struct {
	// Algo names the registered sketch variant built per agent. It must
	// carry sketch.CapErrorBounded — the collector composes certified
	// intervals, which needs QueryWithError. Default "Ours".
	Algo string
	// Spec sizes each agent's sketch. For Lambda-consuming variants
	// (ReliableSketch) Spec.Lambda is the per-agent error tolerance, so a
	// key measured at k agents carries a certified global error of at most
	// k·Lambda; variants that ignore Lambda (SS) still compose soundly, but
	// their global bound is the sum of their own per-query MPEs, not
	// k·Lambda. Spec.Emergency is forced on so the composed bounds stay
	// unconditional even under insertion failure.
	Spec sketch.Spec
	// Epoch, when positive, switches the collector to windowed measurement:
	// each agent's state becomes an epoch.Ring rotating every Epoch.
	// Global queries then cover the retained sliding window (all sealed
	// epochs) instead of all time, and agents may issue window queries over
	// the last n epochs.
	Epoch time.Duration
	// WindowEpochs is the ring capacity in epoch mode (sealed windows
	// retained per agent); ≤ 0 means epoch.DefaultCapacity.
	WindowEpochs int
	// Clock overrides time for epoch rotation (tests); nil means wall time.
	Clock epoch.Clock
	// DisableMergedView turns off the incrementally merged global sketch in
	// cumulative mode, forcing the estimate-sum query path even for
	// Mergeable variants (benchmark/ablation control).
	DisableMergedView bool
	// Ingest tunes the collector's shared write pipeline (workers, queue
	// depth, backpressure policy, flush thresholds). Zero fields take the
	// ingest package defaults.
	Ingest ingest.Tuning
	// WAL, when non-nil, makes ingest durable: every decoded wire batch is
	// appended (with its agent attribution) before entering the pipeline,
	// and NewCollector replays records past WALStartLSN — the restored
	// checkpoint's cut — before accepting connections. Cumulative mode only:
	// replaying old records into epoch rings would resurrect expired traffic
	// into the live window.
	WAL *wal.Log
	// WALStartLSN is the WAL position the restored checkpoint covers (0 for
	// a cold start); replay begins strictly after max(WALStartLSN, the
	// log's own watermark).
	WALStartLSN uint64
	// Logf receives connection-level diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// agentState is one agent's measurement state. Each agent has its own lock
// so ingest from different agents never serializes on shared collector
// state (the previous design held one collector-wide mutex across every
// InsertBatch). Exactly one of sk/ring is set, per the collector's mode.
type agentState struct {
	mu   sync.Mutex
	sk   sketch.ErrorBounded // cumulative mode
	ring *epoch.Ring         // epoch mode (locks internally)

	// wire counts updates accepted from this agent's connections (and WAL
	// replay of them) — the per-agent split of the collector-wide updates
	// counter, exposed as netsum_agent_updates_total{agent="..."}.
	wire telemetry.Counter
}

// Collector terminates agent connections, maintains one error-bounded
// sketch (or epoch ring) per agent, and answers global queries with
// certified bounds.
type Collector struct {
	cfg   CollectorConfig
	entry sketch.Entry
	ln    net.Listener

	// mu guards the agents map and the baseline pointer; per-agent sketch
	// access takes the agent's own lock.
	mu     sync.Mutex
	agents map[uint64]*agentState

	// baseline is pre-restart state restored from a checkpoint (cumulative
	// mode only). It is read-only after RestoreBaseline publishes it, so
	// queries read it lock-free; its certified interval is summed into the
	// estimate-sum composition exactly like another agent's.
	baseline sketch.ErrorBounded

	// global is the incrementally merged all-agents sketch (cumulative mode
	// with a Mergeable variant). Pipeline workers fold their private deltas
	// into it under globalMu, which is held only for those per-flush merges
	// and for merged-view queries — never per frame, never for per-agent
	// ingest.
	globalMu sync.Mutex
	global   sketch.ErrorBounded

	// pipe is the collector-wide ingest plane: decoded wire batches are
	// submitted (Source = agent ID) instead of applied under locks in the
	// connection handler. Workers land each batch in its agent's own state
	// (attribution, in per-agent submission order) and accumulate the
	// merged view's deltas. Query paths Drain it first, so answers cover
	// everything producers were acked for.
	pipe *ingest.Pipeline

	// walMu orders WAL appends against snapshot cuts: connection handlers
	// hold it shared around each (append, submit) pair, SnapshotGlobal holds
	// it exclusive around (drain, serialize, capture LastLSN). walCut is the
	// last cut — the point the log may be truncated through once that
	// checkpoint file is durable (WALCheckpointCommitted).
	walMu  sync.RWMutex
	walCut atomic.Uint64

	// updates/queries double as the collector's Prometheus instruments
	// (RegisterMetrics); a telemetry.Counter is the same single atomic word
	// the atomic.Uint64 each replaced was.
	updates telemetry.Counter
	queries telemetry.Counter

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// NewCollector starts a collector listening on addr (e.g. "127.0.0.1:0").
func NewCollector(addr string, cfg CollectorConfig) (*Collector, error) {
	if cfg.Algo == "" {
		cfg.Algo = "Ours"
	}
	if cfg.Spec.MemoryBytes == 0 {
		cfg.Spec.MemoryBytes = 1 << 20
	}
	cfg.Spec.Emergency = true
	entry, ok := sketch.Lookup(cfg.Algo)
	if !ok {
		return nil, fmt.Errorf("netsum: unknown algorithm %q", cfg.Algo)
	}
	if !entry.Caps.Has(sketch.CapErrorBounded) {
		return nil, fmt.Errorf("netsum: algorithm %q cannot certify errors (need one of: %s)",
			cfg.Algo, errorBoundedNames())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsum: listen: %w", err)
	}
	c := &Collector{
		cfg:    cfg,
		entry:  entry,
		ln:     ln,
		agents: make(map[uint64]*agentState),
		closed: make(chan struct{}),
	}
	opts := ingest.Options{Tuning: cfg.Ingest, Apply: c.applyBatch, Logf: cfg.Logf}
	if cfg.Epoch <= 0 && !cfg.DisableMergedView && entry.Caps.Has(sketch.CapMergeable) {
		built, err := c.buildErrorBounded()
		if err != nil {
			ln.Close()
			return nil, err
		}
		c.global = built
		// Worker deltas are same-Spec siblings of the global view; the view
		// itself proves the build is Mergeable, so NewDelta cannot fail.
		if _, ok := built.(sketch.Mergeable); !ok {
			ln.Close()
			return nil, fmt.Errorf("netsum: %q registered Mergeable but built %T without Merge", cfg.Algo, built)
		}
		// buildErrorBounded was just proven to succeed (c.global); a nil
		// delta would otherwise silently freeze the merged view, so the
		// pipeline treats it as a failure.
		opts.NewDelta = func() sketch.Sketch { b, _ := c.buildErrorBounded(); return b }
		opts.Fold = c.foldGlobal
	}
	c.pipe = ingest.New(opts)
	if cfg.WAL != nil {
		if cfg.Epoch > 0 {
			c.pipe.Close()
			ln.Close()
			return nil, errors.New("netsum: WAL-backed ingest is cumulative-mode only (epoch-ring state ages out instead)")
		}
		if cfg.Ingest.Policy == ingest.Drop {
			// Drop would let a momentarily full queue refuse a batch that is
			// already durable on disk — live state says dropped, the log
			// resurrects it on replay, and the same race makes replay itself
			// fail on a healthy log. Block is the only policy whose acks the
			// WAL can honestly extend across a crash.
			c.pipe.Close()
			ln.Close()
			return nil, errors.New("netsum: WAL-backed ingest requires the block policy (drop could refuse a durable batch live, then resurrect it on replay)")
		}
		// Replay the un-checkpointed tail through the same pipeline live
		// traffic takes, before the listener accepts anything — so replayed
		// and live batches never interleave, and per-agent attribution
		// (Source, stored per record) lands exactly as it did pre-crash.
		if err := c.replayWAL(cfg.WAL, cfg.WALStartLSN); err != nil {
			c.pipe.Close()
			ln.Close()
			return nil, err
		}
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// replayWAL feeds every record past the checkpoint cut (and the log's own
// watermark) back through the ingest pipeline and drains it to visibility.
func (c *Collector) replayWAL(l *wal.Log, startLSN uint64) error {
	after := max(startLSN, l.Watermark())
	if _, err := l.Replay(after, func(b ingest.Batch, lsn uint64) error {
		// The pipeline is always Block here (NewCollector refuses WAL+Drop),
		// so Submit never refuses for a full queue — Dropped > 0 means the
		// pipeline itself failed or closed, which recovery must not paper
		// over.
		ack := c.pipe.Submit(b)
		if ack.Dropped > 0 {
			return fmt.Errorf("netsum: replaying wal record %d: %d items refused (pipeline failed)", lsn, ack.Dropped)
		}
		c.updates.Add(uint64(ack.Accepted))
		st, err := c.stateFor(b.Source - 1)
		if err != nil {
			return fmt.Errorf("netsum: replaying wal record %d: %w", lsn, err)
		}
		st.wire.Add(uint64(ack.Accepted))
		return nil
	}); err != nil {
		return fmt.Errorf("netsum: wal replay: %w", err)
	}
	if err := c.drainIngest(); err != nil {
		return fmt.Errorf("netsum: wal replay: %w", err)
	}
	c.walCut.Store(after)
	return nil
}

// applyBatch is the pipeline's attribution hook: land the batch in its
// source agent's own state under that agent's own lock. The wire handler
// submits with Source = agentID+1, so even agent 0 gets a sticky non-zero
// source: batches from one agent are applied by one worker in submission
// order, and per-agent attribution and ordering are exactly what the
// synchronous path produced.
func (c *Collector) applyBatch(b ingest.Batch) error {
	st, err := c.stateFor(b.Source - 1)
	if err != nil {
		return err
	}
	if st.ring != nil {
		st.ring.InsertBatch(b.Items)
	} else {
		st.mu.Lock()
		sketch.InsertBatch(st.sk, b.Items)
		st.mu.Unlock()
	}
	return nil
}

// foldGlobal merges one worker's delta into the merged global view — the
// only write to shared collector state, one short globalMu hold per flush
// instead of one per wire frame.
func (c *Collector) foldGlobal(delta sketch.Sketch) error {
	c.globalMu.Lock()
	err := sketch.Merge(c.global, delta)
	c.globalMu.Unlock()
	if err != nil {
		return fmt.Errorf("netsum: merging delta into global view: %w", err)
	}
	return nil
}

// drainIngest is the read-your-writes barrier query and snapshot paths take
// before touching agent or global state: everything producers were acked
// for is applied and folded when it returns. A pipeline error means acked
// items were lost (a failed fold discards its delta) — callers with an
// error channel must refuse to answer rather than serve a certified
// interval that provably misses traffic.
func (c *Collector) drainIngest() error {
	if err := c.pipe.Drain(); err != nil {
		c.logf("netsum: ingest pipeline: %v", err)
		return fmt.Errorf("netsum: ingest pipeline lost acked items: %w", err)
	}
	return nil
}

// buildErrorBounded constructs one configured sketch, verifying the
// registry's ErrorBounded declaration. The registry conformance tests pin
// capabilities to implemented interfaces (including under Spec.Shards), so
// a failed assertion means a misregistered variant.
func (c *Collector) buildErrorBounded() (sketch.ErrorBounded, error) {
	built := c.entry.Build(c.cfg.Spec)
	eb, ok := built.(sketch.ErrorBounded)
	if !ok {
		return nil, fmt.Errorf("netsum: %q registered ErrorBounded but built %T without QueryWithError",
			c.cfg.Algo, built)
	}
	return eb, nil
}

// capabilityNames lists the registry variants carrying caps, for error
// messages suggesting usable alternatives.
func capabilityNames(caps sketch.Capability) string {
	var names []string
	for _, e := range sketch.ByCapability(caps) {
		names = append(names, e.Name)
	}
	return strings.Join(names, ", ")
}

// errorBoundedNames lists the registry variants usable as collector
// sketches, for error messages.
func errorBoundedNames() string {
	return capabilityNames(sketch.CapErrorBounded)
}

// Addr returns the listener's address, for clients to dial.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// MergeBased reports whether global queries are served from the
// incrementally merged view (intersected with the estimate-sum interval)
// rather than estimate-summing alone.
func (c *Collector) MergeBased() bool { return c.global != nil }

// Close stops accepting, waits for connection handlers to drain, then
// closes the ingest pipeline (folding everything accepted). Idempotent:
// later calls return the first call's result.
func (c *Collector) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		err := c.ln.Close()
		c.wg.Wait()
		if perr := c.pipe.Close(); perr != nil && err == nil {
			err = perr
		}
		c.closeErr = err
	})
	return c.closeErr
}

// IngestStats snapshots the shared write pipeline's counters.
func (c *Collector) IngestStats() ingest.Stats { return c.pipe.Stats() }

func (c *Collector) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
				c.logf("netsum: accept: %v", err)
				return
			}
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := c.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				c.logf("netsum: connection %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// stateFor returns (creating on first contact) the agent's state. Only the
// map lookup runs under the collector-wide lock.
func (c *Collector) stateFor(agentID uint64) (*agentState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.agents[agentID]
	if ok {
		return st, nil
	}
	st = &agentState{}
	if c.cfg.Epoch > 0 {
		st.ring = epoch.NewRing(c.entry.Factory(c.cfg.Spec), c.cfg.Spec.MemoryBytes,
			c.cfg.Epoch, c.cfg.WindowEpochs, c.cfg.Clock)
	} else {
		eb, err := c.buildErrorBounded()
		if err != nil {
			return nil, err
		}
		st.sk = eb
	}
	c.agents[agentID] = st
	return st, nil
}

// handle runs one agent connection to completion. Batch frames feed the
// shared ingest pipeline directly — the handler decodes and submits, taking
// no collector lock, so a slow sketch never stalls the wire (Block policy
// pushes back through the bounded queue instead; Drop sheds, counted).
func (c *Collector) handle(conn net.Conn) error {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 16<<10)

	var agentID uint64
	var agentSt *agentState // this agent's state, resolved once at hello
	haveHello := false
	reply := func(typ byte, payload []byte) error {
		if err := writeFrame(bw, typ, payload); err != nil {
			return err
		}
		return bw.Flush()
	}
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return err
		}
		switch typ {
		case msgHello:
			u := &uvarintReader{buf: payload}
			id, err := u.next()
			if err != nil {
				return err
			}
			// Optional trailing protocol version (absent on v1 agents).
			// Purely informational today: the collector answers every
			// version's frames, so nothing branches on it.
			if v, verr := u.next(); verr == nil && v > ProtocolVersion {
				c.logf("netsum: agent %d speaks protocol v%d, newer than ours (v%d)",
					id, v, ProtocolVersion)
			}
			// The pipeline source is agentID+1 (0 is the round-robin
			// sentinel), so the one wrapping ID cannot be attributed.
			if id == math.MaxUint64 {
				return fmt.Errorf("netsum: agent id %d is reserved", id)
			}
			// Pre-create the agent's state so a misconfigured registry fails
			// the connection at hello, not asynchronously in a worker.
			st, err := c.stateFor(id)
			if err != nil {
				return err
			}
			agentID, agentSt, haveHello = id, st, true

		case msgBatch:
			if !haveHello {
				return errors.New("netsum: batch before hello")
			}
			ups, err := decodeBatch(payload)
			if err != nil {
				return err
			}
			// Source is agentID+1: sticky per-agent routing even for agent
			// 0. Counting accepted updates here (not in the worker) keeps
			// the Stats counter exact for every frame already handled on
			// this connection, without Stats needing a pipeline drain.
			//
			// With a WAL, the batch hits disk (per the fsync policy) before
			// the pipeline sees it. The v1 wire has no per-batch refusal
			// frame, so a failed append drops the connection — the agent's
			// resend path handles it — rather than silently accepting a
			// write that would vanish on restart.
			batch := ingest.Batch{Items: ups, Source: agentID + 1}
			if c.cfg.WAL != nil {
				c.walMu.RLock()
				_, werr := c.cfg.WAL.Append(batch)
				if werr != nil {
					c.walMu.RUnlock()
					return fmt.Errorf("netsum: wal append: %w", werr)
				}
				ack := c.pipe.Submit(batch)
				c.walMu.RUnlock()
				c.updates.Add(uint64(ack.Accepted))
				agentSt.wire.Add(uint64(ack.Accepted))
				continue
			}
			ack := c.pipe.Submit(batch)
			c.updates.Add(uint64(ack.Accepted))
			agentSt.wire.Add(uint64(ack.Accepted))

		case msgQuery:
			u := &uvarintReader{buf: payload}
			key, err := u.next()
			if err != nil {
				return err
			}
			// The v1 frame has no refusal encoding, so a pipeline failure
			// (acked items lost — the bounds cannot cover them) drops the
			// connection instead of serving a false certificate, exactly
			// as the old synchronous path did on ingest errors.
			if err := c.drainIngest(); err != nil {
				return err
			}
			est, mpe := c.QueryWithError(key)
			if err := reply(msgQueryResp, appendUvarints(nil, key, est, mpe)); err != nil {
				return err
			}

		case msgWindowQuery:
			u := &uvarintReader{buf: payload}
			key, err := u.next()
			if err != nil {
				return err
			}
			n, err := u.next()
			if err != nil {
				return err
			}
			if err := c.drainIngest(); err != nil {
				return err // no v1 refusal encoding; see msgQuery
			}
			est, mpe, covered := c.QueryWindowWithError(key, int(n))
			if err := reply(msgWindowResp, appendUvarints(nil, key, uint64(covered), est, mpe)); err != nil {
				return err
			}

		case msgExecQuery:
			req, err := decodeRequest(payload)
			if err != nil {
				return err
			}
			ans, err := c.Execute(req)
			if err != nil {
				// A refused request (validation, missing capability, unknown
				// agent) is an answer, not a broken connection: report it and
				// keep serving.
				if err := reply(msgExecErr, []byte(err.Error())); err != nil {
					return err
				}
				continue
			}
			if err := reply(msgExecResp, encodeAnswer(ans)); err != nil {
				return err
			}

		case msgStats:
			agents, updates, queries := c.Stats()
			if err := reply(msgStatsResp, appendUvarints(nil, uint64(agents), updates, queries)); err != nil {
				return err
			}

		default:
			return fmt.Errorf("netsum: unknown message type %d", typ)
		}
	}
}

// snapshotAgents copies the current agent set; per-agent locks are taken
// individually afterwards, never while holding the map lock.
func (c *Collector) snapshotAgents() []*agentState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*agentState, 0, len(c.agents))
	for _, st := range c.agents {
		out = append(out, st)
	}
	return out
}

// baselineSketch reads the published warm-restart baseline, if any.
func (c *Collector) baselineSketch() sketch.ErrorBounded {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.baseline
}

// CanSnapshotGlobal reports whether SnapshotGlobal can succeed: the
// collector must maintain the merged global view (a Mergeable variant,
// cumulative measurement, merging enabled) and the variant must support
// snapshots; "Ours" satisfies both.
func (c *Collector) CanSnapshotGlobal() error {
	if c.global == nil {
		return errors.New("netsum: no merged global view to snapshot (epoch mode, or merging disabled, or variant not Mergeable)")
	}
	if _, ok := c.global.(sketch.Snapshotter); !ok {
		return fmt.Errorf("netsum: %q does not support Snapshot (need one of: %s)",
			c.cfg.Algo, capabilityNames(sketch.CapErrorBounded|sketch.CapSnapshottable))
	}
	return nil
}

// SnapshotGlobal checkpoints the merged global view — the collector's full
// ingested history, including any restored baseline — so a restarted
// collector can warm-start from it via RestoreBaseline. The view is
// serialized into memory under globalMu and written to w after releasing
// it, so global queries and per-batch merge folds stall for the
// serialization only, never for the destination's I/O. With a WAL, the
// (drain, serialize, capture LastLSN) cut runs under the exclusive side of
// walMu so no (append, submit) pair straddles it: records at or below the
// cut are in the snapshot, records above it replay on restart.
func (c *Collector) SnapshotGlobal(w io.Writer) error {
	if err := c.CanSnapshotGlobal(); err != nil {
		return err
	}
	sn := c.global.(sketch.Snapshotter)
	if c.cfg.WAL != nil {
		c.walMu.Lock()
	}
	buf, err := c.snapshotCut(sn)
	if c.cfg.WAL != nil {
		if err == nil {
			c.walCut.Store(c.cfg.WAL.LastLSN())
		}
		c.walMu.Unlock()
	}
	if err != nil {
		return err
	}
	_, err = w.Write(buf.Bytes())
	return err
}

// snapshotCut drains pending ingest and serializes the merged view into a
// buffer; the caller handles WAL cut ordering around it.
func (c *Collector) snapshotCut(sn sketch.Snapshotter) (*bytes.Buffer, error) {
	if err := c.drainIngest(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	c.globalMu.Lock()
	err := sn.Snapshot(&buf)
	c.globalMu.Unlock()
	if err != nil {
		return nil, err
	}
	return &buf, nil
}

// WALCutLSN reports the WAL position the most recent SnapshotGlobal cut
// covered (0 with no WAL).
func (c *Collector) WALCutLSN() uint64 { return c.walCut.Load() }

// WALCheckpointCommitted tells the collector its latest SnapshotGlobal is
// durable on disk: the WAL's records through the cut are now redundant, so
// the watermark advances and fully covered segments are deleted.
func (c *Collector) WALCheckpointCommitted() error {
	if c.cfg.WAL == nil {
		return nil
	}
	return c.cfg.WAL.TruncateThrough(c.walCut.Load())
}

// WALStats snapshots the write-ahead log's counters (nil with no WAL).
func (c *Collector) WALStats() *wal.Stats {
	if c.cfg.WAL == nil {
		return nil
	}
	st := c.cfg.WAL.Stats()
	return &st
}

// RestoreBaseline warm-starts the collector from a SnapshotGlobal
// checkpoint: the restored sketch becomes a read-only baseline whose
// certified interval is added to every global answer, and is folded into
// the merged view so merge-based queries cover pre-restart traffic too.
// Both compositions stay certified: the baseline certifies pre-restart
// truth, the per-agent sketches certify post-restart truth, and global
// truth is their sum. Call it once, before agents reconnect; cumulative
// mode only (epoch rings are not checkpointed — their windows age out).
func (c *Collector) RestoreBaseline(r io.Reader) error {
	if c.cfg.Epoch > 0 {
		return errors.New("netsum: warm restart is cumulative-mode only (epoch-ring state ages out instead)")
	}
	built, err := c.buildErrorBounded()
	if err != nil {
		return err
	}
	sn, ok := built.(sketch.Snapshotter)
	if !ok {
		return fmt.Errorf("netsum: %q does not support Restore (need one of: %s)",
			c.cfg.Algo, capabilityNames(sketch.CapErrorBounded|sketch.CapSnapshottable))
	}
	if err := sn.Restore(r); err != nil {
		return fmt.Errorf("netsum: restoring checkpoint: %w", err)
	}
	// Claim the baseline slot before touching the merged view, so a second
	// restore cannot double-fold the checkpoint into it.
	c.mu.Lock()
	if c.baseline != nil {
		c.mu.Unlock()
		return errors.New("netsum: baseline already restored")
	}
	c.baseline = built
	c.mu.Unlock()
	if c.global != nil {
		c.globalMu.Lock()
		err := sketch.Merge(c.global, built)
		c.globalMu.Unlock()
		if err != nil {
			c.mu.Lock()
			c.baseline = nil
			c.mu.Unlock()
			return fmt.Errorf("netsum: folding checkpoint into merged view: %w", err)
		}
	}
	return nil
}

// QueryWithError answers a global query with a certified interval:
// truth ∈ [est − mpe, est]. With the merged view enabled the answer is the
// intersection of the merged sketch's interval and the estimate-sum
// interval — both are certified for the same truth, so the intersection is
// too, and it is by construction never looser than estimate-summing alone.
// In epoch mode "global" means the union of every agent's retained
// sliding window. A thin shim over the batch core (queryGlobalBatch), so
// single-key and batch answers cannot diverge.
func (c *Collector) QueryWithError(key uint64) (est, mpe uint64) {
	// No error channel on this v1 shim: a pipeline failure is logged by
	// drainIngest and keeps surfacing on every Execute/snapshot path.
	_ = c.drainIngest()
	c.queries.Add(1)
	keys := [1]uint64{key}
	var e, m [1]uint64
	c.queryGlobalBatch(keys[:], 0, e[:], m[:])
	return e[0], m[0]
}

// QueryWindowWithError answers a global sliding-window query over the last
// n sealed epochs, summing per-agent certified window answers. covered is
// the widest epoch span any agent actually answered for (0 when the
// collector is not in epoch mode or nothing is sealed yet; in cumulative
// mode the answer degenerates to the all-time global interval). A thin
// shim over the batch core.
func (c *Collector) QueryWindowWithError(key uint64, n int) (est, mpe uint64, covered int) {
	_ = c.drainIngest() // v1 shim, no error channel; see QueryWithError
	c.queries.Add(1)
	keys := [1]uint64{key}
	var e, m [1]uint64
	if c.cfg.Epoch <= 0 {
		c.queryGlobalBatch(keys[:], 0, e[:], m[:])
		return e[0], m[0], 0
	}
	covered = c.estimateSumBatch(keys[:], n, e[:], m[:])
	return e[0], m[0], covered
}

// intersectIntervals combines two certified intervals for the same truth:
// the result's upper end is the smaller estimate, its lower end the larger
// certified floor. If the inputs are inconsistent (possible only if one
// bound is unsound), the estimate-sum interval a is returned unchanged.
func intersectIntervals(aEst, aMpe, bEst, bMpe uint64) (est, mpe uint64) {
	lo := sketch.CertifiedLowerBound(aEst, aMpe)
	if blo := sketch.CertifiedLowerBound(bEst, bMpe); blo > lo {
		lo = blo
	}
	hi := aEst
	if bEst < hi {
		hi = bEst
	}
	if lo > hi {
		return aEst, aMpe
	}
	return hi, hi - lo
}

// Stats reports the number of connected-or-seen agents and the totals of
// updates accepted and queries served. Updates are counted at wire
// acceptance (submission order per connection makes the count exact for
// every frame already handled), so a stats poll never forces the pipeline
// to fold partial deltas — observability stays off the write path.
func (c *Collector) Stats() (agents int, updates, queries uint64) {
	c.mu.Lock()
	agents = len(c.agents)
	c.mu.Unlock()
	return agents, c.updates.Value(), c.queries.Value()
}

// RegisterMetrics exposes the collector's instruments on reg under the
// netsum_* namespace, plus its ingest pipeline's (and, when configured,
// its WAL's). Per-agent wire counters are emitted by a scrape-time
// collector — the agent set is dynamic, so the label set cannot be
// registered up front. The generation gauge reads each ring's published
// generation WITHOUT poking (epoch.PeekGeneration semantics): a scrape
// never drives rotation or drains the pipeline.
func (c *Collector) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCounter("netsum_updates_total", "Updates accepted at wire or replay.", nil, &c.updates)
	reg.RegisterCounter("netsum_queries_total", "Global queries served.", nil, &c.queries)
	reg.GaugeFunc("netsum_agents", "Agents with measurement state.", nil, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.agents))
	})
	reg.GaugeFunc("netsum_generation", "Sum of per-agent published seal counts (no-poke read); 0 in cumulative mode.", nil, func() float64 {
		if c.cfg.Epoch <= 0 {
			return 0
		}
		var gen uint64
		for _, st := range c.snapshotAgents() {
			gen += st.ring.PeekGeneration()
		}
		return float64(gen)
	})
	reg.CollectFunc("netsum_agent_updates_total", "Updates accepted per agent.", telemetry.TypeCounter, func(emit telemetry.Emit) {
		c.mu.Lock()
		ids := make([]uint64, 0, len(c.agents))
		for id := range c.agents {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		states := make([]*agentState, len(ids))
		for i, id := range ids {
			states[i] = c.agents[id]
		}
		c.mu.Unlock()
		for i, id := range ids {
			emit(telemetry.Labels{"agent": strconv.FormatUint(id, 10)}, float64(states[i].wire.Value()))
		}
	})
	c.pipe.RegisterMetrics(reg)
	if c.cfg.WAL != nil {
		c.cfg.WAL.RegisterMetrics(reg)
	}
}

// Epochal reports whether the collector measures in sealed epoch windows —
// when true, every global answer derives only from sealed (immutable)
// windows, so answers are stable for a fixed Generation.
func (c *Collector) Epochal() bool { return c.cfg.Epoch > 0 }

// Generation returns the collector-wide sealed-set generation: the sum of
// every agent ring's seal count. It increments exactly when some agent's
// window seals, so epoch-mode answers are immutable for a fixed generation
// — the invalidation signal result caches key on. Always 0 in cumulative
// mode, where answers change with every ingested batch.
func (c *Collector) Generation() uint64 {
	if c.cfg.Epoch <= 0 {
		return 0
	}
	var gen uint64
	for _, st := range c.snapshotAgents() {
		gen += st.ring.Rotations()
	}
	return gen
}

// TrackedGlobal enumerates the heavy-hitter keys of the merged global view
// with their certified intervals. It requires merge-based mode: per-agent
// tracked sets cannot be combined soundly without merging (the same key may
// be tracked at several agents with incomparable adoption errors).
func (c *Collector) TrackedGlobal() ([]sketch.KV, error) {
	if c.global == nil {
		return nil, errors.New("netsum: heavy-hitter enumeration needs the merged global view (cumulative mode, Mergeable variant, merging enabled)")
	}
	hh, ok := c.global.(sketch.HeavyHitterReporter)
	if !ok {
		return nil, fmt.Errorf("netsum: %q does not report tracked keys (need one of: %s)",
			c.cfg.Algo, capabilityNames(sketch.CapErrorBounded|sketch.CapHeavyHitter))
	}
	if err := c.drainIngest(); err != nil {
		return nil, err
	}
	c.globalMu.Lock()
	defer c.globalMu.Unlock()
	return hh.Tracked(), nil
}

// ErrUnknownAgent marks a window query scoped to an agent the collector
// has never seen; callers distinguish it (a client mistake) from
// collector-side refusals with errors.Is.
var ErrUnknownAgent = errors.New("netsum: unknown agent")

// QueryAgentWindow answers a sliding-window query against one agent's
// epoch ring: key's certified interval over the agent's last n sealed
// epochs. covered is the epoch span actually answered for (0 when nothing
// is sealed yet); n beyond the ring's retention is clamped, mirroring the
// global window query. Errors name the misuse: the collector not in epoch
// mode, a window that cannot cover a single epoch, or an agent the
// collector has never seen.
func (c *Collector) QueryAgentWindow(agentID, key uint64, n int) (est, mpe uint64, covered int, err error) {
	if c.cfg.Epoch <= 0 {
		return 0, 0, 0, errors.New("netsum: agent window queries need epoch mode (CollectorConfig.Epoch > 0)")
	}
	if n < 1 {
		return 0, 0, 0, fmt.Errorf("netsum: window of %d epochs cannot cover anything", n)
	}
	if err := c.drainIngest(); err != nil {
		return 0, 0, 0, err
	}
	c.mu.Lock()
	st, ok := c.agents[agentID]
	c.mu.Unlock()
	if !ok {
		return 0, 0, 0, fmt.Errorf("%w %d", ErrUnknownAgent, agentID)
	}
	c.queries.Add(1)
	e, m, answered := st.ring.QueryWindowWithError(key, n)
	if !answered {
		return 0, 0, 0, nil
	}
	covered = st.ring.Sealed()
	if covered > n {
		covered = n
	}
	return e, m, covered, nil
}
