package netsum

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecodeBatch hardens the update decoder: arbitrary payloads must
// yield an error or a well-formed batch, never a panic or a huge
// allocation.
func FuzzDecodeBatch(f *testing.F) {
	f.Add(encodeBatch([]Update{{Key: 1, Value: 2}, {Key: 3, Value: 4}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, payload []byte) {
		ups, err := decodeBatch(payload)
		if err != nil {
			return
		}
		// Round-trip must be stable for well-formed batches.
		again, err := decodeBatch(encodeBatch(ups))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(ups) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(ups))
		}
	})
}

// FuzzReadFrame hardens the framing layer.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	writeFrame(&buf, msgHello, []byte{42})
	f.Add(buf.Bytes())
	f.Add([]byte{msgBatch})
	f.Add([]byte{0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if len(payload) > maxFrame {
			t.Fatalf("oversized payload %d accepted (type %d)", len(payload), typ)
		}
	})
}
