package netsum

import (
	"bufio"
	"bytes"
	"net"
	"sync"
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgBatch, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgBatch || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("got (%d, %v)", typ, payload)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgBatch, make([]byte, maxFrame+1)); err == nil {
		t.Error("writeFrame accepted oversized payload")
	}
	// Forged oversized header.
	forged := append([]byte{msgBatch}, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(forged))); err == nil {
		t.Error("readFrame accepted forged oversized frame")
	}
}

func TestBatchCodec(t *testing.T) {
	ups := []Update{{Key: 1, Value: 2}, {Key: 999999, Value: 1}, {Key: 0, Value: 7}}
	got, err := decodeBatch(encodeBatch(ups))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ups) {
		t.Fatalf("len=%d", len(got))
	}
	for i := range ups {
		if got[i] != ups[i] {
			t.Fatalf("update %d: %v vs %v", i, got[i], ups[i])
		}
	}
	// Truncated payloads are rejected.
	enc := encodeBatch(ups)
	if _, err := decodeBatch(enc[:len(enc)-1]); err == nil {
		t.Error("decodeBatch accepted truncation")
	}
}

func newTestCollector(t *testing.T) *Collector {
	t.Helper()
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{Lambda: 25, MemoryBytes: 256 << 10, Seed: 1},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSingleAgentEndToEnd(t *testing.T) {
	c := newTestCollector(t)
	a, err := Dial(c.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 1000; i++ {
		if err := a.Record(42, 1); err != nil {
			t.Fatal(err)
		}
	}
	est, mpe, err := a.Query(42)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1000 || est-mpe > 1000 {
		t.Errorf("truth 1000 outside certified [%d, %d]", est-mpe, est)
	}
}

func TestMultiAgentGlobalSums(t *testing.T) {
	c := newTestCollector(t)
	const agents = 4
	const perAgent = 500
	var wg sync.WaitGroup
	for id := 1; id <= agents; id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			a, err := Dial(c.Addr(), id)
			if err != nil {
				t.Errorf("agent %d: %v", id, err)
				return
			}
			defer a.Close()
			for i := 0; i < perAgent; i++ {
				if err := a.Record(7, 1); err != nil {
					t.Errorf("agent %d: %v", id, err)
					return
				}
			}
			// A synchronous round-trip guarantees the collector has
			// processed every frame sent on this connection.
			if _, _, _, err := a.Stats(); err != nil {
				t.Errorf("agent %d sync: %v", id, err)
			}
		}(uint64(id))
	}
	wg.Wait()

	est, mpe := c.QueryWithError(7)
	const truth = agents * perAgent
	if est < truth || est-mpe > truth {
		t.Errorf("global truth %d outside certified [%d, %d]", truth, est-mpe, est)
	}
	nAgents, updates, _ := c.Stats()
	if nAgents != agents {
		t.Errorf("agents=%d want %d", nAgents, agents)
	}
	if updates != truth {
		t.Errorf("updates=%d want %d", updates, truth)
	}
}

func TestRealisticWorkloadCertifiedGlobally(t *testing.T) {
	c := newTestCollector(t)
	// Three vantage points each see a slice of the same traffic.
	s := stream.IPTrace(60_000, 5)
	const agents = 3
	var wg sync.WaitGroup
	for id := 0; id < agents; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			a, err := Dial(c.Addr(), uint64(id+1))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer a.Close()
			for i := id; i < len(s.Items); i += agents {
				if err := a.Record(s.Items[i].Key, s.Items[i].Value); err != nil {
					t.Errorf("record: %v", err)
					return
				}
			}
			if _, _, _, err := a.Stats(); err != nil {
				t.Errorf("sync: %v", err)
			}
		}(id)
	}
	wg.Wait()

	violations := 0
	checked := 0
	for key, f := range s.Truth() {
		est, mpe := c.QueryWithError(key)
		if f > est || est-mpe > f {
			violations++
		}
		checked++
		if checked >= 2000 {
			break
		}
	}
	if violations > 0 {
		t.Errorf("%d/%d keys outside the composed certified interval", violations, checked)
	}
}

func TestQueryOverNetwork(t *testing.T) {
	c := newTestCollector(t)
	a, err := Dial(c.Addr(), 9)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Record(5, 123)
	est, mpe, err := a.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if est < 123 || est-mpe > 123 {
		t.Errorf("certified interval [%d,%d] misses 123", est-mpe, est)
	}
	nAgents, updates, queries, err := a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if nAgents != 1 || updates != 1 || queries == 0 {
		t.Errorf("stats = (%d,%d,%d)", nAgents, updates, queries)
	}
}

func TestBatchBeforeHelloRejected(t *testing.T) {
	c := newTestCollector(t)
	conn, err := dialRaw(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, msgBatch, encodeBatch([]Update{{Key: 1, Value: 1}})); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	// The collector must drop the connection; a subsequent read hits EOF.
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		t.Error("collector kept a connection that violated the protocol")
	}
}

func TestUnknownMessageDropsConnection(t *testing.T) {
	c := newTestCollector(t)
	conn, err := dialRaw(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, 0xEE, nil); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		t.Error("collector accepted unknown message type")
	}
}

func TestUvarintReaderErrors(t *testing.T) {
	u := &uvarintReader{buf: nil}
	if _, err := u.next(); err == nil {
		t.Error("empty buffer should error")
	}
	u = &uvarintReader{buf: []byte{0x80}} // incomplete varint
	if _, err := u.next(); err == nil {
		t.Error("truncated varint should error")
	}
}

// dialRaw opens a bare TCP connection for protocol-violation tests.
func dialRaw(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}
