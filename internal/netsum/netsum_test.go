package netsum

import (
	"bufio"
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/sketch"
	"repro/internal/stream"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgBatch, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgBatch || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("got (%d, %v)", typ, payload)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, msgBatch, make([]byte, maxFrame+1)); err == nil {
		t.Error("writeFrame accepted oversized payload")
	}
	// Forged oversized header.
	forged := append([]byte{msgBatch}, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(forged))); err == nil {
		t.Error("readFrame accepted forged oversized frame")
	}
}

func TestBatchCodec(t *testing.T) {
	ups := []Update{{Key: 1, Value: 2}, {Key: 999999, Value: 1}, {Key: 0, Value: 7}}
	got, err := decodeBatch(encodeBatch(ups))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ups) {
		t.Fatalf("len=%d", len(got))
	}
	for i := range ups {
		if got[i] != ups[i] {
			t.Fatalf("update %d: %v vs %v", i, got[i], ups[i])
		}
	}
	// Truncated payloads are rejected.
	enc := encodeBatch(ups)
	if _, err := decodeBatch(enc[:len(enc)-1]); err == nil {
		t.Error("decodeBatch accepted truncation")
	}
}

func newTestCollector(t *testing.T) *Collector {
	t.Helper()
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{Lambda: 25, MemoryBytes: 256 << 10, Seed: 1},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSingleAgentEndToEnd(t *testing.T) {
	c := newTestCollector(t)
	a, err := Dial(c.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 1000; i++ {
		if err := a.Record(42, 1); err != nil {
			t.Fatal(err)
		}
	}
	est, mpe, err := a.Query(42)
	if err != nil {
		t.Fatal(err)
	}
	if est < 1000 || est-mpe > 1000 {
		t.Errorf("truth 1000 outside certified [%d, %d]", est-mpe, est)
	}
}

func TestMultiAgentGlobalSums(t *testing.T) {
	c := newTestCollector(t)
	const agents = 4
	const perAgent = 500
	var wg sync.WaitGroup
	for id := 1; id <= agents; id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			a, err := Dial(c.Addr(), id)
			if err != nil {
				t.Errorf("agent %d: %v", id, err)
				return
			}
			defer a.Close()
			for i := 0; i < perAgent; i++ {
				if err := a.Record(7, 1); err != nil {
					t.Errorf("agent %d: %v", id, err)
					return
				}
			}
			// A synchronous round-trip guarantees the collector has
			// processed every frame sent on this connection.
			if _, _, _, err := a.Stats(); err != nil {
				t.Errorf("agent %d sync: %v", id, err)
			}
		}(uint64(id))
	}
	wg.Wait()

	est, mpe := c.QueryWithError(7)
	const truth = agents * perAgent
	if est < truth || est-mpe > truth {
		t.Errorf("global truth %d outside certified [%d, %d]", truth, est-mpe, est)
	}
	nAgents, updates, _ := c.Stats()
	if nAgents != agents {
		t.Errorf("agents=%d want %d", nAgents, agents)
	}
	if updates != truth {
		t.Errorf("updates=%d want %d", updates, truth)
	}
}

func TestRealisticWorkloadCertifiedGlobally(t *testing.T) {
	c := newTestCollector(t)
	// Three vantage points each see a slice of the same traffic.
	s := stream.IPTrace(60_000, 5)
	const agents = 3
	var wg sync.WaitGroup
	for id := 0; id < agents; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			a, err := Dial(c.Addr(), uint64(id+1))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer a.Close()
			for i := id; i < len(s.Items); i += agents {
				if err := a.Record(s.Items[i].Key, s.Items[i].Value); err != nil {
					t.Errorf("record: %v", err)
					return
				}
			}
			if _, _, _, err := a.Stats(); err != nil {
				t.Errorf("sync: %v", err)
			}
		}(id)
	}
	wg.Wait()

	violations := 0
	checked := 0
	for key, f := range s.Truth() {
		est, mpe := c.QueryWithError(key)
		if f > est || est-mpe > f {
			violations++
		}
		checked++
		if checked >= 2000 {
			break
		}
	}
	if violations > 0 {
		t.Errorf("%d/%d keys outside the composed certified interval", violations, checked)
	}
}

// feedAgents splits a stream across agent connections round-robin and
// syncs each so the collector has ingested everything.
func feedAgents(t *testing.T, c *Collector, s *stream.Stream, agents int) {
	t.Helper()
	var wg sync.WaitGroup
	for id := 0; id < agents; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			a, err := Dial(c.Addr(), uint64(id+1))
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer a.Close()
			for i := id; i < len(s.Items); i += agents {
				if err := a.Record(s.Items[i].Key, s.Items[i].Value); err != nil {
					t.Errorf("record: %v", err)
					return
				}
			}
			if _, _, _, err := a.Stats(); err != nil {
				t.Errorf("sync: %v", err)
			}
		}(id)
	}
	wg.Wait()
	// The stats round trips above guarantee every frame was ACCEPTED into
	// the ingest pipeline; drain it so helpers that read collector state
	// directly (estimateSumBatch) see it fully applied. Query paths drain
	// for themselves.
	c.drainIngest()
}

// estimateSum reads one key's estimate-sum composition through the batch
// core, for comparing against the merged-view intersection.
func estimateSum(c *Collector, key uint64) (est, mpe uint64) {
	keys := [1]uint64{key}
	var e, m [1]uint64
	c.estimateSumBatch(keys[:], 0, e[:], m[:])
	return e[0], m[0]
}

// TestMergedViewNoLooserThanEstimateSum is the tentpole acceptance
// property: with a Mergeable variant the collector's certified interval
// must contain the truth AND be no looser than the estimate-sum
// composition, because it intersects the merged view with it.
func TestMergedViewNoLooserThanEstimateSum(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{Lambda: 25, MemoryBytes: 256 << 10, Seed: 1},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if !c.MergeBased() {
		t.Fatal("Ours is Mergeable; the collector should maintain a merged view")
	}

	s := stream.IPTrace(60_000, 5)
	feedAgents(t, c, s, 3)

	looser, violations, checked := 0, 0, 0
	for key, f := range s.Truth() {
		sumEst, sumMpe := estimateSum(c, key)
		est, mpe := c.QueryWithError(key)
		if f > est || sketch.CertifiedLowerBound(est, mpe) > f {
			violations++
		}
		if mpe > sumMpe || est > sumEst {
			looser++
		}
		if checked++; checked >= 2_000 {
			break
		}
	}
	if violations > 0 {
		t.Errorf("%d/%d keys outside the merge-based certified interval", violations, checked)
	}
	if looser > 0 {
		t.Errorf("%d/%d merge-based intervals looser than estimate-summing", looser, checked)
	}
}

// TestEstimateSumFallback pins the non-merged path: with the merged view
// disabled the collector must answer exactly like the classic composition.
func TestEstimateSumFallback(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec:              sketch.Spec{Lambda: 25, MemoryBytes: 256 << 10, Seed: 1},
		DisableMergedView: true,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if c.MergeBased() {
		t.Fatal("DisableMergedView was ignored")
	}
	s := stream.IPTrace(30_000, 5)
	feedAgents(t, c, s, 2)
	checked := 0
	for key, f := range s.Truth() {
		sumEst, sumMpe := estimateSum(c, key)
		est, mpe := c.QueryWithError(key)
		if est != sumEst || mpe != sumMpe {
			t.Fatalf("fallback answer (%d,%d) differs from estimate-sum (%d,%d)", est, mpe, sumEst, sumMpe)
		}
		if f > est || sketch.CertifiedLowerBound(est, mpe) > f {
			t.Fatalf("truth %d outside fallback interval [%d,%d]",
				f, sketch.CertifiedLowerBound(est, mpe), est)
		}
		if checked++; checked >= 500 {
			break
		}
	}
}

// TestWindowQueryOverNetwork drives the epoch-mode collector end to end:
// agents stream distinct epochs under a fake clock, then window queries
// must see exactly the covered epochs.
func TestWindowQueryOverNetwork(t *testing.T) {
	clk := &fakeNetClock{now: time.Unix(0, 0)}
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec:         sketch.Spec{Lambda: 25, MemoryBytes: 128 << 10, Seed: 1},
		Epoch:        time.Second,
		WindowEpochs: 4,
		Clock:        clk.Now,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	a, err := Dial(c.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Epoch 0: key 7 ×100. Epoch 1: key 7 ×40. Then seal both.
	record := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := a.Record(7, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := a.Stats(); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	record(100)
	record(40)
	if err := a.Record(9, 1); err != nil { // force the final rotation
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}

	est, mpe, covered, err := a.QueryWindow(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if covered != 1 {
		t.Errorf("covered=%d want 1", covered)
	}
	if est < 40 || sketch.CertifiedLowerBound(est, mpe) > 40 {
		t.Errorf("1-epoch window: truth 40 outside [%d,%d]", sketch.CertifiedLowerBound(est, mpe), est)
	}
	est, mpe, covered, err = a.QueryWindow(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if covered != 2 {
		t.Errorf("covered=%d want 2", covered)
	}
	if est < 140 || sketch.CertifiedLowerBound(est, mpe) > 140 {
		t.Errorf("2-epoch window: truth 140 outside [%d,%d]", sketch.CertifiedLowerBound(est, mpe), est)
	}
	// The plain global query in epoch mode covers the retained window.
	gest, gmpe, err := a.Query(7)
	if err != nil {
		t.Fatal(err)
	}
	if gest < 140 || sketch.CertifiedLowerBound(gest, gmpe) > 140 {
		t.Errorf("epoch-mode global query: truth 140 outside [%d,%d]",
			sketch.CertifiedLowerBound(gest, gmpe), gest)
	}
}

// fakeNetClock is a goroutine-safe manual clock for epoch-mode tests.
type fakeNetClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeNetClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeNetClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func TestQueryOverNetwork(t *testing.T) {
	c := newTestCollector(t)
	a, err := Dial(c.Addr(), 9)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Record(5, 123)
	est, mpe, err := a.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if est < 123 || est-mpe > 123 {
		t.Errorf("certified interval [%d,%d] misses 123", est-mpe, est)
	}
	nAgents, updates, queries, err := a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if nAgents != 1 || updates != 1 || queries == 0 {
		t.Errorf("stats = (%d,%d,%d)", nAgents, updates, queries)
	}
}

func TestBatchBeforeHelloRejected(t *testing.T) {
	c := newTestCollector(t)
	conn, err := dialRaw(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, msgBatch, encodeBatch([]Update{{Key: 1, Value: 1}})); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	// The collector must drop the connection; a subsequent read hits EOF.
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		t.Error("collector kept a connection that violated the protocol")
	}
}

func TestUnknownMessageDropsConnection(t *testing.T) {
	c := newTestCollector(t)
	conn, err := dialRaw(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, 0xEE, nil); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	one := make([]byte, 1)
	if _, err := conn.Read(one); err == nil {
		t.Error("collector accepted unknown message type")
	}
}

func TestUvarintReaderErrors(t *testing.T) {
	u := &uvarintReader{buf: nil}
	if _, err := u.next(); err == nil {
		t.Error("empty buffer should error")
	}
	u = &uvarintReader{buf: []byte{0x80}} // incomplete varint
	if _, err := u.next(); err == nil {
		t.Error("truncated varint should error")
	}
}

// dialRaw opens a bare TCP connection for protocol-violation tests.
func dialRaw(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}
