package netsum

import (
	"errors"
	"fmt"

	"repro/internal/query"
	"repro/internal/sketch"
)

// Execute answers a whole typed batch request against the collector's
// global view — the collector's surface of the unified query plane, and
// what the wire protocol's msgExecQuery frames and queryd's CollectorBackend
// call. Batching is where the collector's amortizations live: every agent's
// sketch is locked exactly once for the whole batch (so all keys see the
// same agent state — no torn reads across keys), per-agent epoch rings are
// read under one sealed-set snapshot, and the merged global view is
// intersected for all keys under one lock hold.
//
// Kinds:
//   - Point answers each key over the collector's whole visible history
//     (all time, or each agent's retained sliding window in epoch mode).
//   - Window answers over the last req.Window sealed epochs (cumulative
//     collectors degenerate to the all-time answer with Coverage 0);
//     req.Agent scopes it to one agent's ring.
//   - TopK enumerates the merged global view's heavy hitters with each
//     key's interval from the same batch core point queries use.
//
// Every answer is certified: the collector only builds ErrorBounded
// variants, so truth ∈ [Lower, Upper] per key.
func (c *Collector) Execute(req query.Request) (query.Answer, error) {
	if err := req.Validate(); err != nil {
		return query.Answer{}, err
	}
	// Read-your-writes: fold everything acked on the wire before answering,
	// so the certified interval covers it (pipelined ingest would otherwise
	// let the merged view lag the per-agent sketches, and the intersection
	// of the two would not be certified for the same history). A pipeline
	// failure means acked items were lost: refuse rather than certify an
	// interval that misses them.
	if err := c.drainIngest(); err != nil {
		return query.Answer{}, err
	}
	c.queries.Add(1)
	ans := query.Answer{Generation: c.Generation(), Source: "collector", Certified: true}

	switch req.Kind {
	case query.TopK:
		kvs, err := c.TrackedGlobal()
		if err != nil {
			return query.Answer{}, err
		}
		kvs = query.TopKOf(kvs, req.K)
		keys := make([]uint64, len(kvs))
		for i, kv := range kvs {
			keys[i] = kv.Key
		}
		est := make([]uint64, len(keys))
		mpe := make([]uint64, len(keys))
		c.queryGlobalBatch(keys, 0, est, mpe)
		ans.PerKey = query.EstimatesFrom(keys, est, mpe)
		ans.Source = "collector+merged"
		return ans, nil

	case query.Window:
		if req.Agent != 0 {
			return c.executeAgentWindow(req, ans)
		}
		est := make([]uint64, len(req.Keys))
		mpe := make([]uint64, len(req.Keys))
		if c.cfg.Epoch <= 0 {
			// Cumulative measurement has no epochs: the answer degenerates
			// to the all-time global interval, flagged by Coverage 0.
			c.queryGlobalBatch(req.Keys, 0, est, mpe)
		} else {
			ans.Coverage = c.estimateSumBatch(req.Keys, req.Window, est, mpe)
		}
		ans.PerKey = query.EstimatesFrom(req.Keys, est, mpe)
		return ans, nil

	default: // query.Point
		est := make([]uint64, len(req.Keys))
		mpe := make([]uint64, len(req.Keys))
		ans.Coverage = c.queryGlobalBatch(req.Keys, 0, est, mpe)
		ans.PerKey = query.EstimatesFrom(req.Keys, est, mpe)
		if c.MergeBased() {
			ans.Source = "collector+merged"
		}
		return ans, nil
	}
}

// executeAgentWindow answers a window batch scoped to one agent's epoch
// ring, under one sealed-set snapshot.
func (c *Collector) executeAgentWindow(req query.Request, ans query.Answer) (query.Answer, error) {
	if c.cfg.Epoch <= 0 {
		return query.Answer{}, errors.New("netsum: agent window queries need epoch mode (CollectorConfig.Epoch > 0)")
	}
	c.mu.Lock()
	st, ok := c.agents[req.Agent]
	c.mu.Unlock()
	if !ok {
		return query.Answer{}, fmt.Errorf("%w %d", ErrUnknownAgent, req.Agent)
	}
	est := make([]uint64, len(req.Keys))
	mpe := make([]uint64, len(req.Keys))
	certified, covered := st.ring.QueryWindowBatch(req.Keys, req.Window, est, mpe)
	if !certified {
		// Nothing sealed yet: zeros over an empty span are vacuously
		// certified (the true sum over zero epochs is zero).
		for i := range mpe {
			mpe[i] = 0
		}
	}
	ans.Coverage = covered
	ans.PerKey = query.EstimatesFrom(req.Keys, est, mpe)
	ans.Source = "collector/agent"
	return ans, nil
}

// estimateSumBatch is the composition path of the batch core: for every
// key, the sum of all agents' certified estimates (plus the warm-restart
// baseline's) with MPEs summed — certified, since a key's global sum equals
// the sum of its per-agent (and pre-restart) sums. Each agent contributes
// under exactly one lock acquisition (or one sealed-set snapshot in epoch
// mode, spanning n epochs; n ≤ 0 means each agent's full retention), so a
// batch costs one lock round-trip per agent instead of one per key per
// agent. covered reports the widest epoch span any agent answered (0 in
// cumulative mode). est and mpe are overwritten.
func (c *Collector) estimateSumBatch(keys []uint64, n int, est, mpe []uint64) (covered int) {
	for i := range keys {
		est[i] = 0
		mpe[i] = 0
	}
	tmpE := make([]uint64, len(keys))
	tmpM := make([]uint64, len(keys))
	add := func() {
		for i := range keys {
			est[i] += tmpE[i]
			mpe[i] += tmpM[i]
		}
	}
	if b := c.baselineSketch(); b != nil {
		sketch.QueryBatch(b, keys, tmpE, tmpM)
		add()
	}
	for _, st := range c.snapshotAgents() {
		if st.ring != nil {
			span := n
			if span <= 0 {
				span = st.ring.Capacity()
			}
			certified, cov := st.ring.QueryWindowBatch(keys, span, tmpE, tmpM)
			if !certified {
				continue // nothing sealed yet: zero contribution
			}
			add()
			if cov > covered {
				covered = cov
			}
			continue
		}
		st.mu.Lock()
		sketch.QueryBatch(st.sk, keys, tmpE, tmpM)
		st.mu.Unlock()
		add()
	}
	return covered
}

// queryGlobalBatch is the shared global-query body of the batch core:
// estimate-sum over every agent, intersected per key with the merged view
// (under one globalMu hold for the whole batch) when one is maintained.
func (c *Collector) queryGlobalBatch(keys []uint64, n int, est, mpe []uint64) (covered int) {
	covered = c.estimateSumBatch(keys, n, est, mpe)
	if c.global == nil {
		return covered
	}
	ge := make([]uint64, len(keys))
	gm := make([]uint64, len(keys))
	c.globalMu.Lock()
	sketch.QueryBatch(c.global, keys, ge, gm)
	c.globalMu.Unlock()
	for i := range keys {
		est[i], mpe[i] = intersectIntervals(est[i], mpe[i], ge[i], gm[i])
	}
	return covered
}
