package netsum

import (
	"bufio"
	"fmt"
	"net"

	"repro/internal/query"
)

// Agent is a measurement point's connection to the collector. It batches
// updates locally (the data-plane pattern: cheap appends on the hot path,
// one frame per flush) and supports synchronous global queries.
//
// Agent is not safe for concurrent use; run one per goroutine, as a
// per-pipeline deployment would.
type Agent struct {
	id      uint64
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	pending []Update
	// sendBuf is the reusable batch-frame encoding buffer: one allocation
	// warms up to the steady-state frame size and every later Flush encodes
	// into it instead of allocating per push.
	sendBuf []byte
	// BatchSize is the flush threshold (default 512 updates).
	BatchSize int
}

// Dial connects an agent to the collector and announces its identity.
func Dial(addr string, agentID uint64) (*Agent, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netsum: dial: %w", err)
	}
	a := &Agent{
		id:        agentID,
		conn:      conn,
		br:        bufio.NewReaderSize(conn, 16<<10),
		bw:        bufio.NewWriterSize(conn, 64<<10),
		BatchSize: 512,
	}
	// The hello carries the protocol version after the agent ID; v1
	// collectors read only the ID and ignore the rest, which is what makes
	// the extension compatible.
	hello := appendUvarints(nil, agentID, ProtocolVersion)
	if err := writeFrame(a.bw, msgHello, hello); err != nil {
		conn.Close()
		return nil, err
	}
	if err := a.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	return a, nil
}

// Record buffers one update, flushing automatically at BatchSize.
func (a *Agent) Record(key, value uint64) error {
	a.pending = append(a.pending, Update{Key: key, Value: value})
	if len(a.pending) >= a.BatchSize {
		return a.Flush()
	}
	return nil
}

// Flush sends all buffered updates.
func (a *Agent) Flush() error {
	if len(a.pending) == 0 {
		return nil
	}
	a.sendBuf = appendBatch(a.sendBuf[:0], a.pending)
	if err := writeFrame(a.bw, msgBatch, a.sendBuf); err != nil {
		return err
	}
	a.pending = a.pending[:0]
	return a.bw.Flush()
}

// Execute flushes pending updates and runs one typed batch request against
// the collector: N point or window queries (or a top-k enumeration) in a
// single round trip, answered under one state snapshot per agent — the wire
// surface of the unified query plane (protocol v2; v1 collectors drop the
// connection on the frame, see ProtocolVersion). The request is validated
// locally before anything is sent.
func (a *Agent) Execute(req query.Request) (query.Answer, error) {
	if err := req.Validate(); err != nil {
		return query.Answer{}, err
	}
	if err := a.Flush(); err != nil {
		return query.Answer{}, err
	}
	if err := writeFrame(a.bw, msgExecQuery, encodeRequest(req)); err != nil {
		return query.Answer{}, err
	}
	if err := a.bw.Flush(); err != nil {
		return query.Answer{}, err
	}
	typ, payload, err := readFrame(a.br)
	if err != nil {
		return query.Answer{}, err
	}
	switch typ {
	case msgExecResp:
		ans, err := decodeAnswer(payload)
		if err != nil {
			return query.Answer{}, err
		}
		if req.Kind != query.TopK && len(ans.PerKey) != len(req.Keys) {
			return query.Answer{}, fmt.Errorf("netsum: answer for %d keys, asked %d",
				len(ans.PerKey), len(req.Keys))
		}
		return ans, nil
	case msgExecErr:
		return query.Answer{}, fmt.Errorf("netsum: collector refused query: %s", payload)
	default:
		return query.Answer{}, fmt.Errorf("netsum: expected exec response, got type %d", typ)
	}
}

// QueryBatch is the convenience form of Execute for global point queries:
// every key's certified interval in one round trip.
func (a *Agent) QueryBatch(keys []uint64) ([]query.Estimate, error) {
	ans, err := a.Execute(query.Request{Kind: query.Point, Keys: keys})
	if err != nil {
		return nil, err
	}
	return ans.PerKey, nil
}

// Query flushes pending updates and asks the collector for key's global
// certified estimate. It speaks the v1 single-key frame — the compat path
// old agents use — so it works against collectors of any version; batch
// work should go through Execute.
func (a *Agent) Query(key uint64) (est, mpe uint64, err error) {
	if err := a.Flush(); err != nil {
		return 0, 0, err
	}
	if err := writeFrame(a.bw, msgQuery, appendUvarints(nil, key)); err != nil {
		return 0, 0, err
	}
	if err := a.bw.Flush(); err != nil {
		return 0, 0, err
	}
	typ, payload, err := readFrame(a.br)
	if err != nil {
		return 0, 0, err
	}
	if typ != msgQueryResp {
		return 0, 0, fmt.Errorf("netsum: expected query response, got type %d", typ)
	}
	u := &uvarintReader{buf: payload}
	gotKey, err := u.next()
	if err != nil {
		return 0, 0, err
	}
	if gotKey != key {
		return 0, 0, fmt.Errorf("netsum: response for key %d, asked %d", gotKey, key)
	}
	if est, err = u.next(); err != nil {
		return 0, 0, err
	}
	if mpe, err = u.next(); err != nil {
		return 0, 0, err
	}
	return est, mpe, nil
}

// QueryWindow flushes pending updates and asks the collector for key's
// global certified estimate over the last n sealed epochs. covered reports
// the widest epoch span any agent's ring actually answered for (0 when the
// collector runs cumulative, non-epoch measurement — the answer then
// degenerates to the all-time global interval).
func (a *Agent) QueryWindow(key uint64, n int) (est, mpe uint64, covered int, err error) {
	if err := a.Flush(); err != nil {
		return 0, 0, 0, err
	}
	if err := writeFrame(a.bw, msgWindowQuery, appendUvarints(nil, key, uint64(n))); err != nil {
		return 0, 0, 0, err
	}
	if err := a.bw.Flush(); err != nil {
		return 0, 0, 0, err
	}
	typ, payload, err := readFrame(a.br)
	if err != nil {
		return 0, 0, 0, err
	}
	if typ != msgWindowResp {
		return 0, 0, 0, fmt.Errorf("netsum: expected window response, got type %d", typ)
	}
	u := &uvarintReader{buf: payload}
	gotKey, err := u.next()
	if err != nil {
		return 0, 0, 0, err
	}
	if gotKey != key {
		return 0, 0, 0, fmt.Errorf("netsum: window response for key %d, asked %d", gotKey, key)
	}
	cov, err := u.next()
	if err != nil {
		return 0, 0, 0, err
	}
	if est, err = u.next(); err != nil {
		return 0, 0, 0, err
	}
	if mpe, err = u.next(); err != nil {
		return 0, 0, 0, err
	}
	return est, mpe, int(cov), nil
}

// Stats flushes and fetches collector-side statistics.
func (a *Agent) Stats() (agents int, updates, queries uint64, err error) {
	if err := a.Flush(); err != nil {
		return 0, 0, 0, err
	}
	if err := writeFrame(a.bw, msgStats, nil); err != nil {
		return 0, 0, 0, err
	}
	if err := a.bw.Flush(); err != nil {
		return 0, 0, 0, err
	}
	typ, payload, err := readFrame(a.br)
	if err != nil {
		return 0, 0, 0, err
	}
	if typ != msgStatsResp {
		return 0, 0, 0, fmt.Errorf("netsum: expected stats response, got type %d", typ)
	}
	u := &uvarintReader{buf: payload}
	ag, err := u.next()
	if err != nil {
		return 0, 0, 0, err
	}
	up, err := u.next()
	if err != nil {
		return 0, 0, 0, err
	}
	q, err := u.next()
	if err != nil {
		return 0, 0, 0, err
	}
	return int(ag), up, q, nil
}

// Close flushes and closes the connection.
func (a *Agent) Close() error {
	flushErr := a.Flush()
	closeErr := a.conn.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
