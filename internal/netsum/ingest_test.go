package netsum

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/sketch"
	"repro/internal/telemetry"
)

// TestCollectorPipelineStats drives the collector's shared ingest plane
// over the wire and checks its accounting: every pushed update is accepted
// and applied, the merged view is built by per-flush folds (not per-frame
// merges), and queries drain the pipeline so acked traffic is always
// visible with certified bounds.
func TestCollectorPipelineStats(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{MemoryBytes: 1 << 18, Lambda: 25, Seed: 1},
		// Tiny flush threshold: several wire frames per fold would hide a
		// per-frame merge; several folds per run proves flushing works.
		Ingest: ingest.Tuning{Workers: 2, FlushItems: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.MergeBased() {
		t.Fatal("default collector should maintain the merged view")
	}

	const agents, perAgent = 3, 1000
	var exact uint64
	for id := uint64(1); id <= agents; id++ {
		a, err := Dial(c.Addr(), id)
		if err != nil {
			t.Fatal(err)
		}
		a.BatchSize = 128
		for i := 0; i < perAgent; i++ {
			if err := a.Record(42, 2); err != nil {
				t.Fatal(err)
			}
			exact += 2
		}
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
		// Query through the same connection: the collector must drain the
		// pipeline before answering, so the interval covers every update
		// this agent was acked for (frames are processed in order).
		est, mpe, err := a.Query(42)
		if err != nil {
			t.Fatal(err)
		}
		lo := sketch.CertifiedLowerBound(est, mpe)
		want := uint64(perAgent) * 2 * id
		if want < lo || want > est {
			t.Fatalf("after agent %d: interval [%d, %d] misses exact %d", id, lo, est, want)
		}
		a.Close()
	}

	_, updates, _ := c.Stats()
	if updates != agents*perAgent {
		t.Fatalf("collector counted %d updates, want %d", updates, agents*perAgent)
	}
	ist := c.IngestStats()
	if ist.Accepted != agents*perAgent || ist.Applied != agents*perAgent || ist.Dropped != 0 {
		t.Fatalf("ingest stats %+v: want %d accepted+applied, 0 dropped", ist, agents*perAgent)
	}
	if ist.Folds < 2 {
		t.Fatalf("ingest stats %+v: expected several per-flush folds", ist)
	}
	if ist.LastError != "" {
		t.Fatalf("pipeline recorded error: %s", ist.LastError)
	}
	if ist.FoldedItems != ist.Applied {
		t.Fatalf("folded %d items of %d applied: merged view is missing traffic", ist.FoldedItems, ist.Applied)
	}
}

// TestAgentZeroAttributed pins the Source mapping: agent ID 0 is a valid
// wire identity (sources are agentID+1, so it still gets sticky per-agent
// routing and exact attribution), while the one unmappable ID is refused
// at hello.
func TestAgentZeroAttributed(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{MemoryBytes: 1 << 18, Lambda: 25, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a, err := Dial(c.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 100; i++ {
		if err := a.Record(5, 3); err != nil {
			t.Fatal(err)
		}
	}
	est, mpe, err := a.Query(5)
	if err != nil {
		t.Fatal(err)
	}
	if lo := sketch.CertifiedLowerBound(est, mpe); lo > 300 || est < 300 {
		t.Fatalf("agent 0 traffic lost: interval [%d, %d] misses 300", lo, est)
	}
	if agents, _, _ := c.Stats(); agents != 1 {
		t.Fatalf("agent 0 not registered: %d agents", agents)
	}

	reserved, err := Dial(c.Addr(), ^uint64(0))
	if err != nil {
		t.Fatal(err) // hello is written; the refusal surfaces on first read
	}
	defer reserved.Close()
	if _, _, err := reserved.Query(1); err == nil {
		t.Fatal("reserved agent id accepted")
	}
}

// TestCollectorRegisterMetrics drives two agents over the wire and checks
// the Prometheus surface: collector-wide counters match Stats, per-agent
// wire counters split the total exactly, and the pipeline's ingest_*
// families ride along.
func TestCollectorRegisterMetrics(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec:   sketch.Spec{MemoryBytes: 1 << 18, Lambda: 25, Seed: 1},
		Ingest: ingest.Tuning{Workers: 2, FlushItems: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reg := telemetry.NewRegistry()
	c.RegisterMetrics(reg)

	perAgent := map[uint64]int{3: 100, 7: 250}
	for id, n := range perAgent {
		a, err := Dial(c.Addr(), id)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := a.Record(uint64(i), 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, _, err := a.Query(1); err != nil {
			t.Fatal(err)
		}
		a.Close()
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	_, updates, queries := c.Stats()
	for _, want := range []string{
		fmt.Sprintf("netsum_updates_total %d", updates),
		fmt.Sprintf("netsum_queries_total %d", queries),
		"netsum_agents 2",
		`netsum_agent_updates_total{agent="3"} 100`,
		`netsum_agent_updates_total{agent="7"} 250`,
		fmt.Sprintf("ingest_accepted_items_total %d", updates),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
