package netsum

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/sketch"
)

// Error-path coverage for the window-query surface: each misuse must be
// named by a distinct error, not silently answered with zeros.

func TestQueryAgentWindowCumulativeModeRejected(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{Lambda: 25, MemoryBytes: 64 << 10, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	_, _, _, err = c.QueryAgentWindow(1, 7, 2)
	if err == nil || !strings.Contains(err.Error(), "epoch mode") {
		t.Errorf("cumulative-mode agent window query: err=%v, want epoch-mode refusal", err)
	}
}

func TestQueryAgentWindowErrorPaths(t *testing.T) {
	clk := &fakeNetClock{now: time.Unix(0, 0)}
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec:         sketch.Spec{Lambda: 25, MemoryBytes: 128 << 10, Seed: 1},
		Epoch:        time.Second,
		WindowEpochs: 4,
		Clock:        clk.Now,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	a, err := Dial(c.Addr(), 9)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 50; i++ {
		if err := a.Record(7, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	// Round-trip a stats request so the batch is known ingested.
	if _, _, _, err := a.Stats(); err != nil {
		t.Fatal(err)
	}

	if _, _, _, err := c.QueryAgentWindow(12345, 7, 2); err == nil ||
		!strings.Contains(err.Error(), "unknown agent") {
		t.Errorf("unknown agent: err=%v", err)
	}
	for _, n := range []int{0, -3} {
		if _, _, _, err := c.QueryAgentWindow(9, 7, n); err == nil {
			t.Errorf("window n=%d accepted", n)
		}
	}

	// Nothing sealed yet: a valid query answers zero coverage, not an error.
	est, mpe, covered, err := c.QueryAgentWindow(9, 7, 2)
	if err != nil || covered != 0 || est != 0 || mpe != 0 {
		t.Errorf("pre-seal window query = (%d,%d,cov=%d,err=%v), want zeros", est, mpe, covered, err)
	}

	// Seal one epoch: the 50 updates become queryable, and a window far
	// wider than the retention clamps instead of failing.
	clk.Advance(time.Second)
	est, mpe, covered, err = c.QueryAgentWindow(9, 7, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if covered != 1 {
		t.Errorf("covered = %d, want 1", covered)
	}
	if est < 50 || est-mpe > 50 {
		t.Errorf("sealed interval [%d,%d] misses exact count 50", est-mpe, est)
	}
}

func TestCollectorGenerationAdvancesOnSeal(t *testing.T) {
	clk := &fakeNetClock{now: time.Unix(0, 0)}
	c, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec:         sketch.Spec{Lambda: 25, MemoryBytes: 64 << 10, Seed: 1},
		Epoch:        time.Second,
		WindowEpochs: 4,
		Clock:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if !c.Epochal() {
		t.Fatal("epoch-mode collector reports Epochal() == false")
	}
	a, err := Dial(c.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Record(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := a.Stats(); err != nil {
		t.Fatal(err)
	}
	before := c.Generation()
	clk.Advance(time.Second)
	// Rotation is opportunistic: any query pokes the ring.
	c.QueryWindowWithError(1, 4)
	if after := c.Generation(); after <= before {
		t.Errorf("generation %d did not advance past %d after a seal", after, before)
	}
}

func TestCollectorWarmRestart(t *testing.T) {
	// The durability contract: a collector restarted from a checkpoint must
	// answer queries whose certified intervals contain the pre-restart
	// exact counts.
	truth := map[uint64]uint64{}
	before, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{Lambda: 25, MemoryBytes: 256 << 10, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !before.MergeBased() {
		t.Fatal("default collector is not merge-based; checkpointing needs the merged view")
	}
	a, err := Dial(before.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5_000; i++ {
		key := uint64(i%257 + 1)
		truth[key] += 3
		if err := a.Record(key, 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := a.Stats(); err != nil {
		t.Fatal(err)
	}
	var checkpoint bytes.Buffer
	if err := before.SnapshotGlobal(&checkpoint); err != nil {
		t.Fatal(err)
	}
	a.Close()
	before.Close()

	after, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec: sketch.Spec{Lambda: 25, MemoryBytes: 256 << 10, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { after.Close() })
	if err := after.RestoreBaseline(bytes.NewReader(checkpoint.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := after.RestoreBaseline(bytes.NewReader(checkpoint.Bytes())); err == nil {
		t.Error("second RestoreBaseline accepted; the checkpoint would double-count")
	}
	for key, f := range truth {
		est, mpe := after.QueryWithError(key)
		if f > est || sketch.CertifiedLowerBound(est, mpe) > f {
			t.Fatalf("key %d: restored interval [%d,%d] misses pre-restart count %d",
				key, sketch.CertifiedLowerBound(est, mpe), est, f)
		}
	}

	// Post-restart traffic must stack on top of the restored baseline.
	b, err := Dial(after.Addr(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 100; i++ {
		if err := b.Record(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := b.Stats(); err != nil {
		t.Fatal(err)
	}
	want := truth[1] + 100
	est, mpe := after.QueryWithError(1)
	if want > est || sketch.CertifiedLowerBound(est, mpe) > want {
		t.Errorf("key 1: interval [%d,%d] misses baseline+new count %d",
			sketch.CertifiedLowerBound(est, mpe), est, want)
	}
}

func TestCheckpointRefusalsAreNamed(t *testing.T) {
	// Epoch mode: neither snapshot nor restore applies.
	epochal, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec:  sketch.Spec{Lambda: 25, MemoryBytes: 64 << 10, Seed: 1},
		Epoch: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { epochal.Close() })
	if err := epochal.SnapshotGlobal(&bytes.Buffer{}); err == nil {
		t.Error("epoch-mode SnapshotGlobal accepted")
	}
	if err := epochal.RestoreBaseline(bytes.NewReader(nil)); err == nil ||
		!strings.Contains(err.Error(), "cumulative") {
		t.Errorf("epoch-mode RestoreBaseline: err=%v", err)
	}
	// Merging disabled: no global view exists to checkpoint.
	noMerge, err := NewCollector("127.0.0.1:0", CollectorConfig{
		Spec:              sketch.Spec{Lambda: 25, MemoryBytes: 64 << 10, Seed: 1},
		DisableMergedView: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { noMerge.Close() })
	if err := noMerge.SnapshotGlobal(&bytes.Buffer{}); err == nil {
		t.Error("merge-disabled SnapshotGlobal accepted")
	}
}
