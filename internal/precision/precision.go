// Package precision implements PRECISION (Ben-Basat, Chen, Einziger,
// Rottenstreich, ICNP 2018), the probabilistic-recirculation heavy-hitter
// algorithm evaluated in Figure 7. A missed key claims the smallest of its
// d mapped slots with probability ≈ value/(min+value) — emulating the
// switch's recirculation of a small sample of packets — so heavy keys
// eventually install themselves while mice rarely recirculate. The paper
// uses d = 3 stages.
package precision

import (
	"repro/internal/sketch"

	"math/rand/v2"

	"repro/internal/hash"
)

// slotBytes accounts one slot: 32-bit key + 32-bit count.
const slotBytes = 8

type slot struct {
	key      uint64
	count    uint64
	occupied bool
}

// Sketch is a PRECISION instance with d stages.
type Sketch struct {
	stages [][]slot
	width  int
	hashes *hash.Family
	rnd    *rand.Rand
	name   string
	// recirculations counts simulated packet recirculations, the quantity
	// that costs bandwidth on a real switch.
	recirculations uint64
}

// New builds a PRECISION sketch with d stages of width slots.
func New(d, width int, seed uint64) *Sketch {
	if d < 1 || width < 1 {
		panic("precision: invalid geometry")
	}
	s := &Sketch{
		stages: make([][]slot, d),
		width:  width,
		hashes: hash.NewFamily(seed, d),
		rnd:    rand.New(rand.NewPCG(seed, seed^0x9ec15104)),
		name:   "PRECISION",
	}
	for i := range s.stages {
		s.stages[i] = make([]slot, width)
	}
	return s
}

// NewBytes builds the paper's d=3 configuration sized to memBytes.
func NewBytes(memBytes int, seed uint64) *Sketch {
	w := memBytes / (3 * slotBytes)
	if w < 1 {
		w = 1
	}
	return New(3, w, seed)
}

// Insert adds value to key: a matched or empty slot absorbs it; otherwise
// the key claims the minimum mapped slot with probability value/(min+value).
func (s *Sketch) Insert(key, value uint64) {
	var minStage, minIdx int
	var minCount uint64
	first := true
	for i := range s.stages {
		j := s.hashes.Bucket(i, key, s.width)
		st := &s.stages[i][j]
		if st.occupied && st.key == key {
			st.count += value
			return
		}
		if !st.occupied {
			*st = slot{key: key, count: value, occupied: true}
			return
		}
		if first || st.count < minCount {
			minStage, minIdx, minCount = i, j, st.count
			first = false
		}
	}
	// Complete miss: probabilistic recirculation against the smallest slot.
	if s.rnd.Float64() < float64(value)/float64(minCount+value) {
		s.recirculations++
		st := &s.stages[minStage][minIdx]
		*st = slot{key: key, count: minCount + value, occupied: true}
	}
	// Otherwise the packet is forwarded uncounted (PRECISION undercounts
	// unsampled traffic).
}

// Query returns the count of the slot holding key, or 0 when untracked.
func (s *Sketch) Query(key uint64) uint64 {
	for i := range s.stages {
		j := s.hashes.Bucket(i, key, s.width)
		st := &s.stages[i][j]
		if st.occupied && st.key == key {
			return st.count
		}
	}
	return 0
}

// Recirculations reports how many inserts triggered a simulated
// recirculation.
func (s *Sketch) Recirculations() uint64 { return s.recirculations }

// Tracked returns all resident entries.
func (s *Sketch) Tracked() []sketch.KV {
	var out []sketch.KV
	for i := range s.stages {
		for j := range s.stages[i] {
			if st := s.stages[i][j]; st.occupied {
				out = append(out, sketch.KV{Key: st.key, Est: st.count})
			}
		}
	}
	return out
}

// MemoryBytes reports d × w × 8 bytes.
func (s *Sketch) MemoryBytes() int { return len(s.stages) * s.width * slotBytes }

// Name identifies the algorithm.
func (s *Sketch) Name() string { return s.name }

// Reset clears all stages.
func (s *Sketch) Reset() {
	for i := range s.stages {
		clear(s.stages[i])
	}
	s.recirculations = 0
}
