package precision

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

var (
	_ sketch.Sketch              = (*Sketch)(nil)
	_ sketch.HeavyHitterReporter = (*Sketch)(nil)
)

func TestSingleKeyExact(t *testing.T) {
	s := New(3, 1024, 1)
	for i := 0; i < 100; i++ {
		s.Insert(3, 1)
	}
	if got := s.Query(3); got != 100 {
		t.Errorf("Query(3)=%d want 100", got)
	}
}

func TestEmptySlotsAdmitImmediately(t *testing.T) {
	s := New(3, 8, 2)
	s.Insert(1, 5)
	if got := s.Query(1); got != 5 {
		t.Errorf("Query(1)=%d want 5", got)
	}
	if s.Recirculations() != 0 {
		t.Error("admission into empty slot should not recirculate")
	}
}

func TestHeavyKeyEventuallyInstalls(t *testing.T) {
	// One slot per stage; a persistent heavy key must eventually claim a
	// slot via probabilistic recirculation.
	s := New(1, 1, 3)
	s.Insert(1, 50) // resident
	installed := false
	for i := 0; i < 10_000; i++ {
		s.Insert(2, 1)
		if s.Query(2) > 0 {
			installed = true
			break
		}
	}
	if !installed {
		t.Error("heavy repeating key never installed (recirculation broken)")
	}
	if s.Recirculations() == 0 {
		t.Error("no recirculations recorded")
	}
}

func TestMiceRarelyRecirculate(t *testing.T) {
	// A full sketch bombarded by one-off mice keys should recirculate only
	// a small fraction of them: P ≈ 1/(min+1) with large resident counts.
	s := New(3, 4, 4)
	// Install heavy residents.
	for k := uint64(0); k < 12; k++ {
		for i := 0; i < 500; i++ {
			s.Insert(k, 1)
		}
	}
	before := s.Recirculations()
	const mice = 10_000
	for k := uint64(1000); k < 1000+mice; k++ {
		s.Insert(k, 1)
	}
	frac := float64(s.Recirculations()-before) / mice
	if frac > 0.15 {
		t.Errorf("mice recirculation rate %.3f too high", frac)
	}
}

func TestHeavyHitterRecall(t *testing.T) {
	s := stream.Zipf(100_000, 10_000, 1.5, 6)
	sk := NewBytes(128<<10, 6)
	for _, it := range s.Items {
		sk.Insert(it.Key, it.Value)
	}
	misses := 0
	heavies := 0
	for k, f := range s.Truth() {
		if f < 2000 {
			continue
		}
		heavies++
		if sk.Query(k) < f/2 {
			misses++
		}
	}
	if heavies > 0 && misses > heavies/5 {
		t.Errorf("%d/%d heavy keys badly undercounted", misses, heavies)
	}
}

func TestMemoryAndReset(t *testing.T) {
	sk := NewBytes(1<<16, 1)
	if sk.MemoryBytes() > 1<<16 {
		t.Errorf("memory %d over budget", sk.MemoryBytes())
	}
	sk.Insert(1, 5)
	sk.Reset()
	if sk.Query(1) != 0 || sk.Recirculations() != 0 {
		t.Error("Reset did not clear")
	}
	if sk.Name() != "PRECISION" {
		t.Errorf("Name=%q", sk.Name())
	}
}

func BenchmarkInsert(b *testing.B) {
	sk := NewBytes(1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Insert(uint64(i&0xffff), 1)
	}
}
