package precision

import "repro/internal/sketch"

func init() {
	sketch.Register("PRECISION",
		sketch.CapHeavyHitter|sketch.CapResettable,
		func(sp sketch.Spec) sketch.Sketch {
			return NewBytes(sp.MemoryBytes, sp.Seed)
		})
}
