// Command snapfixtures regenerates the golden snapshot fixtures under
// testdata/flatten/ that certify the counter-sketch wire formats stay
// bit-exact across layout changes (TestFlattenedSnapshotFixtures at the
// repo root). Each fixture is the raw Snapshot byte stream of a sketch fed
// FixtureCases' deterministic stream half item-at-a-time, half through the
// batch path, so both ingestion paths are pinned.
//
// The fixtures are a compatibility contract: regenerate them ONLY when the
// wire format itself changes intentionally (bump the codec magic when you
// do), never to make a layout refactor pass — a refactor that changes the
// bytes has broken RSK3/checkpoint compatibility.
//
// Usage (from the repo root):
//
//	go run ./internal/tools/snapfixtures
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fixtures"
)

func main() {
	dir := filepath.Join("testdata", "flatten")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "snapfixtures: %v\n", err)
		os.Exit(1)
	}
	for _, c := range fixtures.Cases() {
		sk := fixtures.BuildAndFeed(c)
		var buf bytes.Buffer
		if err := sk.Snapshot(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "snapfixtures: %s: %v\n", c.Name, err)
			os.Exit(1)
		}
		path := filepath.Join(dir, c.Name+".snap")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "snapfixtures: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, buf.Len())
	}
}
