// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive benchmark runs as
// artifacts (BENCH_ingest.json, BENCH_wal.json, BENCH_cache.json) and the
// performance trajectory of the ingest plane is recorded run over run
// instead of scrolling away in logs. Custom b.ReportMetric units (the cache
// suite's "hitrate" and "ops/run") are carried through in a per-benchmark
// metrics map.
//
// Usage:
//
//	go test -run '^$' -bench 'PipelineIngest|InsertBatch' -benchmem . |
//	    go run ./internal/tools/benchjson > BENCH_ingest.json
//
// With -compare it is also the perf-regression gate: the fresh run is
// diffed against a committed baseline document and the process exits
// nonzero when any benchmark's ns/op regresses by more than -threshold
// percent, or (with -allocs) when its allocs/op exceeds the baseline at
// all — allocations are deterministic, so any growth is a real regression,
// not noise. A benchmark carrying a "hitrate" metric is likewise gated:
// hit rate is deterministic for a fixed trace, so any drop beyond rounding
// is an eviction-policy regression. The fresh JSON is still written to
// stdout so one invocation both gates and refreshes the artifact:
//
//	go test -run '^$' -bench ... -benchmem . |
//	    go run ./internal/tools/benchjson -compare BENCH_ingest.json -threshold 10 -allocs > fresh.json
//
// Per-op times are per ITEM for the ingestion benchmarks, so the emitted
// mitems_per_sec compare directly. When both the single-writer baseline
// (BenchmarkInsertBatch/Ours_sharded8) and the pipeline runs
// (BenchmarkPipelineIngest/Ours_sharded8/workers=N) appear in the input,
// a derived speedup-vs-single-writer section is included — the artifact's
// headline is the workers=8 ratio the acceptance bar reads.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// MItemsPerSec is 1e3/NsPerOp: meaningful for benchmarks whose op is
	// one item (the ingestion suite), reported for all.
	MItemsPerSec float64 `json:"mitems_per_sec"`
	BytesPerOp   *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp  *int64  `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units ("hitrate", "ops/run", ...)
	// keyed by unit name. A "hitrate" metric is gated: it is deterministic
	// for a fixed trace, so a drop beyond rounding is a policy regression.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole document.
type Output struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// SpeedupVsSingleWriter maps "workers=N" to pipeline throughput over
	// the single-writer sharded-core InsertBatch baseline.
	SpeedupVsSingleWriter map[string]float64 `json:"speedup_vs_single_writer,omitempty"`
}

const (
	baselineName = "BenchmarkInsertBatch/Ours_sharded8"
	pipelineStem = "BenchmarkPipelineIngest/Ours_sharded8/workers="
)

func main() {
	compare := flag.String("compare", "", "baseline JSON document to gate against; exit 1 on regression")
	threshold := flag.Float64("threshold", 10, "max tolerated ns/op regression in percent (with -compare)")
	gateAllocs := flag.Bool("allocs", false, "with -compare, also fail if allocs/op exceeds the baseline")
	match := flag.String("match", "", "regexp restricting which benchmarks the gate compares (default: all)")
	flag.Parse()

	out := Output{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("benchjson: %v", err)
	}
	out.Benchmarks = aggregate(out.Benchmarks)

	var baseline float64
	for _, b := range out.Benchmarks {
		if trimCPUSuffix(b.Name) == baselineName {
			baseline = b.NsPerOp
		}
	}
	if baseline > 0 {
		for _, b := range out.Benchmarks {
			name := trimCPUSuffix(b.Name)
			if rest, ok := strings.CutPrefix(name, pipelineStem); ok && b.NsPerOp > 0 {
				if out.SpeedupVsSingleWriter == nil {
					out.SpeedupVsSingleWriter = make(map[string]float64)
				}
				out.SpeedupVsSingleWriter["workers="+rest] = round3(baseline / b.NsPerOp)
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatalf("benchjson: %v", err)
	}

	if *compare != "" {
		if !gate(out, *compare, *threshold, *gateAllocs, *match) {
			os.Exit(1)
		}
	}
}

// aggregate folds repeated runs of the same benchmark (-count=N) into its
// best observation: scheduler and frequency noise only ever add time, so
// the minimum ns/op is the stable statistic to record and to gate on.
// First-seen order is preserved; allocs/op come from the kept (fastest)
// run — they are deterministic across runs.
func aggregate(bs []Benchmark) []Benchmark {
	idx := make(map[string]int, len(bs))
	out := bs[:0]
	for _, b := range bs {
		name := trimCPUSuffix(b.Name)
		if j, ok := idx[name]; ok {
			if b.NsPerOp < out[j].NsPerOp {
				out[j] = b
			}
			continue
		}
		idx[name] = len(out)
		out = append(out, b)
	}
	return out
}

// gate diffs the fresh run against the committed baseline document and
// reports per-benchmark deltas on stderr. It returns false when any
// compared benchmark regresses beyond the tolerances. Benchmarks present
// on only one side are reported but never fail the gate: renames and suite
// growth go through a baseline refresh, not a red build.
func gate(fresh Output, baselinePath string, threshold float64, gateAllocs bool, match string) bool {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fatalf("benchjson: -compare: %v", err)
	}
	var base Output
	if err := json.Unmarshal(raw, &base); err != nil {
		fatalf("benchjson: -compare %s: %v", baselinePath, err)
	}
	var re *regexp.Regexp
	if match != "" {
		re, err = regexp.Compile(match)
		if err != nil {
			fatalf("benchjson: -match: %v", err)
		}
	}
	old := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		old[trimCPUSuffix(b.Name)] = b
	}

	ok := true
	compared := 0
	fmt.Fprintf(os.Stderr, "perf gate vs %s (threshold %+.0f%% ns/op", baselinePath, threshold)
	if gateAllocs {
		fmt.Fprint(os.Stderr, ", allocs/op must not grow")
	}
	fmt.Fprintln(os.Stderr, ")")
	for _, b := range fresh.Benchmarks {
		name := trimCPUSuffix(b.Name)
		if re != nil && !re.MatchString(name) {
			continue
		}
		o, found := old[name]
		if !found {
			fmt.Fprintf(os.Stderr, "  new  %-52s %10.2f ns/op (no baseline entry)\n", name, b.NsPerOp)
			continue
		}
		delete(old, name)
		compared++
		delta := 100 * (b.NsPerOp - o.NsPerOp) / o.NsPerOp
		verdict := "ok"
		if delta > threshold {
			verdict = "FAIL"
			ok = false
		}
		fmt.Fprintf(os.Stderr, "  %-4s %-52s %10.2f -> %8.2f ns/op  %+6.1f%%\n",
			verdict, name, o.NsPerOp, b.NsPerOp, delta)
		if gateAllocs && o.AllocsPerOp != nil && b.AllocsPerOp != nil && *b.AllocsPerOp > *o.AllocsPerOp {
			ok = false
			fmt.Fprintf(os.Stderr, "  FAIL %-52s %10d -> %8d allocs/op\n",
				name, *o.AllocsPerOp, *b.AllocsPerOp)
		}
		// Hit rate is deterministic for a fixed trace: allow only rounding
		// slack, any larger drop means the eviction policy got worse.
		if oh, hasOld := o.Metrics["hitrate"]; hasOld {
			if bh, hasNew := b.Metrics["hitrate"]; hasNew && bh < oh-0.005 {
				ok = false
				fmt.Fprintf(os.Stderr, "  FAIL %-52s %10.4f -> %8.4f hitrate\n",
					name, oh, bh)
			}
		}
	}
	for name := range old {
		if re != nil && !re.MatchString(name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "  gone %-52s (in baseline, not in this run)\n", name)
	}
	if compared == 0 {
		// An empty comparison would pass vacuously — a broken -bench regexp
		// or a renamed suite must not masquerade as a green gate.
		fmt.Fprintln(os.Stderr, "benchjson: gate compared 0 benchmarks")
		return false
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "benchjson: performance regression detected")
	}
	return ok
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// trimCPUSuffix drops go's -GOMAXPROCS name suffix ("...-8").
func trimCPUSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseLine reads one result line: name, iterations, then unit-tagged
// value pairs ("123 ns/op", "45 B/op", "6 allocs/op").
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			if v > 0 {
				b.MItemsPerSec = round3(1e3 / v)
			}
		case "B/op":
			n := int64(v)
			b.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			b.AllocsPerOp = &n
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[fields[i+1]] = v
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
