// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive benchmark runs as
// artifacts (BENCH_ingest.json) and the performance trajectory of the
// ingest plane is recorded run over run instead of scrolling away in logs.
//
// Usage:
//
//	go test -run '^$' -bench 'PipelineIngest|InsertBatch' . | go run ./internal/tools/benchjson > BENCH_ingest.json
//
// Per-op times are per ITEM for the ingestion benchmarks, so the emitted
// mitems_per_sec compare directly. When both the single-writer baseline
// (BenchmarkInsertBatch/Ours_sharded8) and the pipeline runs
// (BenchmarkPipelineIngest/Ours_sharded8/workers=N) appear in the input,
// a derived speedup-vs-single-writer section is included — the artifact's
// headline is the workers=8 ratio the acceptance bar reads.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// MItemsPerSec is 1e3/NsPerOp: meaningful for benchmarks whose op is
	// one item (the ingestion suite), reported for all.
	MItemsPerSec float64 `json:"mitems_per_sec"`
	BytesPerOp   *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp  *int64  `json:"allocs_per_op,omitempty"`
}

// Output is the whole document.
type Output struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// SpeedupVsSingleWriter maps "workers=N" to pipeline throughput over
	// the single-writer sharded-core InsertBatch baseline.
	SpeedupVsSingleWriter map[string]float64 `json:"speedup_vs_single_writer,omitempty"`
}

const (
	baselineName = "BenchmarkInsertBatch/Ours_sharded8"
	pipelineStem = "BenchmarkPipelineIngest/Ours_sharded8/workers="
)

func main() {
	out := Output{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			out.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			out.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			out.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			out.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	var baseline float64
	for _, b := range out.Benchmarks {
		if trimCPUSuffix(b.Name) == baselineName {
			baseline = b.NsPerOp
		}
	}
	if baseline > 0 {
		for _, b := range out.Benchmarks {
			name := trimCPUSuffix(b.Name)
			if rest, ok := strings.CutPrefix(name, pipelineStem); ok && b.NsPerOp > 0 {
				if out.SpeedupVsSingleWriter == nil {
					out.SpeedupVsSingleWriter = make(map[string]float64)
				}
				out.SpeedupVsSingleWriter["workers="+rest] = round3(baseline / b.NsPerOp)
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// trimCPUSuffix drops go's -GOMAXPROCS name suffix ("...-8").
func trimCPUSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseLine reads one result line: name, iterations, then unit-tagged
// value pairs ("123 ns/op", "45 B/op", "6 allocs/op").
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			if v > 0 {
				b.MItemsPerSec = round3(1e3 / v)
			}
		case "B/op":
			n := int64(v)
			b.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			b.AllocsPerOp = &n
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
