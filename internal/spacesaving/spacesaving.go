// Package spacesaving implements the Space-Saving algorithm (Metwally et
// al., ICDT 2005), the strongest heap-based competitor in the paper's
// evaluation and the structure ReliableSketch uses as its emergency
// (d+1)-th layer (paper §3.3, Theorem 4).
//
// Space-Saving maintains m counters. A tracked key's counter is an
// overestimate of its true sum with error at most the value the counter had
// when the key was adopted; an untracked key's sum is at most the minimum
// counter. Both bounds are certified, which is why the paper classifies it
// as achieving optimal (100%) overall confidence — at the cost of a
// non-parallelizable O(log(N/Λ)) heap on every insertion, the weakness
// ReliableSketch attacks.
package spacesaving

import (
	"fmt"
	"sort"

	"repro/internal/sketch"
)

// entry is one monitored counter.
type entry struct {
	key   uint64
	count uint64
	err   uint64 // counter value when the key was adopted (its max error)
}

// Sketch is a Space-Saving summary with a fixed number of counters.
// The min-heap over counts makes Insert O(log m) in the worst case.
type Sketch struct {
	heap []entry        // min-heap ordered by count
	pos  map[uint64]int // key -> heap index
	cap  int
	name string
}

// EntryBytes is the per-counter memory accounting: a 32-bit key fingerprint,
// a 32-bit counter, a 32-bit adoption error, and a 32-bit heap/link slot, as
// a pointer-based C++ stream-summary implementation would spend.
const EntryBytes = 16

// New builds a Space-Saving sketch with the given number of counters.
func New(counters int) *Sketch {
	if counters < 1 {
		counters = 1
	}
	return &Sketch{
		heap: make([]entry, 0, counters),
		pos:  make(map[uint64]int, counters),
		cap:  counters,
		name: "SS",
	}
}

// NewBytes builds a sketch fitting the given memory budget under the
// EntryBytes accounting model.
func NewBytes(memBytes int) *Sketch {
	return New(memBytes / EntryBytes)
}

// Counters returns the configured capacity.
func (s *Sketch) Counters() int { return s.cap }

// Insert adds value to key's counter, adopting the key by evicting the
// minimum counter if it is not yet tracked and the structure is full.
func (s *Sketch) Insert(key, value uint64) {
	if i, ok := s.pos[key]; ok {
		s.heap[i].count += value
		s.siftDown(i)
		return
	}
	if len(s.heap) < s.cap {
		s.heap = append(s.heap, entry{key: key, count: value})
		i := len(s.heap) - 1
		s.pos[key] = i
		s.siftUp(i)
		return
	}
	// Evict the minimum: the newcomer inherits its count as certified error.
	min := &s.heap[0]
	delete(s.pos, min.key)
	adopted := min.count
	*min = entry{key: key, count: adopted + value, err: adopted}
	s.pos[key] = 0
	s.siftDown(0)
}

// Query returns the estimate for key: its counter if tracked, else the
// minimum counter (a certified upper bound on any untracked key's sum).
func (s *Sketch) Query(key uint64) uint64 {
	if i, ok := s.pos[key]; ok {
		return s.heap[i].count
	}
	if len(s.heap) < s.cap || len(s.heap) == 0 {
		// Not full: every key ever seen is tracked, so an untracked key has
		// true sum 0.
		return 0
	}
	return s.heap[0].count
}

// QueryWithError returns the estimate and its certified maximum error,
// making Space-Saving usable as ReliableSketch's emergency layer.
func (s *Sketch) QueryWithError(key uint64) (est, mpe uint64) {
	if i, ok := s.pos[key]; ok {
		return s.heap[i].count, s.heap[i].err
	}
	if len(s.heap) < s.cap || len(s.heap) == 0 {
		return 0, 0
	}
	m := s.heap[0].count
	return m, m
}

// Merge folds another Space-Saving summary into the receiver, keeping the
// receiver's capacity (the classic mergeable-summaries construction,
// Agarwal et al., PODS 2012, adapted to our per-entry adoption errors).
// Writing minX for a full summary's minimum counter (0 when not full):
//
//   - keys tracked in both: counts and errors add;
//   - keys tracked in one: the other side contributes at most its min, so
//     count and err both grow by that min;
//   - of the combined entries, only the top-capacity survive; every dropped
//     count is ≤ every kept one, and every untracked key's union sum is
//     ≤ minA + minB ≤ the new minimum counter,
//
// so both certified bounds (tracked: truth ∈ [count−err, count]; untracked:
// truth ≤ min counter) hold for the union stream.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return sketch.MergeIncompatible(s, other, "not a Space-Saving summary")
	}
	if s.cap != o.cap {
		// Equal capacities guarantee the merged summary is full whenever
		// either input was, which the untracked-key bound (truth ≤ min
		// counter, 0 when not full) depends on: merging a full small summary
		// into a roomy one would leave its evicted keys certified as 0.
		return sketch.MergeIncompatible(s, other, fmt.Sprintf("capacity %d vs %d", s.cap, o.cap))
	}
	minA, minB := s.minIfFull(), o.minIfFull()
	merged := make([]entry, 0, len(s.heap)+len(o.heap))
	for _, e := range s.heap {
		if j, ok := o.pos[e.key]; ok {
			other := o.heap[j]
			merged = append(merged, entry{key: e.key, count: e.count + other.count, err: e.err + other.err})
		} else {
			merged = append(merged, entry{key: e.key, count: e.count + minB, err: e.err + minB})
		}
	}
	for _, e := range o.heap {
		if _, ok := s.pos[e.key]; ok {
			continue
		}
		merged = append(merged, entry{key: e.key, count: e.count + minA, err: e.err + minA})
	}
	if len(merged) > s.cap {
		// Keep the top-cap counts; order among kept entries is irrelevant
		// (the heap is rebuilt below).
		sort.Slice(merged, func(i, j int) bool { return merged[i].count > merged[j].count })
		merged = merged[:s.cap]
	}
	s.heap = s.heap[:0]
	clear(s.pos)
	for _, e := range merged {
		s.heap = append(s.heap, e)
		i := len(s.heap) - 1
		s.pos[e.key] = i
		s.siftUp(i)
	}
	return nil
}

// minIfFull is the minimum counter when the summary is at capacity — the
// certified bound on any untracked key's sum — and 0 otherwise (not full
// means every seen key is tracked, so untracked keys have true sum 0).
func (s *Sketch) minIfFull() uint64 {
	if len(s.heap) < s.cap || len(s.heap) == 0 {
		return 0
	}
	return s.heap[0].count
}

// Tracked returns all monitored keys and their counters.
func (s *Sketch) Tracked() []sketch.KV {
	out := make([]sketch.KV, len(s.heap))
	for i, e := range s.heap {
		out[i] = sketch.KV{Key: e.key, Est: e.count}
	}
	return out
}

// MemoryBytes reports capacity × EntryBytes: Space-Saving's footprint is its
// configured capacity regardless of fill level.
func (s *Sketch) MemoryBytes() int { return s.cap * EntryBytes }

// Name identifies the algorithm.
func (s *Sketch) Name() string { return s.name }

// Reset clears all counters in place.
func (s *Sketch) Reset() {
	s.heap = s.heap[:0]
	clear(s.pos)
}

// heap maintenance: classic binary min-heap on count with position map
// updates.

func (s *Sketch) less(i, j int) bool { return s.heap[i].count < s.heap[j].count }

func (s *Sketch) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i].key] = i
	s.pos[s.heap[j].key] = j
}

func (s *Sketch) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s.swap(i, parent)
		i = parent
	}
}

func (s *Sketch) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s.swap(i, smallest)
		i = smallest
	}
}
