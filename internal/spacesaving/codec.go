package spacesaving

// Entry is a serializable monitored counter: the key, its estimate, and
// the certified adoption error. Used by snapshot persistence (core's
// emergency layer) and by tests inspecting internal state.
type Entry struct {
	Key   uint64
	Count uint64
	Err   uint64
}

// Entries returns the full monitored state, including certified errors
// (unlike Tracked, which reports only estimates).
func (s *Sketch) Entries() []Entry {
	out := make([]Entry, len(s.heap))
	for i, e := range s.heap {
		out[i] = Entry{Key: e.key, Count: e.count, Err: e.err}
	}
	return out
}

// RestoreEntry reinstalls a serialized entry, preserving its certified
// error. The caller must not restore more entries than the sketch's
// capacity or duplicate keys; violations are reported by the boolean.
func (s *Sketch) RestoreEntry(e Entry) bool {
	if len(s.heap) >= s.cap {
		return false
	}
	if _, dup := s.pos[e.Key]; dup {
		return false
	}
	s.heap = append(s.heap, entry{key: e.Key, count: e.Count, err: e.Err})
	i := len(s.heap) - 1
	s.pos[e.Key] = i
	s.siftUp(i)
	return true
}
