package spacesaving

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sketch"
)

// Entry is a serializable monitored counter: the key, its estimate, and
// the certified adoption error. Used by snapshot persistence (core's
// emergency layer) and by tests inspecting internal state.
type Entry struct {
	Key   uint64
	Count uint64
	Err   uint64
}

// Entries returns the full monitored state, including certified errors
// (unlike Tracked, which reports only estimates).
func (s *Sketch) Entries() []Entry {
	out := make([]Entry, len(s.heap))
	for i, e := range s.heap {
		out[i] = Entry{Key: e.key, Count: e.count, Err: e.err}
	}
	return out
}

// RestoreEntry reinstalls a serialized entry, preserving its certified
// error. The caller must not restore more entries than the sketch's
// capacity or duplicate keys; violations are reported by the boolean.
func (s *Sketch) RestoreEntry(e Entry) bool {
	if len(s.heap) >= s.cap {
		return false
	}
	if _, dup := s.pos[e.Key]; dup {
		return false
	}
	s.heap = append(s.heap, entry{key: e.Key, count: e.Count, err: e.Err})
	i := len(s.heap) - 1
	s.pos[e.Key] = i
	s.siftUp(i)
	return true
}

// Snapshot serialization, implementing sketch.Snapshotter: magic "SSS1" |
// capacity | entry count | (key, count, err) triples. A Space-Saving
// summary IS its monitored entries, so the snapshot is exactly the
// mergeable-summaries representation Merge exchanges.

var ssMagic = [4]byte{'S', 'S', 'S', '1'}

// Snapshot writes the sketch's full state to w.
func (s *Sketch) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(ssMagic[:])
	var buf [binary.MaxVarintLen64]byte
	write := func(vs ...uint64) {
		for _, v := range vs {
			n := binary.PutUvarint(buf[:], v)
			bw.Write(buf[:n])
		}
	}
	write(uint64(s.cap), uint64(len(s.heap)))
	for _, e := range s.heap {
		write(e.key, e.count, e.err)
	}
	return bw.Flush()
}

// Restore replaces the monitored entries with a snapshot written by a
// same-capacity sibling's Snapshot. Certified adoption errors ride along,
// so restored queries report the same intervals the snapshotted sketch did.
func (s *Sketch) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("spacesaving: reading snapshot magic: %w", err)
	}
	if magic != ssMagic {
		return fmt.Errorf("%w: bad spacesaving snapshot magic %q", sketch.ErrSnapshotMismatch, magic[:])
	}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	capacity, err := read()
	if err != nil {
		return fmt.Errorf("spacesaving: snapshot capacity: %w", err)
	}
	if int(capacity) != s.cap {
		return fmt.Errorf("%w: spacesaving snapshot capacity %d, sketch built with %d", sketch.ErrSnapshotMismatch, capacity, s.cap)
	}
	n, err := read()
	if err != nil {
		return fmt.Errorf("spacesaving: snapshot entry count: %w", err)
	}
	if n > capacity {
		return fmt.Errorf("spacesaving: snapshot holds %d entries over capacity %d", n, capacity)
	}
	// Decode and validate everything before touching the receiver, so a
	// truncated or corrupt snapshot leaves it untouched.
	entries := make([]Entry, n)
	seen := make(map[uint64]bool, n)
	for i := range entries {
		var vals [3]uint64
		for vi := range vals {
			v, err := read()
			if err != nil {
				return fmt.Errorf("spacesaving: entry %d: %w", i, err)
			}
			vals[vi] = v
		}
		if seen[vals[0]] {
			return fmt.Errorf("spacesaving: snapshot duplicates key %d", vals[0])
		}
		seen[vals[0]] = true
		entries[i] = Entry{Key: vals[0], Count: vals[1], Err: vals[2]}
	}
	s.Reset()
	for _, e := range entries {
		s.RestoreEntry(e)
	}
	return nil
}
