package spacesaving

import (
	"math/rand/v2"
	"testing"

	"repro/internal/stream"
)

func TestStreamSummaryTrackedExact(t *testing.T) {
	s := NewStreamSummary(10)
	for i := 0; i < 7; i++ {
		s.Increment(1)
	}
	for i := 0; i < 3; i++ {
		s.Increment(2)
	}
	if got := s.Query(1); got != 7 {
		t.Errorf("Query(1)=%d want 7", got)
	}
	if got := s.Query(2); got != 3 {
		t.Errorf("Query(2)=%d want 3", got)
	}
	if got := s.Query(99); got != 0 {
		t.Errorf("Query(untracked, not full)=%d want 0", got)
	}
}

func TestStreamSummaryEviction(t *testing.T) {
	s := NewStreamSummary(2)
	s.Increment(1)
	s.Increment(1)
	s.Increment(2)
	s.Increment(3) // evicts key 2 (min=1): count 2, err 1
	est, mpe := s.QueryWithError(3)
	if est != 2 || mpe != 1 {
		t.Errorf("QueryWithError(3)=(%d,%d) want (2,1)", est, mpe)
	}
	if got := s.Query(2); got == 0 {
		t.Error("evicted key should read the min counter, not 0")
	}
}

// TestStreamSummaryMatchesHeapVariant: both Space-Saving implementations
// must produce identical estimates for identical unit-increment streams
// (they implement the same algorithm; only the data structure differs).
func TestStreamSummaryMatchesHeapVariant(t *testing.T) {
	const capacity = 64
	heap := New(capacity)
	o1 := NewStreamSummary(capacity)
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 50_000; i++ {
		k := uint64(r.IntN(500))
		heap.Insert(k, 1)
		o1.Increment(k)
	}
	// The algorithms may break victim ties differently, so compare the
	// certified properties rather than cell-level equality: tracked-set
	// counts and the min counter.
	if got, want := o1.head.count, heap.heap[0].count; got != want {
		t.Errorf("min counters differ: O(1)=%d heap=%d", got, want)
	}
	// Both never underestimate.
	truth := map[uint64]uint64{}
	r = rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 50_000; i++ {
		truth[uint64(r.IntN(500))]++
	}
	for k, f := range truth {
		if est := o1.Query(k); est < f {
			t.Fatalf("O(1) variant underestimates key %d: %d < %d", k, est, f)
		}
	}
}

func TestStreamSummaryErrorBound(t *testing.T) {
	s := stream.Zipf(50_000, 5_000, 1.0, 3)
	const m = 1000
	sk := NewStreamSummary(m)
	var total uint64
	for _, it := range s.Items {
		sk.Insert(it.Key, it.Value)
		total += it.Value
	}
	bound := total / m
	for k, f := range s.Truth() {
		est := sk.Query(k)
		if est < f {
			t.Fatalf("underestimate for key %d", k)
		}
		if est-f > bound {
			t.Fatalf("key %d: error %d exceeds N/m=%d", k, est-f, bound)
		}
	}
}

func TestStreamSummaryGroupInvariants(t *testing.T) {
	s := NewStreamSummary(32)
	r := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 20_000; i++ {
		s.Increment(uint64(r.IntN(200)))
	}
	// Groups strictly ascending, sizes consistent, entries linked back.
	seen := 0
	var prev uint64
	for g := s.head; g != nil; g = g.next {
		if g.count <= prev && seen > 0 {
			t.Fatalf("group counts not ascending: %d after %d", g.count, prev)
		}
		prev = g.count
		if g.size == 0 || g.members == nil {
			t.Fatal("empty group left linked")
		}
		e := g.members
		for i := 0; i < g.size; i++ {
			if e.group != g {
				t.Fatal("entry points to wrong group")
			}
			seen++
			e = e.next
		}
		if e != g.members {
			t.Fatal("group ring size mismatch")
		}
	}
	if seen != len(s.entries) {
		t.Fatalf("linked %d entries, map has %d", seen, len(s.entries))
	}
}

func TestStreamSummaryAccounting(t *testing.T) {
	s := NewStreamSummaryBytes(1600)
	if s.MemoryBytes() != (1600/EntryBytes)*EntryBytes {
		t.Errorf("MemoryBytes=%d", s.MemoryBytes())
	}
	if s.Name() != "SS(O1)" {
		t.Errorf("Name=%q", s.Name())
	}
	if NewStreamSummary(0).cap != 1 {
		t.Error("capacity clamp broken")
	}
}

// BenchmarkIncrementO1 vs BenchmarkInsert (heap) demonstrates the §2.2
// point: unit increments are O(1) on the linked structure but O(log m) on
// the heap.
func BenchmarkIncrementO1(b *testing.B) {
	s := stream.Zipf(1_000_000, 100_000, 1.1, 1)
	sk := NewStreamSummaryBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Increment(s.Items[i%len(s.Items)].Key)
	}
}
