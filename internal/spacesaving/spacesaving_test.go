package spacesaving

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func TestTrackedExactWhenNotFull(t *testing.T) {
	s := New(10)
	s.Insert(1, 5)
	s.Insert(2, 3)
	s.Insert(1, 2)
	if got := s.Query(1); got != 7 {
		t.Errorf("Query(1) = %d, want 7", got)
	}
	if got := s.Query(2); got != 3 {
		t.Errorf("Query(2) = %d, want 3", got)
	}
	if got := s.Query(99); got != 0 {
		t.Errorf("Query(untracked, not full) = %d, want 0", got)
	}
}

func TestEvictionInheritsMinCount(t *testing.T) {
	s := New(2)
	s.Insert(1, 10)
	s.Insert(2, 4)
	s.Insert(3, 1) // evicts key 2 (min=4): count = 5, err = 4
	if got := s.Query(3); got != 5 {
		t.Errorf("Query(3) = %d, want 5", got)
	}
	est, mpe := s.QueryWithError(3)
	if est != 5 || mpe != 4 {
		t.Errorf("QueryWithError(3) = (%d,%d), want (5,4)", est, mpe)
	}
	// Evicted key's estimate is now the min counter.
	if got := s.Query(2); got != 5 {
		t.Errorf("Query(evicted) = %d, want min counter 5", got)
	}
}

// TestOverestimateInvariant: Space-Saving never underestimates any key.
func TestOverestimateInvariant(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 30; trial++ {
		s := New(8)
		truth := map[uint64]uint64{}
		for i := 0; i < 500; i++ {
			k := uint64(r.IntN(40))
			v := uint64(r.IntN(5)) + 1
			s.Insert(k, v)
			truth[k] += v
		}
		for k, f := range truth {
			if est := s.Query(k); est < f {
				t.Fatalf("trial %d: key %d underestimated: %d < %d", trial, k, est, f)
			}
		}
	}
}

// TestCertifiedErrorInvariant: est − mpe ≤ f(e) ≤ est for tracked keys, and
// f(e) ≤ est for all keys.
func TestCertifiedErrorInvariant(t *testing.T) {
	err := quick.Check(func(ops []uint16, seed uint64) bool {
		s := New(6)
		truth := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o % 30)
			v := uint64(o%4) + 1
			s.Insert(k, v)
			truth[k] += v
		}
		for k, f := range truth {
			est, mpe := s.QueryWithError(k)
			if est < f {
				return false
			}
			if est-mpe > f {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestErrorBoundNOverM: the classic guarantee that every error is at most
// N/m where N is the total stream value and m the counter capacity.
func TestErrorBoundNOverM(t *testing.T) {
	s := stream.Zipf(50000, 5000, 1.0, 3)
	const m = 1000
	sk := New(m)
	var total uint64
	for _, it := range s.Items {
		sk.Insert(it.Key, it.Value)
		total += it.Value
	}
	bound := total / m
	for k, f := range s.Truth() {
		est := sk.Query(k)
		if est < f {
			t.Fatalf("underestimate for key %d", k)
		}
		if est-f > bound {
			t.Fatalf("key %d: error %d exceeds N/m = %d", k, est-f, bound)
		}
	}
}

// TestHeapInvariant: the internal heap stays a min-heap and pos stays
// consistent across random operations.
func TestHeapInvariant(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	s := New(32)
	for i := 0; i < 5000; i++ {
		s.Insert(uint64(r.IntN(200)), uint64(r.IntN(10))+1)
	}
	for i := 1; i < len(s.heap); i++ {
		parent := (i - 1) / 2
		if s.heap[i].count < s.heap[parent].count {
			t.Fatalf("heap violated at %d", i)
		}
	}
	for k, i := range s.pos {
		if s.heap[i].key != k {
			t.Fatalf("pos map inconsistent for key %d", k)
		}
	}
	if len(s.pos) != len(s.heap) {
		t.Fatalf("pos size %d != heap size %d", len(s.pos), len(s.heap))
	}
}

func TestTopKRecall(t *testing.T) {
	// On a skewed stream, the heaviest keys must all be tracked.
	s := stream.Zipf(100000, 10000, 1.5, 7)
	sk := NewBytes(64 * 1024)
	for _, it := range s.Items {
		sk.Insert(it.Key, it.Value)
	}
	tracked := map[uint64]bool{}
	for _, kv := range sk.Tracked() {
		tracked[kv.Key] = true
	}
	misses := 0
	for k, f := range s.Truth() {
		if f > 1000 && !tracked[k] {
			misses++
		}
	}
	if misses != 0 {
		t.Errorf("%d keys with f>1000 not tracked", misses)
	}
}

// TestMergeCertifiedInvariant splits a skewed stream across two summaries,
// merges, and checks both certified bounds for the union: tracked keys'
// truth inside [count−err, count], untracked keys' truth below the minimum
// counter.
func TestMergeCertifiedInvariant(t *testing.T) {
	s := stream.Zipf(30_000, 2_000, 1.2, 5)
	a, b := New(64), New(64)
	truth := map[uint64]uint64{}
	for i, it := range s.Items {
		if i%2 == 0 {
			a.Insert(it.Key, it.Value)
		} else {
			b.Insert(it.Key, it.Value)
		}
		truth[it.Key] += it.Value
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Tracked()); got > a.Counters() {
		t.Fatalf("merged summary holds %d entries, capacity %d", got, a.Counters())
	}
	for key, f := range truth {
		est, mpe := a.QueryWithError(key)
		if f > est {
			t.Fatalf("key %d: truth %d above merged estimate %d", key, f, est)
		}
		if mpe <= est && est-mpe > f {
			t.Fatalf("key %d: truth %d below merged certified floor %d", key, f, est-mpe)
		}
	}
}

// TestMergeNotFullSides: merging summaries that never filled keeps exact
// counts (every seen key is tracked on both sides, mins are zero).
func TestMergeNotFullSides(t *testing.T) {
	a, b := New(8), New(8)
	a.Insert(1, 5)
	b.Insert(1, 3)
	b.Insert(2, 4)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ key, want uint64 }{{1, 8}, {2, 4}, {3, 0}} {
		if got := a.Query(c.key); got != c.want {
			t.Errorf("Query(%d)=%d want %d", c.key, got, c.want)
		}
	}
}

func TestMergeRejectsForeignSketch(t *testing.T) {
	a := New(8)
	if err := a.Merge(otherSketch{}); err == nil {
		t.Error("merged a non-Space-Saving sketch")
	}
	// A full smaller summary's evicted keys would be certified as 0 by a
	// roomy receiver — capacity mismatch must refuse.
	if err := a.Merge(New(2)); err == nil {
		t.Error("merged a summary with a different capacity")
	}
}

// otherSketch is a minimal foreign sketch.Sketch implementation.
type otherSketch struct{}

func (otherSketch) Insert(key, value uint64) {}
func (otherSketch) Query(key uint64) uint64  { return 0 }
func (otherSketch) MemoryBytes() int         { return 0 }
func (otherSketch) Name() string             { return "other" }

func TestReset(t *testing.T) {
	s := New(4)
	s.Insert(1, 1)
	s.Insert(2, 2)
	s.Reset()
	if len(s.heap) != 0 || len(s.pos) != 0 {
		t.Fatal("Reset did not clear state")
	}
	if s.Query(1) != 0 {
		t.Fatal("Query after Reset should be 0")
	}
}

func TestMemoryAccounting(t *testing.T) {
	s := NewBytes(1600)
	if s.Counters() != 1600/EntryBytes {
		t.Errorf("Counters = %d, want %d", s.Counters(), 1600/EntryBytes)
	}
	if s.MemoryBytes() != s.Counters()*EntryBytes {
		t.Errorf("MemoryBytes = %d", s.MemoryBytes())
	}
	if New(0).Counters() != 1 {
		t.Error("zero-counter sketch should clamp to 1")
	}
}

func BenchmarkInsert(b *testing.B) {
	s := stream.Zipf(1_000_000, 100_000, 1.1, 1)
	sk := NewBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s.Items[i%len(s.Items)]
		sk.Insert(it.Key, it.Value)
	}
}
