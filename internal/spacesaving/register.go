package spacesaving

import "repro/internal/sketch"

// Space-Saving is the one competitor that certifies per-key error (its
// per-counter overestimate bound), so it registers ErrorBounded alongside
// ReliableSketch.
func init() {
	sketch.Register("SS",
		sketch.CapErrorBounded|sketch.CapHeavyHitter|sketch.CapResettable|sketch.CapMergeable|sketch.CapSnapshottable,
		func(sp sketch.Spec) sketch.Sketch {
			return NewBytes(sp.MemoryBytes)
		})
}
