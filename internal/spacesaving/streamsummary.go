package spacesaving

// StreamSummary is the O(1) unit-increment variant of Space-Saving the
// paper discusses in §2.2: "Only when v = 1 can these heap structures be
// implemented with O(1) complexity using linked lists". It keeps counters
// grouped in frequency buckets chained in ascending order, so an increment
// moves a key to the adjacent group in constant time — no heap sift.
//
// It answers the same queries as Sketch but only supports Insert(key, 1)
// semantics; weighted inserts degrade to repeated increments and are the
// reason the paper targets the general case with ReliableSketch instead.
type StreamSummary struct {
	cap     int
	entries map[uint64]*ssEntry
	// groups is a doubly linked list of frequency groups in ascending
	// count order; head is the minimum.
	head *ssGroup
	name string
}

type ssGroup struct {
	count      uint64
	prev, next *ssGroup
	// members is an intrusive circular list head; any member represents
	// the group for O(1) pick-a-victim.
	members *ssEntry
	size    int
}

type ssEntry struct {
	key        uint64
	err        uint64
	group      *ssGroup
	prev, next *ssEntry // circular within the group
}

// NewStreamSummary builds a summary with the given counter capacity.
func NewStreamSummary(counters int) *StreamSummary {
	if counters < 1 {
		counters = 1
	}
	return &StreamSummary{
		cap:     counters,
		entries: make(map[uint64]*ssEntry, counters),
		name:    "SS(O1)",
	}
}

// NewStreamSummaryBytes sizes the summary to a memory budget using the
// same accounting as the heap variant.
func NewStreamSummaryBytes(memBytes int) *StreamSummary {
	return NewStreamSummary(memBytes / EntryBytes)
}

// group list helpers.

func (s *StreamSummary) addEntryToGroup(e *ssEntry, g *ssGroup) {
	e.group = g
	if g.members == nil {
		e.prev, e.next = e, e
		g.members = e
	} else {
		head := g.members
		e.prev = head.prev
		e.next = head
		head.prev.next = e
		head.prev = e
	}
	g.size++
}

func (s *StreamSummary) removeEntryFromGroup(e *ssEntry) {
	g := e.group
	if g.size == 1 {
		g.members = nil
	} else {
		e.prev.next = e.next
		e.next.prev = e.prev
		if g.members == e {
			g.members = e.next
		}
	}
	g.size--
	e.group = nil
	if g.size == 0 {
		// Unlink the empty group.
		if g.prev != nil {
			g.prev.next = g.next
		} else {
			s.head = g.next
		}
		if g.next != nil {
			g.next.prev = g.prev
		}
	}
}

// groupAfter returns (creating if needed) the group holding count
// g.count+delta positioned right after g.
func (s *StreamSummary) groupWithCountAfter(g *ssGroup, count uint64) *ssGroup {
	if g.next != nil && g.next.count == count {
		return g.next
	}
	ng := &ssGroup{count: count, prev: g, next: g.next}
	if g.next != nil {
		g.next.prev = ng
	}
	g.next = ng
	return ng
}

// Increment adds one occurrence of key — the O(1) path.
func (s *StreamSummary) Increment(key uint64) {
	if e, ok := s.entries[key]; ok {
		g := e.group
		target := s.groupWithCountAfter(g, g.count+1)
		s.removeEntryFromGroup(e)
		s.addEntryToGroup(e, target)
		return
	}
	if len(s.entries) < s.cap {
		// New key with count 1: lives in (or creates) the count-1 group at
		// the head.
		g := s.head
		if g == nil || g.count != 1 {
			ng := &ssGroup{count: 1, next: g}
			if g != nil {
				g.prev = ng
			}
			s.head = ng
			g = ng
		}
		e := &ssEntry{key: key}
		s.entries[key] = e
		s.addEntryToGroup(e, g)
		return
	}
	// Evict a member of the minimum group: the newcomer inherits count+1
	// with certified error = evicted count.
	g := s.head
	victim := g.members
	delete(s.entries, victim.key)
	target := s.groupWithCountAfter(g, g.count+1)
	s.removeEntryFromGroup(victim)
	victim.key = key
	victim.err = g.count
	s.entries[key] = victim
	s.addEntryToGroup(victim, target)
}

// Insert implements the sketch interface; values other than 1 degrade to
// value repeated increments (the §2.2 limitation this variant documents).
func (s *StreamSummary) Insert(key, value uint64) {
	for i := uint64(0); i < value; i++ {
		s.Increment(key)
	}
}

// Query returns the tracked count, or the minimum count for strangers
// (certified upper bound), or 0 while not full.
func (s *StreamSummary) Query(key uint64) uint64 {
	if e, ok := s.entries[key]; ok {
		return e.group.count
	}
	if len(s.entries) < s.cap || s.head == nil {
		return 0
	}
	return s.head.count
}

// QueryWithError returns the estimate and its certified maximum error.
func (s *StreamSummary) QueryWithError(key uint64) (est, mpe uint64) {
	if e, ok := s.entries[key]; ok {
		return e.group.count, e.err
	}
	if len(s.entries) < s.cap || s.head == nil {
		return 0, 0
	}
	m := s.head.count
	return m, m
}

// MemoryBytes uses the heap variant's accounting for comparability.
func (s *StreamSummary) MemoryBytes() int { return s.cap * EntryBytes }

// Name identifies the variant.
func (s *StreamSummary) Name() string { return s.name }
