package bucket

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestPaperExample replays the worked example from Figure 2: insert (A,2),
// (A,3), (B,10), then query A and B.
func TestPaperExample(t *testing.T) {
	var b Bucket
	const A, B = 1, 2
	b.Insert(A, 2)
	if b.ID != A || b.YES != 2 || b.NO != 0 {
		t.Fatalf("after (A,2): %+v", b)
	}
	b.Insert(A, 3)
	if b.ID != A || b.YES != 5 || b.NO != 0 {
		t.Fatalf("after (A,3): %+v", b)
	}
	b.Insert(B, 10)
	// NO becomes 10 ≥ YES=5 → replacement: ID=B, YES=10, NO=5.
	if b.ID != B || b.YES != 10 || b.NO != 5 {
		t.Fatalf("after (B,10): %+v", b)
	}
	if est, mpe := b.Query(A); est != 5 || mpe != 5 {
		t.Errorf("Query(A) = (%d,%d), want (5,5)", est, mpe)
	}
	if est, mpe := b.Query(B); est != 10 || mpe != 5 {
		t.Errorf("Query(B) = (%d,%d), want (10,5)", est, mpe)
	}
}

func TestEmptyBucketQuery(t *testing.T) {
	var b Bucket
	if est, mpe := b.Query(42); est != 0 || mpe != 0 {
		t.Errorf("empty bucket query = (%d,%d), want (0,0)", est, mpe)
	}
	if b.Occupied() {
		t.Error("zero bucket is occupied")
	}
}

func TestKeyZeroIsAValidCandidate(t *testing.T) {
	var b Bucket
	b.Insert(0, 5)
	if est, mpe := b.Query(0); est != 5 || mpe != 0 {
		t.Errorf("Query(0) = (%d,%d), want (5,0)", est, mpe)
	}
	if est, _ := b.Query(1); est != 0 {
		t.Errorf("Query(1) est = %d, want 0", est)
	}
}

func TestReset(t *testing.T) {
	var b Bucket
	b.Insert(1, 10)
	b.Insert(2, 3)
	b.Reset()
	if b.Occupied() || b.YES != 0 || b.NO != 0 {
		t.Errorf("after Reset: %+v", b)
	}
}

// checkInterval validates the bucket's certified interval against exact
// per-key sums.
func checkInterval(t *testing.T, b *Bucket, truth map[uint64]uint64) {
	t.Helper()
	for e, f := range truth {
		est, mpe := b.Query(e)
		if est < f {
			t.Fatalf("key %d: est %d < true %d (bucket %+v)", e, est, f, *b)
		}
		// The certified floor clamps at 0 (owners use CertifiedLowerBound):
		// merged buckets can legitimately hold NO > YES.
		if mpe < est && est-mpe > f {
			t.Fatalf("key %d: est−mpe = %d > true %d (bucket %+v)", e, est-mpe, f, *b)
		}
	}
}

// TestIntervalInvariantRandom drives random insertion sequences and checks
// f(e) ∈ [est−mpe, est] for every key after every step.
func TestIntervalInvariantRandom(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 200; trial++ {
		var b Bucket
		truth := map[uint64]uint64{}
		for step := 0; step < 100; step++ {
			e := uint64(r.IntN(5))
			v := uint64(r.IntN(9)) + 1
			b.Insert(e, v)
			truth[e] += v
			checkInterval(t, &b, truth)
		}
	}
}

// TestMergeIntervalInvariant drives two buckets with disjoint random slices
// of one stream, merges them, and checks the merged certified bounds hold
// for the union truth — the per-bucket soundness the sketch-level Merge
// builds on. Chained merges exercise the NO > YES states only merging can
// produce.
func TestMergeIntervalInvariant(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 300; trial++ {
		parts := r.IntN(3) + 2
		bs := make([]Bucket, parts)
		truth := map[uint64]uint64{}
		for step := 0; step < 150; step++ {
			e := uint64(r.IntN(5))
			v := uint64(r.IntN(9)) + 1
			bs[r.IntN(parts)].Insert(e, v)
			truth[e] += v
		}
		merged := bs[0]
		for _, b := range bs[1:] {
			merged.Merge(b)
		}
		checkInterval(t, &merged, truth)
	}
}

// TestMergeEmptySides pins the empty-bucket cases: merging an empty source
// is a no-op, merging into an empty receiver copies the source.
func TestMergeEmptySides(t *testing.T) {
	var a, empty Bucket
	a.Insert(7, 5)
	before := a
	a.Merge(empty)
	if a != before {
		t.Errorf("merging an empty bucket changed the receiver: %+v", a)
	}
	var b Bucket
	b.Merge(before)
	if b != before {
		t.Errorf("merging into an empty bucket should copy: %+v vs %+v", b, before)
	}
}

// TestInsertCappedToleratesMergedNO: a merge can leave NO above λ; a
// subsequent capped insert must divert the whole value rather than
// underflow the absorbable computation.
func TestInsertCappedToleratesMergedNO(t *testing.T) {
	var a, b Bucket
	a.Insert(1, 50) // candidate 1, YES 50
	b.Insert(2, 30) // candidate 2, YES 30
	a.Merge(b)      // NO = 0 + 30 = 30 > λ below
	const lambda = 10
	if got := a.InsertCapped(3, 8, lambda); got != 8 {
		t.Errorf("overflow = %d, want all 8 diverted (NO %d already past λ %d)", got, a.NO, lambda)
	}
}

// TestIntervalInvariantQuick is the same invariant as a quick.Check property
// over arbitrary (key, value) sequences.
func TestIntervalInvariantQuick(t *testing.T) {
	type op struct {
		Key uint8
		Val uint8
	}
	err := quick.Check(func(ops []op) bool {
		var b Bucket
		truth := map[uint64]uint64{}
		for _, o := range ops {
			v := uint64(o.Val%16) + 1
			e := uint64(o.Key % 8)
			b.Insert(e, v)
			truth[e] += v
		}
		for e, f := range truth {
			est, mpe := b.Query(e)
			if est < f || est-mpe > f {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNOBoundsCollisions verifies the "collision amount" interpretation:
// YES + NO never exceeds the total inserted value, and NO is at most half of
// the value belonging to non-candidate keys plus candidate swaps — concretely
// we check the derived guarantee f(candidate) ≥ YES − NO.
func TestNOConservation(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 100; trial++ {
		var b Bucket
		var total uint64
		truth := map[uint64]uint64{}
		for step := 0; step < 200; step++ {
			e := uint64(r.IntN(4))
			v := uint64(r.IntN(5)) + 1
			b.Insert(e, v)
			truth[e] += v
			total += v
		}
		if b.YES+b.NO != total {
			t.Fatalf("YES+NO = %d, want total inserted %d", b.YES+b.NO, total)
		}
		// All increases of YES−NO come from candidate insertions.
		if b.YES < b.NO {
			t.Fatalf("YES %d < NO %d after insert", b.YES, b.NO)
		}
		if b.YES-b.NO > truth[b.ID] {
			t.Fatalf("YES−NO = %d exceeds candidate's true sum %d", b.YES-b.NO, truth[b.ID])
		}
	}
}

func TestInsertCappedNoLockBehavesLikeInsert(t *testing.T) {
	// With λ = ∞ the capped insert must be identical to the plain insert.
	r := rand.New(rand.NewPCG(5, 6))
	const lambda = 1 << 60
	for trial := 0; trial < 50; trial++ {
		var a, b Bucket
		for step := 0; step < 100; step++ {
			e := uint64(r.IntN(6))
			v := uint64(r.IntN(7)) + 1
			a.Insert(e, v)
			if over := b.InsertCapped(e, v, lambda); over != 0 {
				t.Fatalf("overflow %d with huge lambda", over)
			}
		}
		if a != b {
			t.Fatalf("capped(∞) diverged: %+v vs %+v", a, b)
		}
	}
}

func TestInsertCappedLockTriggers(t *testing.T) {
	var b Bucket
	const lambda = 10
	b.InsertCapped(1, 20, lambda) // candidate with YES=20 > λ
	// A colliding insert that would push NO past λ locks the bucket.
	over := b.InsertCapped(2, 15, lambda)
	if over != 5 {
		t.Fatalf("overflow = %d, want 5 (absorb λ−NO = 10)", over)
	}
	if b.NO != lambda {
		t.Fatalf("NO = %d, want λ = %d", b.NO, lambda)
	}
	if !b.Locked(lambda) {
		t.Fatal("bucket should be locked")
	}
	// Locked bucket still accepts positive votes for the candidate.
	if over := b.InsertCapped(1, 7, lambda); over != 0 {
		t.Fatalf("candidate insert overflowed %d", over)
	}
	if b.YES != 27 {
		t.Fatalf("YES = %d, want 27", b.YES)
	}
	// And further colliding inserts divert entirely.
	if over := b.InsertCapped(3, 4, lambda); over != 4 {
		t.Fatalf("overflow = %d, want full 4", over)
	}
}

func TestInsertCappedReplacementUnderCap(t *testing.T) {
	// When YES ≤ λ, a large colliding insert must replace, not lock.
	var b Bucket
	const lambda = 100
	b.InsertCapped(1, 30, lambda)
	over := b.InsertCapped(2, 80, lambda) // NO+80 > YES=30 → replace
	if over != 0 {
		t.Fatalf("overflow = %d, want 0", over)
	}
	if b.ID != 2 || b.YES != 80 || b.NO != 30 {
		t.Fatalf("replacement failed: %+v", b)
	}
}

// TestInvariantNONeverExceedsLambda checks the NO ≤ λ invariant that
// InsertCapped's overflow computation relies on.
func TestInvariantNONeverExceedsLambda(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	const lambda = 12
	for trial := 0; trial < 100; trial++ {
		var b Bucket
		for step := 0; step < 300; step++ {
			e := uint64(r.IntN(10))
			v := uint64(r.IntN(30)) + 1
			b.InsertCapped(e, v, lambda)
			if b.NO > lambda {
				t.Fatalf("NO = %d exceeds λ = %d at step %d", b.NO, lambda, step)
			}
		}
	}
}

// TestCappedIntervalInvariant: even with locking, the bucket's certified
// interval must hold for the portion of each key actually absorbed by the
// bucket (true sum minus diverted overflow).
func TestCappedIntervalInvariant(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	const lambda = 8
	for trial := 0; trial < 100; trial++ {
		var b Bucket
		absorbed := map[uint64]uint64{}
		for step := 0; step < 200; step++ {
			e := uint64(r.IntN(6))
			v := uint64(r.IntN(6)) + 1
			over := b.InsertCapped(e, v, lambda)
			absorbed[e] += v - over
		}
		for e, f := range absorbed {
			est, mpe := b.Query(e)
			if est < f || est-mpe > f {
				t.Fatalf("key %d: absorbed %d outside [%d, %d]", e, f, est-mpe, est)
			}
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	var bk Bucket
	for i := 0; i < b.N; i++ {
		bk.Insert(uint64(i&3), 1)
	}
}

func BenchmarkInsertCapped(b *testing.B) {
	var bk Bucket
	for i := 0; i < b.N; i++ {
		bk.InsertCapped(uint64(i&3), 1, 1000)
	}
}
