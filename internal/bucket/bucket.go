// Package bucket implements the Error-Sensible Bucket, the basic counting
// unit of ReliableSketch (paper §3.1, Figures 1–2).
//
// A bucket is an election cell with three fields: a candidate key ID and two
// vote counters YES and NO. Items matching ID cast positive votes; others
// cast negative votes; when NO catches up with YES the candidate is replaced
// and the counters swap. The crucial, often-undervalued property is that NO
// is a certified bound on the *collision amount*: every unit of NO
// corresponds to one unit of value colliding between two distinct keys, and
// no unit of value participates in more than one collision. Hence:
//
//	ID == e: f(e) ∈ [YES − NO, YES]   (estimate YES, max possible error NO)
//	ID != e: f(e) ∈ [0, NO]           (estimate NO,  max possible error NO)
package bucket

// Bucket is one Error-Sensible Bucket. The zero value is an empty bucket
// (no candidate, zero votes), ready to use.
//
// The deployed (hardware) layout is a 32-bit YES, a narrow NO (8–16 bits;
// NO never exceeds the layer threshold λ), and a 32-bit key fingerprint —
// 72–80 bits total. The Go representation is wider for generality; memory
// accounting happens in the owning sketch, not here.
type Bucket struct {
	ID  uint64
	YES uint64
	NO  uint64
	// occupied distinguishes an empty bucket from one whose candidate is
	// key 0. Hardware uses an all-zero fingerprint for the same purpose.
	occupied bool
}

// Occupied reports whether the bucket holds a candidate.
func (b *Bucket) Occupied() bool { return b.occupied }

// Reset returns the bucket to its empty state.
func (b *Bucket) Reset() { *b = Bucket{} }

// Restore installs a serialized bucket state (snapshot deserialization).
// The bucket becomes occupied with the given candidate and votes.
func (b *Bucket) Restore(id, yes, no uint64) {
	*b = Bucket{ID: id, YES: yes, NO: no, occupied: true}
}

// Insert adds <e, v> to the bucket: a positive vote if e is the candidate,
// otherwise a negative vote followed by a replacement check (paper Fig. 1).
func (b *Bucket) Insert(e, v uint64) {
	if !b.occupied {
		// First arrival becomes the candidate with v positive votes. This is
		// equivalent to a negative vote followed by the NO ≥ YES replacement
		// on an all-zero bucket.
		b.occupied = true
		b.ID = e
		b.YES = v
		return
	}
	if b.ID == e {
		b.YES += v
		return
	}
	b.NO += v
	if b.NO >= b.YES {
		// Replacement: e becomes the candidate and the votes swap.
		b.ID = e
		b.YES, b.NO = b.NO, b.YES
	}
}

// Query returns the estimate and the Maximum Possible Error for key e.
// The true sum of e within this bucket always lies in [est − mpe, est]
// (and in [0, mpe] when e is not the candidate, where est == mpe == NO).
func (b *Bucket) Query(e uint64) (est, mpe uint64) {
	if b.occupied && b.ID == e {
		return b.YES, b.NO
	}
	return b.NO, b.NO
}

// InsertCapped inserts <e, v> subject to the layer lock threshold λ
// (paper §3.2). It returns the portion of v that could NOT be absorbed and
// must travel to the next layer (0 when fully absorbed).
//
// Lock rule: a bucket is locked once NO would exceed λ while YES > λ
// (meaning no replacement can rescue it). A locked bucket still accepts
// positive votes for its candidate and replacement-triggering inserts when
// YES == NO, since neither grows NO.
func (b *Bucket) InsertCapped(e, v, lambda uint64) (overflow uint64) {
	if !b.occupied {
		b.occupied = true
		b.ID = e
		b.YES = v
		return 0
	}
	if b.ID == e {
		b.YES += v
		return 0
	}
	if b.NO+v > lambda && b.YES > lambda {
		// Lock triggered: absorb only up to λ, divert the rest. Insertion
		// alone keeps NO ≤ λ, but a Merge may have pushed NO past λ — then
		// nothing is absorbable and the whole value cascades.
		if b.NO >= lambda {
			return v
		}
		absorbable := lambda - b.NO
		b.NO = lambda
		return v - absorbable
	}
	b.NO += v
	if b.NO >= b.YES {
		b.ID = e
		b.YES, b.NO = b.NO, b.YES
	}
	return 0
}

// Locked reports whether the bucket is locked for threshold λ: NO has
// reached λ and the candidate is safe (YES > NO), so no further negative
// votes are accepted.
func (b *Bucket) Locked(lambda uint64) bool {
	return b.NO >= lambda && b.YES > b.NO
}

// Merge folds bucket o (summarizing a disjoint stream slice hashed to the
// same position) into b so that b's certified bounds hold for the union
// stream. Writing f for the union stream's per-key sums:
//
//   - Same candidate: votes add. f(ID) ∈ [YESa+YESb − (NOa+NOb), YESa+YESb]
//     and any other key has f(e) ≤ NOa+NOb, both by summing the per-bucket
//     invariants.
//   - Different candidates: the candidate with more YES votes wins. Its
//     mass in the losing bucket is non-candidate there, hence ≤ NO_l, so
//     YES = YES_w + NO_l is still an upper bound; NO = NO_w + max(YES_l,
//     NO_l) covers both the losing candidate (f ≤ NO_w + YES_l) and every
//     other key (f ≤ NO_w + NO_l), and keeps YES − NO ≤ YES_w − NO_w ≤
//     f(ID_w), so the lower bound survives. The max() keeps this sound even
//     when a previous merge left NO > YES.
//
// Merged NO totals may exceed a layer's lock threshold λ; InsertCapped
// tolerates that, but the early query-stop heuristics that infer "nothing
// cascaded deeper" from NO alone become unsound — owners of merged buckets
// must walk all layers (see core.Sketch.Merge).
func (b *Bucket) Merge(o Bucket) {
	if !o.occupied {
		return
	}
	if !b.occupied {
		*b = o
		return
	}
	if b.ID == o.ID {
		b.YES += o.YES
		b.NO += o.NO
		return
	}
	w, l := *b, o
	if o.YES > b.YES {
		w, l = o, *b
	}
	lv := l.YES
	if l.NO > lv {
		lv = l.NO
	}
	b.ID = w.ID
	b.YES = w.YES + l.NO
	b.NO = w.NO + lv
}
