package frequent

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/sketch"
	"repro/internal/stream"
)

var (
	_ sketch.Sketch              = (*Sketch)(nil)
	_ sketch.HeavyHitterReporter = (*Sketch)(nil)
)

func TestTrackedExactWhenNotFull(t *testing.T) {
	s := New(4)
	s.Insert(1, 5)
	s.Insert(2, 3)
	s.Insert(1, 2)
	if got := s.Query(1); got != 7 {
		t.Errorf("Query(1)=%d want 7", got)
	}
	if got := s.Query(2); got != 3 {
		t.Errorf("Query(2)=%d want 3", got)
	}
}

func TestMisraGriesDecrement(t *testing.T) {
	s := New(2)
	s.Insert(1, 3)
	s.Insert(2, 3)
	s.Insert(3, 2) // full: decrement all by 2; counters 1→1, 2→1, 3 dropped
	if got := s.Query(1); got != 1 {
		t.Errorf("Query(1)=%d want 1", got)
	}
	if got := s.Query(2); got != 1 {
		t.Errorf("Query(2)=%d want 1", got)
	}
	if got := s.Query(3); got != 0 {
		t.Errorf("Query(3)=%d want 0 (absorbed by decrements)", got)
	}
}

func TestEvictionMakesRoom(t *testing.T) {
	s := New(2)
	s.Insert(1, 1)
	s.Insert(2, 10)
	s.Insert(3, 5) // δ=1 evicts key 1; remaining 4 installs key 3
	if got := s.Query(3); got != 4 {
		t.Errorf("Query(3)=%d want 4", got)
	}
	if got := s.Query(1); got != 0 {
		t.Errorf("Query(1)=%d want 0 (evicted)", got)
	}
	if got := s.Query(2); got != 9 {
		t.Errorf("Query(2)=%d want 9", got)
	}
}

// TestNeverOverestimates: Misra–Gries estimates are underestimates.
func TestNeverOverestimates(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		s := New(5)
		truth := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o % 50)
			v := uint64(o%4) + 1
			s.Insert(k, v)
			truth[k] += v
		}
		for k, f := range truth {
			if s.Query(k) > f {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestErrorBound: f(e) − f̂(e) ≤ N/(k+1) for every key.
func TestErrorBound(t *testing.T) {
	s := stream.Zipf(50_000, 5_000, 1.0, 5)
	const k = 500
	sk := New(k)
	var total uint64
	for _, it := range s.Items {
		sk.Insert(it.Key, it.Value)
		total += it.Value
	}
	bound := total / (k + 1)
	for key, f := range s.Truth() {
		est := sk.Query(key)
		if f-est > bound {
			t.Fatalf("key %d: underestimate %d exceeds N/(k+1)=%d", key, f-est, bound)
		}
	}
}

func TestHeapConsistency(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	s := New(16)
	for i := 0; i < 10_000; i++ {
		s.Insert(uint64(r.IntN(100)), uint64(r.IntN(5))+1)
	}
	for i := 1; i < len(s.heap); i++ {
		if s.heap[i].count < s.heap[(i-1)/2].count {
			t.Fatalf("heap violated at %d", i)
		}
	}
	for k, i := range s.pos {
		if s.heap[i].key != k {
			t.Fatal("pos map inconsistent")
		}
	}
}

func TestResetAndAccounting(t *testing.T) {
	s := NewBytes(1200)
	if s.MemoryBytes() != (1200/EntryBytes)*EntryBytes {
		t.Errorf("MemoryBytes=%d", s.MemoryBytes())
	}
	s.Insert(1, 5)
	s.Reset()
	if s.Query(1) != 0 || s.offset != 0 {
		t.Error("Reset incomplete")
	}
	if s.Name() != "Frequent" {
		t.Errorf("Name=%q", s.Name())
	}
}

func BenchmarkInsert(b *testing.B) {
	sk := NewBytes(1 << 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Insert(uint64(i&0x3fff), 1)
	}
}
