// Package frequent implements the Frequent / Misra–Gries summary (Demaine,
// López-Ortiz, Munro, ESA 2002), the second heap-based competitor in the
// paper's taxonomy. It keeps k counters; colliding arrivals decrement all
// counters, so tracked estimates are *under*estimates with certified error
// at most N/(k+1).
//
// The classic "decrement everything" step is implemented with a global
// offset so each insertion is O(log k) (heap maintenance) instead of O(k).
package frequent

import "repro/internal/sketch"

// entry is one monitored counter. count is stored with the global offset
// added, so the logical estimate is count − offset.
type entry struct {
	key   uint64
	count uint64
}

// EntryBytes accounts a counter: 32-bit key, 32-bit count, 32-bit link, as
// pointer-based implementations spend.
const EntryBytes = 12

// Sketch is a Misra–Gries summary with k counters.
type Sketch struct {
	heap   []entry // min-heap on count
	pos    map[uint64]int
	k      int
	offset uint64 // cumulative decrement applied to all counters
	name   string
}

// New builds a summary with k counters.
func New(k int) *Sketch {
	if k < 1 {
		k = 1
	}
	return &Sketch{
		heap: make([]entry, 0, k),
		pos:  make(map[uint64]int, k),
		k:    k,
		name: "Frequent",
	}
}

// NewBytes sizes the summary to a memory budget.
func NewBytes(memBytes int) *Sketch { return New(memBytes / EntryBytes) }

// Insert adds value to key, decrementing all counters when the summary is
// full and key is untracked (the Misra–Gries step, amortized via offset).
func (s *Sketch) Insert(key, value uint64) {
	if i, ok := s.pos[key]; ok {
		s.heap[i].count += value
		s.siftDown(i)
		return
	}
	for value > 0 {
		if len(s.heap) < s.k {
			s.heap = append(s.heap, entry{key: key, count: s.offset + value})
			i := len(s.heap) - 1
			s.pos[key] = i
			s.siftUp(i)
			return
		}
		// Decrement all counters by δ = min(value, smallest logical count).
		minLogical := s.heap[0].count - s.offset
		if value < minLogical {
			s.offset += value
			return
		}
		value -= minLogical
		s.offset += minLogical
		// Evict every counter that just reached zero.
		for len(s.heap) > 0 && s.heap[0].count == s.offset {
			s.popMin()
		}
		if value == 0 {
			return
		}
	}
}

// Query returns the tracked estimate (an underestimate by at most N/(k+1)),
// or 0 for untracked keys.
func (s *Sketch) Query(key uint64) uint64 {
	if i, ok := s.pos[key]; ok {
		return s.heap[i].count - s.offset
	}
	return 0
}

// Tracked returns all monitored keys with their logical counts.
func (s *Sketch) Tracked() []sketch.KV {
	out := make([]sketch.KV, len(s.heap))
	for i, e := range s.heap {
		out[i] = sketch.KV{Key: e.key, Est: e.count - s.offset}
	}
	return out
}

// MemoryBytes reports k × EntryBytes.
func (s *Sketch) MemoryBytes() int { return s.k * EntryBytes }

// Name identifies the algorithm.
func (s *Sketch) Name() string { return s.name }

// Reset clears the summary.
func (s *Sketch) Reset() {
	s.heap = s.heap[:0]
	clear(s.pos)
	s.offset = 0
}

func (s *Sketch) popMin() {
	delete(s.pos, s.heap[0].key)
	last := len(s.heap) - 1
	if last > 0 {
		s.heap[0] = s.heap[last]
		s.pos[s.heap[0].key] = 0
	}
	s.heap = s.heap[:last]
	if last > 0 {
		s.siftDown(0)
	}
}

func (s *Sketch) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.pos[s.heap[i].key] = i
	s.pos[s.heap[j].key] = j
}

func (s *Sketch) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[i].count >= s.heap[p].count {
			return
		}
		s.swap(i, p)
		i = p
	}
}

func (s *Sketch) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && s.heap[l].count < s.heap[m].count {
			m = l
		}
		if r < n && s.heap[r].count < s.heap[m].count {
			m = r
		}
		if m == i {
			return
		}
		s.swap(i, m)
		i = m
	}
}
