package frequent

import "repro/internal/sketch"

func init() {
	sketch.Register("Frequent",
		sketch.CapHeavyHitter|sketch.CapResettable,
		func(sp sketch.Spec) sketch.Sketch {
			return NewBytes(sp.MemoryBytes)
		})
}
