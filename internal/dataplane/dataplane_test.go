package dataplane

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stream"
)

var _ sketch.Sketch = (*SwitchSketch)(nil)

func TestSwitchSingleKeyExact(t *testing.T) {
	s := NewSwitchSketch(256<<10, 25, 1)
	for i := 0; i < 1000; i++ {
		s.Insert(5, 1)
	}
	if got := s.Query(5); got < 1000 {
		t.Errorf("Query(5)=%d want ≥1000", got)
	}
}

func TestSwitchNeverUnderestimatesResidentHeavies(t *testing.T) {
	// Heavy keys that keep their buckets must be estimated within the layer
	// error budget; the switch variant may *underestimate* evicted keys
	// (deferred replacement loses the swap), which is why the paper's
	// Figure 20 reports outliers rather than certified bounds.
	st := stream.Zipf(100_000, 5_000, 1.3, 2)
	sk := NewSwitchSketch(512<<10, 25, 2)
	metrics.Feed(sk, st)
	bad := 0
	heavies := 0
	for k, f := range st.Truth() {
		if f < 1000 {
			continue
		}
		heavies++
		est := sk.Query(k)
		d := int64(est) - int64(f)
		if d < -int64(f)/10 || d > int64(f)/10 {
			bad++
		}
	}
	if heavies == 0 {
		t.Fatal("no heavy keys in test stream")
	}
	if bad > heavies/10 {
		t.Errorf("%d/%d heavy keys off by >10%%", bad, heavies)
	}
}

func TestSwitchZeroOutliersAtAmpleSRAM(t *testing.T) {
	st := stream.IPTrace(100_000, 3)
	sk := NewSwitchSketch(512<<10, 25, 3)
	metrics.Feed(sk, st)
	rep := metrics.Evaluate(sk, st, 25)
	// The pipeline variant is lossier than the CPU version; require a
	// small outlier count at generous SRAM and compare trends in Fig20.
	if rep.Outliers > st.Distinct()/1000 {
		t.Errorf("outliers=%d at 512KB for 100k items", rep.Outliers)
	}
}

func TestSwitchOutliersShrinkWithSRAM(t *testing.T) {
	st := stream.IPTrace(200_000, 4)
	var prev int = -1
	for _, sram := range []int{8 << 10, 32 << 10, 128 << 10, 512 << 10} {
		sk := NewSwitchSketch(sram, 25, 4)
		metrics.Feed(sk, st)
		out := metrics.Evaluate(sk, st, 25).Outliers
		if prev >= 0 && out > prev*2 {
			t.Errorf("outliers grew with SRAM: %d → %d", prev, out)
		}
		prev = out
	}
	if prev > 0 {
		t.Logf("note: %d outliers remain at 512KB (pipeline variant)", prev)
	}
}

func TestRecirculationRare(t *testing.T) {
	st := stream.IPTrace(200_000, 5)
	sk := NewSwitchSketch(256<<10, 25, 5)
	metrics.Feed(sk, st)
	// Each locked bucket recirculates exactly one packet; recirculation
	// bandwidth must be a tiny fraction of traffic (<2%).
	if frac := float64(sk.Recirculated) / float64(st.Len()); frac > 0.02 {
		t.Errorf("recirculation fraction %.4f too high", frac)
	}
}

func TestFPGAModelReproducesTable3(t *testing.T) {
	m := FPGAModel{}
	rows := m.Report()
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	want := map[string][3]int{
		"Hash":      {85, 130, 0},
		"ESbucket":  {2521, 2592, 258},
		"Emergency": {48, 112, 1},
		"Total":     {2654, 2834, 259},
	}
	for _, r := range rows {
		w, ok := want[r.Module]
		if !ok {
			t.Errorf("unexpected module %q", r.Module)
			continue
		}
		if r.LUTs != w[0] || r.Registers != w[1] || r.BlockRAM != w[2] {
			t.Errorf("%s: got (%d,%d,%d) want %v", r.Module, r.LUTs, r.Registers, r.BlockRAM, w)
		}
		if r.FreqMHz != 339 {
			t.Errorf("%s: freq %d want 339", r.Module, r.FreqMHz)
		}
	}
	lut, reg, bram := m.Utilization(rows[3])
	if lut != "0.61%" || reg != "0.33%" || bram != "17.62%" {
		t.Errorf("utilization = %s/%s/%s, want 0.61%%/0.33%%/17.62%%", lut, reg, bram)
	}
	if m.ThroughputMpps() != 340 {
		t.Errorf("throughput %f want 340", m.ThroughputMpps())
	}
}

func TestFPGAModelScalesWithBuckets(t *testing.T) {
	small := FPGAModel{Buckets: paperBuckets / 2}.Report()
	big := FPGAModel{Buckets: paperBuckets * 2}.Report()
	if small[1].BlockRAM >= big[1].BlockRAM {
		t.Errorf("BRAM did not scale: %d vs %d", small[1].BlockRAM, big[1].BlockRAM)
	}
}

func TestSwitchModelReproducesTable4(t *testing.T) {
	rows := SwitchModel{}.Report()
	want := map[string]int{
		"Hash Bits":    541,
		"SRAM":         138,
		"Map RAM":      119,
		"TCAM":         0,
		"Stateful ALU": 12,
		"VLIW Instr":   23,
		"Match Xbar":   109,
	}
	wantPct := map[string]float64{
		"Hash Bits":    10.84,
		"SRAM":         14.37,
		"Map RAM":      20.66,
		"Stateful ALU": 25.00,
		"VLIW Instr":   5.99,
		"Match Xbar":   7.10,
	}
	for _, r := range rows {
		if w, ok := want[r.Resource]; ok && r.Usage != w {
			t.Errorf("%s usage = %d want %d", r.Resource, r.Usage, w)
		}
		if w, ok := wantPct[r.Resource]; ok {
			if diff := r.Percent - w; diff > 0.5 || diff < -0.5 {
				t.Errorf("%s pct = %.2f want ≈%.2f", r.Resource, r.Percent, w)
			}
		}
	}
}

func TestSwitchModelScalesWithLayers(t *testing.T) {
	d6 := SwitchModel{Layers: 6}.Report()
	d3 := SwitchModel{Layers: 3}.Report()
	// SALUs are 2 per layer.
	if d6[4].Usage != 12 || d3[4].Usage != 6 {
		t.Errorf("SALUs: d6=%d d3=%d", d6[4].Usage, d3[4].Usage)
	}
}
