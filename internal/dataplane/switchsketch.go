// Package dataplane provides the hardware substitutes for the paper's §5
// implementations, per the substitution policy in DESIGN.md §3:
//
//   - SwitchSketch simulates the Tofino (programmable switch) port of
//     ReliableSketch, honouring the three published pipeline constraints
//     (§5.2): at most one 32-bit pair of stateful state per stage, no
//     backward writes (locking requires packet recirculation), and two-way
//     branch updates with saturated subtraction.
//   - FPGAModel and SwitchResources are parametric resource models that
//     regenerate Tables 3 and 4 from a sketch geometry.
//
// The accuracy experiments of Figure 20 depend only on the *algorithmic*
// restrictions, which the simulator enforces exactly, so the shape of the
// published results (SRAM needed for zero outliers, AAE levels) carries
// over even though no switch is attached.
package dataplane

import (
	"repro/internal/hash"
)

// switchBucket is the per-layer state as laid out on the switch: the first
// stage holds (ID, DIFF = YES−NO), the second stage holds NO plus the
// LOCKED flag set via recirculation.
type switchBucket struct {
	id     uint64
	diff   uint64 // YES − NO, maintained with saturated subtraction
	no     uint64
	locked bool
	used   bool
}

// SwitchSketch is the pipeline-constrained ReliableSketch variant of §5.2.
// Compared to the CPU version it loses the exact swap-based replacement
// (Challenge I), locks one packet late (Challenge II: the recirculated
// packet sets the flag), and replaces IDs only when DIFF has been driven to
// zero (Challenge III) — the published simplifications, reproduced here.
type SwitchSketch struct {
	layers  [][]switchBucket
	widths  []int
	lambdas []uint64
	hashes  *hash.Family

	// Recirculated counts packets sent around the pipeline again to set a
	// LOCKED flag — the bandwidth cost of Challenge II.
	Recirculated uint64
}

// bucketBits is the deployed per-bucket SRAM: 32-bit ID + 32-bit DIFF +
// 16-bit NO + flag, padded to 81 bits ≈ 11 bytes of SRAM (the switch
// allocates in 128-bit words; the resource model accounts for that
// separately).
const switchBucketBytes = 10

// NewSwitchSketch builds a switch pipeline with the given SRAM budget,
// error tolerance and geometry defaults (Rw=2, Rl=2.5, d=6 — one Tofino
// stage pair per layer).
func NewSwitchSketch(sramBytes int, lambda uint64, seed uint64) *SwitchSketch {
	const d = 6
	const rw, rl = 2.0, 2.5
	total := sramBytes / switchBucketBytes
	if total < d {
		total = d
	}
	s := &SwitchSketch{
		layers:  make([][]switchBucket, d),
		widths:  make([]int, d),
		lambdas: make([]uint64, d),
		hashes:  hash.NewFamily(seed, d),
	}
	// Geometric splits, mirroring core's schedules.
	norm := 1.0
	{
		p := 1.0
		norm = 0
		for i := 0; i < d; i++ {
			p /= rw
			norm += p * (rw - 1)
		}
	}
	remaining := total
	for i := 0; i < d; i++ {
		share := (rw - 1) / powf(rw, i+1) / norm
		w := int(float64(total) * share)
		if w < 1 {
			w = 1
		}
		if w > remaining {
			w = remaining
		}
		s.widths[i] = w
		remaining -= w
		s.lambdas[i] = uint64(float64(lambda) * (rl - 1) / powf(rl, i+1))
		s.layers[i] = make([]switchBucket, w)
	}
	s.widths[0] += remaining
	s.layers[0] = make([]switchBucket, s.widths[0])
	return s
}

func powf(base float64, exp int) float64 {
	out := 1.0
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// Insert processes one packet through the pipeline.
func (s *SwitchSketch) Insert(key, value uint64) {
	v := value
	for i := range s.layers {
		j := s.hashes.Bucket(i, key, s.widths[i])
		b := &s.layers[i][j]
		switch {
		case !b.used:
			*b = switchBucket{id: key, diff: v, used: true}
			return
		case b.id == key:
			b.diff += v
			return
		case b.locked:
			// Locked, mismatched: the packet proceeds to the next stage pair.
			continue
		default:
			// Negative vote with saturated subtraction (Challenge III).
			b.no += v
			if b.diff > v {
				b.diff -= v
			} else {
				// DIFF exhausted: the *next* packet hashing here adopts the
				// bucket (deferred replacement). Model it by adopting now
				// with the residual value, which the next packet would carry.
				b.id = key
				b.diff = 0
			}
			if b.no >= s.lambdas[i] && !b.locked {
				// Challenge II: the packet that first crosses the threshold
				// recirculates to set the LOCKED flag.
				b.locked = true
				s.Recirculated++
			}
			return
		}
	}
	// Value dropped past the last stage; the control plane's emergency
	// structure would absorb this (§3.3). The simulator counts it as loss.
}

// Query is executed by the switch's control plane over the pipeline state.
func (s *SwitchSketch) Query(key uint64) uint64 {
	var est uint64
	for i := range s.layers {
		j := s.hashes.Bucket(i, key, s.widths[i])
		b := &s.layers[i][j]
		if b.used && b.id == key {
			est += b.diff + b.no
			return est
		}
		est += b.no
		if !b.locked {
			return est
		}
	}
	return est
}

// MemoryBytes reports the SRAM the bucket arrays occupy.
func (s *SwitchSketch) MemoryBytes() int {
	total := 0
	for _, w := range s.widths {
		total += w * switchBucketBytes
	}
	return total
}

// Name identifies the variant.
func (s *SwitchSketch) Name() string { return "Ours(Tofino)" }

// Layers returns the pipeline depth.
func (s *SwitchSketch) Layers() int { return len(s.layers) }
