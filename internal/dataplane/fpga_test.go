package dataplane

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stream"
)

func TestFPGAPipelineMatchesSequentialSketch(t *testing.T) {
	// The pipeline's forwarding makes it semantically identical to the
	// sequential raw sketch with the same seed and geometry.
	s := stream.IPTrace(100_000, 4)
	fp := NewFPGAPipeline(256<<10, 25, 4)
	ref := core.MustNew(core.Config{
		Lambda: 25, MemoryBytes: 256 << 10, Seed: 4,
		DisableMiceFilter: true, Emergency: true, EmergencyCounters: 512,
	})
	for _, it := range s.Items {
		fp.Insert(it.Key, it.Value)
		ref.Insert(it.Key, it.Value)
	}
	for key := range s.Truth() {
		e1, m1 := fp.QueryWithError(key)
		e2, m2 := ref.QueryWithError(key)
		if e1 != e2 || m1 != m2 {
			t.Fatalf("key %d: pipeline (%d,%d) vs sequential (%d,%d)", key, e1, m1, e2, m2)
		}
	}
}

func TestFPGACycleAccounting(t *testing.T) {
	fp := NewFPGAPipeline(64<<10, 25, 1)
	if fp.Cycles() != 0 {
		t.Errorf("idle pipeline reports %d cycles", fp.Cycles())
	}
	fp.Insert(1, 1)
	if got := fp.Cycles(); got != PipelineDepth {
		t.Errorf("single insert takes %d cycles, want %d (latency)", got, PipelineDepth)
	}
	for i := 0; i < 999; i++ {
		fp.Insert(uint64(i), 1)
	}
	// 1000 issues: 1000 + 40 drain.
	if got := fp.Cycles(); got != 1000+PipelineDepth-1 {
		t.Errorf("1000 inserts take %d cycles, want %d", got, 1000+PipelineDepth-1)
	}
}

func TestFPGAThroughputApproachesClock(t *testing.T) {
	fp := NewFPGAPipeline(512<<10, 25, 2)
	s := stream.IPTrace(200_000, 2)
	metrics.Feed(fp, s)
	got := fp.ThroughputMpps()
	// One insertion per 339MHz clock, amortized: within 0.1% of 339 Mpps.
	if math.Abs(got-339) > 0.5 {
		t.Errorf("throughput %.2f Mpps, want ≈339 (Table 3)", got)
	}
}

func TestFPGACertifiedBoundsWithEmergency(t *testing.T) {
	// The FPGA build carries the emergency stack: bounds hold even under
	// starvation-induced insertion failures.
	s := stream.Zipf(50_000, 5_000, 0.5, 3)
	fp := NewFPGAPipeline(4<<10, 5, 3)
	metrics.Feed(fp, s)
	violations := 0
	for key, f := range s.Truth() {
		est, mpe := fp.QueryWithError(key)
		if f > est || est-mpe > f {
			violations++
		}
	}
	if violations > 0 {
		t.Errorf("%d certified-interval violations despite emergency module", violations)
	}
	if fails, _ := fp.InsertionFailures(); fails == 0 {
		t.Log("note: starvation config provoked no failures; emergency path idle")
	}
}

func TestFPGAName(t *testing.T) {
	fp := NewFPGAPipeline(64<<10, 25, 1)
	if fp.Name() != "Ours(FPGA)" {
		t.Errorf("Name=%q", fp.Name())
	}
	if fp.MemoryBytes() == 0 {
		t.Error("MemoryBytes=0")
	}
	if fp.ThroughputMpps() != 0 {
		t.Error("idle pipeline reports nonzero throughput")
	}
}
