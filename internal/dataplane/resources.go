package dataplane

import "fmt"

// The resource models below regenerate Tables 3 and 4 from a sketch
// geometry. They are calibrated so the paper's default configuration (1MB
// of buckets, d=6 layers on the switch; the VC709 build on FPGA) reproduces
// the published numbers exactly, and they scale the size-dependent terms
// (BRAM, SRAM, hash bits) with the geometry so ablations remain meaningful.

// FPGAResources describes one module row of Table 3.
type FPGAResources struct {
	Module    string
	LUTs      int
	Registers int
	BlockRAM  int
	FreqMHz   int
}

// FPGAModel models the Virtex-7 (VC709, xc7vx690t) implementation of §5.1:
// a fully pipelined datapath accepting one key per clock with a 41-clock
// insertion latency at 340 MHz.
type FPGAModel struct {
	// Buckets is the total Error-Sensible bucket count.
	Buckets int
	// EmergencyDepth is the emergency stack entry count (default 512 — one
	// 36kb BRAM tile of 72-bit entries, matching the published build).
	EmergencyDepth int
}

// Published device capacity of the xc7vx690t.
const (
	vc709LUTs     = 433200
	vc709Regs     = 866400
	vc709BRAMTile = 1470
)

// paperBuckets is the bucket count of the published build (1MB of 72-bit
// buckets), against which the BRAM usage is calibrated.
const paperBuckets = 116508

// Report returns the per-module and total resource rows of Table 3.
func (m FPGAModel) Report() []FPGAResources {
	if m.Buckets <= 0 {
		m.Buckets = paperBuckets
	}
	if m.EmergencyDepth <= 0 {
		m.EmergencyDepth = 512
	}
	// BRAM scales with bucket storage: the published 258 tiles hold
	// paperBuckets 72-bit buckets (36kb tiles, dual-ported).
	bram := int(float64(258)*float64(m.Buckets)/float64(paperBuckets) + 0.5)
	if bram < 1 {
		bram = 1
	}
	emergBRAM := (m.EmergencyDepth*72 + 36*1024 - 1) / (36 * 1024)
	rows := []FPGAResources{
		{Module: "Hash", LUTs: 85, Registers: 130, BlockRAM: 0, FreqMHz: 339},
		{Module: "ESbucket", LUTs: 2521, Registers: 2592, BlockRAM: bram, FreqMHz: 339},
		{Module: "Emergency", LUTs: 48, Registers: 112, BlockRAM: emergBRAM, FreqMHz: 339},
	}
	total := FPGAResources{Module: "Total", FreqMHz: 339}
	for _, r := range rows {
		total.LUTs += r.LUTs
		total.Registers += r.Registers
		total.BlockRAM += r.BlockRAM
	}
	return append(rows, total)
}

// Utilization renders a resource count as a percentage of the VC709 device.
func (m FPGAModel) Utilization(r FPGAResources) (lut, reg, bram string) {
	return fmt.Sprintf("%.2f%%", 100*float64(r.LUTs)/vc709LUTs),
		fmt.Sprintf("%.2f%%", 100*float64(r.Registers)/vc709Regs),
		fmt.Sprintf("%.2f%%", 100*float64(r.BlockRAM)/vc709BRAMTile)
}

// PipelineDepth is the published insertion latency in clocks.
const PipelineDepth = 41

// ThroughputMpps returns the pipelined insertion rate: one key per clock at
// the synthesized frequency.
func (m FPGAModel) ThroughputMpps() float64 { return 340 }

// SwitchResource is one row of Table 4.
type SwitchResource struct {
	Resource string
	Usage    int
	// Percent is utilization of the Tofino's per-resource quota.
	Percent float64
}

// SwitchModel models the Tofino (Edgecore Wedge 100BF-32X) build of §5.2.
type SwitchModel struct {
	// Layers is the pipeline depth d (default 6).
	Layers int
	// SRAMBytes is the bucket SRAM budget.
	SRAMBytes int
}

// Tofino per-pipeline quotas (public figures for Tofino 1).
const (
	tofinoSRAMBlocks = 960 // 16KB blocks
	tofinoMapRAM     = 576
	tofinoSALUs      = 48
	tofinoHashBits   = 4992
	tofinoVLIW       = 384
	tofinoXbar       = 1536
)

// Report returns the Table 4 rows for the configured geometry. With the
// published defaults (d=6, 1MB + control SRAM) it reproduces the paper's
// utilization column.
func (m SwitchModel) Report() []SwitchResource {
	if m.Layers <= 0 {
		m.Layers = 6
	}
	if m.SRAMBytes <= 0 {
		m.SRAMBytes = 1 << 20
	}
	// Two SALUs per layer (ID/DIFF stage + NO stage), as the dependency
	// split of Challenge I requires.
	salus := 2 * m.Layers
	// Hash bits: one 32-bit index + key compare material per layer, plus
	// overhead lanes; calibrated to 541 at d=6.
	hashBits := 541 * m.Layers / 6
	// SRAM blocks: bucket arrays plus fixed overhead, calibrated to 138 at
	// the published build.
	dataBlocks := (m.SRAMBytes + 16*1024 - 1) / (16 * 1024)
	sram := dataBlocks + 138 - ((1<<20)+16*1024-1)/(16*1024)
	if sram < dataBlocks {
		sram = dataBlocks
	}
	mapRAM := 119 * m.Layers / 6
	vliw := 23 * m.Layers / 6
	xbar := 109 * m.Layers / 6
	rows := []SwitchResource{
		{Resource: "Hash Bits", Usage: hashBits},
		{Resource: "SRAM", Usage: sram},
		{Resource: "Map RAM", Usage: mapRAM},
		{Resource: "TCAM", Usage: 0},
		{Resource: "Stateful ALU", Usage: salus},
		{Resource: "VLIW Instr", Usage: vliw},
		{Resource: "Match Xbar", Usage: xbar},
	}
	quotas := []int{tofinoHashBits, tofinoSRAMBlocks, tofinoMapRAM, 0, tofinoSALUs, tofinoVLIW, tofinoXbar}
	for i := range rows {
		if quotas[i] > 0 {
			rows[i].Percent = 100 * float64(rows[i].Usage) / float64(quotas[i])
		}
	}
	return rows
}
