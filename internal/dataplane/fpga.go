package dataplane

import (
	"repro/internal/core"
)

// FPGAPipeline simulates the §5.1 Virtex-7 implementation at the
// cycle-accounting level: a fully pipelined datapath that accepts one key
// every clock and completes each insertion PipelineDepth (41) clocks later.
//
// Functionally the hardware computes exactly the sequential ReliableSketch
// insert — the pipeline forwards in-flight bucket updates so back-to-back
// packets hitting the same bucket observe each other (this is what the 41
// stages buy). The simulator therefore delegates semantics to the core
// sketch (raw variant, as the FPGA build has hash + ESbucket + emergency
// modules and no mice filter) and tracks clock-level timing separately.
type FPGAPipeline struct {
	sketch *core.Sketch
	// issued counts keys accepted into the pipeline (one per clock).
	issued uint64
	// FreqMHz is the synthesized clock (339 MHz per Table 3).
	FreqMHz float64
}

// NewFPGAPipeline builds the simulator with the given bucket memory and
// tolerance. The emergency stack of the published build is enabled.
func NewFPGAPipeline(memBytes int, lambda uint64, seed uint64) *FPGAPipeline {
	return &FPGAPipeline{
		sketch: core.MustNew(core.Config{
			Lambda:            lambda,
			MemoryBytes:       memBytes,
			Seed:              seed,
			DisableMiceFilter: true,
			Emergency:         true,
			EmergencyCounters: 512, // one BRAM tile, as in Table 3
		}),
		FreqMHz: 339,
	}
}

// Insert accepts one key-value pair into the pipeline (one clock).
func (p *FPGAPipeline) Insert(key, value uint64) {
	p.issued++
	p.sketch.Insert(key, value)
}

// Query reads the sketch from the control plane (not pipelined).
func (p *FPGAPipeline) Query(key uint64) uint64 { return p.sketch.Query(key) }

// QueryWithError reads the certified interval.
func (p *FPGAPipeline) QueryWithError(key uint64) (est, mpe uint64) {
	return p.sketch.QueryWithError(key)
}

// Cycles returns the total clocks to drain the pipeline: one issue slot per
// insertion plus the PipelineDepth−1 clock fill/drain overhead.
func (p *FPGAPipeline) Cycles() uint64 {
	if p.issued == 0 {
		return 0
	}
	return p.issued + PipelineDepth - 1
}

// ElapsedSeconds converts the cycle count to wall time at the synthesized
// frequency.
func (p *FPGAPipeline) ElapsedSeconds() float64 {
	return float64(p.Cycles()) / (p.FreqMHz * 1e6)
}

// ThroughputMpps is the sustained insertion rate: it converges to the clock
// frequency (one insertion per clock) as the pipeline amortizes its fill.
func (p *FPGAPipeline) ThroughputMpps() float64 {
	if p.issued == 0 {
		return 0
	}
	return float64(p.issued) / p.ElapsedSeconds() / 1e6
}

// InsertionFailures exposes the wrapped sketch's failure counters (caught
// by the emergency module on hardware).
func (p *FPGAPipeline) InsertionFailures() (count, value uint64) {
	return p.sketch.InsertionFailures()
}

// MemoryBytes reports the accounted bucket + emergency storage.
func (p *FPGAPipeline) MemoryBytes() int { return p.sketch.MemoryBytes() }

// Name identifies the variant.
func (p *FPGAPipeline) Name() string { return "Ours(FPGA)" }
