// Package hashpipe implements HashPipe (Sivaraman et al., SOSR 2017), the
// pipeline-friendly heavy-hitter sketch the paper compares against in the
// frequent-key experiments (Figure 7). HashPipe maintains d pipeline stages
// of (key, count) slots: stage 1 always admits the incoming key, and the
// displaced entry cascades down the pipeline, each stage keeping the larger
// of the resident and the carried entry. The paper uses d = 6.
package hashpipe

import (
	"repro/internal/sketch"

	"repro/internal/hash"
)

// slotBytes accounts one slot: 32-bit key + 32-bit count.
const slotBytes = 8

type slot struct {
	key      uint64
	count    uint64
	occupied bool
}

// Sketch is a HashPipe with d stages.
type Sketch struct {
	stages [][]slot
	width  int
	hashes *hash.Family
	name   string
}

// New builds a HashPipe with d stages of width slots.
func New(d, width int, seed uint64) *Sketch {
	if d < 1 || width < 1 {
		panic("hashpipe: invalid geometry")
	}
	s := &Sketch{
		stages: make([][]slot, d),
		width:  width,
		hashes: hash.NewFamily(seed, d),
		name:   "HashPipe",
	}
	for i := range s.stages {
		s.stages[i] = make([]slot, width)
	}
	return s
}

// NewBytes builds the paper's d=6 configuration sized to memBytes.
func NewBytes(memBytes int, seed uint64) *Sketch {
	w := memBytes / (6 * slotBytes)
	if w < 1 {
		w = 1
	}
	return New(6, w, seed)
}

// Insert pushes <key, value> through the pipeline.
func (s *Sketch) Insert(key, value uint64) {
	// Stage 1: always insert; evict the incumbent if different.
	j := s.hashes.Bucket(0, key, s.width)
	st := &s.stages[0][j]
	if !st.occupied || st.key == key {
		if st.occupied {
			st.count += value
		} else {
			*st = slot{key: key, count: value, occupied: true}
		}
		return
	}
	carried := *st
	*st = slot{key: key, count: value, occupied: true}

	// Later stages: merge on match, fill empties, else keep the heavier
	// entry and carry the lighter one onward.
	for i := 1; i < len(s.stages); i++ {
		j := s.hashes.Bucket(i, carried.key, s.width)
		st := &s.stages[i][j]
		if !st.occupied {
			*st = carried
			return
		}
		if st.key == carried.key {
			st.count += carried.count
			return
		}
		if carried.count > st.count {
			*st, carried = carried, *st
		}
	}
	// The lightest entry falls off the end of the pipeline and is lost —
	// HashPipe's known undercounting behaviour.
}

// Query sums the counts of every stage slot holding key (a key may be
// duplicated across stages after evictions).
func (s *Sketch) Query(key uint64) uint64 {
	var total uint64
	for i := range s.stages {
		j := s.hashes.Bucket(i, key, s.width)
		st := &s.stages[i][j]
		if st.occupied && st.key == key {
			total += st.count
		}
	}
	return total
}

// Tracked returns all resident entries across stages.
func (s *Sketch) Tracked() []sketch.KV {
	var out []sketch.KV
	for i := range s.stages {
		for j := range s.stages[i] {
			if st := s.stages[i][j]; st.occupied {
				out = append(out, sketch.KV{Key: st.key, Est: st.count})
			}
		}
	}
	return out
}

// MemoryBytes reports d × w × 8 bytes.
func (s *Sketch) MemoryBytes() int { return len(s.stages) * s.width * slotBytes }

// Name identifies the algorithm.
func (s *Sketch) Name() string { return s.name }

// Reset clears all stages.
func (s *Sketch) Reset() {
	for i := range s.stages {
		clear(s.stages[i])
	}
}
