package hashpipe

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

var (
	_ sketch.Sketch              = (*Sketch)(nil)
	_ sketch.HeavyHitterReporter = (*Sketch)(nil)
)

func TestSingleKeyExact(t *testing.T) {
	s := New(6, 1024, 1)
	for i := 0; i < 100; i++ {
		s.Insert(3, 1)
	}
	if got := s.Query(3); got != 100 {
		t.Errorf("Query(3)=%d want 100", got)
	}
}

func TestStageOneAlwaysAdmits(t *testing.T) {
	// Width 1 makes every key collide in stage 1; the newest key must always
	// be resident there.
	s := New(2, 1, 2)
	s.Insert(1, 5)
	s.Insert(2, 3)
	if s.stages[0][0].key != 2 {
		t.Errorf("stage 1 resident = %d, want newest key 2", s.stages[0][0].key)
	}
	// The displaced key 1 must have cascaded to stage 2.
	if got := s.Query(1); got != 5 {
		t.Errorf("Query(1)=%d want 5 (cascaded)", got)
	}
}

func TestEvictionKeepsHeavier(t *testing.T) {
	// Fill both stages, then collide: the lightest entry falls off the end.
	s := New(2, 1, 3)
	s.Insert(1, 100) // stage 1
	s.Insert(2, 1)   // stage 1; 1→stage 2
	s.Insert(3, 2)   // stage 1; 2 carried; stage 2 keeps 100 vs 2 → 2 dropped
	if got := s.Query(1); got != 100 {
		t.Errorf("heavy key lost: Query(1)=%d", got)
	}
	if got := s.Query(3); got != 2 {
		t.Errorf("Query(3)=%d want 2", got)
	}
	if got := s.Query(2); got != 0 {
		t.Errorf("Query(2)=%d want 0 (dropped off pipeline)", got)
	}
}

// TestNeverOverestimatesTotal: value is conserved or lost, never invented —
// the sum of all tracked counts never exceeds the inserted total.
func TestValueConservation(t *testing.T) {
	s := stream.Zipf(50_000, 5_000, 1.0, 4)
	sk := NewBytes(64<<10, 4)
	var total uint64
	for _, it := range s.Items {
		sk.Insert(it.Key, it.Value)
		total += it.Value
	}
	var tracked uint64
	for _, kv := range sk.Tracked() {
		tracked += kv.Est
	}
	if tracked > total {
		t.Errorf("tracked sum %d exceeds inserted %d", tracked, total)
	}
}

func TestDuplicateAcrossStagesSummed(t *testing.T) {
	// A key split across stages by evictions must have its pieces summed at
	// query time. Force a duplicate: key 1 in stage 2, then re-admitted in
	// stage 1.
	s := New(2, 1, 5)
	s.Insert(1, 5)
	s.Insert(2, 1) // 1 cascades to stage 2 (empty → placed)
	s.Insert(1, 7) // stage 1 evicts 2... 1 admitted fresh in stage 1
	got := s.Query(1)
	if got != 12 {
		t.Errorf("Query(1)=%d want 12 (5 in stage 2 + 7 in stage 1)", got)
	}
}

func TestHeavyHitterRecall(t *testing.T) {
	s := stream.Zipf(100_000, 10_000, 1.5, 6)
	sk := NewBytes(128<<10, 6)
	for _, it := range s.Items {
		sk.Insert(it.Key, it.Value)
	}
	misses := 0
	heavies := 0
	for k, f := range s.Truth() {
		if f < 2000 {
			continue
		}
		heavies++
		if sk.Query(k) < f/2 {
			misses++
		}
	}
	if heavies > 0 && misses > heavies/5 {
		t.Errorf("%d/%d heavy keys badly undercounted", misses, heavies)
	}
}

func TestMemoryAndReset(t *testing.T) {
	sk := NewBytes(1<<16, 1)
	if sk.MemoryBytes() > 1<<16 {
		t.Errorf("memory %d over budget", sk.MemoryBytes())
	}
	sk.Insert(1, 5)
	sk.Reset()
	if sk.Query(1) != 0 {
		t.Error("Reset did not clear")
	}
	if sk.Name() != "HashPipe" {
		t.Errorf("Name=%q", sk.Name())
	}
}

func BenchmarkInsert(b *testing.B) {
	sk := NewBytes(1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Insert(uint64(i&0xffff), 1)
	}
}
