package hashpipe

import "repro/internal/sketch"

func init() {
	sketch.Register("HashPipe",
		sketch.CapHeavyHitter|sketch.CapResettable,
		func(sp sketch.Spec) sketch.Sketch {
			return NewBytes(sp.MemoryBytes, sp.Seed)
		})
}
