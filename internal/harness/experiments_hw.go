package harness

import (
	"fmt"

	"repro/internal/dataplane"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// Table3 regenerates Table 3: FPGA implementation results, from the
// parametric Virtex-7 model.
func Table3(o Options) *Table {
	m := dataplane.FPGAModel{}
	t := &Table{
		ID:     "table3",
		Title:  "FPGA implementation results (VC709 model)",
		Header: []string{"Module", "CLB LUTs", "CLB Registers", "Block RAM", "Freq(MHz)"},
	}
	rows := m.Report()
	for _, r := range rows {
		t.AddRow(r.Module, r.LUTs, r.Registers, r.BlockRAM, r.FreqMHz)
	}
	lut, reg, bram := m.Utilization(rows[len(rows)-1])
	t.AddRow("Usage", lut, reg, bram, "")
	t.Notes = append(t.Notes,
		fmt.Sprintf("fully pipelined: 1 key/clock, %d-clock insert latency, %.0f M insertions/s",
			dataplane.PipelineDepth, m.ThroughputMpps()),
		"substitution: parametric synthesis model calibrated to the published xc7vx690t build")
	return t
}

// Table4 regenerates Table 4: Tofino hardware resource usage, from the
// parametric switch model.
func Table4(o Options) *Table {
	t := &Table{
		ID:     "table4",
		Title:  "Switch (Tofino) resources used by ReliableSketch",
		Header: []string{"Resource", "Usage", "Percentage"},
	}
	for _, r := range (dataplane.SwitchModel{}).Report() {
		t.AddRow(r.Resource, r.Usage, fmt.Sprintf("%.2f%%", r.Percent))
	}
	t.Notes = append(t.Notes,
		"substitution: parametric resource model calibrated to the published Edgecore Wedge 100BF-32X build")
	return t
}

// Fig20 reproduces Figure 20: testbed accuracy of the switch pipeline
// variant on byte-weighted traffic — AAE (in KB, the paper's Kbps modulo
// the constant replay duration) and #outliers across SRAM sizes.
// Variant is "ip" or "hadoop".
func Fig20(variant string, o Options) (*Table, error) {
	var s *stream.Stream
	switch variant {
	case "ip":
		s = stream.IPTrace(o.Items, o.Seed)
	case "hadoop":
		s = stream.Hadoop(o.Items, o.Seed)
	default:
		return nil, fmt.Errorf("harness: unknown fig20 dataset %q", variant)
	}
	weighted := stream.ByteWeighted(s, o.Seed)
	// Λ in bytes: the paper's Kbps thresholds over the replay window map to
	// a per-flow byte tolerance; 25 full packets ≈ 37.5KB.
	const lambdaBytes = 25 * 1500
	t := &Table{
		ID:     "fig20(" + variant + ")",
		Title:  "Switch-pipeline accuracy on byte-weighted " + s.Name,
		Header: []string{"SRAM(×N/Λ)", "SRAM", "AAE(KB)", "#Outliers", "Recirculated"},
	}
	// The paper's SRAM axis is specific to its testbed trace; for the
	// synthetic substitute we sweep the same *relative* range — fractions
	// of the N_bytes/Λ bucket budget zero outliers require — reproducing
	// the published shape (a 4× sweep whose top end reaches zero outliers).
	needBuckets := float64(weighted.Total()) / float64(lambdaBytes)
	for _, factor := range []float64{0.25, 0.5, 1, 2} {
		sram := int(factor * needBuckets * 10) // 10B per switch bucket
		if sram < 4096 {
			sram = 4096
		}
		sk := dataplane.NewSwitchSketch(sram, lambdaBytes, o.Seed)
		metrics.Feed(sk, weighted)
		rep := metrics.Evaluate(sk, weighted, lambdaBytes)
		t.AddRow(fmt.Sprintf("%.2f", factor), fmt.Sprintf("%dKB", sram>>10),
			rep.AAE/1024, rep.Outliers, sk.Recirculated)
	}
	t.Notes = append(t.Notes,
		"substitution: SwitchSketch simulator enforcing the three Tofino constraints; byte-weighted synthetic traffic replaces the 40Gbps replay",
		"paper shape: zero outliers above 368KB (IP) / 92KB (Hadoop) at 40M packets")
	return t, nil
}
