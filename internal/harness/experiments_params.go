package harness

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// paramFactory builds ReliableSketch with explicit decay ratios, through
// the registry like every other experiment factory (Spec.Rw/Rl carry the
// sweep). The display name encodes the parameter point.
func paramFactory(lambda uint64, rw, rl float64, seed uint64) sketch.Factory {
	return sketch.Factory{
		Name: fmt.Sprintf("Ours(Rw=%.1f,Rl=%.1f)", rw, rl),
		New: func(mem int) sketch.Sketch {
			return sketch.MustBuild("Ours", sketch.Spec{
				Lambda: lambda, MemoryBytes: mem, Seed: seed, Rw: rw, Rl: rl,
			})
		},
	}
}

// minMemorySameAAE finds the smallest memory at which the sketch's AAE over
// s drops to target or below. Returns 0 when maxBytes is insufficient.
// Starved ReliableSketch configurations can show a deceptively low AAE by
// silently dropping value (insertion failures void the certificate), so a
// probe with failures never counts as meeting the target.
func minMemorySameAAE(f sketch.Factory, s *stream.Stream, target float64, maxBytes int) int {
	aaeAt := func(mem int) float64 {
		sk := f.New(mem)
		metrics.Feed(sk, s)
		if rs, ok := sk.(*core.Sketch); ok {
			if fails, _ := rs.InsertionFailures(); fails > 0 {
				return math.Inf(1)
			}
		}
		return metrics.Evaluate(sk, s, 0).AAE
	}
	lo, hi := 1024, maxBytes
	if aaeAt(hi) > target {
		return 0
	}
	for hi-lo > hi/16 {
		mid := (lo + hi) / 2
		if aaeAt(mid) <= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// datasetPair returns the two datasets of the parameter studies
// (Figures 11–14): IP Trace and Web Stream.
func datasetPair(o Options) []*stream.Stream {
	return []*stream.Stream{
		stream.IPTrace(o.Items, o.Seed),
		stream.WebStream(o.Items, o.Seed),
	}
}

// Fig11 reproduces Figure 11: zero-outlier memory as Rw varies, for a grid
// of Rl values, on both datasets.
func Fig11(o Options) []*Table {
	return paramSweep(o, "fig11", "Zero-outlier memory vs Rw", true, true)
}

// Fig12 reproduces Figure 12: same-AAE (target 5) memory as Rw varies.
func Fig12(o Options) []*Table {
	return paramSweep(o, "fig12", "Same-AAE (=5) memory vs Rw", true, false)
}

// Fig13 reproduces Figure 13: zero-outlier memory as Rl varies, for a grid
// of Rw values.
func Fig13(o Options) []*Table {
	return paramSweep(o, "fig13", "Zero-outlier memory vs Rl", false, true)
}

// Fig14 reproduces Figure 14: same-AAE memory as Rl varies.
func Fig14(o Options) []*Table {
	return paramSweep(o, "fig14", "Same-AAE (=5) memory vs Rl", false, false)
}

// paramSweep runs the shared Figure 11–14 machinery. sweepRw selects which
// ratio is the x-axis; zeroOutlier selects the success criterion.
func paramSweep(o Options, id, title string, sweepRw, zeroOutlier bool) []*Table {
	const lam = 25
	const targetAAE = 5
	xs := []float64{1.4, 2.0, 2.5, 4.0, 6.0, 9.0, 12.5}
	grid := []float64{1.4, 2.0, 4.0, 9.0}
	maxBytes := int(10 * 1024 * 1024 * o.memScale())
	var tables []*Table
	for _, s := range datasetPair(o) {
		t := &Table{ID: id, Title: title + " on " + s.Name}
		xName, gName := "Rw", "Rl"
		if !sweepRw {
			xName, gName = "Rl", "Rw"
		}
		t.Header = []string{xName}
		for _, g := range grid {
			t.Header = append(t.Header, fmt.Sprintf("%s=%.1f", gName, g))
		}
		for _, x := range xs {
			row := []any{fmt.Sprintf("%.1f", x)}
			for _, g := range grid {
				rw, rl := x, g
				if !sweepRw {
					rw, rl = g, x
				}
				f := paramFactory(lam, rw, rl, o.Seed)
				var mem int
				if zeroOutlier {
					mem = MinMemoryZeroOutliers(f, s, lam, maxBytes)
				} else {
					mem = minMemorySameAAE(f, s, targetAAE, maxBytes)
				}
				if mem == 0 {
					row = append(row, ">max")
				} else {
					row = append(row, mbString(mem, o))
				}
			}
			t.AddRow(row...)
		}
		t.Notes = append(t.Notes, "paper optimum: Rw≈2–2.5 (Fig 11), Rl≈2–2.5 (Fig 13); memory at paper scale")
		tables = append(tables, t)
	}
	return tables
}

// Fig15 reproduces Figure 15: memory usage as the error threshold Λ varies
// — (a) under zero outliers for IP Trace and Web Stream, (b) under target
// AAE values on IP Trace.
func Fig15(o Options) []*Table {
	lambdas := []uint64{15, 25, 35, 50, 75, 100}
	maxBytes := int(10 * 1024 * 1024 * o.memScale())

	a := &Table{
		ID:     "fig15a",
		Title:  "Memory under zero outlier vs Λ",
		Header: []string{"Λ", "IP Trace", "Web Stream"},
	}
	streams := datasetPair(o)
	for _, lam := range lambdas {
		row := []any{lam}
		for _, s := range streams {
			mem := MinMemoryZeroOutliers(OursFactory(lam, o.Seed), s, lam, maxBytes)
			if mem == 0 {
				row = append(row, ">max")
			} else {
				row = append(row, mbString(mem, o))
			}
		}
		a.AddRow(row...)
	}
	a.Notes = append(a.Notes, "paper: memory ≈ inversely proportional to Λ")

	b := &Table{
		ID:     "fig15b",
		Title:  "Memory to reach target AAE vs Λ (IP Trace)",
		Header: []string{"Λ", "AAE≤5", "AAE≤10", "AAE≤15", "AAE≤20"},
	}
	ip := streams[0]
	for _, lam := range lambdas {
		row := []any{lam}
		for _, target := range []float64{5, 10, 15, 20} {
			mem := minMemorySameAAE(OursFactory(lam, o.Seed), ip, target, maxBytes)
			if mem == 0 {
				row = append(row, ">max")
			} else {
				row = append(row, mbString(mem, o))
			}
		}
		b.AddRow(row...)
	}
	b.Notes = append(b.Notes, "paper: optimal Λ ≈ 2–3× the target AAE")
	return []*Table{a, b}
}
