package harness

import (
	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// Ablation quantifies the design choices DESIGN.md calls out, beyond the
// paper's own figures:
//
//   - schedules: geometric (Double Exponential Control) vs arithmetic decay
//     — §3.2 claims arithmetic "thoroughly undermines" the design;
//   - mice filter on/off at tight memory on a mice-heavy workload;
//   - emergency layer cost;
//   - layer depth d.
func Ablation(o Options) []*Table {
	s := stream.IPTrace(o.Items, o.Seed)
	const lam = 25

	schedules := &Table{
		ID:     "ablation-schedules",
		Title:  "Schedule ablation at tight memory (≈ the zero-outlier budget)",
		Header: []string{"Schedule", "InsertionFailures", "#Outliers"},
	}
	// 1MB paper-scale sits just above the geometric schedules' zero-failure
	// point on the IP trace, which is exactly where schedule quality shows.
	tightMem := o.memFor(1.0)
	for _, kind := range []core.ScheduleKind{
		core.ScheduleGeometric,
		core.ScheduleArithmeticWidths,
		core.ScheduleArithmeticLambdas,
		core.ScheduleArithmeticBoth,
	} {
		sk := core.MustNew(core.Config{
			Lambda: lam, MemoryBytes: tightMem, Seed: o.Seed, Schedule: kind,
		})
		metrics.Feed(sk, s)
		fails, _ := sk.InsertionFailures()
		schedules.AddRow(kind.String(), fails, metrics.Evaluate(sk, s, lam).Outliers)
	}
	schedules.Notes = append(schedules.Notes,
		"each insertion failure voids the certificate; geometric keeps control where arithmetic cannot (§3.2)")

	depth := &Table{
		ID:     "ablation-depth",
		Title:  "Layer depth ablation",
		Header: []string{"d", "InsertionFailures", "#Outliers", "MemoryBytes"},
	}
	for _, d := range []int{2, 4, 7, 12, 20} {
		sk := core.MustNew(core.Config{
			Lambda: lam, MemoryBytes: tightMem, Seed: o.Seed, D: d,
		})
		metrics.Feed(sk, s)
		fails, _ := sk.InsertionFailures()
		depth.AddRow(d, fails, metrics.Evaluate(sk, s, lam).Outliers, sk.MemoryBytes())
	}
	depth.Notes = append(depth.Notes, "paper recommends d ≥ 7; shallow stacks fail, extra depth is nearly free")

	fpga := &Table{
		ID:     "ablation-fpga",
		Title:  "FPGA pipeline simulator: sustained throughput",
		Header: []string{"Items", "Cycles", "Throughput(Mpps)", "Failures"},
	}
	fp := dataplane.NewFPGAPipeline(o.memFor(1.0), lam, o.Seed)
	metrics.Feed(fp, s)
	fails, _ := fp.InsertionFailures()
	fpga.AddRow(s.Len(), fp.Cycles(), fp.ThroughputMpps(), fails)
	fpga.Notes = append(fpga.Notes, "one key per 339MHz clock, 41-clock latency — Table 3's 340M insertions/s claim")

	return []*Table{schedules, depth, fpga}
}

func init() {
	register("ablation", "design-choice ablations: schedules, depth, filter, FPGA pipeline",
		func(o Options) ([]*Table, error) { return Ablation(o), nil })
}
