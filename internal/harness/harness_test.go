package harness

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// tinyOptions keeps registry-wide smoke tests fast.
var tinyOptions = Options{Items: 60_000, Seed: 1, Trials: 2}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("long-cell", 0.001)
	tb.Notes = append(tb.Notes, "a note")
	s := tb.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "long-cell", "2.50", "0.0010", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestListCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"table1", "table3", "table4",
		"fig4a", "fig4b", "fig5",
		"fig6a", "fig6b", "fig6c", "fig6d",
		"fig7a", "fig7b",
		"fig8a", "fig8b", "fig9a", "fig9b",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19",
		"fig20a", "fig20b",
		"ablation", "merge", "serve",
	}
	have := map[string]bool{}
	for _, e := range List() {
		have[e.ID] = true
		if e.Description == "" {
			t.Errorf("experiment %s lacks a description", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(have) != len(want) {
		t.Errorf("registry has %d experiments, expected %d", len(have), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", tinyOptions); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// TestFastExperimentsSmoke runs the cheap single-configuration experiments
// end to end at tiny scale and sanity-checks their tables.
func TestFastExperimentsSmoke(t *testing.T) {
	for _, id := range []string{"table1", "table3", "table4", "fig10", "fig16", "fig17", "fig18", "fig19", "fig20a", "fig20b", "merge", "serve"} {
		tables, err := Run(id, tinyOptions)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Errorf("%s: empty table", id)
			}
			if len(tb.Header) == 0 {
				t.Errorf("%s: missing header", id)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Header) {
					t.Errorf("%s: row width %d != header %d", id, len(row), len(tb.Header))
				}
			}
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tb := Fig4(25, tinyOptions)
	// Column 1 is Ours: outliers must be zero at the largest memory point.
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] != "0" {
		t.Errorf("Ours outliers at max memory = %s, want 0\n%s", last[1], tb)
	}
	// At the largest memory, Ours must be no worse than every competitor.
	ours, _ := strconv.Atoi(last[1])
	for i := 2; i < len(last); i++ {
		v, err := strconv.Atoi(last[i])
		if err != nil {
			t.Fatalf("cell %d unparsable: %v", i, err)
		}
		if v < ours {
			t.Errorf("competitor %s beats Ours at max memory (%d < %d)", tb.Header[i], v, ours)
		}
	}
}

func TestFig4OutliersMonotoneForOurs(t *testing.T) {
	tb := Fig4(25, tinyOptions)
	prev := 1 << 30
	for _, row := range tb.Rows {
		v, _ := strconv.Atoi(row[1])
		if v > prev*3+10 {
			t.Errorf("Ours outliers grew sharply with memory: %d → %d", prev, v)
		}
		prev = v
	}
}

func TestMinMemoryZeroOutliers(t *testing.T) {
	s := stream.IPTrace(50_000, 2)
	f := OursFactory(25, 2)
	mem := MinMemoryZeroOutliers(f, s, 25, 4<<20)
	if mem == 0 {
		t.Fatal("no zero-outlier memory found within 4MB")
	}
	// The found budget must actually achieve zero outliers.
	sk := f.New(mem)
	metrics.Feed(sk, s)
	if out := metrics.Evaluate(sk, s, 25).Outliers; out != 0 {
		t.Errorf("returned memory %d yields %d outliers", mem, out)
	}
}

func TestFig17NoViolations(t *testing.T) {
	tb := Fig17(tinyOptions)
	for _, row := range tb.Rows {
		if row[3] != "0" {
			t.Errorf("class %s has %s interval violations", row[0], row[3])
		}
	}
}

func TestFig18SensedAtLeastActual(t *testing.T) {
	tables := Fig18(tinyOptions)
	b := tables[1]
	for _, row := range b.Rows {
		sensed, err1 := strconv.ParseFloat(row[1], 64)
		actual, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparsable row %v", row)
		}
		if sensed+1e-9 < actual {
			t.Errorf("mean sensed %.3f < mean actual %.3f", sensed, actual)
		}
	}
}

func TestFig19LayerDecay(t *testing.T) {
	tables := Fig19(tinyOptions)
	a := tables[0]
	// Total keys across layers must be positive and the filter row (-1)
	// must dominate for IP-trace-like traffic.
	if len(a.Rows) == 0 {
		t.Fatal("empty layer distribution")
	}
	if a.Rows[0][0] != "-1" {
		t.Fatalf("first layer row is %s, want -1 (mice filter)", a.Rows[0][0])
	}
	filterKeys, _ := strconv.Atoi(a.Rows[0][1])
	if filterKeys == 0 {
		t.Error("no keys resolved in the mice filter")
	}
}

func TestAlgosRestriction(t *testing.T) {
	o := tinyOptions
	o.Algos = []string{"Ours", "SS"}
	tb := Fig4(25, o)
	want := []string{"Memory(paper-scale)", "Ours", "SS"}
	if len(tb.Header) != len(want) {
		t.Fatalf("restricted header %v, want %v", tb.Header, want)
	}
	for i, h := range want {
		if tb.Header[i] != h {
			t.Errorf("restricted header[%d] = %q, want %q", i, tb.Header[i], h)
		}
	}
}

func TestSetUnknownNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set accepted an unregistered algorithm name")
		}
	}()
	Set(25, 1, "NoSuchSketch")
}

func TestHeavyHitterFactoriesTrack(t *testing.T) {
	s := stream.IPTrace(20_000, 1)
	for _, f := range HeavyHitterFactories(25, 1) {
		sk := f.New(64 << 10)
		metrics.Feed(sk, s)
		hh, ok := sk.(interface{ Tracked() []sketch.KV })
		if !ok {
			t.Errorf("%s built by HeavyHitterFactories cannot Tracked()", f.Name)
			continue
		}
		if len(hh.Tracked()) == 0 {
			t.Errorf("%s tracked nothing over 20k items", f.Name)
		}
	}
}

func TestFactorySetsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range AllFactories(25, 1) {
		if seen[f.Name] {
			t.Errorf("duplicate factory %s", f.Name)
		}
		seen[f.Name] = true
		sk := f.New(64 << 10)
		if sk == nil {
			t.Fatalf("factory %s returned nil", f.Name)
		}
		if sk.MemoryBytes() > 64<<10 {
			t.Errorf("%s exceeds its memory budget: %d", f.Name, sk.MemoryBytes())
		}
		sk.Insert(1, 1)
		_ = sk.Query(1)
	}
	if len(seen) != 14 {
		t.Errorf("expected 14 factories, got %d", len(seen))
	}
}
