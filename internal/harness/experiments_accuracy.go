package harness

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Fig4 reproduces Figure 4: #outliers vs memory on the IP trace for a given
// error tolerance (4a: Λ=5, 4b: Λ=25).
func Fig4(lambda uint64, o Options) *Table {
	s := stream.IPTrace(o.Items, o.Seed)
	t := outliersVsMemory(s, lambda, AccuracyFactories(lambda, o.Seed), o)
	t.ID = fmt.Sprintf("fig4(Λ=%d)", lambda)
	t.Title = fmt.Sprintf("#Outliers in all keys vs memory, Λ=%d (paper scale)", lambda)
	return t
}

// Λ does NOT scale with stream length: scaling memory in proportion to the
// stream keeps the per-bucket collision mass constant, so the paper's
// absolute tolerances carry over directly. Per-key frequency thresholds
// (Figure 7's T) DO scale, since individual key sums shrink with the
// stream.
func scaleFreq(threshold uint64, o Options) uint64 {
	tr := uint64(float64(threshold) * o.memScale())
	if tr < 2 {
		tr = 2
	}
	return tr
}

// Fig5 reproduces Figure 5: the minimum memory at which each algorithm
// reaches zero outliers, on IP Trace and Web Stream, Λ=25.
func Fig5(o Options) *Table {
	const lam = 25
	t := &Table{
		ID:     "fig5",
		Title:  "Memory consumption under zero outlier (Λ=25 paper scale)",
		Header: []string{"Algorithm", "IP Trace", "Web Stream"},
	}
	streams := []*stream.Stream{
		stream.IPTrace(o.Items, o.Seed),
		stream.WebStream(o.Items, o.Seed),
	}
	maxBytes := int(10 * 1024 * 1024 * o.memScale()) // paper probes up to 10MB
	factories := o.restrict(Set(lam, o.Seed, "Ours", "CM_acc", "CU_acc", "SS", "Elastic"))
	o.noteIfEmptyRestriction(t, factories)
	for _, f := range factories {
		row := []any{f.Name}
		for _, s := range streams {
			mem := MinMemoryZeroOutliers(f, s, lam, maxBytes)
			if mem == 0 {
				row = append(row, ">10MB")
			} else {
				row = append(row, mbString(mem, o))
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "memory shown at paper scale; '>10MB' = zero outliers unreachable within the probe ceiling (paper: CM_fast/CU_fast/Coco)")
	return t
}

// Fig6 reproduces Figure 6: #outliers vs memory across datasets, Λ=25.
// Variant selects the panel: "web", "dc", "zipf0.3", "zipf3.0".
func Fig6(variant string, o Options) (*Table, error) {
	const lam = 25
	s, ok := stream.ByName(variant, o.Items, o.Seed)
	if !ok {
		return nil, fmt.Errorf("harness: unknown fig6 dataset %q", variant)
	}
	t := outliersVsMemory(s, lam, AccuracyFactories(lam, o.Seed), o)
	t.ID = "fig6(" + variant + ")"
	t.Title = fmt.Sprintf("#Outliers on %s, Λ=25 (paper scale)", s.Name)
	return t, nil
}

// Fig7 reproduces Figure 7: worst-case outliers among frequent keys
// (true sum > threshold) over o.Trials seeds — the paper's extreme
// confidence-level methodology (100 repetitions, worst case reported).
func Fig7(threshold uint64, o Options) *Table {
	const lam = 25
	thr := scaleFreq(threshold, o)
	s := stream.IPTrace(o.Items, o.Seed)
	frequentTotal := 0
	for _, f := range s.Truth() {
		if f > thr {
			frequentTotal++
		}
	}
	t := &Table{
		ID:    fmt.Sprintf("fig7(T=%d)", threshold),
		Title: fmt.Sprintf("Worst-case #outliers in frequent keys (T=%d paper scale, %d frequent keys, %d trials)", threshold, frequentTotal, o.Trials),
	}
	factories := o.restrict(FrequentKeyFactories(lam, o.Seed))
	o.noteIfEmptyRestriction(t, factories)
	t.Header = []string{"Memory(paper-scale)"}
	for _, f := range factories {
		t.Header = append(t.Header, f.Name)
	}
	for _, mem := range o.memPoints() {
		row := []any{mbString(mem, o)}
		for _, f := range factories {
			worst := 0
			for trial := 0; trial < o.Trials; trial++ {
				seed := o.Seed + uint64(trial)*1000003
				sk := remakeWithSeed(f, lam, seed, mem)
				metrics.Feed(sk, s)
				_, out := metrics.FrequentKeyOutliers(sk, s, lam, thr)
				if out > worst {
					worst = out
				}
			}
			row = append(row, worst)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "hash seeds vary per trial; worst case reported, as in the paper")
	return t
}

// remakeWithSeed rebuilds a factory's sketch with a different hash seed, so
// worst-of-k experiments actually vary the hashing. Factory names are
// registry names, so the rebuild is a registry query with a fresh Spec.
func remakeWithSeed(f sketch.Factory, lambda, seed uint64, mem int) sketch.Sketch {
	if _, ok := sketch.Lookup(f.Name); ok {
		return sketch.MustBuild(f.Name, sketch.Spec{Lambda: lambda, Seed: seed, MemoryBytes: mem})
	}
	return f.New(mem)
}

// errorFigFactories is the shared Figure 8/9 set: the accurate CM/CU
// variants (which the paper's legend labels plainly "CM"/"CU") plus the
// heap- and bucket-based competitors, under registry names so -algos
// restriction works uniformly. errorVsMemory applies the restriction; the
// legend note maps the column labels back to the paper's.
func errorFigFactories(lambda uint64, o Options) []sketch.Factory {
	return Set(lambda, o.Seed, "Ours", "CM_acc", "CU_acc", "Elastic", "SS", "Coco")
}

// errorFigLegendNote reconciles registry column names with the paper's
// Figure 8/9 legend.
const errorFigLegendNote = `CM_acc/CU_acc are plotted as "CM"/"CU" in the paper's legend (accurate d=16 variants)`

// Fig8 reproduces Figure 8: AAE vs memory on a dataset ("ip" or "zipf3.0").
func Fig8(variant string, o Options) (*Table, error) {
	s, ok := stream.ByName(variant, o.Items, o.Seed)
	if !ok {
		return nil, fmt.Errorf("harness: unknown fig8 dataset %q", variant)
	}
	const lam = 25
	t := errorVsMemory(s, errorFigFactories(lam, o), o, false)
	t.Notes = append(t.Notes, errorFigLegendNote)
	t.ID = "fig8(" + variant + ")"
	t.Title = "AAE vs memory on " + s.Name
	return t, nil
}

// Fig9 reproduces Figure 9: ARE vs memory.
func Fig9(variant string, o Options) (*Table, error) {
	s, ok := stream.ByName(variant, o.Items, o.Seed)
	if !ok {
		return nil, fmt.Errorf("harness: unknown fig9 dataset %q", variant)
	}
	const lam = 25
	t := errorVsMemory(s, errorFigFactories(lam, o), o, true)
	t.Notes = append(t.Notes, errorFigLegendNote)
	t.ID = "fig9(" + variant + ")"
	t.Title = "ARE vs memory on " + s.Name
	return t, nil
}
