package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows/series a figure or table
// in the paper reports, as aligned text.
type Table struct {
	// ID is the experiment identifier, e.g. "fig4a".
	ID string
	// Title describes the artifact, e.g. "#Outliers vs memory, Λ=5".
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry caveats (substitutions, scaling) shown under the table.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v == float64(int64(v)):
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table as aligned monospaced text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
