package harness

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// mergeParts is how many ways the merge-accuracy experiment splits the
// stream: one part per simulated vantage point, matching the distributed
// example's agent count.
const mergeParts = 4

// MergeAccuracy quantifies what distributed aggregation costs: the stream
// is split round-robin across mergeParts same-Spec sketches (as vantage
// points slice shared traffic), the parts are merged into one sketch, and
// its error is compared against a single sketch fed the whole stream. For
// linear sketches (CM, Count) the merged columns must match the direct ones
// exactly; CU and ReliableSketch document their merge-induced loosening;
// error-bounded variants also report certified-interval violations, which
// must be zero.
func MergeAccuracy(o Options) *Table {
	s := stream.IPTrace(o.Items, o.Seed)
	lambda := uint64(25)
	mem := o.memFor(1)
	t := &Table{
		ID:    "merge",
		Title: fmt.Sprintf("merged vs single-sketch accuracy, %d-way split, IP trace, %dB, Λ=%d", mergeParts, mem, lambda),
		Header: []string{"Algorithm",
			"AAE(direct)", "AAE(merged)", "ARE(direct)", "ARE(merged)",
			"Outliers(direct)", "Outliers(merged)", "CertViol"},
	}

	entries := sketch.ByCapability(sketch.CapMergeable)
	restricted := make(map[string]bool, len(o.Algos))
	for _, name := range o.Algos {
		restricted[name] = true
	}
	parts := make([][]stream.Item, mergeParts)
	for i, it := range s.Items {
		parts[i%mergeParts] = append(parts[i%mergeParts], it)
	}

	rows := 0
	for _, e := range entries {
		if len(o.Algos) > 0 && !restricted[e.Name] {
			continue
		}
		spec := sketch.Spec{MemoryBytes: mem, Lambda: lambda, Seed: o.Seed}
		direct := e.Build(spec)
		sketch.InsertBatch(direct, s.Items)

		merged := e.Build(spec)
		sketch.InsertBatch(merged, parts[0])
		mg := merged.(sketch.Mergeable)
		mergedAll := true
		for _, part := range parts[1:] {
			other := e.Build(spec)
			sketch.InsertBatch(other, part)
			if err := mg.Merge(other); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s: merge failed, row skipped: %v", e.Name, err))
				mergedAll = false
				break
			}
		}
		if !mergedAll {
			// A partially merged sketch would masquerade as the merged
			// accuracy result — skip the row entirely.
			continue
		}

		dRep := metrics.Evaluate(direct, s, lambda)
		mRep := metrics.Evaluate(merged, s, lambda)
		certViol := "-"
		if eb, ok := merged.(sketch.ErrorBounded); ok {
			viol := 0
			for key, f := range s.Truth() {
				est, mpe := eb.QueryWithError(key)
				if f > est || sketch.CertifiedLowerBound(est, mpe) > f {
					viol++
				}
			}
			certViol = fmt.Sprint(viol)
		}
		t.AddRow(e.Name, dRep.AAE, mRep.AAE, dRep.ARE, mRep.ARE,
			dRep.Outliers, mRep.Outliers, certViol)
		rows++
	}
	if rows == 0 && len(o.Algos) > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("-algos %v matched no Mergeable variant — no data rows", o.Algos))
	}
	t.Notes = append(t.Notes,
		"linear sketches (CM, Count) merge exactly: merged columns equal direct ones",
		"CertViol counts keys outside the merged sketch's certified interval (must be 0)")
	return t
}
