package harness

import (
	"strconv"
	"strings"
	"testing"
)

// The sweep experiments (binary searches and grids) are exercised here at
// tiny scale; skip under -short to keep quick edit-compile loops snappy.

func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("sweep experiment skipped in -short mode")
	}
}

func TestFig5ZeroOutlierSweep(t *testing.T) {
	skipIfShort(t)
	tb := Fig5(tinyOptions)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows=%d want 5 algorithms", len(tb.Rows))
	}
	// Ours must find a budget on both datasets.
	ours := tb.Rows[0]
	if ours[0] != "Ours" {
		t.Fatalf("first row is %s", ours[0])
	}
	for _, cell := range ours[1:] {
		if strings.HasPrefix(cell, ">") {
			t.Errorf("Ours did not reach zero outliers: %v", ours)
		}
	}
}

func TestFig7WorstCaseSweep(t *testing.T) {
	skipIfShort(t)
	tb := Fig7(100, tinyOptions)
	if len(tb.Rows) == 0 {
		t.Fatal("empty table")
	}
	// At the largest memory, Ours (column 1) must report zero worst-case
	// outliers among frequent keys.
	last := tb.Rows[len(tb.Rows)-1]
	if last[1] != "0" {
		t.Errorf("Ours worst-case frequent-key outliers = %s at max memory", last[1])
	}
}

func TestFig11GridShape(t *testing.T) {
	skipIfShort(t)
	tables := Fig11(Options{Items: 40_000, Seed: 1, Trials: 1})
	if len(tables) != 2 {
		t.Fatalf("want 2 dataset tables, got %d", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 7 {
			t.Errorf("%s: rows=%d want 7 Rw points", tb.Title, len(tb.Rows))
		}
		for _, row := range tb.Rows {
			if len(row) != 5 {
				t.Errorf("%s: row width %d want 5", tb.Title, len(row))
			}
		}
	}
}

func TestFig15LambdaSweep(t *testing.T) {
	skipIfShort(t)
	tables := Fig15(Options{Items: 40_000, Seed: 1, Trials: 1})
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	a := tables[0]
	// Zero-outlier memory must not grow as Λ relaxes (monotone after
	// parsing, tolerating search jitter of one grid step).
	var prev float64 = 1e18
	for _, row := range a.Rows {
		cell := row[1]
		if strings.HasPrefix(cell, ">") {
			t.Fatalf("Λ=%s found no budget", row[0])
		}
		mb, err := strconv.ParseFloat(strings.TrimSuffix(cell, "MB"), 64)
		if err != nil {
			t.Fatalf("unparsable cell %q: %v", cell, err)
		}
		if mb > prev*1.5 {
			t.Errorf("memory grew sharply as Λ relaxed: %s after %.2f", cell, prev)
		}
		prev = mb
	}
}
