package harness

import (
	"fmt"
	"sort"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Fig17 reproduces Figure 17: sensed intervals for mice keys (17a) and
// elephant keys (17b) — verifying the true value always lies inside
// [estimate − MPE, estimate].
func Fig17(o Options) *Table {
	const lam = 25
	s := stream.IPTrace(o.Items, o.Seed)
	sk := core.NewFromMemory(o.memFor(1.0), lam, o.Seed)
	metrics.Feed(sk, s)
	t := &Table{
		ID:    "fig17",
		Title: "Sensed interval correctness by key class",
		Header: []string{"Class", "Keys", "InsideInterval", "Violations",
			"MeanWidth(MPE)"},
	}
	thrMice := scaleFreq(400, o)
	thrElephantLo := scaleFreq(4000, o)
	classes := []struct {
		name   string
		member func(f uint64) bool
	}{
		{"mice (f ≤ 400 paper-scale)", func(f uint64) bool { return f <= thrMice }},
		{"elephant (f ≥ 4000 paper-scale)", func(f uint64) bool { return f >= thrElephantLo }},
	}
	for _, c := range classes {
		var keys, inside, violations int
		var widthSum float64
		for key, f := range s.Truth() {
			if !c.member(f) {
				continue
			}
			keys++
			est, mpe := sk.QueryWithError(key)
			if f <= est && est-mpe <= f {
				inside++
			} else {
				violations++
			}
			widthSum += float64(mpe)
		}
		mean := 0.0
		if keys > 0 {
			mean = widthSum / float64(keys)
		}
		t.AddRow(c.name, keys, inside, violations, mean)
	}
	t.Notes = append(t.Notes, "paper Figure 17 plots per-key intervals; the reproduced claim is zero violations for both classes")
	return t
}

// Fig18 reproduces Figure 18: (a) sensed vs actual error, keys grouped by
// actual absolute error; (b) sensed and actual error vs memory size.
func Fig18(o Options) []*Table {
	const lam = 25
	s := stream.IPTrace(o.Items, o.Seed)

	a := &Table{
		ID:     "fig18a",
		Title:  "Average sensed error vs actual error",
		Header: []string{"ActualErr", "Keys", "MeanSensed(MPE)"},
	}
	sk := core.NewFromMemory(o.memFor(1.0), lam, o.Seed)
	metrics.Feed(sk, s)
	type group struct {
		count  int
		sensed float64
	}
	groups := map[uint64]*group{}
	for key, f := range s.Truth() {
		est, mpe := sk.QueryWithError(key)
		actual := est - f // ReliableSketch never underestimates
		g := groups[actual]
		if g == nil {
			g = &group{}
			groups[actual] = g
		}
		g.count++
		g.sensed += float64(mpe)
	}
	var actuals []uint64
	for a := range groups {
		actuals = append(actuals, a)
	}
	sort.Slice(actuals, func(i, j int) bool { return actuals[i] < actuals[j] })
	if len(actuals) > 20 {
		actuals = actuals[:20]
	}
	for _, act := range actuals {
		g := groups[act]
		a.AddRow(act, g.count, g.sensed/float64(g.count))
	}
	a.Notes = append(a.Notes, "paper: sensed error tracks the y=x line (always ≥ actual)")

	b := &Table{
		ID:     "fig18b",
		Title:  "Sensed vs actual error as memory grows",
		Header: []string{"Memory(paper-scale)", "MeanSensed", "MeanActual"},
	}
	for _, mbPaper := range []float64{1.0, 1.25, 1.5, 2.0, 2.5} {
		sk := core.NewFromMemory(o.memFor(mbPaper), lam, o.Seed)
		metrics.Feed(sk, s)
		rep := metrics.SensedError(sk, s)
		b.AddRow(fmt.Sprintf("%.2fMB", mbPaper), rep.MeanSensed, rep.MeanActual)
	}
	b.Notes = append(b.Notes, "paper: both sensed and actual error shrink with memory, sensed ≥ actual throughout")
	return []*Table{a, b}
}

// Fig19 reproduces Figure 19: (a) the per-layer key distribution at several
// memory sizes; (b) the sorted error distribution for Ours vs CM.
func Fig19(o Options) []*Table {
	const lam = 25
	s := stream.IPTrace(o.Items, o.Seed)

	a := &Table{
		ID:     "fig19a",
		Title:  "Layer distribution of keys (−1 = mice filter)",
		Header: []string{"Layer"},
	}
	memsPaperKB := []float64{1000, 1100, 1250, 2000}
	dists := make([]map[int]int, len(memsPaperKB))
	for i, kb := range memsPaperKB {
		a.Header = append(a.Header, fmt.Sprintf("%.0fKB", kb))
		sk := core.NewFromMemory(o.memFor(kb/1024), lam, o.Seed)
		metrics.Feed(sk, s)
		dist := map[int]int{}
		for key := range s.Truth() {
			dist[sk.StopLayer(key)]++
		}
		dists[i] = dist
	}
	allLayers := map[int]int{}
	for _, d := range dists {
		for l := range d {
			allLayers[l] = 1
		}
	}
	for _, l := range sortedLayerKeys(allLayers) {
		row := []any{l}
		for _, d := range dists {
			row = append(row, d[l])
		}
		a.AddRow(row...)
	}
	a.Notes = append(a.Notes, "paper: key count per layer falls faster than exponentially")

	b := &Table{
		ID:     "fig19b",
		Title:  "Error distribution (descending percentiles), Ours vs CM, Λ=25",
		Header: []string{"Rank", "Ours(Sensed)", "Ours(Actual)", "CM"},
	}
	mem := o.memFor(1.0)
	ours := core.NewFromMemory(mem, lam, o.Seed)
	cmf := cm.NewFast(mem, o.Seed)
	metrics.Feed(ours, s)
	metrics.Feed(cmf, s)
	actual := metrics.ErrorDistribution(ours, s)
	cmErrs := metrics.ErrorDistribution(cmf, s)
	sensed := make([]uint64, 0, s.Distinct())
	for key := range s.Truth() {
		_, mpe := ours.QueryWithError(key)
		sensed = append(sensed, mpe)
	}
	sort.Slice(sensed, func(i, j int) bool { return sensed[i] > sensed[j] })
	for _, frac := range []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1.0} {
		idx := int(frac*float64(len(actual))) - 1
		if idx < 0 {
			idx = 0
		}
		b.AddRow(fmt.Sprintf("top %.2f%%", frac*100), sensed[idx], actual[idx], cmErrs[idx])
	}
	b.Notes = append(b.Notes, "paper: Ours' errors all below Λ=25; CM's tail exceeds it by orders of magnitude")
	return []*Table{a, b}
}

// Table1 renders the complexity comparison of Table 1 and backs it with an
// empirical overall-confidence probe: the fraction of trials in which ALL
// keys stay within Λ, for a counter-based baseline vs ReliableSketch.
func Table1(o Options) *Table {
	t := &Table{
		ID:    "table1",
		Title: "Complexity comparison (analytic) + measured overall confidence",
		Header: []string{"Family", "Overall confidence", "Insert time", "Space",
			"HW-compatible", "Measured P[all keys ≤ Λ]"},
	}
	// Empirical probe at deliberately tight memory so baselines show their
	// outlier tail: 0.5MB paper-scale, Λ=25, small stream for trial count.
	const lam = 25
	probeItems := o.Items / 4
	if probeItems < 100_000 {
		probeItems = o.Items
	}
	probe := stream.IPTrace(probeItems, o.Seed)
	mem := int(0.5 * 1024 * 1024 * float64(probeItems) / 10_000_000)
	trials := o.Trials
	confidence := func(name string) string {
		ok := 0
		for trial := 0; trial < trials; trial++ {
			seed := o.Seed + uint64(trial)*7919
			sk := sketch.MustBuild(name, sketch.Spec{Lambda: lam, Seed: seed, MemoryBytes: mem})
			metrics.Feed(sk, probe)
			if metrics.Evaluate(sk, probe, lam).Outliers == 0 {
				ok++
			}
		}
		return fmt.Sprintf("%d/%d trials", ok, trials)
	}
	t.AddRow("Counter-based L1 (CM)", "(1−δ)^N → 0", "O(ln 1/δ)", "O(N/Λ·ln 1/δ)", "high", confidence("CM_fast"))
	t.AddRow("Counter-based L2 (Count)", "(1−δ)^N → 0", "O(ln 1/δ)", "O(N₂²/Λ²·ln 1/δ)", "high", confidence("Count"))
	t.AddRow("Heap-based (SS)", "100%", "O(ln(N/Λ))", "O(N/Λ)", "low", confidence("SS"))
	t.AddRow("ReliableSketch", "1−Δ", "O(1+Δ lnln(N/Λ))", "O(N/Λ+ln 1/Δ)", "high", confidence("Ours"))
	t.Notes = append(t.Notes,
		fmt.Sprintf("probe: %d items, 0.5MB paper-scale memory, Λ=%d, %d seeds", probeItems, lam, trials))
	return t
}
