package harness

import (
	"fmt"
	"sort"
)

// Experiment is a registered paper artifact that can be regenerated.
type Experiment struct {
	// ID is the canonical identifier ("fig4a", "table3", ...).
	ID string
	// Description summarizes the artifact.
	Description string
	// Run executes the experiment and returns one or more result tables.
	Run func(o Options) ([]*Table, error)
}

// registry holds every reproducible table and figure, keyed by ID.
var registry = map[string]Experiment{}

func register(id, desc string, run func(o Options) ([]*Table, error)) {
	registry[id] = Experiment{ID: id, Description: desc, Run: run}
}

func one(t *Table) ([]*Table, error) { return []*Table{t}, nil }

func init() {
	register("table1", "complexity comparison + measured overall confidence",
		func(o Options) ([]*Table, error) { return one(Table1(o)) })
	register("table3", "FPGA implementation resources",
		func(o Options) ([]*Table, error) { return one(Table3(o)) })
	register("table4", "switch (Tofino) resources",
		func(o Options) ([]*Table, error) { return one(Table4(o)) })

	register("fig4a", "#outliers vs memory, Λ=5, IP trace",
		func(o Options) ([]*Table, error) { return one(Fig4(5, o)) })
	register("fig4b", "#outliers vs memory, Λ=25, IP trace",
		func(o Options) ([]*Table, error) { return one(Fig4(25, o)) })
	register("fig5", "zero-outlier memory consumption",
		func(o Options) ([]*Table, error) { return one(Fig5(o)) })
	for _, v := range []struct{ id, ds string }{
		{"fig6a", "web"}, {"fig6b", "dc"}, {"fig6c", "zipf0.3"}, {"fig6d", "zipf3.0"},
	} {
		ds := v.ds
		register(v.id, "#outliers vs memory on "+ds,
			func(o Options) ([]*Table, error) {
				t, err := Fig6(ds, o)
				if err != nil {
					return nil, err
				}
				return one(t)
			})
	}
	register("fig7a", "worst-case frequent-key outliers, T=100",
		func(o Options) ([]*Table, error) { return one(Fig7(100, o)) })
	register("fig7b", "worst-case frequent-key outliers, T=1000",
		func(o Options) ([]*Table, error) { return one(Fig7(1000, o)) })
	for _, v := range []struct{ id, ds string }{
		{"fig8a", "ip"}, {"fig8b", "zipf3.0"},
	} {
		ds := v.ds
		register(v.id, "AAE vs memory on "+ds,
			func(o Options) ([]*Table, error) {
				t, err := Fig8(ds, o)
				if err != nil {
					return nil, err
				}
				return one(t)
			})
	}
	for _, v := range []struct{ id, ds string }{
		{"fig9a", "ip"}, {"fig9b", "zipf3.0"},
	} {
		ds := v.ds
		register(v.id, "ARE vs memory on "+ds,
			func(o Options) ([]*Table, error) {
				t, err := Fig9(ds, o)
				if err != nil {
					return nil, err
				}
				return one(t)
			})
	}
	register("fig10", "insertion/query throughput, all algorithms",
		func(o Options) ([]*Table, error) { return one(Fig10(o)) })
	register("merge", "merged vs single-sketch accuracy on a split stream (Mergeable variants)",
		func(o Options) ([]*Table, error) { return one(MergeAccuracy(o)) })
	register("serve", "query-serving cache hit rate and latency under concurrent load",
		func(o Options) ([]*Table, error) {
			t, err := ServeLoad(o)
			if err != nil {
				return nil, err
			}
			return one(t)
		})
	register("fig11", "Rw impact under zero outlier",
		func(o Options) ([]*Table, error) { return Fig11(o), nil })
	register("fig12", "Rw impact under same AAE",
		func(o Options) ([]*Table, error) { return Fig12(o), nil })
	register("fig13", "Rl impact under zero outlier",
		func(o Options) ([]*Table, error) { return Fig13(o), nil })
	register("fig14", "Rl impact under same AAE",
		func(o Options) ([]*Table, error) { return Fig14(o), nil })
	register("fig15", "memory vs error threshold Λ",
		func(o Options) ([]*Table, error) { return Fig15(o), nil })
	register("fig16", "average # hash calls vs memory",
		func(o Options) ([]*Table, error) { return one(Fig16(o)) })
	register("fig17", "sensed interval correctness",
		func(o Options) ([]*Table, error) { return one(Fig17(o)) })
	register("fig18", "sensed vs actual error",
		func(o Options) ([]*Table, error) { return Fig18(o), nil })
	register("fig19", "error-controlling: layer + error distributions",
		func(o Options) ([]*Table, error) { return Fig19(o), nil })
	for _, v := range []struct{ id, ds string }{
		{"fig20a", "ip"}, {"fig20b", "hadoop"},
	} {
		ds := v.ds
		register(v.id, "switch testbed accuracy on "+ds,
			func(o Options) ([]*Table, error) {
				t, err := Fig20(ds, o)
				if err != nil {
					return nil, err
				}
				return one(t)
			})
	}
}

// Run executes the experiment with the given ID.
func Run(id string, o Options) ([]*Table, error) {
	exp, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (see List)", id)
	}
	return exp.Run(o)
}

// List returns all registered experiments sorted by ID.
func List() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
