package harness

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Options scale an experiment run. The defaults reproduce the paper's
// figures at 1/10 of the published stream length (laptop time budget);
// PaperOptions restores full scale.
type Options struct {
	// Items is the stream length for trace stand-ins.
	Items int
	// Seed drives dataset generation and sketch hashing.
	Seed uint64
	// Trials is the repetition count for worst-case experiments (the paper
	// uses 100 for Figure 7).
	Trials int
	// Algos, when non-empty, restricts every comparison experiment to the
	// named registry variants (rsbench -algos). Experiments probing a single
	// fixed algorithm (Figures 16-19) ignore it.
	Algos []string
}

// restrict filters a factory set down to o.Algos (no-op when unset). Order
// follows the figure's set, not the flag.
func (o Options) restrict(fs []sketch.Factory) []sketch.Factory {
	if len(o.Algos) == 0 {
		return fs
	}
	want := make(map[string]bool, len(o.Algos))
	for _, name := range o.Algos {
		want[name] = true
	}
	out := fs[:0:0]
	for _, f := range fs {
		if want[f.Name] {
			out = append(out, f)
		}
	}
	return out
}

// noteIfEmptyRestriction flags a table whose algorithm set was filtered to
// nothing by -algos: the named variants exist in the registry but not in
// this figure's comparison, which would otherwise render as a silently
// successful measurement of nothing.
func (o Options) noteIfEmptyRestriction(t *Table, factories []sketch.Factory) {
	if len(factories) == 0 && len(o.Algos) > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("-algos %v matched none of this figure's algorithms — no data columns", o.Algos))
	}
}

// DefaultOptions is the laptop-friendly configuration.
var DefaultOptions = Options{Items: 1_000_000, Seed: 1, Trials: 10}

// PaperOptions matches the published experiment scale.
var PaperOptions = Options{Items: 10_000_000, Seed: 1, Trials: 100}

// memScale converts the paper's memory axis (published for 10M-item
// streams) to this run's stream length, preserving the memory-to-stream
// ratio that accuracy depends on.
func (o Options) memScale() float64 { return float64(o.Items) / 10_000_000 }

// memPoints returns the paper's memory sweep (0.25–4 MB for 10M items),
// scaled to the configured stream length.
func (o Options) memPoints() []int {
	base := []float64{0.25, 0.5, 1, 1.5, 2, 3, 4} // MB at paper scale
	pts := make([]int, len(base))
	for i, mb := range base {
		pts[i] = int(mb * 1024 * 1024 * o.memScale())
	}
	return pts
}

// memFor converts a paper-scale memory size (MB at 10M items) to this
// run's scale, with a 64KB floor so single-sketch in-depth experiments
// (Figures 16-19) don't starve at tiny test scales.
func (o Options) memFor(paperMB float64) int {
	mem := int(paperMB * 1024 * 1024 * o.memScale())
	if mem < 64<<10 {
		mem = 64 << 10
	}
	return mem
}

func mbString(bytes int, o Options) string {
	return fmt.Sprintf("%.2fMB", float64(bytes)/o.memScale()/1024/1024)
}

// outliersVsMemory is the primitive behind Figures 4 and 6: one row per
// memory point, one column per algorithm, counting outliers for lambda.
func outliersVsMemory(s *stream.Stream, lambda uint64, factories []sketch.Factory, o Options) *Table {
	factories = o.restrict(factories)
	t := &Table{Header: []string{"Memory(paper-scale)"}}
	o.noteIfEmptyRestriction(t, factories)
	for _, f := range factories {
		t.Header = append(t.Header, f.Name)
	}
	for _, mem := range o.memPoints() {
		row := []any{mbString(mem, o)}
		for _, f := range factories {
			sk := f.New(mem)
			metrics.Feed(sk, s)
			rep := metrics.Evaluate(sk, s, lambda)
			row = append(row, rep.Outliers)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("stream=%s items=%d distinct=%d Λ=%d; memory axis shown at paper scale (10M items), actual = axis × %.2f",
			s.Name, s.Len(), s.Distinct(), lambda, o.memScale()))
	return t
}

// MinMemoryZeroOutliers searches for the smallest memory budget (within
// the probe grid's resolution) at which factory produces zero outliers on
// s. It returns 0 when even maxBytes fails. The paper's Figure 5
// methodology: CM/CU/Elastic "usually require more than the minimum value,
// otherwise they cannot achieve zero outlier stably", so callers pass
// several seeds and take the worst.
func MinMemoryZeroOutliers(f sketch.Factory, s *stream.Stream, lambda uint64, maxBytes int) int {
	lo, hi := 1024, maxBytes
	// First verify the ceiling works at all.
	if countOutliers(f, s, lambda, hi) > 0 {
		return 0
	}
	for hi-lo > hi/16 {
		mid := (lo + hi) / 2
		if countOutliers(f, s, lambda, mid) == 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

func countOutliers(f sketch.Factory, s *stream.Stream, lambda uint64, mem int) int {
	sk := f.New(mem)
	metrics.Feed(sk, s)
	return metrics.Evaluate(sk, s, lambda).Outliers
}

// errorVsMemory is the primitive behind Figures 8 (AAE) and 9 (ARE).
func errorVsMemory(s *stream.Stream, factories []sketch.Factory, o Options, relative bool) *Table {
	factories = o.restrict(factories)
	t := &Table{Header: []string{"Memory(paper-scale)"}}
	o.noteIfEmptyRestriction(t, factories)
	for _, f := range factories {
		t.Header = append(t.Header, f.Name)
	}
	for _, mem := range o.memPoints() {
		row := []any{mbString(mem, o)}
		for _, f := range factories {
			sk := f.New(mem)
			metrics.Feed(sk, s)
			rep := metrics.Evaluate(sk, s, 0)
			if relative {
				row = append(row, rep.ARE)
			} else {
				row = append(row, rep.AAE)
			}
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("stream=%s items=%d", s.Name, s.Len()))
	return t
}

// sortedLayerKeys returns map keys in ascending order, for stable tables.
func sortedLayerKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
