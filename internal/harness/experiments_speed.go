package harness

import (
	"fmt"
	"time"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// Fig10 reproduces Figure 10: insertion and query throughput (Mpps) for all
// eleven variants over the IP trace at the paper's default 1MB/Λ=25
// configuration (memory scaled with the stream).
func Fig10(o Options) *Table {
	const lam = 25
	s := stream.IPTrace(o.Items, o.Seed)
	mem := o.memFor(1.0)
	t := &Table{
		ID:     "fig10",
		Title:  fmt.Sprintf("Throughput over %d insertions + all-key queries (Mpps)", s.Len()),
		Header: []string{"Algorithm", "Insert(Mpps)", "Query(Mpps)"},
	}
	factories := o.restrict(ThroughputFactories(lam, o.Seed))
	o.noteIfEmptyRestriction(t, factories)
	for _, f := range factories {
		sk := f.New(mem)
		// Insert item by item, not through metrics.Feed: the paper's
		// Figure 10 measures per-packet insertion, and the batch path would
		// amortize it asymmetrically (only some variants have native batch
		// implementations). BenchmarkInsertBatch reports the batch gains.
		start := time.Now()
		for _, it := range s.Items {
			sk.Insert(it.Key, it.Value)
		}
		insDur := time.Since(start)
		qryDur, qn := metrics.QueryAll(sk, s)
		t.AddRow(f.Name, metrics.Mpps(s.Len(), insDur), metrics.Mpps(qn, qryDur))
	}
	t.Notes = append(t.Notes,
		"absolute Mpps depend on this machine; the paper's shape claim is Raw ≈ CM_fast ≈ Coco ≈ HashPipe > CU_fast/Elastic/PRECISION >> SS/acc variants",
		"per-item insertion path, as in the paper; batch-path speedups are benchmarked separately")
	return t
}

// Fig16 reproduces Figure 16: the average number of hash-function calls per
// insertion and per query as memory grows, for Ours, Ours(Raw), and CM_fast.
func Fig16(o Options) *Table {
	const lam = 25
	s := stream.IPTrace(o.Items, o.Seed)
	t := &Table{
		ID:    "fig16",
		Title: "Average # hash calls per operation vs memory",
		Header: []string{"Memory(paper-scale)",
			"Ours ins", "Ours qry", "Raw ins", "Raw qry", "CM_fast ins", "CM_fast qry"},
	}
	for _, mem := range o.memPoints() {
		ours := core.NewFromMemory(mem, lam, o.Seed)
		raw := core.NewRaw(mem, lam, o.Seed)
		cmf := cm.NewFast(mem, o.Seed)
		// Feed item by item, not through metrics.Feed: this figure measures
		// the per-operation hash-call count, which the batch path
		// deliberately amortizes away for CM.
		for _, it := range s.Items {
			ours.Insert(it.Key, it.Value)
			raw.Insert(it.Key, it.Value)
			cmf.Insert(it.Key, it.Value)
		}
		cmInsCalls := float64(cmf.HashCalls()) / float64(s.Len())
		for key := range s.Truth() {
			ours.Query(key)
			raw.Query(key)
		}
		cmf.Reset()
		for key := range s.Truth() {
			cmf.Query(key)
		}
		cmQryCalls := float64(cmf.HashCalls()) / float64(s.Distinct())
		oi, oq := ours.HashCallStats()
		ri, rq := raw.HashCallStats()
		t.AddRow(mbString(mem, o), oi, oq, ri, rq, cmInsCalls, cmQryCalls)
	}
	t.Notes = append(t.Notes,
		"paper: Raw stabilizes at 1 call, Ours at ≈3 (2 filter rows + 1 layer), CM_fast constant at 3")
	return t
}
