// Package harness drives the paper's evaluation (§6): it builds every
// algorithm from a memory budget, runs the workloads from internal/stream,
// and renders each figure and table as text rows. Every experiment is
// addressable by its paper artifact id ("fig4a", "table3", ...) through Run.
//
// Algorithms are never constructed directly: each per-figure set is a query
// against the sketch registry (populated by repro/internal/sketch/all), so
// adding an algorithm variant means registering it in its own package — no
// harness edits.
package harness

import (
	"fmt"

	"repro/internal/sketch"
	_ "repro/internal/sketch/all" // register every algorithm variant
)

// Set resolves registry names into a memory-sweep factory set for the given
// error tolerance and seed. Unknown names panic: per-figure sets are static
// and a typo should fail loudly at experiment start, not render an empty
// column.
func Set(lambda, seed uint64, names ...string) []sketch.Factory {
	fs := make([]sketch.Factory, 0, len(names))
	for _, name := range names {
		e, ok := sketch.Lookup(name)
		if !ok {
			panic(fmt.Sprintf("harness: algorithm %q not registered", name))
		}
		fs = append(fs, e.Factory(sketch.Spec{Lambda: lambda, Seed: seed}))
	}
	return fs
}

// OursFactory builds ReliableSketch (with mice filter) for tolerance lambda.
func OursFactory(lambda, seed uint64) sketch.Factory {
	return Set(lambda, seed, "Ours")[0]
}

// RawFactory builds the filterless ReliableSketch variant.
func RawFactory(lambda, seed uint64) sketch.Factory {
	return Set(lambda, seed, "Ours(Raw)")[0]
}

// AccuracyFactories is the algorithm set of the outlier/AAE/ARE comparisons
// (Figures 4, 6, 8, 9): Ours plus the counter-based and heap-based
// competitors.
func AccuracyFactories(lambda, seed uint64) []sketch.Factory {
	return Set(lambda, seed,
		"Ours", "CM_acc", "CU_acc", "CM_fast", "CU_fast", "Elastic", "SS", "Coco")
}

// FrequentKeyFactories is the Figure 7 set: Ours against the
// pipeline-friendly heavy-hitter algorithms plus Space-Saving.
func FrequentKeyFactories(lambda, seed uint64) []sketch.Factory {
	return Set(lambda, seed, "Ours", "PRECISION", "Elastic", "HashPipe", "SS")
}

// ThroughputFactories is the Figure 10 set: all eleven variants.
func ThroughputFactories(lambda, seed uint64) []sketch.Factory {
	return Set(lambda, seed,
		"Ours", "Ours(Raw)", "CM_fast", "CU_fast", "CM_acc", "CU_acc",
		"SS", "Elastic", "Coco", "HashPipe", "PRECISION")
}

// AllFactories is the full registry — every registered variant, sorted by
// name. Used by the completeness tests and the demo tool.
func AllFactories(lambda, seed uint64) []sketch.Factory {
	return Set(lambda, seed, sketch.Names()...)
}

// HeavyHitterFactories queries the registry by capability: every variant
// that can enumerate its tracked keys. New heavy-hitter algorithms join
// these experiments just by registering with sketch.CapHeavyHitter.
func HeavyHitterFactories(lambda, seed uint64) []sketch.Factory {
	var fs []sketch.Factory
	for _, e := range sketch.ByCapability(sketch.CapHeavyHitter) {
		fs = append(fs, e.Factory(sketch.Spec{Lambda: lambda, Seed: seed}))
	}
	return fs
}
