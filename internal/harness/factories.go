// Package harness drives the paper's evaluation (§6): it builds every
// algorithm from a memory budget, runs the workloads from internal/stream,
// and renders each figure and table as text rows. Every experiment is
// addressable by its paper artifact id ("fig4a", "table3", ...) through Run.
package harness

import (
	"repro/internal/cm"
	"repro/internal/coco"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/cu"
	"repro/internal/elastic"
	"repro/internal/frequent"
	"repro/internal/hashpipe"
	"repro/internal/precision"
	"repro/internal/sketch"
	"repro/internal/spacesaving"
	"repro/internal/univmon"
)

// OursFactory builds ReliableSketch (with mice filter) for tolerance lambda.
func OursFactory(lambda, seed uint64) sketch.Factory {
	return sketch.Factory{Name: "Ours", New: func(mem int) sketch.Sketch {
		return core.NewFromMemory(mem, lambda, seed)
	}}
}

// RawFactory builds the filterless ReliableSketch variant.
func RawFactory(lambda, seed uint64) sketch.Factory {
	return sketch.Factory{Name: "Ours(Raw)", New: func(mem int) sketch.Sketch {
		return core.NewRaw(mem, lambda, seed)
	}}
}

// AccuracyFactories is the algorithm set of the outlier/AAE/ARE comparisons
// (Figures 4, 6, 8, 9): Ours plus the counter-based and heap-based
// competitors.
func AccuracyFactories(lambda, seed uint64) []sketch.Factory {
	return []sketch.Factory{
		OursFactory(lambda, seed),
		{Name: "CM_acc", New: func(m int) sketch.Sketch { return cm.NewAccurate(m, seed) }},
		{Name: "CU_acc", New: func(m int) sketch.Sketch { return cu.NewAccurate(m, seed) }},
		{Name: "CM_fast", New: func(m int) sketch.Sketch { return cm.NewFast(m, seed) }},
		{Name: "CU_fast", New: func(m int) sketch.Sketch { return cu.NewFast(m, seed) }},
		{Name: "Elastic", New: func(m int) sketch.Sketch { return elastic.NewBytes(m, seed) }},
		{Name: "SS", New: func(m int) sketch.Sketch { return spacesaving.NewBytes(m) }},
		{Name: "Coco", New: func(m int) sketch.Sketch { return coco.NewBytes(m, seed) }},
	}
}

// FrequentKeyFactories is the Figure 7 set: Ours against the
// pipeline-friendly heavy-hitter algorithms plus Space-Saving.
func FrequentKeyFactories(lambda, seed uint64) []sketch.Factory {
	return []sketch.Factory{
		OursFactory(lambda, seed),
		{Name: "PRECISION", New: func(m int) sketch.Sketch { return precision.NewBytes(m, seed) }},
		{Name: "Elastic", New: func(m int) sketch.Sketch { return elastic.NewBytes(m, seed) }},
		{Name: "HashPipe", New: func(m int) sketch.Sketch { return hashpipe.NewBytes(m, seed) }},
		{Name: "SS", New: func(m int) sketch.Sketch { return spacesaving.NewBytes(m) }},
	}
}

// ThroughputFactories is the Figure 10 set: all eleven variants.
func ThroughputFactories(lambda, seed uint64) []sketch.Factory {
	return []sketch.Factory{
		OursFactory(lambda, seed),
		RawFactory(lambda, seed),
		{Name: "CM_fast", New: func(m int) sketch.Sketch { return cm.NewFast(m, seed) }},
		{Name: "CU_fast", New: func(m int) sketch.Sketch { return cu.NewFast(m, seed) }},
		{Name: "CM_acc", New: func(m int) sketch.Sketch { return cm.NewAccurate(m, seed) }},
		{Name: "CU_acc", New: func(m int) sketch.Sketch { return cu.NewAccurate(m, seed) }},
		{Name: "SS", New: func(m int) sketch.Sketch { return spacesaving.NewBytes(m) }},
		{Name: "Elastic", New: func(m int) sketch.Sketch { return elastic.NewBytes(m, seed) }},
		{Name: "Coco", New: func(m int) sketch.Sketch { return coco.NewBytes(m, seed) }},
		{Name: "HashPipe", New: func(m int) sketch.Sketch { return hashpipe.NewBytes(m, seed) }},
		{Name: "PRECISION", New: func(m int) sketch.Sketch { return precision.NewBytes(m, seed) }},
	}
}

// AllFactories adds the remaining taxonomy entries (Count, Frequent) to the
// throughput set, for the registry-completeness tests and the demo tool.
func AllFactories(lambda, seed uint64) []sketch.Factory {
	return append(ThroughputFactories(lambda, seed),
		sketch.Factory{Name: "Count", New: func(m int) sketch.Sketch { return countsketch.NewBytes(m, seed) }},
		sketch.Factory{Name: "UnivMon", New: func(m int) sketch.Sketch { return univmon.NewBytes(m, seed) }},
		sketch.Factory{Name: "Frequent", New: func(m int) sketch.Sketch { return frequent.NewBytes(m) }},
	)
}
