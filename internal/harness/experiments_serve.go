package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/queryd"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// serveClients is the concurrent client count of the serve experiment —
// enough to exercise singleflight collapsing and lock contention without
// asking the host for more parallelism than a laptop has.
const serveClients = 8

// serveQueriesPerClient keeps the experiment's wall time modest while
// still amortizing connection setup; the hot set cycles many times over.
const serveQueriesPerClient = 500

// serveHotKeys is the repeated-query working set: clients cycle through
// the stream's heaviest keys, the read-mostly pattern a dashboard or
// alerting poller produces.
const serveHotKeys = 64

// serveBatchKeys is the /v2/query batch size of the batch rows — the
// acceptance-criteria shape: 256 keys, one request, per-key certified
// bounds.
const serveBatchKeys = 256

// ServeLoad measures the query-serving subsystem end to end: a queryd HTTP
// server over a standalone sketch fed the IP trace, hammered by concurrent
// clients repeating a hot-key query mix. Rows contrast the configured
// cache against a deliberately starved one-entry cache — the difference is
// what epoch-aware caching buys on a read-heavy serving path — and
// single-key /v1 serving against /v2 batches of 256 keys, where one HTTP
// round trip amortizes parsing, locking, and cache probes across the whole
// batch (key-QPS is the comparable unit: keys answered per second). Hit
// rate on the configured cache must exceed 0.9: after one cold pass every
// repeat is served without touching the sketch.
func ServeLoad(o Options) (*Table, error) {
	s := stream.IPTrace(o.Items, o.Seed)
	spec := sketch.Spec{MemoryBytes: o.memFor(1), Lambda: 25, Seed: o.Seed}
	hot := hotKeys(s, serveHotKeys)

	t := &Table{
		ID: "serve",
		Title: fmt.Sprintf("query serving under concurrent load, %d clients × %d queries, %d hot keys",
			serveClients, serveQueriesPerClient, serveHotKeys),
		Header: []string{"Mode", "Keys", "HitRate", "p50(µs)", "p99(µs)", "KeyQPS"},
	}
	for _, cfg := range []struct {
		label    string
		capacity int
	}{
		{"/v1 single-key, 4096 entries", 4096},
		{"/v1 single-key, 1 entry (starved)", 1},
	} {
		row, err := serveOnce(spec, s, hot, cfg.capacity)
		if err != nil {
			return nil, err
		}
		t.AddRow(append([]any{cfg.label}, row...)...)
	}
	batchRow, err := serveBatchOnce(spec, s, 4096)
	if err != nil {
		return nil, err
	}
	t.AddRow(append([]any{fmt.Sprintf("/v2 batch×%d, 4096 entries", serveBatchKeys)}, batchRow...)...)
	// Policy comparison: the same zipf-skewed trace against each eviction
	// policy at equal (pressured) capacity — the admission-controlled
	// policies must stop the zipf tail's one-hit wonders from displacing
	// the hot head, which shows up directly as hit rate.
	zipfTrace := stream.NewZipfSampler(servePolicyDistinct, servePolicySkew, o.Seed).
		Stream("zipf", serveClients*servePolicyQueries).Items
	for _, policy := range []string{"lru", "s3fifo", "tinylfu"} {
		row, err := servePolicyOnce(spec, s, policy, zipfTrace)
		if err != nil {
			return nil, err
		}
		t.AddRow(append([]any{fmt.Sprintf("/v1 zipf%.1f, %s, %d entries", servePolicySkew, policy, servePolicyCapacity)}, row...)...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("stream=%s items=%d; standalone Ours backend, cumulative mode, 1s TTL", s.Name, s.Len()),
		"hit rate counts singleflight-collapsed queries as hits (they never touched the sketch)",
		"KeyQPS is keys answered per second: /v1 answers 1 key per request, /v2 a whole batch",
		"/v2 latency percentiles are per batch request (256 keys each), not per key",
		fmt.Sprintf("policy rows share one zipf trace (skew %.1f, %d distinct keys) at %d-entry capacity",
			servePolicySkew, servePolicyDistinct, servePolicyCapacity))
	return t, nil
}

// Policy-comparison shape: a zipf-skewed key popularity over more distinct
// keys than the cache holds, so eviction quality is what decides the hit
// rate.
const (
	servePolicyDistinct = 4096
	servePolicySkew     = 1.1
	servePolicyCapacity = 512
	servePolicyQueries  = 2000
)

// servePolicyOnce replays a pre-drawn zipf trace of /v1/point queries
// against a fresh server running one eviction policy, each client walking
// its own disjoint slice of the trace. The TTL is long so the hit rate
// reflects eviction quality alone.
func servePolicyOnce(spec sketch.Spec, s *stream.Stream, policy string, trace []stream.Item) ([]any, error) {
	b, err := queryd.NewSketchBackend("Ours", spec, 0, 0, nil)
	if err != nil {
		return nil, err
	}
	b.Ingest(ingest.Batch{Items: s.Items})
	srv, err := queryd.New(b, queryd.Config{
		CacheCapacity: servePolicyCapacity,
		CachePolicy:   policy,
		CacheTTL:      time.Hour,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	perClient := len(trace) / serveClients
	var wg sync.WaitGroup
	latencies := make([][]time.Duration, serveClients)
	errs := make([]error, serveClients)
	start := time.Now()
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			lats := make([]time.Duration, 0, perClient)
			for _, it := range trace[c*perClient : (c+1)*perClient] {
				t0 := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/v1/point?key=%d", ts.URL, it.Key))
				if err != nil {
					errs[c] = err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("serve policy %s: status %d", policy, resp.StatusCode)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	stats := queryd.CacheStats{}
	if raw, err := ts.Client().Get(ts.URL + "/v1/status"); err == nil {
		var st queryd.StatusResponse
		if err := json.NewDecoder(raw.Body).Decode(&st); err == nil {
			stats = st.Cache
		}
		raw.Body.Close()
	}
	return []any{
		len(all),
		stats.HitRate,
		float64(percentile(all, 0.50).Microseconds()),
		float64(percentile(all, 0.99).Microseconds()),
		float64(len(all)) / elapsed.Seconds(),
	}, nil
}

// serveBatchOnce runs the batch load round: the same concurrent clients,
// each issuing /v2/query batches of serveBatchKeys keys drawn from the
// stream's heavy tail, against a fresh server. Reported like serveOnce,
// with keys answered in place of requests.
func serveBatchOnce(spec sketch.Spec, s *stream.Stream, cacheCapacity int) ([]any, error) {
	b, err := queryd.NewSketchBackend("Ours", spec, 0, 0, nil)
	if err != nil {
		return nil, err
	}
	b.Ingest(ingest.Batch{Items: s.Items})
	srv, err := queryd.New(b, queryd.Config{CacheCapacity: cacheCapacity, CacheTTL: time.Second})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// The batch working set: the 256 heaviest keys — a dashboard refresh
	// covering the /v1 rows' hot set plus its tail, rather than 256 copies
	// of one key.
	batchKeys := hotKeys(s, serveBatchKeys)
	body, err := json.Marshal(query.Request{Kind: query.Point, Keys: batchKeys})
	if err != nil {
		return nil, err
	}

	var wg sync.WaitGroup
	latencies := make([][]time.Duration, serveClients)
	errs := make([]error, serveClients)
	perClient := serveQueriesPerClient / 10 // batches carry 256× the keys; keep wall time modest
	start := time.Now()
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			lats := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v2/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs[c] = err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("serve batch: status %d", resp.StatusCode)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	stats := queryd.CacheStats{}
	if raw, err := ts.Client().Get(ts.URL + "/v1/status"); err == nil {
		var st queryd.StatusResponse
		if err := json.NewDecoder(raw.Body).Decode(&st); err == nil {
			stats = st.Cache
		}
		raw.Body.Close()
	}
	keysAnswered := len(all) * serveBatchKeys
	return []any{
		keysAnswered,
		stats.HitRate,
		float64(percentile(all, 0.50).Microseconds()),
		float64(percentile(all, 0.99).Microseconds()),
		float64(keysAnswered) / elapsed.Seconds(),
	}, nil
}

// serveOnce runs one load round against a fresh server and reports
// queries, hit rate, p50/p99 latency, and throughput.
func serveOnce(spec sketch.Spec, s *stream.Stream, hot []uint64, cacheCapacity int) ([]any, error) {
	b, err := queryd.NewSketchBackend("Ours", spec, 0, 0, nil)
	if err != nil {
		return nil, err
	}
	b.Ingest(ingest.Batch{Items: s.Items})
	srv, err := queryd.New(b, queryd.Config{CacheCapacity: cacheCapacity, CacheTTL: time.Second})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	var wg sync.WaitGroup
	latencies := make([][]time.Duration, serveClients)
	errs := make([]error, serveClients)
	start := time.Now()
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			lats := make([]time.Duration, 0, serveQueriesPerClient)
			for i := 0; i < serveQueriesPerClient; i++ {
				key := hot[(c+i)%len(hot)]
				t0 := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/v1/point?key=%d", ts.URL, key))
				if err != nil {
					errs[c] = err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("serve: status %d", resp.StatusCode)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	stats := queryd.CacheStats{}
	if raw, err := ts.Client().Get(ts.URL + "/v1/status"); err == nil {
		var st queryd.StatusResponse
		if err := json.NewDecoder(raw.Body).Decode(&st); err == nil {
			stats = st.Cache
		}
		raw.Body.Close()
	}
	return []any{
		len(all),
		stats.HitRate,
		float64(percentile(all, 0.50).Microseconds()),
		float64(percentile(all, 0.99).Microseconds()),
		float64(len(all)) / elapsed.Seconds(),
	}, nil
}

// hotKeys returns the n heaviest keys of the stream, the working set a
// monitoring poller would keep asking about.
func hotKeys(s *stream.Stream, n int) []uint64 {
	type kf struct {
		key uint64
		f   uint64
	}
	all := make([]kf, 0, s.Distinct())
	for key, f := range s.Truth() {
		all = append(all, kf{key, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].key < all[j].key
	})
	if len(all) > n {
		all = all[:n]
	}
	keys := make([]uint64, len(all))
	for i, e := range all {
		keys[i] = e.key
	}
	return keys
}

// percentile reads the p-quantile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
