package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/queryd"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// serveClients is the concurrent client count of the serve experiment —
// enough to exercise singleflight collapsing and lock contention without
// asking the host for more parallelism than a laptop has.
const serveClients = 8

// serveQueriesPerClient keeps the experiment's wall time modest while
// still amortizing connection setup; the hot set cycles many times over.
const serveQueriesPerClient = 500

// serveHotKeys is the repeated-query working set: clients cycle through
// the stream's heaviest keys, the read-mostly pattern a dashboard or
// alerting poller produces.
const serveHotKeys = 64

// ServeLoad measures the query-serving subsystem end to end: a queryd HTTP
// server over a standalone sketch fed the IP trace, hammered by concurrent
// clients repeating a hot-key query mix. Rows contrast the configured
// cache against a deliberately starved one-entry cache — the difference is
// what epoch-aware caching buys on a read-heavy serving path. Hit rate on
// the configured cache must exceed 0.9: after one cold pass every repeat
// is served without touching the sketch.
func ServeLoad(o Options) (*Table, error) {
	s := stream.IPTrace(o.Items, o.Seed)
	spec := sketch.Spec{MemoryBytes: o.memFor(1), Lambda: 25, Seed: o.Seed}
	hot := hotKeys(s, serveHotKeys)

	t := &Table{
		ID: "serve",
		Title: fmt.Sprintf("query serving under concurrent load, %d clients × %d queries, %d hot keys",
			serveClients, serveQueriesPerClient, serveHotKeys),
		Header: []string{"Cache", "Queries", "HitRate", "p50(µs)", "p99(µs)", "QPS"},
	}
	for _, cfg := range []struct {
		label    string
		capacity int
	}{
		{"4096 entries", 4096},
		{"1 entry (starved)", 1},
	} {
		row, err := serveOnce(spec, s, hot, cfg.capacity)
		if err != nil {
			return nil, err
		}
		t.AddRow(append([]any{cfg.label}, row...)...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("stream=%s items=%d; standalone Ours backend, cumulative mode, 1s TTL", s.Name, s.Len()),
		"hit rate counts singleflight-collapsed queries as hits (they never touched the sketch)")
	return t, nil
}

// serveOnce runs one load round against a fresh server and reports
// queries, hit rate, p50/p99 latency, and throughput.
func serveOnce(spec sketch.Spec, s *stream.Stream, hot []uint64, cacheCapacity int) ([]any, error) {
	b, err := queryd.NewSketchBackend("Ours", spec, 0, 0, nil)
	if err != nil {
		return nil, err
	}
	b.Ingest(s.Items)
	srv, err := queryd.New(b, queryd.Config{CacheCapacity: cacheCapacity, CacheTTL: time.Second})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	var wg sync.WaitGroup
	latencies := make([][]time.Duration, serveClients)
	errs := make([]error, serveClients)
	start := time.Now()
	for c := 0; c < serveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := ts.Client()
			lats := make([]time.Duration, 0, serveQueriesPerClient)
			for i := 0; i < serveQueriesPerClient; i++ {
				key := hot[(c+i)%len(hot)]
				t0 := time.Now()
				resp, err := client.Get(fmt.Sprintf("%s/v1/point?key=%d", ts.URL, key))
				if err != nil {
					errs[c] = err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs[c] = fmt.Errorf("serve: status %d", resp.StatusCode)
					return
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[c] = lats
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	stats := queryd.CacheStats{}
	if raw, err := ts.Client().Get(ts.URL + "/v1/status"); err == nil {
		var st queryd.StatusResponse
		if err := json.NewDecoder(raw.Body).Decode(&st); err == nil {
			stats = st.Cache
		}
		raw.Body.Close()
	}
	return []any{
		len(all),
		stats.HitRate,
		float64(percentile(all, 0.50).Microseconds()),
		float64(percentile(all, 0.99).Microseconds()),
		float64(len(all)) / elapsed.Seconds(),
	}, nil
}

// hotKeys returns the n heaviest keys of the stream, the working set a
// monitoring poller would keep asking about.
func hotKeys(s *stream.Stream, n int) []uint64 {
	type kf struct {
		key uint64
		f   uint64
	}
	all := make([]kf, 0, s.Distinct())
	for key, f := range s.Truth() {
		all = append(all, kf{key, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].key < all[j].key
	})
	if len(all) > n {
		all = all[:n]
	}
	keys := make([]uint64, len(all))
	for i, e := range all {
		keys[i] = e.key
	}
	return keys
}

// percentile reads the p-quantile from sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
