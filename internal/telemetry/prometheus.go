package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// ContentType is the Prometheus text exposition format version this
// package writes. The HTTP handler that serves it lives in the telhttp
// subpackage, so instrumented subsystems never link net/http.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus writes every registered family in text exposition
// format, families sorted by name, each under one # HELP/# TYPE header.
// Samples are read with independent atomic loads: each value is exact,
// but values incremented together by a concurrent writer may skew relative
// to one another within a scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case s.gauge != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.gauge.Value())
			case s.gaugeFn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, formatValue(s.gaugeFn()))
			case s.hist != nil:
				writeHistogram(bw, f.name, s.labels, s.hist.Snapshot())
			case s.collect != nil:
				s.collect(func(labels Labels, v float64) {
					fmt.Fprintf(bw, "%s%s %s\n", f.name, labels.render(), formatValue(v))
				})
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative _bucket samples
// with le labels, then _sum and _count.
func writeHistogram(w io.Writer, name, labels string, s HistogramSnapshot) {
	// The le label composes with the series' own labels: `{a="b",le="x"}`.
	open, closing := "{", "}"
	if labels != "" {
		open = labels[:len(labels)-1] + ","
	}
	cum := uint64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket%sle=%q%s %d\n", name, open, strconv.FormatFloat(b, 'g', -1, 64), closing, cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"%s %d\n", name, open, closing, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatValue(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
}
