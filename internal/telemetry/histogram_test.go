package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketPlacement pins le semantics: a value lands in the
// first bucket whose bound is ≥ the value, values above every bound land
// in the +Inf bucket, and exact-bound values are inclusive.
func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, // le="1" is inclusive
		{1.001, 1}, {10, 1},
		{10.5, 2}, {100, 2},
		{100.5, 3}, {1e9, 3}, // +Inf bucket
	}
	for _, tc := range cases {
		h.Observe(tc.v)
	}
	s := h.Snapshot()
	want := []uint64{3, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: %d observations, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", s.Count, len(cases))
	}
	var wantSum float64
	for _, tc := range cases {
		wantSum += tc.v
	}
	if s.Sum != wantSum {
		t.Errorf("Sum = %g, want %g", s.Sum, wantSum)
	}
}

// TestHistogramQuantileBoundsTruth draws random values, records them, and
// checks that for every probed q the TRUE quantile of the drawn sample
// lies inside the [lo, hi] bracket the snapshot reports.
func TestHistogramQuantileBoundsTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram(LatencyBuckets())
	vals := make([]float64, 10000)
	for i := range vals {
		// Log-uniform over ~7 decades, covering every bucket including +Inf.
		vals[i] = math.Pow(10, -6.5+7.5*rng.Float64())
		h.Observe(vals[i])
	}
	sort.Float64s(vals)
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(math.Ceil(q * float64(len(vals))))
		if rank < 1 {
			rank = 1
		}
		truth := vals[rank-1]
		lo, hi := s.Quantile(q)
		if truth < lo || truth > hi {
			t.Errorf("q=%g: true quantile %g outside reported bracket [%g, %g]", q, truth, lo, hi)
		}
	}
}

// TestHistogramQuantileEmpty pins the zero-observation answer.
func TestHistogramQuantileEmpty(t *testing.T) {
	s := NewHistogram([]float64{1}).Snapshot()
	if lo, hi := s.Quantile(0.5); lo != 0 || hi != 0 {
		t.Errorf("empty histogram quantile = [%g, %g], want [0, 0]", lo, hi)
	}
}

// TestHistogramConcurrentObserveLosesNothing hammers one histogram from 8
// goroutines (run under -race in CI) and checks no observation is lost:
// the bucket counts, total count, and sum all reflect every Observe.
func TestHistogramConcurrentObserveLosesNothing(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20000
	)
	h := NewHistogram([]float64{1, 2, 4, 8})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i % 10)) // spreads over every bucket incl. +Inf
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	const total = goroutines * perG
	if s.Count != total {
		t.Errorf("Count = %d, want %d", s.Count, total)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != total {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, total)
	}
	// Each goroutine observes 0..9 repeated perG/10 times: sum = 45 per lap.
	wantSum := float64(goroutines) * float64(perG) / 10 * 45
	if s.Sum != wantSum {
		t.Errorf("Sum = %g, want %g (CAS loop lost an add)", s.Sum, wantSum)
	}
	// Per-bucket exactness: values 0,1 → le=1; 2 → le=2; 3,4 → le=4;
	// 5..8 → le=8; 9 → +Inf.
	lap := uint64(perG / 10 * goroutines)
	want := []uint64{2 * lap, lap, 2 * lap, 4 * lap, lap}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: %d, want %d", i, s.Counts[i], w)
		}
	}
}

// TestHistogramPanics pins the construction contract.
func TestHistogramPanics(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":    {},
		"unsorted": {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%s) did not panic", name)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestHistogramNilNoOp pins the nil-receiver contract: callers may
// instrument unconditionally and attach a histogram only when metrics are
// enabled (the WAL's Open-stays-allocation-free guarantee rests on this).
func TestHistogramNilNoOp(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
}
