package telhttp

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestHandler(t *testing.T) {
	r := telemetry.NewRegistry()
	r.Counter("x_total", "", nil).Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "x_total 1") {
		t.Errorf("body missing sample: %s", body)
	}
}

func TestPprofHandler(t *testing.T) {
	srv := httptest.NewServer(PprofHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index status = %d", resp.StatusCode)
	}
}
