// Package telhttp is the HTTP face of the telemetry plane: a /metrics
// scrape handler over a telemetry.Registry and an opt-in pprof mux.
//
// It is a separate package so that instrumented subsystems (wal, ingest,
// epoch, netsum) depend only on the atomic core and never link net/http —
// linking the HTTP stack adds background runtime allocations (netip
// interning maintenance) that show up in, and fail, the allocs/op perf
// gates on those packages' benchmarks. Only code already serving HTTP
// (queryd, the CLIs) imports this package.
package telhttp

import (
	"net/http"
	"net/http/pprof"

	"repro/internal/telemetry"
)

// Handler serves reg as a GET /metrics scrape target in Prometheus text
// exposition format (telemetry.ContentType).
func Handler(reg *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", telemetry.ContentType)
		_ = reg.WritePrometheus(w)
	})
}

// PprofHandler returns a mux serving the standard net/http/pprof surface
// under /debug/pprof/ — on a dedicated mux, not http.DefaultServeMux, so
// profiling never leaks onto the query-serving listener. Daemons mount it
// behind an opt-in -pprof-addr flag; the endpoints expose internals
// (goroutine stacks, heap contents) and belong on a loopback or otherwise
// access-controlled address.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
