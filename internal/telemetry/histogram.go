package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram with exact lock-free recording:
// one atomic increment for the bucket, one for the total count, and a CAS
// loop for the running sum. Observe never allocates and never blocks, so
// it is safe on paths under the repository's 0 allocs/op contract.
//
// Buckets follow Prometheus `le` semantics: bucket i counts observations
// v ≤ bounds[i]; the implicit last bucket counts everything else (+Inf).
// Counts are stored per bucket (not cumulative) and cumulated at
// exposition.
//
// Reads take a Snapshot. Because recording is a pair of independent atomic
// adds, a snapshot taken mid-observation can see the bucket increment
// before the total (or vice versa) — each field is exact for some recent
// instant, but fields may skew by in-flight observations. With writers
// quiesced a snapshot is exact.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram builds a histogram over the given strictly increasing
// bucket upper bounds. It panics on an empty or unsorted bound set —
// histogram geometry is startup configuration, like a sketch Spec.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")

		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. Lock-free, allocation-free. A nil receiver
// is a no-op, so a caller can instrument a path unconditionally and
// attach the histogram only once metrics are wired up (e.g. the WAL keeps
// its latency histograms nil until RegisterMetrics, so opening a log
// stays allocation-free).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bound sets are small (≤ ~24) and the common observations
	// (sub-millisecond latencies, small batches) land in the first few
	// buckets, where a scan beats a branchy binary search.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a latency in seconds, the exposition unit every
// *_duration_seconds family uses. Like Observe, a nil receiver is a no-op.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] holds observations
	// ≤ Bounds[i] (exclusive of lower buckets). Counts has one extra
	// trailing element for observations above every bound.
	Bounds []float64
	Counts []uint64
	// Count and Sum are the total observation count and value sum.
	Count uint64
	Sum   float64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile brackets the q-quantile (0 < q ≤ 1) of the recorded
// distribution: the true quantile of the observed values lies in
// [lo, hi], the bounds of the bucket holding the q·Count-th observation.
// hi is +Inf when that observation fell above every bound, and both are 0
// when nothing has been recorded. The bracket is exact — a fixed-bucket
// histogram cannot place a quantile more precisely than its bucket, and
// it never misplaces it outside one.
func (s HistogramSnapshot) Quantile(q float64) (lo, hi float64) {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	// The k-th smallest observation (1-based), clamped to the observation
	// count so q=1 is the maximum.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				// Observations are assumed non-negative (latencies, sizes) —
				// the first bucket's bracket starts at zero.
				lo = 0
			} else {
				lo = s.Bounds[i-1]
			}
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			} else {
				hi = math.Inf(1)
			}
			return lo, hi
		}
	}
	return 0, 0 // unreachable: cum == total ≥ rank by the loop's end
}

// LatencyBuckets is the default latency bucket ladder: a 1-2.5-5 decade
// progression from 1µs to 10s (22 buckets), wide enough for both
// sub-microsecond sketch folds and multi-second fsync stalls.
func LatencyBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
		1, 2.5, 5, 10,
	}
}

// SizeBuckets is the default count-distribution ladder (batch sizes,
// cohort sizes): powers of two from 1 to 4096, matching the query plane's
// MaxBatchKeys ceiling.
func SizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
}
