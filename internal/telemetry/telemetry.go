// Package telemetry is the serving system's metrics plane: a
// dependency-free registry of atomic counters, gauges, and fixed-bucket
// latency histograms, exposed in Prometheus text format (WritePrometheus,
// Handler) and readable programmatically (snapshots) so JSON status
// surfaces and the time-series exposition derive from ONE set of
// instruments instead of per-subsystem ad-hoc Stats structs.
//
// The design contract is the same one the sketches live under: recording
// must never cost the hot path an allocation or a lock.
//
//   - Counter and Gauge are single atomic words whose zero value is usable,
//     so subsystems embed them directly in their hot structs (the ingest
//     pipeline's accepted/dropped counters, the WAL's fsync counter) and
//     register the SAME instrument for exposition — no double counting, no
//     sampling thread.
//   - Histogram records into fixed buckets with one atomic add per bucket
//     and a CAS loop for the sum: exact, lock-free, allocation-free. Reads
//     take a snapshot; recording never waits for a scrape.
//   - Exposition walks the registry under its mutex, but instruments are
//     read with independent atomic loads — a scrape observes each counter
//     exactly, though counters incremented together may skew relative to
//     one another mid-flight (the standard Prometheus contract).
//
// Registration is startup-time configuration, like sketch registration:
// duplicate (name, labels) pairs and type conflicts panic.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use, so it embeds directly in hot-path structs.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; deltas are unsigned by construction.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, generation). The
// zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Type is a metric family's Prometheus type.
type Type string

// The exposition type strings, as they appear on # TYPE lines.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// Labels name one series within a family, e.g. {"endpoint": "/v1/point"}.
// Keys are rendered in sorted order, so equal label sets are equal strings.
type Labels map[string]string

// render produces the canonical `{k="v",...}` form ("" for no labels).
// Label values are escaped per the text format (backslash, quote, newline).
func (ls Labels) render() string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(ls[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Emit publishes one sample from a CollectFunc collector.
type Emit func(labels Labels, value float64)

// series is one registered instrument (or collector) within a family.
type series struct {
	labels  string // rendered label set; "" for collectors that emit their own
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
	collect func(Emit)
}

// family groups every series sharing one metric name under a single
// HELP/TYPE header.
type family struct {
	name   string
	help   string
	typ    Type
	series []*series
}

// Registry holds metric families and exposes them. Safe for concurrent
// registration and exposition; instruments themselves are atomic and never
// touch the registry lock when recording.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order; exposition sorts a copy
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register attaches s to the named family, creating it on first use.
// Conflicting types or duplicate (name, labels) pairs are programming
// errors and panic, like registering the same sketch variant twice.
func (r *Registry) register(name, help string, typ Type, s *series) {
	if name == "" {
		panic("telemetry: metric name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.names = append(r.names, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	for _, have := range f.series {
		if have.collect == nil && s.collect == nil && have.labels == s.labels {
			panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// RegisterCounter exposes an existing counter (typically a struct field on
// a hot-path type) under name and labels.
func (r *Registry) RegisterCounter(name, help string, labels Labels, c *Counter) {
	r.register(name, help, TypeCounter, &series{labels: labels.render(), counter: c})
}

// Counter allocates, registers, and returns a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.RegisterCounter(name, help, labels, c)
	return c
}

// RegisterGauge exposes an existing gauge under name and labels.
func (r *Registry) RegisterGauge(name, help string, labels Labels, g *Gauge) {
	r.register(name, help, TypeGauge, &series{labels: labels.render(), gauge: g})
}

// Gauge allocates, registers, and returns a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.RegisterGauge(name, help, labels, g)
	return g
}

// GaugeFunc registers a gauge computed at scrape time — the
// snapshot-on-read path for values a subsystem already maintains (queue
// depth, segment counts, generations). f must be safe to call from any
// goroutine and should not block on the paths it observes.
func (r *Registry) GaugeFunc(name, help string, labels Labels, f func() float64) {
	r.register(name, help, TypeGauge, &series{labels: labels.render(), gaugeFn: f})
}

// CounterFunc registers a counter sampled at scrape time from an existing
// monotonic source (a seal count, an atomic another struct owns).
func (r *Registry) CounterFunc(name, help string, labels Labels, f func() float64) {
	r.register(name, help, TypeCounter, &series{labels: labels.render(), gaugeFn: f})
}

// RegisterHistogram exposes an existing histogram under name and labels.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	if h == nil {
		panic("telemetry: RegisterHistogram given a nil histogram")
	}
	r.register(name, help, TypeHistogram, &series{labels: labels.render(), hist: h})
}

// Histogram allocates a histogram with the given bucket bounds, registers
// it, and returns it.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.RegisterHistogram(name, help, labels, h)
	return h
}

// CollectFunc registers a scrape-time collector that may emit any number
// of samples under one family — the path for dynamic series like per-agent
// counters, where the label set is not known at startup. typ must be
// TypeCounter or TypeGauge.
func (r *Registry) CollectFunc(name, help string, typ Type, collect func(Emit)) {
	if typ != TypeCounter && typ != TypeGauge {
		panic(fmt.Sprintf("telemetry: CollectFunc supports counter and gauge families, not %s", typ))
	}
	r.register(name, help, typ, &series{collect: collect})
}

// sortedFamilies snapshots the family list in name order for deterministic
// exposition.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	return fams
}

// formatValue renders a sample value the way the text format expects:
// integral values without an exponent, everything else in Go's shortest
// round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
