package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter // zero value usable
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("Gauge = %d, want 4", g.Value())
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	// Register out of name order; exposition must sort.
	g := r.Gauge("zz_depth", "Queue depth.", nil)
	g.Set(3)
	c := r.Counter("aa_total", "Things.", Labels{"kind": "x"})
	c.Add(2)
	r.Counter("aa_total", "Things.", Labels{"kind": "y"}).Inc()
	r.GaugeFunc("mm_ratio", "A ratio.", nil, func() float64 { return 0.25 })
	r.CounterFunc("nn_total", "Sampled.", nil, func() float64 { return 9 })
	r.CollectFunc("pp_total", "Per-agent.", TypeCounter, func(emit Emit) {
		emit(Labels{"agent": "1"}, 11)
		emit(Labels{"agent": "2"}, 22)
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP aa_total Things.`,
		`# TYPE aa_total counter`,
		`aa_total{kind="x"} 2`,
		`aa_total{kind="y"} 1`,
		`# HELP mm_ratio A ratio.`,
		`# TYPE mm_ratio gauge`,
		`mm_ratio 0.25`,
		`# HELP nn_total Sampled.`,
		`# TYPE nn_total counter`,
		`nn_total 9`,
		`# HELP pp_total Per-agent.`,
		`# TYPE pp_total counter`,
		`pp_total{agent="1"} 11`,
		`pp_total{agent="2"} 22`,
		`# HELP zz_depth Queue depth.`,
		`# TYPE zz_depth gauge`,
		`zz_depth 3`,
	}, "\n") + "\n"
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// A second scrape must be byte-identical (deterministic ordering).
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != want {
		t.Error("second scrape differs from first")
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "Request latency.", Labels{"endpoint": "/v1/point"}, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP req_seconds Request latency.`,
		`# TYPE req_seconds histogram`,
		`req_seconds_bucket{endpoint="/v1/point",le="0.1"} 1`,
		`req_seconds_bucket{endpoint="/v1/point",le="1"} 3`,
		`req_seconds_bucket{endpoint="/v1/point",le="+Inf"} 4`,
		`req_seconds_sum{endpoint="/v1/point"} 3.05`,
		`req_seconds_count{endpoint="/v1/point"} 4`,
	}, "\n") + "\n"
	if got := b.String(); got != want {
		t.Errorf("histogram exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusUnlabeledHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fold_seconds", "", nil, []float64{1})
	h.ObserveDuration(500 * time.Millisecond)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# TYPE fold_seconds histogram`,
		`fold_seconds_bucket{le="1"} 1`,
		`fold_seconds_bucket{le="+Inf"} 1`,
		`fold_seconds_sum 0.5`,
		`fold_seconds_count 1`,
	}, "\n") + "\n"
	if got := b.String(); got != want {
		t.Errorf("unlabeled histogram mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	ls := Labels{"path": `C:\tmp`, "q": `say "hi"`, "nl": "a\nb"}
	got := ls.render()
	want := `{nl="a\nb",path="C:\\tmp",q="say \"hi\""}`
	if got != want {
		t.Errorf("render = %s, want %s", got, want)
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("a_total", "", nil)
	expectPanic("duplicate series", func() { r.Counter("a_total", "", nil) })
	expectPanic("type conflict", func() { r.Gauge("a_total", "", nil) })
	expectPanic("empty name", func() { r.Counter("", "", nil) })
	expectPanic("histogram collector", func() { r.CollectFunc("h", "", TypeHistogram, func(Emit) {}) })
	expectPanic("nil histogram", func() { r.RegisterHistogram("h2", "", nil, nil) })

	// Distinct labels under one family are fine; so are multiple collectors.
	r.Counter("a_total", "", Labels{"k": "v"})
	r.CollectFunc("b_total", "", TypeCounter, func(Emit) {})
	r.CollectFunc("b_total", "", TypeCounter, func(Emit) {})
}

func TestFormatValue(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0"}, {3, "3"}, {-2, "-2"}, {0.25, "0.25"}, {1e18, "1e+18"},
	} {
		if got := formatValue(tc.v); got != tc.want {
			t.Errorf("formatValue(%g) = %s, want %s", tc.v, got, tc.want)
		}
	}
}
