package epoch

import (
	"errors"
	"testing"
	"time"

	"repro/internal/query"
)

// TestExecuteWindowBatchMatchesSingle pins the batch surface to the per-key
// one: Execute's answers must equal QueryWindowWithError for every key,
// under the same generation.
func TestExecuteWindowBatchMatchesSingle(t *testing.T) {
	r, clk := newRing(t, 4)
	for e := 0; e < 3; e++ {
		for k := uint64(1); k <= 50; k++ {
			r.Insert(k, k*uint64(e+1))
		}
		clk.Advance(10 * time.Second)
	}
	r.Insert(0, 0) // seal the last epoch

	keys := make([]uint64, 0, 60)
	for k := uint64(0); k < 60; k++ {
		keys = append(keys, k%55) // includes absent keys and duplicates
	}
	ans, err := r.Execute(query.Request{Kind: query.Window, Keys: keys, Window: 2})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if !ans.Certified {
		t.Fatal("Ours-backed ring answer not certified")
	}
	if ans.Coverage != 2 {
		t.Fatalf("coverage = %d, want 2", ans.Coverage)
	}
	if ans.Generation != r.Generation() {
		t.Fatalf("generation = %d, ring reports %d", ans.Generation, r.Generation())
	}
	if len(ans.PerKey) != len(keys) {
		t.Fatalf("PerKey length %d, want %d", len(ans.PerKey), len(keys))
	}
	for i, k := range keys {
		est, mpe, ok := r.QueryWindowWithError(k, 2)
		if !ok {
			t.Fatalf("single-key query for %d not certified", k)
		}
		pk := ans.PerKey[i]
		if pk.Key != k || pk.Est != est || pk.Upper != est {
			t.Fatalf("key %d: batch %+v != single est %d", k, pk, est)
		}
		if lower := pk.Lower; mpe <= est && lower != est-mpe {
			t.Fatalf("key %d: batch lower %d != single %d", k, lower, est-mpe)
		}
	}
}

// TestExecutePointCoversRetention pins Point semantics: the ring's whole
// retained history, with Coverage reporting the sealed count.
func TestExecutePointCoversRetention(t *testing.T) {
	r, clk := newRing(t, 4)
	for e := 0; e < 2; e++ {
		r.Insert(7, 10)
		clk.Advance(10 * time.Second)
	}
	r.Insert(0, 0)
	ans, err := r.Execute(query.Request{Kind: query.Point, Keys: []uint64{7}})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if ans.Coverage != 2 {
		t.Errorf("coverage = %d, want 2 sealed windows", ans.Coverage)
	}
	if got := ans.PerKey[0]; got.Est < 20 || got.Lower > 20 {
		t.Errorf("interval [%d,%d] misses exact 20", got.Lower, got.Upper)
	}
}

// TestExecuteValidates pins the named-error surface.
func TestExecuteValidates(t *testing.T) {
	r, _ := newRing(t, 4)
	cases := []struct {
		req  query.Request
		want error
	}{
		{query.Request{Kind: query.Window, Window: 2}, query.ErrNoKeys},
		{query.Request{Kind: query.Window, Keys: []uint64{1}}, query.ErrBadWindow},
		{query.Request{Kind: query.Point}, query.ErrNoKeys},
		{query.Request{Kind: query.TopK}, query.ErrBadK},
		{query.Request{Keys: []uint64{1}}, query.ErrBadKind},
		{query.Request{Kind: query.Window, Keys: []uint64{1}, Window: 1, Agent: 3}, ErrNoAgentScope},
		{query.Request{Kind: query.Point, Keys: make([]uint64, query.MaxBatchKeys+1)}, query.ErrTooManyKeys},
	}
	for _, c := range cases {
		if _, err := r.Execute(c.req); !errors.Is(err, c.want) {
			t.Errorf("Execute(%+v) err = %v, want %v", c.req, err, c.want)
		}
	}
}

// TestExecuteBeforeFirstSeal: an empty ring answers zeros with coverage 0
// rather than erroring — an empty window is not a failure.
func TestExecuteBeforeFirstSeal(t *testing.T) {
	r, _ := newRing(t, 4)
	r.Insert(5, 100) // active only, nothing sealed
	ans, err := r.Execute(query.Request{Kind: query.Window, Keys: []uint64{5}, Window: 3})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if ans.Coverage != 0 || ans.PerKey[0].Est != 0 {
		t.Errorf("pre-seal answer = %+v, want zero coverage and estimate", ans)
	}
	top, err := r.Execute(query.Request{Kind: query.TopK, K: 5})
	if err != nil {
		t.Fatalf("TopK pre-seal: %v", err)
	}
	if len(top.PerKey) != 0 {
		t.Errorf("pre-seal top-k = %+v, want empty", top.PerKey)
	}
}

// TestExecuteTopKFromMergedView: top-k answers come from the merged sliding
// view with certified intervals, heaviest first.
func TestExecuteTopKFromMergedView(t *testing.T) {
	r, clk := newRing(t, 4)
	for e := 0; e < 3; e++ {
		for i := 0; i < 40; i++ {
			r.Insert(1, 5)
			r.Insert(2, 3)
			r.Insert(3, 1)
		}
		clk.Advance(10 * time.Second)
	}
	r.Insert(0, 0)
	ans, err := r.Execute(query.Request{Kind: query.TopK, K: 2})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(ans.PerKey) != 2 || ans.PerKey[0].Key != 1 || ans.PerKey[1].Key != 2 {
		t.Fatalf("top-2 = %+v, want keys 1,2", ans.PerKey)
	}
	if !ans.Certified {
		t.Error("top-k from Ours view should certify")
	}
	if ans.PerKey[0].Est < ans.PerKey[1].Est {
		t.Error("top-k not heaviest-first")
	}
}

// TestWindowCoverageClampsToSealed is the coverage-honesty edge case: a
// request for more epochs than the ring retains (or has sealed) must report
// the span actually answered, not the requested n.
func TestWindowCoverageClampsToSealed(t *testing.T) {
	r, clk := newRing(t, 4)
	// Only 2 epochs sealed in a capacity-4 ring.
	for e := 0; e < 2; e++ {
		r.Insert(9, 10)
		clk.Advance(10 * time.Second)
	}
	r.Insert(0, 0)
	for _, n := range []int{2, 3, 4, 100, query.MaxWindow} {
		ans, err := r.Execute(query.Request{Kind: query.Window, Keys: []uint64{9}, Window: n})
		if err != nil {
			t.Fatalf("Execute(n=%d): %v", n, err)
		}
		if ans.Coverage != 2 {
			t.Errorf("n=%d: coverage = %d, want 2 (the sealed history)", n, ans.Coverage)
		}
		if ans.PerKey[0].Est < 20 || ans.PerKey[0].Lower > 20 {
			t.Errorf("n=%d: interval [%d,%d] misses exact 20",
				n, ans.PerKey[0].Lower, ans.PerKey[0].Upper)
		}
	}
	// Beyond capacity once the ring is full: 6 sealed total, 4 retained.
	for e := 0; e < 4; e++ {
		r.Insert(9, 10)
		clk.Advance(10 * time.Second)
	}
	r.Insert(0, 0)
	ans, err := r.Execute(query.Request{Kind: query.Window, Keys: []uint64{9}, Window: 1000})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if ans.Coverage != 4 {
		t.Errorf("coverage = %d, want capacity 4", ans.Coverage)
	}
}

// TestQueryRangeBeyondCapacityAndIdleGaps is the satellite edge-case pin:
// QueryRange with n exceeding capacity clamps to the retained history, and
// idle gaps seal empty windows that genuinely slide traffic out of range
// while coverage stays honest about what was answered.
func TestQueryRangeBeyondCapacityAndIdleGaps(t *testing.T) {
	r, clk := newRing(t, 3)
	r.Insert(4, 50)
	clk.Advance(10 * time.Second)
	r.Insert(0, 0) // seal epoch with key 4

	// Range far beyond the single sealed window clamps.
	if got := r.QueryRange(4, 0, 99); got < 50 {
		t.Errorf("clamped range estimate %d < exact 50", got)
	}
	cert, covered := r.QueryWindowBatch([]uint64{4}, 99, make([]uint64, 1), make([]uint64, 1))
	if !cert || covered != 1 {
		t.Errorf("batch over 99 epochs: certified=%v covered=%d, want true,1", cert, covered)
	}

	// Idle gap longer than the whole retention: the sealed set becomes all
	// empty windows and the old traffic slides out entirely.
	clk.Advance(10 * 10 * time.Second)
	r.Insert(0, 0)
	ans, err := r.Execute(query.Request{Kind: query.Window, Keys: []uint64{4}, Window: 3})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if ans.PerKey[0].Est != 0 {
		t.Errorf("after idle gap, estimate = %d, want 0 (window slid out)", ans.PerKey[0].Est)
	}
	if ans.Coverage != 3 {
		t.Errorf("after idle gap, coverage = %d, want 3 (empty epochs still sealed)", ans.Coverage)
	}

	// Partial idle gap: 2 idle epochs after one loaded epoch in a capacity-3
	// ring — the loaded epoch is still retained at index 2.
	r2, clk2 := newRing(t, 3)
	r2.Insert(8, 30)
	clk2.Advance(3 * 10 * time.Second) // seals loaded epoch + 2 empty ones
	r2.Insert(0, 0)
	if got := r2.QueryRange(8, 2, 2); got < 30 {
		t.Errorf("oldest retained epoch estimate %d < exact 30", got)
	}
	if got := r2.QueryRange(8, 0, 1); got != 0 {
		t.Errorf("idle epochs estimate %d, want 0", got)
	}
	_, covered = r2.QueryWindowBatch([]uint64{8}, 2, make([]uint64, 1), make([]uint64, 1))
	if covered != 2 {
		t.Errorf("covered = %d, want 2 (only the requested idle span)", covered)
	}
}
