package epoch

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

// fakeClock is a manually advanced clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func oursFactory() sketch.Factory {
	return sketch.Factory{Name: "Ours", New: func(mem int) sketch.Sketch {
		return core.NewFromMemory(mem, 25, 7)
	}}
}

func registryFactory(name string) sketch.Factory {
	e, ok := sketch.Lookup(name)
	if !ok {
		panic("unknown variant " + name)
	}
	return e.Factory(sketch.Spec{Lambda: 25, Seed: 7})
}

func newRing(t *testing.T, capacity int) (*Ring, *fakeClock) {
	t.Helper()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRing(oursFactory(), 64<<10, 10*time.Second, capacity, clk.Now)
	return r, clk
}

func TestSealedEmptyBeforeFirstRotation(t *testing.T) {
	r, _ := newRing(t, 4)
	r.Insert(1, 100)
	if got := r.Query(1); got != 0 {
		t.Errorf("sealed query before rotation = %d, want 0", got)
	}
	if got := r.QueryLive(1); got == 0 {
		t.Error("live query should see the active window")
	}
	if _, _, ok := r.QuerySealedWithError(1); ok {
		t.Error("certified sealed query should fail before first rotation")
	}
	if _, _, ok := r.QueryWindowWithError(1, 4); ok {
		t.Error("certified window query should fail before first rotation")
	}
	if got := r.Sealed(); got != 0 {
		t.Errorf("Sealed()=%d before first rotation", got)
	}
}

func TestRotationSealsWindow(t *testing.T) {
	r, clk := newRing(t, 4)
	r.Insert(1, 100)
	clk.Advance(11 * time.Second)
	// First touch after the epoch boundary rotates.
	r.Insert(2, 5)
	if got := r.Query(1); got < 100 {
		t.Errorf("sealed window lost key 1: %d", got)
	}
	if got := r.Query(2); got != 0 {
		t.Errorf("key 2 belongs to the live window, sealed reports %d", got)
	}
	if got := r.QueryLive(2); got < 5 {
		t.Errorf("live window lost key 2: %d", got)
	}
	if r.Rotations() != 1 {
		t.Errorf("rotations=%d want 1", r.Rotations())
	}
}

func TestCertifiedSealedQuery(t *testing.T) {
	r, clk := newRing(t, 4)
	for i := 0; i < 500; i++ {
		r.Insert(9, 1)
	}
	clk.Advance(10 * time.Second)
	r.Insert(1, 1) // trigger rotation
	est, mpe, ok := r.QuerySealedWithError(9)
	if !ok {
		t.Fatal("certified query unavailable after rotation")
	}
	if est < 500 || est-mpe > 500 {
		t.Errorf("truth 500 outside certified [%d, %d]", est-mpe, est)
	}
}

// TestWindowQueryEqualsSingleSketch is the acceptance property: a sliding
// window over n sealed epochs must answer exactly like one sketch fed the
// same n epochs' traffic. CM is linear, so its merged view is bit-exact.
func TestWindowQueryEqualsSingleSketch(t *testing.T) {
	const epochs, perEpoch = 5, 8_000
	clk := &fakeClock{now: time.Unix(0, 0)}
	f := registryFactory("CM_fast")
	r := NewRing(f, 64<<10, time.Second, epochs+1, clk.Now)

	s := stream.IPTrace(epochs*perEpoch, 3)
	var slices [][]stream.Item
	for e := 0; e < epochs; e++ {
		slices = append(slices, s.Items[e*perEpoch:(e+1)*perEpoch])
	}
	for _, slice := range slices {
		r.InsertBatch(slice)
		clk.Advance(time.Second)
	}
	r.Insert(0xfeed, 1) // seal the last data epoch

	for _, n := range []int{1, 2, 3, epochs} {
		// One sketch fed exactly the traffic of the n newest sealed epochs.
		direct := f.New(64 << 10)
		for _, slice := range slices[epochs-n:] {
			sketch.InsertBatch(direct, slice)
		}
		mismatches := 0
		for key := range s.Truth() {
			if r.QueryWindow(key, n) != direct.Query(key) {
				mismatches++
			}
		}
		if mismatches > 0 {
			t.Errorf("window n=%d: %d keys differ from the single-sketch answer", n, mismatches)
		}
	}
}

// TestWindowQueryCertified checks the merged certified interval over a
// multi-epoch window contains the window's true sums for ReliableSketch.
func TestWindowQueryCertified(t *testing.T) {
	const epochs, perEpoch = 4, 10_000
	clk := &fakeClock{now: time.Unix(0, 0)}
	r := NewRing(oursFactory(), 128<<10, time.Second, epochs+1, clk.Now)

	s := stream.IPTrace(epochs*perEpoch, 5)
	for e := 0; e < epochs; e++ {
		r.InsertBatch(s.Items[e*perEpoch : (e+1)*perEpoch])
		clk.Advance(time.Second)
	}
	r.Insert(0xfeed, 1)

	truth := map[uint64]uint64{}
	for _, it := range s.Items[perEpoch:] { // the 3 newest sealed epochs
		truth[it.Key] += it.Value
	}
	violations, checked := 0, 0
	for key, f := range truth {
		est, mpe, ok := r.QueryWindowWithError(key, epochs-1)
		if !ok {
			t.Fatal("certified window query unavailable")
		}
		if f > est || sketch.CertifiedLowerBound(est, mpe) > f {
			violations++
		}
		if checked++; checked >= 3_000 {
			break
		}
	}
	if violations > 0 {
		t.Errorf("%d/%d keys outside merged window certified intervals", violations, checked)
	}
}

func TestQueryRangeExcludesNewerEpochs(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	r := NewRing(registryFactory("CM_fast"), 64<<10, time.Second, 4, clk.Now)
	// Epoch A: key 1 ×10; epoch B: key 1 ×3.
	for i := 0; i < 10; i++ {
		r.Insert(1, 1)
	}
	clk.Advance(time.Second)
	for i := 0; i < 3; i++ {
		r.Insert(1, 1)
	}
	clk.Advance(time.Second)
	r.Insert(2, 1) // seal epoch B
	if got := r.QueryRange(1, 0, 0); got != 3 {
		t.Errorf("newest sealed epoch reports %d, want 3", got)
	}
	if got := r.QueryRange(1, 1, 1); got != 10 {
		t.Errorf("older epoch reports %d, want 10", got)
	}
	if got := r.QueryWindow(1, 2); got != 13 {
		t.Errorf("two-epoch window reports %d, want 13", got)
	}
	if got := r.QueryWindow(1, 50); got != 13 {
		t.Errorf("over-long window should clamp: got %d, want 13", got)
	}
}

func TestRingEvictsOldestBeyondCapacity(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	r := NewRing(registryFactory("CM_fast"), 64<<10, time.Second, 3, clk.Now)
	for e := 0; e < 5; e++ {
		r.Insert(uint64(e+1), 7) // epoch e holds key e+1
		clk.Advance(time.Second)
	}
	r.Insert(99, 1) // seal epoch 4
	if got := r.Sealed(); got != 3 {
		t.Fatalf("Sealed()=%d want capacity 3", got)
	}
	// Keys from evicted epochs 0 and 1 are gone from the widest window.
	if got := r.QueryWindow(1, 3); got != 0 {
		t.Errorf("evicted epoch's key still visible: %d", got)
	}
	if got := r.QueryWindow(5, 3); got != 7 {
		t.Errorf("retained epoch's key lost: %d", got)
	}
	if r.Rotations() != 5 {
		t.Errorf("rotations=%d want 5", r.Rotations())
	}
}

func TestIdleGapSlidesWindowOut(t *testing.T) {
	r, clk := newRing(t, 4)
	r.Insert(1, 1)
	// Sleep through many epochs with no traffic.
	clk.Advance(37 * time.Minute)
	r.Insert(2, 1)
	// Must not have materialized hundreds of windows: at most capacity+1
	// seals per gap, and the pre-gap traffic has slid out entirely.
	if r.Rotations() > uint64(r.Capacity())+2 {
		t.Errorf("rotations=%d after idle gap; bounded fast-forward broken", r.Rotations())
	}
	if got := r.QueryWindow(1, 4); got != 0 {
		t.Errorf("idle gap did not slide old traffic out of the window: %d", got)
	}
	if got := r.QueryLive(2); got != 1 {
		t.Errorf("live key lost after idle gap: %d", got)
	}
}

// TestConcurrentIngestAndLockFreeReads exercises the satellite contract
// under the race detector: sealed-window queries run lock-free against
// concurrent ingest and rotation.
func TestConcurrentIngestAndLockFreeReads(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	r := NewRing(oursFactory(), 64<<10, time.Second, 4, clk.Now)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers: ingest and advance the clock.
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 4000; i++ {
				r.Insert(uint64(i%100), 1)
				if i%500 == 0 {
					clk.Advance(300 * time.Millisecond)
				}
			}
		}()
	}
	// Readers: hammer the sealed windows and sliding views concurrently.
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for k := uint64(0); k < 100; k += 7 {
					r.Query(k)
					r.QueryWindow(k, 3)
					r.QuerySealedWithError(k)
					r.QueryWindowWithError(k, 2)
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if r.Rotations() == 0 {
		t.Error("expected at least one rotation")
	}
}

func TestMemoryAndName(t *testing.T) {
	r, clk := newRing(t, 4)
	before := r.MemoryBytes()
	clk.Advance(10 * time.Second)
	r.Insert(1, 1)
	after := r.MemoryBytes()
	if after <= before {
		t.Errorf("two windows should account more than one: %d vs %d", after, before)
	}
	if r.Name() != "Ours_ring" {
		t.Errorf("Name=%q", r.Name())
	}
}

func TestGenerationAdvancesOnlyOnSeal(t *testing.T) {
	r, clk := newRing(t, 4)
	if g := r.Generation(); g != 0 {
		t.Fatalf("fresh ring generation = %d", g)
	}
	r.Insert(1, 1)
	if g := r.Generation(); g != 0 {
		t.Errorf("ingest without a seal bumped generation to %d", g)
	}
	clk.Advance(10 * time.Second)
	if g := r.Generation(); g != 1 {
		t.Errorf("generation after one seal = %d, want 1", g)
	}
	// Reads alone never advance it.
	r.Query(1)
	r.QueryWindow(1, 4)
	if g := r.Generation(); g != 1 {
		t.Errorf("queries bumped generation to %d", g)
	}
}

func TestTrackedWindowMergesSealedEpochs(t *testing.T) {
	r, clk := newRing(t, 4)
	// Key 5 is heavy in two different epochs; the merged tracked view must
	// report it once with the combined weight visible via QueryWindow.
	for i := 0; i < 500; i++ {
		r.Insert(5, 1)
	}
	clk.Advance(10 * time.Second)
	for i := 0; i < 300; i++ {
		r.Insert(5, 1)
	}
	clk.Advance(10 * time.Second)
	r.Query(0) // poke
	kvs, ok := r.TrackedWindow(2)
	if !ok {
		t.Fatal("TrackedWindow not answered for a Mergeable heavy-hitter sketch")
	}
	found := false
	for _, kv := range kvs {
		if kv.Key == 5 {
			found = true
			if kv.Est < 800 {
				t.Errorf("merged tracked estimate %d < exact 800", kv.Est)
			}
		}
	}
	if !found {
		t.Error("key 5 missing from merged tracked window")
	}
	if _, ok := r.TrackedWindow(0); ok {
		t.Error("empty window range answered")
	}
}

func TestTrackedWindowUnsupportedSketch(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRing(registryFactory("CM_fast"), 64<<10, time.Second, 4, clk.Now)
	r.Insert(1, 1)
	clk.Advance(time.Second)
	r.Query(0)
	if _, ok := r.TrackedWindow(1); ok {
		t.Error("CM (no Tracked) answered TrackedWindow")
	}
}
