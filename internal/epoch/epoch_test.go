package epoch

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sketch"
)

// fakeClock is a manually advanced clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func oursFactory() sketch.Factory {
	return sketch.Factory{Name: "Ours", New: func(mem int) sketch.Sketch {
		return core.NewFromMemory(mem, 25, 7)
	}}
}

func newRotator(t *testing.T) (*Rotator, *fakeClock) {
	t.Helper()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	r := NewRotator(oursFactory(), 64<<10, 10*time.Second, clk.Now)
	return r, clk
}

func TestSealedEmptyBeforeFirstRotation(t *testing.T) {
	r, _ := newRotator(t)
	r.Insert(1, 100)
	if got := r.Query(1); got != 0 {
		t.Errorf("sealed query before rotation = %d, want 0", got)
	}
	if got := r.QueryLive(1); got == 0 {
		t.Error("live query should see the active window")
	}
	if _, _, ok := r.QuerySealedWithError(1); ok {
		t.Error("certified sealed query should fail before first rotation")
	}
}

func TestRotationSealsWindow(t *testing.T) {
	r, clk := newRotator(t)
	r.Insert(1, 100)
	clk.Advance(11 * time.Second)
	// First touch after the epoch boundary rotates.
	r.Insert(2, 5)
	if got := r.Query(1); got < 100 {
		t.Errorf("sealed window lost key 1: %d", got)
	}
	if got := r.Query(2); got != 0 {
		t.Errorf("key 2 belongs to the live window, sealed reports %d", got)
	}
	if got := r.QueryLive(2); got < 5 {
		t.Errorf("live window lost key 2: %d", got)
	}
	if r.Rotations() != 1 {
		t.Errorf("rotations=%d want 1", r.Rotations())
	}
}

func TestCertifiedSealedQuery(t *testing.T) {
	r, clk := newRotator(t)
	for i := 0; i < 500; i++ {
		r.Insert(9, 1)
	}
	clk.Advance(10 * time.Second)
	r.Insert(1, 1) // trigger rotation
	est, mpe, ok := r.QuerySealedWithError(9)
	if !ok {
		t.Fatal("certified query unavailable after rotation")
	}
	if est < 500 || est-mpe > 500 {
		t.Errorf("truth 500 outside certified [%d, %d]", est-mpe, est)
	}
}

func TestIdleGapFastForwards(t *testing.T) {
	r, clk := newRotator(t)
	r.Insert(1, 1)
	// Sleep through many epochs with no traffic.
	clk.Advance(37 * time.Minute)
	r.Insert(2, 1)
	// Must not have looped hundreds of rotations.
	if r.Rotations() > 3 {
		t.Errorf("rotations=%d after idle gap; fast-forward broken", r.Rotations())
	}
	if got := r.QueryLive(2); got != 1 {
		t.Errorf("live key lost after idle gap: %d", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	r := NewRotator(oursFactory(), 64<<10, time.Second, clk.Now)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Insert(uint64(i%100), 1)
				if i%500 == 0 {
					clk.Advance(300 * time.Millisecond)
					r.Query(uint64(i % 100))
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Rotations() == 0 {
		t.Error("expected at least one rotation")
	}
}

func TestMemoryAndName(t *testing.T) {
	r, clk := newRotator(t)
	before := r.MemoryBytes()
	clk.Advance(10 * time.Second)
	r.Insert(1, 1)
	after := r.MemoryBytes()
	if after <= before {
		t.Errorf("two windows should account more than one: %d vs %d", after, before)
	}
	if r.Name() != "Ours_epoch" {
		t.Errorf("Name=%q", r.Name())
	}
}
