// Package epoch provides time-windowed measurement on top of any sketch:
// the standard deployment pattern where the data plane measures in fixed
// epochs (say, 10s windows), the control plane reads sealed windows, and
// the structure rotates without missing traffic.
//
// Ring keeps one active (accumulating) sketch and up to Capacity sealed
// ones, newest first. Sealed windows are immutable and published through an
// atomic pointer swap, so queries against them never contend with ingest:
// a reader loads the current sealed set and walks sketches no writer will
// ever touch again. Sliding-window queries merge the last n sealed epochs
// into one view (cached per sealed set, so the merge cost is paid once per
// rotation, not per query) when the sketch supports sketch.Mergeable, and
// fall back to summing per-epoch estimates otherwise.
package epoch

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Clock abstracts time for tests.
type Clock func() time.Time

// DefaultCapacity is the sealed-window retention when NewRing is given a
// non-positive capacity: enough look-back for sliding-window queries
// without hoarding memory.
const DefaultCapacity = 8

// Ring wraps a sketch factory with epoch-based rotation and a bounded
// history of sealed windows. It is safe for concurrent use: ingest
// serializes on an internal mutex, sealed-window queries are lock-free.
type Ring struct {
	factory  sketch.Factory
	memBytes int
	interval time.Duration
	capacity int
	clock    Clock

	// mu guards the active window and rotation bookkeeping. Sealed-window
	// queries never take it.
	mu      sync.Mutex
	active  sketch.Sketch
	started time.Time

	// startedNanos mirrors started (unix nanos) so read paths can check
	// rotation dueness without taking mu.
	startedNanos atomic.Int64

	// flushers are ingest-pipeline drain hooks (AttachFlusher) run from
	// read paths when rotation is overdue, BEFORE the seal: pending deltas
	// submitted in the closing epoch fold into it, so sealed windows stay
	// exact under async ingest. hasFlushers gates the check off the hot
	// path; drainMu serializes concurrent readers — a late reader WAITS for
	// the in-flight drain rather than skipping it, since sealing while
	// another reader's drain is still folding would strand acked batches in
	// the next window.
	flushMu     sync.Mutex
	flushers    []func()
	hasFlushers atomic.Bool
	drainMu     sync.Mutex

	// drainedFor records which epoch start (startedNanos value) the last
	// completed drain covered. With flushers attached, maybeRotate refuses
	// to seal until a drain has completed for the CURRENT epoch start —
	// closing the race where a reader checks overdue() just before the
	// boundary, skips the drain, and would otherwise seal undrained
	// pre-boundary deltas into the next window.
	drainedFor atomic.Int64

	// sealed is the immutable published history; every rotation installs a
	// fresh sealedSet, so readers holding the old one keep a consistent view.
	sealed atomic.Pointer[sealedSet]
}

// sealedSet is one immutable generation of sealed windows, newest first.
// The windows themselves are never written after publication; the merged
// cache is the only mutable state and carries its own lock.
type sealedSet struct {
	windows   []sketch.Sketch
	rotations uint64

	// mergedMu guards merged, the lazily built sliding-window views keyed
	// by [from, to] sealed-window index ranges. The cache dies with its
	// sealedSet, which is exactly the required invalidation-on-rotation.
	mergedMu sync.Mutex
	merged   map[[2]int]sketch.Sketch
}

// NewRing builds a ring producing a fresh sketch every interval and
// retaining up to capacity sealed windows (DefaultCapacity when ≤ 0).
func NewRing(f sketch.Factory, memBytes int, interval time.Duration, capacity int, clock Clock) *Ring {
	if clock == nil {
		clock = time.Now
	}
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Ring{
		factory:  f,
		memBytes: memBytes,
		interval: interval,
		capacity: capacity,
		clock:    clock,
	}
	r.active = f.New(memBytes)
	r.started = clock()
	r.startedNanos.Store(r.started.UnixNano())
	// Deliberately not equal to startedNanos: the first epoch of a
	// pipelined ring must be drained before it can seal, like every other.
	r.drainedFor.Store(r.started.UnixNano() - 1)
	r.sealed.Store(&sealedSet{})
	return r
}

// Capacity returns the maximum number of retained sealed windows.
func (r *Ring) Capacity() int { return r.capacity }

// Interval returns the epoch length.
func (r *Ring) Interval() time.Duration { return r.interval }

// maybeRotate seals elapsed epochs. Callers hold r.mu. An idle gap yields
// empty sealed windows — the sliding window genuinely slides — but at most
// capacity+1 sketches are materialized per gap, since any older ones would
// immediately fall off the ring. A ring with attached flushers only seals
// after a drain completed for the current epoch start, so pipeline deltas
// holding pre-boundary traffic can never be stranded behind a seal.
func (r *Ring) maybeRotate() {
	now := r.clock()
	gap := now.Sub(r.started)
	if gap < r.interval {
		return
	}
	if r.hasFlushers.Load() && r.drainedFor.Load() != r.startedNanos.Load() {
		// Overdue but not yet drained (a reader raced the boundary): leave
		// the window active; the next poke drains and then seals.
		return
	}
	n := int(gap / r.interval)
	elapsed := n
	if n > r.capacity+1 {
		n = r.capacity + 1
	}
	for i := 0; i < n; i++ {
		r.seal()
	}
	r.started = r.started.Add(r.interval * time.Duration(elapsed))
	r.startedNanos.Store(r.started.UnixNano())
}

// seal publishes the active window as the newest sealed one and installs a
// fresh active. Callers hold r.mu.
func (r *Ring) seal() {
	old := r.sealed.Load()
	keep := len(old.windows)
	if keep >= r.capacity {
		keep = r.capacity - 1
	}
	windows := make([]sketch.Sketch, 0, keep+1)
	windows = append(windows, r.active)
	windows = append(windows, old.windows[:keep]...)
	r.sealed.Store(&sealedSet{windows: windows, rotations: old.rotations + 1})
	r.active = r.factory.New(r.memBytes)
}

// poke opportunistically seals overdue epochs from the read path without
// ever blocking on ingest: if a writer holds the lock, it will rotate
// itself, and the reader proceeds against the current sealed set. With
// attached flushers, an overdue rotation first drains the ingest pipelines
// (no lock held — their folds need mu), so the closing epoch seals with
// every delta submitted to it.
func (r *Ring) poke() {
	if r.hasFlushers.Load() && r.overdue() {
		r.drainFlushers()
	}
	if r.mu.TryLock() {
		r.maybeRotate()
		r.mu.Unlock()
	}
}

// overdue reports (lock-free, from the mirrored start time) whether the
// active epoch has elapsed.
func (r *Ring) overdue() bool {
	return r.clock().Sub(time.Unix(0, r.startedNanos.Load())) >= r.interval
}

// drainFlushers runs every attached flusher. Concurrent readers serialize
// on drainMu: each returns only once some complete drain finished after its
// call began, so no caller can proceed to seal while another caller's drain
// is still folding pre-boundary deltas. Never called with mu held: flushers
// block on pipeline folds, which take mu through Fold.
func (r *Ring) drainFlushers() {
	r.drainMu.Lock()
	defer r.drainMu.Unlock()
	// Capture the epoch start the drain covers BEFORE folding: if a seal
	// sneaks in mid-drain (it cannot, seals require drainedFor to match,
	// but belt and suspenders), the stale stamp keeps the gate closed.
	covers := r.startedNanos.Load()
	r.flushMu.Lock()
	fs := make([]func(), len(r.flushers))
	copy(fs, r.flushers)
	r.flushMu.Unlock()
	for _, f := range fs {
		f()
	}
	r.drainedFor.Store(covers)
}

// AttachFlusher registers an ingest-pipeline drain hook (typically
// Pipeline.Drain via ForRing). Read paths call it before sealing an overdue
// epoch, which is what keeps sealed windows exact when the ring is fed
// through pipelines: every batch submitted before the epoch boundary folds
// into the window that was active when it was submitted. A ring fed through
// pipelines should be written only through them — direct Insert/InsertBatch
// calls rotate without draining and can strand late deltas in the next
// window.
func (r *Ring) AttachFlusher(f func()) {
	r.flushMu.Lock()
	r.flushers = append(r.flushers, f)
	r.flushMu.Unlock()
	r.hasFlushers.Store(true)
}

// Fold merges a pipeline worker's delta into the active window under one
// short lock hold — the ring's write surface of the ingest plane. Unlike
// Insert/InsertBatch it does NOT rotate first: rotation of a pipelined ring
// is driven by the read paths, which drain every attached pipeline before
// sealing, so a drain's folds all land in the window that was active when
// their items were submitted. Requires a Mergeable factory product.
func (r *Ring) Fold(delta sketch.Sketch) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return sketch.Merge(r.active, delta)
}

// Insert adds value to key in the current epoch.
func (r *Ring) Insert(key, value uint64) {
	r.mu.Lock()
	r.maybeRotate()
	r.active.Insert(key, value)
	r.mu.Unlock()
}

// InsertBatch bulk-ingests into the current epoch through the sketch's
// native batch path. The whole batch lands in one epoch: rotation happens
// on the boundary before it, matching how a drained NIC ring or network
// frame is accounted to the window that receives it.
func (r *Ring) InsertBatch(items []stream.Item) {
	r.mu.Lock()
	r.maybeRotate()
	sketch.InsertBatch(r.active, items)
	r.mu.Unlock()
}

// Query reads the most recent sealed epoch — what operators act on.
// Returns 0 before the first rotation. Lock-free with respect to ingest.
func (r *Ring) Query(key uint64) uint64 {
	r.poke()
	ss := r.sealed.Load()
	if len(ss.windows) == 0 {
		return 0
	}
	return ss.windows[0].Query(key)
}

// QueryLive reads the active (accumulating) window. It takes the ingest
// lock: the live window is by definition under mutation.
func (r *Ring) QueryLive(key uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maybeRotate()
	return r.active.Query(key)
}

// QuerySealedWithError reads the newest sealed window's certified interval
// when the underlying sketch supports it; ok is false otherwise or before
// the first rotation. Lock-free with respect to ingest.
func (r *Ring) QuerySealedWithError(key uint64) (est, mpe uint64, ok bool) {
	r.poke()
	ss := r.sealed.Load()
	if len(ss.windows) == 0 {
		return 0, 0, false
	}
	eb, good := ss.windows[0].(sketch.ErrorBounded)
	if !good {
		return 0, 0, false
	}
	est, mpe = eb.QueryWithError(key)
	return est, mpe, true
}

// QueryWindow answers a sliding-window query: the estimated value sum of
// key over the last n sealed epochs (clamped to what the ring retains).
// With a Mergeable sketch the answer comes from one merged view; otherwise
// per-epoch estimates are summed, which preserves upper-bound semantics
// for overestimating sketches but compounds their error.
func (r *Ring) QueryWindow(key uint64, n int) uint64 {
	return r.QueryRange(key, 0, n-1)
}

// QueryRange answers over sealed epochs from..to inclusive, indexed newest
// first (0 = most recent sealed). Indices beyond the retained history are
// clamped; an empty range returns 0. A thin shim over the batch read core
// (rangeBatch), so single-key and batch answers cannot diverge.
func (r *Ring) QueryRange(key uint64, from, to int) uint64 {
	r.poke()
	ss := r.sealed.Load()
	from, to, ok := clampRange(from, to, len(ss.windows))
	if !ok {
		return 0
	}
	keys := [1]uint64{key}
	var est [1]uint64
	r.rangeBatch(ss, from, to, keys[:], est[:], nil)
	return est[0]
}

// QueryWindowWithError answers a sliding-window query with a certified
// interval over the last n sealed epochs: truth ∈ [est−mpe, est]. The
// merged view certifies directly; without Mergeable support, per-epoch
// certified intervals are summed (sound composition, as in netsum). ok is
// false when no sealed window exists or the sketch cannot certify. A thin
// shim over the batch read core (rangeBatch).
func (r *Ring) QueryWindowWithError(key uint64, n int) (est, mpe uint64, ok bool) {
	r.poke()
	ss := r.sealed.Load()
	from, to, rangeOK := clampRange(0, n-1, len(ss.windows))
	if !rangeOK {
		return 0, 0, false
	}
	keys := [1]uint64{key}
	var e, m [1]uint64
	if !r.rangeBatch(ss, from, to, keys[:], e[:], m[:]) {
		return 0, 0, false
	}
	return e[0], m[0], true
}

// clampRange normalizes a newest-first epoch range against the retained
// window count.
func clampRange(from, to, have int) (int, int, bool) {
	if from < 0 {
		from = 0
	}
	if to >= have {
		to = have - 1
	}
	if have == 0 || from > to {
		return 0, 0, false
	}
	return from, to, true
}

// mergedView returns the cached merge of sealed windows from..to, building
// it on first use. A single-window range needs no merge. Returns nil when
// the sketch does not support merging (or a merge fails), in which case
// callers fall back to summing.
func (r *Ring) mergedView(ss *sealedSet, from, to int) sketch.Sketch {
	if from == to {
		return ss.windows[from]
	}
	if _, ok := ss.windows[from].(sketch.Mergeable); !ok {
		// Probe a sealed window before allocating: a non-Mergeable factory
		// would otherwise pay a full sketch allocation per query only to
		// discard it and fall back to summing.
		return nil
	}
	key := [2]int{from, to}
	ss.mergedMu.Lock()
	defer ss.mergedMu.Unlock()
	if m, ok := ss.merged[key]; ok {
		return m // nil for a range whose merge failed: fall back to summing
	}
	if ss.merged == nil {
		ss.merged = make(map[[2]int]sketch.Sketch)
	}
	view := r.factory.New(r.memBytes)
	mg, ok := view.(sketch.Mergeable)
	if !ok {
		ss.merged[key] = nil
		return nil
	}
	for i := from; i <= to; i++ {
		if err := mg.Merge(ss.windows[i]); err != nil {
			// Cache the failure so later queries for this range don't
			// re-allocate and re-merge just to fall back again.
			ss.merged[key] = nil
			return nil
		}
	}
	ss.merged[key] = view
	return view
}

// Generation returns the sealed-set generation: a counter that increments
// exactly when a window seals, and never otherwise. Any answer derived only
// from sealed windows (Query, QueryWindow, QueryRange, TrackedWindow, and
// their WithError forms) is immutable for a fixed generation — the
// invalidation contract result caches key on. Overdue epochs are sealed
// opportunistically before reading, so a reader polling Generation observes
// rotations even on an otherwise idle ring.
func (r *Ring) Generation() uint64 {
	r.poke()
	return r.sealed.Load().rotations
}

// PeekGeneration returns the already-published generation WITHOUT poking:
// no rotation is driven and no attached pipeline is drained. Write paths
// stamping Acks use it — a producer must never block on a full pipeline
// drain just to label its acknowledgement; sealing is the read paths' and
// the janitor's job.
func (r *Ring) PeekGeneration() uint64 {
	return r.sealed.Load().rotations
}

// TrackedWindow enumerates the heavy-hitter keys tracked over the last n
// sealed epochs, from the same merged view sliding-window queries use. ok
// is false when nothing is sealed yet, the sketch cannot merge a
// multi-window view, or it does not report tracked keys.
func (r *Ring) TrackedWindow(n int) ([]sketch.KV, bool) {
	r.poke()
	ss := r.sealed.Load()
	from, to, rangeOK := clampRange(0, n-1, len(ss.windows))
	if !rangeOK {
		return nil, false
	}
	view := r.mergedView(ss, from, to)
	if view == nil {
		return nil, false
	}
	hh, ok := view.(sketch.HeavyHitterReporter)
	if !ok {
		return nil, false
	}
	return hh.Tracked(), true
}

// RegisterMetrics exposes the ring's seal state on reg under the ring_*
// namespace. Every sample derives from the already-published sealed set —
// PeekGeneration semantics — so a scrape never pokes the ring, drives a
// rotation, or drains an attached pipeline. An overdue-but-unsealed epoch
// is therefore invisible to /metrics until a reader or the janitor seals
// it; that staleness is the price of a scrape that cannot perturb the
// data plane.
func (r *Ring) RegisterMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("ring_seals_total", "Epoch windows sealed over the ring's life.", nil, func() float64 {
		return float64(r.sealed.Load().rotations)
	})
	reg.GaugeFunc("ring_generation", "Published sealed-set generation (no-poke read).", nil, func() float64 {
		return float64(r.sealed.Load().rotations)
	})
	reg.GaugeFunc("ring_sealed_windows", "Sealed windows currently retained.", nil, func() float64 {
		return float64(len(r.sealed.Load().windows))
	})
	reg.GaugeFunc("ring_capacity", "Sealed-window retention limit.", nil, func() float64 {
		return float64(r.capacity)
	})
	reg.GaugeFunc("ring_epoch_interval_seconds", "Epoch rotation interval.", nil, func() float64 {
		return r.interval.Seconds()
	})
}

// Sealed reports how many sealed windows the ring currently retains.
func (r *Ring) Sealed() int {
	r.poke()
	return len(r.sealed.Load().windows)
}

// Rotations reports how many epochs have been sealed in total.
func (r *Ring) Rotations() uint64 {
	r.poke()
	return r.sealed.Load().rotations
}

// MemoryBytes reports the accounted memory of the active window plus every
// retained sealed window (merged query views are caches, not accounted
// state, exactly as the paper's accounting excludes control-plane copies).
func (r *Ring) MemoryBytes() int {
	r.mu.Lock()
	total := r.active.MemoryBytes()
	r.mu.Unlock()
	for _, w := range r.sealed.Load().windows {
		total += w.MemoryBytes()
	}
	return total
}

// Name identifies the wrapped algorithm.
func (r *Ring) Name() string { return r.factory.Name + "_ring" }
