// Package epoch provides time-windowed measurement on top of any sketch:
// the standard deployment pattern where the data plane measures in fixed
// epochs (say, 10s windows), the control plane reads the sealed window, and
// the structure rotates without missing traffic.
//
// Rotator keeps an active sketch and the most recent sealed one. Queries
// can target the sealed window (stable, fully consistent — what operators
// act on) or the live window (freshest, still accumulating). This mirrors
// how the paper's switch deployment is read: the control plane pulls a
// consistent snapshot while the pipeline keeps counting.
package epoch

import (
	"sync"
	"time"

	"repro/internal/sketch"
)

// Clock abstracts time for tests.
type Clock func() time.Time

// Rotator wraps a sketch factory with epoch-based rotation.
// It is safe for concurrent use.
type Rotator struct {
	mu        sync.Mutex
	factory   sketch.Factory
	memBytes  int
	interval  time.Duration
	clock     Clock
	active    sketch.Sketch
	sealed    sketch.Sketch
	started   time.Time
	rotations uint64
}

// NewRotator builds a rotator producing a fresh sketch every interval.
func NewRotator(f sketch.Factory, memBytes int, interval time.Duration, clock Clock) *Rotator {
	if clock == nil {
		clock = time.Now
	}
	r := &Rotator{
		factory:  f,
		memBytes: memBytes,
		interval: interval,
		clock:    clock,
	}
	r.active = f.New(memBytes)
	r.started = clock()
	return r
}

// maybeRotate seals the active window when the epoch has elapsed. Callers
// hold r.mu.
func (r *Rotator) maybeRotate() {
	now := r.clock()
	for now.Sub(r.started) >= r.interval {
		// The previous active window becomes the sealed one, so a fresh
		// instance is required — sketch.Resettable cannot be used here, as
		// resetting would destroy the window being published.
		r.sealed = r.active
		r.active = r.factory.New(r.memBytes)
		r.started = r.started.Add(r.interval)
		r.rotations++
		// If more than one full epoch elapsed (idle period), the sealed
		// window is the last active one and intermediate epochs are empty;
		// fast-forward rather than looping forever.
		if now.Sub(r.started) >= r.interval {
			r.started = now
		}
	}
}

// Insert adds value to key in the current epoch.
func (r *Rotator) Insert(key, value uint64) {
	r.mu.Lock()
	r.maybeRotate()
	r.active.Insert(key, value)
	r.mu.Unlock()
}

// Query reads the SEALED window: the most recent complete epoch. Returns 0
// before the first rotation.
func (r *Rotator) Query(key uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maybeRotate()
	if r.sealed == nil {
		return 0
	}
	return r.sealed.Query(key)
}

// QueryLive reads the active (accumulating) window.
func (r *Rotator) QueryLive(key uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maybeRotate()
	return r.active.Query(key)
}

// QuerySealedWithError reads the sealed window's certified interval when
// the underlying sketch supports it; ok is false otherwise or before the
// first rotation.
func (r *Rotator) QuerySealedWithError(key uint64) (est, mpe uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maybeRotate()
	eb, good := r.sealed.(sketch.ErrorBounded)
	if !good {
		return 0, 0, false
	}
	est, mpe = eb.QueryWithError(key)
	return est, mpe, true
}

// Rotations reports how many epochs have been sealed.
func (r *Rotator) Rotations() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rotations
}

// MemoryBytes reports both windows' accounted memory.
func (r *Rotator) MemoryBytes() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := r.active.MemoryBytes()
	if r.sealed != nil {
		total += r.sealed.MemoryBytes()
	}
	return total
}

// Name identifies the wrapped algorithm.
func (r *Rotator) Name() string { return r.factory.Name + "_epoch" }
