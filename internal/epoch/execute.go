package epoch

import (
	"errors"
	"fmt"

	"repro/internal/query"
	"repro/internal/sketch"
)

// ErrNoAgentScope marks an agent-scoped request sent to a ring: rings are
// single measurement points; agent scoping lives at the collector.
var ErrNoAgentScope = errors.New("epoch: ring queries cannot be scoped to an agent")

// Execute answers a whole typed batch request against the ring under one
// sealed-set snapshot: every key in the answer derives from the same
// immutable sealed windows and the same generation — no torn reads across
// keys, even while rotations race the call. This is the ring's surface of
// the unified query plane; the per-key methods (QueryWindow, QueryRange,
// QueryWindowWithError) are shims over the same batch core.
//
// Kinds:
//   - Point answers each key over the ring's whole retained sliding window
//     (the ring's visible history — matching how epoch-mode backends answer
//     point queries).
//   - Window answers over the last req.Window sealed epochs, clamped to the
//     retained history; Answer.Coverage reports the sealed windows actually
//     answered, not the requested span.
//   - TopK enumerates heavy hitters from the merged sliding view (over
//     req.Window epochs, or the full retention when 0), with each key's
//     interval read from the same view.
func (r *Ring) Execute(req query.Request) (query.Answer, error) {
	if err := req.Validate(); err != nil {
		return query.Answer{}, err
	}
	if req.Agent != 0 {
		return query.Answer{}, ErrNoAgentScope
	}
	r.poke()
	ss := r.sealed.Load()
	ans := query.Answer{Generation: ss.rotations, Source: "ring"}

	// The span each kind answers over: Window asks for an explicit number
	// of epochs, Point means the whole retention, TopK defaults to the
	// whole retention unless a window was given.
	var n int
	switch {
	case req.Kind == query.Window:
		n = req.Window
	case req.Kind == query.TopK && req.Window > 0:
		n = req.Window
	default:
		n = r.capacity
	}
	from, to, ok := clampRange(0, n-1, len(ss.windows))

	if req.Kind == query.TopK {
		if !ok {
			// Nothing sealed yet: an empty window, not a missing capability.
			ans.PerKey = []query.Estimate{}
			return ans, nil
		}
		view := r.mergedView(ss, from, to)
		if view == nil {
			return query.Answer{}, fmt.Errorf("epoch: %s cannot build a merged view for top-k over %d windows",
				r.factory.Name, to-from+1)
		}
		hh, isHH := view.(sketch.HeavyHitterReporter)
		if !isHH {
			return query.Answer{}, fmt.Errorf("epoch: %s does not report tracked keys", r.factory.Name)
		}
		kvs := query.TopKOf(hh.Tracked(), req.K)
		keys := make([]uint64, len(kvs))
		for i, kv := range kvs {
			keys[i] = kv.Key
		}
		est := make([]uint64, len(keys))
		mpe := make([]uint64, len(keys))
		ans.Certified = r.rangeBatch(ss, from, to, keys, est, mpe)
		ans.Coverage = to - from + 1
		if !ans.Certified {
			mpe = nil
		}
		ans.PerKey = query.EstimatesFrom(keys, est, mpe)
		return ans, nil
	}

	est := make([]uint64, len(req.Keys))
	if !ok {
		// Nothing sealed: every estimate is 0 over an empty (0-epoch) span.
		ans.PerKey = query.EstimatesFrom(req.Keys, est, nil)
		return ans, nil
	}
	mpe := make([]uint64, len(req.Keys))
	ans.Certified = r.rangeBatch(ss, from, to, req.Keys, est, mpe)
	ans.Coverage = to - from + 1
	if !ans.Certified {
		mpe = nil
	}
	ans.PerKey = query.EstimatesFrom(req.Keys, est, mpe)
	return ans, nil
}

// QueryWindowBatch answers every key's sliding-window sum over the last n
// sealed epochs under one sealed-set snapshot, writing estimates (and, when
// mpe is non-nil and the sketch certifies, Maximum Possible Errors) into
// the caller's slices. certified reports whether mpe carries sound bounds
// for every key; covered is the sealed-epoch span actually answered (0
// before the first rotation, in which case est and mpe are zeroed). This is
// the exported batch core the collector amortizes per-agent window queries
// on.
func (r *Ring) QueryWindowBatch(keys []uint64, n int, est, mpe []uint64) (certified bool, covered int) {
	r.poke()
	ss := r.sealed.Load()
	from, to, ok := clampRange(0, n-1, len(ss.windows))
	if !ok {
		for i := range keys {
			est[i] = 0
			if mpe != nil {
				mpe[i] = 0
			}
		}
		return false, 0
	}
	return r.rangeBatch(ss, from, to, keys, est, mpe), to - from + 1
}

// rangeBatch is the one batch read core every window query flows through:
// it answers all keys over sealed windows from..to of ss, using the cached
// merged view when the sketch supports merging (one batch walk for the
// whole span) and per-window batch sums otherwise. With mpe non-nil the
// answer is certified — truth ∈ [est−mpe, est] per key — exactly when the
// return value is true; on false, mpe is zero-filled (merged-view queries
// certify when the view is ErrorBounded; summed per-window intervals
// compose soundly only when every window certifies).
func (r *Ring) rangeBatch(ss *sealedSet, from, to int, keys []uint64, est, mpe []uint64) (certified bool) {
	if m := r.mergedView(ss, from, to); m != nil {
		sketch.QueryBatch(m, keys, est, mpe)
		if mpe == nil {
			return false
		}
		_, eb := m.(sketch.ErrorBounded)
		return eb
	}
	certified = mpe != nil
	if certified {
		for i := from; i <= to; i++ {
			if _, ok := ss.windows[i].(sketch.ErrorBounded); !ok {
				certified = false
				break
			}
		}
	}
	for i := range keys {
		est[i] = 0
		if mpe != nil {
			mpe[i] = 0
		}
	}
	tmpE := make([]uint64, len(keys))
	var tmpM []uint64
	if certified {
		tmpM = make([]uint64, len(keys))
	}
	for i := from; i <= to; i++ {
		sketch.QueryBatch(ss.windows[i], keys, tmpE, tmpM)
		for j := range keys {
			est[j] += tmpE[j]
			if tmpM != nil {
				mpe[j] += tmpM[j]
			}
		}
	}
	return certified
}
