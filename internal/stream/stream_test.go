package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfFrequenciesExactTotal(t *testing.T) {
	cases := []struct {
		n, distinct int
		skew        float64
	}{
		{1000, 100, 1.0},
		{1000, 100, 0.3},
		{1000, 100, 3.0},
		{12345, 777, 1.1},
		{100, 100, 2.0},
		{10, 1, 1.0},
	}
	for _, c := range cases {
		freqs := ZipfFrequencies(c.n, c.distinct, c.skew)
		if len(freqs) != c.distinct {
			t.Fatalf("len=%d want %d", len(freqs), c.distinct)
		}
		total := 0
		for i, f := range freqs {
			if f < 1 {
				t.Fatalf("skew=%.1f rank=%d freq=%d < 1", c.skew, i, f)
			}
			total += f
		}
		if total != c.n {
			t.Errorf("skew=%.1f: total=%d want %d", c.skew, total, c.n)
		}
	}
}

func TestZipfFrequenciesMonotoneHead(t *testing.T) {
	freqs := ZipfFrequencies(100000, 1000, 1.2)
	// The head of a Zipf distribution must be non-increasing (ties allowed
	// after integer rounding).
	for i := 1; i < 50; i++ {
		if freqs[i] > freqs[i-1] {
			t.Fatalf("freqs not non-increasing at %d: %d > %d", i, freqs[i], freqs[i-1])
		}
	}
	if freqs[0] <= freqs[999] {
		t.Fatalf("head %d not heavier than tail %d", freqs[0], freqs[999])
	}
}

func TestZipfFrequenciesPanics(t *testing.T) {
	for _, f := range []func(){
		func() { ZipfFrequencies(10, 0, 1.0) },
		func() { ZipfFrequencies(5, 10, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestFromFrequenciesTruth(t *testing.T) {
	freqs := []int{10, 5, 1}
	s := FromFrequencies("test", freqs, 7)
	if s.Len() != 16 {
		t.Fatalf("Len=%d want 16", s.Len())
	}
	truth := s.Truth()
	if len(truth) != 3 {
		t.Fatalf("distinct=%d want 3", len(truth))
	}
	// Rank-derived keys carry their exact frequencies.
	for rank, want := range freqs {
		k := keyForRank(rank, 7)
		if got := truth[k]; got != uint64(want) {
			t.Errorf("rank %d: truth=%d want %d", rank, got, want)
		}
	}
	if s.Total() != 16 {
		t.Errorf("Total=%d want 16", s.Total())
	}
	if s.Distinct() != 3 {
		t.Errorf("Distinct=%d want 3", s.Distinct())
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := Zipf(5000, 500, 1.0, 42)
	b := Zipf(5000, 500, 1.0, 42)
	if len(a.Items) != len(b.Items) {
		t.Fatal("lengths differ")
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatalf("item %d differs", i)
		}
	}
	c := Zipf(5000, 500, 1.0, 43)
	same := true
	for i := range a.Items {
		if a.Items[i] != c.Items[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestTraceStandInStatistics(t *testing.T) {
	const n = 200000
	cases := []struct {
		s           *Stream
		minDistinct int
		maxDistinct int
	}{
		{IPTrace(n, 1), n * 3 / 100, n * 5 / 100},
		{WebStream(n, 1), n * 2 / 100, n * 4 / 100},
		{DataCenter(n, 1), n * 9 / 100, n * 11 / 100},
		{Hadoop(n, 1), n / 1000, n / 100},
	}
	for _, c := range cases {
		d := c.s.Distinct()
		if d < c.minDistinct || d > c.maxDistinct {
			t.Errorf("%s: distinct=%d want in [%d,%d]", c.s.Name, d, c.minDistinct, c.maxDistinct)
		}
		if c.s.Len() != n {
			t.Errorf("%s: len=%d want %d", c.s.Name, c.s.Len(), n)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ip", "web", "dc", "hadoop", "zipf0.3", "zipf3.0"} {
		s, ok := ByName(name, 10000, 1)
		if !ok || s == nil {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("nope", 1000, 1); ok {
		t.Error("ByName accepted unknown dataset")
	}
}

func TestByteWeighted(t *testing.T) {
	base := Zipf(10000, 1000, 1.0, 3)
	w := ByteWeighted(base, 3)
	if w.Len() != base.Len() {
		t.Fatal("length changed")
	}
	for i, it := range w.Items {
		if it.Key != base.Items[i].Key {
			t.Fatal("keys changed")
		}
		if it.Value < 64 || it.Value > 1500 {
			t.Fatalf("packet size %d out of [64,1500]", it.Value)
		}
	}
	// Bimodal mix: a substantial share of both 64B and 1500B packets.
	var small, big int
	for _, it := range w.Items {
		switch it.Value {
		case 64:
			small++
		case 1500:
			big++
		}
	}
	if small < w.Len()/4 || big < w.Len()/5 {
		t.Errorf("packet mix off: %d small, %d big of %d", small, big, w.Len())
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	// Three keys with weights 1, 2, 7 — draws should land near 10%, 20%, 70%.
	keys := []uint64{11, 22, 33}
	s := NewSampler(keys, []float64{1, 2, 7}, 5)
	const n = 100000
	counts := map[uint64]int{}
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	wants := map[uint64]float64{11: 0.1, 22: 0.2, 33: 0.7}
	for k, want := range wants {
		got := float64(counts[k]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("key %d: frequency %.3f want %.3f", k, got, want)
		}
	}
}

func TestSamplerZipfHeadDominates(t *testing.T) {
	s := NewZipfSampler(1000, 1.5, 9)
	st := s.Stream("zipf", 50000)
	truth := st.Truth()
	head := truth[keyForRank(0, 9)]
	if head < uint64(st.Len())/10 {
		t.Errorf("rank-1 key has only %d of %d items; skew=1.5 head should dominate", head, st.Len())
	}
}

func TestSamplerProperty(t *testing.T) {
	// Any sampler draw must return one of the configured keys.
	err := quick.Check(func(seed uint64, nw uint8) bool {
		n := int(nw%16) + 1
		keys := make([]uint64, n)
		weights := make([]float64, n)
		for i := range keys {
			keys[i] = uint64(i) * 1000
			weights[i] = float64(i%5) + 0.5
		}
		s := NewSampler(keys, weights, seed)
		for i := 0; i < 50; i++ {
			k := s.Next()
			if k%1000 != 0 || k >= uint64(n)*1000 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
