package stream

import "math/rand/v2"

// Sampler draws keys from a fixed discrete distribution in O(1) per draw
// using Walker's alias method. It backs the unbounded-stream examples and
// lets tests generate arbitrarily long Zipf streams without materializing
// frequency tables of the same length.
type Sampler struct {
	prob  []float64
	alias []int
	keys  []uint64
	r     *rand.Rand
}

// NewZipfSampler builds an alias sampler over `distinct` keys with Zipf
// weights of the given skew. Unlike math/rand's Zipf, any skew > 0 is
// supported (the paper evaluates skew 0.3, which stdlib cannot generate).
func NewZipfSampler(distinct int, skew float64, seed uint64) *Sampler {
	weights := make([]float64, distinct)
	for i := range weights {
		weights[i] = zipfWeight(i+1, skew)
	}
	keys := make([]uint64, distinct)
	for i := range keys {
		keys[i] = keyForRank(i, seed)
	}
	return NewSampler(keys, weights, seed)
}

// NewSampler builds an alias sampler over keys with the given positive
// weights. len(keys) must equal len(weights) and be ≥ 1.
func NewSampler(keys []uint64, weights []float64, seed uint64) *Sampler {
	n := len(weights)
	if n == 0 || n != len(keys) {
		panic("stream: sampler needs matching non-empty keys and weights")
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	// Walker's alias construction: split scaled probabilities into "small"
	// (<1) and "large" (≥1) work lists, pairing each small cell with a donor.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w / sum * float64(n)
	}
	prob := make([]float64, n)
	alias := make([]int, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		prob[i] = 1
		alias[i] = i
	}
	return &Sampler{prob: prob, alias: alias, keys: keys, r: rng(seed)}
}

// Next draws one key from the distribution.
func (s *Sampler) Next() uint64 {
	i := s.r.IntN(len(s.prob))
	if s.r.Float64() < s.prob[i] {
		return s.keys[i]
	}
	return s.keys[s.alias[i]]
}

// Stream materializes n draws into a Stream with unit values.
func (s *Sampler) Stream(name string, n int) *Stream {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: s.Next(), Value: 1}
	}
	return &Stream{Name: name, Items: items}
}
