package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// The on-disk stream format written by cmd/rsgen and consumed by the
// agent/replay tools: a flat sequence of little-endian (uint64 key,
// uint64 value) pairs, 16 bytes per item, no header. The format is
// deliberately trivial so external tools (tcpdump post-processors, trace
// converters) can produce it with a one-liner.

// itemBytes is the fixed on-disk size of one item.
const itemBytes = 16

// WriteFile writes s to path in the binary stream format.
func WriteFile(path string, s *Stream) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("stream: create %s: %w", path, err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := Encode(w, s); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("stream: flush %s: %w", path, err)
	}
	return f.Close()
}

// Encode writes s's items to w.
func Encode(w io.Writer, s *Stream) error {
	var buf [itemBytes]byte
	for i, it := range s.Items {
		binary.LittleEndian.PutUint64(buf[0:8], it.Key)
		binary.LittleEndian.PutUint64(buf[8:16], it.Value)
		if _, err := w.Write(buf[:]); err != nil {
			return fmt.Errorf("stream: writing item %d: %w", i, err)
		}
	}
	return nil
}

// ReadFile loads a binary stream written by WriteFile / cmd/rsgen.
// The stream's name is the file path.
func ReadFile(path string) (*Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stream: open %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("stream: stat %s: %w", path, err)
	}
	if st.Size()%itemBytes != 0 {
		return nil, fmt.Errorf("stream: %s has %d bytes, not a multiple of %d", path, st.Size(), itemBytes)
	}
	s, err := Decode(bufio.NewReaderSize(f, 1<<20), int(st.Size()/itemBytes))
	if err != nil {
		return nil, fmt.Errorf("stream: %s: %w", path, err)
	}
	s.Name = path
	return s, nil
}

// Decode reads exactly n items from r (pass n < 0 to read until EOF).
func Decode(r io.Reader, n int) (*Stream, error) {
	var items []Item
	if n >= 0 {
		items = make([]Item, 0, n)
	}
	var buf [itemBytes]byte
	for n < 0 || len(items) < n {
		_, err := io.ReadFull(r, buf[:])
		if err == io.EOF && n < 0 {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("decoding item %d: %w", len(items), err)
		}
		items = append(items, Item{
			Key:   binary.LittleEndian.Uint64(buf[0:8]),
			Value: binary.LittleEndian.Uint64(buf[8:16]),
		})
	}
	return &Stream{Name: "decoded", Items: items}, nil
}
