// Package stream provides the workload substrate for all experiments: Zipf
// generators, synthetic stand-ins for the paper's four real-world traces,
// byte-weighted (v ≠ 1) streams, and ground-truth accounting.
//
// The paper evaluates on license-gated traces (CAIDA, FIMI web documents, a
// university data-center capture, a Hadoop cluster capture). Per the
// substitution policy in DESIGN.md §3, each is replaced by a seeded synthetic
// stream matching the published item count, distinct-key count, and skew
// shape; every accuracy metric in the evaluation depends only on that
// frequency distribution.
package stream

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/hash"
)

// Item is one stream element: a key and the value to add to its sum.
type Item struct {
	Key   uint64
	Value uint64
}

// Stream is a finite key-value stream plus its identity for experiment
// labeling. Streams are deterministic for a given generator and seed.
type Stream struct {
	Name  string
	Items []Item

	truth map[uint64]uint64 // lazily built ground truth
	total uint64
}

// Truth returns the exact value sum per key (computed once and cached).
func (s *Stream) Truth() map[uint64]uint64 {
	if s.truth == nil {
		s.truth = make(map[uint64]uint64, len(s.Items)/8)
		for _, it := range s.Items {
			s.truth[it.Key] += it.Value
			s.total += it.Value
		}
	}
	return s.truth
}

// Total returns N = Σ f(e), the L1 norm of the stream.
func (s *Stream) Total() uint64 {
	s.Truth()
	return s.total
}

// Distinct returns the number of distinct keys.
func (s *Stream) Distinct() int { return len(s.Truth()) }

// Len returns the number of items.
func (s *Stream) Len() int { return len(s.Items) }

// rng builds the deterministic generator used throughout the package.
func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// keyForRank derives a well-mixed 64-bit key for a frequency rank, so that
// synthetic keys behave like hashed flow identifiers rather than small
// consecutive integers.
func keyForRank(rank int, seed uint64) uint64 {
	return hash.U64(uint64(rank)+1, seed^0x5bf03635)
}

// FromFrequencies builds a stream whose per-key frequencies are exactly
// freqs (freqs[i] items for the key of rank i), with arrival order shuffled
// deterministically. This gives experiments exact control over the frequency
// distribution, which is the property all accuracy metrics depend on.
func FromFrequencies(name string, freqs []int, seed uint64) *Stream {
	n := 0
	for _, f := range freqs {
		n += f
	}
	items := make([]Item, 0, n)
	for rank, f := range freqs {
		k := keyForRank(rank, seed)
		for j := 0; j < f; j++ {
			items = append(items, Item{Key: k, Value: 1})
		}
	}
	r := rng(seed ^ 0xc0ffee)
	r.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return &Stream{Name: name, Items: items}
}

// ZipfFrequencies returns per-rank frequencies for n total items over
// `distinct` keys following a Zipf law with the given skew: f_i ∝ 1/i^skew,
// rounded so every key appears at least once and the total is exactly n.
// Requires n ≥ distinct ≥ 1.
func ZipfFrequencies(n, distinct int, skew float64) []int {
	if distinct < 1 {
		panic("stream: distinct must be ≥ 1")
	}
	if n < distinct {
		panic(fmt.Sprintf("stream: n=%d < distinct=%d", n, distinct))
	}
	weights := make([]float64, distinct)
	var sum float64
	for i := range weights {
		weights[i] = zipfWeight(i+1, skew)
		sum += weights[i]
	}
	freqs := make([]int, distinct)
	assigned := 0
	for i, w := range weights {
		f := int(float64(n) * w / sum)
		if f < 1 {
			f = 1
		}
		freqs[i] = f
		assigned += f
	}
	// Fix rounding drift on the head of the distribution, keeping every
	// frequency ≥ 1.
	i := 0
	for assigned > n {
		if freqs[i] > 1 {
			freqs[i]--
			assigned--
		}
		i = (i + 1) % distinct
	}
	for assigned < n {
		freqs[assigned%distinct]++
		assigned++
	}
	return freqs
}

// Zipf builds a stream of n items over `distinct` keys with the given skew.
func Zipf(n, distinct int, skew float64, seed uint64) *Stream {
	name := fmt.Sprintf("Zipf(skew=%.1f)", skew)
	return FromFrequencies(name, ZipfFrequencies(n, distinct, skew), seed)
}

func zipfWeight(rank int, skew float64) float64 {
	return math.Pow(1/float64(rank), skew)
}
