package stream

import "testing"

func sameMultiset(t *testing.T, a, b *Stream) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	ta, tb := map[uint64]uint64{}, map[uint64]uint64{}
	for _, it := range a.Items {
		ta[it.Key] += it.Value
	}
	for _, it := range b.Items {
		tb[it.Key] += it.Value
	}
	if len(ta) != len(tb) {
		t.Fatalf("distinct keys differ: %d vs %d", len(ta), len(tb))
	}
	for k, v := range ta {
		if tb[k] != v {
			t.Fatalf("key %d: %d vs %d", k, v, tb[k])
		}
	}
}

func TestReorderingsPreserveMultiset(t *testing.T) {
	s := Zipf(20_000, 2_000, 1.0, 5)
	for _, r := range []*Stream{
		SortedByKey(s), HeavyFirst(s), MiceFirst(s), Bursty(s, 16, 5),
	} {
		sameMultiset(t, s, r)
	}
}

func TestSortedByKeyGroups(t *testing.T) {
	s := Zipf(5_000, 500, 1.0, 6)
	sorted := SortedByKey(s)
	for i := 1; i < sorted.Len(); i++ {
		if sorted.Items[i].Key < sorted.Items[i-1].Key {
			t.Fatal("not sorted by key")
		}
	}
}

func TestHeavyAndMiceFirstOrdering(t *testing.T) {
	s := Zipf(10_000, 1_000, 1.5, 7)
	truth := s.Truth()
	hf := HeavyFirst(s)
	if truth[hf.Items[0].Key] < truth[hf.Items[hf.Len()-1].Key] {
		t.Error("HeavyFirst does not lead with the heaviest key")
	}
	mf := MiceFirst(s)
	if truth[mf.Items[0].Key] > truth[mf.Items[mf.Len()-1].Key] {
		t.Error("MiceFirst does not lead with the lightest key")
	}
}

func TestBurstyRunsAreBursts(t *testing.T) {
	s := Zipf(10_000, 100, 1.0, 8)
	b := Bursty(s, 32, 8)
	// Count consecutive same-key run lengths: with burst 32 and ~100 items
	// per key, mean run length must far exceed the uniform shuffle's ≈1.
	runs, runLen := 0, 0
	var prev uint64
	for i, it := range b.Items {
		if i == 0 || it.Key != prev {
			runs++
		}
		prev = it.Key
	}
	runLen = b.Len() / runs
	if runLen < 8 {
		t.Errorf("mean run length %d; bursts of 32 expected", runLen)
	}
	if Bursty(s, 0, 1).Len() != s.Len() {
		t.Error("burst<1 clamp broken")
	}
}
