package stream

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	s := Zipf(5000, 500, 1.0, 9)
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != path {
		t.Errorf("Name=%q want %q", got.Name, path)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len=%d want %d", got.Len(), s.Len())
	}
	for i := range s.Items {
		if got.Items[i] != s.Items[i] {
			t.Fatalf("item %d differs", i)
		}
	}
}

func TestFileSize(t *testing.T) {
	s := Zipf(1000, 100, 1.0, 1)
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != int64(s.Len())*itemBytes {
		t.Errorf("file size %d, want %d", st.Size(), s.Len()*itemBytes)
	}
}

func TestReadFileRejectsCorruptLength(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.bin")
	if err := os.WriteFile(path, []byte("not sixteen"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted a non-multiple-of-16 file")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("ReadFile accepted a missing file")
	}
}

func TestDecodeUntilEOF(t *testing.T) {
	s := Zipf(100, 10, 1.0, 2)
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 100 {
		t.Errorf("decoded %d items, want 100", got.Len())
	}
}

func TestDecodeTruncatedMidItem(t *testing.T) {
	s := Zipf(10, 5, 1.0, 3)
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		t.Fatal(err)
	}
	trunc := strings.NewReader(string(buf.Bytes()[:buf.Len()-7]))
	if _, err := Decode(trunc, -1); err == nil {
		t.Error("Decode accepted a mid-item truncation")
	}
}
