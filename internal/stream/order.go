package stream

import (
	"cmp"
	"math/rand/v2"
	"slices"
)

// Arrival-order transformations. The paper's analysis (§4, Theorem 1) is
// explicitly time-order-independent: the certified-interval guarantee must
// hold for ANY arrival order of the same multiset of items. These
// reorderings let tests exercise that claim under adversarial schedules.

// Reordered returns a copy of s with items arranged by the given order
// function (which permutes indices in place).
func reordered(s *Stream, name string, arrange func(items []Item)) *Stream {
	items := make([]Item, len(s.Items))
	copy(items, s.Items)
	arrange(items)
	return &Stream{Name: s.Name + " (" + name + ")", Items: items}
}

// SortedByKey groups all items of each key together (ascending key order)
// — the schedule that maximizes bucket takeover churn.
func SortedByKey(s *Stream) *Stream {
	return reordered(s, "key-sorted", func(items []Item) {
		slices.SortStableFunc(items, func(a, b Item) int { return cmp.Compare(a.Key, b.Key) })
	})
}

// HeavyFirst plays all items of the heaviest keys before any mice — the
// schedule that fills buckets with strong candidates early.
func HeavyFirst(s *Stream) *Stream {
	truth := s.Truth()
	return reordered(s, "heavy-first", func(items []Item) {
		slices.SortStableFunc(items, func(a, b Item) int {
			if c := cmp.Compare(truth[b.Key], truth[a.Key]); c != 0 {
				return c
			}
			return cmp.Compare(a.Key, b.Key)
		})
	})
}

// MiceFirst is the reverse: all mice traffic precedes the elephants — the
// schedule that locks first-layer buckets before heavy keys arrive (the
// §3.3 motivation for the mice filter).
func MiceFirst(s *Stream) *Stream {
	truth := s.Truth()
	return reordered(s, "mice-first", func(items []Item) {
		slices.SortStableFunc(items, func(a, b Item) int {
			if c := cmp.Compare(truth[a.Key], truth[b.Key]); c != 0 {
				return c
			}
			return cmp.Compare(a.Key, b.Key)
		})
	})
}

// Bursty interleaves traffic in per-key bursts of the given size: keys
// emit `burst` consecutive items before yielding, modeling flowlet-style
// arrivals rather than uniform interleaving.
func Bursty(s *Stream, burst int, seed uint64) *Stream {
	if burst < 1 {
		burst = 1
	}
	// Collect per-key queues, then round-robin with random key order,
	// draining `burst` items per visit.
	queues := map[uint64][]Item{}
	var keys []uint64
	for _, it := range s.Items {
		if _, ok := queues[it.Key]; !ok {
			keys = append(keys, it.Key)
		}
		queues[it.Key] = append(queues[it.Key], it)
	}
	r := rand.New(rand.NewPCG(seed, seed^0xb0b5))
	items := make([]Item, 0, len(s.Items))
	for len(keys) > 0 {
		i := r.IntN(len(keys))
		k := keys[i]
		q := queues[k]
		n := burst
		if n > len(q) {
			n = len(q)
		}
		items = append(items, q[:n]...)
		queues[k] = q[n:]
		if len(queues[k]) == 0 {
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
		}
	}
	return &Stream{Name: s.Name + " (bursty)", Items: items}
}
