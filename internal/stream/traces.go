package stream

import "math/rand/v2"

// Scale controls how large the synthetic trace stand-ins are relative to the
// paper's 10M-item captures. The paper's published ratios of distinct keys to
// items are preserved at every scale; the default harness scale is 1/10 so
// the full evaluation fits a laptop time budget, and `-scale full` in
// cmd/rsbench restores 10M.
type Scale struct {
	// Items is the stream length to generate.
	Items int
}

// DefaultScale is the laptop-friendly default (1M items).
var DefaultScale = Scale{Items: 1_000_000}

// PaperScale reproduces the paper's 10M-item traces.
var PaperScale = Scale{Items: 10_000_000}

// The four trace stand-ins below match the paper's §6.1.2 statistics:
//
//	IP Trace:    10M packets, ~0.4M distinct keys (CAIDA src+dst IP)
//	Web Stream:  10M items,  ~0.3M distinct keys (spidered HTML documents)
//	Data Center: 10M packets, ~1M  distinct keys (university DC, flat-ish)
//	Hadoop:      10M packets, ~20K distinct keys (highly concentrated)
//
// Skews are chosen so the head/tail shape is plausible for each source:
// Internet backbone traffic is strongly heavy-tailed, data-center traffic is
// flatter, Hadoop shuffle traffic concentrates on few flows.

// IPTrace is the default dataset: a CAIDA-like backbone trace stand-in.
func IPTrace(n int, seed uint64) *Stream {
	s := FromFrequencies("IP Trace", ZipfFrequencies(n, n*4/100, 1.1), seed)
	return s
}

// WebStream models the FIMI web-document stream.
func WebStream(n int, seed uint64) *Stream {
	return FromFrequencies("Web Stream", ZipfFrequencies(n, n*3/100, 1.2), seed)
}

// DataCenter models the university data-center capture: many flows, flatter
// distribution.
func DataCenter(n int, seed uint64) *Stream {
	return FromFrequencies("Data Center", ZipfFrequencies(n, n*10/100, 0.8), seed)
}

// Hadoop models the Hadoop cluster capture: very few, very heavy flows.
func Hadoop(n int, seed uint64) *Stream {
	distinct := n / 500 // 20K distinct per 10M items
	if distinct < 10 {
		distinct = 10
	}
	return FromFrequencies("Hadoop", ZipfFrequencies(n, distinct, 1.4), seed)
}

// ByName returns the named dataset generator, for CLI use. Names match the
// paper's figures: "ip", "web", "dc", "hadoop", plus "zipf0.3" and
// "zipf3.0".
func ByName(name string, n int, seed uint64) (*Stream, bool) {
	switch name {
	case "ip":
		return IPTrace(n, seed), true
	case "web":
		return WebStream(n, seed), true
	case "dc":
		return DataCenter(n, seed), true
	case "hadoop":
		return Hadoop(n, seed), true
	case "zipf0.3":
		return Zipf(n, n/10, 0.3, seed), true
	case "zipf3.0":
		return Zipf(n, n/10, 3.0, seed), true
	}
	return nil, false
}

// ByteWeighted returns a copy of s whose values are synthetic packet sizes
// in bytes instead of 1. Sizes follow the classic bimodal Internet mix:
// ~50% minimum-size packets (64B), ~40% MTU-size (1500B), the rest uniform
// in between. Used by the switch-testbed experiments (Figure 20), where the
// paper counts per-flow bytes and reports errors in Kbps.
func ByteWeighted(s *Stream, seed uint64) *Stream {
	r := rand.New(rand.NewPCG(seed, seed|1))
	items := make([]Item, len(s.Items))
	for i, it := range s.Items {
		var size uint64
		switch p := r.Float64(); {
		case p < 0.5:
			size = 64
		case p < 0.9:
			size = 1500
		default:
			size = 64 + uint64(r.IntN(1436))
		}
		items[i] = Item{Key: it.Key, Value: size}
	}
	return &Stream{Name: s.Name + " (bytes)", Items: items}
}
