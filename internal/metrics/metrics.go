// Package metrics implements the paper's four evaluation metrics (§6.1.3):
// the number of outliers, Average Absolute Error (AAE), Average Relative
// Error (ARE), and throughput (Mpps), plus the frequent-key variants used by
// Figure 7 and the worst-of-k-trials aggregation used for the extreme
// confidence-level experiments.
package metrics

import (
	"sort"
	"time"

	"repro/internal/sketch"
	"repro/internal/stream"
)

// Report holds the accuracy metrics of one sketch over one stream.
type Report struct {
	Algorithm string
	// Outliers is the number of keys with |f̂(e) − f(e)| > Λ.
	Outliers int
	// AAE is the mean absolute error over all distinct keys.
	AAE float64
	// ARE is the mean relative error over all distinct keys.
	ARE float64
	// MaxAbsErr is the largest absolute error over all keys.
	MaxAbsErr uint64
	// Keys is the number of distinct keys evaluated.
	Keys int
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Evaluate queries every distinct key of s against sk and computes the
// accuracy metrics for error tolerance lambda.
func Evaluate(sk sketch.Sketch, s *stream.Stream, lambda uint64) Report {
	truth := s.Truth()
	r := Report{Algorithm: sk.Name(), Keys: len(truth)}
	var sumAbs float64
	var sumRel float64
	for key, f := range truth {
		est := sk.Query(key)
		d := absDiff(est, f)
		if d > lambda {
			r.Outliers++
		}
		if d > r.MaxAbsErr {
			r.MaxAbsErr = d
		}
		sumAbs += float64(d)
		sumRel += float64(d) / float64(f)
	}
	r.AAE = sumAbs / float64(len(truth))
	r.ARE = sumRel / float64(len(truth))
	return r
}

// FrequentKeyOutliers counts outliers among keys whose true sum exceeds the
// frequency threshold T (Figure 7's "frequent keys"). It returns the number
// of frequent keys and how many of them are outliers for tolerance lambda.
func FrequentKeyOutliers(sk sketch.Sketch, s *stream.Stream, lambda, threshold uint64) (frequent, outliers int) {
	for key, f := range s.Truth() {
		if f <= threshold {
			continue
		}
		frequent++
		if absDiff(sk.Query(key), f) > lambda {
			outliers++
		}
	}
	return frequent, outliers
}

// Feed inserts the whole stream into sk and returns the elapsed wall time.
// Ingestion goes through the batch path: sketches implementing
// sketch.BatchInserter get their native bulk insertion (identical
// estimates, amortized hashing), everything else the item-at-a-time
// fallback. Experiments that measure the per-operation path itself
// (Figure 16's hash-call accounting) feed their sketches explicitly.
func Feed(sk sketch.Sketch, s *stream.Stream) time.Duration {
	start := time.Now()
	sketch.InsertBatch(sk, s.Items)
	return time.Since(start)
}

// Mpps converts an operation count and duration into millions of operations
// per second, the throughput unit used throughout the paper.
func Mpps(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1e6
}

// QueryAll queries every distinct key once and returns the elapsed time and
// the number of queries issued. The checksum defeats dead-code elimination.
func QueryAll(sk sketch.Sketch, s *stream.Stream) (time.Duration, int) {
	truth := s.Truth()
	start := time.Now()
	var sink uint64
	for key := range truth {
		sink ^= sk.Query(key)
	}
	elapsed := time.Since(start)
	_ = sink
	return elapsed, len(truth)
}

// queryBatchChunk is the batch size QueryAllBatch issues — the same shape
// a /v2/query serving batch has, so the measured amortization is the one
// the query plane actually delivers.
const queryBatchChunk = 256

// QueryAllBatch queries every distinct key once through the batch read
// path (sketch.QueryBatch, in 256-key chunks) and returns the elapsed time
// and the number of queries answered — the batch-side counterpart of
// QueryAll, analogous to Feed vs per-item insertion. The checksum defeats
// dead-code elimination.
func QueryAllBatch(sk sketch.Sketch, s *stream.Stream) (time.Duration, int) {
	truth := s.Truth()
	keys := make([]uint64, 0, len(truth))
	for key := range truth {
		keys = append(keys, key)
	}
	est := make([]uint64, len(keys))
	start := time.Now()
	for lo := 0; lo < len(keys); lo += queryBatchChunk {
		hi := lo + queryBatchChunk
		if hi > len(keys) {
			hi = len(keys)
		}
		sketch.QueryBatch(sk, keys[lo:hi], est[lo:hi], nil)
	}
	elapsed := time.Since(start)
	var sink uint64
	for _, e := range est {
		sink ^= e
	}
	_ = sink
	return elapsed, len(keys)
}

// ErrorDistribution returns all per-key absolute errors sorted in descending
// order, the series plotted by Figure 19b.
func ErrorDistribution(sk sketch.Sketch, s *stream.Stream) []uint64 {
	truth := s.Truth()
	errs := make([]uint64, 0, len(truth))
	for key, f := range truth {
		errs = append(errs, absDiff(sk.Query(key), f))
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i] > errs[j] })
	return errs
}

// WorstOutliers runs trials sketches (built by factory with per-trial seeds)
// over s and returns the worst (maximum) outlier count observed — the
// paper's Figure 7 methodology of 100 repeated experiments with varying hash
// seeds, reporting the worst case.
func WorstOutliers(build func(trial int) sketch.Sketch, s *stream.Stream, lambda uint64, trials int) int {
	worst := 0
	for t := 0; t < trials; t++ {
		sk := build(t)
		Feed(sk, s)
		r := Evaluate(sk, s, lambda)
		if r.Outliers > worst {
			worst = r.Outliers
		}
	}
	return worst
}

// SensedErrorReport compares the certified (sensed) error of an
// ErrorBounded sketch against the actual error, per key. Used by Figures 17
// and 18.
type SensedErrorReport struct {
	// MeanSensed is the average reported MPE over all keys.
	MeanSensed float64
	// MeanActual is the average actual absolute error.
	MeanActual float64
	// Violations counts keys whose true value falls outside
	// [est − mpe, est] — zero unless an insertion failure occurred with the
	// emergency layer disabled.
	Violations int
}

// SensedError evaluates the error-sensing ability of sk over s.
func SensedError(sk sketch.ErrorBounded, s *stream.Stream) SensedErrorReport {
	truth := s.Truth()
	var rep SensedErrorReport
	var sumSensed, sumActual float64
	for key, f := range truth {
		est, mpe := sk.QueryWithError(key)
		sumSensed += float64(mpe)
		sumActual += float64(absDiff(est, f))
		if f > est || f+mpe < est {
			rep.Violations++
		}
	}
	n := float64(len(truth))
	rep.MeanSensed = sumSensed / n
	rep.MeanActual = sumActual / n
	return rep
}
