package metrics

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
)

// exact is a map-backed oracle sketch used to validate the metrics
// themselves.
type exact struct {
	m    map[uint64]uint64
	bias uint64 // constant overestimate added to every query
}

func newExact(bias uint64) *exact { return &exact{m: map[uint64]uint64{}, bias: bias} }

func (e *exact) Insert(k, v uint64) { e.m[k] += v }
func (e *exact) Query(k uint64) uint64 {
	return e.m[k] + e.bias
}
func (e *exact) MemoryBytes() int { return len(e.m) * 16 }
func (e *exact) Name() string     { return "exact" }

// bounded wraps exact with an ErrorBounded interface reporting its bias.
type bounded struct{ *exact }

func (b bounded) QueryWithError(k uint64) (uint64, uint64) {
	return b.exact.Query(k), b.exact.bias
}

var _ sketch.Sketch = (*exact)(nil)
var _ sketch.ErrorBounded = bounded{}

func testStream(t *testing.T) *stream.Stream {
	t.Helper()
	return stream.Zipf(20000, 2000, 1.0, 11)
}

func TestEvaluateExactSketch(t *testing.T) {
	s := testStream(t)
	sk := newExact(0)
	Feed(sk, s)
	r := Evaluate(sk, s, 0)
	if r.Outliers != 0 {
		t.Errorf("exact sketch reported %d outliers", r.Outliers)
	}
	if r.AAE != 0 || r.ARE != 0 || r.MaxAbsErr != 0 {
		t.Errorf("exact sketch has nonzero error: %+v", r)
	}
	if r.Keys != s.Distinct() {
		t.Errorf("Keys=%d want %d", r.Keys, s.Distinct())
	}
}

func TestEvaluateBiasedSketch(t *testing.T) {
	s := testStream(t)
	sk := newExact(10)
	Feed(sk, s)
	// Every key is off by exactly 10.
	r := Evaluate(sk, s, 9)
	if r.Outliers != s.Distinct() {
		t.Errorf("lambda=9: outliers=%d want all %d", r.Outliers, s.Distinct())
	}
	r = Evaluate(sk, s, 10)
	if r.Outliers != 0 {
		t.Errorf("lambda=10: outliers=%d want 0", r.Outliers)
	}
	if r.AAE != 10 {
		t.Errorf("AAE=%f want 10", r.AAE)
	}
	if r.MaxAbsErr != 10 {
		t.Errorf("MaxAbsErr=%d want 10", r.MaxAbsErr)
	}
}

func TestFrequentKeyOutliers(t *testing.T) {
	s := testStream(t)
	sk := newExact(5)
	Feed(sk, s)
	freq, out := FrequentKeyOutliers(sk, s, 4, 100)
	// Count frequent keys independently.
	want := 0
	for _, f := range s.Truth() {
		if f > 100 {
			want++
		}
	}
	if freq != want {
		t.Errorf("frequent=%d want %d", freq, want)
	}
	if out != want {
		t.Errorf("every frequent key is off by 5 > 4; outliers=%d want %d", out, want)
	}
	_, out = FrequentKeyOutliers(sk, s, 5, 100)
	if out != 0 {
		t.Errorf("lambda=5: outliers=%d want 0", out)
	}
}

func TestErrorDistributionSorted(t *testing.T) {
	s := testStream(t)
	sk := newExact(0)
	Feed(sk, s)
	// Perturb: make one key very wrong by inserting extra.
	sk.Insert(s.Items[0].Key, 1000)
	errs := ErrorDistribution(sk, s)
	if len(errs) != s.Distinct() {
		t.Fatalf("len=%d want %d", len(errs), s.Distinct())
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1] {
			t.Fatalf("not descending at %d", i)
		}
	}
	if errs[0] != 1000 {
		t.Errorf("max error=%d want 1000", errs[0])
	}
}

func TestWorstOutliers(t *testing.T) {
	s := testStream(t)
	// Trial 0 is exact, trial 1 is biased: worst must report the biased one.
	worst := WorstOutliers(func(trial int) sketch.Sketch {
		sk := newExact(uint64(trial) * 100)
		return sk
	}, s, 50, 2)
	if worst != s.Distinct() {
		t.Errorf("worst=%d want %d", worst, s.Distinct())
	}
}

func TestSensedError(t *testing.T) {
	s := testStream(t)
	sk := newExact(7)
	Feed(sk, s)
	rep := SensedError(bounded{sk}, s)
	if rep.Violations != 0 {
		t.Errorf("violations=%d want 0 (bias ≤ reported MPE)", rep.Violations)
	}
	if rep.MeanSensed != 7 || rep.MeanActual != 7 {
		t.Errorf("sensed=%.1f actual=%.1f want 7/7", rep.MeanSensed, rep.MeanActual)
	}
	// Under-reporting sketch: actual bias 7 but claims MPE 3.
	lying := lyingBounded{newExact(7)}
	Feed(lying.exact, s)
	rep = SensedError(lying, s)
	if rep.Violations != s.Distinct() {
		t.Errorf("violations=%d want %d for under-reporting sketch", rep.Violations, s.Distinct())
	}
}

// lyingBounded reports an MPE smaller than its actual bias.
type lyingBounded struct{ *exact }

func (l lyingBounded) QueryWithError(k uint64) (uint64, uint64) {
	return l.exact.Query(k), l.exact.bias / 2
}

func TestMpps(t *testing.T) {
	if got := Mpps(1_000_000, 1e9); got < 0.99 || got > 1.01 {
		t.Errorf("Mpps(1M, 1s)=%f want 1", got)
	}
	if Mpps(100, 0) != 0 {
		t.Error("Mpps with zero duration should be 0")
	}
}

func TestQueryAll(t *testing.T) {
	s := testStream(t)
	sk := newExact(0)
	Feed(sk, s)
	_, n := QueryAll(sk, s)
	if n != s.Distinct() {
		t.Errorf("queried %d keys, want %d", n, s.Distinct())
	}
}
