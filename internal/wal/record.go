package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/ingest"
	"repro/internal/stream"
)

// On-disk layout.
//
// Segment files are named wal-%016d.seg, the number being the LSN of the
// segment's first record — a record's LSN is its ordinal position, never
// stored per record. Each segment starts with a 12-byte header:
//
//	magic "RWL1" | first LSN (8 bytes little-endian)
//
// followed by length-framed records:
//
//	payload length (4 bytes LE) | CRC32-C of payload (4 bytes LE) | payload
//
// The payload is the typed ingest.Batch in uvarints: source, epoch, item
// count, then key/value pairs. The CRC is the torn-tail detector: a crash
// mid-write leaves a frame whose checksum cannot match, and recovery
// truncates to the last whole record instead of ever replaying a partial
// batch.

var segmentMagic = [4]byte{'R', 'W', 'L', '1'}

const (
	segmentHeaderLen = 12
	frameHeaderLen   = 8
	// maxRecordBytes bounds a frame's declared length: anything larger is
	// treated as a torn tail, not an allocation request. Comfortably above
	// the HTTP ingest body cap.
	maxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segmentName renders the file name of the segment starting at lsn.
func segmentName(lsn uint64) string { return fmt.Sprintf("wal-%016d.seg", lsn) }

// parseSegmentName inverts segmentName; ok is false for foreign files.
func parseSegmentName(name string) (uint64, bool) {
	var lsn uint64
	if _, err := fmt.Sscanf(name, "wal-%016d.seg", &lsn); err != nil || segmentName(lsn) != name {
		return 0, false
	}
	return lsn, true
}

// writeSegmentHeader stamps a segment file's header and positions the file
// for the first record.
func writeSegmentHeader(f *os.File, first uint64) error {
	var hdr [segmentHeaderLen]byte
	copy(hdr[:4], segmentMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:], first)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if _, err := f.Seek(segmentHeaderLen, 0); err != nil {
		return err
	}
	return nil
}

// checkSegmentHeader validates a segment's 12-byte header against the LSN
// its file name claims.
func checkSegmentHeader(hdr []byte, wantFirst uint64) error {
	if len(hdr) < segmentHeaderLen || [4]byte(hdr[:4]) != segmentMagic {
		return fmt.Errorf("wal: bad segment magic %q", hdr[:min(len(hdr), 4)])
	}
	if got := binary.LittleEndian.Uint64(hdr[4:]); got != wantFirst {
		return fmt.Errorf("wal: segment header claims first LSN %d, file name says %d", got, wantFirst)
	}
	return nil
}

// appendRecord encodes one framed record onto dst.
func appendRecord(dst []byte, b ingest.Batch) []byte {
	frameAt := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	payloadAt := len(dst)
	dst = binary.AppendUvarint(dst, b.Source)
	dst = binary.AppendUvarint(dst, b.Epoch)
	dst = binary.AppendUvarint(dst, uint64(len(b.Items)))
	for _, it := range b.Items {
		dst = binary.AppendUvarint(dst, it.Key)
		dst = binary.AppendUvarint(dst, it.Value)
	}
	payload := dst[payloadAt:]
	binary.LittleEndian.PutUint32(dst[frameAt:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[frameAt+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// decodeRecord parses a CRC-verified payload back into the typed batch.
func decodeRecord(payload []byte) (ingest.Batch, error) {
	var b ingest.Batch
	next := func() (uint64, error) {
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return 0, fmt.Errorf("wal: record payload truncated despite valid CRC")
		}
		payload = payload[n:]
		return v, nil
	}
	var err error
	if b.Source, err = next(); err != nil {
		return b, err
	}
	if b.Epoch, err = next(); err != nil {
		return b, err
	}
	count, err := next()
	if err != nil {
		return b, err
	}
	// Each item is ≥ 2 bytes; a count beyond the remaining payload is
	// corruption that slipped a CRC collision — refuse, don't allocate.
	if count > uint64(len(payload)) {
		return b, fmt.Errorf("wal: record claims %d items in %d payload bytes", count, len(payload))
	}
	b.Items = make([]stream.Item, count)
	for i := range b.Items {
		if b.Items[i].Key, err = next(); err != nil {
			return b, err
		}
		if b.Items[i].Value, err = next(); err != nil {
			return b, err
		}
	}
	return b, nil
}
