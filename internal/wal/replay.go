package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/ingest"
)

// scanSegment walks a segment validating every frame, returning the number
// of whole records, the byte offset of the last whole record's end, and how
// many bytes past it are torn (partial frame, implausible length, or CRC
// mismatch — everything from the first bad frame on is untrusted, because
// record boundaries past it cannot be known).
func scanSegment(path string, wantFirst uint64) (records int, validBytes, tornBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, 0, err
	}
	size := fi.Size()
	br := bufio.NewReaderSize(f, 256<<10)
	var hdr [segmentHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		// Shorter than a header: the crash interrupted segment creation.
		return 0, 0, size, nil
	}
	if err := checkSegmentHeader(hdr[:], wantFirst); err != nil {
		return 0, 0, 0, err
	}
	offset := int64(segmentHeaderLen)
	var frame [frameHeaderLen]byte
	payload := make([]byte, 0, 64<<10)
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return records, offset, 0, nil // clean end
			}
			return records, offset, size - offset, nil // partial frame header
		}
		n := binary.LittleEndian.Uint32(frame[:4])
		crc := binary.LittleEndian.Uint32(frame[4:])
		if int64(n) > maxRecordBytes || offset+frameHeaderLen+int64(n) > size {
			return records, offset, size - offset, nil // implausible or past EOF
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return records, offset, size - offset, nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return records, offset, size - offset, nil // torn or corrupt record
		}
		records++
		offset += frameHeaderLen + int64(n)
	}
}

// Replay feeds every record with LSN strictly greater than after to fn, in
// append order — the recovery path: fn is typically a Submit into the same
// ingest pipeline live traffic takes, followed by a Drain. Call it after
// Open and before the first Append; appends are excluded for the duration.
// A CRC failure inside a sealed segment (mid-log corruption, not a torn
// tail — Open already truncated that) is a hard error: whole durable
// segments are never silently skipped.
func (l *Log) Replay(after uint64, fn func(b ingest.Batch, lsn uint64) error) (replayed uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: log is closed")
	}
	end := l.nextLSN // records on disk are exactly [segs[0].first, end)
	for i, seg := range l.segs {
		segEnd := end
		if i+1 < len(l.segs) {
			segEnd = l.segs[i+1].first
		}
		if segEnd <= after+1 {
			continue // every record in this segment is checkpoint-covered
		}
		n, err := l.replaySegment(seg, segEnd, after, fn)
		replayed += n
		if err != nil {
			return replayed, err
		}
	}
	l.replayed.Add(replayed)
	return replayed, nil
}

// replaySegment streams one segment's records [seg.first, segEnd) through
// fn, skipping those at or below after.
func (l *Log) replaySegment(seg segment, segEnd, after uint64, fn func(ingest.Batch, uint64) error) (uint64, error) {
	f, err := os.Open(filepath.Join(l.opts.Dir, seg.name))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256<<10)
	var hdr [segmentHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: %s: reading header: %w", seg.name, err)
	}
	if err := checkSegmentHeader(hdr[:], seg.first); err != nil {
		return 0, err
	}
	var replayed uint64
	var frame [frameHeaderLen]byte
	payload := make([]byte, 0, 64<<10)
	for lsn := seg.first; lsn < segEnd; lsn++ {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return replayed, fmt.Errorf("wal: %s: record %d: %w", seg.name, lsn, err)
		}
		n := binary.LittleEndian.Uint32(frame[:4])
		crc := binary.LittleEndian.Uint32(frame[4:])
		if int64(n) > maxRecordBytes {
			return replayed, fmt.Errorf("wal: %s: record %d claims %d bytes", seg.name, lsn, n)
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return replayed, fmt.Errorf("wal: %s: record %d payload: %w", seg.name, lsn, err)
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return replayed, fmt.Errorf("wal: %s: record %d fails its CRC (mid-log corruption)", seg.name, lsn)
		}
		if lsn <= after {
			continue
		}
		b, err := decodeRecord(payload)
		if err != nil {
			return replayed, fmt.Errorf("wal: %s: record %d: %w", seg.name, lsn, err)
		}
		if err := fn(b, lsn); err != nil {
			return replayed, err
		}
		replayed++
	}
	return replayed, nil
}
