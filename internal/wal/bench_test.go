package wal

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/stream"
)

// BenchmarkWALAppend prices the durability policies against each other: how
// much a per-batch fsync costs relative to amortizing it over a group-commit
// interval, and what the pure write path costs with fsync off. Batches are
// 64 items — a typical agent flush fragment — and b.N appends stream into
// one log.
func BenchmarkWALAppend(b *testing.B) {
	policies := []FsyncPolicy{
		{Mode: SyncEachBatch},
		{Mode: SyncGroup, Interval: 2 * time.Millisecond},
		{Mode: SyncOff},
	}
	items := make([]stream.Item, 64)
	for i := range items {
		items[i] = stream.Item{Key: uint64(i * 7919), Value: 1}
	}
	for _, p := range policies {
		b.Run(fmt.Sprintf("fsync=%s", p), func(b *testing.B) {
			l, err := Open(Options{Dir: b.TempDir(), Fsync: p})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			batch := ingest.Batch{Items: items, Source: 1}
			b.SetBytes(int64(len(items)) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALAppendParallel measures group commit under contention — the
// policy's reason to exist: many producers share each fsync.
func BenchmarkWALAppendParallel(b *testing.B) {
	items := make([]stream.Item, 64)
	for i := range items {
		items[i] = stream.Item{Key: uint64(i * 7919), Value: 1}
	}
	for _, p := range []FsyncPolicy{{Mode: SyncEachBatch}, {Mode: SyncGroup, Interval: 2 * time.Millisecond}} {
		b.Run(fmt.Sprintf("fsync=%s", p), func(b *testing.B) {
			l, err := Open(Options{Dir: b.TempDir(), Fsync: p})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			batch := ingest.Batch{Items: items, Source: 1}
			b.SetBytes(int64(len(items)) * 16)
			// Group commit amortizes across concurrent appenders, not CPUs:
			// force a real cohort even on single-core CI runners.
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.Append(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkWALReplay prices recovery: how fast a log streams back through a
// no-op consumer.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		b.Fatal(err)
	}
	items := make([]stream.Item, 64)
	for i := range items {
		items[i] = stream.Item{Key: uint64(i * 7919), Value: 1}
	}
	const records = 10000
	for i := 0; i < records; i++ {
		if _, err := l.Append(ingest.Batch{Items: items, Source: 1}); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(records * int64(len(items)) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rl, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncOff}})
		if err != nil {
			b.Fatal(err)
		}
		n, err := rl.Replay(0, func(ingest.Batch, uint64) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d, want %d", n, records)
		}
		rl.Close()
	}
}
