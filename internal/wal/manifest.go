package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// The MANIFEST is the log's small source of truth: the segment order and
// the checkpoint watermark, rewritten atomically (tmp + fsync + rename +
// parent-dir fsync) on segment rotation and truncation. Segment files not
// in the manifest are either newer than its last entry (a crash between
// segment creation and the manifest write — adopted) or leftovers of an
// interrupted truncation (removed); a manifest entry with no file is real
// loss and refuses to open.

const (
	manifestName    = "MANIFEST"
	manifestVersion = 1
)

type manifest struct {
	Version   int      `json:"version"`
	Watermark uint64   `json:"watermark"`
	Segments  []string `json:"segments"`
}

// readManifest loads the manifest; a missing file is an empty log.
func readManifest(dir string) (manifest, error) {
	var m manifest
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return manifest{Version: manifestVersion}, nil
	}
	if err != nil {
		return m, fmt.Errorf("wal: reading manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, fmt.Errorf("wal: parsing manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("wal: manifest version %d, this build speaks %d", m.Version, manifestVersion)
	}
	return m, nil
}

// writeManifest atomically replaces the manifest and fsyncs it and the
// directory, so the new segment set survives a crash the instant the
// rename lands.
func writeManifest(dir string, m manifest) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: writing manifest: %w", err)
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and file creations in it are
// durable, not just the file contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// reconcileSegments merges the manifest's segment list with the directory's
// actual contents into the ordered, validated set the log opens with.
func reconcileSegments(dir string, m manifest, logf func(string, ...any)) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	onDisk := make(map[string]bool)
	var diskNames []string
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			onDisk[e.Name()] = true
			diskNames = append(diskNames, e.Name())
		}
	}
	sort.Strings(diskNames) // zero-padded names sort in LSN order

	var segs []segment
	for _, name := range m.Segments {
		if !onDisk[name] {
			return nil, fmt.Errorf("wal: manifest names segment %s but the file is gone — refusing to silently lose its records", name)
		}
		first, _ := parseSegmentName(name)
		segs = append(segs, segment{name: name, first: first})
		delete(onDisk, name)
	}
	lastFirst := uint64(0)
	if n := len(segs); n > 0 {
		lastFirst = segs[n-1].first
	}
	for _, name := range diskNames {
		if !onDisk[name] {
			continue // already adopted from the manifest
		}
		first, _ := parseSegmentName(name)
		if first > lastFirst {
			// Created after the last manifest write (crash before the
			// rotation's manifest update): adopt it.
			segs = append(segs, segment{name: name, first: first})
			continue
		}
		// Below the manifest's coverage: an interrupted truncation already
		// committed a manifest without it, so its records are checkpointed.
		if logf != nil {
			logf("wal: removing stale segment %s left by an interrupted truncation", name)
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].first <= segs[i-1].first {
			return nil, fmt.Errorf("wal: segments %s and %s out of order", segs[i-1].name, segs[i].name)
		}
	}
	return segs, nil
}
