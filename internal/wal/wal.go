// Package wal is the durability subsystem at the ingest-plane boundary: a
// write-ahead log of typed ingest.Batch frames, so an Ack can be a promise
// the system keeps across a crash. PR 5's pipeline acks every batch, but
// until now everything since the last checkpoint died with the process —
// "read-your-acked-writes" held only while the process lived.
//
// The log is a directory of append-only segment files (length-framed,
// CRC32-checked records; rotation by size) plus a MANIFEST tracking segment
// order and the checkpoint watermark. Appends are made durable under a
// configurable fsync policy before the caller acks:
//
//   - per-batch: every Append fsyncs before returning — an ack is durable.
//   - group-commit: appends join a cohort; a background syncer fsyncs every
//     interval and releases the whole cohort — acks are durable, at ~interval
//     latency, with one fsync amortized over every batch in the cohort.
//   - off: no per-append fsync — acks survive process crashes (the page
//     cache persists) but not power loss. Segments still sync on rotation
//     and close.
//
// Recovery is restore-newest-checkpoint + Replay of every record past the
// checkpoint's watermark through the same ingest pipeline live traffic
// takes, so recovered state passes the exact certified-bounds contract live
// state does. A successful checkpoint advances the watermark
// (TruncateThrough) and deletes dead segments. Torn tails — a crash mid
// append — are detected by CRC at Open, truncated to the last whole record,
// and counted; a partial batch is never replayed.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/telemetry"
)

// SyncMode selects when an appended record is fsync'd.
type SyncMode uint8

const (
	// SyncEachBatch fsyncs inside every Append: the strongest promise, one
	// fsync per batch.
	SyncEachBatch SyncMode = iota
	// SyncGroup batches fsyncs: Append waits for the next group commit, so
	// the ack is still durable, at up to Interval extra latency.
	SyncGroup
	// SyncOff never fsyncs on the append path. Acks survive a process
	// crash (the kernel holds the pages) but not power loss.
	SyncOff
)

// DefaultGroupInterval is the group-commit cadence when none is given.
const DefaultGroupInterval = 2 * time.Millisecond

// FsyncPolicy is the operator-visible durability knob (-wal-fsync).
type FsyncPolicy struct {
	Mode SyncMode
	// Interval is the group-commit cadence (SyncGroup only); ≤ 0 means
	// DefaultGroupInterval.
	Interval time.Duration
}

// String renders the policy in its flag spelling.
func (p FsyncPolicy) String() string {
	switch p.Mode {
	case SyncGroup:
		iv := p.Interval
		if iv <= 0 {
			iv = DefaultGroupInterval
		}
		return iv.String()
	case SyncOff:
		return "off"
	}
	return "batch"
}

// ParseFsync reads a -wal-fsync flag value: "batch" (per-batch, the
// default), "off", or a duration ("2ms", "10ms") selecting group commit at
// that interval.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "", "batch", "per-batch":
		return FsyncPolicy{Mode: SyncEachBatch}, nil
	case "off", "none":
		return FsyncPolicy{Mode: SyncOff}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return FsyncPolicy{}, fmt.Errorf("wal: fsync policy %q (want batch, off, or a group-commit interval like 5ms)", s)
	}
	return FsyncPolicy{Mode: SyncGroup, Interval: d}, nil
}

// DefaultSegmentBytes is the rotation threshold when Options leaves it 0.
const DefaultSegmentBytes = 64 << 20

// Options configures a Log.
type Options struct {
	// Dir is the log directory, created if absent. One Log owns it.
	Dir string
	// SegmentBytes rotates to a fresh segment once the active one reaches
	// this size; ≤ 0 means DefaultSegmentBytes. A single record larger than
	// the threshold still lands whole (segments are a soft bound).
	SegmentBytes int64
	// Fsync picks the durability of an Append's return.
	Fsync FsyncPolicy
	// Logf receives operational diagnostics (torn-tail truncations, stale
	// segment cleanup); nil silences them.
	Logf func(format string, args ...any)
}

// Stats is the log's observability snapshot, served under /v1/status.
type Stats struct {
	Policy    string `json:"policy"`
	Segments  int    `json:"segments"`
	Bytes     int64  `json:"bytes"`
	LastLSN   uint64 `json:"last_lsn"`
	Watermark uint64 `json:"watermark"`
	// Appended counts records appended by this process; Fsyncs the syncs
	// that made them durable.
	Appended  uint64 `json:"appended_records"`
	Fsyncs    uint64 `json:"fsyncs"`
	LastFsync string `json:"last_fsync,omitempty"`
	// Replayed counts records recovered through Replay at startup.
	// TornTruncations counts torn-tail truncation events at Open: each event
	// drops every byte past the last whole record. It is an event count, not
	// a record count — record boundaries past the first bad frame are
	// unknowable, so the records lost per event cannot be counted.
	Replayed        uint64 `json:"replayed_records"`
	TornTruncations uint64 `json:"torn_tail_truncations"`
	LastError       string `json:"last_error,omitempty"`
}

// segment is one log file's identity: its name, the LSN of its first
// record, and (sealed segments) its size on disk.
type segment struct {
	name  string
	first uint64
	size  int64
}

// cohort is one group commit: every Append since the last sync waits on
// done and reads err after the syncer (or a rotation/close sync) releases
// it. n counts the appends amortized over the cohort's one fsync.
type cohort struct {
	done chan struct{}
	err  error
	n    int
}

// Log is the write-ahead log. Append is safe for concurrent use; Replay and
// TruncateThrough serialize against appends internally. LSNs are 1-based
// record ordinals across the log's whole life — segment file names carry
// their first record's LSN, so a record's position is implicit and never
// stored per record.
type Log struct {
	opts Options

	mu        sync.Mutex
	f         *os.File // active segment, positioned at its end
	segs      []segment
	curSize   int64
	nextLSN   uint64
	watermark uint64
	scratch   []byte
	pending   *cohort
	failed    error
	closed    bool

	// Counters double as the log's Prometheus instruments
	// (RegisterMetrics): a telemetry.Counter is one atomic word, the same
	// cost as the atomic.Uint64 each replaced. Every write to them happens
	// while holding l.mu, which is what lets Stats read a fully consistent
	// snapshot under one lock hold.
	appended    telemetry.Counter
	fsyncs      telemetry.Counter
	lastFsync   atomic.Int64 // unix nanos; 0 = never
	replayed    telemetry.Counter
	torn        telemetry.Counter
	truncations telemetry.Counter

	// Latency and cohort-shape distributions. Observations happen outside
	// any per-item loop: once per Append, once per fsync, once per cohort.
	// The histograms stay nil (observing into nil is a no-op) until
	// RegisterMetrics allocates them, keeping Open allocation-free — the
	// replay benchmark opens a log per iteration and the perf gate pins its
	// allocs/op. Atomic pointers, because registration may race an append
	// (a collector accepts connections before its CLI wires metrics up).
	appendSeconds atomic.Pointer[telemetry.Histogram]
	fsyncSeconds  atomic.Pointer[telemetry.Histogram]
	cohortSizes   atomic.Pointer[telemetry.Histogram]

	stop chan struct{}
	wg   sync.WaitGroup
}

// Open opens (creating if needed) the log in opts.Dir: loads the manifest,
// reconciles it with the directory, scans the tail segment for torn
// records (truncating to the last whole one, counted in Stats), and
// positions the log for appending. The caller should Replay before the
// first Append.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	l := &Log{
		opts: opts,
		stop: make(chan struct{}),
	}
	if err := l.load(); err != nil {
		return nil, err
	}
	if opts.Fsync.Mode == SyncGroup {
		iv := opts.Fsync.Interval
		if iv <= 0 {
			iv = DefaultGroupInterval
		}
		l.wg.Add(1)
		go l.syncLoop(iv)
	}
	return l, nil
}

// load reads the manifest, reconciles the segment set with the directory,
// opens the tail segment (truncating a torn tail), and derives nextLSN.
func (l *Log) load() error {
	m, err := readManifest(l.opts.Dir)
	if err != nil {
		return err
	}
	l.watermark = m.Watermark
	segs, err := reconcileSegments(l.opts.Dir, m, l.logf)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		// Fresh log: create the first segment and persist the manifest
		// before any record exists, so a crash here leaves a valid empty
		// log.
		if err := l.openSegment(1); err != nil {
			return err
		}
		return l.writeManifest()
	}
	// Sealed segments keep their on-disk sizes for Stats; the tail segment
	// is scanned record by record, truncated past the last whole record.
	for i := range segs[:len(segs)-1] {
		fi, err := os.Stat(filepath.Join(l.opts.Dir, segs[i].name))
		if err != nil {
			return fmt.Errorf("wal: sealed segment vanished: %w", err)
		}
		segs[i].size = fi.Size()
	}
	tail := &segs[len(segs)-1]
	records, validBytes, tornBytes, err := scanSegment(filepath.Join(l.opts.Dir, tail.name), tail.first)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, tail.name), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if tornBytes > 0 {
		// A crash tore the tail mid-record (or corruption flipped a CRC):
		// drop everything from the first bad frame on — a partial batch is
		// never replayed — and continue appending at the clean boundary. A
		// file shorter than its header is an interrupted segment creation,
		// not a lost record, so it is repaired without counting as torn.
		if validBytes >= segmentHeaderLen {
			l.torn.Add(1)
		}
		l.logf("wal: %s: dropping %d torn/corrupt tail bytes after record %d (last whole LSN %d)",
			tail.name, tornBytes, records, tail.first+uint64(records)-1)
		if err := f.Truncate(validBytes); err != nil {
			f.Close()
			return fmt.Errorf("wal: truncating torn tail of %s: %w", tail.name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if validBytes < segmentHeaderLen {
		// The crash interrupted segment creation itself: rewrite the header.
		if err := writeSegmentHeader(f, tail.first); err != nil {
			f.Close()
			return err
		}
		validBytes = segmentHeaderLen
	} else if _, err := f.Seek(validBytes, 0); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.segs = segs
	l.curSize = validBytes
	l.nextLSN = tail.first + uint64(records)
	return nil
}

// Append writes one batch to the log and returns once the record is
// durable under the configured fsync policy. The returned LSN names the
// record for watermark bookkeeping. Concurrency-safe; an I/O failure is
// sticky — the log refuses further appends rather than acking batches it
// can no longer promise to keep.
func (l *Log) Append(b ingest.Batch) (uint64, error) {
	// Append latency is measured to the durable return — for SyncGroup that
	// includes the cohort wait, which is the latency an acked producer saw.
	start := time.Now()
	l.mu.Lock()
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return 0, err
	}
	l.scratch = appendRecord(l.scratch[:0], b)
	rec := l.scratch
	if l.curSize > segmentHeaderLen && l.curSize+int64(len(rec)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.failLocked(err)
			l.mu.Unlock()
			return 0, err
		}
	}
	if _, err := l.f.Write(rec); err != nil {
		err = fmt.Errorf("wal: appending record: %w", err)
		l.failLocked(err)
		l.mu.Unlock()
		return 0, err
	}
	l.curSize += int64(len(rec))
	lsn := l.nextLSN
	l.nextLSN++
	l.appended.Add(1)

	switch l.opts.Fsync.Mode {
	case SyncEachBatch:
		err := l.syncLocked()
		if err != nil {
			l.failLocked(err)
		}
		l.mu.Unlock()
		l.appendSeconds.Load().ObserveDuration(time.Since(start))
		return lsn, err
	case SyncGroup:
		if l.pending == nil {
			l.pending = &cohort{done: make(chan struct{})}
		}
		c := l.pending
		c.n++
		l.mu.Unlock()
		<-c.done // released by the syncer, a rotation, or Close
		l.appendSeconds.Load().ObserveDuration(time.Since(start))
		return lsn, c.err
	default: // SyncOff
		l.mu.Unlock()
		l.appendSeconds.Load().ObserveDuration(time.Since(start))
		return lsn, nil
	}
}

// usableLocked rejects appends on closed or failed logs.
func (l *Log) usableLocked() error {
	if l.closed {
		return errors.New("wal: log is closed")
	}
	return l.failed
}

// syncLocked fsyncs the active segment and stamps the counters.
func (l *Log) syncLocked() error {
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncSeconds.Load().ObserveDuration(time.Since(start))
	l.fsyncs.Inc()
	l.lastFsync.Store(time.Now().UnixNano())
	return nil
}

// releaseCohortLocked completes the pending group commit with err.
func (l *Log) releaseCohortLocked(err error) {
	if l.pending != nil {
		l.cohortSizes.Load().Observe(float64(l.pending.n))
		l.pending.err = err
		close(l.pending.done)
		l.pending = nil
	}
}

// syncLoop is the group-commit syncer: every interval, if any appends are
// waiting, one fsync makes the whole cohort durable.
func (l *Log) syncLoop(interval time.Duration) {
	defer l.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if l.pending != nil && !l.closed {
				err := l.syncLocked()
				if err != nil {
					l.failLocked(err)
				}
				l.releaseCohortLocked(err)
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// rotateLocked seals the active segment (fsync — sealed segments are always
// complete on disk) and opens a fresh one at the current LSN, recording the
// new order in the manifest. A pending group cohort's records all live in
// the sealed file, so the rotation sync releases it.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		l.releaseCohortLocked(err)
		return err
	}
	l.releaseCohortLocked(nil)
	if err := l.f.Close(); err != nil {
		return err
	}
	l.segs[len(l.segs)-1].size = l.curSize
	if err := l.openSegment(l.nextLSN); err != nil {
		return err
	}
	return l.writeManifest()
}

// openSegment creates the segment whose first record will be lsn and makes
// it the active file.
func (l *Log) openSegment(lsn uint64) error {
	name := segmentName(lsn)
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", name, err)
	}
	if err := writeSegmentHeader(f, lsn); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.curSize = segmentHeaderLen
	l.segs = append(l.segs, segment{name: name, first: lsn})
	if l.nextLSN < lsn {
		l.nextLSN = lsn
	}
	return nil
}

// writeManifest persists the current segment order and watermark.
func (l *Log) writeManifest() error {
	names := make([]string, len(l.segs))
	for i, s := range l.segs {
		names[i] = s.name
	}
	return writeManifest(l.opts.Dir, manifest{Version: manifestVersion, Watermark: l.watermark, Segments: names})
}

// LastLSN returns the LSN of the most recently appended record (0 when the
// log has never held one). Under the backend's checkpoint cut — appends
// excluded — this is the exact watermark a snapshot covers.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Watermark returns the manifest's checkpoint watermark: every record at or
// below it is covered by a durable checkpoint and will never be replayed.
func (l *Log) Watermark() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.watermark
}

// TruncateThrough advances the watermark to lsn (monotonic; lower values
// no-op) and deletes segments whose every record is covered. The manifest
// is made durable before any file is removed, so a crash mid-truncation
// leaves only unreferenced files, which the next Open cleans up.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn <= l.watermark {
		return nil
	}
	l.watermark = lsn
	l.truncations.Inc()
	// Segment i's records end where segment i+1 begins; the active (last)
	// segment always stays — appends continue into it.
	keepFrom := 0
	for i := 0; i+1 < len(l.segs); i++ {
		if l.segs[i+1].first <= lsn+1 {
			keepFrom = i + 1
		}
	}
	dead := append([]segment(nil), l.segs[:keepFrom]...)
	l.segs = l.segs[keepFrom:]
	if err := l.writeManifest(); err != nil {
		l.failLocked(err)
		return err
	}
	for _, s := range dead {
		if err := os.Remove(filepath.Join(l.opts.Dir, s.name)); err != nil {
			l.logf("wal: removing dead segment %s: %v", s.name, err)
		}
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log is closed")
	}
	return l.syncLocked()
}

// Close syncs and closes the active segment. Further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.syncLocked()
	l.releaseCohortLocked(err)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// failLocked records the first I/O failure; the log stops accepting.
func (l *Log) failLocked(err error) {
	if l.failed == nil {
		l.failed = err
	}
}

// Stats snapshots the log's counters under ONE l.mu hold. Every counter
// write happens while holding l.mu (Append, syncLocked's callers, Replay,
// and load all do), so the snapshot is fully consistent: appended never
// lags behind the LSN it produced, fsyncs never lag the appends they made
// durable. The earlier version read the atomics after unlocking, so a
// concurrent Append could skew appended_records ahead of last_lsn within
// one snapshot. Prometheus scrapes (RegisterMetrics) deliberately keep the
// lock-free independent atomic loads instead — there, appended/fsyncs/
// replayed/torn/truncations may each be exact for slightly different
// instants within one scrape, the standard exposition contract.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := Stats{
		Policy:          l.opts.Fsync.String(),
		Segments:        len(l.segs),
		LastLSN:         l.nextLSN - 1,
		Watermark:       l.watermark,
		Bytes:           l.curSize,
		Appended:        l.appended.Value(),
		Fsyncs:          l.fsyncs.Value(),
		Replayed:        l.replayed.Value(),
		TornTruncations: l.torn.Value(),
	}
	for _, seg := range l.segs[:max(len(l.segs)-1, 0)] {
		s.Bytes += seg.size
	}
	if l.failed != nil {
		s.LastError = l.failed.Error()
	}
	if ns := l.lastFsync.Load(); ns != 0 {
		s.LastFsync = time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
	}
	return s
}

// RegisterMetrics exposes the log's instruments on reg under the wal_*
// namespace. Counters are the same atomic words Stats reads; sizes,
// positions, and the watermark are sampled at scrape time under a brief
// l.mu hold (they are plain fields), never on the append path.
func (l *Log) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCounter("wal_appended_records_total", "Records appended by this process.", nil, &l.appended)
	reg.RegisterCounter("wal_fsyncs_total", "Fsyncs of the active segment.", nil, &l.fsyncs)
	reg.RegisterCounter("wal_replayed_records_total", "Records recovered through Replay at startup.", nil, &l.replayed)
	reg.RegisterCounter("wal_torn_tail_truncations_total", "Torn-tail truncation events at Open.", nil, &l.torn)
	reg.RegisterCounter("wal_truncations_total", "Watermark advances via TruncateThrough.", nil, &l.truncations)
	// The histograms come to life here, not at Open: observations into the
	// nil pre-registration pointers are no-ops, so the series cover
	// everything from registration on (in every server wiring, that is
	// before the first live append).
	l.appendSeconds.CompareAndSwap(nil, telemetry.NewHistogram(telemetry.LatencyBuckets()))
	l.fsyncSeconds.CompareAndSwap(nil, telemetry.NewHistogram(telemetry.LatencyBuckets()))
	l.cohortSizes.CompareAndSwap(nil, telemetry.NewHistogram(telemetry.SizeBuckets()))
	reg.RegisterHistogram("wal_append_duration_seconds", "Append latency to the durable return (includes group-commit wait).", nil, l.appendSeconds.Load())
	reg.RegisterHistogram("wal_fsync_duration_seconds", "Latency of one fsync of the active segment.", nil, l.fsyncSeconds.Load())
	reg.RegisterHistogram("wal_cohort_size", "Appends amortized over one group-commit fsync.", nil, l.cohortSizes.Load())
	reg.GaugeFunc("wal_segments", "Live segment files.", nil, func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(len(l.segs))
	})
	reg.GaugeFunc("wal_bytes", "Bytes across live segments.", nil, func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		b := l.curSize
		for _, seg := range l.segs[:max(len(l.segs)-1, 0)] {
			b += seg.size
		}
		return float64(b)
	})
	reg.GaugeFunc("wal_last_lsn", "LSN of the most recently appended record.", nil, func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(l.nextLSN - 1)
	})
	reg.GaugeFunc("wal_watermark", "Checkpoint watermark; records at or below it never replay.", nil, func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(l.watermark)
	})
}

func (l *Log) logf(format string, args ...any) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}
