package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// testBatch builds a deterministic batch whose identity is i.
func testBatch(i int) ingest.Batch {
	items := make([]stream.Item, 1+i%3)
	for j := range items {
		items[j] = stream.Item{Key: uint64(i*10 + j), Value: uint64(i + 1)}
	}
	return ingest.Batch{Items: items, Source: uint64(i % 5), Epoch: uint64(i % 7)}
}

func batchesEqual(a, b ingest.Batch) bool {
	if a.Source != b.Source || a.Epoch != b.Epoch || len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return false
		}
	}
	return true
}

// appendN appends batches 0..n-1 and fails the test on any error.
func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		lsn, err := l.Append(testBatch(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); lsn != want {
			t.Fatalf("append %d: lsn %d, want %d", i, lsn, want)
		}
	}
}

// replayAll collects every record past after.
func replayAll(t *testing.T, l *Log, after uint64) ([]ingest.Batch, []uint64) {
	t.Helper()
	var got []ingest.Batch
	var lsns []uint64
	n, err := l.Replay(after, func(b ingest.Batch, lsn uint64) error {
		got = append(got, b)
		lsns = append(lsns, lsn)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if int(n) != len(got) {
		t.Fatalf("replay reported %d records, delivered %d", n, len(got))
	}
	return got, lsns
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	appendN(t, l, n)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, lsns := replayAll(t, l2, 0)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, b := range got {
		if !batchesEqual(b, testBatch(i)) {
			t.Fatalf("record %d = %+v, want %+v", i, b, testBatch(i))
		}
		if lsns[i] != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, lsns[i])
		}
	}
	// Appends continue exactly where the recovered log ends.
	if lsn, err := l2.Append(testBatch(n)); err != nil || lsn != n+1 {
		t.Fatalf("post-recovery append: lsn %d err %v, want %d", lsn, err, n+1)
	}
}

// TestReopenRecordLargerThanScanBuffer pins a recovery bug: scanSegment's
// payload buffer started at 64 KiB and never grew, so reopening a log whose
// tail held a single larger record (HTTP ingest allows bodies well past
// that) panicked on every restart — recovery was impossible exactly when it
// mattered.
func TestReopenRecordLargerThanScanBuffer(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	// ~80 KiB encoded: comfortably past the scanner's initial buffer.
	items := make([]stream.Item, 10_000)
	for i := range items {
		items[i] = stream.Item{Key: uint64(i) << 40, Value: uint64(i + 1)}
	}
	big := ingest.Batch{Items: items, Source: 3}
	if _, err := l.Append(big); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, _ := replayAll(t, l2, 0)
	if len(got) != 1 || !batchesEqual(got[0], big) {
		t.Fatalf("large record did not survive reopen: got %d records", len(got))
	}
	if lsn, err := l2.Append(testBatch(0)); err != nil || lsn != 2 {
		t.Fatalf("post-recovery append: lsn %d err %v, want 2", lsn, err)
	}
}

func TestRotationManifestAndTruncation(t *testing.T) {
	dir := t.TempDir()
	// ~40-byte records against a 256-byte threshold: several segments.
	l, err := Open(Options{Dir: dir, SegmentBytes: 256, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	appendN(t, l, n)
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce ≥3 segments, got %d", st.Segments)
	}
	if st.LastLSN != n {
		t.Fatalf("LastLSN = %d, want %d", st.LastLSN, n)
	}

	// Truncating through the middle deletes fully covered segments and
	// replays only the tail.
	const mark = n / 2
	if err := l.TruncateThrough(mark); err != nil {
		t.Fatal(err)
	}
	if got := l.Watermark(); got != mark {
		t.Fatalf("watermark = %d, want %d", got, mark)
	}
	if after := l.Stats(); after.Segments >= st.Segments {
		t.Fatalf("truncation kept all %d segments", after.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The watermark and the surviving tail persist across reopen.
	l2, err := Open(Options{Dir: dir, SegmentBytes: 256, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Watermark(); got != mark {
		t.Fatalf("reopened watermark = %d, want %d", got, mark)
	}
	got, _ := replayAll(t, l2, l2.Watermark())
	// Records (mark, n] must all be there; earlier ones may survive in a
	// partially covered segment but are filtered by the watermark.
	if len(got) != n-mark {
		t.Fatalf("replayed %d records past watermark, want %d", len(got), n-mark)
	}
	for i, b := range got {
		if want := testBatch(mark + i); !batchesEqual(b, want) {
			t.Fatalf("record %d = %+v, want %+v", i, b, want)
		}
	}
}

// corruptTail reopens the newest segment file and mangles it with mutate.
func corruptTail(t *testing.T, dir string, mutate func(data []byte) []byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") && e.Name() > last {
			last = e.Name()
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	path := filepath.Join(dir, last)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncatedMidRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	appendN(t, l, n)
	l.Close()

	// Tear the last record in half, as a crash mid-write would.
	corruptTail(t, dir, func(data []byte) []byte { return data[:len(data)-5] })

	l2, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.TornTruncations != 1 {
		t.Fatalf("TornTruncations = %d, want 1", st.TornTruncations)
	}
	got, _ := replayAll(t, l2, 0)
	if len(got) != n-1 {
		t.Fatalf("replayed %d records, want the durable prefix of %d", len(got), n-1)
	}
	for i, b := range got {
		if !batchesEqual(b, testBatch(i)) {
			t.Fatalf("record %d corrupted by recovery: %+v", i, b)
		}
	}
	// The log keeps working: the torn LSN is reused by the next append.
	if lsn, err := l2.Append(testBatch(0)); err != nil || lsn != n {
		t.Fatalf("append after tear: lsn %d err %v, want %d", lsn, err, n)
	}
}

func TestCorruptCRCDropsFromFlipOn(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	appendN(t, l, n)
	l.Close()

	// Flip one payload byte roughly 2/3 into the segment: everything from
	// the first bad record on is untrusted (frame boundaries past it are
	// unknowable), so recovery keeps exactly the durable prefix.
	var flipAt int
	corruptTail(t, dir, func(data []byte) []byte {
		flipAt = segmentHeaderLen + (len(data)-segmentHeaderLen)*2/3
		data[flipAt] ^= 0xFF
		return data
	})

	l2, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.TornTruncations != 1 {
		t.Fatalf("TornTruncations = %d, want 1", st.TornTruncations)
	}
	got, _ := replayAll(t, l2, 0)
	if len(got) == 0 || len(got) >= n {
		t.Fatalf("replayed %d records, want a strict durable prefix of %d", len(got), n)
	}
	for i, b := range got {
		if !batchesEqual(b, testBatch(i)) {
			t.Fatalf("record %d corrupted by recovery: %+v", i, b)
		}
	}
}

func TestGroupCommitReleasesAllAppenders(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncGroup, Interval: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers*each)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append(testBatch(w*each + i)); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appended != writers*each {
		t.Fatalf("appended %d, want %d", st.Appended, writers*each)
	}
	// The whole point of group commit: far fewer fsyncs than appends.
	if st.Fsyncs == 0 || st.Fsyncs >= st.Appended {
		t.Fatalf("fsyncs = %d for %d appends; group commit did not amortize", st.Fsyncs, st.Appended)
	}
	got, _ := replayAll(t, l, 0)
	if len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
}

func TestParseFsync(t *testing.T) {
	cases := []struct {
		in   string
		mode SyncMode
		ok   bool
	}{
		{"", SyncEachBatch, true},
		{"batch", SyncEachBatch, true},
		{"per-batch", SyncEachBatch, true},
		{"off", SyncOff, true},
		{"none", SyncOff, true},
		{"5ms", SyncGroup, true},
		{"1s", SyncGroup, true},
		{"-5ms", 0, false},
		{"0", 0, false},
		{"sometimes", 0, false},
	}
	for _, c := range cases {
		p, err := ParseFsync(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseFsync(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && p.Mode != c.mode {
			t.Errorf("ParseFsync(%q).Mode = %d, want %d", c.in, p.Mode, c.mode)
		}
	}
	if got := (FsyncPolicy{Mode: SyncGroup, Interval: 5 * time.Millisecond}).String(); got != "5ms" {
		t.Errorf("group policy String() = %q", got)
	}
	if got := (FsyncPolicy{Mode: SyncEachBatch}).String(); got != "batch" {
		t.Errorf("batch policy String() = %q", got)
	}
}

func TestPerBatchFsyncCountsSyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncEachBatch}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 5)
	st := l.Stats()
	if st.Fsyncs < 5 {
		t.Fatalf("per-batch policy fsynced %d times for 5 appends", st.Fsyncs)
	}
	if st.LastFsync == "" {
		t.Error("LastFsync not stamped")
	}
}

func TestClosedLogRefusesAppends(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(testBatch(0)); err == nil {
		t.Fatal("append on closed log succeeded")
	}
}

func TestMissingManifestSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 60)
	if l.Stats().Segments < 2 {
		t.Fatal("need multiple segments")
	}
	l.Close()
	// Deleting a manifest-listed segment is real loss, not a torn tail.
	if err := os.Remove(filepath.Join(dir, segmentName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SegmentBytes: 256, Fsync: FsyncPolicy{Mode: SyncOff}}); err == nil {
		t.Fatal("open succeeded with a manifest-listed segment missing")
	}
}

// TestRegisterMetricsExposition checks the log's Prometheus surface: the
// registered counters are the same instruments Stats reads, latency and
// cohort histograms record, and the scrape-time gauges track manifest
// state.
func TestRegisterMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncGroup, Interval: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	l.RegisterMetrics(reg)
	appendN(t, l, 8)
	if err := l.TruncateThrough(3); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		fmt.Sprintf("wal_appended_records_total %d", st.Appended),
		fmt.Sprintf("wal_fsyncs_total %d", st.Fsyncs),
		fmt.Sprintf("wal_last_lsn %d", st.LastLSN),
		fmt.Sprintf("wal_watermark %d", st.Watermark),
		fmt.Sprintf("wal_segments %d", st.Segments),
		fmt.Sprintf("wal_bytes %d", st.Bytes),
		"wal_truncations_total 1",
		fmt.Sprintf("wal_append_duration_seconds_count %d", st.Appended),
		"wal_cohort_size_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cohort sizes must account for every group-committed append.
	cohorts := l.cohortSizes.Load().Snapshot()
	if cohorts.Sum != float64(st.Appended) {
		t.Errorf("cohort sizes sum to %g appends, want %d", cohorts.Sum, st.Appended)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsConsistentUnderAppends hammers Append while snapshotting Stats:
// because every counter write happens under l.mu and Stats now reads under
// one l.mu hold, appended_records can never exceed last_lsn within one
// snapshot (the skew the old read-after-unlock path allowed).
func TestStatsConsistentUnderAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncPolicy{Mode: SyncOff}})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := l.Append(testBatch(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		st := l.Stats()
		if st.Appended != st.LastLSN {
			t.Fatalf("snapshot skew: appended_records=%d last_lsn=%d", st.Appended, st.LastLSN)
		}
	}
	close(stop)
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
