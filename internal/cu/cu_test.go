package cu

import (
	"testing"
	"testing/quick"

	"repro/internal/cm"
	"repro/internal/sketch"
	"repro/internal/stream"
)

var _ sketch.Sketch = (*Sketch)(nil)

func TestExactWithoutCollisions(t *testing.T) {
	s := New(3, 1<<16, 1, "CU")
	s.Insert(1, 5)
	s.Insert(1, 5)
	s.Insert(2, 1)
	if got := s.Query(1); got != 10 {
		t.Errorf("Query(1)=%d want 10", got)
	}
	if got := s.Query(2); got != 1 {
		t.Errorf("Query(2)=%d want 1", got)
	}
}

// TestNeverUnderestimates: conservative update preserves the overestimate
// guarantee.
func TestNeverUnderestimates(t *testing.T) {
	err := quick.Check(func(seed uint64, ops []uint16) bool {
		s := New(3, 64, seed, "CU")
		truth := map[uint64]uint64{}
		for _, o := range ops {
			k := uint64(o % 200)
			v := uint64(o%5) + 1
			s.Insert(k, v)
			truth[k] += v
		}
		for k, f := range truth {
			if s.Query(k) < f {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDominatedByCM: with identical geometry and seed, CU's estimate never
// exceeds CM's — the defining improvement of conservative update.
func TestDominatedByCM(t *testing.T) {
	s := stream.Zipf(50_000, 5_000, 1.0, 4)
	cuS := New(3, 4096, 9, "CU")
	cmS := cm.New(3, 4096, 9, "CM")
	for _, it := range s.Items {
		cuS.Insert(it.Key, it.Value)
		cmS.Insert(it.Key, it.Value)
	}
	for k := range s.Truth() {
		if cuS.Query(k) > cmS.Query(k) {
			t.Fatalf("key %d: CU %d > CM %d", k, cuS.Query(k), cmS.Query(k))
		}
	}
}

func TestVariants(t *testing.T) {
	fast := NewFast(1<<20, 1)
	acc := NewAccurate(1<<20, 1)
	if fast.Depth() != 3 || acc.Depth() != 16 {
		t.Errorf("depths: fast=%d acc=%d", fast.Depth(), acc.Depth())
	}
	if fast.Name() != "CU_fast" || acc.Name() != "CU_acc" {
		t.Errorf("names: %q %q", fast.Name(), acc.Name())
	}
	if fast.MemoryBytes() > 1<<20 || acc.MemoryBytes() > 1<<20 {
		t.Error("memory over budget")
	}
}

func TestReset(t *testing.T) {
	s := NewFast(1<<12, 1)
	s.Insert(5, 5)
	s.Reset()
	if s.Query(5) != 0 {
		t.Error("Reset did not clear counters")
	}
}

func BenchmarkInsertFast(b *testing.B) {
	sk := NewFast(1<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Insert(uint64(i&0xffff), 1)
	}
}

// TestQueryTouchesNoScratch certifies the concurrency contract documented
// on Sketch: Query and QueryBatch keep their row indexes on the stack and
// never write the per-sketch pos scratch, so concurrent readers on sealed
// state are race-free. The test runs parallel readers over a frozen sketch
// while recording the scratch contents before and after — any scratch
// write fails the comparison, and under `go test -race` an actual data
// race between the readers would be reported directly.
func TestQueryTouchesNoScratch(t *testing.T) {
	s := NewAccurate(1<<14, 99) // d=16 exercises the full stack scratch
	st := stream.Zipf(4096, 512, 1.0, 3)
	for _, it := range st.Items {
		s.Insert(it.Key, it.Value)
	}
	before := make([]int, len(s.pos))
	copy(before, s.pos)

	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = st.Items[i].Key
	}
	want := make([]uint64, len(keys))
	for i, k := range keys {
		want[i] = s.Query(k)
	}
	copy(before, s.pos) // sequential queries must not have written it either

	done := make(chan struct{})
	const readers = 8
	for r := 0; r < readers; r++ {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			est := make([]uint64, len(keys))
			for iter := 0; iter < 200; iter++ {
				if r%2 == 0 {
					for i, k := range keys {
						if got := s.Query(k); got != want[i] {
							t.Errorf("reader %d: Query(%d)=%d want %d", r, k, got, want[i])
							return
						}
					}
				} else {
					s.QueryBatch(keys, est, nil)
					for i := range keys {
						if est[i] != want[i] {
							t.Errorf("reader %d: QueryBatch[%d]=%d want %d", r, i, est[i], want[i])
							return
						}
					}
				}
			}
		}(r)
	}
	for r := 0; r < readers; r++ {
		<-done
	}
	for i := range before {
		if s.pos[i] != before[i] {
			t.Fatalf("pos scratch written by query path: pos[%d] = %d, was %d", i, s.pos[i], before[i])
		}
	}
}
