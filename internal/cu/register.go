package cu

import "repro/internal/sketch"

// The evaluation's two CU variants self-register so the harness and CLIs
// can build them by name (§6.1: d=3 for throughput, d=16 for accuracy).
func init() {
	sketch.Register("CU_fast", sketch.CapResettable|sketch.CapMergeable|sketch.CapSnapshottable|sketch.CapBatchQuery, func(sp sketch.Spec) sketch.Sketch {
		return NewFast(sp.MemoryBytes, sp.Seed)
	})
	sketch.Register("CU_acc", sketch.CapResettable|sketch.CapMergeable|sketch.CapSnapshottable|sketch.CapBatchQuery, func(sp sketch.Spec) sketch.Sketch {
		return NewAccurate(sp.MemoryBytes, sp.Seed)
	})
}
