package cu

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/sketch"
)

// Snapshot serialization, implementing sketch.Snapshotter: magic "CUS1" |
// d | width | counters as uvarints. As with CM, the hash family derives
// from the Spec seed the restoring side builds with and is not serialized.

var cuMagic = [4]byte{'C', 'U', 'S', '1'}

// Snapshot writes the sketch's full state to w.
func (s *Sketch) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(cuMagic[:])
	var buf [binary.MaxVarintLen64]byte
	write := func(vs ...uint64) {
		for _, v := range vs {
			n := binary.PutUvarint(buf[:], v)
			bw.Write(buf[:n])
		}
	}
	write(uint64(s.depth), uint64(s.width))
	// data is row-major, so iterating it flat emits the exact byte stream
	// the per-row layout produced.
	for _, c := range s.data {
		write(uint64(c))
	}
	return bw.Flush()
}

// Restore replaces the counters with a snapshot written by a same-Spec
// sibling's Snapshot. The serialized geometry must match the receiver's.
func (s *Sketch) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("cu: reading snapshot magic: %w", err)
	}
	if magic != cuMagic {
		return fmt.Errorf("%w: bad cu snapshot magic %q", sketch.ErrSnapshotMismatch, magic[:])
	}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	d, err := read()
	if err != nil {
		return fmt.Errorf("cu: snapshot depth: %w", err)
	}
	w, err := read()
	if err != nil {
		return fmt.Errorf("cu: snapshot width: %w", err)
	}
	if int(d) != s.depth || int(w) != s.width {
		return fmt.Errorf("%w: cu snapshot geometry %dx%d, sketch built %dx%d", sketch.ErrSnapshotMismatch,
			d, w, s.depth, s.width)
	}
	// Decode into a fresh counter slice and swap only on full success, so a
	// truncated or corrupt snapshot leaves the receiver untouched.
	data := make([]uint32, s.depth*s.width)
	for i := range data {
		c, err := read()
		if err != nil {
			return fmt.Errorf("cu: counter %d/%d: %w", i/s.width, i%s.width, err)
		}
		if c > 0xffffffff {
			return fmt.Errorf("cu: counter %d/%d overflows 32 bits", i/s.width, i%s.width)
		}
		data[i] = uint32(c)
	}
	s.data = data
	return nil
}
