package cu

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot serialization, implementing sketch.Snapshotter: magic "CUS1" |
// d | width | counters as uvarints. As with CM, the hash family derives
// from the Spec seed the restoring side builds with and is not serialized.

var cuMagic = [4]byte{'C', 'U', 'S', '1'}

// Snapshot writes the sketch's full state to w.
func (s *Sketch) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(cuMagic[:])
	var buf [binary.MaxVarintLen64]byte
	write := func(vs ...uint64) {
		for _, v := range vs {
			n := binary.PutUvarint(buf[:], v)
			bw.Write(buf[:n])
		}
	}
	write(uint64(len(s.rows)), uint64(s.width))
	for i := range s.rows {
		for _, c := range s.rows[i] {
			write(uint64(c))
		}
	}
	return bw.Flush()
}

// Restore replaces the counters with a snapshot written by a same-Spec
// sibling's Snapshot. The serialized geometry must match the receiver's.
func (s *Sketch) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("cu: reading snapshot magic: %w", err)
	}
	if magic != cuMagic {
		return fmt.Errorf("cu: bad snapshot magic %q", magic[:])
	}
	read := func() (uint64, error) { return binary.ReadUvarint(br) }
	d, err := read()
	if err != nil {
		return fmt.Errorf("cu: snapshot depth: %w", err)
	}
	w, err := read()
	if err != nil {
		return fmt.Errorf("cu: snapshot width: %w", err)
	}
	if int(d) != len(s.rows) || int(w) != s.width {
		return fmt.Errorf("cu: snapshot geometry %dx%d, sketch built %dx%d",
			d, w, len(s.rows), s.width)
	}
	// Decode into fresh rows and swap only on full success, so a truncated
	// or corrupt snapshot leaves the receiver untouched.
	rows := make([][]uint32, len(s.rows))
	for i := range rows {
		rows[i] = make([]uint32, s.width)
		for j := range rows[i] {
			c, err := read()
			if err != nil {
				return fmt.Errorf("cu: counter %d/%d: %w", i, j, err)
			}
			if c > 0xffffffff {
				return fmt.Errorf("cu: counter %d/%d overflows 32 bits", i, j)
			}
			rows[i][j] = uint32(c)
		}
	}
	s.rows = rows
	return nil
}
