// Package cu implements the CU sketch (Estan & Varghese, SIGCOMM 2002):
// Count-Min with conservative update. On insertion only the minimum mapped
// counters grow, which tightens the overestimate while preserving the
// never-underestimate guarantee. Like CM, the paper evaluates a fast (d=3)
// and an accurate (d=16) variant, and §3.3's mice filter is a saturating CU.
package cu

import (
	"repro/internal/hash"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// CounterBytes is the accounted size of one 32-bit counter.
const CounterBytes = 4

// Sketch is a CU sketch with d rows of w 32-bit counters.
type Sketch struct {
	rows   [][]uint32
	width  int
	hashes *hash.Family
	name   string
	// idx caches the per-row bucket indexes between the read and write
	// phases of an insertion, avoiding re-hashing.
	idx []int
}

// New builds a CU sketch with d rows of width counters each.
func New(d, width int, seed uint64, name string) *Sketch {
	if d < 1 || width < 1 {
		panic("cu: invalid geometry")
	}
	s := &Sketch{
		rows:   make([][]uint32, d),
		width:  width,
		hashes: hash.NewFamily(seed, d),
		name:   name,
		idx:    make([]int, d),
	}
	for i := range s.rows {
		s.rows[i] = make([]uint32, width)
	}
	return s
}

// NewFast builds the 3-row throughput variant sized to memBytes.
func NewFast(memBytes int, seed uint64) *Sketch {
	return New(3, widthFor(memBytes, 3), seed, "CU_fast")
}

// NewAccurate builds the 16-row accuracy variant sized to memBytes.
func NewAccurate(memBytes int, seed uint64) *Sketch {
	return New(16, widthFor(memBytes, 16), seed, "CU_acc")
}

func widthFor(memBytes, d int) int {
	w := memBytes / (d * CounterBytes)
	if w < 1 {
		w = 1
	}
	return w
}

// Insert raises only the minimum mapped counters to min+value.
func (s *Sketch) Insert(key, value uint64) {
	var min uint64
	for i := range s.rows {
		j := s.hashes.Bucket(i, key, s.width)
		s.idx[i] = j
		c := uint64(s.rows[i][j])
		if i == 0 || c < min {
			min = c
		}
	}
	target := uint32(min + value)
	for i := range s.rows {
		if s.rows[i][s.idx[i]] < target {
			s.rows[i][s.idx[i]] = target
		}
	}
}

// InsertBatch is the native bulk-ingestion path. Conservative update is
// order-sensitive, so unlike CM the batch cannot be aggregated per key;
// instead the row indexes are reused across runs of equal keys (bursty
// streams repeat keys back to back) and the read/write phases run over the
// cached indexes without re-hashing. Counter state is bit-identical to
// item-at-a-time insertion.
func (s *Sketch) InsertBatch(items []stream.Item) {
	var prevKey uint64
	havePrev := false
	for _, it := range items {
		if !havePrev || it.Key != prevKey {
			for i := range s.rows {
				s.idx[i] = s.hashes.Bucket(i, it.Key, s.width)
			}
			prevKey, havePrev = it.Key, true
		}
		var min uint64
		for i := range s.rows {
			c := uint64(s.rows[i][s.idx[i]])
			if i == 0 || c < min {
				min = c
			}
		}
		target := uint32(min + it.Value)
		for i := range s.rows {
			if s.rows[i][s.idx[i]] < target {
				s.rows[i][s.idx[i]] = target
			}
		}
	}
}

// Merge adds another same-geometry CU sketch counter-by-counter. Every row
// satisfies a_i + b_i ≥ f_A(e) + f_B(e) for each key e mapped there, so the
// minimum stays a certified overestimate of the union stream. Conservative
// update is order-sensitive, so unlike CM the merged counters are not
// bit-identical to one sketch fed the concatenated stream — the
// overestimate may loosen, never the direction of the bound.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return sketch.MergeIncompatible(s, other, "not a CU sketch")
	}
	if len(s.rows) != len(o.rows) || s.width != o.width {
		return sketch.MergeIncompatible(s, other, "geometry differs")
	}
	if !s.hashes.Equal(o.hashes) {
		return sketch.MergeIncompatible(s, other, "hash seeds differ")
	}
	for i := range s.rows {
		dst, src := s.rows[i], o.rows[i]
		for j := range dst {
			dst[j] += src[j]
		}
	}
	return nil
}

// Query returns the minimum mapped counter, a certified overestimate.
// Safe for concurrent readers.
func (s *Sketch) Query(key uint64) uint64 {
	var min uint64
	for i := range s.rows {
		j := s.hashes.Bucket(i, key, s.width)
		c := uint64(s.rows[i][j])
		if i == 0 || c < min {
			min = c
		}
	}
	return min
}

// QueryBatch is the native batch read path (sketch.BatchQuerier): runs of
// equal keys reuse the previous row-minimum without re-hashing, mirroring
// how InsertBatch reuses row indexes across bursty repeats. CU cannot
// certify per-key errors, so a non-nil mpe is zero-filled. Answers are
// identical to per-key Query; safe for concurrent readers (no shared
// scratch — the insert-side idx cache is untouched).
func (s *Sketch) QueryBatch(keys []uint64, est, mpe []uint64) {
	var prevKey, prevEst uint64
	havePrev := false
	for i, k := range keys {
		if mpe != nil {
			mpe[i] = 0
		}
		if havePrev && k == prevKey {
			est[i] = prevEst
			continue
		}
		var min uint64
		for r := range s.rows {
			j := s.hashes.Bucket(r, k, s.width)
			c := uint64(s.rows[r][j])
			if r == 0 || c < min {
				min = c
			}
		}
		est[i] = min
		prevKey, prevEst, havePrev = k, min, true
	}
}

// Depth returns the number of rows d.
func (s *Sketch) Depth() int { return len(s.rows) }

// MemoryBytes reports d × w × 4 bytes.
func (s *Sketch) MemoryBytes() int { return len(s.rows) * s.width * CounterBytes }

// Name identifies the variant.
func (s *Sketch) Name() string { return s.name }

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	for i := range s.rows {
		clear(s.rows[i])
	}
}
