// Package cu implements the CU sketch (Estan & Varghese, SIGCOMM 2002):
// Count-Min with conservative update. On insertion only the minimum mapped
// counters grow, which tightens the overestimate while preserving the
// never-underestimate guarantee. Like CM, the paper evaluates a fast (d=3)
// and an accurate (d=16) variant, and §3.3's mice filter is a saturating CU.
package cu

import (
	"repro/internal/hash"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// CounterBytes is the accounted size of one 32-bit counter.
const CounterBytes = 4

// maxStackRows bounds the per-query scratch kept on the stack; both
// evaluated depths (d=3 and d=16) fit, deeper sketches fall back to one
// allocation per call.
const maxStackRows = 16

// Sketch is a CU sketch with d rows of w 32-bit counters.
//
// The counters live in one contiguous row-major slice (row i is
// data[i*width:(i+1)*width]), so a d-row touch is d offsets into a single
// allocation instead of d slice-header dereferences.
//
// Insert and InsertBatch are single-writer: conservative update needs the
// mapped positions twice (a read phase to find the row minimum, a write
// phase to raise only the minima), and both phases run over the per-sketch
// pos scratch — two concurrent writers would interleave their phases and
// corrupt the never-underestimate invariant, exactly like interleaved
// read-modify-writes on the counters themselves. Wrap in sketch.Sharded
// for concurrent insertion. Query and QueryBatch never touch the scratch
// (their row indexes stay on the stack), so any number of readers may run
// concurrently with each other on sealed state; see TestQueryTouchesNoScratch.
// The zero value is not usable; build with New.
type Sketch struct {
	data   []uint32
	width  int
	depth  int
	hashes *hash.Family
	name   string
	// pos caches the d flat counter positions (row base + bucket) between
	// the read and write phases of an insertion, avoiding re-hashing and a
	// second offset walk. Single-writer scratch: sized to the sketch's
	// depth at construction, never aliased by the counter slice.
	pos []int
}

// New builds a CU sketch with d rows of width counters each.
func New(d, width int, seed uint64, name string) *Sketch {
	if d < 1 || width < 1 {
		panic("cu: invalid geometry")
	}
	return &Sketch{
		data:   make([]uint32, d*width),
		width:  width,
		depth:  d,
		hashes: hash.NewFamily(seed, d),
		name:   name,
		pos:    make([]int, d),
	}
}

// NewFast builds the 3-row throughput variant sized to memBytes.
func NewFast(memBytes int, seed uint64) *Sketch {
	return New(3, widthFor(memBytes, 3), seed, "CU_fast")
}

// NewAccurate builds the 16-row accuracy variant sized to memBytes.
func NewAccurate(memBytes int, seed uint64) *Sketch {
	return New(16, widthFor(memBytes, 16), seed, "CU_acc")
}

func widthFor(memBytes, d int) int {
	w := memBytes / (d * CounterBytes)
	if w < 1 {
		w = 1
	}
	return w
}

// Insert raises only the minimum mapped counters to min+value. All d row
// indexes come from one multi-row hash pass; the flat positions are cached
// in the single-writer scratch so the write phase re-derives nothing.
func (s *Sketch) Insert(key, value uint64) {
	s.hashes.Buckets(s.pos, key, s.width)
	var min uint64
	base := 0
	for i, j := range s.pos {
		p := base + j
		s.pos[i] = p
		c := uint64(s.data[p])
		if i == 0 || c < min {
			min = c
		}
		base += s.width
	}
	target := uint32(min + value)
	for _, p := range s.pos {
		if s.data[p] < target {
			s.data[p] = target
		}
	}
}

// InsertBatch is the native bulk-ingestion path. Conservative update is
// order-sensitive, so unlike CM the batch cannot be aggregated per key;
// instead the flat counter positions are hashed once per run of equal keys
// (bursty streams repeat keys back to back) and the read/write phases run
// over the cached positions without re-hashing. Counter state is
// bit-identical to item-at-a-time insertion. Single-writer, like Insert.
func (s *Sketch) InsertBatch(items []stream.Item) {
	var prevKey uint64
	havePrev := false
	for _, it := range items {
		if !havePrev || it.Key != prevKey {
			s.hashes.Buckets(s.pos, it.Key, s.width)
			base := 0
			for i, j := range s.pos {
				s.pos[i] = base + j
				base += s.width
			}
			prevKey, havePrev = it.Key, true
		}
		var min uint64
		for i, p := range s.pos {
			c := uint64(s.data[p])
			if i == 0 || c < min {
				min = c
			}
		}
		target := uint32(min + it.Value)
		for _, p := range s.pos {
			if s.data[p] < target {
				s.data[p] = target
			}
		}
	}
}

// Merge adds another same-geometry CU sketch counter-by-counter. Every row
// satisfies a_i + b_i ≥ f_A(e) + f_B(e) for each key e mapped there, so the
// minimum stays a certified overestimate of the union stream. Conservative
// update is order-sensitive, so unlike CM the merged counters are not
// bit-identical to one sketch fed the concatenated stream — the
// overestimate may loosen, never the direction of the bound.
func (s *Sketch) Merge(other sketch.Sketch) error {
	o, ok := other.(*Sketch)
	if !ok {
		return sketch.MergeIncompatible(s, other, "not a CU sketch")
	}
	if s.depth != o.depth || s.width != o.width {
		return sketch.MergeIncompatible(s, other, "geometry differs")
	}
	if !s.hashes.Equal(o.hashes) {
		return sketch.MergeIncompatible(s, other, "hash seeds differ")
	}
	for i, c := range o.data {
		s.data[i] += c
	}
	return nil
}

// Query returns the minimum mapped counter, a certified overestimate.
// Safe for concurrent readers: the row-index scratch is a per-call stack
// array (the insert-side pos cache is untouched), so queries share no
// state and allocate nothing (at d ≤ 16).
func (s *Sketch) Query(key uint64) uint64 {
	var buf [maxStackRows]int
	idx := buf[:]
	if s.depth > maxStackRows {
		idx = make([]int, s.depth)
	}
	idx = idx[:s.depth]
	s.hashes.Buckets(idx, key, s.width)
	var min uint64
	base := 0
	for i, j := range idx {
		c := uint64(s.data[base+j])
		if i == 0 || c < min {
			min = c
		}
		base += s.width
	}
	return min
}

// QueryBatch is the native batch read path (sketch.BatchQuerier): runs of
// equal keys reuse the previous row-minimum without re-hashing, mirroring
// how InsertBatch reuses row positions across bursty repeats, and each
// distinct key's indexes come from one multi-row hash pass. CU cannot
// certify per-key errors, so a non-nil mpe is zero-filled. Answers are
// identical to per-key Query; safe for concurrent readers (no shared
// scratch — the insert-side pos cache is untouched).
func (s *Sketch) QueryBatch(keys []uint64, est, mpe []uint64) {
	var buf [maxStackRows]int
	idx := buf[:]
	if s.depth > maxStackRows {
		idx = make([]int, s.depth)
	}
	idx = idx[:s.depth]
	var prevKey, prevEst uint64
	havePrev := false
	for i, k := range keys {
		if mpe != nil {
			mpe[i] = 0
		}
		if havePrev && k == prevKey {
			est[i] = prevEst
			continue
		}
		s.hashes.Buckets(idx, k, s.width)
		var min uint64
		base := 0
		for r, j := range idx {
			c := uint64(s.data[base+j])
			if r == 0 || c < min {
				min = c
			}
			base += s.width
		}
		est[i] = min
		prevKey, prevEst, havePrev = k, min, true
	}
}

// Depth returns the number of rows d.
func (s *Sketch) Depth() int { return s.depth }

// MemoryBytes reports d × w × 4 bytes.
func (s *Sketch) MemoryBytes() int { return s.depth * s.width * CounterBytes }

// Name identifies the variant.
func (s *Sketch) Name() string { return s.name }

// Reset zeroes all counters.
func (s *Sketch) Reset() {
	clear(s.data)
}
