// Package fixtures defines the deterministic sketch states pinned by the
// golden snapshot fixtures in testdata/flatten/. The fixture generator
// (internal/tools/snapfixtures) and the bit-exactness test at the repo root
// both build their sketches through this package, so the generator and the
// verifier can never drift apart.
package fixtures

import (
	_ "repro/internal/sketch/all" // register every variant

	"repro/internal/sketch"
	"repro/internal/stream"
)

// Case is one pinned sketch state: a registry variant, its Spec, and the
// stream geometry it is fed.
type Case struct {
	Name  string // fixture file stem and registry algorithm name prefix
	Algo  string // registry name
	Spec  sketch.Spec
	Items int // stream length
}

// Cases returns the fixture set: the three flattened counter families at
// both evaluated depths, plus a sharded fan-out to pin the container
// format. Specs are small so fixtures stay a few KB.
func Cases() []Case {
	return []Case{
		{Name: "cm_fast", Algo: "CM_fast", Spec: sketch.Spec{MemoryBytes: 4096, Seed: 42}, Items: 6000},
		{Name: "cm_acc", Algo: "CM_acc", Spec: sketch.Spec{MemoryBytes: 4096, Seed: 42}, Items: 6000},
		{Name: "cu_fast", Algo: "CU_fast", Spec: sketch.Spec{MemoryBytes: 4096, Seed: 42}, Items: 6000},
		{Name: "cu_acc", Algo: "CU_acc", Spec: sketch.Spec{MemoryBytes: 4096, Seed: 42}, Items: 6000},
		{Name: "count", Algo: "Count", Spec: sketch.Spec{MemoryBytes: 4096, Seed: 42}, Items: 6000},
		{Name: "cm_fast_sharded4", Algo: "CM_fast", Spec: sketch.Spec{MemoryBytes: 8192, Seed: 42, Shards: 4}, Items: 6000},
	}
}

// Stream returns the deterministic zipfian stream a Case is fed.
func Stream(c Case) *stream.Stream {
	return stream.Zipf(c.Items, 512, 1.0, 7)
}

// BuildAndFeed constructs the Case's sketch and feeds it the fixture
// stream: the first half item-at-a-time through Insert, the second half
// through the unified batch path, so a fixture pins both ingestion paths.
// The returned sketch has not been queried (query-side instrumentation,
// where serialized, is zero).
func BuildAndFeed(c Case) sketch.Snapshotter {
	sk := sketch.MustBuild(c.Algo, c.Spec)
	s := Stream(c)
	half := len(s.Items) / 2
	for _, it := range s.Items[:half] {
		sk.Insert(it.Key, it.Value)
	}
	sketch.InsertBatch(sk, s.Items[half:])
	return sk.(sketch.Snapshotter)
}
