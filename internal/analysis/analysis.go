// Package analysis implements the quantities of the paper's mathematical
// analysis (§4 and Appendix A): the per-layer sequences α_i, β_i, γ_i, p_i
// of Theorems 2–4, the layer-depth equation of Theorem 4, the failure-
// probability bound, and the space/time complexity formulas of Theorem 5.
//
// The package serves two purposes. First, it documents the theory as
// executable code with tests checking internal consistency (the sequences
// really decay double-exponentially; the bound telescopes below Δ).
// Second, harness experiments use it to compare measured failure rates
// against the proven ceilings — the empirical side of §4.
package analysis

import "math"

// Params are the analysis inputs: stream total N, tolerance Λ, decay
// ratios, and the per-layer structures they induce.
type Params struct {
	N      float64 // Σ f(e), the stream's L1 mass
	Lambda float64 // error tolerance Λ
	Rw     float64 // width decay ratio
	Rl     float64 // threshold decay ratio
}

// valid reports whether the parameters satisfy the theorems' hypotheses
// (Rw·Rl ≥ 2, positive N and Λ).
func (p Params) valid() bool {
	return p.N > 0 && p.Lambda > 0 && p.Rw > 1 && p.Rl > 1 && p.Rw*p.Rl >= 2
}

// W returns the proof-grade total bucket count of Theorems 2–4:
// W = 4N(RwRl)⁶ / (Λ(Rw−1)(Rl−1)). (The practical recommendation replaces
// the (RwRl)⁶ constant with (RwRl)²; see core.Config.)
func (p Params) W() float64 {
	rwrl := p.Rw * p.Rl
	return 4 * p.N * math.Pow(rwrl, 6) / (p.Lambda * (p.Rw - 1) * (p.Rl - 1))
}

// LambdaI returns λ_i = Λ(Rl−1)/Rl^i for layer i ≥ 1.
func (p Params) LambdaI(i int) float64 {
	return p.Lambda * (p.Rl - 1) / math.Pow(p.Rl, float64(i))
}

// WidthI returns w_i = W(Rw−1)/Rw^i for layer i ≥ 1.
func (p Params) WidthI(i int) float64 {
	return p.W() * (p.Rw - 1) / math.Pow(p.Rw, float64(i))
}

// AlphaI is α_i = N/(RwRl)^(i−1): the bound on the total frequency of mice
// keys entering layer i (Theorem 2's condition F_i ≤ α_i/γ_i).
func (p Params) AlphaI(i int) float64 {
	return p.N / math.Pow(p.Rw*p.Rl, float64(i-1))
}

// BetaI is β_i = α_i/(λ_i/2): the bound scale for the number of distinct
// elephant keys entering layer i.
func (p Params) BetaI(i int) float64 {
	return p.AlphaI(i) / (p.LambdaI(i) / 2)
}

// GammaI is γ_i = (RwRl)^(2^(i−1)−1) — the double-exponential divisor. Its
// growth is what makes the number of surviving keys collapse.
func (p Params) GammaI(i int) float64 {
	return math.Pow(p.Rw*p.Rl, math.Pow(2, float64(i-1))-1)
}

// PI is p_i = (RwRl)^−(2^(i−1)+4): the per-key escape probability at layer
// i (Theorem A.3).
func (p Params) PI(i int) float64 {
	return math.Pow(p.Rw*p.Rl, -(math.Pow(2, float64(i-1)) + 4))
}

// LayerFailureExponent returns p_i·α_i/(λ_i·γ_i), the exponent scale of
// the per-layer failure probabilities in Theorem 3 (all three exponential
// terms are at least this large).
func (p Params) LayerFailureExponent(i int) float64 {
	return p.PI(i) * p.AlphaI(i) / (p.LambdaI(i) * p.GammaI(i))
}

// FailureBound returns the Theorem 4 union bound on the probability that
// any layer 1..d escapes control: Σ_i 3·exp(−p_iα_i/(λ_iγ_i)).
func (p Params) FailureBound(d int) float64 {
	if !p.valid() {
		return 1
	}
	total := 0.0
	for i := 1; i <= d; i++ {
		total += 3 * math.Exp(-p.LayerFailureExponent(i))
	}
	if total > 1 {
		return 1
	}
	return total
}

// DepthFor returns the depth d of Theorem 4's root equation for a target
// overall failure probability delta:
//
//	Rl^d / (RwRl)^(2^d+d) = Δ1·(Λ/N)·ln(1/Δ),  Δ1 = 2Rw²Rl²(Rl−1)
//
// At the root, the layer-d failure exponent equals 2·ln(1/Δ) (so its term
// is Δ²), and shallower layers' terms telescope below it. The per-layer
// exponent decreases in d, so the integer solution is the LARGEST d whose
// exponent still meets 2·ln(1/Δ); deeper layers would break the union
// bound. d grows as O(lnln(N/Λ)) — the paper's headline depth.
func (p Params) DepthFor(delta float64) int {
	if !p.valid() || delta <= 0 || delta >= 1 {
		return 7
	}
	need := 2 * math.Log(1/delta)
	d := 1
	for d < 64 && p.LayerFailureExponent(d+1) >= need {
		d++
	}
	return d
}

// EmergencySize returns the Theorem 4 emergency SpaceSaving size
// Δ2·ln(1/Δ) with Δ2 = 6Rw³Rl⁴.
func (p Params) EmergencySize(delta float64) int {
	if delta <= 0 || delta >= 1 {
		return 1
	}
	delta2 := 6 * math.Pow(p.Rw, 3) * math.Pow(p.Rl, 4)
	return int(math.Ceil(delta2 * math.Log(1/delta)))
}

// SpaceBuckets returns the Theorem 5 space bound in buckets:
// Σ w_i + Δ1·ln(1/Δ) = O(N/Λ + ln(1/Δ)).
func (p Params) SpaceBuckets(delta float64) float64 {
	d := p.DepthFor(delta)
	total := 0.0
	for i := 1; i <= d; i++ {
		total += math.Ceil(p.WidthI(i))
	}
	delta1 := 2 * p.Rw * p.Rw * p.Rl * p.Rl * (p.Rl - 1)
	return total + delta1*math.Log(1/delta)
}

// AmortizedTime returns the Theorem 5 amortized insertion cost
// (1−Δ)·(1 + Σp_i) + Δ·d = O(1 + Δ·lnln(N/Λ)).
func (p Params) AmortizedTime(delta float64) float64 {
	d := p.DepthFor(delta)
	sum := 0.0
	for i := 1; i <= d; i++ {
		sum += p.PI(i)
	}
	return (1-delta)*(1+sum) + delta*float64(d)
}

// Lemma1Bound returns the concentration bound of Appendix A.1:
// Pr[X > (1+Δ)·nmp] ≤ exp(−(Δ−(e−2))·nmp) for the sum of adapted {0,s_i}
// variables with conditional success probability ≤ p and mean nmp.
func Lemma1Bound(deviation, nmp float64) float64 {
	b := math.Exp(-(deviation - (math.E - 2)) * nmp)
	if b > 1 {
		return 1
	}
	return b
}
