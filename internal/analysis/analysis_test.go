package analysis

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stream"
)

func defaultParams() Params {
	return Params{N: 10_000_000, Lambda: 25, Rw: 2, Rl: 2.5}
}

func TestSequencesDecayDoubleExponentially(t *testing.T) {
	p := defaultParams()
	// γ_i must square (up to the constant) each step: γ_{i+1} ≈ γ_i² · RwRl.
	for i := 1; i <= 6; i++ {
		g1, g2 := p.GammaI(i), p.GammaI(i+1)
		want := g1 * g1 * (p.Rw * p.Rl)
		if math.Abs(g2-want)/want > 1e-9 {
			t.Errorf("γ_%d=%g, want γ_%d²·RwRl=%g", i+1, g2, i, want)
		}
	}
	// α decays geometrically; the α/γ product (the actual key-mass bound)
	// collapses double-exponentially.
	prevRatio := 0.0
	for i := 1; i <= 5; i++ {
		cur := p.AlphaI(i) / p.GammaI(i)
		next := p.AlphaI(i+1) / p.GammaI(i+1)
		ratio := cur / next
		if i > 1 && ratio <= prevRatio {
			t.Errorf("layer %d: survival-mass shrink factor %g did not accelerate (prev %g)", i, ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

func TestPIDecreasing(t *testing.T) {
	p := defaultParams()
	for i := 1; i <= 8; i++ {
		if p.PI(i) <= p.PI(i+1) {
			t.Errorf("p_%d=%g not greater than p_%d=%g", i, p.PI(i), i+1, p.PI(i+1))
		}
		if p.PI(i) > 1 {
			t.Errorf("p_%d=%g exceeds 1", i, p.PI(i))
		}
	}
}

func TestLambdaSumWithinBudget(t *testing.T) {
	p := defaultParams()
	sum := 0.0
	for i := 1; i <= 40; i++ {
		sum += p.LambdaI(i)
	}
	if sum > p.Lambda+1e-9 {
		t.Errorf("Σλ_i = %g exceeds Λ = %g", sum, p.Lambda)
	}
}

func TestWidthSumMatchesW(t *testing.T) {
	p := defaultParams()
	sum := 0.0
	for i := 1; i <= 60; i++ {
		sum += p.WidthI(i)
	}
	if sum > p.W()+1e-6 {
		t.Errorf("Σw_i = %g exceeds W = %g", sum, p.W())
	}
	if sum < 0.99*p.W() {
		t.Errorf("Σw_i = %g far below W = %g", sum, p.W())
	}
}

func TestFailureBoundTiny(t *testing.T) {
	p := defaultParams()
	// At the proof-grade W and the Theorem 4 depth, the failure bound must
	// be astronomically small — the "not a single outlier after many
	// years" claim.
	b := p.FailureBound(p.DepthFor(1e-10))
	if b > 1e-10 {
		t.Errorf("failure bound %g; paper claims ≪ 1e-10", b)
	}
	// Invalid params degrade to the trivial bound.
	if (Params{N: -1}).FailureBound(8) != 1 {
		t.Error("invalid params should bound at 1")
	}
}

func TestDepthForGrowsLnLn(t *testing.T) {
	base := Params{N: 1e6, Lambda: 25, Rw: 2, Rl: 2.5}
	big := Params{N: 1e15, Lambda: 25, Rw: 2, Rl: 2.5}
	d1, d2 := base.DepthFor(1e-9), big.DepthFor(1e-9)
	if d2 < d1 {
		t.Errorf("depth shrank with N: %d vs %d", d1, d2)
	}
	if d2-d1 > 4 {
		t.Errorf("depth grew by %d over 9 orders of magnitude; lnln growth expected", d2-d1)
	}
	if base.DepthFor(0) != 7 || base.DepthFor(2) != 7 {
		t.Error("degenerate delta should fall back to 7")
	}
	// At the returned depth the last layer's term is ≤ Δ²; one layer
	// deeper would break it.
	d := base.DepthFor(1e-9)
	need := 2 * math.Log(1e9)
	if base.LayerFailureExponent(d) < need && d > 1 {
		t.Errorf("layer %d exponent %.1f below 2ln(1/Δ)=%.1f", d, base.LayerFailureExponent(d), need)
	}
	if base.LayerFailureExponent(d+1) >= need {
		t.Errorf("depth %d not maximal: layer %d still meets the bound", d, d+1)
	}
}

func TestEmergencySizeMatchesDelta2(t *testing.T) {
	p := defaultParams()
	// Δ2 = 6Rw³Rl⁴ = 6·8·39.0625 = 1875; at Δ=e⁻¹ the size is exactly Δ2.
	got := p.EmergencySize(1 / math.E)
	if got != 1875 {
		t.Errorf("EmergencySize(1/e) = %d, want Δ2 = 1875", got)
	}
	if p.EmergencySize(0.5) >= got {
		t.Error("larger Δ must need a smaller emergency structure")
	}
}

func TestSpaceLinearInNOverLambda(t *testing.T) {
	a := Params{N: 1e7, Lambda: 25, Rw: 2, Rl: 2.5}
	b := Params{N: 2e7, Lambda: 25, Rw: 2, Rl: 2.5}
	sa, sb := a.SpaceBuckets(1e-9), b.SpaceBuckets(1e-9)
	ratio := sb / sa
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("space did not scale linearly with N: ratio %.2f", ratio)
	}
}

func TestAmortizedTimeNearOne(t *testing.T) {
	p := defaultParams()
	at := p.AmortizedTime(1e-9)
	// Σp_i ≤ p_1·(1+...) with p_1 = (RwRl)^-5 = 5^-5 = 1/3125: the
	// amortized cost must sit just above 1 insertion probe.
	if at < 1 || at > 1.01 {
		t.Errorf("amortized time %g, want ≈1", at)
	}
}

func TestLemma1Bound(t *testing.T) {
	// The bound must decay in both arguments and cap at 1.
	if Lemma1Bound(1, 10) >= Lemma1Bound(0.8, 10) {
		t.Error("bound not decreasing in deviation")
	}
	if Lemma1Bound(1, 20) >= Lemma1Bound(1, 10) {
		t.Error("bound not decreasing in mass")
	}
	if Lemma1Bound(0.1, 1) != 1 {
		t.Error("sub-(e−2) deviations should cap at the trivial bound")
	}
}

// TestEmpiricalFailuresBelowBound is the empirical side of §4: measured
// insertion-failure rates at proof-grade sizing must sit (far) below the
// theoretical ceiling.
func TestEmpiricalFailuresBelowBound(t *testing.T) {
	const items = 200_000
	const lambda = 25
	p := Params{N: items, Lambda: lambda, Rw: 2, Rl: 2.5}
	bound := p.FailureBound(8)
	s := stream.IPTrace(items, 21)
	trials := 5
	failures := uint64(0)
	for trial := 0; trial < trials; trial++ {
		sk := core.MustNew(core.Config{
			Lambda:        lambda,
			ExpectedTotal: items, // recommended (not proof-grade) sizing
			Seed:          uint64(trial) + 1,
		})
		metrics.Feed(sk, s)
		f, _ := sk.InsertionFailures()
		failures += f
	}
	if failures > 0 {
		t.Errorf("%d insertion failures across %d trials at recommended sizing (theory bound %g at proof sizing)",
			failures, trials, bound)
	}
}

func TestDepthForMatchesCore(t *testing.T) {
	// core.TheoreticalD and analysis.DepthFor implement the same equation.
	p := Params{N: 1e9, Lambda: 25, Rw: 2, Rl: 2.5}
	if got, want := p.DepthFor(1e-6), core.TheoreticalD(1e9, 25, 2, 2.5, 1e-6); got != want {
		t.Errorf("DepthFor=%d, core.TheoreticalD=%d", got, want)
	}
}
