package ingest

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/epoch"
	"repro/internal/sketch"
)

// ForRing builds a pipeline whose fold target is an epoch ring's active
// window and wires the two together: worker deltas (built by newDelta, a
// same-Spec sibling of the ring's factory product) fold through r.Fold, and
// the pipeline's Drain is attached as the ring's pre-seal flusher — so when
// a read path seals an overdue epoch, every batch submitted during that
// epoch has already folded into it and the sealed window is exact.
//
// Producers tagging Batch.Epoch get a second exactness lever: a worker
// folds its delta the moment a batch's tag differs from the delta's, so
// deltas never straddle a producer-declared epoch seal even between drains.
//
// Because a pipelined ring's folds never rotate (rotation must follow a
// drain), ForRing also starts a janitor goroutine that pokes the ring's
// read path on a wall-clock schedule: epochs seal on time even when nobody
// queries, instead of a read-free stretch collapsing several epochs' worth
// of traffic into one late window. The janitor exits when the pipeline is
// closed.
//
// The returned pipeline should be the ring's only writer; Close it before
// discarding the ring.
func ForRing(r *epoch.Ring, newDelta func() sketch.Sketch, t Tuning) (*Pipeline, error) {
	// One throwaway probe build at startup buys a named error here instead
	// of a worker panic or a fold failure after traffic was acked.
	probe := newDelta()
	if probe == nil {
		return nil, errors.New("ingest: ring pipeline NewDelta returned nil")
	}
	if _, ok := probe.(sketch.Mergeable); !ok {
		return nil, fmt.Errorf("ingest: ring pipeline needs a Mergeable variant, %s is not", probe.Name())
	}
	p := New(Options{
		Tuning:   t,
		NewDelta: newDelta,
		Fold:     r.Fold,
	})
	r.AttachFlusher(func() { _ = p.Drain() })
	go ringJanitor(r, p)
	return p, nil
}

// ringJanitor drives rotation for rings nobody reads: Rotations() is the
// full read-path poke (drain attached pipelines when overdue, then seal).
// The tick is a fraction of the epoch so a seal lands close to its
// boundary; rings on test clocks simply see no-op pokes.
func ringJanitor(r *epoch.Ring, p *Pipeline) {
	tick := r.Interval() / 4
	if min := 10 * time.Millisecond; tick < min {
		tick = min
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-tk.C:
			r.Rotations()
		case <-p.done:
			return
		}
	}
}
