package ingest

import (
	"fmt"
	"sync"

	"repro/internal/sketch"
	"repro/internal/stream"
)

// AsyncIngester is the sketch-level surface of the ingest plane: it wraps
// any Mergeable registry variant behind a Pipeline, so writers enqueue
// batches instead of taking the sketch's lock, and readers see state that
// only ever changes by whole-delta folds. It implements sketch.Sketch,
// sketch.BatchInserter, and sketch.BatchQuerier, so it drops into every
// place a sketch goes — with the usual async contract: reads answer the
// folded state; call Drain first for read-your-writes.
type AsyncIngester struct {
	name string

	// mu guards target during folds and reads, the "one short lock per
	// flush" of the pipeline contract. Self-synchronizing targets (sharded
	// wrappers) still take it: a whole-batch read then sees no torn folds.
	mu     sync.Mutex
	target sketch.Sketch

	pipe *Pipeline
}

// NewAsyncIngester builds the named registry variant from spec and wraps it
// in a pipeline of t.Workers private same-Spec deltas. The variant must be
// Mergeable — that capability is what makes delta folding sound.
func NewAsyncIngester(algo string, spec sketch.Spec, t Tuning) (*AsyncIngester, error) {
	entry, ok := sketch.Lookup(algo)
	if !ok {
		return nil, fmt.Errorf("ingest: unknown algorithm %q", algo)
	}
	if !entry.Caps.Has(sketch.CapMergeable) {
		return nil, fmt.Errorf("ingest: %q is not Mergeable — async ingest folds deltas, which needs Merge", algo)
	}
	target := entry.Build(spec)
	if _, isM := target.(sketch.Mergeable); !isM {
		return nil, fmt.Errorf("ingest: %q registered Mergeable but built %T without Merge", algo, target)
	}
	a := &AsyncIngester{name: target.Name() + "_async", target: target}
	a.pipe = New(Options{
		Tuning:   t,
		NewDelta: func() sketch.Sketch { return entry.Build(spec) },
		Fold: func(delta sketch.Sketch) error {
			a.mu.Lock()
			defer a.mu.Unlock()
			return sketch.Merge(a.target, delta)
		},
	})
	return a, nil
}

// Submit enqueues one typed batch, the native entry point.
func (a *AsyncIngester) Submit(b Batch) Ack { return a.pipe.Submit(b) }

// InsertBatch enqueues items as one unattributed batch (sketch.BatchInserter).
func (a *AsyncIngester) InsertBatch(items []stream.Item) {
	a.pipe.Submit(Batch{Items: items})
}

// Insert enqueues a single item. The pipeline's unit of work is the batch;
// prefer InsertBatch or Submit on any hot path.
func (a *AsyncIngester) Insert(key, value uint64) {
	a.pipe.Submit(Batch{Items: []stream.Item{{Key: key, Value: value}}})
}

// Query answers from the folded state.
func (a *AsyncIngester) Query(key uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.target.Query(key)
}

// QueryWithError answers the folded state's certified interval; ok is false
// when the wrapped variant is not ErrorBounded.
func (a *AsyncIngester) QueryWithError(key uint64) (est, mpe uint64, ok bool) {
	eb, isEB := a.target.(sketch.ErrorBounded)
	if !isEB {
		return 0, 0, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	est, mpe = eb.QueryWithError(key)
	return est, mpe, true
}

// QueryBatch answers a whole key batch under one lock hold through the
// target's native batch path (sketch.BatchQuerier shape).
func (a *AsyncIngester) QueryBatch(keys []uint64, est, mpe []uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sketch.QueryBatch(a.target, keys, est, mpe)
}

// Drain blocks until everything accepted so far is folded — the
// read-your-writes barrier.
func (a *AsyncIngester) Drain() error { return a.pipe.Drain() }

// Close drains, stops the workers, and reports the first worker error.
func (a *AsyncIngester) Close() error { return a.pipe.Close() }

// Stats snapshots the pipeline counters.
func (a *AsyncIngester) Stats() Stats { return a.pipe.Stats() }

// Target exposes the wrapped sketch. Callers must Drain first and must not
// write to it while the pipeline lives.
func (a *AsyncIngester) Target() sketch.Sketch {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.target
}

// MemoryBytes reports the target's accounted memory. Worker deltas are
// ingest-plane buffers, excluded exactly as the paper's accounting excludes
// control-plane copies.
func (a *AsyncIngester) MemoryBytes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.target.MemoryBytes()
}

// Name identifies the wrapped algorithm.
func (a *AsyncIngester) Name() string { return a.name }
