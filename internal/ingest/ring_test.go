package ingest_test

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/epoch"
	"repro/internal/ingest"
	"repro/internal/query"
	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
)

// fakeClock is a test clock the ring reads; advance it to cross epochs.
// Reads and advances are atomic: ring read paths may consult the clock from
// any goroutine.
type fakeClock struct{ nanos atomic.Int64 }

func (c *fakeClock) clock() time.Time        { return time.Unix(0, c.nanos.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.nanos.Add(int64(d)) }

// TestForRingSealedWindowsExact pins the epoch-exactness contract: every
// batch submitted during an epoch folds into that epoch's window before the
// read path seals it, so sealed sliding-window answers equal sequential
// per-epoch ingestion exactly (CM: linear, bit-exact).
func TestForRingSealedWindowsExact(t *testing.T) {
	spec := sketch.Spec{MemoryBytes: 1 << 18, Seed: 5}
	entry, _ := sketch.Lookup("CM_fast")
	clk := &fakeClock{}
	interval := 10 * time.Second
	ring := epoch.NewRing(entry.Factory(spec), spec.MemoryBytes, interval, 4, clk.clock)
	p, err := ingest.ForRing(ring, func() sketch.Sketch { return entry.Build(spec) }, ingest.Tuning{Workers: 3, FlushItems: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Reference: a plain ring fed synchronously with the same per-epoch
	// traffic (same clock schedule).
	refClk := &fakeClock{}
	ref := epoch.NewRing(entry.Factory(spec), spec.MemoryBytes, interval, 4, refClk.clock)

	perEpoch := [][]stream.Item{
		stream.Zipf(9_000, 700, 1.1, 1).Items,
		stream.Zipf(9_000, 700, 1.1, 2).Items,
		stream.Zipf(9_000, 700, 1.1, 3).Items,
	}
	for _, items := range perEpoch {
		for _, c := range chunks(items, 600) {
			p.Submit(ingest.Batch{Items: c})
		}
		ref.InsertBatch(items)
		clk.advance(interval)
		refClk.advance(interval)
		// A read path observes the overdue epoch: it must drain the
		// pipeline first, then seal — landing every submitted batch in the
		// window that was active when it was submitted.
		ring.Rotations()
		ref.Rotations()
	}
	if got, want := ring.Sealed(), ref.Sealed(); got != want {
		t.Fatalf("pipelined ring sealed %d windows, reference %d", got, want)
	}

	keys := make(map[uint64]struct{})
	for _, items := range perEpoch {
		for _, it := range items {
			keys[it.Key] = struct{}{}
		}
	}
	for n := 1; n <= 3; n++ {
		for key := range keys {
			if got, want := ring.QueryWindow(key, n), ref.QueryWindow(key, n); got != want {
				t.Fatalf("window %d key %d: pipelined ring %d, sequential ring %d", n, key, got, want)
			}
		}
	}
}

// TestForRingCertifiedUnderConcurrency runs pipelined ingest, clock
// advances, and sliding-window Execute queries concurrently (the -race
// interleaving case for ring-backed sketches), then asserts the drained
// ring's certified window bounds contain the exact per-key sums.
func TestForRingCertifiedUnderConcurrency(t *testing.T) {
	spec := sketch.Spec{MemoryBytes: 1 << 19, Lambda: 25, Seed: 9}
	entry, _ := sketch.Lookup("Ours")
	clk := &fakeClock{}
	interval := time.Hour // epochs advance only when we say so
	ring := epoch.NewRing(entry.Factory(spec), spec.MemoryBytes, interval, 8, clk.clock)
	p, err := ingest.ForRing(ring, func() sketch.Sketch { return entry.Build(spec) }, ingest.Tuning{Workers: 4, FlushItems: 1 << 11})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	s := testStream(t, 40_000)
	half := len(s.Items) / 2
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, c := range chunks(s.Items[:half], 512) {
			p.Submit(ingest.Batch{Items: c})
		}
	}()
	// Readers race the writers: answers must stay well-formed even while
	// folds land (their content covers whatever had folded by then).
	for i := 0; i < 50; i++ {
		ans, err := ring.Execute(query.Request{Kind: query.Window, Keys: []uint64{s.Items[i].Key}, Window: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ans.PerKey {
			if e.Lower > e.Est || e.Est > e.Upper {
				t.Fatalf("malformed interval mid-ingest: %+v", e)
			}
		}
	}
	<-done

	// Seal epoch 1, ingest the rest into epoch 2, seal it too.
	clk.advance(interval)
	for _, c := range chunks(s.Items[half:], 512) {
		p.Submit(ingest.Batch{Items: c})
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	clk.advance(interval)
	if gen := ring.Generation(); gen != 2 {
		t.Fatalf("generation %d after two seals", gen)
	}

	for key, exact := range s.Truth() {
		est, mpe, ok := ring.QueryWindowWithError(key, 2)
		if !ok {
			t.Fatalf("key %d: window query not certified", key)
		}
		lo := sketch.CertifiedLowerBound(est, mpe)
		if exact < lo || exact > est {
			t.Fatalf("key %d: certified window interval [%d, %d] misses exact %d", key, lo, est, exact)
		}
	}
}
