package ingest_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/sketch"
	_ "repro/internal/sketch/all"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// testStream is a small skewed stream with known ground truth.
func testStream(t testing.TB, n int) *stream.Stream {
	t.Helper()
	return stream.Zipf(n, n/10, 1.1, 7)
}

// chunks slices a stream into submission-sized batches.
func chunks(items []stream.Item, size int) [][]stream.Item {
	var out [][]stream.Item
	for lo := 0; lo < len(items); lo += size {
		hi := min(lo+size, len(items))
		out = append(out, items[lo:hi])
	}
	return out
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]ingest.Policy{"block": ingest.Block, " DROP ": ingest.Drop, "": ingest.Block} {
		got, err := ingest.ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ingest.ParsePolicy("spill"); err == nil {
		t.Error("ParsePolicy(spill) accepted")
	}
}

// TestPipelineEquivalenceLinear pins the strongest claim the plane can
// make: for a linear sketch (CM) the pipeline-ingested state is BIT-EXACT
// against sequential InsertBatch, regardless of how batches were routed,
// partitioned across workers, or folded — counter sums commute.
func TestPipelineEquivalenceLinear(t *testing.T) {
	s := testStream(t, 60_000)
	spec := sketch.Spec{MemoryBytes: 1 << 18, Seed: 3}
	seq := sketch.MustBuild("CM_fast", spec)
	sketch.InsertBatch(seq, s.Items)

	a, err := ingest.NewAsyncIngester("CM_fast", spec, ingest.Tuning{Workers: 4, FlushItems: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i, c := range chunks(s.Items, 777) {
		a.Submit(ingest.Batch{Items: c, Source: uint64(i%5) + 1})
	}
	if err := a.Drain(); err != nil {
		t.Fatal(err)
	}
	for key := range s.Truth() {
		if got, want := a.Query(key), seq.Query(key); got != want {
			t.Fatalf("key %d: pipeline CM answers %d, sequential %d", key, got, want)
		}
	}
	st := a.Stats()
	if st.Accepted != uint64(s.Len()) || st.FoldedItems != uint64(s.Len()) || st.Dropped != 0 {
		t.Fatalf("stats %+v: want %d accepted and folded, 0 dropped", st, s.Len())
	}
}

// TestPipelineEquivalenceCertified checks the acceptance-criteria contract
// on the certified sketch, flat and sharded: pipeline-ingested state
// answers every key with a certified interval that contains the exact
// count, exactly as sequential InsertBatch state does.
func TestPipelineEquivalenceCertified(t *testing.T) {
	s := testStream(t, 60_000)
	for name, spec := range map[string]sketch.Spec{
		"flat":     {MemoryBytes: 1 << 19, Lambda: 25, Seed: 3},
		"sharded8": {MemoryBytes: 1 << 19, Lambda: 25, Seed: 3, Shards: 8},
	} {
		t.Run(name, func(t *testing.T) {
			seq := sketch.MustBuild("Ours", spec).(sketch.ErrorBounded)
			sketch.InsertBatch(seq, s.Items)

			a, err := ingest.NewAsyncIngester("Ours", spec, ingest.Tuning{Workers: 4, FlushItems: 1 << 12})
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			for i, c := range chunks(s.Items, 1024) {
				a.Submit(ingest.Batch{Items: c, Source: uint64(i % 3)})
			}
			if err := a.Drain(); err != nil {
				t.Fatal(err)
			}
			for key, exact := range s.Truth() {
				est, mpe, ok := a.QueryWithError(key)
				if !ok {
					t.Fatal("Ours lost ErrorBounded through the wrapper")
				}
				lo := sketch.CertifiedLowerBound(est, mpe)
				if exact < lo || exact > est {
					t.Fatalf("key %d: pipeline interval [%d, %d] misses exact %d", key, lo, est, exact)
				}
				sEst, sMpe := seq.QueryWithError(key)
				sLo := sketch.CertifiedLowerBound(sEst, sMpe)
				if exact < sLo || exact > sEst {
					t.Fatalf("key %d: sequential interval [%d, %d] misses exact %d", key, sLo, sEst, exact)
				}
			}
		})
	}
}

// TestPipelineDropPolicy forces queue overflow with a gated Apply hook and
// checks the Ack and stats account every refused item — the "explicit
// backpressure" half of the contract.
func TestPipelineDropPolicy(t *testing.T) {
	gate := make(chan struct{})
	applied := 0
	p := ingest.New(ingest.Options{
		Tuning: ingest.Tuning{Workers: 1, Queue: 1, Policy: ingest.Drop},
		Apply: func(b ingest.Batch) error {
			<-gate
			applied += len(b.Items)
			return nil
		},
	})
	defer p.Close()
	items := []stream.Item{{Key: 1, Value: 1}, {Key: 2, Value: 1}}
	accepted, dropped := 0, 0
	// First batch is consumed by the worker (then parks on the gate), the
	// next fills the 1-slot queue, and everything after that must drop.
	for i := 0; i < 10; i++ {
		ack := p.Submit(ingest.Batch{Items: items})
		accepted += ack.Accepted
		dropped += ack.Dropped
	}
	if dropped == 0 {
		t.Fatal("no batch dropped with a full 1-slot queue")
	}
	if accepted+dropped != 20 {
		t.Fatalf("accepted %d + dropped %d != 20 submitted", accepted, dropped)
	}
	close(gate)
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if applied != accepted {
		t.Fatalf("applied %d items, acked %d", applied, accepted)
	}
	st := p.Stats()
	if st.Dropped != uint64(dropped) || st.Applied != uint64(accepted) {
		t.Fatalf("stats %+v disagree with acks (accepted %d, dropped %d)", st, accepted, dropped)
	}
}

// TestPipelineBlockPolicyAcceptsEverything is the other half: Block never
// drops, even through a 1-slot queue.
func TestPipelineBlockPolicyAcceptsEverything(t *testing.T) {
	var mu sync.Mutex
	total := 0
	p := ingest.New(ingest.Options{
		Tuning: ingest.Tuning{Workers: 2, Queue: 1},
		Apply: func(b ingest.Batch) error {
			mu.Lock()
			total += len(b.Items)
			mu.Unlock()
			return nil
		},
	})
	defer p.Close()
	items := []stream.Item{{Key: 9, Value: 2}}
	for i := 0; i < 500; i++ {
		if ack := p.Submit(ingest.Batch{Items: items, Source: uint64(i)}); ack.Dropped != 0 {
			t.Fatalf("block policy dropped at submit %d", i)
		}
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if total != 500 {
		t.Fatalf("applied %d items, want 500", total)
	}
}

// TestPipelineEpochTagFlush checks the epoch-seal flush trigger: a worker
// folds its pending delta before accumulating a batch with a different
// epoch tag, so no delta ever straddles a producer-declared boundary.
func TestPipelineEpochTagFlush(t *testing.T) {
	spec := sketch.Spec{MemoryBytes: 1 << 16, Seed: 1}
	var mu sync.Mutex
	var foldSums []uint64
	p := ingest.New(ingest.Options{
		// One worker and huge thresholds: only epoch tags (and the final
		// drain) may trigger folds.
		Tuning:   ingest.Tuning{Workers: 1, FlushItems: 1 << 30, FlushAge: time.Hour},
		NewDelta: func() sketch.Sketch { return sketch.MustBuild("CM_fast", spec) },
		Fold: func(d sketch.Sketch) error {
			mu.Lock()
			foldSums = append(foldSums, d.Query(1))
			mu.Unlock()
			return nil
		},
	})
	defer p.Close()
	p.Submit(ingest.Batch{Items: []stream.Item{{Key: 1, Value: 10}}, Epoch: 1})
	p.Submit(ingest.Batch{Items: []stream.Item{{Key: 1, Value: 5}}, Epoch: 1})
	p.Submit(ingest.Batch{Items: []stream.Item{{Key: 1, Value: 100}}, Epoch: 2})
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []uint64{15, 100}
	if len(foldSums) != len(want) || foldSums[0] != want[0] || foldSums[1] != want[1] {
		t.Fatalf("fold sums %v, want %v (one fold per epoch tag)", foldSums, want)
	}
}

// TestPipelineFoldErrorSurfaces checks that a failing fold is retained and
// reported by Drain, Err, and Stats rather than swallowed.
func TestPipelineFoldErrorSurfaces(t *testing.T) {
	boom := errors.New("boom")
	spec := sketch.Spec{MemoryBytes: 1 << 16, Seed: 1}
	p := ingest.New(ingest.Options{
		Tuning:   ingest.Tuning{Workers: 1},
		NewDelta: func() sketch.Sketch { return sketch.MustBuild("CM_fast", spec) },
		Fold:     func(d sketch.Sketch) error { return boom },
	})
	p.Submit(ingest.Batch{Items: []stream.Item{{Key: 1, Value: 1}}})
	if err := p.Drain(); !errors.Is(err, boom) {
		t.Fatalf("Drain error = %v, want boom", err)
	}
	if st := p.Stats(); st.LastError == "" {
		t.Fatal("Stats().LastError empty after failed fold")
	}
	// A failed pipeline has lost items its certified state cannot cover:
	// it must stop ACCEPTING, not keep acking writes it may discard.
	if ack := p.Submit(ingest.Batch{Items: []stream.Item{{Key: 2, Value: 1}}}); ack.Accepted != 0 || ack.Dropped != 1 {
		t.Fatalf("submit after failure acked %+v, want 1 dropped", ack)
	}
	if err := p.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close error = %v, want boom", err)
	}
}

// TestPipelineClosedSubmitDrops pins the lifecycle contract: submitting
// after Close drops (counted), instead of panicking on a closed queue.
func TestPipelineClosedSubmitDrops(t *testing.T) {
	p := ingest.New(ingest.Options{Apply: func(ingest.Batch) error { return nil }})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	ack := p.Submit(ingest.Batch{Items: []stream.Item{{Key: 1, Value: 1}}})
	if ack.Dropped != 1 || ack.Accepted != 0 {
		t.Fatalf("submit after close acked %+v, want 1 dropped", ack)
	}
	if err := p.Drain(); err != nil {
		t.Fatalf("drain after close: %v", err)
	}
}

// TestAsyncIngesterRejectsNonMergeable: the wrapper's soundness rests on
// Merge, so non-Mergeable variants are refused at construction.
func TestAsyncIngesterRejectsNonMergeable(t *testing.T) {
	for _, algo := range []string{"Elastic", "nope"} {
		if _, err := ingest.NewAsyncIngester(algo, sketch.Spec{MemoryBytes: 1 << 16}, ingest.Tuning{}); err == nil {
			t.Errorf("NewAsyncIngester(%q) accepted", algo)
		}
	}
}

// TestPipelineRegisterMetrics checks the pipeline's Prometheus surface:
// the registered counters are the same instruments Stats reads, flushes
// are attributed to reasons, and fold latency is recorded once per fold.
func TestPipelineRegisterMetrics(t *testing.T) {
	var mu sync.Mutex
	target := sketch.MustBuild("CM_fast", sketch.Spec{MemoryBytes: 1 << 16, Seed: 1})
	p := ingest.New(ingest.Options{
		Tuning:   ingest.Tuning{Workers: 1, FlushItems: 100, FlushAge: time.Hour},
		NewDelta: func() sketch.Sketch { return sketch.MustBuild("CM_fast", sketch.Spec{MemoryBytes: 1 << 16, Seed: 1}) },
		Fold: func(d sketch.Sketch) error {
			mu.Lock()
			defer mu.Unlock()
			return target.(sketch.Mergeable).Merge(d)
		},
	})
	reg := telemetry.NewRegistry()
	p.RegisterMetrics(reg)

	s := testStream(t, 1000)
	for _, c := range chunks(s.Items, 250) {
		p.Submit(ingest.Batch{Items: c, Source: 1})
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	st := p.Stats()
	for _, want := range []string{
		fmt.Sprintf("ingest_submitted_items_total %d", st.Submitted),
		fmt.Sprintf("ingest_accepted_items_total %d", st.Accepted),
		fmt.Sprintf("ingest_folded_items_total %d", st.FoldedItems),
		fmt.Sprintf("ingest_folds_total %d", st.Folds),
		`ingest_flushes_total{reason="size"}`,
		`ingest_flushes_total{reason="barrier"}`,
		fmt.Sprintf("ingest_fold_duration_seconds_count %d", st.Folds),
		"ingest_workers 1",
		"ingest_queue_depth_batches 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Every fold is attributed to exactly one reason.
	var attributed uint64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "ingest_flushes_total{") {
			var v uint64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			attributed += v
		}
	}
	if attributed != st.Folds {
		t.Errorf("flush reasons sum to %d, want %d folds", attributed, st.Folds)
	}
}
