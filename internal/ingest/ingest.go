// Package ingest defines the one typed write-side contract every ingesting
// surface of this repository feeds: a Batch names what is being written
// (items, their producer, their epoch) and an Ack reports what happened to
// it, mirroring what internal/query did for the read side.
//
// The centerpiece is Pipeline, the async sharded writer plane: N workers
// drain bounded queues of batches, each accumulating into a PRIVATE
// same-Spec delta sketch, and fold the delta into the shared target under
// one short lock per flush (on size, age, or epoch boundary) using the
// sketch.Mergeable capability. Producers never touch the target's lock and
// a slow sketch never stalls the wire: the queue absorbs bursts, and the
// explicit backpressure policy (Block vs Drop) decides what happens when it
// cannot. This is the delta-buffer-then-fold pattern production caches use
// to keep writers off the read path, applied from wire frame to sketch.
//
// The same Batch/Ack pair flows end to end — sketch-level AsyncIngester,
// epoch.Ring folding (ForRing), the netsum collector's shared pipeline, and
// queryd's /v1/insert and /v2/ingest HTTP endpoints — so write-side
// amortizations (per-worker hashing, one merge per flush instead of one
// lock per frame) compose instead of being reinvented per layer.
package ingest

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Batch is one unit of write-side work: the items to ingest, who produced
// them, and (optionally) which epoch they belong to.
type Batch struct {
	// Items are the key-value increments, in producer order.
	Items []stream.Item
	// Source attributes the batch to its producer (a netsum agent ID, an
	// HTTP client's shard hint, ...). Batches from the same non-zero Source
	// are processed in submission order by a single worker, which is what
	// preserves per-agent attribution; Source 0 spreads round-robin.
	Source uint64
	// Epoch optionally tags the batch with a producer-side epoch sequence
	// number. A worker folds its pending delta before accumulating a batch
	// whose tag differs from the delta's, so deltas never straddle a
	// producer-declared epoch seal. 0 means untagged.
	Epoch uint64
}

// Ack reports a Submit's outcome. Under the Block policy every item is
// accepted (the submit waited for queue space); under Drop a full queue
// rejects the whole batch and Dropped says so — the caller knows exactly
// how many items were refused instead of silently losing them.
type Ack struct {
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
	// Generation is the target's sealed-set generation at acknowledgement
	// time, stamped by the serving edge (queryd, collector); 0 when the
	// target has no generations (cumulative sketches).
	Generation uint64 `json:"generation"`
}

// Policy is the explicit backpressure decision for a full worker queue.
type Policy uint8

const (
	// Block makes Submit wait for queue space: no item is ever dropped, and
	// a saturated pipeline pushes back on producers (the TCP-friendly
	// default — backpressure propagates to the wire).
	Block Policy = iota
	// Drop makes Submit reject the whole batch when its worker's queue is
	// full, counting the loss in the Ack and pipeline stats. For telemetry
	// that prefers freshness over completeness.
	Drop
)

// String renders the policy's flag spelling.
func (p Policy) String() string {
	if p == Drop {
		return "drop"
	}
	return "block"
}

// ParsePolicy reads a -ingest-policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "block", "":
		return Block, nil
	case "drop":
		return Drop, nil
	}
	return Block, fmt.Errorf("ingest: unknown backpressure policy %q (want block or drop)", s)
}

// Defaults for Tuning's zero fields.
const (
	// DefaultWorkers is deliberately modest: each worker owns a full
	// same-Spec delta sketch, so workers cost memory, and two already
	// decouple producers from fold latency. Raise it to scale ingest with
	// cores.
	DefaultWorkers = 2
	// DefaultQueue bounds each worker's queue in batches, not items: a
	// batch is the unit producers block or drop on.
	DefaultQueue = 64
	// DefaultFlushItems is the delta-size flush threshold. Large enough to
	// amortize the merge walk (a fold visits the whole delta regardless of
	// how few items it holds), small enough to bound staleness.
	DefaultFlushItems = 8192
	// DefaultFlushAge bounds how long a trickle of items can sit unfolded.
	DefaultFlushAge = 50 * time.Millisecond
)

// Tuning is the operator-visible pipeline shape, the struct the daemons'
// -ingest-workers/-ingest-queue/-ingest-policy flags fill. Zero fields take
// the defaults above.
type Tuning struct {
	// Workers is the number of writer goroutines (and private deltas).
	Workers int
	// Queue is each worker's bounded queue capacity in batches.
	Queue int
	// Policy picks what a full queue does to Submit: Block or Drop.
	Policy Policy
	// FlushItems folds a worker's delta once it holds this many items.
	FlushItems int
	// FlushAge folds a non-empty delta at least this often, so quiet
	// sources still become visible. Deployments folding into an epoch ring
	// should keep it well under the epoch interval.
	FlushAge time.Duration
}

// withDefaults resolves zero fields.
func (t Tuning) withDefaults() Tuning {
	if t.Workers <= 0 {
		t.Workers = DefaultWorkers
	}
	if t.Queue <= 0 {
		t.Queue = DefaultQueue
	}
	if t.FlushItems <= 0 {
		t.FlushItems = DefaultFlushItems
	}
	if t.FlushAge <= 0 {
		t.FlushAge = DefaultFlushAge
	}
	return t
}

// Options configures a Pipeline: the tuning knobs plus the hooks binding it
// to a concrete target. At least one of Apply and Fold must be set.
type Options struct {
	Tuning

	// NewDelta builds one private delta sketch per worker — a same-Spec
	// sibling of the fold target, so Fold can merge it. Required when Fold
	// is set. Deltas are Reset between flushes when they support it and
	// rebuilt otherwise.
	NewDelta func() sketch.Sketch
	// Fold folds a worker's delta into the shared target under the
	// target's own short lock (sketch.Merge under a mutex, epoch.Ring.Fold,
	// the collector's globalMu merge). It runs at most once per flush per
	// worker — the only moment the pipeline touches shared write state.
	// nil disables delta accumulation: the pipeline applies batches through
	// Apply alone.
	Fold func(delta sketch.Sketch) error
	// Apply, when set, runs for every dequeued batch before accumulation —
	// the per-batch attribution hook (the netsum collector lands the batch
	// in its Source agent's own sketch here). Batches from one Source are
	// applied in order by one worker.
	Apply func(Batch) error
	// Logf receives worker-side errors (failed folds or applies — with
	// same-Spec deltas these indicate bugs, not operational conditions);
	// nil silences them. Errors are also retained for Err and Stats.
	Logf func(format string, args ...any)
}

// Stats is a pipeline's observability snapshot. All counters are items, not
// batches, except Folds.
type Stats struct {
	Workers   int    `json:"workers"`
	Policy    string `json:"policy"`
	Submitted uint64 `json:"submitted"`
	Accepted  uint64 `json:"accepted"`
	Dropped   uint64 `json:"dropped"`
	// Applied counts items a worker has fully processed (attributed and
	// accumulated); Accepted − Applied is the queued backlog.
	Applied uint64 `json:"applied"`
	// Folds counts delta→target merges; FoldedItems the items they carried.
	Folds       uint64 `json:"folds"`
	FoldedItems uint64 `json:"folded_items"`
	// LastError is the most recent worker-side failure, if any.
	LastError string `json:"last_error,omitempty"`
}

// qitem is one queue entry: a data batch, or a drain barrier (fold now,
// then signal).
type qitem struct {
	b       Batch
	barrier chan<- struct{}
}

// flushReason says why a worker folded its delta — each fold is attributed
// to exactly one cause, so operators can tell a size-driven steady state
// from age-driven trickle or epoch-seal churn.
type flushReason uint8

const (
	flushSize    flushReason = iota // delta reached FlushItems
	flushAge                        // FlushAge ticker fired on a non-empty delta
	flushEpoch                      // batch epoch tag differed from the delta's
	flushBarrier                    // Drain barrier forced visibility
	flushClose                      // pipeline shutdown folded the remainder
	numFlushReasons
)

// flushReasonNames are the `reason` label values, indexed by flushReason.
var flushReasonNames = [numFlushReasons]string{"size", "age", "epoch", "barrier", "close"}

// Pipeline is the async sharded writer plane. Submit routes batches to
// workers (by Source, so per-producer order is preserved); workers
// accumulate into private deltas and fold into the target per flush. Safe
// for concurrent use by any number of producers.
type Pipeline struct {
	opts    Options
	workers []*worker
	rr      atomic.Uint64

	// The pipeline's instruments ARE its stats: telemetry.Counter is a
	// single atomic word (same cost as the atomic.Uint64 these replaced),
	// so Stats() and a Prometheus scrape read the same source of truth.
	submitted telemetry.Counter
	accepted  telemetry.Counter
	dropped   telemetry.Counter
	applied   telemetry.Counter
	folds     telemetry.Counter
	folded    telemetry.Counter
	flushes   [numFlushReasons]telemetry.Counter
	// foldSeconds records fold latency (delta→target merge under the
	// target's lock). Observed once per flush, never per item.
	foldSeconds *telemetry.Histogram

	errMu   sync.Mutex
	lastErr error
	// failed mirrors lastErr != nil for lock-free Submit checks: once a
	// worker loses items (failed fold or apply), the pipeline stops
	// ACCEPTING — acking writes into a plane whose certified state can no
	// longer cover them would be a lie. Reads keep erroring, new writes
	// drop visibly, and the operator restarts.
	failed atomic.Bool

	// lifeMu makes Submit/Drain vs Close safe: Close excludes in-flight
	// submissions before closing the queues. done is closed by Close, for
	// helper goroutines (the ring janitor) to exit promptly.
	lifeMu sync.RWMutex
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// worker is one writer goroutine's state, touched only by that goroutine.
type worker struct {
	p       *Pipeline
	q       chan qitem
	delta   sketch.Sketch
	pending int
	epoch   uint64
}

// New starts a pipeline. It panics when neither Apply nor Fold is
// configured (a pipeline with nowhere to write is a programming error, like
// registering a nil sketch builder) or when Fold is set without NewDelta.
func New(opts Options) *Pipeline {
	opts.Tuning = opts.Tuning.withDefaults()
	if opts.Apply == nil && opts.Fold == nil {
		panic("ingest: Pipeline needs an Apply or Fold target")
	}
	if opts.Fold != nil && opts.NewDelta == nil {
		panic("ingest: Fold needs NewDelta to build worker deltas")
	}
	p := &Pipeline{
		opts:        opts,
		done:        make(chan struct{}),
		foldSeconds: telemetry.NewHistogram(telemetry.LatencyBuckets()),
	}
	p.workers = make([]*worker, opts.Workers)
	for i := range p.workers {
		w := &worker{p: p, q: make(chan qitem, opts.Queue)}
		if opts.Fold != nil {
			if w.delta = opts.NewDelta(); w.delta == nil {
				panic("ingest: NewDelta returned nil")
			}
		}
		p.workers[i] = w
		p.wg.Add(1)
		go w.run()
	}
	return p
}

// Policy reports the pipeline's backpressure policy, so durability layers
// can refuse wirings whose semantics it would break (a WAL ahead of a Drop
// pipeline could make a batch durable that the queue then refuses).
func (p *Pipeline) Policy() Policy { return p.opts.Policy }

// route picks the worker owning a source. Non-zero sources are sticky (one
// worker, FIFO — attribution order per producer); zero spreads round-robin.
func (p *Pipeline) route(source uint64) *worker {
	n := uint64(len(p.workers))
	if source != 0 {
		return p.workers[source%n]
	}
	return p.workers[p.rr.Add(1)%n]
}

// Submit hands a batch to its worker. Under Block it waits for queue space
// and every item is accepted; under Drop a full queue refuses the whole
// batch. Ack.Generation is 0 — serving edges that track generations stamp
// it themselves. Submitting to a closed or failed pipeline drops: once a
// worker has lost items, an Accepted ack would promise coverage the
// certified state cannot deliver.
func (p *Pipeline) Submit(b Batch) Ack {
	n := len(b.Items)
	p.submitted.Add(uint64(n))
	if n == 0 {
		return Ack{}
	}
	if p.failed.Load() {
		p.dropped.Add(uint64(n))
		return Ack{Dropped: n}
	}
	p.lifeMu.RLock()
	defer p.lifeMu.RUnlock()
	if p.closed {
		p.dropped.Add(uint64(n))
		return Ack{Dropped: n}
	}
	w := p.route(b.Source)
	if p.opts.Policy == Drop {
		select {
		case w.q <- qitem{b: b}:
		default:
			p.dropped.Add(uint64(n))
			return Ack{Dropped: n}
		}
	} else {
		w.q <- qitem{b: b}
	}
	p.accepted.Add(uint64(n))
	return Ack{Accepted: n}
}

// Drain is the read-your-writes barrier: it returns once every batch
// accepted before the call has been applied and folded into the target.
// Query paths call it before reading state the pipeline feeds, so certified
// answers cover everything the caller has already been acked for. An idle
// pipeline (everything accepted already applied and folded) returns
// immediately — query-heavy workloads with trickling ingest don't pay an
// O(workers) barrier round-trip per query, and partial deltas are not
// force-folded. Safe to call concurrently; on a closed pipeline it returns
// the recorded error.
func (p *Pipeline) Drain() error {
	if p.idle() {
		return p.Err()
	}
	p.lifeMu.RLock()
	if p.closed {
		p.lifeMu.RUnlock()
		return p.Err()
	}
	done := make(chan struct{}, len(p.workers))
	for _, w := range p.workers {
		w.q <- qitem{barrier: done}
	}
	p.lifeMu.RUnlock()
	for range p.workers {
		<-done
	}
	return p.Err()
}

// idle reports whether everything accepted has been applied and (for fold
// pipelines) folded. Counter order makes a true answer safe: accepted is
// incremented before Submit returns, applied before folded, so if a batch
// was acked to THIS caller before its Drain, a stale read can only make
// idle return false (the slow barrier path), never skip pending work. A
// failed fold never counts into folded, so an erroring pipeline always
// takes the barrier path and reports its error.
func (p *Pipeline) idle() bool {
	accepted := p.accepted.Value()
	if p.applied.Value() != accepted {
		return false
	}
	return p.opts.Fold == nil || p.folded.Value() == accepted
}

// Close drains and stops the workers. Further Submits drop; further Drains
// return the recorded error. Returns the first worker-side error observed
// over the pipeline's life.
func (p *Pipeline) Close() error {
	p.lifeMu.Lock()
	if p.closed {
		p.lifeMu.Unlock()
		return p.Err()
	}
	p.closed = true
	close(p.done)
	for _, w := range p.workers {
		close(w.q)
	}
	p.lifeMu.Unlock()
	p.wg.Wait()
	return p.Err()
}

// Err returns the first worker-side error observed (nil when healthy).
func (p *Pipeline) Err() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.lastErr
}

// Stats snapshots the pipeline's counters.
func (p *Pipeline) Stats() Stats {
	s := Stats{
		Workers:     len(p.workers),
		Policy:      p.opts.Policy.String(),
		Submitted:   p.submitted.Value(),
		Accepted:    p.accepted.Value(),
		Dropped:     p.dropped.Value(),
		Applied:     p.applied.Value(),
		Folds:       p.folds.Value(),
		FoldedItems: p.folded.Value(),
	}
	if err := p.Err(); err != nil {
		s.LastError = err.Error()
	}
	return s
}

// RegisterMetrics exposes the pipeline's instruments on reg under the
// ingest_* namespace. The registered counters are the SAME atomic words
// Stats reads — one source of truth, two expositions. Queue depth and
// worker count are sampled at scrape time (snapshot-on-read); nothing here
// adds work to Submit or the worker loops.
func (p *Pipeline) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCounter("ingest_submitted_items_total", "Items offered to Submit, accepted or not.", nil, &p.submitted)
	reg.RegisterCounter("ingest_accepted_items_total", "Items accepted onto a worker queue.", nil, &p.accepted)
	reg.RegisterCounter("ingest_dropped_items_total", "Items refused by backpressure, pipeline failure, or shutdown.", nil, &p.dropped)
	reg.RegisterCounter("ingest_applied_items_total", "Items fully processed by a worker.", nil, &p.applied)
	reg.RegisterCounter("ingest_folds_total", "Delta-to-target merges.", nil, &p.folds)
	reg.RegisterCounter("ingest_folded_items_total", "Items carried into the target by folds.", nil, &p.folded)
	for i := range p.flushes {
		reg.RegisterCounter("ingest_flushes_total", "Folds by triggering cause.",
			telemetry.Labels{"reason": flushReasonNames[i]}, &p.flushes[i])
	}
	reg.RegisterHistogram("ingest_fold_duration_seconds", "Latency of one delta-to-target merge.", nil, p.foldSeconds)
	reg.GaugeFunc("ingest_queue_depth_batches", "Batches waiting on worker queues.", nil, func() float64 {
		depth := 0
		for _, w := range p.workers {
			depth += len(w.q)
		}
		return float64(depth)
	})
	reg.GaugeFunc("ingest_workers", "Writer goroutines (one private delta each).", nil, func() float64 {
		return float64(len(p.workers))
	})
}

func (p *Pipeline) fail(err error) {
	p.errMu.Lock()
	if p.lastErr == nil {
		p.lastErr = err
	}
	p.errMu.Unlock()
	p.failed.Store(true)
	if p.opts.Logf != nil {
		p.opts.Logf("ingest: %v", err)
	}
}

// run is the worker loop: drain the queue, fold on size/age/epoch/barrier,
// fold once more on shutdown so Close never strands accepted items.
func (w *worker) run() {
	defer w.p.wg.Done()
	tick := time.NewTicker(w.p.opts.FlushAge)
	defer tick.Stop()
	for {
		select {
		case it, ok := <-w.q:
			if !ok {
				w.fold(flushClose)
				return
			}
			if it.barrier != nil {
				w.fold(flushBarrier)
				it.barrier <- struct{}{}
			} else {
				w.apply(it.b)
			}
		case <-tick.C:
			w.fold(flushAge)
		}
	}
}

// apply lands one batch: attribution hook first, then delta accumulation,
// folding beforehand if the batch's epoch tag seals the delta's, and
// afterwards if the delta reached the size threshold.
func (w *worker) apply(b Batch) {
	if w.p.opts.Apply != nil {
		if err := w.p.opts.Apply(b); err != nil {
			w.p.fail(err)
			w.p.applied.Add(uint64(len(b.Items)))
			return
		}
	}
	if w.delta == nil {
		w.p.applied.Add(uint64(len(b.Items)))
		return
	}
	if w.pending > 0 && b.Epoch != w.epoch {
		w.fold(flushEpoch)
	}
	w.epoch = b.Epoch
	sketch.InsertBatch(w.delta, b.Items)
	w.pending += len(b.Items)
	w.p.applied.Add(uint64(len(b.Items)))
	if w.pending >= w.p.opts.FlushItems {
		w.fold(flushSize)
	}
}

// fold merges the pending delta into the target — the one moment this
// worker touches shared write state — and readies a fresh delta. The
// latency observation brackets only the target merge, and runs once per
// flush, never per item.
func (w *worker) fold(reason flushReason) {
	if w.delta == nil || w.pending == 0 {
		return
	}
	start := time.Now()
	err := w.p.opts.Fold(w.delta)
	w.p.foldSeconds.ObserveDuration(time.Since(start))
	if err != nil {
		w.p.fail(err)
	} else {
		w.p.folds.Inc()
		w.p.flushes[reason].Inc()
		w.p.folded.Add(uint64(w.pending))
	}
	w.pending = 0
	if r, ok := w.delta.(sketch.Resettable); ok {
		r.Reset()
	} else if w.delta = w.p.opts.NewDelta(); w.delta == nil {
		// Losing the delta would silently demote this worker to apply-only;
		// record it as a pipeline failure instead (Submit stops accepting).
		w.p.fail(errors.New("ingest: NewDelta returned nil; delta accumulation lost"))
	}
}
