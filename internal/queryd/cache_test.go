package queryd

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestCacheTTLExpiry(t *testing.T) {
	clk := &manualClock{now: time.Unix(0, 0)}
	c := NewCache(16, time.Second, clk.Now)
	computes := 0
	get := func() (any, bool) {
		v, cached, err := c.Do("k", 0, false, func() (any, error) {
			computes++
			return computes, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, cached
	}
	if v, cached := get(); cached || v.(int) != 1 {
		t.Fatalf("first get = (%v, cached=%v)", v, cached)
	}
	if v, cached := get(); !cached || v.(int) != 1 {
		t.Fatalf("second get = (%v, cached=%v), want cached 1", v, cached)
	}
	clk.Advance(2 * time.Second)
	if v, cached := get(); cached || v.(int) != 2 {
		t.Fatalf("post-TTL get = (%v, cached=%v), want recomputed 2", v, cached)
	}
}

func TestCacheImmutableIgnoresTTL(t *testing.T) {
	clk := &manualClock{now: time.Unix(0, 0)}
	c := NewCache(16, time.Millisecond, clk.Now)
	computes := 0
	get := func(gen uint64) (any, bool) {
		v, cached, err := c.Do("k", gen, true, func() (any, error) {
			computes++
			return computes, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, cached
	}
	get(3)
	clk.Advance(time.Hour)
	if v, cached := get(3); !cached || v.(int) != 1 {
		t.Fatalf("immutable entry expired: (%v, cached=%v)", v, cached)
	}
	// A new generation invalidates wholesale.
	if v, cached := get(4); cached || v.(int) != 2 {
		t.Fatalf("stale-generation entry served: (%v, cached=%v)", v, cached)
	}
	if inv := c.Stats().Invalidations; inv != 1 {
		t.Errorf("invalidations = %d, want 1", inv)
	}
}

func TestCacheGenerationDropsOlderEntries(t *testing.T) {
	c := NewCache(16, time.Minute, nil)
	for i := 0; i < 8; i++ {
		key := string(rune('a' + i))
		if _, _, err := c.Do(key, 1, true, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Stats().Entries; n != 8 {
		t.Fatalf("entries = %d, want 8", n)
	}
	// First access at generation 2 drops all generation-1 entries.
	if _, _, err := c.Do("z", 2, true, func() (any, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Invalidations != 8 {
		t.Errorf("after generation bump: entries=%d invalidations=%d, want 1/8", st.Entries, st.Invalidations)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3, time.Minute, nil)
	get := func(key string) {
		if _, _, err := c.Do(key, 0, false, func() (any, error) { return key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("c")
	get("a") // refresh a; b becomes LRU
	get("d") // evicts b
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("entries=%d evictions=%d, want 3/1", st.Entries, st.Evictions)
	}
	if _, cached, _ := c.Do("b", 0, false, func() (any, error) { return "b", nil }); cached {
		t.Error("evicted entry b still served")
	}
	if _, cached, _ := c.Do("a", 0, false, func() (any, error) { return "a", nil }); !cached {
		t.Error("recently used entry a evicted")
	}
}

func TestCacheSingleflightCollapses(t *testing.T) {
	c := NewCache(16, time.Minute, nil)
	var computes atomic.Uint64
	release := make(chan struct{})
	var wg sync.WaitGroup
	const clients = 32
	results := make([]any, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("hot", 0, false, func() (any, error) {
				computes.Add(1)
				<-release
				return "answer", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let the herd pile up behind the first flight, then release it.
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times for %d concurrent identical queries", got, clients)
	}
	for i, v := range results {
		if v != "answer" {
			t.Fatalf("client %d got %v", i, v)
		}
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(16, time.Minute, nil)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, cached, err := c.Do("k", 0, false, func() (any, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) || cached {
			t.Fatalf("attempt %d: err=%v cached=%v", i, err, cached)
		}
	}
	if calls != 3 {
		t.Errorf("error was cached: %d computes for 3 calls", calls)
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c := NewCache(1024, time.Hour, nil)
	c.Do("k", 0, false, func() (any, error) { return 1, nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Do("k", 0, false, func() (any, error) { return 1, nil })
	}
}

func BenchmarkCacheMissEvict(b *testing.B) {
	// Every access misses and evicts: the worst-case full churn path.
	c := NewCache(64, time.Hour, nil)
	keys := make([]string, 128)
	for i := range keys {
		keys[i] = "k" + string(rune('0'+i%10)) + string(rune('a'+i%26)) + string(rune('A'+i/26))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Do(keys[i%len(keys)], uint64(i), true, func() (any, error) { return i, nil })
	}
}

func TestCacheStaleGenerationCannotEvictFresh(t *testing.T) {
	// A request still holding a pre-seal generation must neither serve nor
	// evict the current generation's entry: each generation's entries and
	// flights are isolated.
	c := NewCache(16, time.Minute, nil)
	fresh := 0
	get := func(gen uint64) (any, bool) {
		v, cached, err := c.Do("k", gen, true, func() (any, error) {
			fresh++
			return gen, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, cached
	}
	get(2) // current generation computes and caches
	if v, cached := get(1); cached || v.(uint64) != 1 {
		t.Fatalf("stale-generation request served (%v, cached=%v)", v, cached)
	}
	// The fresh generation-2 entry must have survived the stale access.
	if v, cached := get(2); !cached || v.(uint64) != 2 {
		t.Fatalf("generation-2 entry evicted by stale request: (%v, cached=%v)", v, cached)
	}
	if fresh != 2 {
		t.Errorf("%d computes, want 2 (one per generation)", fresh)
	}
}
