package queryd

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/sketch"
)

// Delta replication: GET /v2/delta serves the backend's authoritative LOCAL
// state — never a peer-merged view, which would double-count once the peer
// pulled its own contribution back — as a self-describing envelope a cluster
// replicator can restore into a same-Spec sketch and fold with Merge. The
// envelope is magic "RDL1" | the checkpoint header's algo + Spec fields |
// the delta version | the sketch snapshot. The version is the backend's
// monotonic local write count: pullers pass it back as ?after= so an
// unchanged backend answers 304 instead of re-serializing.

// deltaMagic versions the delta envelope format.
var deltaMagic = [4]byte{'R', 'D', 'L', '1'}

// DeltaSource is implemented by backends whose authoritative local state
// can be served to cluster peers as a sealed delta snapshot.
type DeltaSource interface {
	// DeltaVersion is a monotonic counter that advances with every accepted
	// local write; equal versions mean an identical snapshot.
	DeltaVersion() uint64
	// SnapshotDelta serializes the local state (drained to read-your-writes
	// visibility) and reports the version the snapshot covers at least.
	SnapshotDelta(w io.Writer) (uint64, error)
}

// Replicating is implemented by backends that can pull peer deltas on
// demand — the deterministic trigger POST /v2/replicate exposes for tests
// and operators, alongside any periodic pull loop.
type Replicating interface {
	// ReplicateNow pulls every peer once, returning how many peers yielded
	// a new delta. Per-peer failures are folded into the returned error but
	// do not stop the sweep.
	ReplicateNow() (int, error)
}

// WriteDeltaHeader writes the delta envelope header: everything a receiver
// needs to refuse a mismatched peer by name before touching the payload.
func WriteDeltaHeader(w io.Writer, algo string, spec sketch.Spec, version uint64) error {
	if _, err := w.Write(deltaMagic[:]); err != nil {
		return err
	}
	return writeSpecHeader(w, algo, spec, version)
}

// ReadDeltaHeader decodes a delta envelope's header and returns the reader
// positioned at the snapshot payload. A non-delta stream (wrong magic —
// e.g. a checkpoint file offered as a delta) is refused with
// sketch.ErrSnapshotMismatch so replicators can classify it.
func ReadDeltaHeader(r io.Reader) (algo string, spec sketch.Spec, version uint64, payload io.Reader, err error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return "", sketch.Spec{}, 0, nil, fmt.Errorf("queryd: reading delta magic: %w", err)
	}
	if magic != deltaMagic {
		return "", sketch.Spec{}, 0, nil, fmt.Errorf("%w: bad delta magic %q", sketch.ErrSnapshotMismatch, magic[:])
	}
	algo, spec, version, err = readSpecHeader(br, true)
	if err != nil {
		return "", sketch.Spec{}, 0, nil, fmt.Errorf("queryd: delta header: %w", err)
	}
	return algo, spec, version, br, nil
}

// DeltaVersion reports the backend's local write count — the replication
// staleness signal.
func (b *SketchBackend) DeltaVersion() uint64 { return b.updates.Value() }

// SnapshotDelta serializes the backend's authoritative local state. The
// version is read before the cut, so a snapshot is never attributed writes
// it might not contain; concurrent writes land in a later version. Unlike
// Checkpoint this never touches the WAL cut LSN — a delta served to a peer
// is not durable locally, so it must not license WAL truncation.
func (b *SketchBackend) SnapshotDelta(w io.Writer) (uint64, error) {
	if err := b.CanCheckpoint(); err != nil {
		return 0, err
	}
	ver := b.updates.Value()
	buf, err := b.checkpointCut(b.sk.(sketch.Snapshotter))
	if err != nil {
		return 0, err
	}
	_, err = w.Write(buf.Bytes())
	return ver, err
}

// handleDelta serves GET /v2/delta[?after=V]: the local delta envelope, or
// 304 when the caller's version is still current.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	ds, ok := s.b.(DeltaSource)
	if !ok {
		httpError(w, http.StatusNotImplemented, "unsupported",
			errors.New("queryd: backend does not serve replication deltas"))
		return
	}
	afterStr := r.URL.Query().Get("after")
	var after uint64
	if afterStr != "" {
		var err error
		if after, err = strconv.ParseUint(afterStr, 10, 64); err != nil {
			httpError(w, http.StatusBadRequest, "bad_request", fmt.Errorf("after: %w", err))
			return
		}
		if ds.DeltaVersion() == after {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	var body bytes.Buffer
	ver, err := ds.SnapshotDelta(&body)
	if err != nil {
		s.execError(w, err)
		return
	}
	if afterStr != "" && ver == after {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Delta-Version", strconv.FormatUint(ver, 10))
	if err := WriteDeltaHeader(w, s.cfg.Algo, s.cfg.Spec, ver); err != nil {
		s.logf("queryd: writing delta header: %v", err)
		return
	}
	if _, err := body.WriteTo(w); err != nil {
		s.logf("queryd: writing delta payload: %v", err)
	}
}

// handleReplicate serves POST /v2/replicate: a deterministic "pull every
// peer now" trigger for smoke tests and operators.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	rp, ok := s.b.(Replicating)
	if !ok {
		httpError(w, http.StatusNotImplemented, "unsupported",
			errors.New("queryd: backend does not replicate (start rsserve with -peers)"))
		return
	}
	pulled, err := rp.ReplicateNow()
	if err != nil {
		httpError(w, http.StatusBadGateway, "replication_failed", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"peers_pulled": pulled})
}
