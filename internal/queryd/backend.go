// Package queryd is the query-serving subsystem: an HTTP/JSON server that
// fronts a measurement backend — a netsum.Collector aggregating many
// agents, or a standalone registry-built sketch — with endpoints for point
// estimates carrying certified bounds, heavy-hitter top-k, sliding-window
// queries against the epoch ring, and status. Results flow through an
// epoch-aware cache (Cache) and state is made durable through checkpoint
// files (WriteCheckpoint) built on sketch.Snapshotter.
package queryd

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/netsum"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Result is one answer from a backend. When Certified, truth lies in
// [Est−MPE, Est]; otherwise Est is a best-effort estimate whose error the
// sketch cannot bound per query. Covered is the sealed-epoch span a window
// query actually answered for (0 for cumulative, all-time answers).
type Result struct {
	Est       uint64
	MPE       uint64
	Certified bool
	Covered   int
}

// Status describes a backend for /v1/status.
type Status struct {
	Mode       string `json:"mode"` // "collector" or "standalone"
	Algo       string `json:"algo"`
	Epochal    bool   `json:"epochal"`
	Generation uint64 `json:"generation"`
	Agents     int    `json:"agents"`
	Updates    uint64 `json:"updates"`
	Queries    uint64 `json:"queries"`
}

// Backend is the query surface the server fronts. Implementations must be
// safe for concurrent use — the HTTP server issues queries from many
// goroutines.
type Backend interface {
	// Point answers a point query: the key's value sum over the backend's
	// visible history (all time, or the retained sliding window in epoch
	// mode).
	Point(key uint64) Result
	// Window answers over the last n sealed epochs; cumulative backends
	// degenerate to Point with Covered 0.
	Window(key uint64, n int) Result
	// TopK returns up to k tracked heavy hitters, heaviest first, or an
	// error naming why the backend cannot enumerate them.
	TopK(k int) ([]sketch.KV, error)
	// Generation is the sealed-set generation answers derive from; it
	// advances exactly when a window seals and stays 0 for cumulative
	// backends.
	Generation() uint64
	// Epochal reports whether answers derive only from sealed (immutable)
	// windows — the cache's signal to skip TTLs and key on Generation.
	Epochal() bool
	// Status reports identity and counters.
	Status() Status
}

// Checkpointer is implemented by backends whose state can be checkpointed
// for a warm restart.
type Checkpointer interface {
	Checkpoint(w io.Writer) error
	// CanCheckpoint reports whether Checkpoint can possibly succeed under
	// the backend's configuration, so a server asked to persist state that
	// never will (epoch mode, merging disabled, non-Snapshottable variant)
	// refuses at startup instead of logging failures forever.
	CanCheckpoint() error
}

// Ingester is implemented by backends that accept updates over HTTP
// (standalone mode; collector backends ingest through the agent protocol).
type Ingester interface {
	Ingest(items []stream.Item)
}

// AgentQuerier is implemented by backends that can scope a window query to
// one measurement agent.
type AgentQuerier interface {
	AgentWindow(agentID, key uint64, n int) (Result, error)
}

// CollectorBackend fronts a netsum.Collector: global answers composed
// across every agent, with certified bounds.
type CollectorBackend struct {
	C *netsum.Collector
	// Algo names the collector's sketch variant for Status and checkpoint
	// headers.
	Algo string
}

// Point answers the global certified query.
func (b CollectorBackend) Point(key uint64) Result {
	est, mpe := b.C.QueryWithError(key)
	return Result{Est: est, MPE: mpe, Certified: true}
}

// Window answers the global sliding-window query.
func (b CollectorBackend) Window(key uint64, n int) Result {
	est, mpe, covered := b.C.QueryWindowWithError(key, n)
	return Result{Est: est, MPE: mpe, Certified: true, Covered: covered}
}

// TopK enumerates the merged global view's tracked keys, heaviest first.
func (b CollectorBackend) TopK(k int) ([]sketch.KV, error) {
	kvs, err := b.C.TrackedGlobal()
	if err != nil {
		return nil, err
	}
	return trimTopK(kvs, k), nil
}

// AgentWindow scopes a window query to one agent's epoch ring.
func (b CollectorBackend) AgentWindow(agentID, key uint64, n int) (Result, error) {
	est, mpe, covered, err := b.C.QueryAgentWindow(agentID, key, n)
	if err != nil {
		return Result{}, err
	}
	return Result{Est: est, MPE: mpe, Certified: true, Covered: covered}, nil
}

// Generation is the collector-wide seal count.
func (b CollectorBackend) Generation() uint64 { return b.C.Generation() }

// Epochal reports whether the collector measures in sealed windows.
func (b CollectorBackend) Epochal() bool { return b.C.Epochal() }

// Checkpoint snapshots the merged global view.
func (b CollectorBackend) Checkpoint(w io.Writer) error { return b.C.SnapshotGlobal(w) }

// CanCheckpoint reports whether the collector maintains a snapshottable
// merged view.
func (b CollectorBackend) CanCheckpoint() error { return b.C.CanSnapshotGlobal() }

// Status reports collector identity and ingest counters.
func (b CollectorBackend) Status() Status {
	agents, updates, queries := b.C.Stats()
	return Status{
		Mode:       "collector",
		Algo:       b.Algo,
		Epochal:    b.C.Epochal(),
		Generation: b.C.Generation(),
		Agents:     agents,
		Updates:    updates,
		Queries:    queries,
	}
}

// SketchBackend serves a standalone registry-built sketch — cumulative, or
// wrapped in an epoch ring when built with an epoch length. Ingest arrives
// over HTTP (Ingest); queries and ingest may run concurrently.
type SketchBackend struct {
	algo string

	// Cumulative mode: sk under mu (writers exclusive, readers shared) —
	// except when selfSynced: sharded sketches lock per shard internally,
	// and routing everything through one outer mutex would serialize the
	// concurrent ingest that Spec.Shards exists to provide.
	mu         sync.RWMutex
	sk         sketch.Sketch
	selfSynced bool

	// Epoch mode: the ring locks internally.
	ring *epoch.Ring

	updates atomic.Uint64
	queries atomic.Uint64
}

// NewSketchBackend builds a standalone backend for the named registry
// variant. epochLen > 0 selects epoch mode: a ring rotating every epochLen
// retaining windows sealed epochs (≤ 0 windows means the default).
func NewSketchBackend(algo string, spec sketch.Spec, epochLen time.Duration, windows int, clock epoch.Clock) (*SketchBackend, error) {
	entry, ok := sketch.Lookup(algo)
	if !ok {
		return nil, fmt.Errorf("queryd: unknown algorithm %q", algo)
	}
	b := &SketchBackend{algo: algo}
	if epochLen > 0 {
		b.ring = epoch.NewRing(entry.Factory(spec), spec.MemoryBytes, epochLen, windows, clock)
		return b, nil
	}
	b.sk = entry.Build(spec)
	b.selfSynced = spec.Shards > 1
	return b, nil
}

// Restore warm-starts a cumulative backend from a snapshot (epoch-mode
// state ages out instead of being checkpointed).
func (b *SketchBackend) Restore(r io.Reader) error {
	if b.ring != nil {
		return errors.New("queryd: warm restart is cumulative-mode only (epoch-ring state ages out instead)")
	}
	sn, ok := b.sk.(sketch.Snapshotter)
	if !ok {
		return fmt.Errorf("queryd: %q does not support Restore", b.algo)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return sn.Restore(r)
}

// Ingest lands a batch of updates.
func (b *SketchBackend) Ingest(items []stream.Item) {
	switch {
	case b.ring != nil:
		b.ring.InsertBatch(items)
	case b.selfSynced:
		sketch.InsertBatch(b.sk, items)
	default:
		b.mu.Lock()
		sketch.InsertBatch(b.sk, items)
		b.mu.Unlock()
	}
	b.updates.Add(uint64(len(items)))
}

// Point answers for the key's visible history: all time in cumulative
// mode, the retained sliding window in epoch mode.
func (b *SketchBackend) Point(key uint64) Result {
	b.queries.Add(1)
	if b.ring != nil {
		return b.windowResult(key, b.ring.Capacity())
	}
	if !b.selfSynced {
		b.mu.RLock()
		defer b.mu.RUnlock()
	}
	if eb, ok := b.sk.(sketch.ErrorBounded); ok {
		est, mpe := eb.QueryWithError(key)
		return Result{Est: est, MPE: mpe, Certified: true}
	}
	return Result{Est: b.sk.Query(key)}
}

// Window answers over the last n sealed epochs; cumulative mode
// degenerates to Point with Covered 0.
func (b *SketchBackend) Window(key uint64, n int) Result {
	if b.ring == nil {
		return b.Point(key)
	}
	b.queries.Add(1)
	return b.windowResult(key, n)
}

// windowResult reads the ring, certifying when the sketch can.
func (b *SketchBackend) windowResult(key uint64, n int) Result {
	if est, mpe, ok := b.ring.QueryWindowWithError(key, n); ok {
		return b.covered(Result{Est: est, MPE: mpe, Certified: true}, n)
	}
	return b.covered(Result{Est: b.ring.QueryWindow(key, n)}, n)
}

// covered clamps the reported span to what the ring has actually sealed.
func (b *SketchBackend) covered(r Result, n int) Result {
	if sealed := b.ring.Sealed(); sealed < n {
		r.Covered = sealed
	} else {
		r.Covered = n
	}
	return r
}

// TopK enumerates tracked heavy hitters, heaviest first: the sketch's own
// tracked set in cumulative mode, the merged sealed view in epoch mode.
func (b *SketchBackend) TopK(k int) ([]sketch.KV, error) {
	b.queries.Add(1)
	if b.ring != nil {
		kvs, ok := b.ring.TrackedWindow(b.ring.Capacity())
		if !ok {
			if b.ring.Sealed() == 0 {
				// Nothing sealed yet: an empty window, not a missing
				// capability — the first seal will populate it.
				return nil, nil
			}
			return nil, fmt.Errorf("queryd: %q cannot enumerate tracked keys over the sealed window", b.algo)
		}
		return trimTopK(kvs, k), nil
	}
	if !b.selfSynced {
		b.mu.RLock()
		defer b.mu.RUnlock()
	}
	hh, ok := b.sk.(sketch.HeavyHitterReporter)
	if !ok {
		return nil, fmt.Errorf("queryd: %q does not report tracked keys", b.algo)
	}
	return trimTopK(hh.Tracked(), k), nil
}

// Generation is the ring's seal count (0 in cumulative mode).
func (b *SketchBackend) Generation() uint64 {
	if b.ring == nil {
		return 0
	}
	return b.ring.Generation()
}

// Epochal reports epoch mode.
func (b *SketchBackend) Epochal() bool { return b.ring != nil }

// Checkpoint snapshots the cumulative sketch. Readers may run concurrently
// (a snapshot is a read); ingest is excluded for the serialization only —
// the state is captured into memory under the lock and written to w after
// releasing it, so ingest never stalls on the destination's I/O.
func (b *SketchBackend) Checkpoint(w io.Writer) error {
	if err := b.CanCheckpoint(); err != nil {
		return err
	}
	sn := b.sk.(sketch.Snapshotter)
	var buf bytes.Buffer
	if b.selfSynced {
		// Sharded snapshots lock shard-by-shard themselves.
		if err := sn.Snapshot(&buf); err != nil {
			return err
		}
	} else {
		b.mu.RLock()
		err := sn.Snapshot(&buf)
		b.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// CanCheckpoint reports whether the backend is a cumulative snapshottable
// sketch.
func (b *SketchBackend) CanCheckpoint() error {
	if b.ring != nil {
		return errors.New("queryd: checkpointing is cumulative-mode only (epoch-ring state ages out instead)")
	}
	if _, ok := b.sk.(sketch.Snapshotter); !ok {
		return fmt.Errorf("queryd: %q does not support Snapshot", b.algo)
	}
	return nil
}

// Status reports identity and counters.
func (b *SketchBackend) Status() Status {
	return Status{
		Mode:       "standalone",
		Algo:       b.algo,
		Epochal:    b.Epochal(),
		Generation: b.Generation(),
		Updates:    b.updates.Load(),
		Queries:    b.queries.Load(),
	}
}

// trimTopK sorts tracked keys heaviest-first and keeps the top k,
// tie-breaking on key for deterministic listings.
func trimTopK(kvs []sketch.KV, k int) []sketch.KV {
	out := make([]sketch.KV, len(kvs))
	copy(out, kvs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Est != out[j].Est {
			return out[i].Est > out[j].Est
		}
		return out[i].Key < out[j].Key
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
